file(REMOVE_RECURSE
  "CMakeFiles/ew_dpi.dir/classifier.cpp.o"
  "CMakeFiles/ew_dpi.dir/classifier.cpp.o.d"
  "CMakeFiles/ew_dpi.dir/parsers.cpp.o"
  "CMakeFiles/ew_dpi.dir/parsers.cpp.o.d"
  "libew_dpi.a"
  "libew_dpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_dpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
