# Empty compiler generated dependencies file for ew_dpi.
# This may be replaced when dependencies are built.
