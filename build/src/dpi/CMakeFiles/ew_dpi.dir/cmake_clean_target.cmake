file(REMOVE_RECURSE
  "libew_dpi.a"
)
