file(REMOVE_RECURSE
  "libew_analytics.a"
)
