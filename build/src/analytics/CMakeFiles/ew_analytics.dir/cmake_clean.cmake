file(REMOVE_RECURSE
  "CMakeFiles/ew_analytics.dir/day_aggregate.cpp.o"
  "CMakeFiles/ew_analytics.dir/day_aggregate.cpp.o.d"
  "CMakeFiles/ew_analytics.dir/figures.cpp.o"
  "CMakeFiles/ew_analytics.dir/figures.cpp.o.d"
  "CMakeFiles/ew_analytics.dir/infrastructure.cpp.o"
  "CMakeFiles/ew_analytics.dir/infrastructure.cpp.o.d"
  "libew_analytics.a"
  "libew_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
