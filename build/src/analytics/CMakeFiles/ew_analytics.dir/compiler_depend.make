# Empty compiler generated dependencies file for ew_analytics.
# This may be replaced when dependencies are built.
