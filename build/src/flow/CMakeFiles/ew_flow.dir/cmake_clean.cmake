file(REMOVE_RECURSE
  "CMakeFiles/ew_flow.dir/record.cpp.o"
  "CMakeFiles/ew_flow.dir/record.cpp.o.d"
  "CMakeFiles/ew_flow.dir/rtt.cpp.o"
  "CMakeFiles/ew_flow.dir/rtt.cpp.o.d"
  "CMakeFiles/ew_flow.dir/table.cpp.o"
  "CMakeFiles/ew_flow.dir/table.cpp.o.d"
  "libew_flow.a"
  "libew_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
