
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/record.cpp" "src/flow/CMakeFiles/ew_flow.dir/record.cpp.o" "gcc" "src/flow/CMakeFiles/ew_flow.dir/record.cpp.o.d"
  "/root/repo/src/flow/rtt.cpp" "src/flow/CMakeFiles/ew_flow.dir/rtt.cpp.o" "gcc" "src/flow/CMakeFiles/ew_flow.dir/rtt.cpp.o.d"
  "/root/repo/src/flow/table.cpp" "src/flow/CMakeFiles/ew_flow.dir/table.cpp.o" "gcc" "src/flow/CMakeFiles/ew_flow.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ew_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ew_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dpi/CMakeFiles/ew_dpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
