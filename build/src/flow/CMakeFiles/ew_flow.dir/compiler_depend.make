# Empty compiler generated dependencies file for ew_flow.
# This may be replaced when dependencies are built.
