file(REMOVE_RECURSE
  "libew_flow.a"
)
