file(REMOVE_RECURSE
  "libew_services.a"
)
