file(REMOVE_RECURSE
  "CMakeFiles/ew_services.dir/catalog.cpp.o"
  "CMakeFiles/ew_services.dir/catalog.cpp.o.d"
  "CMakeFiles/ew_services.dir/regex.cpp.o"
  "CMakeFiles/ew_services.dir/regex.cpp.o.d"
  "CMakeFiles/ew_services.dir/rules.cpp.o"
  "CMakeFiles/ew_services.dir/rules.cpp.o.d"
  "libew_services.a"
  "libew_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
