
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/catalog.cpp" "src/services/CMakeFiles/ew_services.dir/catalog.cpp.o" "gcc" "src/services/CMakeFiles/ew_services.dir/catalog.cpp.o.d"
  "/root/repo/src/services/regex.cpp" "src/services/CMakeFiles/ew_services.dir/regex.cpp.o" "gcc" "src/services/CMakeFiles/ew_services.dir/regex.cpp.o.d"
  "/root/repo/src/services/rules.cpp" "src/services/CMakeFiles/ew_services.dir/rules.cpp.o" "gcc" "src/services/CMakeFiles/ew_services.dir/rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ew_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dpi/CMakeFiles/ew_dpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
