# Empty dependencies file for ew_services.
# This may be replaced when dependencies are built.
