file(REMOVE_RECURSE
  "libew_asn.a"
)
