# Empty dependencies file for ew_asn.
# This may be replaced when dependencies are built.
