file(REMOVE_RECURSE
  "CMakeFiles/ew_asn.dir/lpm.cpp.o"
  "CMakeFiles/ew_asn.dir/lpm.cpp.o.d"
  "libew_asn.a"
  "libew_asn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_asn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
