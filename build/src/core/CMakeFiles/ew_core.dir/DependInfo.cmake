
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/hash.cpp" "src/core/CMakeFiles/ew_core.dir/hash.cpp.o" "gcc" "src/core/CMakeFiles/ew_core.dir/hash.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/ew_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/ew_core.dir/stats.cpp.o.d"
  "/root/repo/src/core/time.cpp" "src/core/CMakeFiles/ew_core.dir/time.cpp.o" "gcc" "src/core/CMakeFiles/ew_core.dir/time.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/core/CMakeFiles/ew_core.dir/types.cpp.o" "gcc" "src/core/CMakeFiles/ew_core.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
