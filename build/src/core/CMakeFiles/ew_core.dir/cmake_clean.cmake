file(REMOVE_RECURSE
  "CMakeFiles/ew_core.dir/hash.cpp.o"
  "CMakeFiles/ew_core.dir/hash.cpp.o.d"
  "CMakeFiles/ew_core.dir/stats.cpp.o"
  "CMakeFiles/ew_core.dir/stats.cpp.o.d"
  "CMakeFiles/ew_core.dir/time.cpp.o"
  "CMakeFiles/ew_core.dir/time.cpp.o.d"
  "CMakeFiles/ew_core.dir/types.cpp.o"
  "CMakeFiles/ew_core.dir/types.cpp.o.d"
  "libew_core.a"
  "libew_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
