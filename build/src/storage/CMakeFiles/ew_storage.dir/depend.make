# Empty dependencies file for ew_storage.
# This may be replaced when dependencies are built.
