file(REMOVE_RECURSE
  "CMakeFiles/ew_storage.dir/codec.cpp.o"
  "CMakeFiles/ew_storage.dir/codec.cpp.o.d"
  "CMakeFiles/ew_storage.dir/compress.cpp.o"
  "CMakeFiles/ew_storage.dir/compress.cpp.o.d"
  "CMakeFiles/ew_storage.dir/datalake.cpp.o"
  "CMakeFiles/ew_storage.dir/datalake.cpp.o.d"
  "libew_storage.a"
  "libew_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
