file(REMOVE_RECURSE
  "libew_storage.a"
)
