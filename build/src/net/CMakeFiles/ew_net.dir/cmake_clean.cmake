file(REMOVE_RECURSE
  "CMakeFiles/ew_net.dir/headers.cpp.o"
  "CMakeFiles/ew_net.dir/headers.cpp.o.d"
  "CMakeFiles/ew_net.dir/packet.cpp.o"
  "CMakeFiles/ew_net.dir/packet.cpp.o.d"
  "CMakeFiles/ew_net.dir/pcap.cpp.o"
  "CMakeFiles/ew_net.dir/pcap.cpp.o.d"
  "libew_net.a"
  "libew_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
