file(REMOVE_RECURSE
  "libew_dns.a"
)
