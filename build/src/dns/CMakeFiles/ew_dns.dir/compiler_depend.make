# Empty compiler generated dependencies file for ew_dns.
# This may be replaced when dependencies are built.
