file(REMOVE_RECURSE
  "CMakeFiles/ew_dns.dir/dnhunter.cpp.o"
  "CMakeFiles/ew_dns.dir/dnhunter.cpp.o.d"
  "CMakeFiles/ew_dns.dir/message.cpp.o"
  "CMakeFiles/ew_dns.dir/message.cpp.o.d"
  "libew_dns.a"
  "libew_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
