file(REMOVE_RECURSE
  "CMakeFiles/ew_synth.dir/curve.cpp.o"
  "CMakeFiles/ew_synth.dir/curve.cpp.o.d"
  "CMakeFiles/ew_synth.dir/generator.cpp.o"
  "CMakeFiles/ew_synth.dir/generator.cpp.o.d"
  "CMakeFiles/ew_synth.dir/packets.cpp.o"
  "CMakeFiles/ew_synth.dir/packets.cpp.o.d"
  "CMakeFiles/ew_synth.dir/paper_scenario.cpp.o"
  "CMakeFiles/ew_synth.dir/paper_scenario.cpp.o.d"
  "CMakeFiles/ew_synth.dir/population.cpp.o"
  "CMakeFiles/ew_synth.dir/population.cpp.o.d"
  "libew_synth.a"
  "libew_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
