# Empty compiler generated dependencies file for ew_synth.
# This may be replaced when dependencies are built.
