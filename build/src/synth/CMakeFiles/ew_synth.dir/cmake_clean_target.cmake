file(REMOVE_RECURSE
  "libew_synth.a"
)
