file(REMOVE_RECURSE
  "CMakeFiles/ew_anon.dir/anonymizer.cpp.o"
  "CMakeFiles/ew_anon.dir/anonymizer.cpp.o.d"
  "libew_anon.a"
  "libew_anon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_anon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
