# Empty dependencies file for ew_anon.
# This may be replaced when dependencies are built.
