file(REMOVE_RECURSE
  "libew_anon.a"
)
