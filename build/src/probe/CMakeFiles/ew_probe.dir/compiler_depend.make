# Empty compiler generated dependencies file for ew_probe.
# This may be replaced when dependencies are built.
