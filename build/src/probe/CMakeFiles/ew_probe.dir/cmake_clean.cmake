file(REMOVE_RECURSE
  "CMakeFiles/ew_probe.dir/probe.cpp.o"
  "CMakeFiles/ew_probe.dir/probe.cpp.o.d"
  "libew_probe.a"
  "libew_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
