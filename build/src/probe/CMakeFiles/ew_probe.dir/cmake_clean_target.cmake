file(REMOVE_RECURSE
  "libew_probe.a"
)
