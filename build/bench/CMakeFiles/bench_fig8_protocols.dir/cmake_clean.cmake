file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_protocols.dir/bench_fig8_protocols.cpp.o"
  "CMakeFiles/bench_fig8_protocols.dir/bench_fig8_protocols.cpp.o.d"
  "bench_fig8_protocols"
  "bench_fig8_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
