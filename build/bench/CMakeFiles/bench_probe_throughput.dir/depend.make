# Empty dependencies file for bench_probe_throughput.
# This may be replaced when dependencies are built.
