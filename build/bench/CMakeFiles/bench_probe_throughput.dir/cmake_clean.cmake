file(REMOVE_RECURSE
  "CMakeFiles/bench_probe_throughput.dir/bench_probe_throughput.cpp.o"
  "CMakeFiles/bench_probe_throughput.dir/bench_probe_throughput.cpp.o.d"
  "bench_probe_throughput"
  "bench_probe_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_probe_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
