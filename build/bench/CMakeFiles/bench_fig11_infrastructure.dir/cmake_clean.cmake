file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_infrastructure.dir/bench_fig11_infrastructure.cpp.o"
  "CMakeFiles/bench_fig11_infrastructure.dir/bench_fig11_infrastructure.cpp.o.d"
  "bench_fig11_infrastructure"
  "bench_fig11_infrastructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_infrastructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
