# Empty compiler generated dependencies file for bench_fig9_autoplay.
# This may be replaced when dependencies are built.
