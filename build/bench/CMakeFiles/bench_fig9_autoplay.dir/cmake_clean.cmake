file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_autoplay.dir/bench_fig9_autoplay.cpp.o"
  "CMakeFiles/bench_fig9_autoplay.dir/bench_fig9_autoplay.cpp.o.d"
  "bench_fig9_autoplay"
  "bench_fig9_autoplay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_autoplay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
