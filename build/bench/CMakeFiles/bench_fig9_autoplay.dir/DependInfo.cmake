
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_autoplay.cpp" "bench/CMakeFiles/bench_fig9_autoplay.dir/bench_fig9_autoplay.cpp.o" "gcc" "bench/CMakeFiles/bench_fig9_autoplay.dir/bench_fig9_autoplay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/ew_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/ew_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ew_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/probe/CMakeFiles/ew_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/ew_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/ew_services.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/ew_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/dpi/CMakeFiles/ew_dpi.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/ew_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/anon/CMakeFiles/ew_anon.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ew_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ew_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
