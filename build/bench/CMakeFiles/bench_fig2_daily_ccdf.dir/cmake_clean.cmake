file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_daily_ccdf.dir/bench_fig2_daily_ccdf.cpp.o"
  "CMakeFiles/bench_fig2_daily_ccdf.dir/bench_fig2_daily_ccdf.cpp.o.d"
  "bench_fig2_daily_ccdf"
  "bench_fig2_daily_ccdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_daily_ccdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
