# Empty compiler generated dependencies file for bench_fig2_daily_ccdf.
# This may be replaced when dependencies are built.
