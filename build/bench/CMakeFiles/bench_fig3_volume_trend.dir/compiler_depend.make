# Empty compiler generated dependencies file for bench_fig3_volume_trend.
# This may be replaced when dependencies are built.
