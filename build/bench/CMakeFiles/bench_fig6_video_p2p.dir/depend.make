# Empty dependencies file for bench_fig6_video_p2p.
# This may be replaced when dependencies are built.
