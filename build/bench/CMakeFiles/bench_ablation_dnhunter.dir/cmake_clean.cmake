file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dnhunter.dir/bench_ablation_dnhunter.cpp.o"
  "CMakeFiles/bench_ablation_dnhunter.dir/bench_ablation_dnhunter.cpp.o.d"
  "bench_ablation_dnhunter"
  "bench_ablation_dnhunter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dnhunter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
