# Empty dependencies file for bench_ablation_dnhunter.
# This may be replaced when dependencies are built.
