file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lpm.dir/bench_ablation_lpm.cpp.o"
  "CMakeFiles/bench_ablation_lpm.dir/bench_ablation_lpm.cpp.o.d"
  "bench_ablation_lpm"
  "bench_ablation_lpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
