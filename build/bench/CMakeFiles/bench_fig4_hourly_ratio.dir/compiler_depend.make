# Empty compiler generated dependencies file for bench_fig4_hourly_ratio.
# This may be replaced when dependencies are built.
