file(REMOVE_RECURSE
  "CMakeFiles/rtt_explorer.dir/rtt_explorer.cpp.o"
  "CMakeFiles/rtt_explorer.dir/rtt_explorer.cpp.o.d"
  "rtt_explorer"
  "rtt_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtt_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
