# Empty compiler generated dependencies file for rtt_explorer.
# This may be replaced when dependencies are built.
