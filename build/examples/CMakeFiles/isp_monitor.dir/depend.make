# Empty dependencies file for isp_monitor.
# This may be replaced when dependencies are built.
