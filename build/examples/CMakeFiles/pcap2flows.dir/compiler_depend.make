# Empty compiler generated dependencies file for pcap2flows.
# This may be replaced when dependencies are built.
