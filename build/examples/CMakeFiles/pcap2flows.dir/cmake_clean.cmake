file(REMOVE_RECURSE
  "CMakeFiles/pcap2flows.dir/pcap2flows.cpp.o"
  "CMakeFiles/pcap2flows.dir/pcap2flows.cpp.o.d"
  "pcap2flows"
  "pcap2flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap2flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
