# Empty compiler generated dependencies file for service_rules.
# This may be replaced when dependencies are built.
