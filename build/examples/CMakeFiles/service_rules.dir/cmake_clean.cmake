file(REMOVE_RECURSE
  "CMakeFiles/service_rules.dir/service_rules.cpp.o"
  "CMakeFiles/service_rules.dir/service_rules.cpp.o.d"
  "service_rules"
  "service_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
