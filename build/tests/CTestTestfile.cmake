# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_anon[1]_include.cmake")
include("/root/repo/build/tests/test_dns[1]_include.cmake")
include("/root/repo/build/tests/test_dpi[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_services[1]_include.cmake")
include("/root/repo/build/tests/test_asn[1]_include.cmake")
include("/root/repo/build/tests/test_probe[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_analytics[1]_include.cmake")
include("/root/repo/build/tests/test_pcap[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
