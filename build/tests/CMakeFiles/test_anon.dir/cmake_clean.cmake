file(REMOVE_RECURSE
  "CMakeFiles/test_anon.dir/test_anon.cpp.o"
  "CMakeFiles/test_anon.dir/test_anon.cpp.o.d"
  "test_anon"
  "test_anon.pdb"
  "test_anon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
