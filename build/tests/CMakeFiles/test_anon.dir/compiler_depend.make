# Empty compiler generated dependencies file for test_anon.
# This may be replaced when dependencies are built.
