#!/usr/bin/env bash
# Build and run the machine-readable benches, merging their results into
# BENCH_pipeline.json in the repo root. Usage:
#
#   scripts/bench.sh [conversations] [repeats]
#
# Defaults: 40000 conversations (≈1M frames — the serial probe pass runs
# ≥200 ms, so sharded-speedup numbers measure work, not dispatch noise) and
# 3 repeats (best-of). Each bench binary
# writes its own JSON fragment under build/bench_fragments/; this script
# then merges fragments into BENCH_pipeline.json as {"benches": [...]},
# replacing only the entries it re-ran and keeping the rest — so running a
# subset never clobbers earlier results. A legacy single-object
# BENCH_pipeline.json is migrated into the merged form on first run.
set -euo pipefail
cd "$(dirname "$0")/.."

CONVERSATIONS="${1:-40000}"
REPEATS="${2:-3}"
OUT=BENCH_pipeline.json
FRAGMENTS=build/bench_fragments

if [ ! -d build ]; then
  cmake --preset default
fi
cmake --build build --target bench_parallel_scaling bench_probe_hotpath bench_query_latency bench_overload bench_scan_selectivity -j "$(nproc)"

mkdir -p "$FRAGMENTS"
./build/bench/bench_parallel_scaling "$CONVERSATIONS" "$REPEATS" \
  "$FRAGMENTS/parallel_scaling.json"
./build/bench/bench_probe_hotpath "$CONVERSATIONS" "$REPEATS" \
  "$FRAGMENTS/probe_hotpath.json"
./build/bench/bench_query_latency 25 "$REPEATS" "$FRAGMENTS/query_latency.json"
# Overload sweep is about shed *ratios*, not throughput — a few hundred
# conversations give a full Healthy→Shedding curve without minutes of spin.
./build/bench/bench_overload 400 "$REPEATS" "$FRAGMENTS/overload.json"
# v2-vs-v3 scan path: 8 merged synthetic days make enough blocks that the
# one-hour predicate must prune ≥90% of them (the binary exits non-zero if
# it doesn't, or if the two formats deliver different records).
./build/bench/bench_scan_selectivity 8 "$REPEATS" "$FRAGMENTS/scan_selectivity.json"

# Merge: flatten every input (previous merged file, legacy single-bench
# object, or fresh fragment) into one list, keeping the *last* entry per
# bench name — fragments come after $OUT, so re-run benches win.
inputs=()
[ -f "$OUT" ] && inputs+=("$OUT")
inputs+=("$FRAGMENTS"/*.json)
if command -v jq >/dev/null 2>&1; then
  jq -s '[.[] | if type == "object" and has("benches") then .benches[] else . end]
         | group_by(.bench) | map(last) | {benches: .}' "${inputs[@]}" > "$OUT.tmp"
  mv "$OUT.tmp" "$OUT"
else
  # Without jq, keep only this run's fragments (still merged, not clobbered
  # per bench) so the file stays valid JSON.
  {
    echo '{"benches": ['
    first=1
    for f in "$FRAGMENTS"/*.json; do
      [ "$first" = 1 ] || echo ','
      first=0
      cat "$f"
    done
    echo ']}'
  } > "$OUT"
fi
echo
echo "results: $(pwd)/$OUT"
