#!/usr/bin/env bash
# Build and run the machine-readable benches, merging their results into
# BENCH_pipeline.json in the repo root. Usage:
#
#   scripts/bench.sh [conversations] [repeats]
#
# Defaults: 40000 conversations (≈1M frames — the serial probe pass runs
# ≥200 ms, so sharded-speedup numbers measure work, not dispatch noise) and
# 3 repeats (best-of). Each bench binary
# writes its own JSON fragment under build/bench_fragments/; this script
# then merges fragments into BENCH_pipeline.json as {"benches": [...]},
# replacing only the entries it re-ran and keeping the rest — so running a
# subset never clobbers earlier results. A legacy single-object
# BENCH_pipeline.json is migrated into the merged form on first run.
set -euo pipefail
cd "$(dirname "$0")/.."

CONVERSATIONS="${1:-40000}"
REPEATS="${2:-3}"
OUT=BENCH_pipeline.json
FRAGMENTS=build/bench_fragments

if [ ! -d build ]; then
  cmake --preset default
fi
cmake --build build --target bench_parallel_scaling bench_probe_hotpath bench_query_latency bench_overload bench_scan_selectivity bench_batch_scan bench_obs_overhead bench_write_path -j "$(nproc)"

mkdir -p "$FRAGMENTS"
./build/bench/bench_parallel_scaling "$CONVERSATIONS" "$REPEATS" \
  "$FRAGMENTS/parallel_scaling.json"
./build/bench/bench_probe_hotpath "$CONVERSATIONS" "$REPEATS" \
  "$FRAGMENTS/probe_hotpath.json"
./build/bench/bench_query_latency 25 "$REPEATS" "$FRAGMENTS/query_latency.json"
# Overload sweep is about shed *ratios*, not throughput — a few hundred
# conversations give a full Healthy→Shedding curve without minutes of spin.
./build/bench/bench_overload 400 "$REPEATS" "$FRAGMENTS/overload.json"
# v2-vs-v3 scan path: 8 merged synthetic days make enough blocks that the
# one-hour predicate must prune ≥90% of them (the binary exits non-zero if
# it doesn't, or if the two formats deliver different records).
./build/bench/bench_scan_selectivity 8 "$REPEATS" "$FRAGMENTS/scan_selectivity.json"
# Batch execution core: the full-day aggregate scan consumed as SoA batches
# must beat the row-emit shim on the same v3 lake. The aggregate-identity
# gate is unconditional; the ≥1.5x speedup gate (override with
# BATCH_SPEEDUP_GATE) only arms on ≥4-core machines, where the measurement
# isn't dominated by a loaded shared host.
BATCH_ARGS=()
if [ "$(nproc)" -ge 4 ]; then
  BATCH_ARGS+=(--min-speedup "${BATCH_SPEEDUP_GATE:-1.5}")
fi
./build/bench/bench_batch_scan 8 "$REPEATS" "$FRAGMENTS/batch_scan.json" \
  ${BATCH_ARGS[@]+"${BATCH_ARGS[@]}"}
# Write path: the parallel/serial byte-identity and day-file-size gates are
# unconditional; the ≥2x ingest→sealed-file throughput gate (vs the
# pre-overhaul serial writer) needs enough cores for the encode pipeline to
# express itself, so it only arms on ≥4-core machines (override the bar
# with WRITE_SPEEDUP_GATE).
WRITE_ARGS=()
if [ "$(nproc)" -ge 4 ]; then
  WRITE_ARGS+=(--min-speedup "${WRITE_SPEEDUP_GATE:-2.0}")
fi
./build/bench/bench_write_path 6 "$REPEATS" "$FRAGMENTS/write_path.json" \
  ${WRITE_ARGS[@]+"${WRITE_ARGS[@]}"}

# obs:: overhead gate: the EW_OBS=OFF build (build-noobs/) writes the
# baseline throughput, then the instrumented default build must land within
# OBS_GATE percent of it (2% locally; CI smoke uses a looser 5% because
# shared runners are noisy). Machine throughput drifts over a benchmark
# session (frequency scaling, noisy neighbours — ±15% minute-to-minute has
# been observed), so one OFF run followed by one ON run measures the drift,
# not the overhead. Instead run alternating OFF/ON rounds: each round's
# pair is contemporaneous (seconds apart), and the gate passes if ANY round
# lands within OBS_GATE — noise only ever inflates the measured overhead,
# so the best round is the closest estimate of the true cost.
OBS_CONV=$(( CONVERSATIONS < 20000 ? CONVERSATIONS : 20000 ))
OBS_REPEATS=$(( REPEATS > 5 ? REPEATS : 5 ))
if [ ! -d build-noobs ]; then
  cmake --preset noobs
fi
cmake --build build-noobs --target bench_obs_overhead -j "$(nproc)"
obs_gate_ok=0
for round in 1 2 3; do
  ./build-noobs/bench/bench_obs_overhead "$OBS_CONV" "$OBS_REPEATS" \
    build-noobs/obs_baseline.json
  if ./build/bench/bench_obs_overhead "$OBS_CONV" "$OBS_REPEATS" \
    "$FRAGMENTS/obs_overhead.json" \
    --baseline build-noobs/obs_baseline.json --gate "${OBS_GATE:-2}"; then
    obs_gate_ok=1
    break
  fi
  echo "obs overhead gate: round $round over budget, retrying" >&2
done
if [ "$obs_gate_ok" != 1 ]; then
  echo "obs overhead gate: over ${OBS_GATE:-2}% in every round" >&2
  exit 1
fi

# Merge: flatten every input (previous merged file, legacy single-bench
# object, or fresh fragment) into one list, keeping the *last* entry per
# bench name — fragments come after $OUT, so re-run benches win.
inputs=()
[ -f "$OUT" ] && inputs+=("$OUT")
inputs+=("$FRAGMENTS"/*.json)
if command -v jq >/dev/null 2>&1; then
  jq -s '[.[] | if type == "object" and has("benches") then .benches[] else . end]
         | group_by(.bench) | map(last) | {benches: .}' "${inputs[@]}" > "$OUT.tmp"
  mv "$OUT.tmp" "$OUT"
else
  # Without jq, keep only this run's fragments (still merged, not clobbered
  # per bench) so the file stays valid JSON.
  {
    echo '{"benches": ['
    first=1
    for f in "$FRAGMENTS"/*.json; do
      [ "$first" = 1 ] || echo ','
      first=0
      cat "$f"
    done
    echo ']}'
  } > "$OUT"
fi
echo
echo "results: $(pwd)/$OUT"
