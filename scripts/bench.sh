#!/usr/bin/env bash
# Build and run the parallel-engine scaling bench, leaving BENCH_pipeline.json
# in the repo root. Usage:
#
#   scripts/bench.sh [conversations] [repeats]
#
# Defaults: 600 conversations, 3 repeats (best-of). The JSON records
# hardware_concurrency next to the speedup curve — on a 1-core box the
# curve is honestly flat.
set -euo pipefail
cd "$(dirname "$0")/.."

CONVERSATIONS="${1:-600}"
REPEATS="${2:-3}"

if [ ! -d build ]; then
  cmake --preset default
fi
cmake --build build --target bench_parallel_scaling -j "$(nproc)"

./build/bench/bench_parallel_scaling "$CONVERSATIONS" "$REPEATS" BENCH_pipeline.json
echo
echo "results: $(pwd)/BENCH_pipeline.json"
