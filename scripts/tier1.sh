#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite.
#
#   scripts/tier1.sh              # RelWithDebInfo (the default preset)
#   SANITIZE=1 scripts/tier1.sh   # second configuration: Debug + ASan/UBSan
#
# The sanitizer pass exists for the robustness work: the fault-injection
# matrix, the corruption tests, and the fuzz sweeps only prove memory
# safety when out-of-bounds reads and UB actually abort the run.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${SANITIZE:-0}" == "1" ]]; then
  preset=asan-ubsan
else
  preset=default
fi

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)"
