#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite.
#
#   scripts/tier1.sh                 # RelWithDebInfo (the default preset)
#   SANITIZE=asan scripts/tier1.sh   # second configuration: Debug + ASan/UBSan
#                                    # (SANITIZE=1 is an accepted synonym)
#   SANITIZE=tsan scripts/tier1.sh   # third: ThreadSanitizer over the
#                                    # concurrency suites (ThreadPool, SPSC
#                                    # ring, ShardedProbe, parallel analytics,
#                                    # supervised runtime + chaos recovery)
#
# The sanitizer passes exist for the robustness work: the fault-injection
# matrix, the corruption tests, and the fuzz sweeps only prove memory
# safety when out-of-bounds reads and UB actually abort the run — and the
# parallel engine only proves data-race freedom under TSan. TSan is
# incompatible with ASan, hence the separate preset; its pass filters to
# the thread-heavy suites to keep the (≈10× slowed) run short.
set -euo pipefail

cd "$(dirname "$0")/.."

ctest_extra=()
case "${SANITIZE:-0}" in
  1 | asan) preset=asan-ubsan ;;
  tsan)
    preset=tsan
    ctest_extra=(-R 'Parallel|ShardedProbe|ThreadPool|SpscQueue|Supervisor|Chaos')
    ;;
  *) preset=default ;;
esac

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)" "${ctest_extra[@]}"
