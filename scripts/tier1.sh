#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite.
#
#   scripts/tier1.sh                 # RelWithDebInfo (the default preset)
#   SANITIZE=asan scripts/tier1.sh   # second configuration: Debug + ASan/UBSan
#                                    # (SANITIZE=1 is an accepted synonym)
#   SANITIZE=tsan scripts/tier1.sh   # third: ThreadSanitizer over the
#                                    # concurrency suites (ThreadPool, SPSC
#                                    # ring, ShardedProbe, parallel analytics,
#                                    # supervised runtime + chaos recovery,
#                                    # obs record-vs-scrape)
#   OBS=0 scripts/tier1.sh           # fourth: EW_OBS=OFF (the noobs preset) —
#                                    # runs the suite against the null obs
#                                    # backend and then proves the metrics
#                                    # registry compiled out by grepping the
#                                    # archives for obs::live symbols
#
# The sanitizer passes exist for the robustness work: the fault-injection
# matrix, the corruption tests, and the fuzz sweeps only prove memory
# safety when out-of-bounds reads and UB actually abort the run — and the
# parallel engine only proves data-race freedom under TSan. TSan is
# incompatible with ASan, hence the separate preset; its pass filters to
# the thread-heavy suites to keep the (≈10× slowed) run short.
set -euo pipefail

cd "$(dirname "$0")/.."

ctest_extra=()
check_null_obs=0
case "${SANITIZE:-0}" in
  1 | asan) preset=asan-ubsan ;;
  tsan)
    preset=tsan
    ctest_extra=(-R 'Parallel|ShardedProbe|ThreadPool|SpscQueue|Supervisor|Chaos|Obs')
    ;;
  *)
    if [ "${OBS:-1}" = 0 ]; then
      preset=noobs
      check_null_obs=1
    else
      preset=default
    fi
    ;;
esac

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"

if [ "$check_null_obs" = 1 ]; then
  # The OFF build must contain no live-registry code. The real registry
  # lives in `inline namespace live` (mangled substring: 3obs4live) and the
  # null backend in `nullobs`, so a single symbol grep across every static
  # library proves which one was compiled in.
  if nm -A build-noobs/src/*/*.a 2>/dev/null | grep -q '3obs4live'; then
    echo "EW_OBS=OFF build still contains obs::live symbols:" >&2
    nm -A build-noobs/src/*/*.a | grep '3obs4live' | head >&2
    exit 1
  fi
  echo "null-obs check: no obs::live symbols in build-noobs archives"
fi

ctest --preset "$preset" -j "$(nproc)" "${ctest_extra[@]}"
