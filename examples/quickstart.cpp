// Quickstart: build a few packets, run them through the passive probe, and
// print the resulting flow records — the smallest end-to-end tour of the
// library (capture → flow table → DPI → DN-Hunter → anonymized records).
//
//   ./build/examples/quickstart
#include <cstdio>

#include "probe/probe.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;

int main() {
  std::printf("edgewatch quickstart: watching a handful of flows\n\n");

  // A probe with default config: customers in 10.0.0.0/8 (FTTH half in
  // 10.128.0.0/9), anonymization on, Tstat-like timeouts.
  std::vector<ew::flow::FlowRecord> records;
  ew::probe::Probe probe{{}, [&](ew::flow::FlowRecord&& r) { records.push_back(std::move(r)); }};

  const ew::core::IPv4Address customer{10, 0, 7, 42};
  const auto t0 = ew::core::Timestamp::from_date_time({2016, 11, 15}, 21, 4);

  // 1. The customer resolves a name (DN-Hunter will remember it) ...
  const ew::core::IPv4Address wa_server{158, 85, 14, 5};
  const ew::core::IPv4Address addrs[] = {wa_server};
  probe.process(ew::synth::render_dns_response(customer, ew::core::IPv4Address{10, 255, 0, 1},
                                               "mmx-ds.cdn.whatsapp.net", addrs, t0));

  // 2. ... then opens an opaque TLS-less chat connection to it,
  ew::synth::ConversationSpec chat;
  chat.client = customer;
  chat.server = wa_server;
  chat.server_port = 5222;
  chat.web = ew::dpi::WebProtocol::kTls;
  chat.server_name = "";  // no SNI: DN-Hunter must name the flow
  chat.response_bytes = 2'500;
  chat.start = t0 + 500'000;
  chat.rtt_us = 103'000;
  for (const auto& f : ew::synth::render_conversation(chat)) probe.process(f);

  // 3. an HTTP/2 browse to Facebook's edge (3 ms away),
  ew::synth::ConversationSpec fb;
  fb.client = customer;
  fb.server = ew::core::IPv4Address{157, 240, 20, 7};
  fb.web = ew::dpi::WebProtocol::kHttp2;
  fb.alpn = "h2";
  fb.server_name = "edge-star-mini-shv-01-mxp1.facebook.com";
  fb.response_bytes = 48'000;
  fb.start = t0 + 2'000'000;
  fb.rtt_us = 3'000;
  for (const auto& f : ew::synth::render_conversation(fb)) probe.process(f);

  // 4. a QUIC video chunk from the in-PoP YouTube cache (sub-millisecond!),
  ew::synth::ConversationSpec yt;
  yt.client = customer;
  yt.server = ew::core::IPv4Address{185, 45, 13, 9};
  yt.web = ew::dpi::WebProtocol::kQuic;
  yt.response_bytes = 120'000;
  yt.start = t0 + 4'000'000;
  yt.rtt_us = 450;
  for (const auto& f : ew::synth::render_conversation(yt)) probe.process(f);

  // 5. and one legacy BitTorrent handshake, still out there.
  ew::synth::ConversationSpec p2p;
  p2p.client = customer;
  p2p.server = ew::core::IPv4Address{93, 35, 101, 4};
  p2p.server_port = 51413;
  p2p.p2p = true;
  p2p.response_bytes = 8'000;
  p2p.start = t0 + 6'000'000;
  p2p.rtt_us = 60'000;
  for (const auto& f : ew::synth::render_conversation(p2p)) probe.process(f);

  probe.finish();

  std::printf("%-28s %-9s %-8s %8s %8s %9s  %s\n", "server name", "source", "proto",
              "up B", "down B", "minRTT ms", "client (anonymized)");
  for (const auto& r : records) {
    std::printf("%-28s %-9s %-8s %8llu %8llu %9.2f  %s\n",
                r.server_name.empty() ? "(unnamed)" : r.server_name.c_str(),
                std::string(ew::flow::to_string(r.name_source)).c_str(),
                std::string(ew::dpi::to_string(r.web)).c_str(),
                static_cast<unsigned long long>(r.up.bytes),
                static_cast<unsigned long long>(r.down.bytes),
                r.rtt.samples ? r.rtt.min_ms() : 0.0, r.client_ip.to_string().c_str());
  }
  std::printf("\nprobe counters: %llu frames, %llu records, %llu named via DN-Hunter\n",
              static_cast<unsigned long long>(probe.counters().frames),
              static_cast<unsigned long long>(probe.counters().records_exported),
              static_cast<unsigned long long>(probe.counters().records_named_by_dns));
  return 0;
}
