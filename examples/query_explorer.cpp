// Query explorer: the interactive-analysis loop the rollup store exists
// for. Builds a small synthetic lake, rolls it up once, then answers the
// paper's figure questions from the per-day sketch rollups — no raw flow
// log is re-read after the build. Each answer prints the documented error
// bound next to the estimate; counters are exact.
//
//   ./build/examples/query_explorer [--lake-format {v2,v3}] [--stats[=path]]
//
// --lake-format selects the on-disk layout for the synthetic lake (columnar
// v3 by default); the rollup answers are identical either way — the flag
// exists so the row-format v2 path stays exercisable end-to-end. --stats
// dumps the final obs:: snapshot as JSON on exit (stdout, or a file with
// --stats=path): query latency histograms, rollup build counters, and the
// lake's scan/prune statistics from the build pass.
#include <cstdio>
#include <string>
#include <string_view>

#include "core/thread_pool.hpp"
#include "obs/obs.hpp"
#include "query/engine.hpp"
#include "query/figures.hpp"
#include "query/store.hpp"
#include "storage/datalake.hpp"
#include "synth/generator.hpp"
#include "synth/scenario.hpp"

namespace ew = edgewatch;
namespace fs = std::filesystem;

int main(int argc, char** argv) {
  auto lake_format = ew::storage::LakeFormat::kV3;
  fs::path stats_path;
  bool want_stats = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--lake-format" && i + 1 < argc) {
      const std::string_view fmt = argv[++i];
      if (fmt == "v2") {
        lake_format = ew::storage::LakeFormat::kV2;
      } else if (fmt == "v3") {
        lake_format = ew::storage::LakeFormat::kV3;
      } else {
        std::fprintf(stderr, "unknown --lake-format %.*s (expected v2 or v3)\n",
                     static_cast<int>(fmt.size()), fmt.data());
        return 1;
      }
    } else if (arg == "--stats" || arg.rfind("--stats=", 0) == 0) {
      want_stats = true;
      if (arg.size() > 8) stats_path = fs::path(std::string(arg.substr(8)));
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: query_explorer [--lake-format {v2,v3}] [--stats[=path]]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return 1;
    }
  }

  std::printf("edgewatch query explorer — sketch rollups over the data lake (%s lake)\n\n",
              lake_format == ew::storage::LakeFormat::kV3 ? "columnar v3" : "row v2");

  // Two observed days per month across one quarter: small enough to build
  // in seconds, wide enough to exercise week and month bucketing.
  const auto scenario = ew::synth::build_paper_scenario(/*seed=*/7, /*scale=*/0.1);
  const ew::synth::WorkloadGenerator gen{scenario};
  const auto dir = fs::temp_directory_path() / "ew_query_explorer";
  fs::remove_all(dir);
  ew::storage::DataLake lake{dir / "lake"};
  lake.set_write_format(lake_format);
  std::vector<ew::core::CivilDate> days;
  for (std::uint8_t month : {std::uint8_t{4}, std::uint8_t{5}, std::uint8_t{6}}) {
    for (std::uint8_t d : {std::uint8_t{10}, std::uint8_t{20}}) {
      days.push_back({2015, month, d});
      if (!lake.append(days.back(), gen.day_records(days.back()))) {
        std::fprintf(stderr, "lake append failed\n");
        return 1;
      }
    }
  }

  ew::core::ThreadPool pool{4};
  ew::query::RollupStore store{dir / "rollups", lake, ew::services::ServiceCatalog::standard(),
                               scenario.rib.get()};
  auto report = store.build(pool);
  std::printf("rollup build: %zu files built, %zu reused\n", report.built, report.reused);
  report = store.build(pool);  // staleness check: nothing changed, nothing rebuilt
  std::printf("rebuild:      %zu files built, %zu reused (lake unchanged)\n\n", report.built,
              report.reused);

  // ---- who are the biggest services, by people rather than bytes? (Fig. 5)
  std::printf("top services by distinct subscribers, 2015-04 (HyperLogLog):\n");
  for (const auto& row : ew::query::top_services_by_subscribers(
           store, ew::core::MonthIndex{2015, 4}, 5, &pool)) {
    std::printf("  %-12s %8.0f subscribers  (+/- %.0f%%)\n",
                std::string(ew::services::to_string(
                                static_cast<ew::services::ServiceId>(row.key)))
                    .c_str(),
                row.value, row.error_bound * 100);
  }

  // ---- exact byte totals need no sketch: counters are plain u64 sums.
  std::printf("\ntotal bytes by service, full range (exact):\n");
  ew::query::QuerySpec spec;
  spec.metric = ew::query::Metric::kBytes;
  spec.dimension = ew::query::Dimension::kService;
  spec.from = days.front();
  spec.to = days.back();
  spec.top_k = 5;
  for (const auto& row : ew::query::run_query(store, spec, &pool).rows) {
    std::printf("  %-12s %10.1f MB\n",
                std::string(ew::services::to_string(
                                static_cast<ew::services::ServiceId>(row.key)))
                    .c_str(),
                row.value / 1e6);
  }

  // ---- Fig. 10's substrate: weekly RTT medians from merged DDSketches.
  std::printf("\nweekly median RTT to YouTube servers (DDSketch, +/- %.0f%% relative):\n",
              ew::core::QuantileSketch::kDefaultAccuracy * 100);
  for (const auto& row : ew::query::weekly_rtt_quantile(
           store, ew::services::ServiceId::kYouTube, days.front(), days.back(), 0.5, &pool)) {
    std::printf("  week of %s  %6.2f ms\n", row.bucket.to_string().c_str(), row.value);
  }

  // ---- Fig. 8 from the protocol dimension, months merged on the fly.
  std::printf("\nweb protocol byte shares per month (exact):\n");
  for (const auto& row : ew::query::protocol_shares(store, days.front(), days.back(), &pool)) {
    std::printf("  %s  HTTP %4.1f%%  TLS %4.1f%%  HTTP/2 %4.1f%%  QUIC %4.1f%%\n",
                row.month.to_string().c_str(),
                row.share_pct[static_cast<std::size_t>(ew::dpi::WebProtocol::kHttp)],
                row.share_pct[static_cast<std::size_t>(ew::dpi::WebProtocol::kTls)],
                row.share_pct[static_cast<std::size_t>(ew::dpi::WebProtocol::kHttp2)],
                row.share_pct[static_cast<std::size_t>(ew::dpi::WebProtocol::kQuic)]);
  }

  if (want_stats) {
    const ew::obs::Snapshot snap = ew::obs::Registry::global().scrape();
    if (stats_path.empty()) {
      const std::string json = ew::obs::to_json(snap, /*include_spans=*/true);
      std::printf("\n");
      std::fwrite(json.data(), 1, json.size(), stdout);
    } else if (!ew::obs::write_snapshot(snap, stats_path, ew::obs::ExportFormat::kJson,
                                        /*include_spans=*/true)) {
      std::fprintf(stderr, "cannot write stats to %s\n", stats_path.c_str());
      return 1;
    } else {
      std::printf("\nobs snapshot written to %s\n", stats_path.c_str());
    }
  }

  fs::remove_all(dir);
  return 0;
}
