// One monitored day at the PoP, end to end: the scenario engine produces a
// day of flow records, they land in the day-partitioned data lake, and the
// stage-one/stage-two analytics print the daily operations report an ISP
// would read — active subscribers, volumes, top services, protocol mix.
//
//   ./build/examples/isp_monitor [YYYY-MM-DD]   (default 2016-11-15)
#include <cstdio>
#include <filesystem>

#include "analytics/figures.hpp"
#include "analytics/infrastructure.hpp"
#include "storage/datalake.hpp"
#include "synth/generator.hpp"

namespace ew = edgewatch;

int main(int argc, char** argv) {
  ew::core::CivilDate day{2016, 11, 15};
  if (argc > 1) {
    const auto parsed = ew::core::CivilDate::parse(argv[1]);
    if (!parsed) {
      std::fprintf(stderr, "usage: %s [YYYY-MM-DD] (within 2013-03 .. 2017-09)\n", argv[0]);
      return 1;
    }
    day = *parsed;
  }

  std::printf("edgewatch ISP monitor — simulated PoP day %s\n", day.to_string().c_str());

  // Generate the day and persist it like the production pipeline would.
  const ew::synth::WorkloadGenerator gen{ew::synth::build_paper_scenario(2024)};
  const auto records = gen.day_records(day);
  const auto lake_dir = std::filesystem::temp_directory_path() / "edgewatch_demo_lake";
  ew::storage::DataLake lake{lake_dir};
  const auto disk_bytes = lake.append(day, records);
  if (!disk_bytes) {
    std::fprintf(stderr, "lake append failed: %s\n",
                 std::string(ew::core::to_string(disk_bytes.error())).c_str());
    return 1;
  }

  // Stage one: per-day aggregate, re-read from the lake (round trip!).
  ew::analytics::DayAggregator aggregator{day};
  const auto scan = lake.scan_day(day, [&](const ew::flow::FlowRecord& r) { aggregator.add(r); });
  const auto agg = std::move(aggregator).take();

  std::printf("\n-- ingest ------------------------------------------------\n");
  std::printf("flow records:        %zu\n", records.size());
  std::printf("on disk:             %.2f MB (%s)\n", static_cast<double>(*disk_bytes) / 1e6,
              lake.root().c_str());
  const auto lake_health = lake.fsck_day(day);
  std::printf("lake health:         v%u %s, %llu records in %llu blocks, scan %s\n",
              lake_health.version, lake_health.sealed ? "sealed" : "UNSEALED",
              static_cast<unsigned long long>(lake_health.records_ok),
              static_cast<unsigned long long>(lake_health.blocks_ok),
              scan.ok() ? "clean" : std::string(ew::core::to_string(scan.errc)).c_str());
  std::printf("subscribers seen:    %zu (%zu active, %.0f%%)\n", agg.total_subscribers(),
              agg.active_subscribers(),
              100.0 * static_cast<double>(agg.active_subscribers()) /
                  static_cast<double>(agg.total_subscribers()));

  std::vector<ew::analytics::DayAggregate> days;
  days.push_back(agg);

  const auto trend = ew::analytics::volume_trend(days);
  std::printf("\n-- volumes (per active subscription) ----------------------\n");
  for (const auto& row : trend) {
    std::printf("ADSL: %5.0f MB down / %4.1f MB up     FTTH: %5.0f MB down / %4.1f MB up\n",
                row.down_mb[0], row.up_mb[0], row.down_mb[1], row.up_mb[1]);
  }

  std::printf("\n-- top services -------------------------------------------\n");
  const auto matrix = ew::analytics::service_matrix(days);
  struct Entry {
    ew::services::ServiceId id;
    double popularity, share;
  };
  std::vector<Entry> entries;
  for (std::size_t s = 0; s < ew::services::kServiceCount; ++s) {
    const auto id = static_cast<ew::services::ServiceId>(s);
    if (id == ew::services::ServiceId::kOther) continue;
    entries.push_back({id, matrix.cells[s][0].popularity_pct, matrix.cells[s][0].byte_share_pct});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.share > b.share; });
  std::printf("%-14s %12s %12s\n", "service", "popularity%", "byte share%");
  for (std::size_t i = 0; i < entries.size() && i < 10; ++i) {
    std::printf("%-14s %12.1f %12.1f\n",
                std::string(ew::services::to_string(entries[i].id)).c_str(),
                entries[i].popularity, entries[i].share);
  }

  std::printf("\n-- web protocol mix ---------------------------------------\n");
  const auto protocols = ew::analytics::protocol_shares(days);
  for (std::size_t p = 1; p < ew::analytics::kWebProtocolCount; ++p) {
    std::printf("%-8s %5.1f%%\n",
                std::string(ew::dpi::to_string(static_cast<ew::dpi::WebProtocol>(p))).c_str(),
                protocols[0].share_pct[p]);
  }

  std::printf("\n-- where are the servers ----------------------------------\n");
  const auto& dir = ew::asn::AsnDirectory::standard();
  std::printf("distinct server addresses today: %zu\n", agg.server_ips.size());
  for (const auto id : {ew::services::ServiceId::kFacebook, ew::services::ServiceId::kYouTube}) {
    const auto rtt = ew::analytics::rtt_distribution(days, id);
    const auto asns = ew::analytics::asn_breakdown(
        days, id, [&gen](ew::core::MonthIndex m) -> const ew::asn::Rib& { return gen.rib(m); });
    std::printf("%-10s median min-RTT %.2f ms; ASNs:",
                std::string(ew::services::to_string(id)).c_str(), rtt.median());
    for (const auto& [asn_num, ips] : asns[0].ips_by_asn) {
      std::printf(" %s(%.0f)", std::string(dir.name(asn_num)).c_str(), ips);
    }
    std::printf("\n");
  }

  std::printf("\n-- TCP health (downstream) --------------------------------\n");
  const auto health = ew::analytics::aggregate_health(days);
  std::printf("%-14s %14s %12s\n", "service", "retx rate", "ooo rate");
  for (const auto id :
       {ew::services::ServiceId::kYouTube, ew::services::ServiceId::kNetflix,
        ew::services::ServiceId::kWhatsApp, ew::services::ServiceId::kPeerToPeer}) {
    const auto& h = health[static_cast<std::size_t>(id)];
    if (h.packets == 0) continue;
    std::printf("%-14s %13.4f%% %11.4f%%\n",
                std::string(ew::services::to_string(id)).c_str(),
                100.0 * h.retransmission_rate(),
                100.0 * static_cast<double>(h.out_of_order) /
                    static_cast<double>(h.packets));
  }

  std::printf("\n-- rule curation worklist (§2.3) --------------------------\n");
  const auto unclassified = ew::analytics::top_unclassified_domains(days, 5);
  if (unclassified.empty()) {
    std::printf("every named flow matched a service rule today\n");
  } else {
    std::printf("heaviest domains with no matching rule (candidates for new rules):\n");
    for (const auto& [domain, bytes] : unclassified) {
      std::printf("  %-30s %8.1f MB\n", domain.c_str(), static_cast<double>(bytes) / 1e6);
    }
  }

  std::filesystem::remove_all(lake_dir);
  return 0;
}
