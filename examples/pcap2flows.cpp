// pcap2flows: replay a pcap capture through the passive probe and emit
// Tstat-style flow records as CSV — the offline batch mode of the paper's
// measurement pipeline, usable on any Ethernet/IPv4 capture.
//
//   ./build/examples/pcap2flows [trace.pcap] [--out out.csv]
//                               [--lake dir] [--lake-format {v2,v3}]
//                               [--stats[=path]]
//
// With no capture, a demonstration trace is synthesized, written to a
// temporary pcap (openable with any standard tool), and then processed.
// Output defaults to build/flows.csv so runs never litter the source tree.
// --lake additionally appends the records to a data lake (day-partitioned
// by first_packet); --lake-format picks the on-disk block layout — the
// columnar v3 default or the row-format v2 — and implies --lake, so either
// format stays exercisable end-to-end from a raw capture. --stats dumps the
// final obs:: snapshot (counters, stage histograms, spans) as JSON to
// stdout — or to a file with --stats=path — replacing the ad-hoc summary
// lines; it reports zeros in an EW_OBS=OFF build.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string_view>
#include <system_error>
#include <vector>

#include "net/pcap.hpp"
#include "obs/obs.hpp"
#include "probe/probe.hpp"
#include "storage/codec.hpp"
#include "storage/datalake.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;
namespace fs = std::filesystem;

namespace {

fs::path make_demo_capture() {
  ew::net::Trace trace;
  const ew::core::IPv4Address client{10, 0, 3, 3};
  const auto t0 = ew::core::Timestamp::from_date_time({2017, 2, 1}, 19);

  const ew::core::IPv4Address wa{158, 85, 44, 1};
  const ew::core::IPv4Address addrs[] = {wa};
  trace.add(ew::synth::render_dns_response(client, ew::core::IPv4Address{10, 255, 0, 1},
                                           "e3.whatsapp.net", addrs, t0));
  struct Item {
    ew::dpi::WebProtocol web;
    const char* name;
    ew::core::IPv4Address server;
    std::size_t bytes;
    std::int64_t rtt_us;
  };
  const Item items[] = {
      {ew::dpi::WebProtocol::kHttp2, "www.youtube.com", {173, 194, 7, 7}, 200'000, 3'100},
      {ew::dpi::WebProtocol::kHttp, "www.gazzetta.it", {93, 184, 5, 5}, 60'000, 22'000},
      {ew::dpi::WebProtocol::kFbZero, "graph.facebook.com", {157, 240, 2, 2}, 15'000, 3'000},
      {ew::dpi::WebProtocol::kQuic, "", {173, 194, 8, 8}, 90'000, 3'000},
      {ew::dpi::WebProtocol::kTls, "", wa, 4'000, 101'000},
  };
  std::uint16_t port = 42000;
  std::int64_t offset = 500'000;
  for (const auto& item : items) {
    ew::synth::ConversationSpec spec;
    spec.client = client;
    spec.client_port = port++;
    spec.server = item.server;
    spec.web = item.web;
    spec.server_name = item.name;
    spec.response_bytes = item.bytes;
    spec.start = t0 + offset;
    spec.rtt_us = item.rtt_us;
    offset += 2'000'000;
    for (auto& f : ew::synth::render_conversation(spec)) trace.add(std::move(f));
  }
  trace.sort_by_time();
  const auto path = fs::temp_directory_path() / "edgewatch_demo.pcap";
  ew::net::write_pcap(path, trace);
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path input;
  fs::path output;
  fs::path lake_dir;
  fs::path stats_path;
  auto lake_format = ew::storage::LakeFormat::kV3;
  bool want_lake = false;
  bool want_stats = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--lake" && i + 1 < argc) {
      lake_dir = argv[++i];
      want_lake = true;
    } else if (arg == "--lake-format" && i + 1 < argc) {
      const std::string_view fmt = argv[++i];
      if (fmt == "v2") {
        lake_format = ew::storage::LakeFormat::kV2;
      } else if (fmt == "v3") {
        lake_format = ew::storage::LakeFormat::kV3;
      } else {
        std::fprintf(stderr, "unknown --lake-format %.*s (expected v2 or v3)\n",
                     static_cast<int>(fmt.size()), fmt.data());
        return 1;
      }
      want_lake = true;
    } else if (arg == "--stats" || arg.rfind("--stats=", 0) == 0) {
      want_stats = true;
      if (arg.size() > 8) stats_path = fs::path(std::string(arg.substr(8)));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: pcap2flows [trace.pcap] [--out out.csv] [--lake dir] "
          "[--lake-format {v2,v3}] [--stats[=path]]\n");
      return 0;
    } else {
      input = argv[i];
    }
  }
  bool demo = false;
  if (input.empty()) {
    input = make_demo_capture();
    demo = true;
    std::printf("no capture given; synthesized a demo trace at %s\n", input.c_str());
  }
  // Keep generated artifacts out of the source tree: land next to the build
  // outputs when a build/ directory is around, else in the temp dir.
  const fs::path build_dir{"build"};
  const fs::path out_root = fs::is_directory(build_dir) ? build_dir : fs::temp_directory_path();
  if (output.empty()) output = out_root / "flows.csv";
  if (want_lake && lake_dir.empty()) lake_dir = out_root / "lake";
  if (output.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(output.parent_path(), ec);
  }

  std::ofstream csv(output);
  if (!csv) {
    std::fprintf(stderr, "cannot write %s\n", output.c_str());
    return 1;
  }
  csv << ew::storage::csv_header() << '\n';

  std::uint64_t flows = 0;
  std::map<ew::core::CivilDate, std::vector<ew::flow::FlowRecord>> by_day;
  ew::probe::Probe probe{{}, [&](ew::flow::FlowRecord&& r) {
                           csv << r.to_csv_row() << '\n';
                           ++flows;
                           if (want_lake) by_day[r.first_packet.date()].push_back(std::move(r));
                         }};
  const auto stats = ew::net::read_pcap(input, [&](ew::net::Frame&& f) { probe.process(f); });
  if (!stats) {
    std::fprintf(stderr, "not a readable Ethernet pcap: %s (%s)\n", input.c_str(),
                 std::string(ew::core::to_string(stats.error())).c_str());
    return 1;
  }
  probe.finish();

  std::printf("%llu frames (%0.2f MB) -> %llu flow records -> %s\n",
              static_cast<unsigned long long>(stats->frames),
              static_cast<double>(stats->bytes) / 1e6,
              static_cast<unsigned long long>(flows), output.c_str());
  if (!want_stats) {
    // Ad-hoc summary for quick runs; --stats replaces it with the full
    // obs:: snapshot (same numbers, plus stage timings and lake counters).
    std::printf("decode failures: %llu, DNS responses fed to DN-Hunter: %llu\n",
                static_cast<unsigned long long>(probe.counters().decode_failures),
                static_cast<unsigned long long>(probe.counters().dns_responses));
  }

  if (want_lake) {
    ew::storage::DataLake lake{lake_dir};
    lake.set_write_format(lake_format);
    for (auto& [day, records] : by_day) {
      if (!lake.append(day, records)) {
        std::fprintf(stderr, "lake append failed for %s\n", day.to_string().c_str());
        return 1;
      }
    }
    std::printf("appended %zu day file(s) to %s (%s blocks)\n", by_day.size(), lake_dir.c_str(),
                lake_format == ew::storage::LakeFormat::kV3 ? "columnar v3" : "row v2");
  }
  if (want_stats) {
    // Scrape last so the snapshot covers the lake appends above, not just
    // the replay. Spans are included: a pcap run is short enough that the
    // 4096-entry ring still holds everything interesting.
    const ew::obs::Snapshot snap = ew::obs::Registry::global().scrape();
    if (stats_path.empty()) {
      const std::string json = ew::obs::to_json(snap, /*include_spans=*/true);
      std::fwrite(json.data(), 1, json.size(), stdout);
    } else if (!ew::obs::write_snapshot(snap, stats_path, ew::obs::ExportFormat::kJson,
                                        /*include_spans=*/true)) {
      std::fprintf(stderr, "cannot write stats to %s\n", stats_path.c_str());
      return 1;
    } else {
      std::printf("obs snapshot written to %s\n", stats_path.c_str());
    }
  }
  if (demo) fs::remove(input);
  return 0;
}
