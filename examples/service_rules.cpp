// Demonstrates the domain→service rule engine (Table 1): classify domains
// given on the command line (or a built-in showcase list), print which rule
// kind fired and how precedence works, and show how an operator extends the
// rule base at runtime — the "continuously updated associations" of §2.3.
//
//   ./build/examples/service_rules [domain...]
#include <cstdio>

#include "services/catalog.hpp"

namespace ew = edgewatch;

namespace {

void classify_and_print(const ew::services::ServiceCatalog& catalog, const char* domain) {
  const auto id = catalog.classify_domain(domain);
  const auto& info = catalog.info(id);
  std::printf("  %-44s -> %-13s [%s, activity threshold %llu kB/day]\n", domain,
              std::string(info.name).c_str(), std::string(to_string(info.category)).c_str(),
              static_cast<unsigned long long>(info.activity_threshold_bytes / 1000));
}

}  // namespace

int main(int argc, char** argv) {
  const auto& catalog = ew::services::ServiceCatalog::standard();
  std::printf("edgewatch service rules — %zu suffix rules, %zu regex rules\n\n",
              catalog.rules().suffix_rules(), catalog.rules().regex_rules());

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) classify_and_print(catalog, argv[i]);
    return 0;
  }

  std::printf("Table 1 rows and friends:\n");
  for (const char* domain :
       {"facebook.com", "fbcdn.com", "fbstatic-a.akamaihd.net", "netflix.com",
        "nflxvideo.net", "r3---sn-uxaxovg-5gie.googlevideo.com", "redirector.gvt1.com",
        "scontent-mxp1-1.cdninstagram.com", "mmx-ds.cdn.whatsapp.net", "audio-ak-spotify-com.akamaized.example",
        "www.polito.it"}) {
    classify_and_print(catalog, domain);
  }

  std::printf("\nPrecedence: exact > longest suffix > regex (first match):\n");
  ew::services::RuleEngine engine;
  engine.add_suffix("akamaihd.net", "Akamai-generic");
  engine.add_regex("^fbstatic-[a-z]\\.akamaihd\\.net$", "Facebook-regex");
  engine.add_exact("fbstatic-a.akamaihd.net", "Facebook-exact");
  for (const char* domain :
       {"fbstatic-a.akamaihd.net", "fbstatic-b.akamaihd.net", "media.akamaihd.net"}) {
    const auto got = engine.classify(domain);
    std::printf("  %-30s -> %s\n", domain, got ? std::string(*got).c_str() : "(no match)");
  }

  std::printf("\nOperators update rules as services reshuffle domains (§2.3):\n");
  ew::services::RuleEngine live;
  std::printf("  before: gvt1.com -> %s\n",
              live.classify("redirector.gvt1.com") ? "matched" : "(no match)");
  live.add_suffix("gvt1.com", "YouTube");
  const auto after = live.classify("redirector.gvt1.com");
  std::printf("  after adding suffix rule: gvt1.com -> %s\n",
              after ? std::string(*after).c_str() : "(no match)");
  return 0;
}
