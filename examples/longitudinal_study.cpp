// The whole paper in miniature: run the five-year scenario (sampled
// monthly) and emit every figure's data series as CSV files under ./out/,
// ready for plotting. Months are processed in streaming batches so memory
// stays flat regardless of the window length.
//
//   ./build/examples/longitudinal_study [out_dir] [days_per_month]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "analytics/figures.hpp"
#include "analytics/infrastructure.hpp"
#include "synth/generator.hpp"

namespace ew = edgewatch;
namespace fs = std::filesystem;
using ew::services::ServiceId;

namespace {

constexpr int kSampleDays[] = {10, 20};

std::ofstream open_csv(const fs::path& dir, const char* name, const char* header) {
  std::ofstream out(dir / name);
  out << header << '\n';
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path out_dir = argc > 1 ? argv[1] : "out";
  const int days_per_month = argc > 2 ? std::atoi(argv[2]) : 2;
  fs::create_directories(out_dir);

  const ew::synth::WorkloadGenerator gen{ew::synth::build_paper_scenario(1)};

  auto fig3 = open_csv(out_dir, "fig3_volume_trend.csv",
                       "month,adsl_down_mb,ftth_down_mb,adsl_up_mb,ftth_up_mb");
  auto fig5 = open_csv(out_dir, "fig5_service_matrix.csv",
                       "month,service,popularity_pct,byte_share_pct");
  auto fig67 = open_csv(out_dir, "fig6_fig7_service_trends.csv",
                        "month,service,pop_adsl,pop_ftth,mb_adsl,mb_ftth");
  auto fig8 = open_csv(out_dir, "fig8_protocol_shares.csv",
                       "month,http,tls,spdy,http2,quic,fbzero");
  auto fig9 = open_csv(out_dir, "fig9_facebook_daily.csv", "date,mb_per_user,users");
  auto fig11 = open_csv(out_dir, "fig11_infrastructure.csv",
                        "month,service,dedicated_ips,shared_ips,cumulative,top_asn,top_domain");

  const ServiceId tracked[] = {
      ServiceId::kPeerToPeer, ServiceId::kNetflix,  ServiceId::kYouTube,
      ServiceId::kSnapChat,   ServiceId::kWhatsApp, ServiceId::kInstagram,
  };
  const ServiceId infra[] = {ServiceId::kFacebook, ServiceId::kInstagram, ServiceId::kYouTube};
  const auto& dir = ew::asn::AsnDirectory::standard();

  std::printf("longitudinal study 2013-03 .. 2017-09 -> %s (%d sample days/month)\n",
              out_dir.c_str(), days_per_month);

  for (ew::core::MonthIndex month{2013, 3}; month <= ew::core::MonthIndex{2017, 9};
       month = month + 1) {
    // ---- generate this month's sample days (streamed; freed at the end
    // of the iteration) -----------------------------------------------
    std::vector<ew::analytics::DayAggregate> days;
    for (int i = 0; i < days_per_month && i < 2; ++i) {
      days.push_back(gen.day_aggregate({month.year(),
                                        static_cast<std::uint8_t>(month.month()),
                                        static_cast<std::uint8_t>(kSampleDays[i])}));
    }

    const auto trend = ew::analytics::volume_trend(days);
    for (const auto& row : trend) {
      fig3 << row.month.to_string() << ',' << row.down_mb[0] << ',' << row.down_mb[1] << ','
           << row.up_mb[0] << ',' << row.up_mb[1] << '\n';
    }

    const auto matrix = ew::analytics::service_matrix(days, ew::flow::AccessTech::kAdsl);
    for (std::size_t s = 0; s < ew::services::kServiceCount; ++s) {
      const auto id = static_cast<ServiceId>(s);
      if (id == ServiceId::kOther) continue;
      fig5 << month.to_string() << ',' << ew::services::to_string(id) << ','
           << matrix.cells[s][0].popularity_pct << ',' << matrix.cells[s][0].byte_share_pct
           << '\n';
    }

    for (const auto id : tracked) {
      const auto rows = ew::analytics::service_trend(days, id);
      for (const auto& row : rows) {
        fig67 << month.to_string() << ',' << ew::services::to_string(id) << ','
              << row.popularity_pct[0] << ',' << row.popularity_pct[1] << ','
              << row.mb_per_user[0] << ',' << row.mb_per_user[1] << '\n';
      }
    }

    const auto protocols = ew::analytics::protocol_shares(days);
    for (const auto& row : protocols) {
      using WP = ew::dpi::WebProtocol;
      auto share = [&row](WP p) { return row.share_pct[static_cast<std::size_t>(p)]; };
      fig8 << month.to_string() << ',' << share(WP::kHttp) << ',' << share(WP::kTls) << ','
           << share(WP::kSpdy) << ',' << share(WP::kHttp2) << ',' << share(WP::kQuic) << ','
           << share(WP::kFbZero) << '\n';
    }

    if (month.year() == 2014) {
      for (const auto& row : ew::analytics::daily_service_volume(days, ServiceId::kFacebook)) {
        fig9 << row.date.to_string() << ',' << row.mb_per_user << ',' << row.users << '\n';
      }
    }

    for (const auto id : infra) {
      const auto lifecycle = ew::analytics::ip_lifecycle(days, id);
      const auto asns = ew::analytics::asn_breakdown(
          days, id, [&gen](ew::core::MonthIndex m) -> const ew::asn::Rib& { return gen.rib(m); });
      const auto domains = ew::analytics::domain_shares(days, id);
      std::string top_asn = "-";
      double best_ips = -1;
      for (const auto& [asn_num, ips] : asns[0].ips_by_asn) {
        if (ips > best_ips) {
          best_ips = ips;
          top_asn = std::string(dir.name(asn_num));
        }
      }
      std::string top_domain = "-";
      double best_share = -1;
      for (const auto& [domain, pct] : domains[0].share_pct) {
        if (pct > best_share) {
          best_share = pct;
          top_domain = domain;
        }
      }
      fig11 << month.to_string() << ',' << ew::services::to_string(id) << ','
            << lifecycle.back().dedicated << ',' << lifecycle.back().shared << ','
            << lifecycle.back().cumulative_unique << ',' << top_asn << ',' << top_domain
            << '\n';
    }

    std::printf("  %s done (%zu subscribers active)\n", month.to_string().c_str(),
                days.front().active_subscribers());
  }

  std::printf("CSV series written to %s:\n", out_dir.c_str());
  for (const auto& entry : fs::directory_iterator(out_dir)) {
    std::printf("  %s\n", entry.path().filename().c_str());
  }
  return 0;
}
