// RTT explorer: replays TCP conversations against servers at different
// (simulated) distances and shows what the probe's passive seq/ack RTT
// estimator reports — the §6.1 methodology behind Fig. 10, including the
// sub-millisecond in-PoP cache of 2017 and WhatsApp's ~100 ms data centre.
//
//   ./build/examples/rtt_explorer
#include <cstdio>

#include "probe/probe.hpp"
#include "synth/packets.hpp"

namespace ew = edgewatch;

namespace {

struct Placement {
  const char* label;
  const char* host;
  ew::core::IPv4Address server;
  double rtt_ms;
};

}  // namespace

int main() {
  std::printf("edgewatch RTT explorer — passive seq/ack estimation (§2.1, Fig. 10)\n\n");
  const Placement placements[] = {
      {"in-PoP cache (2017 YouTube)", "cache-mxp-1.googlevideo.com",
       ew::core::IPv4Address{185, 45, 13, 2}, 0.45},
      {"ISP-edge CDN node", "edge-star-mini-shv-01-mxp1.facebook.com",
       ew::core::IPv4Address{157, 240, 20, 7}, 3.0},
      {"national CDN", "fbstatic-a.akamaihd.net", ew::core::IPv4Address{2, 18, 33, 44}, 11.0},
      {"European CDN", "scontent-far.fbcdn.net", ew::core::IPv4Address{2, 20, 99, 10}, 27.0},
      {"US data centre (WhatsApp-style)", "mmx-ds.cdn.whatsapp.net",
       ew::core::IPv4Address{158, 85, 14, 5}, 103.0},
  };

  std::printf("%-34s %-36s %9s %9s %9s %s\n", "placement", "host", "true ms", "est. min",
              "est. max", "samples");
  for (const auto& p : placements) {
    std::vector<ew::flow::FlowRecord> records;
    ew::probe::Probe probe{{}, [&](ew::flow::FlowRecord&& r) { records.push_back(std::move(r)); }};

    ew::synth::ConversationSpec spec;
    spec.client = ew::core::IPv4Address{10, 0, 9, 9};
    spec.server = p.server;
    spec.web = ew::dpi::WebProtocol::kTls;
    spec.server_name = p.host;
    spec.response_bytes = 64'000;
    spec.request_extra_bytes = 20'000;  // more client segments -> more samples
    spec.start = ew::core::Timestamp::from_date_time({2017, 4, 12}, 21);
    spec.rtt_us = static_cast<std::int64_t>(p.rtt_ms * 1000.0);
    for (const auto& frame : ew::synth::render_conversation(spec)) probe.process(frame);
    probe.finish();

    if (records.size() != 1 || records[0].rtt.samples == 0) {
      std::printf("%-34s no RTT samples?!\n", p.label);
      continue;
    }
    const auto& rtt = records[0].rtt;
    std::printf("%-34s %-36s %9.2f %9.2f %9.2f %7u\n", p.label, p.host, p.rtt_ms,
                rtt.min_ms(), static_cast<double>(rtt.max_us) / 1000.0, rtt.samples);
  }

  std::printf("\nNote how min-RTT tracks the configured path delay: the probe sits at\n");
  std::printf("the PoP, so these estimates exclude the subscriber access line — the\n");
  std::printf("same choice the paper makes to isolate server placement (§6.1).\n");
  return 0;
}
