#include "probe/sharded_probe.hpp"

#include <algorithm>

namespace edgewatch::probe {

namespace {

std::uint32_t rd32be(const std::vector<std::byte>& d, std::size_t pos) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | std::to_integer<std::uint32_t>(d[pos + static_cast<std::size_t>(i)]);
  }
  return v;
}

}  // namespace

ShardedProbe::ShardedProbe(ShardedProbeConfig config) : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  ProbeConfig shard_config = config_.probe;
  // Sampling is a feeder-global decision (mirrors the serial probe's
  // frame-counter arithmetic); per-shard counters would sample a
  // shard-count-dependent subset.
  shard_config.sample_rate = 1;
  // Keep the aggregate flow-memory bound of the single-probe deployment.
  shard_config.flow.max_flows =
      std::max<std::size_t>(1, config_.probe.flow.max_flows / config_.shards);

  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>(config_.queue_capacity);
    Shard* raw = shard.get();
    // Batch-buffering sink: the worker appends locally, no cross-thread
    // call per record; the merge happens once, at finish().
    shard->probe = std::make_unique<Probe>(
        shard_config, [raw](flow::FlowRecord&& record) {
          raw->records.push_back(std::move(record));
        });
    shard->worker = std::thread([this, raw] { worker_loop(*raw); });
    shards_.push_back(std::move(shard));
  }
}

ShardedProbe::~ShardedProbe() { (void)finish(); }

std::size_t ShardedProbe::shard_of(const net::Frame& frame) const noexcept {
  // Cheap L3/L4 peek — the full decode happens on the worker. Ethernet
  // header is 14 bytes; IPv4 src/dst sit at fixed offsets 26/30 whatever
  // the IHL. Non-IPv4 frames (IPv6, ARP, runts) carry no flow state, so
  // any deterministic shard works; they go to shard 0 for counting.
  if (shards_.size() == 1) return 0;
  const auto& d = frame.data;
  if (d.size() < 34) return 0;
  const auto ethertype = (std::to_integer<std::uint16_t>(d[12]) << 8) |
                         std::to_integer<std::uint16_t>(d[13]);
  if (ethertype != 0x0800) return 0;
  const core::IPv4Address src{rd32be(d, 26)};
  const core::IPv4Address dst{rd32be(d, 30)};
  const auto& net = config_.probe.customer_net;

  // DNS traffic is keyed by the *client*, whichever direction the packet
  // travels: DN-Hunter's cache lives on the client's shard, and in-net
  // resolvers would otherwise pull responses onto the resolver's shard.
  const auto proto = std::to_integer<std::uint8_t>(d[23]);
  if (proto == 17) {  // UDP
    const std::size_t ihl = (std::to_integer<std::size_t>(d[14]) & 0x0f) * 4;
    const std::size_t l4 = 14 + ihl;
    if (ihl >= 20 && d.size() >= l4 + 4) {
      const auto sport = (std::to_integer<std::uint16_t>(d[l4]) << 8) |
                         std::to_integer<std::uint16_t>(d[l4 + 1]);
      const auto dport = (std::to_integer<std::uint16_t>(d[l4 + 2]) << 8) |
                         std::to_integer<std::uint16_t>(d[l4 + 3]);
      if (sport == 53 && net.contains(dst)) {
        return core::IPv4AddressHash{}(dst) % shards_.size();  // response → client
      }
      if (dport == 53 && net.contains(src)) {
        return core::IPv4AddressHash{}(src) % shards_.size();  // query from client
      }
    }
  }

  // Shard key: the customer side (per-subscription analytics, per-client
  // DN-Hunter). The rule must be direction-symmetric so both halves of a
  // flow land on the same shard: exactly one side in the customer net →
  // that side; both or neither → the smaller address.
  const bool src_in = net.contains(src);
  const bool dst_in = net.contains(dst);
  const core::IPv4Address key = src_in == dst_in ? std::min(src, dst) : (src_in ? src : dst);
  return core::IPv4AddressHash{}(key) % shards_.size();
}

void ShardedProbe::ingest(net::Frame frame) {
  if (finished_) return;
  ++feeder_frames_;
  if (config_.probe.sample_rate > 1 &&
      (feeder_frames_ % config_.probe.sample_rate) != 0) {
    ++feeder_sampled_out_;
    return;
  }
  Item item;
  item.seq = next_seq_++;
  item.frame = std::move(frame);
  const std::size_t target = shard_of(item.frame);
  shards_[target]->queue.push(std::move(item));
}

bool ShardedProbe::try_ingest(net::Frame& frame) {
  if (finished_) return false;
  Item item;
  item.seq = next_seq_;  // claimed only on success
  item.frame = std::move(frame);
  const std::size_t target = shard_of(item.frame);
  if (!shards_[target]->queue.try_push(std::move(item))) {
    // try_push leaves the item untouched on failure; give the frame back.
    frame = std::move(item.frame);
    return false;
  }
  ++next_seq_;
  ++feeder_frames_;
  return true;
}

void ShardedProbe::broadcast(Item::Kind kind, dpi::ClassifierOptions options) {
  if (finished_) return;
  for (auto& shard : shards_) {
    Item item;
    item.kind = kind;
    item.options = options;
    shard->queue.push(std::move(item));
  }
}

void ShardedProbe::set_classifier_options(dpi::ClassifierOptions options) {
  broadcast(Item::Kind::kClassifier, options);
}

void ShardedProbe::begin_outage() { broadcast(Item::Kind::kBeginOutage); }

void ShardedProbe::end_outage() { broadcast(Item::Kind::kEndOutage); }

std::vector<std::shared_ptr<ShardedProbe::BarrierSlot>> ShardedProbe::barrier(
    Item::Kind kind, const std::vector<std::vector<std::byte>>* state_in) {
  std::vector<std::shared_ptr<BarrierSlot>> slots;
  slots.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto slot = std::make_shared<BarrierSlot>();
    if (state_in != nullptr) slot->state_in = (*state_in)[i];
    Item item;
    item.kind = kind;
    item.barrier = slot;
    shards_[i]->queue.push(std::move(item));
    slots.push_back(std::move(slot));
  }
  for (auto& slot : slots) slot->done.wait(false);
  return slots;
}

PipelineSnapshot ShardedProbe::snapshot() {
  PipelineSnapshot snap;
  if (finished_) return snap;
  const auto slots = barrier(Item::Kind::kSnapshot, nullptr);
  snap.next_seq = next_seq_;
  snap.shard_state.reserve(slots.size());
  std::size_t total = 0;
  for (const auto& slot : slots) total += slot->records.size();
  snap.records.reserve(total);
  for (const auto& slot : slots) {
    snap.shard_state.push_back(std::move(slot->state_out));
    std::move(slot->records.begin(), slot->records.end(), std::back_inserter(snap.records));
  }
  std::sort(snap.records.begin(), snap.records.end(),
            [](const flow::FlowRecord& a, const flow::FlowRecord& b) {
              return a.ingest_seq < b.ingest_seq;
            });
  return snap;
}

core::Result<void> ShardedProbe::restore(
    const std::vector<std::vector<std::byte>>& shard_state, std::uint64_t next_seq) {
  if (finished_) return core::Errc::kUnsupported;
  if (shard_state.size() != shards_.size()) return core::Errc::kUnsupported;
  const auto slots = barrier(Item::Kind::kRestore, &shard_state);
  for (const auto& slot : slots) {
    if (slot->errc != core::Errc::kOk) return slot->errc;
  }
  next_seq_ = next_seq;
  feeder_frames_ = next_seq;
  return {};
}

void ShardedProbe::handle_frame(Shard& shard, Item& item) {
  bool state_suspect = false;
  try {
    if (config_.frame_inspector) config_.frame_inspector(item.seq, item.frame);
    state_suspect = true;  // from here on, a throw leaves the probe half-mutated
    shard.probe->set_next_ingest_seq(item.seq);
    shard.probe->process(item.frame);
    if (config_.snapshot_interval > 0 &&
        ++shard.frames_since_snapshot >= config_.snapshot_interval) {
      shard.last_snapshot = shard.probe->checkpoint_image();
      shard.frames_since_snapshot = 0;
    }
    return;
  } catch (const StateSuspectError&) {
    state_suspect = true;
  } catch (...) {
    // Inspector threw before processing started: probe state untouched.
  }

  // Poison frame: quarantine it and, if the probe may be half-mutated,
  // roll the shard back to its last good state instead of letting one bad
  // frame take down five years of uptime.
  bool restored = false;
  if (state_suspect) {
    if (!shard.last_snapshot.empty() &&
        shard.probe->restore_image(shard.last_snapshot).ok()) {
      restored = true;
    } else {
      // No snapshot to roll back to (snapshot_interval == 0 or capture
      // failed): drop the flow state the outage way — without exporting
      // records from a suspect table.
      shard.probe->begin_outage();
      shard.probe->end_outage();
    }
    shard.frames_since_snapshot = 0;
    shard.restores.fetch_add(1, std::memory_order_relaxed);
  }
  shard.quarantined.fetch_add(1, std::memory_order_relaxed);
  if (config_.poison_sink) config_.poison_sink(item.seq, item.frame, restored);
}

void ShardedProbe::worker_loop(Shard& shard) {
  if (config_.snapshot_interval > 0) {
    // Initial snapshot: a poison frame before the first interval elapses
    // still has a good (empty) state to roll back to.
    shard.last_snapshot = shard.probe->checkpoint_image();
  }
  while (auto item = shard.queue.pop()) {
    if (abandoned_.load(std::memory_order_acquire)) {
      // Simulated kill: drain without processing. Barrier waiters are
      // unblocked so the feeder never hangs on a dead pipeline.
      if (item->barrier) {
        item->barrier->errc = core::Errc::kCrashed;
        item->barrier->done.store(true, std::memory_order_release);
        item->barrier->done.notify_one();
      }
      continue;
    }
    switch (item->kind) {
      case Item::Kind::kFrame:
        handle_frame(shard, *item);
        break;
      case Item::Kind::kClassifier:
        shard.probe->set_classifier_options(item->options);
        break;
      case Item::Kind::kBeginOutage:
        shard.probe->begin_outage();
        break;
      case Item::Kind::kEndOutage:
        shard.probe->end_outage();
        break;
      case Item::Kind::kSnapshot: {
        auto& slot = *item->barrier;
        slot.state_out = shard.probe->checkpoint_image();
        if (config_.snapshot_interval > 0) {
          // Re-anchor poison rollback at the barrier image: a run resumed
          // from this checkpoint starts with exactly this snapshot, so the
          // rollback schedule replays identically after recovery.
          shard.last_snapshot = slot.state_out;
          shard.frames_since_snapshot = 0;
        }
        slot.records = std::move(shard.records);
        shard.records.clear();
        slot.done.store(true, std::memory_order_release);
        slot.done.notify_one();
        break;
      }
      case Item::Kind::kRestore: {
        auto& slot = *item->barrier;
        const auto r = shard.probe->restore_image(slot.state_in);
        slot.errc = r ? core::Errc::kOk : r.error();
        if (config_.snapshot_interval > 0) {
          shard.last_snapshot = shard.probe->checkpoint_image();
          shard.frames_since_snapshot = 0;
        }
        slot.done.store(true, std::memory_order_release);
        slot.done.notify_one();
        break;
      }
    }
    shard.heartbeat.fetch_add(1, std::memory_order_release);
  }
  if (abandoned_.load(std::memory_order_acquire)) return;  // killed: no flush
  // Ring closed and drained: flush the shard's open flows. The exports
  // land in shard.records with their creation-time tags, so the merge
  // below puts them where the serial probe's flush would.
  shard.probe->finish();
}

void ShardedProbe::join_workers() {
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ShardedProbe::abandon() {
  if (finished_) return;
  finished_ = true;
  abandoned_.store(true, std::memory_order_release);
  join_workers();
  for (auto& shard : shards_) {
    shard->records.clear();
    shard->records.shrink_to_fit();
  }
}

std::vector<flow::FlowRecord> ShardedProbe::finish() {
  if (finished_) return {};
  finished_ = true;
  join_workers();

  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->records.size();
  std::vector<flow::FlowRecord> merged;
  merged.reserve(total);
  for (auto& shard : shards_) {
    std::move(shard->records.begin(), shard->records.end(), std::back_inserter(merged));
    shard->records.clear();
    shard->records.shrink_to_fit();
  }
  // The seq-tagged merge: ingest_seq is unique across shards (one global
  // counter, one creating packet per flow), so this order is total and
  // shard-count-independent.
  std::sort(merged.begin(), merged.end(),
            [](const flow::FlowRecord& a, const flow::FlowRecord& b) {
              return a.ingest_seq < b.ingest_seq;
            });
  return merged;
}

std::size_t ShardedProbe::queue_depth(std::size_t i) const noexcept {
  return shards_[i]->queue.size();
}

std::size_t ShardedProbe::queue_capacity() const noexcept {
  return shards_.empty() ? 0 : shards_[0]->queue.capacity();
}

std::uint64_t ShardedProbe::heartbeat(std::size_t i) const noexcept {
  return shards_[i]->heartbeat.load(std::memory_order_acquire);
}

std::uint64_t ShardedProbe::quarantined(std::size_t i) const noexcept {
  return shards_[i]->quarantined.load(std::memory_order_relaxed);
}

std::uint64_t ShardedProbe::quarantined_total() const noexcept {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->quarantined.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t ShardedProbe::state_restores() const noexcept {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->restores.load(std::memory_order_relaxed);
  return n;
}

Probe::Counters ShardedProbe::counters() const {
  Probe::Counters total;
  for (const auto& shard : shards_) {
    const auto& c = shard->probe->counters();
    total.frames += c.frames;
    total.decode_failures += c.decode_failures;
    total.ipv6_frames += c.ipv6_frames;
    total.dropped_offline += c.dropped_offline;
    total.dns_responses += c.dns_responses;
    total.records_exported += c.records_exported;
    total.records_named_by_dns += c.records_named_by_dns;
  }
  // Sampling happens at the feeder; sampled frames never reach a shard
  // but the serial probe counts them as seen.
  total.frames += feeder_sampled_out_;
  total.sampled_out = feeder_sampled_out_;
  return total;
}

}  // namespace edgewatch::probe
