// The passive probe (paper §2.1, Fig. 1): one instance per monitored PoP
// link. Frames go through L2-L4 decode, the flow table, DPI, DNS
// observation (DN-Hunter), and finished flows are exported as FlowRecords
// with the customer address anonymized and the access technology attached.
//
// The probe also models two operational realities of §2.3:
//  - outages: while offline, traffic is simply not observed (and state
//    accumulated before a hardware failure is lost, not exported);
//  - software versions: the DPI capabilities change over time (events C/F),
//    configurable via set_classifier_options().
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "anon/anonymizer.hpp"
#include "core/result.hpp"
#include "core/types.hpp"
#include "dns/dnhunter.hpp"
#include "flow/table.hpp"
#include "net/packet.hpp"
#include "obs/obs.hpp"

namespace edgewatch::core {
class ByteWriter;
class ByteReader;
}  // namespace edgewatch::core

namespace edgewatch::probe {

struct ProbeConfig {
  /// Customer address space: the side of each flow that gets anonymized
  /// and is attributed to a subscription.
  core::IPv4Prefix customer_net{core::IPv4Address{10, 0, 0, 0}, 8};
  /// ADSL vs FTTH split inside the customer net (per-line technology).
  core::IPv4Prefix ftth_net{core::IPv4Address{10, 128, 0, 0}, 9};
  core::SipKey anon_key{0x5eedf00ddeadbeefull, 0x0123456789abcdefull};
  flow::FlowTableConfig flow;
  dns::DnHunterConfig dnhunter;
  /// Packet sampling: process 1 in `sample_rate` packets (1 = everything).
  /// The paper's probes do NOT sample ("no traffic sampling is performed",
  /// §2.1); bench_ablation_sampling quantifies what sampling would cost.
  std::uint32_t sample_rate = 1;
};

class Probe {
 public:
  using RecordSink = std::function<void(flow::FlowRecord&&)>;

  Probe(ProbeConfig config, RecordSink sink);

  /// Feed one captured frame (decode failures are counted, not fatal).
  void process(const net::Frame& frame);

  /// Feed a batch of captured frames, in order. Exactly equivalent to
  /// calling process(frame) on each — decode is a pure function — but
  /// software-pipelined: the next frame's buffer is prefetched and decoded,
  /// and its flow-table slot warmed, while the current packet runs the flow
  /// state machine. This overlaps the per-frame DRAM fetches (the replay
  /// loop's dominant stall) with useful work.
  void process(std::span<const net::Frame> frames);

  /// Feed an already decoded packet (the synthetic generator's fast path).
  void process(const net::DecodedPacket& packet);

  /// Flush all open flows (end of trace / graceful shutdown).
  void finish();

  /// Hardware outage: the probe stops seeing traffic and loses its state
  /// *without* exporting it (the paper's "missing data" periods).
  void begin_outage();
  void end_outage();
  [[nodiscard]] bool online() const noexcept { return online_; }

  /// Probe software upgrade (paper events C/F change what DPI can label).
  void set_classifier_options(dpi::ClassifierOptions options);

  /// Override the arrival index stamped into the next created flow (see
  /// FlowTable::set_next_ingest_seq). ShardedProbe drives this with a
  /// probe-global frame sequence to make its merged export order
  /// shard-count-independent.
  void set_next_ingest_seq(std::uint64_t seq) noexcept { table_.set_next_ingest_seq(seq); }

  /// Planned-maintenance checkpoint (implemented in checkpoint.cpp): write
  /// the live flow table, DN-Hunter caches and counters to `path` so a
  /// restart can resume without the state loss of begin_outage(). The file
  /// is CRC-protected; returns bytes written.
  core::Result<std::uint64_t> save_checkpoint(const std::filesystem::path& path) const;
  /// Replace this probe's state with a saved checkpoint. On any error the
  /// probe is left reset (empty tables) rather than half-restored.
  core::Result<void> restore_checkpoint(const std::filesystem::path& path);

  /// The same CRC-protected EWCP image save_checkpoint() writes, but in
  /// memory: the sharded pipeline's supervision layer snapshots every shard
  /// through this (per-shard blobs ride inside one pipeline checkpoint
  /// file) and the poison-frame watchdog restores a shard from its last
  /// good in-memory image without touching the filesystem.
  [[nodiscard]] std::vector<std::byte> checkpoint_image() const;
  /// Inverse of checkpoint_image(); same failure contract as
  /// restore_checkpoint (on error the probe is reset, never half-restored).
  core::Result<void> restore_image(std::span<const std::byte> image);

  struct Counters {
    std::uint64_t frames = 0;
    std::uint64_t decode_failures = 0;
    std::uint64_t ipv6_frames = 0;  ///< Seen and counted, not flow-tracked.
    std::uint64_t sampled_out = 0;
    std::uint64_t dropped_offline = 0;
    std::uint64_t dns_responses = 0;
    std::uint64_t records_exported = 0;
    std::uint64_t records_named_by_dns = 0;
  };
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  [[nodiscard]] const dns::DnHunter& dnhunter() const noexcept { return dnhunter_; }
  [[nodiscard]] const flow::FlowTable& table() const noexcept { return table_; }

  /// Access technology for a (real, pre-anonymization) customer address.
  [[nodiscard]] flow::AccessTech access_tech(core::IPv4Address customer) const noexcept {
    return config_.ftth_net.contains(customer) ? flow::AccessTech::kFtth
                                               : flow::AccessTech::kAdsl;
  }

 private:
  void on_export(flow::FlowRecord&& record);

  /// Shared per-packet body; Timed adds the sampled stage clocks (only
  /// taken 1 frame in 1024, so the steady_clock reads never show up in
  /// the per-frame budget).
  template <bool Timed>
  void process_impl(const net::DecodedPacket& packet);

  /// Push counters_ growth since the last flush into the global registry
  /// (batch boundaries and finish() — the hot loop touches no atomics).
  void obs_flush() noexcept;

  /// Checkpoint payload codec shared by the file and in-memory paths
  /// (checkpoint.cpp).
  void encode_checkpoint_payload(core::ByteWriter& payload) const;
  core::Result<void> decode_checkpoint_payload(core::ByteReader& r);

  /// Per-frame accounting shared by the single-frame and pipelined paths:
  /// online check, frame counter, sampling, IPv6 triage. True if the frame
  /// should proceed to flow tracking.
  bool prepare_frame(const net::Frame& frame);

  /// Named export callable for the flow table's non-owning FunctionRef
  /// sink. Declared before table_ so it outlives every export. A probe is
  /// consequently not movable (the table holds a reference into it) —
  /// which was already true of the old self-capturing lambda.
  struct TableSink {
    Probe* probe;
    void operator()(flow::FlowRecord&& record) const { probe->on_export(std::move(record)); }
  };

  ProbeConfig config_;
  RecordSink sink_;
  anon::CustomerAnonymizer anonymizer_;
  dns::DnHunter dnhunter_;
  TableSink table_sink_{this};
  flow::FlowTable table_;
  bool online_ = true;
  bool muted_ = false;  ///< Discard exports (outage-time state loss).
  Counters counters_;

  /// obs:: wiring, resolved once at construction. Counters mirror
  /// counters_ via saturating delta flush (a checkpoint restore may move
  /// counters_ backwards; the registry stays monotonic). Stage histograms
  /// are fed by sampled clocks — see kStageSampleMask.
  static constexpr std::uint64_t kStageSampleMask = 1023;  ///< time 1 in 1024
  static constexpr std::uint64_t kExportSampleMask = 63;   ///< time 1 in 64
  struct ObsHooks {
    obs::Counter* frames = nullptr;
    obs::Counter* decode_failures = nullptr;
    obs::Counter* ipv6_frames = nullptr;
    obs::Counter* sampled_out = nullptr;
    obs::Counter* dropped_offline = nullptr;
    obs::Counter* dns_responses = nullptr;
    obs::Counter* records_exported = nullptr;
    obs::Counter* records_named_by_dns = nullptr;
    obs::Histogram* stage_decode = nullptr;
    obs::Histogram* stage_flow = nullptr;
    obs::Histogram* stage_dnhunter = nullptr;
    obs::Histogram* stage_export = nullptr;
    obs::SpanSite* batch = nullptr;
    Counters flushed;          ///< counters_ values already in the registry
    std::uint64_t ticks = 0;   ///< packet tick driving stage sampling
  };
  ObsHooks obs_;
};

}  // namespace edgewatch::probe
