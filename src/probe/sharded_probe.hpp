// Sharded parallel probe (ROADMAP: "runs as fast as the hardware allows").
// The paper scaled by running one probe process per PoP link (§2.1); this
// scales one link's software pipeline across cores by hashing the customer
// address into N independent Probe shards — each with its own flow table,
// DPI state and DN-Hunter cache — fed through bounded SPSC rings and
// drained by one worker thread per shard.
//
// Why the customer address is the shard key: every analytics dimension of
// the paper is per-subscription, and DN-Hunter's cache is per-client by
// construction (IMC'12: the name a *client* resolved right before opening
// *its* flow). Routing both the customer's flows and the DNS responses
// travelling to that customer onto the same shard preserves DN-Hunter's
// per-client semantics exactly — a shard sees the same packets for its
// clients that a single-threaded probe would, in the same order.
//
// Determinism: the feeder stamps every frame with a global arrival
// sequence number; the flow table records the stamp of the packet that
// created each flow in `FlowRecord::ingest_seq`. Because one packet
// creates at most one flow and every packet has exactly one global seq,
// the tag is unique per record and independent of the shard count.
// finish() merges the per-shard export buffers by that tag, yielding a
// record stream (creation order) that is byte-identical for N = 1, 4, 8, …
// and equal, as a re-ordering, to the single-threaded probe's stream.
// Three documented exceptions, all absent from the paper's deployment:
// packet sampling is applied at the feeder (globally, like the serial
// probe) so shards never sample; per-shard max_flows force-eviction can
// split flows differently than a single shared table once the aggregate
// cap is exceeded; and a flow whose idle deadline falls between its
// shard's last packet timestamp and the stream's may report kProbeFlush
// where the serial probe reports kIdleTimeout (each shard's clock only
// advances on its own packets).
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/spsc_queue.hpp"
#include "flow/record.hpp"
#include "net/packet.hpp"
#include "probe/probe.hpp"

namespace edgewatch::probe {

struct ShardedProbeConfig {
  /// Template for every shard. `sample_rate` is honoured globally at the
  /// feeder (shards never sample); `flow.max_flows` is divided across
  /// shards so the aggregate memory bound is unchanged.
  ProbeConfig probe;
  std::size_t shards = 4;
  /// Frames buffered per shard ring before the feeder blocks
  /// (backpressure keeps memory bounded when one shard falls behind).
  std::size_t queue_capacity = 1024;
};

class ShardedProbe {
 public:
  explicit ShardedProbe(ShardedProbeConfig config);
  ~ShardedProbe();

  ShardedProbe(const ShardedProbe&) = delete;
  ShardedProbe& operator=(const ShardedProbe&) = delete;

  /// Feed one captured frame (single feeder thread). Blocks when the
  /// owning shard's ring is full. The frame is moved into the ring; pass
  /// a copy to keep the original.
  void ingest(net::Frame frame);

  /// Control events ride the same rings as frames, so they take effect at
  /// exactly the same stream position on every shard (upgrade events C/F,
  /// outage windows of §2.3).
  void set_classifier_options(dpi::ClassifierOptions options);
  void begin_outage();
  void end_outage();

  /// Drain every ring, flush every shard, join the workers, and return
  /// all exported records merged by `ingest_seq` (deterministic creation
  /// order, independent of the shard count). Idempotent; after the first
  /// call the probe accepts no more frames.
  [[nodiscard]] std::vector<flow::FlowRecord> finish();

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Aggregated per-shard counters plus the feeder's frame/sampling
  /// counts. Only meaningful after finish() (shard state is thread-owned
  /// while the workers run).
  [[nodiscard]] Probe::Counters counters() const;

 private:
  struct Item {
    enum class Kind : std::uint8_t { kFrame, kClassifier, kBeginOutage, kEndOutage };
    Kind kind = Kind::kFrame;
    std::uint64_t seq = 0;
    net::Frame frame;
    dpi::ClassifierOptions options;
  };

  struct Shard {
    explicit Shard(std::size_t queue_capacity) : queue(queue_capacity) {}
    core::SpscQueue<Item> queue;
    std::unique_ptr<Probe> probe;
    std::vector<flow::FlowRecord> records;  ///< Written by worker, read after join.
    std::thread worker;
  };

  [[nodiscard]] std::size_t shard_of(const net::Frame& frame) const noexcept;
  void broadcast(Item::Kind kind, dpi::ClassifierOptions options = {});
  void worker_loop(Shard& shard);

  ShardedProbeConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t feeder_frames_ = 0;
  std::uint64_t feeder_sampled_out_ = 0;
  bool finished_ = false;
};

}  // namespace edgewatch::probe
