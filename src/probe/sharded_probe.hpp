// Sharded parallel probe (ROADMAP: "runs as fast as the hardware allows").
// The paper scaled by running one probe process per PoP link (§2.1); this
// scales one link's software pipeline across cores by hashing the customer
// address into N independent Probe shards — each with its own flow table,
// DPI state and DN-Hunter cache — fed through bounded SPSC rings and
// drained by one worker thread per shard.
//
// Why the customer address is the shard key: every analytics dimension of
// the paper is per-subscription, and DN-Hunter's cache is per-client by
// construction (IMC'12: the name a *client* resolved right before opening
// *its* flow). Routing both the customer's flows and the DNS responses
// travelling to that customer onto the same shard preserves DN-Hunter's
// per-client semantics exactly — a shard sees the same packets for its
// clients that a single-threaded probe would, in the same order.
//
// Determinism: the feeder stamps every frame with a global arrival
// sequence number; the flow table records the stamp of the packet that
// created each flow in `FlowRecord::ingest_seq`. Because one packet
// creates at most one flow and every packet has exactly one global seq,
// the tag is unique per record and independent of the shard count.
// finish() merges the per-shard export buffers by that tag, yielding a
// record stream (creation order) that is byte-identical for N = 1, 4, 8, …
// and equal, as a re-ordering, to the single-threaded probe's stream.
// Three documented exceptions, all absent from the paper's deployment:
// packet sampling is applied at the feeder (globally, like the serial
// probe) so shards never sample; per-shard max_flows force-eviction can
// split flows differently than a single shared table once the aggregate
// cap is exceeded; and a flow whose idle deadline falls between its
// shard's last packet timestamp and the stream's may report kProbeFlush
// where the serial probe reports kIdleTimeout (each shard's clock only
// advances on its own packets).
//
// Supervision hooks (runtime::Supervisor, DESIGN §11): the feeder can
// probe ring occupancy (try_ingest + queue_depth) to drive overload-aware
// shedding, read per-shard heartbeats for stall detection, quarantine a
// frame whose processing throws (restoring the shard's probe from its last
// good in-memory checkpoint instead of killing the process), and run
// coordinated snapshot/restore barriers through the rings so a pipeline
// checkpoint captures every shard at exactly the same stream position.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/result.hpp"
#include "core/spsc_queue.hpp"
#include "flow/record.hpp"
#include "net/packet.hpp"
#include "probe/probe.hpp"

namespace edgewatch::probe {

/// Thrown by a frame inspector (or anything reached from Probe::process)
/// to signal that the shard's probe state may be half-mutated and must be
/// rolled back to its last good snapshot, not merely skipped past. Any
/// other exception thrown *before* processing starts leaves the probe
/// untouched, so the worker only quarantines the frame.
struct StateSuspectError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ShardedProbeConfig {
  /// Template for every shard. `sample_rate` is honoured globally at the
  /// feeder (shards never sample); `flow.max_flows` is divided across
  /// shards so the aggregate memory bound is unchanged.
  ProbeConfig probe;
  std::size_t shards = 4;
  /// Frames buffered per shard ring before the feeder blocks
  /// (backpressure keeps memory bounded when one shard falls behind).
  std::size_t queue_capacity = 1024;

  /// Invoked on the worker thread for every frame, before it reaches the
  /// shard's probe. The hook where payload-touching extensions plug in —
  /// and where the chaos harness injects poison (throw) and stalls
  /// (block). May throw: a plain exception quarantines the frame (probe
  /// state untouched); StateSuspectError additionally restores the shard
  /// from its last snapshot.
  std::function<void(std::uint64_t seq, const net::Frame&)> frame_inspector;
  /// Invoked on the worker thread when a frame is quarantined.
  /// `state_restored` tells whether the shard rolled back to a snapshot.
  std::function<void(std::uint64_t seq, const net::Frame&, bool state_restored)> poison_sink;
  /// Worker-local frames between automatic probe snapshots (the "last good
  /// state" a poison rollback restores). 0 disables snapshots — a poison
  /// frame then resets the shard to empty.
  std::uint64_t snapshot_interval = 0;
};

/// Coordinated state capture of the whole sharded pipeline at one stream
/// position: every shard's EWCP image, plus all records exported so far
/// (drained, merged in creation order). Taken via ShardedProbe::snapshot().
struct PipelineSnapshot {
  std::uint64_t next_seq = 0;                       ///< First unassigned frame seq.
  std::vector<std::vector<std::byte>> shard_state;  ///< One EWCP image per shard.
  std::vector<flow::FlowRecord> records;            ///< Exported so far, by ingest_seq.
};

class ShardedProbe {
 public:
  explicit ShardedProbe(ShardedProbeConfig config);
  ~ShardedProbe();

  ShardedProbe(const ShardedProbe&) = delete;
  ShardedProbe& operator=(const ShardedProbe&) = delete;

  /// Feed one captured frame (single feeder thread). Blocks when the
  /// owning shard's ring is full. The frame is moved into the ring; pass
  /// a copy to keep the original.
  void ingest(net::Frame frame);

  /// Non-blocking ingest for overload-aware feeders: false when the owning
  /// shard's ring is full (the frame is left in `frame`, no sequence
  /// number is consumed — the caller may retry, reroute or shed it).
  [[nodiscard]] bool try_ingest(net::Frame& frame);

  /// Control events ride the same rings as frames, so they take effect at
  /// exactly the same stream position on every shard (upgrade events C/F,
  /// outage windows of §2.3).
  void set_classifier_options(dpi::ClassifierOptions options);
  void begin_outage();
  void end_outage();

  /// Checkpoint barrier: wait for every shard to drain its ring, then
  /// capture each probe's state and hand over all exported records. After
  /// it returns, the pipeline keeps running — this is the supervisor's
  /// periodic pipeline checkpoint, not a shutdown.
  [[nodiscard]] PipelineSnapshot snapshot();

  /// Restore barrier: replace every shard's probe state with the given
  /// EWCP images (one per shard, from PipelineSnapshot::shard_state) and
  /// reset the feeder's frame sequence to `next_seq`. Must run before any
  /// frame is ingested. Fails with kUnsupported on a shard-count mismatch;
  /// a shard whose image fails to decode is left reset and reported.
  core::Result<void> restore(const std::vector<std::vector<std::byte>>& shard_state,
                             std::uint64_t next_seq);

  /// Drain every ring, flush every shard, join the workers, and return
  /// all exported records merged by `ingest_seq` (deterministic creation
  /// order, independent of the shard count). Idempotent; after the first
  /// call the probe accepts no more frames.
  [[nodiscard]] std::vector<flow::FlowRecord> finish();

  /// Simulated hard kill (chaos harness): stop the workers without
  /// flushing open flows or exporting anything — in-memory state dies
  /// exactly as it would with SIGKILL. Idempotent with finish().
  void abandon();

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

  /// --- Observability for the supervision layer (any thread) ---
  /// Frames currently buffered in shard `i`'s ring.
  [[nodiscard]] std::size_t queue_depth(std::size_t i) const noexcept;
  [[nodiscard]] std::size_t queue_capacity() const noexcept;
  /// Heartbeat: items shard `i`'s worker has fully handled. A shard whose
  /// heartbeat stands still while its ring is non-empty is stalled.
  [[nodiscard]] std::uint64_t heartbeat(std::size_t i) const noexcept;
  /// Frames quarantined (processing threw) per shard / total.
  [[nodiscard]] std::uint64_t quarantined(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t quarantined_total() const noexcept;
  /// Poison rollbacks that restored a shard from its last snapshot.
  [[nodiscard]] std::uint64_t state_restores() const noexcept;

  /// Aggregated per-shard counters plus the feeder's frame/sampling
  /// counts. Only meaningful after finish() (shard state is thread-owned
  /// while the workers run).
  [[nodiscard]] Probe::Counters counters() const;

 private:
  /// Filled by the worker at a snapshot/restore barrier item.
  struct BarrierSlot {
    std::vector<std::byte> state_in;     ///< kRestore: image to apply.
    std::vector<std::byte> state_out;    ///< kSnapshot: captured image.
    std::vector<flow::FlowRecord> records;  ///< kSnapshot: drained exports.
    core::Errc errc = core::Errc::kOk;
    std::atomic<bool> done{false};
  };

  struct Item {
    enum class Kind : std::uint8_t {
      kFrame,
      kClassifier,
      kBeginOutage,
      kEndOutage,
      kSnapshot,
      kRestore,
    };
    Kind kind = Kind::kFrame;
    std::uint64_t seq = 0;
    net::Frame frame;
    dpi::ClassifierOptions options;
    std::shared_ptr<BarrierSlot> barrier;
  };

  struct Shard {
    explicit Shard(std::size_t queue_capacity) : queue(queue_capacity) {}
    core::SpscQueue<Item> queue;
    std::unique_ptr<Probe> probe;
    std::vector<flow::FlowRecord> records;  ///< Written by worker, read after join.
    std::thread worker;
    // Worker-owned poison-recovery state.
    std::vector<std::byte> last_snapshot;
    std::uint64_t frames_since_snapshot = 0;
    // Cross-thread observability.
    std::atomic<std::uint64_t> heartbeat{0};
    std::atomic<std::uint64_t> quarantined{0};
    std::atomic<std::uint64_t> restores{0};
  };

  [[nodiscard]] std::size_t shard_of(const net::Frame& frame) const noexcept;
  void broadcast(Item::Kind kind, dpi::ClassifierOptions options = {});
  /// Push one barrier item per shard and wait for every worker to mark its
  /// slot done. Returns the slots for harvesting.
  std::vector<std::shared_ptr<BarrierSlot>> barrier(
      Item::Kind kind, const std::vector<std::vector<std::byte>>* state_in);
  void worker_loop(Shard& shard);
  void handle_frame(Shard& shard, Item& item);
  void join_workers();

  ShardedProbeConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t feeder_frames_ = 0;
  std::uint64_t feeder_sampled_out_ = 0;
  std::atomic<bool> abandoned_{false};
  bool finished_ = false;
};

}  // namespace edgewatch::probe
