#include "probe/probe.hpp"

#include "dns/message.hpp"

namespace edgewatch::probe {

Probe::Probe(ProbeConfig config, RecordSink sink)
    : config_(config),
      sink_(std::move(sink)),
      anonymizer_(config.anon_key, config.customer_net),
      dnhunter_(config.dnhunter),
      table_(config.flow, table_sink_) {}

void Probe::process(const net::Frame& frame) {
  if (!online_) {
    ++counters_.dropped_offline;
    return;
  }
  ++counters_.frames;
  if (config_.sample_rate > 1 && (counters_.frames % config_.sample_rate) != 0) {
    ++counters_.sampled_out;
    return;
  }
  // IPv6 is visible on the links but outside this study's flow analysis
  // (the paper's analytics are IPv4): count it instead of mis-reporting a
  // decode failure.
  if (frame.data.size() >= net::EthernetHeader::kSize) {
    const auto ethertype =
        (std::to_integer<std::uint16_t>(frame.data[12]) << 8) |
        std::to_integer<std::uint16_t>(frame.data[13]);
    if (ethertype == static_cast<std::uint16_t>(net::EtherType::kIPv6)) {
      ++counters_.ipv6_frames;
      return;
    }
  }
  const auto packet = net::decode_frame(frame);
  if (!packet) {
    ++counters_.decode_failures;
    return;
  }
  process(*packet);
}

void Probe::process(const net::DecodedPacket& packet) {
  if (!online_) {
    ++counters_.dropped_offline;
    return;
  }

  // DNS responses travelling towards a customer feed DN-Hunter. The flow
  // itself is still accounted for like any other UDP flow below.
  if (packet.udp && packet.udp->src_port == 53 &&
      anonymizer_.is_customer(packet.ip.dst) && !packet.payload.empty()) {
    if (const auto msg = dns::parse(packet.payload); msg && msg->ok_response()) {
      dnhunter_.observe_response(packet.ip.dst, *msg, packet.timestamp);
      ++counters_.dns_responses;
    }
  }

  flow::FlowState* state = table_.ingest(packet);
  if (state != nullptr && !state->dns_checked) {
    state->dns_checked = true;
    // The flow's first packet: remember what the client resolved for this
    // server right before opening the connection.
    if (anonymizer_.is_customer(state->record.client_ip)) {
      if (auto name = dnhunter_.lookup(state->record.client_ip, state->record.server_ip,
                                       packet.timestamp)) {
        state->dns_hint = std::move(*name);
      }
    }
  }
  table_.advance(packet.timestamp);
}

void Probe::finish() { table_.flush(flow::FlowCloseReason::kProbeFlush); }

void Probe::begin_outage() {
  if (!online_) return;
  online_ = false;
  // Hardware failure: in-flight state is lost, not exported — records
  // flushed while muted never reach the sink or the export counters.
  muted_ = true;
  table_.flush(flow::FlowCloseReason::kProbeFlush);
  muted_ = false;
  dnhunter_.clear();
}

void Probe::end_outage() { online_ = true; }

void Probe::set_classifier_options(dpi::ClassifierOptions options) {
  table_.set_classifier_options(options);
}

void Probe::on_export(flow::FlowRecord&& record) {
  if (muted_) return;
  record.access = access_tech(record.client_ip);  // before anonymization
  record.client_ip = anonymizer_.apply(record.client_ip);
  ++counters_.records_exported;
  if (record.name_source == flow::NameSource::kDnsHunter) ++counters_.records_named_by_dns;
  if (sink_) sink_(std::move(record));
}

}  // namespace edgewatch::probe
