#include "probe/probe.hpp"

#include "dns/message.hpp"

namespace edgewatch::probe {

Probe::Probe(ProbeConfig config, RecordSink sink)
    : config_(config),
      sink_(std::move(sink)),
      anonymizer_(config.anon_key, config.customer_net),
      dnhunter_(config.dnhunter),
      table_(config.flow, table_sink_) {
  auto& reg = obs::Registry::global();
  obs_.frames = &reg.counter("probe_frames_total");
  obs_.decode_failures = &reg.counter("probe_decode_failures_total");
  obs_.ipv6_frames = &reg.counter("probe_ipv6_frames_total");
  obs_.sampled_out = &reg.counter("probe_sampled_out_total");
  obs_.dropped_offline = &reg.counter("probe_dropped_offline_total");
  obs_.dns_responses = &reg.counter("probe_dns_responses_total");
  obs_.records_exported = &reg.counter("probe_records_exported_total");
  obs_.records_named_by_dns = &reg.counter("probe_records_named_by_dns_total");
  obs_.stage_decode = &reg.histogram("probe_stage_ns", {}, "stage=\"decode\"");
  obs_.stage_flow = &reg.histogram("probe_stage_ns", {}, "stage=\"flow_table\"");
  obs_.stage_dnhunter = &reg.histogram("probe_stage_ns", {}, "stage=\"dnhunter\"");
  obs_.stage_export = &reg.histogram("probe_stage_ns", {}, "stage=\"export\"");
  obs_.batch = &reg.span_site("probe_batch");
}

void Probe::obs_flush() noexcept {
  if constexpr (obs::kEnabled) {
    // Saturating delta: restore_checkpoint can rewind counters_, and the
    // registry must stay monotonic.
    const auto push = [](obs::Counter* counter, std::uint64_t now, std::uint64_t& flushed) {
      if (now > flushed) counter->add(now - flushed);
      flushed = now;
    };
    push(obs_.frames, counters_.frames, obs_.flushed.frames);
    push(obs_.decode_failures, counters_.decode_failures, obs_.flushed.decode_failures);
    push(obs_.ipv6_frames, counters_.ipv6_frames, obs_.flushed.ipv6_frames);
    push(obs_.sampled_out, counters_.sampled_out, obs_.flushed.sampled_out);
    push(obs_.dropped_offline, counters_.dropped_offline, obs_.flushed.dropped_offline);
    push(obs_.dns_responses, counters_.dns_responses, obs_.flushed.dns_responses);
    push(obs_.records_exported, counters_.records_exported, obs_.flushed.records_exported);
    push(obs_.records_named_by_dns, counters_.records_named_by_dns,
         obs_.flushed.records_named_by_dns);
  }
}

bool Probe::prepare_frame(const net::Frame& frame) {
  if (!online_) {
    ++counters_.dropped_offline;
    return false;
  }
  ++counters_.frames;
  if (config_.sample_rate > 1 && (counters_.frames % config_.sample_rate) != 0) {
    ++counters_.sampled_out;
    return false;
  }
  // IPv6 is visible on the links but outside this study's flow analysis
  // (the paper's analytics are IPv4): count it instead of mis-reporting a
  // decode failure.
  if (frame.data.size() >= net::EthernetHeader::kSize) {
    const auto ethertype =
        (std::to_integer<std::uint16_t>(frame.data[12]) << 8) |
        std::to_integer<std::uint16_t>(frame.data[13]);
    if (ethertype == static_cast<std::uint16_t>(net::EtherType::kIPv6)) {
      ++counters_.ipv6_frames;
      return false;
    }
  }
  return true;
}

void Probe::process(const net::Frame& frame) {
  if (!prepare_frame(frame)) return;
  const auto packet = net::decode_frame(frame);
  if (!packet) {
    ++counters_.decode_failures;
    return;
  }
  process(*packet);
  if constexpr (obs::kEnabled) {
    if ((counters_.frames & 255) == 0) obs_flush();
  }
}

void Probe::process(std::span<const net::Frame> frames) {
  // Software pipeline: each frame's buffer lives in its own heap block, so
  // a naive loop stalls on DRAM at the first touch of every frame. Here
  // frame i's state machine overlaps with (a) prefetching frame
  // i+kAhead's buffer, (b) decoding frame i+1 — decode is a pure function,
  // so running it early is unobservable — and (c) warming the flow-table
  // slot frame i+1 will probe. Counters still advance strictly in frame
  // order inside prepare_frame (the only behavioral ordering that exists).
  obs::Span batch_span(*obs_.batch);
  [[maybe_unused]] obs::Registry* const reg = &obs::Registry::global();
  constexpr std::size_t kAhead = 8;
  const auto prefetch_frame = [](const net::Frame& f) {
    if (f.data.empty()) return;
    // Two lines cover the L2-L4 headers plus the payload bytes DPI and the
    // DNS sniffer look at first.
    __builtin_prefetch(f.data.data());
    if (f.data.size() > 64) __builtin_prefetch(f.data.data() + 64);
  };
  const std::size_t n = frames.size();
  for (std::size_t i = 0; i < n && i < kAhead; ++i) prefetch_frame(frames[i]);
  // Double-buffered decode: frame i+1 parses into the buffer frame i is not
  // using, so no DecodedPacket is ever moved.
  net::DecodedPacket bufs[2];
  bool ok[2] = {false, false};
  if (n != 0) ok[0] = net::decode_frame_into(frames[0], bufs[0]);
  for (std::size_t i = 0; i < n; ++i) {
    const net::DecodedPacket& packet = bufs[i & 1];
    const bool decoded = ok[i & 1];
    if (i + 1 < n) {
      if (i + kAhead < n) prefetch_frame(frames[i + kAhead]);
      net::DecodedPacket& next = bufs[(i + 1) & 1];
      bool timed_decode = false;
      if constexpr (obs::kEnabled) {
        // Sampled decode-stage clock; the common iteration pays one
        // predictable branch.
        if (((i + 1) & kStageSampleMask) == 0) {
          timed_decode = true;
          const std::uint64_t t0 = reg->now_ns();
          ok[(i + 1) & 1] = net::decode_frame_into(frames[i + 1], next);
          obs_.stage_decode->record(static_cast<std::int64_t>(reg->now_ns() - t0));
        }
      }
      if (!timed_decode) ok[(i + 1) & 1] = net::decode_frame_into(frames[i + 1], next);
      if (ok[(i + 1) & 1] && next.ip.transport() != core::TransportProto::kOther) {
        table_.prefetch_flow(next.five_tuple());
      }
    }
    if (!prepare_frame(frames[i])) continue;
    if (!decoded) {
      ++counters_.decode_failures;
      continue;
    }
    process(packet);
  }
  obs_flush();
}

void Probe::process(const net::DecodedPacket& packet) {
  if constexpr (obs::kEnabled) {
    if ((++obs_.ticks & kStageSampleMask) == 0) {
      process_impl<true>(packet);
      return;
    }
  }
  process_impl<false>(packet);
}

template <bool Timed>
void Probe::process_impl(const net::DecodedPacket& packet) {
  if (!online_) {
    ++counters_.dropped_offline;
    return;
  }

  [[maybe_unused]] obs::Registry* reg = nullptr;
  [[maybe_unused]] std::uint64_t t0 = 0;
  if constexpr (Timed) {
    reg = &obs::Registry::global();
    t0 = reg->now_ns();
  }

  // DNS responses travelling towards a customer feed DN-Hunter. The flow
  // itself is still accounted for like any other UDP flow below.
  if (packet.udp && packet.udp->src_port == 53 &&
      anonymizer_.is_customer(packet.ip.dst) && !packet.payload.empty()) {
    if (const auto msg = dns::parse(packet.payload); msg && msg->ok_response()) {
      dnhunter_.observe_response(packet.ip.dst, *msg, packet.timestamp);
      ++counters_.dns_responses;
    }
  }
  if constexpr (Timed) {
    const std::uint64_t t1 = reg->now_ns();
    obs_.stage_dnhunter->record(static_cast<std::int64_t>(t1 - t0));
    t0 = t1;
  }

  flow::FlowState* state = table_.ingest(packet);
  if (state != nullptr && !state->dns_checked) {
    state->dns_checked = true;
    // The flow's first packet: remember what the client resolved for this
    // server right before opening the connection.
    if (anonymizer_.is_customer(state->record.client_ip)) {
      if (auto name = dnhunter_.lookup(state->record.client_ip, state->record.server_ip,
                                       packet.timestamp)) {
        state->dns_hint = *name;  // view into the hunter's interning pool
      }
    }
  }
  table_.advance(packet.timestamp);
  if constexpr (Timed) {
    obs_.stage_flow->record(static_cast<std::int64_t>(reg->now_ns() - t0));
  }
}

void Probe::finish() {
  table_.flush(flow::FlowCloseReason::kProbeFlush);
  obs_flush();
}

void Probe::begin_outage() {
  if (!online_) return;
  online_ = false;
  // Hardware failure: in-flight state is lost, not exported — records
  // flushed while muted never reach the sink or the export counters.
  muted_ = true;
  table_.flush(flow::FlowCloseReason::kProbeFlush);
  muted_ = false;
  dnhunter_.clear();
}

void Probe::end_outage() { online_ = true; }

void Probe::set_classifier_options(dpi::ClassifierOptions options) {
  table_.set_classifier_options(options);
}

void Probe::on_export(flow::FlowRecord&& record) {
  if (muted_) return;
  const auto do_export = [&] {
    record.access = access_tech(record.client_ip);  // before anonymization
    record.client_ip = anonymizer_.apply(record.client_ip);
    ++counters_.records_exported;
    if (record.name_source == flow::NameSource::kDnsHunter) ++counters_.records_named_by_dns;
    if (sink_) sink_(std::move(record));
  };
  if constexpr (obs::kEnabled) {
    if ((counters_.records_exported & kExportSampleMask) == 0) {
      auto& reg = obs::Registry::global();
      const std::uint64_t t0 = reg.now_ns();
      do_export();
      obs_.stage_export->record(static_cast<std::int64_t>(reg.now_ns() - t0));
      return;
    }
  }
  do_export();
}

}  // namespace edgewatch::probe
