// Probe checkpoint/restore (planned maintenance, paper §2.3: probes were
// upgraded several times over the five years; a checkpoint lets a restart
// resume mid-day without the state loss of a hardware outage).
//
// File layout: "EWCP" | u8 version | u32le crc32c(payload) | u64le
// payload_len | payload. The payload serializes, in order: probe counters,
// online flag, flow-table counters and every live flow (key, the
// accumulated FlowRecord via the storage codec, TCP bookkeeping, DPI
// buffer, DN-Hunter hint, RTT estimator queue), then the DN-Hunter
// counters and cache entries in LRU order.
#include <cstring>
#include <fstream>

#include "core/bytes.hpp"
#include "core/hash.hpp"
#include "probe/probe.hpp"
#include "storage/codec.hpp"
#include "storage/io.hpp"

namespace edgewatch::probe {

namespace {

constexpr char kMagic[4] = {'E', 'W', 'C', 'P'};
constexpr std::uint8_t kVersion = 2;  // v2: +next_ingest_seq, +per-flow ingest_seq
constexpr std::size_t kFileHeaderSize = 4 + 1 + 4 + 8;
constexpr std::uint64_t kMaxPayload = 1ull << 32;

void put_ts(core::ByteWriter& w, core::Timestamp ts) {
  w.u64(static_cast<std::uint64_t>(ts.micros()));
}

core::Timestamp get_ts(core::ByteReader& r) {
  return core::Timestamp{static_cast<std::int64_t>(r.u64())};
}

void put_string(core::ByteWriter& w, std::string_view s) {
  storage::put_varint(w, s.size());
  w.string(s);
}

std::string get_string(core::ByteReader& r, std::size_t max_len) {
  const auto len = storage::get_varint(r);
  if (len > max_len) {
    r.fail();
    return {};
  }
  return std::string(r.string(static_cast<std::size_t>(len)));
}

}  // namespace

void Probe::encode_checkpoint_payload(core::ByteWriter& payload) const {
  payload.u64(counters_.frames);
  payload.u64(counters_.decode_failures);
  payload.u64(counters_.ipv6_frames);
  payload.u64(counters_.sampled_out);
  payload.u64(counters_.dropped_offline);
  payload.u64(counters_.dns_responses);
  payload.u64(counters_.records_exported);
  payload.u64(counters_.records_named_by_dns);
  payload.u8(online_ ? 1 : 0);

  const auto& tc = table_.counters();
  payload.u64(tc.packets);
  payload.u64(tc.flows_created);
  payload.u64(tc.flows_exported);
  payload.u64(tc.expired_idle);
  payload.u64(tc.closed_teardown);
  payload.u64(tc.closed_reset);
  payload.u64(tc.forced_evictions);
  payload.u64(table_.next_ingest_seq());

  payload.u64(table_.active_flows());
  table_.for_each_flow([&payload](const core::FiveTuple& key, const flow::FlowState& s) {
    payload.u32(key.src_ip.value());
    payload.u32(key.dst_ip.value());
    payload.u16(key.src_port);
    payload.u16(key.dst_port);
    payload.u8(static_cast<std::uint8_t>(key.proto));
    // The on-disk record codec drops ingest_seq (a live ordering tag, not
    // archive data); flush order depends on it, so the checkpoint keeps it.
    payload.u64(s.record.ingest_seq);
    storage::encode_record(s.record, payload);
    payload.u8(static_cast<std::uint8_t>(
        (s.syn_seen ? 1u : 0u) | (s.synack_seen ? 2u : 0u) | (s.fin_client ? 4u : 0u) |
        (s.fin_server ? 8u : 0u) | (s.closed ? 16u : 0u) | (s.dpi_done ? 32u : 0u) |
        (s.server_dpi_done ? 64u : 0u) | (s.dns_checked ? 128u : 0u)));
    payload.u8(static_cast<std::uint8_t>((s.seq_valid_client ? 1u : 0u) |
                                         (s.seq_valid_server ? 2u : 0u)));
    put_ts(payload, s.closed_at);
    payload.u32(s.next_seq_client);
    payload.u32(s.next_seq_server);
    storage::put_varint(payload, s.dpi_buffer.size());
    payload.bytes(s.dpi_buffer);
    put_string(payload, s.dns_hint);
    payload.u8(static_cast<std::uint8_t>(s.rtt.segments().size()));
    for (const auto& seg : s.rtt.segments()) {
      payload.u32(seg.seq_begin);
      payload.u32(seg.seq_end);
      put_ts(payload, seg.sent);
      payload.u8(seg.retransmitted ? 1 : 0);
    }
  });

  const auto& dc = dnhunter_.counters();
  payload.u64(dc.responses_ingested);
  payload.u64(dc.entries_inserted);
  payload.u64(dc.lru_evictions);
  payload.u64(dc.hits);
  payload.u64(dc.misses);
  payload.u64(dc.expired);

  payload.u64(dnhunter_.size());
  dnhunter_.for_each_entry([&payload](core::IPv4Address client, core::IPv4Address server,
                                      std::string_view name, core::Timestamp inserted) {
    payload.u32(client.value());
    payload.u32(server.value());
    put_ts(payload, inserted);
    put_string(payload, name);
  });
}

std::vector<std::byte> Probe::checkpoint_image() const {
  core::ByteWriter payload;
  encode_checkpoint_payload(payload);

  core::ByteWriter out;
  for (char c : kMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u8(kVersion);
  out.u32le(core::crc32c(payload.view()));
  out.u64le(payload.size());
  out.bytes(payload.view());
  const auto view = out.view();
  return {view.begin(), view.end()};
}

core::Result<std::uint64_t> Probe::save_checkpoint(const std::filesystem::path& path) const {
  const auto image = checkpoint_image();
  auto file = storage::make_posix_file();
  if (auto r = file->open_at(path, 0); !r) return r.error();
  if (auto r = file->write(image); !r) {
    (void)file->close();
    return r.error();
  }
  if (auto r = file->sync(); !r) {
    (void)file->close();
    return r.error();
  }
  if (auto r = file->close(); !r) return r.error();
  return static_cast<std::uint64_t>(image.size());
}

core::Result<void> Probe::restore_image(std::span<const std::byte> data) {
  const auto size = data.size();
  if (size < kFileHeaderSize) return core::Errc::kTruncated;
  if (std::memcmp(data.data(), kMagic, 4) != 0) return core::Errc::kBadMagic;
  if (std::to_integer<std::uint8_t>(data[4]) != kVersion) return core::Errc::kBadVersion;
  core::ByteReader header{data.subspan(5, 12)};
  const std::uint32_t crc = header.u32le();
  const std::uint64_t payload_len = header.u64le();
  if (payload_len > kMaxPayload || kFileHeaderSize + payload_len != size) {
    return core::Errc::kTruncated;
  }
  const auto payload = data.subspan(kFileHeaderSize);
  if (core::crc32c(payload) != crc) return core::Errc::kCorrupt;
  core::ByteReader r{payload};
  return decode_checkpoint_payload(r);
}

core::Result<void> Probe::restore_checkpoint(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return core::Errc::kNotFound;
  const auto size = static_cast<std::size_t>(in.tellg());
  if (size < kFileHeaderSize) return core::Errc::kTruncated;
  std::vector<std::byte> data(size);
  in.seekg(0);
  if (!in.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(size))) {
    return core::Errc::kIoError;
  }
  return restore_image(data);
}

core::Result<void> Probe::decode_checkpoint_payload(core::ByteReader& r) {
  // The CRC passed, so decoding should succeed; if it somehow does not,
  // leave the probe empty rather than half-restored.
  table_.reset();
  dnhunter_.clear();
  const auto fail = [this] {
    table_.reset();
    dnhunter_.clear();
    counters_ = Counters{};
    return core::Errc::kCorrupt;
  };

  Counters pc;
  pc.frames = r.u64();
  pc.decode_failures = r.u64();
  pc.ipv6_frames = r.u64();
  pc.sampled_out = r.u64();
  pc.dropped_offline = r.u64();
  pc.dns_responses = r.u64();
  pc.records_exported = r.u64();
  pc.records_named_by_dns = r.u64();
  const bool online = r.u8() != 0;

  flow::FlowTable::Counters tc;
  tc.packets = r.u64();
  tc.flows_created = r.u64();
  tc.flows_exported = r.u64();
  tc.expired_idle = r.u64();
  tc.closed_teardown = r.u64();
  tc.closed_reset = r.u64();
  tc.forced_evictions = r.u64();
  const std::uint64_t next_ingest_seq = r.u64();

  const std::uint64_t flow_count = r.u64();
  if (!r.ok()) return fail();
  for (std::uint64_t i = 0; i < flow_count; ++i) {
    core::FiveTuple key;
    key.src_ip = core::IPv4Address{r.u32()};
    key.dst_ip = core::IPv4Address{r.u32()};
    key.src_port = r.u16();
    key.dst_port = r.u16();
    key.proto = static_cast<core::TransportProto>(r.u8());
    const std::uint64_t ingest_seq = r.u64();
    const auto record = storage::decode_record(r);
    if (!record) return fail();
    flow::FlowState state;
    state.record = *record;
    state.record.ingest_seq = ingest_seq;
    const std::uint8_t flags = r.u8();
    state.syn_seen = (flags & 1) != 0;
    state.synack_seen = (flags & 2) != 0;
    state.fin_client = (flags & 4) != 0;
    state.fin_server = (flags & 8) != 0;
    state.closed = (flags & 16) != 0;
    state.dpi_done = (flags & 32) != 0;
    state.server_dpi_done = (flags & 64) != 0;
    state.dns_checked = (flags & 128) != 0;
    const std::uint8_t flags2 = r.u8();
    state.seq_valid_client = (flags2 & 1) != 0;
    state.seq_valid_server = (flags2 & 2) != 0;
    state.closed_at = get_ts(r);
    state.next_seq_client = r.u32();
    state.next_seq_server = r.u32();
    const auto buffer_len = storage::get_varint(r);
    if (buffer_len > config_.flow.dpi_buffer_limit) return fail();
    const auto buffer = r.bytes(static_cast<std::size_t>(buffer_len));
    state.dpi_buffer.assign(buffer.begin(), buffer.end());
    // dns_hint is a view; repoint it at this process's interning pool.
    state.dns_hint = dnhunter_.intern_name(get_string(r, 4096));
    const std::uint8_t segment_count = r.u8();
    if (segment_count > flow::RttEstimator::kMaxOutstanding) return fail();
    for (std::uint8_t s = 0; s < segment_count; ++s) {
      flow::RttEstimator::Segment seg;
      seg.seq_begin = r.u32();
      seg.seq_end = r.u32();
      seg.sent = get_ts(r);
      seg.retransmitted = r.u8() != 0;
      state.rtt.restore_segment(seg);
    }
    if (!r.ok()) return fail();
    table_.restore_flow(key, std::move(state));
  }
  table_.restore_counters(tc);
  table_.set_next_ingest_seq(next_ingest_seq);
  table_.finalize_restore();

  dns::DnHunter::Counters dc;
  dc.responses_ingested = r.u64();
  dc.entries_inserted = r.u64();
  dc.lru_evictions = r.u64();
  dc.hits = r.u64();
  dc.misses = r.u64();
  dc.expired = r.u64();

  const std::uint64_t entry_count = r.u64();
  if (!r.ok()) return fail();
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    const auto client = core::IPv4Address{r.u32()};
    const auto server = core::IPv4Address{r.u32()};
    const auto inserted = get_ts(r);
    const auto name = get_string(r, 4096);
    if (!r.ok()) return fail();
    dnhunter_.restore_entry(client, server, name, inserted);
  }
  dnhunter_.restore_counters(dc);
  if (!r.ok() || r.remaining() != 0) return fail();

  counters_ = pc;
  online_ = online;
  return {};
}

}  // namespace edgewatch::probe
