#include "services/rules.hpp"

namespace edgewatch::services {

namespace {
/// Branch-free-ish ASCII lowercasing; hostnames never need locale tables.
inline char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c + ('a' - 'A')) : c;
}
}  // namespace

std::string_view RuleEngine::normalize_into(std::string_view domain, char* stack,
                                            std::size_t stack_size, std::string& heap) {
  std::size_t n = domain.size();
  if (n > 0 && domain[n - 1] == '.') --n;
  if (n <= stack_size) {
    for (std::size_t i = 0; i < n; ++i) stack[i] = ascii_lower(domain[i]);
    return {stack, n};
  }
  heap.resize(n);
  for (std::size_t i = 0; i < n; ++i) heap[i] = ascii_lower(domain[i]);
  return heap;
}

void RuleEngine::add_exact(std::string_view domain, std::string_view service) {
  char stack[256];
  std::string heap;
  const auto name = normalize_into(domain, stack, sizeof stack, heap);
  exact_.insert_or_assign(intern(name), intern(service));
}

void RuleEngine::add_suffix(std::string_view suffix, std::string_view service) {
  char stack[256];
  std::string heap;
  const auto name = normalize_into(suffix, stack, sizeof stack, heap);
  const auto key = intern(name);
  const auto svc = intern(service);
  suffix_index_.insert_or_assign(key, svc);
  // An empty suffix can never match: lookups stop before the probe becomes
  // empty. Keep it out of the trie (it is still counted above).
  if (key.empty()) return;
  std::uint32_t cur = 0;
  for_each_label_rtl(key, [&](std::string_view label) {
    auto it = trie_[cur].children.find(label);
    if (it == trie_[cur].children.end()) {
      const auto next = static_cast<std::uint32_t>(trie_.size());
      trie_.emplace_back();
      // `label` already points into the pool (a subrange of `key`), so the
      // child key needs no separate interning.
      trie_[cur].children.emplace(label, next);
      cur = next;
    } else {
      cur = it->second;
    }
  });
  trie_[cur].service = svc;
}

bool RuleEngine::add_regex(std::string_view pattern, std::string_view service) {
  auto compiled = Regex::compile(pattern);
  if (!compiled) return false;
  regex_.push_back({std::move(*compiled), intern(service), extract_required_literal(pattern)});
  return true;
}

std::string RuleEngine::extract_required_literal(std::string_view pattern) {
  // Alternation and groups make "this literal must appear" unprovable
  // without real analysis; those patterns just run the regex every time.
  if (pattern.find('|') != std::string_view::npos ||
      pattern.find('(') != std::string_view::npos) {
    return {};
  }
  std::string best;
  std::string run;
  auto commit = [&] {
    if (run.size() > best.size()) best = run;
    run.clear();
  };
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const char c = pattern[i];
    switch (c) {
      case '\\':  // escaped char is a plain literal
        if (++i < pattern.size()) run.push_back(pattern[i]);
        break;
      case '^':
      case '$':
      case '.':  // matches anything: breaks the run
        commit();
        break;
      case '[': {  // character class: breaks the run; skip to its ']'
        commit();
        ++i;
        while (i < pattern.size() && pattern[i] != ']') {
          if (pattern[i] == '\\') ++i;
          ++i;
        }
        break;
      }
      case '*':
      case '?':  // preceding atom may appear zero times: drop it
        if (!run.empty()) run.pop_back();
        commit();
        break;
      case '+':  // preceding atom appears at least once: keep it
        commit();
        break;
      default:
        run.push_back(c);
        break;
    }
  }
  commit();
  return best;
}

std::optional<std::string_view> RuleEngine::classify(std::string_view domain) const {
  char stack[256];
  std::string heap;
  const auto name = normalize_into(domain, stack, sizeof stack, heap);
  if (name.empty()) return std::nullopt;

  if (auto it = exact_.find(name); it != exact_.end()) return it->second;

  // Walk the reversed-label trie; the deepest node with a service is the
  // longest — most specific — matching suffix, exactly what probing every
  // label boundary from the left used to find first.
  if (trie_.size() > 1) {
    std::string_view best{};
    std::uint32_t cur = 0;
    bool alive = true;
    for_each_label_rtl(name, [&](std::string_view label) {
      if (!alive) return;
      const auto it = trie_[cur].children.find(label);
      if (it == trie_[cur].children.end()) {
        alive = false;
        return;
      }
      cur = it->second;
      if (trie_[cur].service.data() != nullptr) best = trie_[cur].service;
    });
    if (best.data() != nullptr) return best;
  }

  for (const auto& rule : regex_) {
    if (!rule.required.empty() && name.find(rule.required) == std::string_view::npos) continue;
    if (rule.re.search(name)) return rule.service;
  }
  return std::nullopt;
}

}  // namespace edgewatch::services
