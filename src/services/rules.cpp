#include "services/rules.hpp"

#include <cctype>

namespace edgewatch::services {

std::string RuleEngine::normalize(std::string_view domain) {
  std::string out;
  out.reserve(domain.size());
  for (char c : domain) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (!out.empty() && out.back() == '.') out.pop_back();
  return out;
}

void RuleEngine::add_exact(std::string_view domain, std::string_view service) {
  exact_[normalize(domain)] = std::string(service);
}

void RuleEngine::add_suffix(std::string_view suffix, std::string_view service) {
  suffix_[normalize(suffix)] = std::string(service);
}

bool RuleEngine::add_regex(std::string_view pattern, std::string_view service) {
  auto compiled = Regex::compile(pattern);
  if (!compiled) return false;
  regex_.emplace_back(std::move(*compiled), std::string(service));
  return true;
}

std::optional<std::string_view> RuleEngine::classify(std::string_view domain) const {
  const std::string name = normalize(domain);
  if (name.empty()) return std::nullopt;

  if (auto it = exact_.find(name); it != exact_.end()) return it->second;

  // Probe suffixes from the most specific: "a.b.fbcdn.net" tries itself,
  // then "b.fbcdn.net", then "fbcdn.net", then "net".
  std::string_view probe = name;
  while (!probe.empty()) {
    if (auto it = suffix_.find(std::string(probe)); it != suffix_.end()) return it->second;
    const auto dot = probe.find('.');
    if (dot == std::string_view::npos) break;
    probe.remove_prefix(dot + 1);
  }

  for (const auto& [re, service] : regex_) {
    if (re.search(name)) return service;
  }
  return std::nullopt;
}

}  // namespace edgewatch::services
