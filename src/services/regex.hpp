// A small regular-expression engine for domain-classification rules.
//
// The paper's rule base uses patterns like `^fbstatic-[a-z].akamaihd.net$`
// (Table 1). We implement the subset those rules need — literals, `.`,
// character classes (with ranges and negation), `*` `+` `?` quantifiers,
// alternation `|`, grouping `(...)`, and `^`/`$` anchors — as a pattern
// tree walked with continuation-passing backtracking. Patterns are tiny
// and compiled once at rule-load time, so clarity beats cleverness; a
// step budget guards against pathological backtracking.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace edgewatch::services {

class Regex {
 public:
  /// Compile a pattern; nullopt on syntax errors.
  static std::optional<Regex> compile(std::string_view pattern);

  /// True if the pattern matches anywhere in `text` (use ^/$ to anchor).
  [[nodiscard]] bool search(std::string_view text) const;

  /// True if the pattern matches the whole of `text` (implicit anchors).
  [[nodiscard]] bool full_match(std::string_view text) const;

  [[nodiscard]] const std::string& pattern() const noexcept { return pattern_; }

  Regex(Regex&&) = default;
  Regex& operator=(Regex&&) = default;
  Regex(const Regex&) = delete;
  Regex& operator=(const Regex&) = delete;

 private:
  struct Node;
  using NodePtr = std::unique_ptr<Node>;

  enum class Kind : std::uint8_t {
    kLiteral,    // one specific char
    kAny,        // .
    kClass,      // [...] with bitmap
    kAlternate,  // children are alternative sequences
    kStar,       // child*, greedy
    kPlus,       // child+
    kOptional,   // child?
    kBeginAnchor,
    kEndAnchor,
  };

  struct Node {
    Kind kind = Kind::kLiteral;
    char literal = 0;
    std::vector<bool> char_class;          // 256 entries when kind == kClass
    std::vector<std::vector<NodePtr>> alts;  // kAlternate: alternative sequences
    NodePtr child;                           // quantifier operand
  };

  Regex() = default;

  struct Parser;
  struct Matcher;  // continuation-passing backtracking walker (regex.cpp)

  std::string pattern_;
  std::vector<NodePtr> root_;  // top-level sequence
};

}  // namespace edgewatch::services
