// Domain→service rule engine (paper §2.2, Table 1).
//
// Three rule kinds, by precedence:
//   1. exact   — "facebook.com"
//   2. suffix  — "fbcdn.net" matches itself and any subdomain; when several
//                suffix rules match, the longest (most specific) wins
//   3. regex   — "^fbstatic-[a-z].akamaihd.net$" (checked in insertion
//                order, first hit wins)
// Lookups are case-normalized. Exact rules live in a hash map; suffix rules
// are probed per label boundary from the most specific suffix down, so a
// lookup costs O(#labels) hash probes; regexes are scanned last.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "services/regex.hpp"

namespace edgewatch::services {

class RuleEngine {
 public:
  void add_exact(std::string_view domain, std::string_view service);
  void add_suffix(std::string_view suffix, std::string_view service);
  /// Returns false (and adds nothing) if the pattern does not compile.
  bool add_regex(std::string_view pattern, std::string_view service);

  /// Service for `domain`, or nullopt if no rule matches. The returned view
  /// remains valid while the engine lives.
  [[nodiscard]] std::optional<std::string_view> classify(std::string_view domain) const;

  [[nodiscard]] std::size_t exact_rules() const noexcept { return exact_.size(); }
  [[nodiscard]] std::size_t suffix_rules() const noexcept { return suffix_.size(); }
  [[nodiscard]] std::size_t regex_rules() const noexcept { return regex_.size(); }

 private:
  static std::string normalize(std::string_view domain);

  std::unordered_map<std::string, std::string> exact_;
  std::unordered_map<std::string, std::string> suffix_;
  std::vector<std::pair<Regex, std::string>> regex_;
};

}  // namespace edgewatch::services
