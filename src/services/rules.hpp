// Domain→service rule engine (paper §2.2, Table 1).
//
// Three rule kinds, by precedence:
//   1. exact   — "facebook.com"
//   2. suffix  — "fbcdn.net" matches itself and any subdomain; when several
//                suffix rules match, the longest (most specific) wins
//   3. regex   — "^fbstatic-[a-z].akamaihd.net$" (checked in insertion
//                order, first hit wins)
//
// The engine is compiled for the per-flow hot path: every server hostname
// the probe exports goes through classify(), so a lookup allocates nothing.
//   - Hostnames are case-normalized into a stack buffer.
//   - Exact rules live in an open-addressing map keyed by interned views.
//   - Suffix rules form a reversed-label trie: "cdn.fbcdn.net" walks
//     net → fbcdn → cdn, and the deepest node carrying a service is the
//     longest (most specific) matching suffix — one hash probe per label
//     instead of one full-string map probe per label boundary.
//   - Each regex carries a required literal fragment extracted from its
//     pattern; a hostname that does not contain the fragment skips the
//     backtracking engine entirely.
// All rule text (keys, labels, service names) is interned in a pool owned
// by the engine, so classify() results stay valid for the engine's
// lifetime regardless of later rule insertions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/flat_hash_map.hpp"
#include "core/hash.hpp"
#include "core/string_pool.hpp"
#include "services/regex.hpp"

namespace edgewatch::services {

class RuleEngine {
 public:
  void add_exact(std::string_view domain, std::string_view service);
  void add_suffix(std::string_view suffix, std::string_view service);
  /// Returns false (and adds nothing) if the pattern does not compile.
  bool add_regex(std::string_view pattern, std::string_view service);

  /// Service for `domain`, or nullopt if no rule matches. The returned view
  /// remains valid while the engine lives.
  [[nodiscard]] std::optional<std::string_view> classify(std::string_view domain) const;

  [[nodiscard]] std::size_t exact_rules() const noexcept { return exact_.size(); }
  [[nodiscard]] std::size_t suffix_rules() const noexcept { return suffix_index_.size(); }
  [[nodiscard]] std::size_t regex_rules() const noexcept { return regex_.size(); }

 private:
  /// One trie node per distinct reversed-label path across all suffix
  /// rules. `service.data() == nullptr` means no rule ends here (an empty
  /// service *name* is a valid, distinct value).
  struct SuffixNode {
    core::FlatHashMap<std::string_view, std::uint32_t, core::StringHash> children;
    std::string_view service{};
  };

  struct RegexRule {
    Regex re;
    std::string_view service;
    /// Literal fragment every match must contain; empty = no prefilter.
    std::string required;
  };

  /// Visit `name`'s dot-separated labels right to left ("a.b.c" → c, b, a).
  /// Shared by insertion and lookup so both sides agree on label
  /// boundaries (including empty labels from consecutive dots).
  template <typename Fn>
  static void for_each_label_rtl(std::string_view name, Fn&& fn) {
    std::size_t end = name.size();
    for (;;) {
      std::size_t begin = 0;
      if (end > 0) {
        const auto dot = name.rfind('.', end - 1);
        if (dot != std::string_view::npos && dot < end) begin = dot + 1;
      }
      fn(name.substr(begin, end - begin));
      if (begin == 0) break;
      end = begin - 1;
    }
  }

  /// Lowercase `domain` and strip one trailing dot, into `stack` when it
  /// fits (the common case — hostnames are short) or `heap` otherwise.
  static std::string_view normalize_into(std::string_view domain, char* stack,
                                         std::size_t stack_size, std::string& heap);

  [[nodiscard]] std::string_view intern(std::string_view s) { return pool_.intern(s); }

  /// Longest literal run that any string matching `pattern` must contain;
  /// empty when no sound fragment can be extracted (e.g. alternation).
  static std::string extract_required_literal(std::string_view pattern);

  core::StringPool pool_;  ///< Owns all rule keys, labels and service names.
  core::FlatHashMap<std::string_view, std::string_view, core::StringHash> exact_;
  /// Flat view of the suffix rules (normalized suffix → service): rule
  /// count, overwrite semantics, and a golden reference for the trie.
  core::FlatHashMap<std::string_view, std::string_view, core::StringHash> suffix_index_;
  std::vector<SuffixNode> trie_{SuffixNode{}};  ///< [0] is the root.
  std::vector<RegexRule> regex_;
};

}  // namespace edgewatch::services
