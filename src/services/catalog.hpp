// The service catalog of the paper's Figure 5: seventeen named services
// plus Peer-To-Peer, each with its domain rules and the per-service
// activity threshold of §4.1 (the daily volume below which a subscriber is
// deemed to have hit the service only through third-party objects, e.g.
// Facebook "Like" buttons embedded in other sites).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "core/flat_hash_map.hpp"
#include "core/hash.hpp"
#include "dpi/classifier.hpp"
#include "services/rules.hpp"

namespace edgewatch::services {

/// Fixed identifiers: stable array indices for analytics matrices,
/// in the row order of Fig. 5.
enum class ServiceId : std::uint8_t {
  kGoogle = 0,
  kBing,
  kDuckDuckGo,
  kFacebook,
  kInstagram,
  kTwitter,
  kLinkedIn,
  kYouTube,
  kNetflix,
  kAdult,
  kSpotify,
  kSkype,
  kWhatsApp,
  kTelegram,
  kSnapChat,
  kAmazon,
  kEbay,
  kPeerToPeer,
  kOther,  // anything unmatched; keep last
};

inline constexpr std::size_t kServiceCount = static_cast<std::size_t>(ServiceId::kOther) + 1;
/// Named services (excludes kOther).
inline constexpr std::size_t kNamedServiceCount = kServiceCount - 1;

enum class ServiceCategory : std::uint8_t {
  kSearch,
  kSocial,
  kVideo,
  kMusic,
  kMessaging,
  kShopping,
  kPeerToPeer,
  kAdult,
  kOther,
};

struct ServiceInfo {
  ServiceId id = ServiceId::kOther;
  std::string_view name;
  ServiceCategory category = ServiceCategory::kOther;
  /// §4.1 threshold: minimum bytes/day for a subscriber to count as having
  /// intentionally used the service.
  std::uint64_t activity_threshold_bytes = 0;
};

[[nodiscard]] std::string_view to_string(ServiceId id) noexcept;
[[nodiscard]] std::string_view to_string(ServiceCategory c) noexcept;

/// The full catalog: rules + metadata, built once and shared.
class ServiceCatalog {
 public:
  /// Catalog with the project's built-in rule base (Table 1 and the public
  /// rule list the paper links; curated to the era's real domains).
  static const ServiceCatalog& standard();

  ServiceCatalog();

  /// Classify a server hostname. kOther when no rule matches.
  [[nodiscard]] ServiceId classify_domain(std::string_view domain) const;

  /// Classify a whole flow record: P2P protocols dominate (they carry no
  /// meaningful hostname), then the hostname rules.
  [[nodiscard]] ServiceId classify_flow(dpi::L7Protocol l7, std::string_view server_name) const;

  [[nodiscard]] const ServiceInfo& info(ServiceId id) const noexcept {
    return infos_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const RuleEngine& rules() const noexcept { return rules_; }

  /// Look up a service by display name (bench/test convenience).
  [[nodiscard]] std::optional<ServiceId> by_name(std::string_view name) const noexcept;

 private:
  RuleEngine rules_;
  std::array<ServiceInfo, kServiceCount> infos_{};
  /// Display name → id; keys are the static to_string literals, so views
  /// are stable. classify_domain resolves every rule hit through this.
  core::FlatHashMap<std::string_view, ServiceId, core::StringHash> by_name_;
};

}  // namespace edgewatch::services
