#include "services/catalog.hpp"

namespace edgewatch::services {

std::string_view to_string(ServiceId id) noexcept {
  switch (id) {
    case ServiceId::kGoogle: return "Google";
    case ServiceId::kBing: return "Bing";
    case ServiceId::kDuckDuckGo: return "DuckDuckGo";
    case ServiceId::kFacebook: return "Facebook";
    case ServiceId::kInstagram: return "Instagram";
    case ServiceId::kTwitter: return "Twitter";
    case ServiceId::kLinkedIn: return "LinkedIn";
    case ServiceId::kYouTube: return "YouTube";
    case ServiceId::kNetflix: return "Netflix";
    case ServiceId::kAdult: return "Adult";
    case ServiceId::kSpotify: return "Spotify";
    case ServiceId::kSkype: return "Skype";
    case ServiceId::kWhatsApp: return "WhatsApp";
    case ServiceId::kTelegram: return "Telegram";
    case ServiceId::kSnapChat: return "SnapChat";
    case ServiceId::kAmazon: return "Amazon";
    case ServiceId::kEbay: return "Ebay";
    case ServiceId::kPeerToPeer: return "Peer-To-Peer";
    default: return "Other";
  }
}

std::string_view to_string(ServiceCategory c) noexcept {
  switch (c) {
    case ServiceCategory::kSearch: return "search";
    case ServiceCategory::kSocial: return "social";
    case ServiceCategory::kVideo: return "video";
    case ServiceCategory::kMusic: return "music";
    case ServiceCategory::kMessaging: return "messaging";
    case ServiceCategory::kShopping: return "shopping";
    case ServiceCategory::kPeerToPeer: return "p2p";
    case ServiceCategory::kAdult: return "adult";
    default: return "other";
  }
}

const ServiceCatalog& ServiceCatalog::standard() {
  static const ServiceCatalog catalog;
  return catalog;
}

namespace {
constexpr std::uint64_t kKB = 1000;
constexpr std::uint64_t kMB = 1000 * 1000;
}  // namespace

ServiceCatalog::ServiceCatalog() {
  auto define = [this](ServiceId id, ServiceCategory cat, std::uint64_t threshold) {
    infos_[static_cast<std::size_t>(id)] = {id, services::to_string(id), cat, threshold};
    by_name_.insert_or_assign(services::to_string(id), id);
  };
  // Thresholds follow §4.1: tiny for search (a query is small), larger for
  // services whose buttons/beacons are embedded across the web.
  define(ServiceId::kGoogle, ServiceCategory::kSearch, 20 * kKB);
  define(ServiceId::kBing, ServiceCategory::kSearch, 10 * kKB);
  define(ServiceId::kDuckDuckGo, ServiceCategory::kSearch, 10 * kKB);
  define(ServiceId::kFacebook, ServiceCategory::kSocial, 300 * kKB);
  define(ServiceId::kInstagram, ServiceCategory::kSocial, 300 * kKB);
  define(ServiceId::kTwitter, ServiceCategory::kSocial, 200 * kKB);
  define(ServiceId::kLinkedIn, ServiceCategory::kSocial, 200 * kKB);
  define(ServiceId::kYouTube, ServiceCategory::kVideo, 1 * kMB);
  define(ServiceId::kNetflix, ServiceCategory::kVideo, 2 * kMB);
  define(ServiceId::kAdult, ServiceCategory::kAdult, 500 * kKB);
  define(ServiceId::kSpotify, ServiceCategory::kMusic, 500 * kKB);
  define(ServiceId::kSkype, ServiceCategory::kMessaging, 100 * kKB);
  define(ServiceId::kWhatsApp, ServiceCategory::kMessaging, 50 * kKB);
  define(ServiceId::kTelegram, ServiceCategory::kMessaging, 50 * kKB);
  define(ServiceId::kSnapChat, ServiceCategory::kMessaging, 100 * kKB);
  define(ServiceId::kAmazon, ServiceCategory::kShopping, 200 * kKB);
  define(ServiceId::kEbay, ServiceCategory::kShopping, 200 * kKB);
  define(ServiceId::kPeerToPeer, ServiceCategory::kPeerToPeer, 1 * kMB);
  define(ServiceId::kOther, ServiceCategory::kOther, 0);

  auto suffix = [this](std::string_view domain, ServiceId id) {
    rules_.add_suffix(domain, services::to_string(id));
  };
  auto regex = [this](std::string_view pattern, ServiceId id) {
    rules_.add_regex(pattern, services::to_string(id));
  };

  // Google search & general infrastructure (video domains belong to
  // YouTube; keep them out of here).
  suffix("google.com", ServiceId::kGoogle);
  suffix("google.it", ServiceId::kGoogle);
  suffix("gstatic.com", ServiceId::kGoogle);
  suffix("googleapis.com", ServiceId::kGoogle);
  suffix("googleusercontent.com", ServiceId::kGoogle);
  suffix("bing.com", ServiceId::kBing);
  suffix("duckduckgo.com", ServiceId::kDuckDuckGo);

  // Facebook (Table 1: exact, CDN suffixes, and the Akamai-hosted statics
  // regex).
  suffix("facebook.com", ServiceId::kFacebook);
  suffix("facebook.net", ServiceId::kFacebook);
  suffix("fbcdn.net", ServiceId::kFacebook);
  suffix("fbcdn.com", ServiceId::kFacebook);
  suffix("fbsbx.com", ServiceId::kFacebook);
  regex("^fbstatic-[a-z]\\.akamaihd\\.net$", ServiceId::kFacebook);
  regex("^fbcdn-[a-z-]+-[a-z]\\.akamaihd\\.net$", ServiceId::kFacebook);
  regex("^fbexternal-[a-z]\\.akamaihd\\.net$", ServiceId::kFacebook);

  suffix("instagram.com", ServiceId::kInstagram);
  suffix("cdninstagram.com", ServiceId::kInstagram);
  regex("^instagram[a-z0-9.-]*\\.akamaihd\\.net$", ServiceId::kInstagram);

  suffix("twitter.com", ServiceId::kTwitter);
  suffix("twimg.com", ServiceId::kTwitter);
  suffix("t.co", ServiceId::kTwitter);
  suffix("linkedin.com", ServiceId::kLinkedIn);
  suffix("licdn.com", ServiceId::kLinkedIn);

  // YouTube (Fig. 11i: youtube.com → googlevideo.com (2014) → gvt1.com
  // (2015)).
  suffix("youtube.com", ServiceId::kYouTube);
  suffix("youtu.be", ServiceId::kYouTube);
  suffix("ytimg.com", ServiceId::kYouTube);
  suffix("googlevideo.com", ServiceId::kYouTube);
  suffix("gvt1.com", ServiceId::kYouTube);

  // Netflix (Table 1).
  suffix("netflix.com", ServiceId::kNetflix);
  suffix("nflxvideo.net", ServiceId::kNetflix);
  suffix("nflximg.com", ServiceId::kNetflix);
  suffix("nflxext.com", ServiceId::kNetflix);

  // Adult category (aggregated; the paper reports one "Adult" row).
  suffix("pornhub.com", ServiceId::kAdult);
  suffix("xvideos.com", ServiceId::kAdult);
  suffix("xhamster.com", ServiceId::kAdult);
  suffix("youporn.com", ServiceId::kAdult);
  suffix("phncdn.com", ServiceId::kAdult);

  suffix("spotify.com", ServiceId::kSpotify);
  suffix("scdn.co", ServiceId::kSpotify);
  suffix("spotifycdn.com", ServiceId::kSpotify);

  suffix("skype.com", ServiceId::kSkype);
  suffix("skypeassets.com", ServiceId::kSkype);
  suffix("trouter.io", ServiceId::kSkype);

  suffix("whatsapp.com", ServiceId::kWhatsApp);
  suffix("whatsapp.net", ServiceId::kWhatsApp);

  suffix("telegram.org", ServiceId::kTelegram);
  suffix("telegram.me", ServiceId::kTelegram);
  suffix("t.me", ServiceId::kTelegram);
  suffix("telesco.pe", ServiceId::kTelegram);

  suffix("snapchat.com", ServiceId::kSnapChat);
  suffix("sc-cdn.net", ServiceId::kSnapChat);
  suffix("snap-dev.net", ServiceId::kSnapChat);

  suffix("amazon.com", ServiceId::kAmazon);
  suffix("amazon.it", ServiceId::kAmazon);
  suffix("ssl-images-amazon.com", ServiceId::kAmazon);
  suffix("media-amazon.com", ServiceId::kAmazon);
  suffix("amazonaws.com", ServiceId::kAmazon);

  suffix("ebay.com", ServiceId::kEbay);
  suffix("ebay.it", ServiceId::kEbay);
  suffix("ebaystatic.com", ServiceId::kEbay);
  suffix("ebayimg.com", ServiceId::kEbay);
}

ServiceId ServiceCatalog::classify_domain(std::string_view domain) const {
  const auto service = rules_.classify(domain);
  if (!service) return ServiceId::kOther;
  const auto id = by_name(*service);
  return id ? *id : ServiceId::kOther;
}

ServiceId ServiceCatalog::classify_flow(dpi::L7Protocol l7, std::string_view server_name) const {
  if (dpi::is_p2p(l7)) return ServiceId::kPeerToPeer;
  if (server_name.empty()) return ServiceId::kOther;
  return classify_domain(server_name);
}

std::optional<ServiceId> ServiceCatalog::by_name(std::string_view name) const noexcept {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

}  // namespace edgewatch::services
