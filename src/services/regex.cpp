#include "services/regex.hpp"

#include <functional>

namespace edgewatch::services {

namespace {
constexpr std::uint32_t kStepBudget = 200'000;  // backtracking safety valve
}

// --------------------------------------------------------------- parser

struct Regex::Parser {
  std::string_view pattern;
  std::size_t pos = 0;
  bool failed = false;

  [[nodiscard]] bool done() const { return pos >= pattern.size(); }
  [[nodiscard]] char peek() const { return done() ? '\0' : pattern[pos]; }
  char take() { return done() ? '\0' : pattern[pos++]; }

  /// alternation := sequence ('|' sequence)*
  std::vector<std::vector<NodePtr>> parse_alternation() {
    std::vector<std::vector<NodePtr>> alts;
    alts.push_back(parse_sequence());
    while (!failed && peek() == '|') {
      take();
      alts.push_back(parse_sequence());
    }
    return alts;
  }

  /// sequence := quantified*
  std::vector<NodePtr> parse_sequence() {
    std::vector<NodePtr> seq;
    while (!failed && !done() && peek() != '|' && peek() != ')') {
      auto node = parse_quantified();
      if (failed || !node) break;
      seq.push_back(std::move(node));
    }
    return seq;
  }

  /// quantified := atom ('*' | '+' | '?')?
  NodePtr parse_quantified() {
    auto atom = parse_atom();
    if (failed || !atom) return atom;
    const char q = peek();
    if (q == '*' || q == '+' || q == '?') {
      take();
      if (atom->kind == Kind::kBeginAnchor || atom->kind == Kind::kEndAnchor) {
        failed = true;  // quantified anchors are nonsense
        return nullptr;
      }
      auto wrap = std::make_unique<Node>();
      wrap->kind = q == '*' ? Kind::kStar : q == '+' ? Kind::kPlus : Kind::kOptional;
      wrap->child = std::move(atom);
      return wrap;
    }
    return atom;
  }

  NodePtr parse_atom() {
    const char c = take();
    auto node = std::make_unique<Node>();
    switch (c) {
      case '^':
        node->kind = Kind::kBeginAnchor;
        return node;
      case '$':
        node->kind = Kind::kEndAnchor;
        return node;
      case '.':
        node->kind = Kind::kAny;
        return node;
      case '(': {
        node->kind = Kind::kAlternate;
        node->alts = parse_alternation();
        if (take() != ')') failed = true;
        return node;
      }
      case '[':
        return parse_class();
      case '\\': {
        if (done()) {
          failed = true;
          return nullptr;
        }
        node->kind = Kind::kLiteral;
        node->literal = take();
        return node;
      }
      case ')':
      case '*':
      case '+':
      case '?':
      case '|':
      case '\0':
        failed = true;
        return nullptr;
      default:
        node->kind = Kind::kLiteral;
        node->literal = c;
        return node;
    }
  }

  NodePtr parse_class() {
    auto node = std::make_unique<Node>();
    node->kind = Kind::kClass;
    node->char_class.assign(256, false);
    bool negate = false;
    if (peek() == '^') {
      take();
      negate = true;
    }
    bool first = true;
    while (!done() && (peek() != ']' || first)) {
      first = false;
      char lo = take();
      if (lo == '\\' && !done()) lo = take();
      char hi = lo;
      if (peek() == '-' && pos + 1 < pattern.size() && pattern[pos + 1] != ']') {
        take();  // '-'
        hi = take();
        if (hi == '\\' && !done()) hi = take();
      }
      if (static_cast<unsigned char>(lo) > static_cast<unsigned char>(hi)) {
        failed = true;
        return nullptr;
      }
      for (int ch = static_cast<unsigned char>(lo); ch <= static_cast<unsigned char>(hi); ++ch) {
        node->char_class[static_cast<std::size_t>(ch)] = true;
      }
    }
    if (take() != ']') {
      failed = true;
      return nullptr;
    }
    if (negate) {
      for (std::size_t i = 0; i < 256; ++i) node->char_class[i] = !node->char_class[i];
    }
    return node;
  }
};

std::optional<Regex> Regex::compile(std::string_view pattern) {
  Parser parser{pattern};
  auto alts = parser.parse_alternation();
  if (parser.failed || !parser.done()) return std::nullopt;
  Regex re;
  re.pattern_ = std::string(pattern);
  if (alts.size() == 1) {
    re.root_ = std::move(alts[0]);
  } else {
    auto node = std::make_unique<Node>();
    node->kind = Kind::kAlternate;
    node->alts = std::move(alts);
    re.root_.push_back(std::move(node));
  }
  return re;
}

// -------------------------------------------------------------- matcher

/// Continuation-passing backtracking: `match_node(n, pos, cont)` succeeds
/// if node `n` matches at `pos` and the continuation accepts the position
/// after the match. Sequences chain continuations; alternation and greedy
/// quantifiers backtrack by trying continuations in preference order.
struct Regex::Matcher {
  std::string_view text;
  std::uint32_t budget = kStepBudget;

  using Cont = std::function<bool(std::size_t)>;

  bool match_node(const Node& node, std::size_t pos, const Cont& cont) {
    if (budget == 0) return false;
    --budget;
    switch (node.kind) {
      case Kind::kLiteral:
        return pos < text.size() && text[pos] == node.literal && cont(pos + 1);
      case Kind::kAny:
        return pos < text.size() && cont(pos + 1);
      case Kind::kClass:
        return pos < text.size() && node.char_class[static_cast<unsigned char>(text[pos])] &&
               cont(pos + 1);
      case Kind::kBeginAnchor:
        return pos == 0 && cont(pos);
      case Kind::kEndAnchor:
        return pos == text.size() && cont(pos);
      case Kind::kAlternate:
        for (const auto& alt : node.alts) {
          if (match_seq(alt, 0, pos, cont)) return true;
        }
        return false;
      case Kind::kStar:
        return match_star(*node.child, pos, cont);
      case Kind::kPlus:
        return match_node(*node.child, pos,
                          [&](std::size_t p) { return match_star(*node.child, p, cont); });
      case Kind::kOptional:
        if (match_node(*node.child, pos, cont)) return true;
        return cont(pos);
    }
    return false;
  }

  bool match_star(const Node& child, std::size_t pos, const Cont& cont) {
    // Greedy: one more repetition first, then the continuation. The
    // zero-width guard (p != pos) prevents infinite loops on e.g. (a?)*.
    if (match_node(child, pos, [&](std::size_t p) {
          return p != pos && match_star(child, p, cont);
        })) {
      return true;
    }
    return cont(pos);
  }

  bool match_seq(const std::vector<NodePtr>& seq, std::size_t idx, std::size_t pos,
                 const Cont& cont) {
    if (idx == seq.size()) return cont(pos);
    return match_node(*seq[idx], pos,
                      [&](std::size_t p) { return match_seq(seq, idx + 1, p, cont); });
  }
};

bool Regex::search(std::string_view text) const {
  Matcher m{text};
  const auto accept = [](std::size_t) { return true; };
  for (std::size_t start = 0; start <= text.size(); ++start) {
    if (m.match_seq(root_, 0, start, accept)) return true;
    // Patterns starting with ^ can only match at 0; the anchor node makes
    // later starts fail fast, so no special-casing is needed here.
  }
  return false;
}

bool Regex::full_match(std::string_view text) const {
  Matcher m{text};
  return m.match_seq(root_, 0, 0, [&](std::size_t p) { return p == text.size(); });
}

}  // namespace edgewatch::services
