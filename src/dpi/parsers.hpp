// Payload parsers the probe's DPI stage runs on the first packets of each
// flow (paper §2.1): TLS ClientHello (SNI + ALPN), HTTP/1.x requests
// (Host:), and the GQUIC public header. Each parser has a matching builder
// so tests and the synthetic packet generator can fabricate valid payloads.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/bytes.hpp"

namespace edgewatch::dpi {

// ------------------------------------------------------------------ TLS

struct TlsClientHello {
  std::uint16_t record_version = 0;   ///< From the record layer, e.g. 0x0301.
  std::uint16_t client_version = 0;   ///< From the handshake body, e.g. 0x0303.
  std::string sni;                    ///< Empty if no server_name extension.
  std::vector<std::string> alpn;      ///< Offered protocols, in order.
};

/// True if the payload plausibly starts a TLS stream (handshake record,
/// SSL3..TLS1.3 record version).
[[nodiscard]] bool looks_like_tls(std::span<const std::byte> payload) noexcept;

/// Parse a ClientHello from the first TCP payload of a flow. Handles the
/// record layer, legacy session id, cipher suites, compression, and walks
/// the extension list for server_name (0) and ALPN (16).
[[nodiscard]] std::optional<TlsClientHello> parse_client_hello(
    std::span<const std::byte> payload);

/// Build a syntactically valid ClientHello payload carrying the given SNI
/// and ALPN list (either may be empty).
[[nodiscard]] std::vector<std::byte> build_client_hello(std::string_view sni,
                                                        std::span<const std::string> alpn,
                                                        std::uint16_t version = 0x0303);

/// The server's side of the negotiation: what actually got selected. The
/// client *offers* ALPN values; only the ServerHello settles whether the
/// flow speaks h2, spdy/3.1 or http/1.1.
struct TlsServerHello {
  std::uint16_t server_version = 0;
  std::string alpn;  ///< Selected protocol; empty if the extension is absent.
};

[[nodiscard]] std::optional<TlsServerHello> parse_server_hello(
    std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> build_server_hello(std::string_view alpn,
                                                        std::uint16_t version = 0x0303);

// ----------------------------------------------------------------- HTTP

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  std::string host;     ///< From the Host: header, lower-cased, no port.
};

[[nodiscard]] bool looks_like_http_request(std::span<const std::byte> payload) noexcept;

/// Parse the request line and headers up to the first empty line (or end of
/// the captured payload — a probe sees only the first segment).
[[nodiscard]] std::optional<HttpRequest> parse_http_request(std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> build_http_request(std::string_view host,
                                                        std::string_view target = "/",
                                                        std::string_view method = "GET");

/// The server's side: status line + headers (Tstat logs response codes and
/// content types per HTTP transaction).
struct HttpResponse {
  int status = 0;
  std::string version;       ///< "HTTP/1.0" or "HTTP/1.1"
  std::string content_type;  ///< Lower-cased media type, parameters stripped.
};

[[nodiscard]] bool looks_like_http_response(std::span<const std::byte> payload) noexcept;
[[nodiscard]] std::optional<HttpResponse> parse_http_response(
    std::span<const std::byte> payload);
[[nodiscard]] std::vector<std::byte> build_http_response(int status,
                                                         std::string_view content_type,
                                                         std::size_t body_bytes = 0);

// ----------------------------------------------------------------- QUIC

/// Google QUIC (the wire image deployed 2014-2017, paper events B and D).
struct QuicPublicHeader {
  bool has_version = false;
  std::uint64_t connection_id = 0;
  std::string version;  ///< e.g. "Q034"; empty if absent.
};

[[nodiscard]] bool looks_like_quic(std::span<const std::byte> payload) noexcept;
[[nodiscard]] std::optional<QuicPublicHeader> parse_quic_header(
    std::span<const std::byte> payload);
[[nodiscard]] std::vector<std::byte> build_quic_client_packet(std::uint64_t connection_id,
                                                              std::string_view version = "Q034");

// -------------------------------------------------------------- FB-Zero
//
// Facebook's "Zero protocol" (paper event F, Nov 2016) was a proprietary
// 0-RTT TLS modification used by the mobile apps, with no public spec. We
// model it as a distinct first-flight: the GQUIC-style tag "ZP01" over TCP
// port 443. See DESIGN.md (substitutions): what matters for the paper's
// analysis is that a sudden, unknown-to-the-probe protocol appears and is
// classified neither as TLS nor HTTP until probes are upgraded.

[[nodiscard]] bool looks_like_fbzero(std::span<const std::byte> payload) noexcept;
[[nodiscard]] std::vector<std::byte> build_fbzero_hello(std::string_view sni);
/// Extract the SNI-equivalent from a synthetic FB-Zero hello.
[[nodiscard]] std::optional<std::string> parse_fbzero_sni(std::span<const std::byte> payload);

// ----------------------------------------------------------------- P2P

/// BitTorrent TCP handshake: 0x13 "BitTorrent protocol".
[[nodiscard]] bool looks_like_bittorrent(std::span<const std::byte> payload) noexcept;
[[nodiscard]] std::vector<std::byte> build_bittorrent_handshake(
    std::span<const std::byte> info_hash);

/// eDonkey/eMule TCP framing: 0xE3 or 0xC5 marker + little-endian length.
[[nodiscard]] bool looks_like_edonkey(std::span<const std::byte> payload) noexcept;
[[nodiscard]] std::vector<std::byte> build_edonkey_hello();

/// Mainline-DHT over UDP (bencoded "d1:ad2:id20:..." queries).
[[nodiscard]] bool looks_like_dht(std::span<const std::byte> payload) noexcept;
[[nodiscard]] std::vector<std::byte> build_dht_query();

}  // namespace edgewatch::dpi
