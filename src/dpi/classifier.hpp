// Flow-level protocol classification (paper §5, Fig. 8 categories).
//
// The classifier inspects the first client-to-server payload of a flow and
// assigns an L7 protocol plus, for web traffic, the Fig. 8 "web protocol"
// class (HTTP, TLS, SPDY, HTTP/2, QUIC, FB-ZERO). It also extracts whatever
// hostname the payload exposes (HTTP Host:, TLS SNI, FB-Zero SNI).
//
// A probe's classification power depends on its software version — the
// paper's event C (June 2015) is precisely a probe upgrade that starts
// distinguishing SPDY from generic HTTPS. ClassifierOptions encodes such
// capabilities so the probe can reproduce that measurement artifact.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "core/types.hpp"
#include "dpi/parsers.hpp"

namespace edgewatch::dpi {

/// Application-layer protocol of a flow.
enum class L7Protocol : std::uint8_t {
  kUnknown = 0,
  kHttp,
  kTls,
  kQuic,
  kFbZero,
  kDns,
  kBittorrent,
  kEdonkey,
  kDht,
};

[[nodiscard]] std::string_view to_string(L7Protocol p) noexcept;
[[nodiscard]] constexpr bool is_p2p(L7Protocol p) noexcept {
  return p == L7Protocol::kBittorrent || p == L7Protocol::kEdonkey || p == L7Protocol::kDht;
}

/// The web-protocol breakdown of Fig. 8.
enum class WebProtocol : std::uint8_t {
  kNotWeb = 0,
  kHttp,
  kTls,     ///< HTTPS without a finer label.
  kSpdy,
  kHttp2,
  kQuic,
  kFbZero,
};

[[nodiscard]] std::string_view to_string(WebProtocol p) noexcept;

struct ClassifierOptions {
  /// Before the June-2015 probe upgrade (event C), SPDY is reported as TLS.
  bool report_spdy = true;
  /// Before probes learned the FB-Zero wire image (event F + upgrade), the
  /// flows are reported as unknown TCP traffic.
  bool report_fbzero = true;
};

struct Classification {
  L7Protocol l7 = L7Protocol::kUnknown;
  WebProtocol web = WebProtocol::kNotWeb;
  std::string server_name;  ///< Hostname from the payload itself, if any.
  std::string alpn;         ///< First offered ALPN token, if any.
  /// False when the payload looks like a known protocol but is truncated
  /// mid-message (e.g. a ClientHello split across TCP segments): the
  /// caller should retry with more reassembled bytes.
  bool conclusive = true;
};

/// Classify from the first client payload of a flow.
[[nodiscard]] Classification classify_payload(core::TransportProto proto,
                                              std::uint16_t server_port,
                                              std::span<const std::byte> payload,
                                              const ClassifierOptions& options = {});

}  // namespace edgewatch::dpi
