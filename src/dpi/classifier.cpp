#include "dpi/classifier.hpp"

namespace edgewatch::dpi {

std::string_view to_string(L7Protocol p) noexcept {
  switch (p) {
    case L7Protocol::kHttp: return "HTTP";
    case L7Protocol::kTls: return "TLS";
    case L7Protocol::kQuic: return "QUIC";
    case L7Protocol::kFbZero: return "FB-ZERO";
    case L7Protocol::kDns: return "DNS";
    case L7Protocol::kBittorrent: return "BITTORRENT";
    case L7Protocol::kEdonkey: return "EDONKEY";
    case L7Protocol::kDht: return "DHT";
    default: return "UNKNOWN";
  }
}

std::string_view to_string(WebProtocol p) noexcept {
  switch (p) {
    case WebProtocol::kHttp: return "HTTP";
    case WebProtocol::kTls: return "TLS";
    case WebProtocol::kSpdy: return "SPDY";
    case WebProtocol::kHttp2: return "HTTP/2";
    case WebProtocol::kQuic: return "QUIC";
    case WebProtocol::kFbZero: return "FB-ZERO";
    default: return "NOT-WEB";
  }
}

namespace {

WebProtocol refine_tls(const TlsClientHello& hello, const ClassifierOptions& options) {
  for (const auto& proto : hello.alpn) {
    if (proto == "h2" || proto == "h2-14" || proto == "h2-15") return WebProtocol::kHttp2;
    if (proto.starts_with("spdy/")) {
      return options.report_spdy ? WebProtocol::kSpdy : WebProtocol::kTls;
    }
  }
  return WebProtocol::kTls;
}

}  // namespace

Classification classify_payload(core::TransportProto proto, std::uint16_t server_port,
                                std::span<const std::byte> payload,
                                const ClassifierOptions& options) {
  Classification c;

  if (proto == core::TransportProto::kUdp) {
    if (server_port == 53) {
      c.l7 = L7Protocol::kDns;
      return c;
    }
    if (looks_like_quic(payload)) {
      c.l7 = L7Protocol::kQuic;
      c.web = WebProtocol::kQuic;
      return c;
    }
    if (looks_like_dht(payload)) {
      c.l7 = L7Protocol::kDht;
      return c;
    }
    return c;
  }

  if (proto != core::TransportProto::kTcp) return c;

  if (looks_like_tls(payload)) {
    c.l7 = L7Protocol::kTls;
    if (auto hello = parse_client_hello(payload)) {
      c.server_name = hello->sni;
      if (!hello->alpn.empty()) c.alpn = hello->alpn.front();
      c.web = refine_tls(*hello, options);
    } else {
      // TLS record framing present but the hello does not parse: likely a
      // ClientHello continued in the next segment — ask for reassembly.
      c.web = WebProtocol::kTls;
      c.conclusive = false;
    }
    return c;
  }
  if (looks_like_http_request(payload)) {
    c.l7 = L7Protocol::kHttp;
    c.web = WebProtocol::kHttp;
    if (auto req = parse_http_request(payload)) c.server_name = req->host;
    return c;
  }
  if (looks_like_fbzero(payload)) {
    if (options.report_fbzero) {
      c.l7 = L7Protocol::kFbZero;
      c.web = WebProtocol::kFbZero;
      if (auto sni = parse_fbzero_sni(payload)) c.server_name = *sni;
    }
    return c;  // unknown when the probe predates the protocol
  }
  if (looks_like_bittorrent(payload)) {
    c.l7 = L7Protocol::kBittorrent;
    return c;
  }
  if (looks_like_edonkey(payload)) {
    c.l7 = L7Protocol::kEdonkey;
    return c;
  }
  return c;
}

}  // namespace edgewatch::dpi
