#include "dpi/parsers.hpp"

#include <algorithm>
#include <cctype>

namespace edgewatch::dpi {

namespace {

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

}  // namespace

// ------------------------------------------------------------------ TLS

bool looks_like_tls(std::span<const std::byte> payload) noexcept {
  if (payload.size() < 5) return false;
  const auto type = std::to_integer<std::uint8_t>(payload[0]);
  const auto major = std::to_integer<std::uint8_t>(payload[1]);
  const auto minor = std::to_integer<std::uint8_t>(payload[2]);
  return type == 0x16 && major == 3 && minor <= 4;
}

std::optional<TlsClientHello> parse_client_hello(std::span<const std::byte> payload) {
  if (!looks_like_tls(payload)) return std::nullopt;
  core::ByteReader r{payload};
  TlsClientHello hello;

  // Record layer.
  (void)r.u8();  // content type, already checked
  hello.record_version = r.u16();
  const std::uint16_t record_len = r.u16();
  (void)record_len;  // may exceed the captured bytes; parse what we have

  // Handshake layer.
  const std::uint8_t handshake_type = r.u8();
  if (handshake_type != 0x01) return std::nullopt;  // not a ClientHello
  (void)r.u24();                                    // handshake length
  hello.client_version = r.u16();
  r.skip(32);  // random
  const std::uint8_t session_id_len = r.u8();
  r.skip(session_id_len);
  const std::uint16_t cipher_len = r.u16();
  r.skip(cipher_len);
  const std::uint8_t compression_len = r.u8();
  r.skip(compression_len);
  if (!r.ok()) return std::nullopt;
  if (r.remaining() < 2) return hello;  // extensions are optional

  const std::uint16_t ext_total = r.u16();
  std::size_t ext_consumed = 0;
  while (ext_consumed + 4 <= ext_total && r.ok() && r.remaining() >= 4) {
    const std::uint16_t ext_type = r.u16();
    const std::uint16_t ext_len = r.u16();
    ext_consumed += 4 + ext_len;
    if (ext_type == 0x0000) {  // server_name
      core::ByteReader er{r.bytes(ext_len)};
      const std::uint16_t list_len = er.u16();
      (void)list_len;
      const std::uint8_t name_type = er.u8();
      const std::uint16_t name_len = er.u16();
      if (er.ok() && name_type == 0) {
        hello.sni = to_lower(er.string(name_len));
      }
    } else if (ext_type == 0x0010) {  // ALPN
      core::ByteReader er{r.bytes(ext_len)};
      const std::uint16_t list_len = er.u16();
      std::size_t consumed = 0;
      while (consumed < list_len && er.ok() && er.remaining() > 0) {
        const std::uint8_t plen = er.u8();
        const auto proto = er.string(plen);
        if (!er.ok()) break;
        hello.alpn.emplace_back(proto);
        consumed += 1 + plen;
      }
    } else {
      r.skip(ext_len);
    }
  }
  if (!r.ok()) return std::nullopt;
  return hello;
}

std::vector<std::byte> build_client_hello(std::string_view sni, std::span<const std::string> alpn,
                                          std::uint16_t version) {
  // Extensions block first (its size is needed by enclosing lengths).
  core::ByteWriter ext;
  if (!sni.empty()) {
    ext.u16(0x0000);
    ext.u16(static_cast<std::uint16_t>(2 + 1 + 2 + sni.size()));
    ext.u16(static_cast<std::uint16_t>(1 + 2 + sni.size()));  // server name list
    ext.u8(0);                                                // host_name
    ext.u16(static_cast<std::uint16_t>(sni.size()));
    ext.string(sni);
  }
  if (!alpn.empty()) {
    std::size_t list = 0;
    for (const auto& p : alpn) list += 1 + p.size();
    ext.u16(0x0010);
    ext.u16(static_cast<std::uint16_t>(2 + list));
    ext.u16(static_cast<std::uint16_t>(list));
    for (const auto& p : alpn) {
      ext.u8(static_cast<std::uint8_t>(p.size()));
      ext.string(p);
    }
  }

  core::ByteWriter body;
  body.u16(version);
  body.fill(32, 0xaa);  // random
  body.u8(0);           // empty session id
  body.u16(2);          // one cipher suite
  body.u16(0x1301);     // TLS_AES_128_GCM_SHA256
  body.u8(1);           // one compression method
  body.u8(0);           // null
  body.u16(static_cast<std::uint16_t>(ext.size()));
  body.bytes(ext.view());

  core::ByteWriter handshake;
  handshake.u8(0x01);  // ClientHello
  handshake.u24(static_cast<std::uint32_t>(body.size()));
  handshake.bytes(body.view());

  core::ByteWriter record;
  record.u8(0x16);    // handshake
  record.u16(0x0301); // record-layer version as emitted by real clients
  record.u16(static_cast<std::uint16_t>(handshake.size()));
  record.bytes(handshake.view());
  return std::move(record).take();
}

std::optional<TlsServerHello> parse_server_hello(std::span<const std::byte> payload) {
  if (!looks_like_tls(payload)) return std::nullopt;
  core::ByteReader r{payload};
  (void)r.u8();   // content type
  (void)r.u16();  // record version
  (void)r.u16();  // record length
  const std::uint8_t handshake_type = r.u8();
  if (handshake_type != 0x02) return std::nullopt;  // not a ServerHello
  (void)r.u24();
  TlsServerHello hello;
  hello.server_version = r.u16();
  r.skip(32);  // random
  const std::uint8_t session_id_len = r.u8();
  r.skip(session_id_len);
  r.skip(2);  // chosen cipher suite
  r.skip(1);  // compression method
  if (!r.ok()) return std::nullopt;
  if (r.remaining() < 2) return hello;
  const std::uint16_t ext_total = r.u16();
  std::size_t consumed = 0;
  while (consumed + 4 <= ext_total && r.ok() && r.remaining() >= 4) {
    const std::uint16_t ext_type = r.u16();
    const std::uint16_t ext_len = r.u16();
    consumed += 4 + ext_len;
    if (ext_type == 0x0010) {  // ALPN: exactly one selected protocol
      core::ByteReader er{r.bytes(ext_len)};
      (void)er.u16();  // list length
      const std::uint8_t plen = er.u8();
      const auto proto = er.string(plen);
      if (er.ok()) hello.alpn = std::string(proto);
    } else {
      r.skip(ext_len);
    }
  }
  if (!r.ok()) return std::nullopt;
  return hello;
}

std::vector<std::byte> build_server_hello(std::string_view alpn, std::uint16_t version) {
  core::ByteWriter ext;
  if (!alpn.empty()) {
    ext.u16(0x0010);
    ext.u16(static_cast<std::uint16_t>(2 + 1 + alpn.size()));
    ext.u16(static_cast<std::uint16_t>(1 + alpn.size()));
    ext.u8(static_cast<std::uint8_t>(alpn.size()));
    ext.string(alpn);
  }
  core::ByteWriter body;
  body.u16(version);
  body.fill(32, 0xbb);  // random
  body.u8(0);           // empty session id
  body.u16(0x1301);     // chosen cipher
  body.u8(0);           // null compression
  body.u16(static_cast<std::uint16_t>(ext.size()));
  body.bytes(ext.view());

  core::ByteWriter handshake;
  handshake.u8(0x02);  // ServerHello
  handshake.u24(static_cast<std::uint32_t>(body.size()));
  handshake.bytes(body.view());

  core::ByteWriter record;
  record.u8(0x16);
  record.u16(0x0301);
  record.u16(static_cast<std::uint16_t>(handshake.size()));
  record.bytes(handshake.view());
  return std::move(record).take();
}

// ----------------------------------------------------------------- HTTP

bool looks_like_http_request(std::span<const std::byte> payload) noexcept {
  static constexpr std::string_view kMethods[] = {"GET ",     "POST ",  "HEAD ",
                                                  "PUT ",     "DELETE ", "OPTIONS ",
                                                  "CONNECT ", "PATCH "};
  for (auto m : kMethods) {
    if (payload.size() >= m.size() &&
        std::equal(m.begin(), m.end(), reinterpret_cast<const char*>(payload.data()))) {
      return true;
    }
  }
  return false;
}

std::optional<HttpRequest> parse_http_request(std::span<const std::byte> payload) {
  if (!looks_like_http_request(payload)) return std::nullopt;
  const std::string_view text{reinterpret_cast<const char*>(payload.data()), payload.size()};

  const auto line_end = text.find("\r\n");
  if (line_end == std::string_view::npos) return std::nullopt;
  const auto request_line = text.substr(0, line_end);
  const auto sp1 = request_line.find(' ');
  const auto sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return std::nullopt;

  HttpRequest req;
  req.method = std::string(request_line.substr(0, sp1));
  req.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  req.version = std::string(request_line.substr(sp2 + 1));
  if (!req.version.starts_with("HTTP/")) return std::nullopt;

  std::size_t pos = line_end + 2;
  while (pos < text.size()) {
    const auto eol = text.find("\r\n", pos);
    const auto line = text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                                     : eol - pos);
    if (line.empty()) break;  // end of headers
    const auto colon = line.find(':');
    if (colon != std::string_view::npos) {
      auto name = to_lower(line.substr(0, colon));
      if (name == "host") {
        auto value = line.substr(colon + 1);
        while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
        while (!value.empty() && (value.back() == ' ' || value.back() == '\r')) {
          value.remove_suffix(1);
        }
        const auto port = value.rfind(':');
        if (port != std::string_view::npos &&
            value.find_first_not_of("0123456789", port + 1) == std::string_view::npos) {
          value = value.substr(0, port);
        }
        req.host = to_lower(value);
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 2;
  }
  return req;
}

std::vector<std::byte> build_http_request(std::string_view host, std::string_view target,
                                          std::string_view method) {
  std::string text;
  text.reserve(64 + host.size() + target.size());
  text.append(method).append(" ").append(target).append(" HTTP/1.1\r\n");
  text.append("Host: ").append(host).append("\r\n");
  text.append("User-Agent: edgewatch-synth/1.0\r\n");
  text.append("Accept: */*\r\n\r\n");
  return core::to_bytes(text);
}

bool looks_like_http_response(std::span<const std::byte> payload) noexcept {
  static constexpr std::string_view kPrefix = "HTTP/1.";
  if (payload.size() < kPrefix.size() + 5) return false;  // "HTTP/1.x NNN"
  return std::equal(kPrefix.begin(), kPrefix.end(),
                    reinterpret_cast<const char*>(payload.data()));
}

std::optional<HttpResponse> parse_http_response(std::span<const std::byte> payload) {
  if (!looks_like_http_response(payload)) return std::nullopt;
  const std::string_view text{reinterpret_cast<const char*>(payload.data()), payload.size()};
  const auto line_end = text.find("\r\n");
  if (line_end == std::string_view::npos) return std::nullopt;
  const auto status_line = text.substr(0, line_end);
  const auto sp = status_line.find(' ');
  if (sp == std::string_view::npos || sp + 4 > status_line.size()) return std::nullopt;

  HttpResponse resp;
  resp.version = std::string(status_line.substr(0, sp));
  int status = 0;
  for (int i = 0; i < 3; ++i) {
    const char c = status_line[sp + 1 + static_cast<std::size_t>(i)];
    if (c < '0' || c > '9') return std::nullopt;
    status = status * 10 + (c - '0');
  }
  resp.status = status;

  std::size_t pos = line_end + 2;
  while (pos < text.size()) {
    const auto eol = text.find("\r\n", pos);
    const auto line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    if (line.empty()) break;
    const auto colon = line.find(':');
    if (colon != std::string_view::npos && to_lower(line.substr(0, colon)) == "content-type") {
      auto value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
      const auto semi = value.find(';');
      if (semi != std::string_view::npos) value = value.substr(0, semi);
      while (!value.empty() && value.back() == ' ') value.remove_suffix(1);
      resp.content_type = to_lower(value);
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 2;
  }
  return resp;
}

std::vector<std::byte> build_http_response(int status, std::string_view content_type,
                                           std::size_t body_bytes) {
  std::string text = "HTTP/1.1 " + std::to_string(status) + " OK\r\n";
  if (!content_type.empty()) {
    text += "Content-Type: ";
    text += content_type;
    text += "\r\n";
  }
  text += "Content-Length: " + std::to_string(body_bytes) + "\r\n\r\n";
  text.append(body_bytes, 'B');
  return core::to_bytes(text);
}

// ----------------------------------------------------------------- QUIC

bool looks_like_quic(std::span<const std::byte> payload) noexcept {
  if (payload.size() < 9) return false;
  const auto flags = std::to_integer<std::uint8_t>(payload[0]);
  // GQUIC client packets: PUBLIC_FLAG_VERSION (0x01) + 8-byte CID (0x08),
  // reserved bits clear.
  if ((flags & 0x09) != 0x09 || (flags & 0x80) != 0) return false;
  if (payload.size() < 13) return false;
  // Version tag "Q0xx" with digits.
  const char q = static_cast<char>(std::to_integer<std::uint8_t>(payload[9]));
  const char d0 = static_cast<char>(std::to_integer<std::uint8_t>(payload[10]));
  const char d1 = static_cast<char>(std::to_integer<std::uint8_t>(payload[11]));
  const char d2 = static_cast<char>(std::to_integer<std::uint8_t>(payload[12]));
  return q == 'Q' && std::isdigit(static_cast<unsigned char>(d0)) &&
         std::isdigit(static_cast<unsigned char>(d1)) &&
         std::isdigit(static_cast<unsigned char>(d2));
}

std::optional<QuicPublicHeader> parse_quic_header(std::span<const std::byte> payload) {
  if (!looks_like_quic(payload)) return std::nullopt;
  core::ByteReader r{payload};
  QuicPublicHeader h;
  (void)r.u8();
  h.connection_id = r.u64le();
  h.has_version = true;
  h.version = std::string(r.string(4));
  if (!r.ok()) return std::nullopt;
  return h;
}

std::vector<std::byte> build_quic_client_packet(std::uint64_t connection_id,
                                                std::string_view version) {
  core::ByteWriter w;
  w.u8(0x09);  // VERSION | 8-byte CID
  w.u64le(connection_id);
  w.string(version.substr(0, 4));
  w.fill(16, 0x42);  // opaque packet number + payload stub
  return std::move(w).take();
}

// -------------------------------------------------------------- FB-Zero

namespace {
constexpr std::string_view kZeroMagic = "ZP01";
}

bool looks_like_fbzero(std::span<const std::byte> payload) noexcept {
  if (payload.size() < kZeroMagic.size()) return false;
  return std::equal(kZeroMagic.begin(), kZeroMagic.end(),
                    reinterpret_cast<const char*>(payload.data()));
}

std::vector<std::byte> build_fbzero_hello(std::string_view sni) {
  core::ByteWriter w;
  w.string(kZeroMagic);
  w.u16(static_cast<std::uint16_t>(sni.size()));
  w.string(sni);
  w.fill(8, 0x5a);
  return std::move(w).take();
}

std::optional<std::string> parse_fbzero_sni(std::span<const std::byte> payload) {
  if (!looks_like_fbzero(payload)) return std::nullopt;
  core::ByteReader r{payload};
  r.skip(kZeroMagic.size());
  const std::uint16_t len = r.u16();
  auto name = r.string(len);
  if (!r.ok()) return std::nullopt;
  return to_lower(name);
}

// ----------------------------------------------------------------- P2P

bool looks_like_bittorrent(std::span<const std::byte> payload) noexcept {
  static constexpr std::string_view kProto = "BitTorrent protocol";
  if (payload.size() < 1 + kProto.size()) return false;
  if (std::to_integer<std::uint8_t>(payload[0]) != 19) return false;
  return std::equal(kProto.begin(), kProto.end(),
                    reinterpret_cast<const char*>(payload.data() + 1));
}

std::vector<std::byte> build_bittorrent_handshake(std::span<const std::byte> info_hash) {
  core::ByteWriter w;
  w.u8(19);
  w.string("BitTorrent protocol");
  w.fill(8, 0);  // reserved
  for (std::size_t i = 0; i < 20; ++i) {
    w.u8(i < info_hash.size() ? std::to_integer<std::uint8_t>(info_hash[i]) : 0);
  }
  w.fill(20, 0x50);  // peer id
  return std::move(w).take();
}

bool looks_like_edonkey(std::span<const std::byte> payload) noexcept {
  if (payload.size() < 6) return false;
  const auto marker = std::to_integer<std::uint8_t>(payload[0]);
  if (marker != 0xe3 && marker != 0xc5) return false;
  // 4-byte little-endian length must be plausible (< 2 MB).
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= std::to_integer<std::uint32_t>(payload[1 + i]) << (8 * i);
  }
  return len > 0 && len < (2u << 20);
}

std::vector<std::byte> build_edonkey_hello() {
  core::ByteWriter w;
  w.u8(0xe3);
  w.u32le(25);  // message length
  w.u8(0x01);   // OP_HELLO
  w.fill(24, 0x11);
  return std::move(w).take();
}

bool looks_like_dht(std::span<const std::byte> payload) noexcept {
  static constexpr std::string_view kPrefix = "d1:ad2:id20:";
  if (payload.size() < kPrefix.size()) return false;
  return std::equal(kPrefix.begin(), kPrefix.end(),
                    reinterpret_cast<const char*>(payload.data()));
}

std::vector<std::byte> build_dht_query() {
  return core::to_bytes("d1:ad2:id20:abcdefghij0123456789e1:q4:ping1:t2:aa1:y1:qe");
}

}  // namespace edgewatch::dpi
