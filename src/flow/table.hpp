// The probe's flow table: groups packets into bidirectional TCP/UDP flows,
// runs the TCP state machine, feeds the RTT estimator, and expires entries
// (paper §2.1 footnote 1: "streams are expired either by the observation of
// particular packets (e.g., TCP packets with RST flag set) or by timeouts").
//
// Expiry uses an amortized checkpoint queue: every insertion/update pushes
// (key, last_seen) onto a FIFO; advance() pops entries whose checkpoint
// passed the timeout and re-checks the live flow before evicting, giving
// O(1) amortized maintenance without timers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string_view>

#include "core/flat_hash_map.hpp"
#include "core/function_ref.hpp"
#include "core/time.hpp"
#include "core/types.hpp"
#include "dpi/classifier.hpp"
#include "flow/record.hpp"
#include "flow/rtt.hpp"
#include "net/packet.hpp"
#include "obs/obs.hpp"

namespace edgewatch::flow {

struct FlowTableConfig {
  std::int64_t tcp_idle_timeout_us = 300 * core::Timestamp::kMicrosPerSecond;
  std::int64_t udp_idle_timeout_us = 120 * core::Timestamp::kMicrosPerSecond;
  /// Grace period after FIN/RST before the entry is reaped, so stray
  /// retransmissions do not resurrect the flow as a new record.
  std::int64_t closed_linger_us = 5 * core::Timestamp::kMicrosPerSecond;
  /// Hard cap on concurrent flows; above it, the oldest-checkpoint flows
  /// are force-expired (probes must bound memory).
  std::size_t max_flows = 1'000'000;
  /// Slots pre-reserved at construction. A probe knows it will track
  /// thousands of concurrent flows; growing there from an empty table
  /// rehash-moves every live FlowState several times over. ~1.5 MB at the
  /// default — noise next to the per-flow state itself.
  std::size_t reserve_flows = 4096;
  /// Per-flow DPI reassembly budget: how many client-stream bytes may be
  /// buffered while waiting for a split first-flight to complete.
  std::size_t dpi_buffer_limit = 8192;
  dpi::ClassifierOptions classifier;
};

/// Live per-flow state. The embedded record accumulates as packets arrive.
///
/// Member order is the hot path's memory layout: the fields every TCP
/// packet reads or writes sit first, so inside a map slot they share a
/// cache line with the FiveTuple key — the lookup's key comparison has
/// already paid for the line by the time the state machine runs. Colder
/// members (DPI buffer, RTT queue) sink to the tail.
struct FlowState {
  // TCP sequence tracking for anomaly counters (ref [29]): next expected
  // sequence number per direction, valid once the first segment is seen.
  std::uint32_t next_seq_client = 0;
  std::uint32_t next_seq_server = 0;
  bool seq_valid_client = false;
  bool seq_valid_server = false;

  // TCP bookkeeping.
  bool syn_seen = false;
  bool synack_seen = false;
  bool fin_client = false;
  bool fin_server = false;
  bool closed = false;

  bool dpi_done = false;
  bool server_dpi_done = false;  ///< ServerHello (negotiated ALPN) examined.
  bool dns_checked = false;

  FlowRecord record;
  core::Timestamp closed_at;

  /// DN-Hunter name captured at flow start by the probe; applied at export
  /// only if DPI found no hostname in the payload itself (paper §2.1). A
  /// view into the DN-Hunter's interning pool — not owned. The probe only
  /// clears that pool after flushing the table, so the view cannot dangle.
  std::string_view dns_hint;

  /// Client-payload reassembly buffer for DPI: a TLS ClientHello often
  /// spans TCP segments; the probe buffers the first bytes of the client
  /// stream until a classification succeeds or the budget is exhausted.
  std::vector<std::byte> dpi_buffer;

  RttEstimator rtt;
};

/// Heterogeneous probe key for the flow map: matches a stored flow no
/// matter which direction the packet travelled. Only meaningful together
/// with FlowKeyHash, which makes the two orientations hash identically.
struct EitherOrientation {
  core::FiveTuple as_sent;

  friend bool operator==(const core::FiveTuple& stored, const EitherOrientation& k) noexcept {
    return stored == k.as_sent || stored == k.as_sent.reversed();
  }
};

/// Orientation-insensitive flow-key hash: a tuple and its reversed twin
/// hash identically (the endpoints are combined commutatively before the
/// keyed multiply-mix), so ingest resolves a packet to its flow with ONE
/// probe sequence instead of a find(as_sent) + find(reversed) pair. The two
/// orientations can never coexist as distinct flows — ingest checks both
/// before inserting — so matching either is unambiguous.
struct FlowKeyHash {
  /// Fully mixed result; FlatHashMap skips its own finalizer.
  using is_avalanching = void;

  [[nodiscard]] std::size_t operator()(const core::FiveTuple& t) const noexcept {
    const std::uint64_t a = (std::uint64_t{t.src_ip.value()} << 16) | t.src_port;
    const std::uint64_t b = (std::uint64_t{t.dst_ip.value()} << 16) | t.dst_port;
    // (a+b, a^b) identifies the unordered endpoint pair; fold the protocol
    // into the odd word so TCP/UDP flows between the same endpoints split.
    const std::uint64_t x = (a + b) ^ 0x9e3779b97f4a7c15ull;
    const std::uint64_t y = (a ^ b) ^ (static_cast<std::uint64_t>(t.proto) << 56) ^
                            0xe7037ed1a0b428dbull;
    __extension__ using uint128 = unsigned __int128;
    const auto m = static_cast<uint128>(x) * y;
    return static_cast<std::size_t>(static_cast<std::uint64_t>(m) ^
                                    static_cast<std::uint64_t>(m >> 64));
  }
  [[nodiscard]] std::size_t operator()(const EitherOrientation& k) const noexcept {
    return (*this)(k.as_sent);
  }
};

class FlowTable {
 public:
  /// Non-owning: the probe exports one record per finished flow at line
  /// rate, so the sink is a FunctionRef (single indirect call, no owning
  /// type erasure on the hot path). The referenced callable must outlive
  /// the table — bind a named object, not a temporary lambda; temporaries
  /// are rejected at compile time.
  using ExportSink = core::FunctionRef<void(FlowRecord&&)>;

  explicit FlowTable(FlowTableConfig config, ExportSink sink)
      : config_(config), sink_(sink) {
    flows_.reserve(config_.reserve_flows);
    dpi_classify_ns_ = &obs::Registry::global().histogram("dpi_classify_ns");
  }

  /// Feed one decoded packet. Returns the flow state the packet landed in
  /// (nullptr for non-TCP/UDP packets). `is_from_client` in the state is
  /// derived from who sent the first packet (or the SYN).
  FlowState* ingest(const net::DecodedPacket& pkt);

  /// Warm the cache lines the next ingest() of this packet would probe
  /// (control group + primary slot). Pure hint, no observable effect; used
  /// by the probe's pipelined replay to overlap the slot fetch with the
  /// previous packet's state machine.
  void prefetch_flow(const core::FiveTuple& as_sent) const noexcept {
    flows_.prefetch(EitherOrientation{as_sent});
  }

  /// Advance time: expire idle and lingering-closed flows with
  /// last-activity before `now - timeout`. Call with each packet timestamp
  /// (the probe has no other clock).
  void advance(core::Timestamp now);

  /// Export everything still open (probe shutdown / end of trace).
  void flush(FlowCloseReason reason = FlowCloseReason::kProbeFlush);

  [[nodiscard]] std::size_t active_flows() const noexcept { return flows_.size(); }

  /// Probe software upgrade: affects flows classified from now on.
  void set_classifier_options(dpi::ClassifierOptions options) noexcept {
    config_.classifier = options;
  }

  /// Set the arrival index stamped into the NEXT created flow's
  /// `record.ingest_seq`. Left alone, the table counts its own ingested
  /// packets; a sharded probe overrides it before every packet with a
  /// probe-global sequence so the tag is independent of how flows were
  /// partitioned across shards.
  void set_next_ingest_seq(std::uint64_t seq) noexcept { next_ingest_seq_ = seq; }
  [[nodiscard]] std::uint64_t next_ingest_seq() const noexcept { return next_ingest_seq_; }

  struct Counters {
    std::uint64_t packets = 0;
    std::uint64_t flows_created = 0;
    std::uint64_t flows_exported = 0;
    std::uint64_t expired_idle = 0;
    std::uint64_t closed_teardown = 0;
    std::uint64_t closed_reset = 0;
    std::uint64_t forced_evictions = 0;
  };
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

  // Checkpoint/restore support (probe crash recovery). A checkpoint is
  // the set of live flows plus the counters; the expiry FIFO is rebuilt on
  // restore from each flow's last-activity time.
  void for_each_flow(
      const std::function<void(const core::FiveTuple&, const FlowState&)>& fn) const {
    for (const auto& [key, state] : flows_) fn(key, state);
  }
  /// Reinsert a flow saved by for_each_flow, re-arming its expiry
  /// checkpoint. Replaces any live flow under the same key.
  void restore_flow(const core::FiveTuple& key, FlowState state);
  void restore_counters(const Counters& counters) noexcept { counters_ = counters; }
  /// Call once after the last restore_flow: orders the rebuilt expiry FIFO
  /// by (last activity, ingest_seq) so timeout sweeps after a restore
  /// export flows in the same order an uninterrupted run would —
  /// independent of the hash-table iteration order the flows were saved in.
  void finalize_restore();
  /// Drop all live flows and counters without exporting anything.
  void reset();

 private:
  struct Checkpoint {
    core::FiveTuple key;
    core::Timestamp seen;
  };

  void handle_tcp(FlowState& state, const net::DecodedPacket& pkt, bool from_client);
  void run_dpi(FlowState& state, const net::DecodedPacket& pkt, bool from_client);
  void run_server_dpi(FlowState& state, const net::DecodedPacket& pkt);
  void export_flow(const core::FiveTuple& key, FlowCloseReason reason);
  [[nodiscard]] std::int64_t idle_timeout(core::TransportProto proto) const noexcept {
    return proto == core::TransportProto::kTcp ? config_.tcp_idle_timeout_us
                                               : config_.udp_idle_timeout_us;
  }

  FlowTableConfig config_;
  ExportSink sink_;
  // Keyed by the client→server orientation of the first packet, hashed
  // orientation-insensitively (FlowKeyHash) so a packet from either side
  // resolves in a single probe sequence. Open addressing: one probe usually
  // touches a single cache line instead of chasing a bucket list, which is
  // where the per-packet budget goes.
  core::FlatHashMap<core::FiveTuple, FlowState, FlowKeyHash> flows_;
  std::deque<Checkpoint> checkpoints_;
  Counters counters_;
  std::uint64_t next_ingest_seq_ = 0;

  /// Sampled DPI-stage latency (1 classification in 64); DPI runs only on
  /// a flow's first payload-bearing packets, so the clock reads are far
  /// off the per-packet path. Not part of checkpoint state.
  obs::Histogram* dpi_classify_ns_ = nullptr;
  std::uint64_t dpi_obs_ticks_ = 0;
};

}  // namespace edgewatch::flow
