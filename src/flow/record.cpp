#include "flow/record.hpp"

#include <cstdio>

namespace edgewatch::flow {

std::string_view to_string(NameSource s) noexcept {
  switch (s) {
    case NameSource::kHttpHost: return "http-host";
    case NameSource::kTlsSni: return "tls-sni";
    case NameSource::kFbZero: return "fbzero-sni";
    case NameSource::kDnsHunter: return "dn-hunter";
    default: return "none";
  }
}

std::string_view to_string(AccessTech t) noexcept {
  return t == AccessTech::kFtth ? "FTTH" : "ADSL";
}

std::string_view to_string(FlowCloseReason r) noexcept {
  switch (r) {
    case FlowCloseReason::kTcpTeardown: return "teardown";
    case FlowCloseReason::kTcpReset: return "reset";
    case FlowCloseReason::kIdleTimeout: return "timeout";
    case FlowCloseReason::kProbeFlush: return "flush";
    default: return "active";
  }
}

std::string FlowRecord::to_csv_row() const {
  std::string row;
  row.reserve(192);
  auto append = [&row](std::string_view s) {
    row += s;
    row += ',';
  };
  append(client_ip.to_string());
  append(server_ip.to_string());
  append(std::to_string(client_port));
  append(std::to_string(server_port));
  append(core::to_string(proto));
  append(to_string(access));
  append(std::to_string(first_packet.micros()));
  append(std::to_string(last_packet.micros()));
  append(std::to_string(up.packets));
  append(std::to_string(up.bytes));
  append(std::to_string(up.retransmits));
  append(std::to_string(up.out_of_order));
  append(std::to_string(down.packets));
  append(std::to_string(down.bytes));
  append(std::to_string(down.retransmits));
  append(std::to_string(down.out_of_order));
  append(handshake_completed ? "1" : "0");
  append(to_string(close_reason));
  append(std::to_string(rtt.samples));
  append(std::to_string(rtt.min_us));
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", rtt.avg_us);
    append(buf);
  }
  append(std::to_string(rtt.max_us));
  append(dpi::to_string(l7));
  append(dpi::to_string(web));
  append(server_name);
  append(to_string(name_source));
  append(std::to_string(http_status));
  row += content_type;
  return row;
}

}  // namespace edgewatch::flow
