// Passive RTT estimation from TCP seq/ack matching (paper §2.1, ref [29]).
//
// The probe sits between subscribers and servers. For each client→server
// segment carrying data (or SYN), it remembers (highest sequence byte,
// capture time). When the server's ACK covering that byte is observed, the
// elapsed time is one probe→server→probe RTT sample — precisely the
// "external" path delay the paper plots in Fig. 10, excluding the access
// network. Karn's rule is applied: segments that were retransmitted are
// dropped so ambiguous ACKs never produce samples.
#pragma once

#include <cstdint>
#include <vector>

#include "core/time.hpp"
#include "flow/record.hpp"

namespace edgewatch::flow {

class RttEstimator {
 public:
  /// Bound on outstanding unacked segments tracked per flow. Beyond this,
  /// the oldest are dropped (long bulk transfers produce plenty of samples
  /// anyway; memory per flow must stay small at probe scale).
  static constexpr std::size_t kMaxOutstanding = 16;

  /// Record a client→server segment. `seq_end` is seq + payload length
  /// (+1 for SYN/FIN). Zero-length pure ACKs produce no sample and are
  /// ignored.
  void on_client_segment(std::uint32_t seq, std::uint32_t seq_end, core::Timestamp ts);

  /// Record a server→client ACK; may emit a sample into `stats`.
  void on_server_ack(std::uint32_t ack, core::Timestamp ts, RttStats& stats);

  [[nodiscard]] std::size_t outstanding() const noexcept { return outstanding_.size(); }

  struct Segment {
    std::uint32_t seq_begin = 0;
    std::uint32_t seq_end = 0;
    core::Timestamp sent;
    bool retransmitted = false;
  };

  // Checkpoint/restore support: the estimator's whole state is its
  // outstanding-segment queue.
  [[nodiscard]] const std::vector<Segment>& segments() const noexcept { return outstanding_; }
  void restore_segment(const Segment& s) {
    if (outstanding_.size() < kMaxOutstanding) outstanding_.push_back(s);
  }

 private:
  /// Sequence-space comparison robust to 32-bit wraparound (RFC 1982 style).
  [[nodiscard]] static bool seq_geq(std::uint32_t a, std::uint32_t b) noexcept {
    return static_cast<std::int32_t>(a - b) >= 0;
  }

  // A vector, not a deque: a default-constructed vector owns no memory, so
  // the estimator embedded in every FlowState costs nothing until the flow
  // actually carries data (libstdc++'s deque allocates its map + one node
  // on construction — measured as the dominant allocator traffic of the
  // replay hot path). Pop-front is an O(kMaxOutstanding) memmove of
  // trivially-copyable 24-byte segments: cheaper than a heap round trip.
  std::vector<Segment> outstanding_;
};

}  // namespace edgewatch::flow
