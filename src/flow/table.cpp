#include "flow/table.hpp"

#include <algorithm>
#include <vector>

namespace edgewatch::flow {

FlowState* FlowTable::ingest(const net::DecodedPacket& pkt) {
  const auto proto = pkt.ip.transport();
  if (proto == core::TransportProto::kOther) return nullptr;
  ++counters_.packets;

  const core::FiveTuple as_sent = pkt.five_tuple();
  // One orientation-insensitive probe replaces the former find(as_sent) /
  // find(reversed()) pair; direction falls out of comparing the stored key.
  auto it = flows_.find(EitherOrientation{as_sent});
  bool from_client = it == flows_.end() || it->first == as_sent;

  if (it == flows_.end()) {
    // New flow: the sender of the first packet is the client. A bare
    // SYN-ACK opening a flow (probe started mid-handshake) flips roles.
    core::FiveTuple key = as_sent;
    if (pkt.tcp && pkt.tcp->has(net::TcpFlags::kSyn) && pkt.tcp->has(net::TcpFlags::kAck)) {
      key = as_sent.reversed();
      from_client = false;
    }
    FlowState state;
    state.record.client_ip = key.src_ip;
    state.record.server_ip = key.dst_ip;
    state.record.client_port = key.src_port;
    state.record.server_port = key.dst_port;
    state.record.proto = proto;
    state.record.first_packet = pkt.timestamp;
    state.record.last_packet = pkt.timestamp;
    state.record.ingest_seq = next_ingest_seq_;
    it = flows_.emplace(key, std::move(state)).first;
    ++counters_.flows_created;

    if (flows_.size() > config_.max_flows) {
      // Emergency: reap from the checkpoint FIFO regardless of timeouts.
      while (flows_.size() > config_.max_flows && !checkpoints_.empty()) {
        const auto victim = checkpoints_.front();
        checkpoints_.pop_front();
        auto vit = flows_.find(victim.key);
        if (vit != flows_.end() && vit->second.record.last_packet <= victim.seen) {
          export_flow(victim.key, FlowCloseReason::kIdleTimeout);
          ++counters_.forced_evictions;
        }
      }
    }
  }

  FlowState& state = it->second;
  const std::uint64_t payload = pkt.transport_payload_declared();
  auto& dir = from_client ? state.record.up : state.record.down;
  dir.add(payload, pkt.ip.total_length);
  if (pkt.timestamp > state.record.last_packet) state.record.last_packet = pkt.timestamp;

  if (pkt.tcp) handle_tcp(state, pkt, from_client);
  if (!state.dpi_done && from_client && !pkt.payload.empty()) run_dpi(state, pkt, from_client);
  if (!state.server_dpi_done && !from_client && !pkt.payload.empty()) {
    run_server_dpi(state, pkt);
  }

  checkpoints_.push_back({it->first, state.record.last_packet});
  ++next_ingest_seq_;  // auto mode; externally driven tables overwrite it
  return &state;
}

namespace {
/// Wrap-safe sequence comparison (a >= b in sequence space).
bool seq_geq(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) >= 0;
}
}  // namespace

void FlowTable::handle_tcp(FlowState& state, const net::DecodedPacket& pkt, bool from_client) {
  const net::TcpHeader& tcp = *pkt.tcp;

  // Anomaly accounting (ref [29]): compare each data-carrying segment with
  // the next expected sequence number of its direction.
  std::uint32_t seg_len = static_cast<std::uint32_t>(pkt.transport_payload_declared());
  if (tcp.has(net::TcpFlags::kSyn) || tcp.has(net::TcpFlags::kFin)) ++seg_len;
  if (seg_len > 0) {
    auto& next = from_client ? state.next_seq_client : state.next_seq_server;
    auto& valid = from_client ? state.seq_valid_client : state.seq_valid_server;
    auto& dir = from_client ? state.record.up : state.record.down;
    const std::uint32_t seg_end = tcp.seq + seg_len;
    if (!valid) {
      valid = true;
      next = seg_end;
    } else if (seq_geq(next, seg_end)) {
      ++dir.retransmits;  // entirely within already-seen sequence space
    } else if (seq_geq(next, tcp.seq)) {
      next = seg_end;  // in-order (possibly partially overlapping) segment
    } else {
      ++dir.out_of_order;  // a hole precedes this segment
      next = seg_end;
    }
  }

  if (tcp.has(net::TcpFlags::kSyn)) {
    if (from_client && !tcp.has(net::TcpFlags::kAck)) state.syn_seen = true;
    if (!from_client && tcp.has(net::TcpFlags::kAck)) {
      state.synack_seen = true;
      if (state.syn_seen) state.record.handshake_completed = true;
    }
  }

  // RTT: client-side segments arm the estimator; server ACKs sample it.
  if (from_client) {
    std::uint32_t seq_end = tcp.seq + static_cast<std::uint32_t>(pkt.transport_payload_declared());
    if (tcp.has(net::TcpFlags::kSyn) || tcp.has(net::TcpFlags::kFin)) ++seq_end;
    state.rtt.on_client_segment(tcp.seq, seq_end, pkt.timestamp);
  } else if (tcp.has(net::TcpFlags::kAck)) {
    state.rtt.on_server_ack(tcp.ack, pkt.timestamp, state.record.rtt);
  }

  if (tcp.has(net::TcpFlags::kRst)) {
    if (!state.closed) {
      state.closed = true;
      state.closed_at = pkt.timestamp;
      state.record.close_reason = FlowCloseReason::kTcpReset;
      ++counters_.closed_reset;
    }
    return;
  }
  if (tcp.has(net::TcpFlags::kFin)) {
    (from_client ? state.fin_client : state.fin_server) = true;
    if (state.fin_client && state.fin_server && !state.closed) {
      state.closed = true;
      state.closed_at = pkt.timestamp;
      state.record.close_reason = FlowCloseReason::kTcpTeardown;
      ++counters_.closed_teardown;
    }
  }
}

void FlowTable::run_dpi(FlowState& state, const net::DecodedPacket& pkt, bool /*from_client*/) {
  // Classify on the bare payload when nothing is buffered; otherwise on
  // the reassembled client stream so split first-flights still parse.
  std::span<const std::byte> view = pkt.payload;
  if (!state.dpi_buffer.empty()) {
    state.dpi_buffer.insert(state.dpi_buffer.end(), pkt.payload.begin(), pkt.payload.end());
    view = state.dpi_buffer;
  }
  const auto classify = [&] {
    return dpi::classify_payload(state.record.proto, state.record.server_port, view,
                                 config_.classifier);
  };
  dpi::Classification result;
  bool classified = false;
  if constexpr (obs::kEnabled) {
    if ((++dpi_obs_ticks_ & 63) == 0) {
      auto& reg = obs::Registry::global();
      const std::uint64_t t0 = reg.now_ns();
      result = classify();
      dpi_classify_ns_->record(static_cast<std::int64_t>(reg.now_ns() - t0));
      classified = true;
    }
  }
  if (!classified) result = classify();
  if (!result.conclusive && view.size() < config_.dpi_buffer_limit) {
    if (state.dpi_buffer.empty()) {
      state.dpi_buffer.assign(pkt.payload.begin(), pkt.payload.end());
    }
    return;  // wait for the continuation segment
  }
  state.dpi_done = true;
  state.dpi_buffer.clear();
  state.dpi_buffer.shrink_to_fit();
  state.record.l7 = result.l7;
  state.record.web = result.web;
  if (!result.server_name.empty()) {
    state.record.server_name = std::move(result.server_name);
    switch (result.l7) {
      case dpi::L7Protocol::kHttp:
        state.record.name_source = NameSource::kHttpHost;
        break;
      case dpi::L7Protocol::kFbZero:
        state.record.name_source = NameSource::kFbZero;
        break;
      default:
        state.record.name_source = NameSource::kTlsSni;
        break;
    }
  }
}

void FlowTable::run_server_dpi(FlowState& state, const net::DecodedPacket& pkt) {
  // If client-side DPI has not concluded yet (mid-capture flows, split
  // hellos) keep the server side pending too.
  if (!state.dpi_done) return;
  state.server_dpi_done = true;

  // HTTP: record the transaction's status line and media type.
  if (state.record.l7 == dpi::L7Protocol::kHttp) {
    if (const auto resp = dpi::parse_http_response(pkt.payload)) {
      state.record.http_status = static_cast<std::uint16_t>(resp->status);
      state.record.content_type = resp->content_type;
    }
    return;
  }

  // TLS: the ServerHello's *selected* ALPN beats whatever the client
  // merely offered.
  if (state.record.l7 != dpi::L7Protocol::kTls) return;
  const auto hello = dpi::parse_server_hello(pkt.payload);
  if (!hello || hello->alpn.empty()) return;
  if (hello->alpn.starts_with("h2")) {
    state.record.web = dpi::WebProtocol::kHttp2;
  } else if (hello->alpn.starts_with("spdy/")) {
    state.record.web = config_.classifier.report_spdy ? dpi::WebProtocol::kSpdy
                                                      : dpi::WebProtocol::kTls;
  } else if (hello->alpn == "http/1.1") {
    state.record.web = dpi::WebProtocol::kTls;
  }
}

void FlowTable::advance(core::Timestamp now) {
  // Cheapest possible timeout any flow could be subject to: if even that
  // has not elapsed since the oldest checkpoint, nothing can expire and the
  // per-packet call returns without touching the flow map at all.
  const std::int64_t min_timeout =
      std::min({config_.closed_linger_us, config_.tcp_idle_timeout_us,
                config_.udp_idle_timeout_us});
  while (!checkpoints_.empty()) {
    const Checkpoint& cp = checkpoints_.front();
    if (now - cp.seen < min_timeout) break;
    auto it = flows_.find(cp.key);
    if (it == flows_.end()) {
      checkpoints_.pop_front();
      continue;
    }
    const FlowState& state = it->second;
    const std::int64_t timeout =
        state.closed ? config_.closed_linger_us : idle_timeout(cp.key.proto);
    // The oldest checkpoint has not yet timed out: nothing else can have.
    if (now - cp.seen < timeout) break;
    const core::Timestamp anchor = state.closed ? state.closed_at : state.record.last_packet;
    if (now - anchor >= timeout) {
      const FlowCloseReason reason =
          state.closed ? state.record.close_reason : FlowCloseReason::kIdleTimeout;
      if (!state.closed) ++counters_.expired_idle;
      export_flow(cp.key, reason);
    }
    // Either exported, or the flow was active more recently than this
    // checkpoint — a fresher checkpoint exists further back in the queue.
    checkpoints_.pop_front();
  }
}

void FlowTable::export_flow(const core::FiveTuple& key, FlowCloseReason reason) {
  auto it = flows_.find(key);
  if (it == flows_.end()) return;
  // DPI hostnames (Host:/SNI) take precedence; the DN-Hunter hint captured
  // at flow start fills in only when the payload exposed nothing.
  if (it->second.record.server_name.empty() && !it->second.dns_hint.empty()) {
    it->second.record.server_name.assign(it->second.dns_hint);
    it->second.record.name_source = NameSource::kDnsHunter;
  }
  FlowRecord record = std::move(it->second.record);
  if (record.close_reason == FlowCloseReason::kActive) record.close_reason = reason;
  flows_.erase(it);
  ++counters_.flows_exported;
  if (sink_) sink_(std::move(record));
}

void FlowTable::flush(FlowCloseReason reason) {
  // Export in flow-arrival order (ingest_seq is unique per flow), so the
  // flush output is a pure function of the packets seen and never of the
  // hash table's internal layout. Keys are collected first because
  // export_flow mutates the map.
  std::vector<std::pair<std::uint64_t, core::FiveTuple>> keys;
  keys.reserve(flows_.size());
  for (const auto& [key, state] : flows_) keys.emplace_back(state.record.ingest_seq, key);
  std::sort(keys.begin(), keys.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [_, key] : keys) {
    auto it = flows_.find(key);
    if (it == flows_.end()) continue;
    const FlowCloseReason r =
        it->second.record.close_reason != FlowCloseReason::kActive
            ? it->second.record.close_reason
            : reason;
    export_flow(key, r);
  }
  checkpoints_.clear();
}

void FlowTable::restore_flow(const core::FiveTuple& key, FlowState state) {
  const core::Timestamp seen = state.record.last_packet;
  flows_[key] = std::move(state);
  checkpoints_.push_back({key, seen});
}

void FlowTable::finalize_restore() {
  std::sort(checkpoints_.begin(), checkpoints_.end(),
            [this](const Checkpoint& a, const Checkpoint& b) {
              if (a.seen != b.seen) return a.seen < b.seen;
              const auto ia = flows_.find(a.key);
              const auto ib = flows_.find(b.key);
              const std::uint64_t sa =
                  ia != flows_.end() ? ia->second.record.ingest_seq : 0;
              const std::uint64_t sb =
                  ib != flows_.end() ? ib->second.record.ingest_seq : 0;
              return sa < sb;
            });
}

void FlowTable::reset() {
  flows_.clear();
  checkpoints_.clear();
  counters_ = Counters{};
}

}  // namespace edgewatch::flow
