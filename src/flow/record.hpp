// FlowRecord: the per-flow log entry the probe exports (paper §2.1) —
// the equivalent of one row of Tstat's log_tcp_complete / log_udp_complete.
//
// Directions are expressed client→server where the client is the flow
// initiator (first packet / SYN sender). For the ISP edge deployment the
// client is virtually always the subscriber, so `upload` = client→server
// bytes and `download` = server→client bytes.
#pragma once

#include <cstdint>
#include <string>

#include "core/time.hpp"
#include "core/types.hpp"
#include "dpi/classifier.hpp"

namespace edgewatch::flow {

/// Where the record's server hostname came from (paper §2.1: Host header,
/// TLS SNI, or a preceding DNS resolution via DN-Hunter).
enum class NameSource : std::uint8_t {
  kNone = 0,
  kHttpHost,
  kTlsSni,
  kFbZero,
  kDnsHunter,
};

[[nodiscard]] std::string_view to_string(NameSource s) noexcept;

/// Access technology of the subscriber line (paper §2.1).
enum class AccessTech : std::uint8_t {
  kAdsl = 0,
  kFtth = 1,
};

[[nodiscard]] std::string_view to_string(AccessTech t) noexcept;

/// How the flow ended (footnote 1: particular packets or timeouts).
enum class FlowCloseReason : std::uint8_t {
  kActive = 0,     ///< Still open (only seen on records exported at flush).
  kTcpTeardown,    ///< Both FINs (or FIN+ACK) observed.
  kTcpReset,       ///< RST observed.
  kIdleTimeout,
  kProbeFlush,     ///< Probe shutdown/outage flushed the table.
};

[[nodiscard]] std::string_view to_string(FlowCloseReason r) noexcept;

/// Byte/packet counters for one direction, plus the TCP anomaly counters
/// of Mellia et al. (ref [29]): retransmitted and out-of-sequence segments
/// as seen by the passive probe.
struct DirectionStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;          ///< L4 payload bytes (what usage analytics need).
  std::uint64_t bytes_with_hdr = 0; ///< IP total_length sum (link-load view).
  std::uint32_t retransmits = 0;    ///< Segments (re)covering already-seen sequence space.
  std::uint32_t out_of_order = 0;   ///< Segments beyond the next expected sequence.

  void add(std::uint64_t payload, std::uint64_t ip_total) noexcept {
    ++packets;
    bytes += payload;
    bytes_with_hdr += ip_total;
  }
};

/// Probe→server round-trip statistics in microseconds (paper §2.1: min,
/// average, max and the number of samples per flow).
struct RttStats {
  std::uint32_t samples = 0;
  std::int64_t min_us = 0;
  std::int64_t max_us = 0;
  double avg_us = 0;

  void add(std::int64_t sample_us) noexcept {
    if (samples == 0) {
      min_us = max_us = sample_us;
      avg_us = static_cast<double>(sample_us);
    } else {
      min_us = sample_us < min_us ? sample_us : min_us;
      max_us = sample_us > max_us ? sample_us : max_us;
      avg_us += (static_cast<double>(sample_us) - avg_us) / static_cast<double>(samples + 1);
    }
    ++samples;
  }
  [[nodiscard]] double min_ms() const noexcept { return static_cast<double>(min_us) / 1000.0; }
};

struct FlowRecord {
  // Identity. client_ip is the *anonymized* subscriber address; server_ip
  // is real (needed for the CDN/ASN analytics of §6).
  core::IPv4Address client_ip;
  core::IPv4Address server_ip;
  std::uint16_t client_port = 0;
  std::uint16_t server_port = 0;
  core::TransportProto proto = core::TransportProto::kOther;
  AccessTech access = AccessTech::kAdsl;

  // Timing.
  core::Timestamp first_packet;
  core::Timestamp last_packet;

  // Volumes.
  DirectionStats up;    ///< client → server
  DirectionStats down;  ///< server → client

  // TCP specifics.
  bool handshake_completed = false;
  FlowCloseReason close_reason = FlowCloseReason::kActive;
  RttStats rtt;

  // DPI results.
  dpi::L7Protocol l7 = dpi::L7Protocol::kUnknown;
  dpi::WebProtocol web = dpi::WebProtocol::kNotWeb;
  std::string server_name;
  NameSource name_source = NameSource::kNone;
  /// HTTP transaction info for plain-HTTP flows (0 / empty otherwise).
  std::uint16_t http_status = 0;
  std::string content_type;

  /// Transient: arrival index of the packet that created this flow, as set
  /// by the flow table (or by ShardedProbe with a probe-global sequence).
  /// Unique per record and independent of shard count, it is the sort key
  /// of the sharded probe's deterministic merge. NOT serialized — the
  /// storage codec, CSV export and checkpoints ignore it.
  std::uint64_t ingest_seq = 0;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return up.bytes + down.bytes; }
  [[nodiscard]] std::int64_t duration_us() const noexcept {
    return last_packet - first_packet;
  }
  /// The paper plots web-protocol shares over TCP+UDP web traffic only.
  [[nodiscard]] bool is_web() const noexcept { return web != dpi::WebProtocol::kNotWeb; }

  /// Render as one CSV row; see storage/csv.hpp for the column list.
  [[nodiscard]] std::string to_csv_row() const;
};

}  // namespace edgewatch::flow
