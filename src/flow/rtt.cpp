#include "flow/rtt.hpp"

namespace edgewatch::flow {

void RttEstimator::on_client_segment(std::uint32_t seq, std::uint32_t seq_end,
                                     core::Timestamp ts) {
  if (seq == seq_end) return;  // nothing to be acknowledged

  // Karn's rule: if this segment overlaps one already outstanding, it is a
  // retransmission — poison the overlapped entries instead of re-arming.
  bool overlap = false;
  for (auto& seg : outstanding_) {
    const bool disjoint = seq_geq(seg.seq_begin, seq_end) || seq_geq(seq, seg.seq_end);
    if (!disjoint) {
      seg.retransmitted = true;
      overlap = true;
    }
  }
  if (overlap) return;

  if (outstanding_.size() >= kMaxOutstanding) outstanding_.erase(outstanding_.begin());
  if (outstanding_.capacity() == 0) outstanding_.reserve(kMaxOutstanding);
  outstanding_.push_back({seq, seq_end, ts, false});
}

void RttEstimator::on_server_ack(std::uint32_t ack, core::Timestamp ts, RttStats& stats) {
  while (!outstanding_.empty()) {
    const Segment& seg = outstanding_.front();
    if (!seq_geq(ack, seg.seq_end)) break;  // not yet covered
    if (!seg.retransmitted) {
      const std::int64_t sample = ts - seg.sent;
      if (sample >= 0) stats.add(sample);
    }
    outstanding_.erase(outstanding_.begin());
  }
}

}  // namespace edgewatch::flow
