// Whole-pipeline checkpoint (EWPC): everything a crash-recovery resume
// needs to continue a supervised run mid-stream and still produce
// byte-identical day output (DESIGN §11).
//
// The consistency protocol is ordering, not locking. At a checkpoint
// barrier the supervisor (1) snapshots every shard at one stream position,
// (2) appends all drained records to the lake and syncs the quarantine
// log, and only then (3) writes this file atomically (temp + fsync +
// rename). The checkpoint therefore records the lake and quarantine files
// *at sizes that are already durable*; a resume truncates both back to
// those sizes, discarding any bytes a half-finished post-checkpoint append
// left behind (the torn-tail repair), restores the shards, and replays the
// source from `replay_from`.
//
// File layout mirrors the probe checkpoint:
//   "EWPC" | u8 version | u32le crc32c(payload) | u64le payload_len | payload
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "analytics/day_aggregate.hpp"
#include "core/result.hpp"
#include "core/time.hpp"
#include "flow/record.hpp"
#include "runtime/overload.hpp"
#include "storage/io.hpp"

namespace edgewatch::runtime {

struct PipelineCheckpoint {
  /// Offered frames consumed (the replay cursor: a resumed feeder skips
  /// this many frames of its source). Shed frames consume an offered index
  /// but no probe sequence number, so this is NOT probe_next_seq.
  std::uint64_t replay_from = 0;
  /// First unassigned probe ingest sequence number.
  std::uint64_t probe_next_seq = 0;

  // Supervisor counters at the barrier (health continuity across resume).
  std::uint64_t frames_offered = 0;
  std::uint64_t frames_ingested = 0;
  std::uint64_t shed_sampled = 0;
  std::uint64_t shed_backpressure = 0;
  std::uint64_t frames_quarantined = 0;
  std::uint64_t append_retries = 0;
  std::uint64_t append_failures = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t stalls_detected = 0;

  OverloadController::Saved controller;

  std::uint64_t quarantine_bytes = 0;
  std::uint64_t quarantine_entries = 0;

  /// One EWCP image per shard, captured at the barrier.
  std::vector<std::vector<std::byte>> shard_state;

  /// Durable per-day state at the barrier. A resume truncates each listed
  /// day's lake file to `lake_bytes` and removes day files the checkpoint
  /// does not list (they were created after it).
  struct DayState {
    core::CivilDate day{};
    std::uint64_t lake_bytes = 0;
    analytics::CaptureQuality quality;
  };
  std::vector<DayState> days;

  /// Records drained at an earlier barrier whose lake append kept failing
  /// (disk full): carried forward so no acknowledged record is lost.
  std::vector<flow::FlowRecord> pending;
};

/// Write atomically: temp file + fsync + rename. `factory` supplies the
/// write handle (fault injection); default POSIX.
core::Result<void> save_pipeline_checkpoint(const PipelineCheckpoint& cp,
                                            const std::filesystem::path& path,
                                            const storage::FileFactory& factory = {});

/// Read + validate (magic, version, CRC, exact length). kNotFound when the
/// file does not exist — the caller then starts fresh.
[[nodiscard]] core::Result<PipelineCheckpoint> load_pipeline_checkpoint(
    const std::filesystem::path& path);

}  // namespace edgewatch::runtime
