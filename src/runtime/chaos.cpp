#include "runtime/chaos.hpp"

#include <stdexcept>
#include <thread>

#include "core/rng.hpp"
#include "probe/sharded_probe.hpp"

namespace edgewatch::runtime {

namespace {

bool hits(std::uint64_t seed, std::uint64_t seq, std::uint64_t every,
          std::uint64_t salt) noexcept {
  if (every == 0) return false;
  return core::mix64(seed, seq, salt) % every == 0;
}

}  // namespace

ChaosSchedule::ChaosSchedule(ChaosConfig config) : shared_(std::make_shared<Shared>()) {
  shared_->config = config;
}

bool ChaosSchedule::poisons(std::uint64_t seq) const noexcept {
  return hits(shared_->config.seed, seq, shared_->config.poison_every, 1);
}

bool ChaosSchedule::suspect(std::uint64_t seq) const noexcept {
  return poisons(seq) && hits(shared_->config.seed, seq, shared_->config.suspect_every, 2);
}

void ChaosSchedule::arm_stall(std::uint64_t seq) {
  shared_->stall_released.store(false, std::memory_order_release);
  shared_->stall_seq.store(seq, std::memory_order_release);
}

void ChaosSchedule::release_stall() {
  shared_->stall_released.store(true, std::memory_order_release);
}

std::function<void(std::uint64_t, const net::Frame&)> ChaosSchedule::inspector() const {
  auto shared = shared_;
  return [shared](std::uint64_t seq, const net::Frame&) {
    const auto& cfg = shared->config;
    if (cfg.busy_spin > 0) {
      // Deterministic busy-work: enough to slow a worker, no side effects.
      std::uint64_t acc = 0;
      for (std::uint32_t i = 0; i < cfg.busy_spin; ++i) acc += core::mix64(seq, i);
      volatile std::uint64_t sink = acc;
      (void)sink;
    }
    if (shared->stall_seq.load(std::memory_order_acquire) == seq) {
      while (!shared->stall_released.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      shared->stall_seq.store(Shared::kNoStall, std::memory_order_release);
    }
    if (hits(cfg.seed, seq, cfg.poison_every, 1)) {
      if (cfg.suspect_every != 0 && hits(cfg.seed, seq, cfg.suspect_every, 2)) {
        throw probe::StateSuspectError{"chaos: state-suspect poison frame"};
      }
      throw std::runtime_error{"chaos: poison frame"};
    }
  };
}

}  // namespace edgewatch::runtime
