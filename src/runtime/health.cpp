#include "runtime/health.hpp"

#include <sstream>

namespace edgewatch::runtime {

std::string HealthSnapshot::format() const {
  std::ostringstream out;
  out << "state=" << to_string(state) << " keep=1/" << (std::uint64_t{1} << sample_shift)
      << "\n";
  out << "offered=" << frames_offered << " ingested=" << frames_ingested
      << " shed=" << shed_total() << " (sampled=" << shed_sampled
      << " backpressure=" << shed_backpressure << ") quarantined=" << frames_quarantined
      << (reconciles() ? " [reconciled]" : " [in-flight]") << "\n";
  out << "appends: retries=" << append_retries << " failures=" << append_failures;
  if (last_append_error != core::Errc::kOk) {
    out << " last_error=" << core::to_string(last_append_error);
  }
  out << "\n";
  out << "checkpoints=" << checkpoints_written << " last_at_offered="
      << last_checkpoint_offered << " stalls=" << stalls_detected << "\n";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const auto& s = shards[i];
    out << "shard[" << i << "] hb=" << s.heartbeat << " depth=" << s.queue_depth << "/"
        << s.queue_capacity << " quarantined=" << s.quarantined;
    if (s.stalled) out << " STALLED";
    else if (s.stall_strikes > 0) out << " strikes=" << s.stall_strikes;
    out << "\n";
  }
  return std::move(out).str();
}

}  // namespace edgewatch::runtime
