// Poison-frame quarantine file. A frame whose processing throws is not
// dropped on the floor: the worker captures the exact bytes (plus its
// ingest sequence number and timestamp) into an append-only quarantine
// file so an operator can replay it against a debugger, and the shed
// accounting stays exact — offered = ingested + shed + quarantined.
//
// Layout: magic "EWQF" | u8 version, then per entry
//   u64le seq | u64le timestamp_micros | u32le crc32c(data) | u32le len | data
//
// The file is part of the pipeline checkpoint's consistency domain: the
// checkpoint records its byte size, and a crash-recovery resume truncates
// it back to that size before replaying (replayed frames re-quarantine
// deterministically, so the file converges to the uninterrupted run's
// content).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <vector>

#include "core/result.hpp"
#include "core/time.hpp"
#include "net/packet.hpp"
#include "storage/io.hpp"

namespace edgewatch::runtime {

class QuarantineLog {
 public:
  /// `factory` supplies the write handle (fault injection); default is the
  /// real POSIX file.
  explicit QuarantineLog(std::filesystem::path path, storage::FileFactory factory = {});
  ~QuarantineLog();

  QuarantineLog(const QuarantineLog&) = delete;
  QuarantineLog& operator=(const QuarantineLog&) = delete;

  /// Open for appending. `resume_bytes` == 0 starts a fresh file (header
  /// only); otherwise the file is cut back to exactly `resume_bytes` — the
  /// size recorded in the pipeline checkpoint — and appends continue from
  /// there. `resume_entries` restores the entry count for accounting.
  core::Result<void> open(std::uint64_t resume_bytes = 0, std::uint64_t resume_entries = 0);

  /// Append one poisoned frame (any thread; internally serialized).
  core::Result<void> append(std::uint64_t seq, const net::Frame& frame);

  /// Flush to stable storage (called before the checkpoint that records
  /// this file's size — the checkpoint must never point past durable data).
  core::Result<void> sync();

  void close();

  /// Logical file size (header + entries appended so far).
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t entries() const noexcept { return entries_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }

  struct Entry {
    std::uint64_t seq = 0;
    core::Timestamp timestamp;
    std::vector<std::byte> data;
  };
  /// Decode a quarantine file (operator tooling and tests). Stops cleanly
  /// at the first damaged or torn entry.
  [[nodiscard]] static core::Result<std::vector<Entry>> read_all(
      const std::filesystem::path& path);

  static constexpr std::size_t kHeaderSize = 5;

 private:
  std::filesystem::path path_;
  storage::FileFactory factory_;
  std::unique_ptr<storage::WritableFile> file_;
  std::mutex mutex_;
  std::uint64_t bytes_ = 0;
  std::uint64_t entries_ = 0;
};

}  // namespace edgewatch::runtime
