#include "runtime/quarantine.hpp"

#include <cstring>
#include <fstream>

#include "core/bytes.hpp"
#include "core/hash.hpp"

namespace edgewatch::runtime {

namespace {
constexpr char kMagic[4] = {'E', 'W', 'Q', 'F'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kEntryHeader = 8 + 8 + 4 + 4;
}  // namespace

QuarantineLog::QuarantineLog(std::filesystem::path path, storage::FileFactory factory)
    : path_(std::move(path)), factory_(std::move(factory)) {}

QuarantineLog::~QuarantineLog() { close(); }

core::Result<void> QuarantineLog::open(std::uint64_t resume_bytes,
                                       std::uint64_t resume_entries) {
  std::scoped_lock lock(mutex_);
  file_ = factory_ ? factory_() : storage::make_posix_file();
  if (resume_bytes == 0) {
    if (auto r = file_->open_at(path_, 0); !r) return r;
    core::ByteWriter header;
    for (char c : kMagic) header.u8(static_cast<std::uint8_t>(c));
    header.u8(kVersion);
    if (auto r = file_->write(header.view()); !r) return r;
    bytes_ = kHeaderSize;
    entries_ = 0;
  } else {
    // open_at truncates to the checkpoint-recorded size and appends there.
    if (auto r = file_->open_at(path_, resume_bytes); !r) return r;
    bytes_ = resume_bytes;
    entries_ = resume_entries;
  }
  return {};
}

core::Result<void> QuarantineLog::append(std::uint64_t seq, const net::Frame& frame) {
  std::scoped_lock lock(mutex_);
  if (!file_) return core::Errc::kIoError;
  core::ByteWriter entry{kEntryHeader + frame.data.size()};
  entry.u64le(seq);
  entry.u64le(static_cast<std::uint64_t>(frame.timestamp.micros()));
  entry.u32le(core::crc32c(frame.data));
  entry.u32le(static_cast<std::uint32_t>(frame.data.size()));
  entry.bytes(frame.data);
  if (auto r = file_->write(entry.view()); !r) return r;
  bytes_ += entry.size();
  ++entries_;
  return {};
}

core::Result<void> QuarantineLog::sync() {
  std::scoped_lock lock(mutex_);
  if (!file_) return {};
  return file_->sync();
}

void QuarantineLog::close() {
  std::scoped_lock lock(mutex_);
  if (file_) {
    (void)file_->sync();
    (void)file_->close();
    file_.reset();
  }
}

core::Result<std::vector<QuarantineLog::Entry>> QuarantineLog::read_all(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return core::Errc::kNotFound;
  const auto size = static_cast<std::size_t>(in.tellg());
  std::vector<std::byte> data(size);
  in.seekg(0);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(size))) {
    return core::Errc::kIoError;
  }
  if (size < kHeaderSize) return core::Errc::kTruncated;
  if (std::memcmp(data.data(), kMagic, 4) != 0) return core::Errc::kBadMagic;
  if (std::to_integer<std::uint8_t>(data[4]) != kVersion) return core::Errc::kBadVersion;

  std::vector<Entry> entries;
  core::ByteReader r{std::span<const std::byte>{data}.subspan(kHeaderSize)};
  while (r.remaining() >= kEntryHeader) {
    Entry e;
    e.seq = r.u64le();
    e.timestamp = core::Timestamp{static_cast<std::int64_t>(r.u64le())};
    const std::uint32_t crc = r.u32le();
    const std::uint32_t len = r.u32le();
    const auto body = r.bytes(len);
    if (!r.ok()) break;  // torn tail: deliver the valid prefix
    if (core::crc32c(body) != crc) break;
    e.data.assign(body.begin(), body.end());
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace edgewatch::runtime
