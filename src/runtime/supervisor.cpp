#include "runtime/supervisor.hpp"

#include <algorithm>
#include <set>
#include <thread>
#include <utility>

#include "runtime/pipeline_checkpoint.hpp"

namespace edgewatch::runtime {

Sleeper real_sleeper() {
  return [](std::chrono::microseconds us) { std::this_thread::sleep_for(us); };
}

Supervisor::Supervisor(storage::DataLake& lake, SupervisorConfig config)
    : lake_(lake), config_(std::move(config)), controller_(config_.overload) {
  auto& reg = obs::Registry::global();
  obs_.offered = &reg.counter("runtime_frames_offered_total");
  obs_.ingested = &reg.counter("runtime_frames_ingested_total");
  obs_.shed_sampled = &reg.counter("runtime_shed_sampled_total");
  obs_.shed_backpressure = &reg.counter("runtime_shed_backpressure_total");
  obs_.quarantined = &reg.counter("runtime_frames_quarantined_total");
  obs_.stalls = &reg.counter("runtime_stalls_detected_total");
  obs_.checkpoints = &reg.counter("runtime_checkpoints_total");
  obs_.append_retries = &reg.counter("runtime_append_retries_total");
  obs_.append_failures = &reg.counter("runtime_append_failures_total");
  obs_.overload_transitions = &reg.counter("runtime_overload_transitions_total");
  obs_.overload_state = &reg.gauge("runtime_overload_state");
  obs_.sample_shift = &reg.gauge("runtime_sample_shift");
  obs_.capture_days = &reg.gauge("capture_quality_days");
  obs_.capture_days_incomplete = &reg.gauge("capture_quality_days_incomplete");
  obs_.capture_frames_shed = &reg.gauge("capture_quality_frames_shed");
  obs_.checkpoint_span = &reg.span_site("runtime_checkpoint");
  obs_.flush_span = &reg.span_site("runtime_flush");
}

void Supervisor::obs_sync() noexcept {
  if constexpr (obs::kEnabled) {
    // resume() may rewind feeder counters to the checkpointed values;
    // saturate so the registry stays monotonic.
    const auto push = [](obs::Counter* counter, std::uint64_t now, std::uint64_t& flushed) {
      if (now > flushed) counter->add(now - flushed);
      flushed = now;
    };
    push(obs_.offered, offered_, obs_.flushed.offered);
    push(obs_.ingested, ingested_, obs_.flushed.ingested);
    push(obs_.shed_sampled, shed_sampled_, obs_.flushed.shed_sampled);
    push(obs_.shed_backpressure, shed_backpressure_, obs_.flushed.shed_backpressure);
    push(obs_.stalls, stalls_detected_, obs_.flushed.stalls);
    push(obs_.checkpoints, checkpoints_written_, obs_.flushed.checkpoints);
    push(obs_.append_retries, append_retries_, obs_.flushed.append_retries);
    push(obs_.append_failures, append_failures_, obs_.flushed.append_failures);
    push(obs_.overload_transitions, controller_.transitions().size(), obs_.flushed.transitions);
    obs_.overload_state->set(static_cast<std::int64_t>(controller_.state()));
    obs_.sample_shift->set(controller_.sample_shift());
    // Per-day CaptureQuality, collapsed to fleet gauges: how many civil days
    // this run touched, how many of them shed or quarantined frames, and the
    // total shed count (the paper's "no traffic sampling" §2.1 invariant —
    // nonzero means downstream figures carry a correction factor).
    std::int64_t days_incomplete = 0;
    std::uint64_t frames_shed = 0;
    for (const auto& [day, q] : day_quality_) {
      if (!q.complete()) ++days_incomplete;
      frames_shed += q.frames_shed;
    }
    obs_.capture_days->set(static_cast<std::int64_t>(day_quality_.size()));
    obs_.capture_days_incomplete->set(days_incomplete);
    obs_.capture_frames_shed->set(static_cast<std::int64_t>(frames_shed));
  }
}

Supervisor::~Supervisor() {
  if (started_ && !finished_ && !crashed_) (void)finish();
}

void Supervisor::install_hooks() {
  config_.probe.poison_sink = [this](std::uint64_t seq, const net::Frame& frame,
                                     bool /*state_restored*/) {
    obs_.quarantined->add(1);  // registry cells are atomics: worker-safe
    std::scoped_lock lock(poison_mutex_);
    ++quarantined_;
    ++quarantined_by_day_[frame.timestamp.date()];
    if (quarantine_) (void)quarantine_->append(seq, frame);
  };
}

core::Result<void> Supervisor::start() {
  if (started_) return core::Errc::kUnsupported;
  if (!config_.quarantine_path.empty()) {
    quarantine_ = std::make_unique<QuarantineLog>(config_.quarantine_path,
                                                  config_.file_factory);
    if (auto r = quarantine_->open(); !r) return r;
  }
  install_hooks();
  probe_ = std::make_unique<probe::ShardedProbe>(config_.probe);
  watchdog_.assign(probe_->shard_count(), {});
  for (const auto day : lake_.days()) durable_bytes_[day] = lake_.file_bytes(day);
  started_ = true;
  return {};
}

core::Result<std::uint64_t> Supervisor::resume() {
  if (started_) return core::Errc::kUnsupported;
  auto loaded = load_pipeline_checkpoint(config_.checkpoint_path);
  if (!loaded) {
    if (loaded.error() == core::Errc::kNotFound) {
      // Nothing to resume from: a fresh run, cursor at zero.
      if (auto r = start(); !r) return r.error();
      return std::uint64_t{0};
    }
    return loaded.error();
  }
  auto cp = std::move(*loaded);

  // Repair the lake tail: cut every day back to its checkpointed durable
  // length and drop days born after the checkpoint. Appends are strictly
  // file-end, so this erases exactly the post-checkpoint bytes — including
  // any torn block a crash mid-append left behind.
  std::set<core::CivilDate> recorded;
  for (const auto& d : cp.days) recorded.insert(d.day);
  for (const auto day : lake_.days()) {
    if (!recorded.contains(day)) {
      if (auto r = lake_.remove_day(day); !r) return r.error();
    }
  }
  for (const auto& d : cp.days) {
    if (d.lake_bytes == 0) {
      if (auto r = lake_.remove_day(d.day); !r) return r.error();
    } else if (lake_.has_day(d.day)) {
      if (auto r = lake_.truncate_day(d.day, d.lake_bytes); !r) return r.error();
      durable_bytes_[d.day] = d.lake_bytes;
    } else {
      // The checkpoint says this day was durable but the file is gone:
      // that is real data loss, not a recoverable tail.
      return core::Errc::kCorrupt;
    }
  }

  if (!config_.quarantine_path.empty()) {
    quarantine_ = std::make_unique<QuarantineLog>(config_.quarantine_path,
                                                  config_.file_factory);
    if (auto r = quarantine_->open(cp.quarantine_bytes, cp.quarantine_entries); !r) {
      return r.error();
    }
  }

  install_hooks();
  probe_ = std::make_unique<probe::ShardedProbe>(config_.probe);
  if (auto r = probe_->restore(cp.shard_state, cp.probe_next_seq); !r) return r.error();
  watchdog_.assign(probe_->shard_count(), {});

  offered_ = cp.replay_from;
  // The checkpoint stores ingested net of quarantined; internally the
  // feeder counts accepted frames and the read path subtracts.
  ingested_ = cp.frames_ingested + cp.frames_quarantined;
  shed_sampled_ = cp.shed_sampled;
  shed_backpressure_ = cp.shed_backpressure;
  append_retries_ = cp.append_retries;
  append_failures_ = cp.append_failures;
  checkpoints_written_ = cp.checkpoints_written;
  last_checkpoint_offered_ = cp.replay_from;
  stalls_detected_ = cp.stalls_detected;
  controller_.load(cp.controller);
  {
    std::scoped_lock lock(poison_mutex_);
    quarantined_ = cp.frames_quarantined;
    quarantined_by_day_.clear();
    for (const auto& d : cp.days) {
      if (d.quality.frames_quarantined > 0) {
        quarantined_by_day_[d.day] = d.quality.frames_quarantined;
      }
    }
  }
  day_quality_.clear();
  for (const auto& d : cp.days) {
    if (d.quality.frames_offered == 0 && d.quality.frames_quarantined == 0) continue;
    auto q = d.quality;
    q.frames_ingested += q.frames_quarantined;  // back to "accepted" form
    q.frames_quarantined = 0;
    day_quality_[d.day] = q;
  }
  pending_.clear();
  for (auto& record : cp.pending) {
    pending_[record.first_packet.date()].push_back(std::move(record));
  }

  started_ = true;
  return cp.replay_from;
}

void Supervisor::offer(net::Frame frame) {
  if (!started_ || finished_ || crashed_) return;
  const core::CivilDate day = frame.timestamp.date();
  const std::uint64_t idx = offered_++;
  auto& quality = day_quality_[day];
  ++quality.frames_offered;

  const auto cadence = config_.overload.observe_every;
  if (cadence == 0 || idx % cadence == 0) {
    controller_.observe(max_occupancy());
    poll_watchdog();
    obs_sync();
  }

  if (!controller_.should_keep(idx)) {
    ++shed_sampled_;
    ++quality.frames_shed;
  } else {
    bool accepted = false;
    for (std::uint32_t retry = 0; retry <= config_.overload.ingest_retries; ++retry) {
      if (probe_->try_ingest(frame)) {
        accepted = true;
        break;
      }
      // Give the worker a slice to drain before trying again.
      std::this_thread::yield();
    }
    if (accepted) {
      ++ingested_;
      ++quality.frames_ingested;
    } else {
      controller_.on_ring_full();
      ++shed_backpressure_;
      ++quality.frames_shed;
    }
  }

  if (config_.checkpoint_interval != 0 && !config_.checkpoint_path.empty() &&
      offered_ % config_.checkpoint_interval == 0) {
    (void)checkpoint();
  }
}

void Supervisor::poll_watchdog() {
  if (!probe_) return;
  for (std::size_t i = 0; i < watchdog_.size(); ++i) {
    auto& w = watchdog_[i];
    const std::uint64_t hb = probe_->heartbeat(i);
    if (hb != w.last_heartbeat || probe_->queue_depth(i) == 0) {
      w.last_heartbeat = hb;
      w.strikes = 0;
      w.stalled = false;
      continue;
    }
    ++w.strikes;
    if (w.strikes >= config_.stall_strikes && !w.stalled) {
      w.stalled = true;
      ++stalls_detected_;
      // A wedged shard cannot be killed safely in-process; what the
      // supervisor can do is record the stall and shed earlier, so the
      // feeder stops piling frames onto a ring nobody drains.
      controller_.on_ring_full();
    }
  }
}

double Supervisor::max_occupancy() const {
  if (!probe_) return 0.0;
  const auto capacity = probe_->queue_capacity();
  if (capacity == 0) return 0.0;
  std::size_t deepest = 0;
  for (std::size_t i = 0; i < probe_->shard_count(); ++i) {
    deepest = std::max(deepest, probe_->queue_depth(i));
  }
  return static_cast<double>(deepest) / static_cast<double>(capacity);
}

void Supervisor::flush_records(std::vector<flow::FlowRecord> records) {
  obs::Span span(*obs_.flush_span);
  for (auto& record : records) {
    pending_[record.first_packet.date()].push_back(std::move(record));
  }
  std::vector<core::CivilDate> days;
  days.reserve(pending_.size());
  for (const auto& [day, _] : pending_) days.push_back(day);
  for (const auto day : days) {
    auto& batch = pending_[day];
    if (batch.empty()) {
      pending_.erase(day);
      continue;
    }
    const auto result = with_backoff(
        config_.backoff, config_.sleeper,
        [&] { return lake_.append(day, batch); }, &append_retries_);
    if (result) {
      pending_.erase(day);
      durable_bytes_[day] = lake_.file_bytes(day);
    } else {
      // The batch stays parked in pending_ and in the next checkpoint, so
      // no drained record is ever lost. A survivable failure rolled the
      // file back already; a crashed write cannot (the rollback truncate
      // "died" too) — repair the torn tail here so a later retry appends
      // after sealed data, never after garbage.
      ++append_failures_;
      last_append_error_ = result.error();
      const auto durable = durable_bytes_.find(day);
      const std::uint64_t good = durable == durable_bytes_.end() ? 0 : durable->second;
      if (lake_.has_day(day) && lake_.file_bytes(day) != good) {
        if (good == 0) {
          (void)lake_.remove_day(day);
        } else {
          (void)lake_.truncate_day(day, good);
        }
      }
    }
  }
}

core::Result<void> Supervisor::checkpoint() {
  if (!started_ || finished_ || crashed_) return core::Errc::kUnsupported;
  if (config_.checkpoint_path.empty()) return core::Errc::kUnsupported;
  obs::Span span(*obs_.checkpoint_span);
  auto snap = probe_->snapshot();
  flush_records(std::move(snap.records));
  if (quarantine_) {
    if (auto r = quarantine_->sync(); !r) return r;
  }
  auto result = write_checkpoint(snap.next_seq, std::move(snap.shard_state));
  if (result) {
    ++checkpoints_written_;
    last_checkpoint_offered_ = offered_;
  }
  obs_sync();
  return result;
}

core::Result<void> Supervisor::write_checkpoint(
    std::uint64_t probe_next_seq, std::vector<std::vector<std::byte>> shard_state) {
  PipelineCheckpoint cp;
  cp.replay_from = offered_;
  cp.probe_next_seq = probe_next_seq;
  cp.shed_sampled = shed_sampled_;
  cp.shed_backpressure = shed_backpressure_;
  cp.append_retries = append_retries_;
  cp.append_failures = append_failures_;
  cp.checkpoints_written = checkpoints_written_ + 1;  // counting this one
  cp.stalls_detected = stalls_detected_;
  cp.controller = controller_.save();
  cp.shard_state = std::move(shard_state);
  if (quarantine_) {
    cp.quarantine_bytes = quarantine_->bytes();
    cp.quarantine_entries = quarantine_->entries();
  }

  // At a barrier every accepted frame has been fully processed, so the
  // worker-side quarantine counts are stable and the reconciliation is
  // exact: offered = ingested + shed + quarantined.
  const auto quality = day_quality();
  {
    std::scoped_lock lock(poison_mutex_);
    cp.frames_quarantined = quarantined_;
  }
  cp.frames_offered = offered_;
  cp.frames_ingested = ingested_ - cp.frames_quarantined;

  std::set<core::CivilDate> all_days;
  for (const auto& [day, _] : durable_bytes_) all_days.insert(day);
  for (const auto& [day, _] : quality) all_days.insert(day);
  for (const auto day : all_days) {
    PipelineCheckpoint::DayState d;
    d.day = day;
    // Record the known-durable length, not a stat of the file: after a
    // crashed append the file may carry a torn tail past the sealed data.
    if (auto it = durable_bytes_.find(day); it != durable_bytes_.end()) {
      d.lake_bytes = it->second;
    }
    if (auto it = quality.find(day); it != quality.end()) d.quality = it->second;
    cp.days.push_back(d);
  }

  for (const auto& [_, batch] : pending_) {
    cp.pending.insert(cp.pending.end(), batch.begin(), batch.end());
  }

  return save_pipeline_checkpoint(cp, config_.checkpoint_path, config_.file_factory);
}

core::Result<void> Supervisor::finish() {
  if (!started_ || crashed_) return core::Errc::kUnsupported;
  if (!finished_) {
    flush_records(probe_->finish());
    if (quarantine_) quarantine_->close();
    // Every ring drained: no shard can still be live-stalled (the
    // cumulative stalls_detected counter is unaffected).
    for (auto& w : watchdog_) {
      w.stalled = false;
      w.strikes = 0;
    }
    finished_ = true;
  } else if (!pending_.empty()) {
    // Re-invoked after a failed flush: the operator freed space — retry
    // the parked batches.
    flush_records({});
  }
  obs_sync();
  if (!pending_.empty()) return last_append_error_;
  return {};
}

void Supervisor::simulate_crash() {
  if (probe_) probe_->abandon();
  // The process "dies": whatever reached the kernel survives (a process
  // kill is not a power cut), but nothing else gets written.
  if (quarantine_) quarantine_->close();
  crashed_ = true;
}

HealthSnapshot Supervisor::health() const {
  HealthSnapshot h;
  h.state = controller_.state();
  h.sample_shift = controller_.sample_shift();
  h.frames_offered = offered_;
  h.shed_sampled = shed_sampled_;
  h.shed_backpressure = shed_backpressure_;
  {
    std::scoped_lock lock(poison_mutex_);
    h.frames_quarantined = quarantined_;
  }
  h.frames_ingested = ingested_ - h.frames_quarantined;
  h.append_retries = append_retries_;
  h.append_failures = append_failures_;
  h.last_append_error = last_append_error_;
  h.checkpoints_written = checkpoints_written_;
  h.last_checkpoint_offered = last_checkpoint_offered_;
  h.stalls_detected = stalls_detected_;
  if (probe_) {
    h.shards.resize(probe_->shard_count());
    for (std::size_t i = 0; i < h.shards.size(); ++i) {
      auto& s = h.shards[i];
      s.heartbeat = probe_->heartbeat(i);
      s.queue_depth = probe_->queue_depth(i);
      s.queue_capacity = probe_->queue_capacity();
      s.quarantined = probe_->quarantined(i);
      if (i < watchdog_.size()) {
        s.stall_strikes = watchdog_[i].strikes;
        s.stalled = watchdog_[i].stalled;
      }
    }
    if (!h.shards.empty()) h.shards[0].state_restores = probe_->state_restores();
  }
  return h;
}

std::map<core::CivilDate, analytics::CaptureQuality> Supervisor::day_quality() const {
  auto out = day_quality_;
  std::scoped_lock lock(poison_mutex_);
  for (const auto& [day, count] : quarantined_by_day_) {
    auto& q = out[day];
    q.frames_quarantined = count;
    q.frames_ingested -= std::min(q.frames_ingested, count);
  }
  return out;
}

void Supervisor::annotate(analytics::DayAggregate& aggregate) const {
  const auto quality = day_quality();
  if (auto it = quality.find(aggregate.date); it != quality.end()) {
    aggregate.capture = it->second;
  }
}

}  // namespace edgewatch::runtime
