// Overload-aware graceful degradation (DESIGN §11). High-speed capture
// systems must shed load in a controlled, *recorded* way rather than fall
// over silently (Clegg et al.; FlowDNS bounds its queues and drops
// deterministically). This controller watches ring occupancy at the feeder
// and walks a watermark-driven state machine:
//
//   Healthy ──sustained high occupancy──▶ Degraded (keep 1-in-2)
//   Degraded ──still pressured──▶ Shedding (keep 1-in-4 … 1-in-2^max)
//   … ──sustained low occupancy──▶ step back down, one level at a time
//
// All decisions are deterministic functions of the observation stream and
// the offered-frame index: no wall-clock, no randomness. Every transition
// is logged with the observation count that caused it, and every shed
// frame is counted per civil day so downstream figures can be corrected
// (analytics::CaptureQuality), never silently wrong.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/health.hpp"

namespace edgewatch::runtime {

struct OverloadPolicy {
  /// Occupancy fraction (max across shards) at/above which an observation
  /// counts as pressure.
  double high_watermark = 0.75;
  /// At/below which an observation counts as calm (in between: neutral,
  /// streaks reset — that gap is the hysteresis band).
  double low_watermark = 0.25;
  /// Consecutive pressured observations before escalating one level.
  std::uint32_t escalate_after = 8;
  /// Consecutive calm observations before de-escalating one level
  /// (deliberately larger: recovering too eagerly causes flapping).
  std::uint32_t recover_after = 64;
  /// Maximum sampling shift: at full escalation 1 in 2^max_shift frames
  /// is kept.
  std::uint32_t max_shift = 6;
  /// Bounded retries (with a CPU-relax each) a full ring gets before the
  /// frame is shed as backpressure.
  std::uint32_t ingest_retries = 64;
  /// The feeder samples occupancy every N offered frames (occupancy reads
  /// are cheap but not free on the per-packet path).
  std::uint32_t observe_every = 16;
};

class OverloadController {
 public:
  explicit OverloadController(OverloadPolicy policy = {}) : policy_(policy) {}

  /// One sampled occupancy observation (0..1, max across shards).
  void observe(double occupancy);
  /// A bounded ingest retry loop exhausted on a full ring: counts as a
  /// maximal-pressure observation regardless of the sampling cadence.
  void on_ring_full() { observe(1.0); }

  /// Deterministic shed decision for the offered frame with this index:
  /// keep 1 in 2^shift. Pure — same controller state and index, same
  /// answer, whatever thread or run asks.
  [[nodiscard]] bool should_keep(std::uint64_t offered_index) const noexcept {
    const std::uint32_t shift = shift_;
    if (shift == 0) return true;
    return (offered_index & ((std::uint64_t{1} << shift) - 1)) == 0;
  }

  [[nodiscard]] HealthState state() const noexcept {
    return shift_ == 0 ? HealthState::kHealthy
           : shift_ == 1 ? HealthState::kDegraded
                         : HealthState::kShedding;
  }
  [[nodiscard]] std::uint32_t sample_shift() const noexcept { return shift_; }
  [[nodiscard]] const OverloadPolicy& policy() const noexcept { return policy_; }

  /// Every state-machine move, stamped with the observation index that
  /// triggered it (health telemetry and tests).
  struct Transition {
    std::uint64_t at_observation = 0;
    HealthState from = HealthState::kHealthy;
    HealthState to = HealthState::kHealthy;
    std::uint32_t shift = 0;
  };
  [[nodiscard]] const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }

  /// Checkpointable controller state (pipeline checkpoint: a resumed run
  /// restarts the state machine where the killed run left it).
  struct Saved {
    std::uint32_t shift = 0;
    std::uint32_t pressure_streak = 0;
    std::uint32_t calm_streak = 0;
    std::uint64_t observations = 0;
  };
  [[nodiscard]] Saved save() const noexcept {
    return {shift_, pressure_streak_, calm_streak_, observations_};
  }
  void load(const Saved& s) noexcept {
    shift_ = s.shift;
    pressure_streak_ = s.pressure_streak;
    calm_streak_ = s.calm_streak;
    observations_ = s.observations;
  }

 private:
  void move_to(std::uint32_t shift);

  OverloadPolicy policy_;
  std::uint32_t shift_ = 0;
  std::uint32_t pressure_streak_ = 0;
  std::uint32_t calm_streak_ = 0;
  std::uint64_t observations_ = 0;
  std::vector<Transition> transitions_;
};

}  // namespace edgewatch::runtime
