// Resilient probe runtime (DESIGN §11): the supervision layer wrapped
// around probe::ShardedProbe and the data lake. The paper's probes ran
// unattended for five years (§2.3) — surviving traffic spikes, wedged
// threads, malformed packets, full disks and power cuts — and the
// methodology survived because every imperfection of the capture was
// *recorded* rather than silent. This class reproduces that operational
// envelope:
//
//   Overload   bounded rings + watermark state machine (OverloadController)
//              escalate packet sampling under sustained backpressure; every
//              shed frame is counted per civil day (CaptureQuality) so
//              downstream volume figures can be corrected.
//   Watchdog   per-shard heartbeats; a shard whose heartbeat stands still
//              over a non-empty ring for `stall_strikes` polls is declared
//              stalled (recorded, escalates overload); poison frames are
//              quarantined to an append-only file and the shard restored
//              from its last good snapshot.
//   Recovery   periodic whole-pipeline checkpoints (EWPC). A killed run
//              resumes from the last checkpoint: lake + quarantine files
//              truncated to their checkpointed (durable) sizes, shards
//              restored, source replayed from the recorded cursor — the
//              finished lake is byte-identical to an uninterrupted run's.
//              This holds with the lake's pipelined encoder too
//              (DataLake::set_encode_pool): in-flight encode work never
//              moves the durable file size — frames commit in order
//              through one file handle — so a kill mid-parallel-flush
//              leaves at most a torn tail beyond the checkpointed size,
//              which resume truncates away exactly as in the serial case
//              (WritePipeline.KillMidParallelFlushResumesByteIdentical).
//
// Threading: offer(), checkpoint(), finish(), resume() belong to one
// feeder thread. Poison capture runs on worker threads (the quarantine
// log and day-quality map are internally synchronized). health() reads
// atomics and feeder state; call it from the feeder thread for exact
// numbers.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "analytics/day_aggregate.hpp"
#include "core/result.hpp"
#include "obs/obs.hpp"
#include "probe/sharded_probe.hpp"
#include "runtime/backoff.hpp"
#include "runtime/health.hpp"
#include "runtime/overload.hpp"
#include "runtime/quarantine.hpp"
#include "storage/datalake.hpp"

namespace edgewatch::runtime {

struct SupervisorConfig {
  /// Shard template: shards, queue_capacity, probe config and — for the
  /// chaos harness — frame_inspector / snapshot_interval ride through
  /// unchanged. poison_sink is owned by the supervisor (it installs its
  /// own quarantine capture).
  probe::ShardedProbeConfig probe;

  OverloadPolicy overload;
  BackoffPolicy backoff;
  /// How retry loops pause. Default: no sleep (deterministic tests); pass
  /// real_sleeper() in production.
  Sleeper sleeper;

  /// Offered frames between automatic pipeline checkpoints (0 = only
  /// explicit checkpoint() calls). Keyed on the offered-frame count, so an
  /// uninterrupted run and a resumed run hit barriers at identical stream
  /// positions — the root of byte-identical recovery.
  std::uint64_t checkpoint_interval = 0;

  /// Watchdog polls (at the overload observation cadence) a shard may show
  /// no heartbeat progress over a non-empty ring before being declared
  /// stalled.
  std::uint32_t stall_strikes = 3;

  /// Pipeline checkpoint file. Empty disables checkpointing.
  std::filesystem::path checkpoint_path;
  /// Quarantine file. Empty disables quarantine capture (poison frames are
  /// then only counted).
  std::filesystem::path quarantine_path;
  /// Write handle factory for checkpoint + quarantine files (fault
  /// injection). The lake keeps its own factory.
  storage::FileFactory file_factory;
};

/// A Sleeper that actually sleeps (production wiring).
[[nodiscard]] Sleeper real_sleeper();

class Supervisor {
 public:
  Supervisor(storage::DataLake& lake, SupervisorConfig config);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Start a fresh run (truncates the quarantine file).
  core::Result<void> start();

  /// Resume from the checkpoint at config.checkpoint_path: repair the lake
  /// tail, restore every shard and the degradation state machine. Returns
  /// the replay cursor — the number of source frames already consumed,
  /// which the caller must skip before offering the rest.
  core::Result<std::uint64_t> resume();

  /// Offer one captured frame. Applies the degradation sampler, bounded
  /// full-ring retries, per-day accounting, the watchdog poll cadence and
  /// the automatic checkpoint schedule. Every offered frame ends in
  /// exactly one bucket: ingested, shed or (later, on a worker) quarantined.
  void offer(net::Frame frame);

  /// Take a pipeline checkpoint now: barrier-snapshot the shards, flush
  /// drained records to the lake (with backoff), sync the quarantine log,
  /// then atomically replace the checkpoint file.
  core::Result<void> checkpoint();

  /// Drain and stop: flush every shard, append the remaining records, and
  /// leave the lake sealed. Idempotent.
  core::Result<void> finish();

  /// Chaos: die like SIGKILL — workers stop without flushing, nothing is
  /// written. A later Supervisor::resume() on the same paths recovers.
  void simulate_crash();

  /// One watchdog sweep (offer() calls this on its observation cadence;
  /// exposed for idle periods and tests).
  void poll_watchdog();

  [[nodiscard]] HealthSnapshot health() const;

  /// Per-day capture accounting (exact after checkpoint()/finish()).
  [[nodiscard]] std::map<core::CivilDate, analytics::CaptureQuality> day_quality() const;

  /// Thread this run's capture quality into a day aggregate so downstream
  /// figures carry the effective sampling rate (DayAggregate::capture).
  void annotate(analytics::DayAggregate& aggregate) const;

  [[nodiscard]] bool finished() const noexcept { return finished_; }

 private:
  struct WatchdogState {
    std::uint64_t last_heartbeat = 0;
    std::uint32_t strikes = 0;
    bool stalled = false;
  };

  void install_hooks();
  /// Push feeder-side counter growth and overload gauges into the obs
  /// registry. Called on the overload observation cadence plus at
  /// checkpoint/finish — never per frame.
  void obs_sync() noexcept;
  [[nodiscard]] double max_occupancy() const;
  /// Append `records` to the lake per day with backoff; failures park the
  /// batch in pending_ (bounded by the next checkpoint's retry).
  void flush_records(std::vector<flow::FlowRecord> records);
  core::Result<void> write_checkpoint(std::uint64_t probe_next_seq,
                                      std::vector<std::vector<std::byte>> shard_state);

  storage::DataLake& lake_;
  SupervisorConfig config_;
  std::unique_ptr<probe::ShardedProbe> probe_;
  std::unique_ptr<QuarantineLog> quarantine_;
  OverloadController controller_;

  // Feeder-owned accounting.
  std::uint64_t offered_ = 0;
  std::uint64_t ingested_ = 0;
  std::uint64_t shed_sampled_ = 0;
  std::uint64_t shed_backpressure_ = 0;
  std::uint64_t append_retries_ = 0;
  std::uint64_t append_failures_ = 0;
  core::Errc last_append_error_ = core::Errc::kOk;
  std::uint64_t checkpoints_written_ = 0;
  std::uint64_t last_checkpoint_offered_ = 0;
  std::uint64_t stalls_detected_ = 0;
  std::map<core::CivilDate, analytics::CaptureQuality> day_quality_;
  std::map<core::CivilDate, std::vector<flow::FlowRecord>> pending_;
  /// Known-good (sealed, durable) byte length of each day's lake file —
  /// what the checkpoint records and what a torn tail is cut back to.
  std::map<core::CivilDate, std::uint64_t> durable_bytes_;
  std::vector<WatchdogState> watchdog_;

  // Worker-thread-updated accounting (poison capture).
  mutable std::mutex poison_mutex_;
  std::uint64_t quarantined_ = 0;
  std::map<core::CivilDate, std::uint64_t> quarantined_by_day_;

  bool started_ = false;
  bool finished_ = false;
  bool crashed_ = false;

  /// obs:: wiring. Feeder counters flush as deltas from obs_sync(); the
  /// quarantine counter is incremented directly by worker threads (the
  /// registry cells are atomics). Resolved once in the constructor.
  struct ObsHooks {
    obs::Counter* offered = nullptr;
    obs::Counter* ingested = nullptr;
    obs::Counter* shed_sampled = nullptr;
    obs::Counter* shed_backpressure = nullptr;
    obs::Counter* quarantined = nullptr;
    obs::Counter* stalls = nullptr;
    obs::Counter* checkpoints = nullptr;
    obs::Counter* append_retries = nullptr;
    obs::Counter* append_failures = nullptr;
    obs::Counter* overload_transitions = nullptr;
    obs::Gauge* overload_state = nullptr;
    obs::Gauge* sample_shift = nullptr;
    obs::Gauge* capture_days = nullptr;
    obs::Gauge* capture_days_incomplete = nullptr;
    obs::Gauge* capture_frames_shed = nullptr;
    obs::SpanSite* checkpoint_span = nullptr;
    obs::SpanSite* flush_span = nullptr;
    struct Flushed {
      std::uint64_t offered = 0, ingested = 0, shed_sampled = 0, shed_backpressure = 0;
      std::uint64_t stalls = 0, checkpoints = 0, append_retries = 0, append_failures = 0;
      std::uint64_t transitions = 0;
    } flushed;
  };
  ObsHooks obs_;
};

}  // namespace edgewatch::runtime
