#include "runtime/overload.hpp"

#include <algorithm>

namespace edgewatch::runtime {

void OverloadController::observe(double occupancy) {
  ++observations_;
  if (occupancy >= policy_.high_watermark) {
    ++pressure_streak_;
    calm_streak_ = 0;
    if (pressure_streak_ >= policy_.escalate_after && shift_ < policy_.max_shift) {
      move_to(shift_ + 1);
      pressure_streak_ = 0;
    }
  } else if (occupancy <= policy_.low_watermark) {
    ++calm_streak_;
    pressure_streak_ = 0;
    if (calm_streak_ >= policy_.recover_after && shift_ > 0) {
      move_to(shift_ - 1);
      calm_streak_ = 0;
    }
  } else {
    // Hysteresis band: neither escalating nor recovering. Streaks reset so
    // only *sustained* pressure or calm moves the machine.
    pressure_streak_ = 0;
    calm_streak_ = 0;
  }
}

void OverloadController::move_to(std::uint32_t shift) {
  const HealthState from = state();
  shift_ = std::min(shift, policy_.max_shift);
  transitions_.push_back({observations_, from, state(), shift_});
}

}  // namespace edgewatch::runtime
