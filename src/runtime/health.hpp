// Health snapshot of the supervised pipeline: what an operator (or the
// watchdog's own escalation logic) reads to understand how the probe is
// coping. DESIGN §11 carries the runbook for interpreting one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/result.hpp"

namespace edgewatch::runtime {

/// The degradation state machine (DESIGN §11). Transitions are driven by
/// ring-occupancy watermarks with hysteresis, never by wall-clock time, so
/// every transition is explainable from the recorded observation counts.
enum class HealthState : std::uint8_t {
  kHealthy = 0,   ///< Keeping every frame.
  kDegraded = 1,  ///< Sustained pressure: sampling 1-in-2, recorded as shed.
  kShedding = 2,  ///< Escalated sampling (1-in-4 … 1-in-2^max), still recorded.
};

[[nodiscard]] constexpr std::string_view to_string(HealthState s) noexcept {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kShedding: return "shedding";
  }
  return "unknown";
}

struct ShardHealth {
  std::uint64_t heartbeat = 0;    ///< Items the worker has handled.
  std::size_t queue_depth = 0;    ///< Frames waiting in its ring.
  std::size_t queue_capacity = 0;
  std::uint32_t stall_strikes = 0;  ///< Consecutive no-progress polls.
  bool stalled = false;             ///< Strikes reached the watchdog threshold.
  std::uint64_t quarantined = 0;    ///< Poison frames captured off this shard.
  std::uint64_t state_restores = 0; ///< Rollbacks to the last good snapshot.
};

struct HealthSnapshot {
  HealthState state = HealthState::kHealthy;
  std::uint32_t sample_shift = 0;  ///< Keeping 1 in 2^shift offered frames.

  std::uint64_t frames_offered = 0;
  std::uint64_t frames_ingested = 0;
  std::uint64_t shed_sampled = 0;       ///< Dropped by the degradation sampler.
  std::uint64_t shed_backpressure = 0;  ///< Dropped after bounded full-ring retries.
  std::uint64_t frames_quarantined = 0;

  std::uint64_t append_retries = 0;   ///< Transient lake-append failures retried.
  std::uint64_t append_failures = 0;  ///< Appends that exhausted their retries.
  core::Errc last_append_error = core::Errc::kOk;

  std::uint64_t checkpoints_written = 0;
  std::uint64_t last_checkpoint_offered = 0;  ///< Replay cursor of the last checkpoint.
  std::uint64_t stalls_detected = 0;

  std::vector<ShardHealth> shards;

  [[nodiscard]] std::uint64_t shed_total() const noexcept {
    return shed_sampled + shed_backpressure;
  }
  /// The invariant every run must keep: each offered frame ends in exactly
  /// one bucket. (Mid-run the counters are sampled racily against in-flight
  /// frames; at a checkpoint barrier or finish() this is exact.)
  [[nodiscard]] bool reconciles() const noexcept {
    return frames_offered == frames_ingested + shed_total() + frames_quarantined;
  }

  /// Operator-facing rendering (the runbook in DESIGN §11 explains how to
  /// read each line).
  [[nodiscard]] std::string format() const;
};

}  // namespace edgewatch::runtime
