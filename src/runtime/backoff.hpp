// Bounded retry-with-backoff for transient I/O failures on the live write
// path. A five-year pipeline (paper §2.3) meets full disks and flaky
// controllers as a matter of course; the correct reaction to ENOSPC/EIO on
// a lake append is a few spaced retries (an operator or log-rotation cron
// frees space within seconds), then a recorded failure — never a tight
// loop and never silent data loss.
//
// Delays are computed, not slept, so the policy is deterministic and
// testable: callers hand the delay to an injectable sleeper. The chaos
// harness uses a recording no-op sleeper; production uses
// std::this_thread::sleep_for.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

#include "core/result.hpp"

namespace edgewatch::runtime {

struct BackoffPolicy {
  std::uint32_t max_attempts = 4;  ///< Total tries (first attempt included).
  std::chrono::microseconds initial{2'000};
  double multiplier = 4.0;
  std::chrono::microseconds cap{500'000};

  /// Delay before retry number `retry` (1-based: the wait after the first
  /// failure is delay(1)). Exponential, capped, deterministic.
  [[nodiscard]] std::chrono::microseconds delay(std::uint32_t retry) const noexcept {
    if (retry == 0) return std::chrono::microseconds{0};
    double us = static_cast<double>(initial.count());
    for (std::uint32_t i = 1; i < retry; ++i) {
      us *= multiplier;
      if (us >= static_cast<double>(cap.count())) return cap;
    }
    const auto clamped = us < static_cast<double>(cap.count())
                             ? static_cast<std::chrono::microseconds::rep>(us)
                             : cap.count();
    return std::chrono::microseconds{clamped};
  }
};

/// How the retry loop pauses between attempts. Injectable so tests and the
/// chaos harness never actually sleep.
using Sleeper = std::function<void(std::chrono::microseconds)>;

/// Transient errors are worth retrying: the OS may recover (EIO on a
/// congested controller) or space may be freed (ENOSPC). Corruption,
/// format and crash errors are not transient — retrying cannot fix them.
[[nodiscard]] constexpr bool transient(core::Errc e) noexcept {
  return e == core::Errc::kIoError || e == core::Errc::kNoSpace;
}

/// Run `op` (returning core::Result<T>) up to policy.max_attempts times,
/// sleeping policy.delay(i) between attempts while the error stays
/// transient. `retries_out`, when non-null, accumulates the number of
/// retries actually performed (for health accounting).
template <typename Op>
auto with_backoff(const BackoffPolicy& policy, const Sleeper& sleep, Op&& op,
                  std::uint64_t* retries_out = nullptr) -> decltype(op()) {
  auto result = op();
  for (std::uint32_t retry = 1; !result && retry < policy.max_attempts; ++retry) {
    if (!transient(result.error())) break;
    if (sleep) sleep(policy.delay(retry));
    if (retries_out != nullptr) ++*retries_out;
    result = op();
  }
  return result;
}

}  // namespace edgewatch::runtime
