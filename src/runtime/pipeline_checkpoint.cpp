#include "runtime/pipeline_checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "core/bytes.hpp"
#include "core/hash.hpp"
#include "storage/codec.hpp"

namespace edgewatch::runtime {

namespace {

constexpr char kMagic[4] = {'E', 'W', 'P', 'C'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kFileHeaderSize = 4 + 1 + 4 + 8;
constexpr std::uint64_t kMaxPayload = 1ull << 32;
// Decode-side sanity bounds: a CRC-valid payload should never trip these,
// but a bounded reject beats an unbounded allocation.
constexpr std::uint64_t kMaxShards = 4096;
constexpr std::uint64_t kMaxDays = 1u << 20;

void encode_payload(const PipelineCheckpoint& cp, core::ByteWriter& w) {
  w.u64le(cp.replay_from);
  w.u64le(cp.probe_next_seq);
  w.u64le(cp.frames_offered);
  w.u64le(cp.frames_ingested);
  w.u64le(cp.shed_sampled);
  w.u64le(cp.shed_backpressure);
  w.u64le(cp.frames_quarantined);
  w.u64le(cp.append_retries);
  w.u64le(cp.append_failures);
  w.u64le(cp.checkpoints_written);
  w.u64le(cp.stalls_detected);

  w.u32le(cp.controller.shift);
  w.u32le(cp.controller.pressure_streak);
  w.u32le(cp.controller.calm_streak);
  w.u64le(cp.controller.observations);

  w.u64le(cp.quarantine_bytes);
  w.u64le(cp.quarantine_entries);

  w.u32le(static_cast<std::uint32_t>(cp.shard_state.size()));
  for (const auto& image : cp.shard_state) {
    w.u64le(image.size());
    w.bytes(image);
  }

  w.u32le(static_cast<std::uint32_t>(cp.days.size()));
  for (const auto& d : cp.days) {
    w.u32le(static_cast<std::uint32_t>(d.day.year));
    w.u8(d.day.month);
    w.u8(d.day.day);
    w.u64le(d.lake_bytes);
    w.u64le(d.quality.frames_offered);
    w.u64le(d.quality.frames_ingested);
    w.u64le(d.quality.frames_shed);
    w.u64le(d.quality.frames_quarantined);
  }

  w.u64le(cp.pending.size());
  for (const auto& record : cp.pending) storage::encode_record(record, w);
}

core::Result<PipelineCheckpoint> decode_payload(core::ByteReader& r) {
  PipelineCheckpoint cp;
  cp.replay_from = r.u64le();
  cp.probe_next_seq = r.u64le();
  cp.frames_offered = r.u64le();
  cp.frames_ingested = r.u64le();
  cp.shed_sampled = r.u64le();
  cp.shed_backpressure = r.u64le();
  cp.frames_quarantined = r.u64le();
  cp.append_retries = r.u64le();
  cp.append_failures = r.u64le();
  cp.checkpoints_written = r.u64le();
  cp.stalls_detected = r.u64le();

  cp.controller.shift = r.u32le();
  cp.controller.pressure_streak = r.u32le();
  cp.controller.calm_streak = r.u32le();
  cp.controller.observations = r.u64le();

  cp.quarantine_bytes = r.u64le();
  cp.quarantine_entries = r.u64le();

  const std::uint32_t shard_count = r.u32le();
  if (!r.ok() || shard_count > kMaxShards) return core::Errc::kCorrupt;
  cp.shard_state.reserve(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    const std::uint64_t len = r.u64le();
    if (len > r.remaining()) return core::Errc::kCorrupt;
    const auto image = r.bytes(static_cast<std::size_t>(len));
    cp.shard_state.emplace_back(image.begin(), image.end());
  }

  const std::uint32_t day_count = r.u32le();
  if (!r.ok() || day_count > kMaxDays) return core::Errc::kCorrupt;
  cp.days.reserve(day_count);
  for (std::uint32_t i = 0; i < day_count; ++i) {
    PipelineCheckpoint::DayState d;
    d.day.year = static_cast<std::int32_t>(r.u32le());
    d.day.month = r.u8();
    d.day.day = r.u8();
    d.lake_bytes = r.u64le();
    d.quality.frames_offered = r.u64le();
    d.quality.frames_ingested = r.u64le();
    d.quality.frames_shed = r.u64le();
    d.quality.frames_quarantined = r.u64le();
    cp.days.push_back(d);
  }

  const std::uint64_t pending_count = r.u64le();
  if (!r.ok()) return core::Errc::kCorrupt;
  cp.pending.reserve(static_cast<std::size_t>(pending_count));
  for (std::uint64_t i = 0; i < pending_count; ++i) {
    auto record = storage::decode_record(r);
    if (!record) return core::Errc::kCorrupt;
    cp.pending.push_back(std::move(*record));
  }
  if (!r.ok() || r.remaining() != 0) return core::Errc::kCorrupt;
  return cp;
}

}  // namespace

core::Result<void> save_pipeline_checkpoint(const PipelineCheckpoint& cp,
                                            const std::filesystem::path& path,
                                            const storage::FileFactory& factory) {
  core::ByteWriter payload;
  encode_payload(cp, payload);
  if (payload.size() > kMaxPayload) return core::Errc::kUnsupported;

  core::ByteWriter out{kFileHeaderSize + payload.size()};
  for (char c : kMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u8(kVersion);
  out.u32le(core::crc32c(payload.view()));
  out.u64le(payload.size());
  out.bytes(payload.view());

  // Atomic replace: the previous checkpoint stays valid until the new one
  // is durably in place. A crash between write and rename costs nothing —
  // the resume just starts one checkpoint earlier.
  auto tmp = path;
  tmp += ".tmp";
  auto file = factory ? factory() : storage::make_posix_file();
  if (auto r = file->open_at(tmp, 0); !r) return r;
  if (auto r = file->write(out.view()); !r) {
    (void)file->close();
    return r;
  }
  if (auto r = file->sync(); !r) {
    (void)file->close();
    return r;
  }
  if (auto r = file->close(); !r) return r;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return core::Errc::kIoError;
  return {};
}

core::Result<PipelineCheckpoint> load_pipeline_checkpoint(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return core::Errc::kNotFound;
  const auto size = static_cast<std::size_t>(in.tellg());
  if (size < kFileHeaderSize) return core::Errc::kTruncated;
  std::vector<std::byte> data(size);
  in.seekg(0);
  if (!in.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(size))) {
    return core::Errc::kIoError;
  }
  if (std::memcmp(data.data(), kMagic, 4) != 0) return core::Errc::kBadMagic;
  if (std::to_integer<std::uint8_t>(data[4]) != kVersion) return core::Errc::kBadVersion;
  core::ByteReader header{std::span<const std::byte>{data}.subspan(5, 12)};
  const std::uint32_t crc = header.u32le();
  const std::uint64_t payload_len = header.u64le();
  if (payload_len > kMaxPayload || kFileHeaderSize + payload_len != size) {
    return core::Errc::kTruncated;
  }
  const auto payload = std::span<const std::byte>{data}.subspan(kFileHeaderSize);
  if (core::crc32c(payload) != crc) return core::Errc::kCorrupt;
  core::ByteReader r{payload};
  return decode_payload(r);
}

}  // namespace edgewatch::runtime
