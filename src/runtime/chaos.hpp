// Deterministic chaos harness. Five years of unattended operation (paper
// §2.3) means the failure modes are not hypothetical: malformed frames,
// wedged threads, full disks, power cuts. This harness makes each of them
// reproducible on demand, driven entirely by a seed and stream positions —
// a failing chaos run replays exactly.
//
// Fault channels and where they plug in:
//   poison    frames whose processing throws — ChaosSchedule::make_inspector
//             installed as ShardedProbeConfig::frame_inspector; decisions
//             are keyed on the probe ingest seq (core::mix64(seed, seq)),
//             so a crash-recovery replay poisons the same frames.
//   stall     a worker blocks at a chosen seq until released from the test
//             thread (arm_stall / release_stall) — exercises the watchdog.
//   busy      a fixed spin per frame slows workers uniformly — turns an
//             ordinary frame rate into sustained overload for the
//             degradation state machine (and bench_overload's load sweep).
//   disk      storage::FaultyFile plans on the lake / checkpoint /
//             quarantine write paths (not owned here; see fault_injection).
//   kill      Supervisor::simulate_crash() at a chosen offered count,
//             scheduled by the test loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "net/packet.hpp"

namespace edgewatch::runtime {

struct ChaosConfig {
  std::uint64_t seed = 1;
  /// Poison roughly one in `poison_every` ingest seqs (0 = never). The
  /// choice is a pure function of (seed, seq).
  std::uint64_t poison_every = 0;
  /// Of poisoned frames, roughly one in `suspect_every` throws
  /// StateSuspectError (forcing a snapshot rollback) instead of a plain
  /// exception (quarantine only). 0 = all plain.
  std::uint64_t suspect_every = 2;
  /// Busy-work iterations per frame (0 = none): uniform worker slowdown.
  std::uint32_t busy_spin = 0;
};

class ChaosSchedule {
 public:
  explicit ChaosSchedule(ChaosConfig config);

  /// Pure decision functions (tests assert against these directly).
  [[nodiscard]] bool poisons(std::uint64_t seq) const noexcept;
  [[nodiscard]] bool suspect(std::uint64_t seq) const noexcept;

  /// Block the worker that meets `seq` until release_stall(). One armed
  /// stall at a time.
  void arm_stall(std::uint64_t seq);
  void release_stall();

  /// The frame inspector implementing this schedule. Safe to install on a
  /// pipeline that outlives the schedule object (state is shared).
  [[nodiscard]] std::function<void(std::uint64_t, const net::Frame&)> inspector() const;

 private:
  struct Shared {
    ChaosConfig config;
    std::atomic<std::uint64_t> stall_seq{kNoStall};
    std::atomic<bool> stall_released{false};
    static constexpr std::uint64_t kNoStall = ~std::uint64_t{0};
  };
  std::shared_ptr<Shared> shared_;
};

}  // namespace edgewatch::runtime
