#include "exec/record_batch.hpp"

#include <array>

#include "obs/obs.hpp"

namespace edgewatch::exec {

namespace {

/// Scan-shape instrumentation, resolved lazily against the process-global
/// registry (same pattern as the lake/aggregate metrics).
struct ExecObs {
  obs::Counter* batches;
  obs::Histogram* batch_rows;
  obs::Counter* rows_passthrough;
  obs::Counter* rows_materialized;
};

ExecObs& exec_obs() {
  static ExecObs m = [] {
    auto& reg = obs::Registry::global();
    // Lake blocks hold at most DataLake::kBlockRecords (4096) rows; the
    // buckets resolve "mostly full blocks" from "selective-scan slivers".
    static constexpr std::array<std::int64_t, 6> kRowBounds{16, 64, 256, 1024, 2048, 4096};
    return ExecObs{
        &reg.counter("exec_batches_total"),
        &reg.histogram("exec_batch_rows", kRowBounds),
        &reg.counter("exec_rows_dict_passthrough_total"),
        &reg.counter("exec_rows_materialized_total"),
    };
  }();
  return m;
}

}  // namespace

void note_batch_delivered(const RecordBatch& batch) {
  if constexpr (obs::kEnabled) {
    auto& m = exec_obs();
    const auto delivered = static_cast<std::int64_t>(batch.delivered_rows());
    m.batches->add(1);
    m.batch_rows->record(delivered);
    m.rows_passthrough->add(static_cast<std::uint64_t>(delivered));
  }
}

void BatchStaging::clear() {
  ts_.clear();
  dur_.clear();
  rtt_min_.clear();
  rtt_max_.clear();
  rtt_avg_.clear();
  proto_.clear();
  access_.clear();
  flags_.clear();
  l7_.clear();
  web_.clear();
  name_source_.clear();
  cport_.clear();
  sport_.clear();
  cip_.clear();
  sip_.clear();
  name_idx_.clear();
  ct_idx_.clear();
  up_pkts_.clear();
  up_bytes_.clear();
  up_hdr_.clear();
  up_retx_.clear();
  up_ooo_.clear();
  dn_pkts_.clear();
  dn_bytes_.clear();
  dn_hdr_.clear();
  dn_retx_.clear();
  dn_ooo_.clear();
  rtt_samples_.clear();
  http_status_.clear();
  // Dictionaries persist (see class comment); bound the pathological case
  // of a scan over endless distinct names so the interning table cannot
  // grow without limit across a multi-year sweep.
  constexpr std::size_t kDictResetThreshold = 1u << 20;
  if (name_entries_.size() + ct_entries_.size() > kDictResetThreshold) {
    name_entries_.clear();
    ct_entries_.clear();
    name_codes_.clear();
    ct_codes_.clear();
    name_views_.clear();
    ct_views_.clear();
  }
}

std::uint32_t BatchStaging::intern(
    std::string_view s, std::deque<std::string>& entries,
    core::FlatHashMap<std::string_view, std::uint32_t, core::StringHash>& codes,
    std::vector<std::string_view>& views) {
  if (const auto it = codes.find(s); it != codes.end()) return it->second;
  const auto code = static_cast<std::uint32_t>(entries.size());
  entries.emplace_back(s);
  views.emplace_back(entries.back());
  codes.emplace(std::string_view{entries.back()}, code);
  return code;
}

void BatchStaging::add(const flow::FlowRecord& r) {
  ts_.push_back(r.first_packet.micros());
  dur_.push_back(r.last_packet - r.first_packet);
  proto_.push_back(static_cast<std::uint8_t>(r.proto));
  access_.push_back(static_cast<std::uint8_t>(r.access));
  flags_.push_back(static_cast<std::uint8_t>((r.handshake_completed ? 1u : 0u) |
                                             (static_cast<unsigned>(r.close_reason) << 1)));
  l7_.push_back(static_cast<std::uint8_t>(r.l7));
  web_.push_back(static_cast<std::uint8_t>(r.web));
  name_source_.push_back(static_cast<std::uint8_t>(r.name_source));
  cport_.push_back(r.client_port);
  sport_.push_back(r.server_port);
  cip_.push_back(r.client_ip.value());
  sip_.push_back(r.server_ip.value());
  up_pkts_.push_back(r.up.packets);
  up_bytes_.push_back(r.up.bytes);
  up_hdr_.push_back(r.up.bytes_with_hdr);
  up_retx_.push_back(r.up.retransmits);
  up_ooo_.push_back(r.up.out_of_order);
  dn_pkts_.push_back(r.down.packets);
  dn_bytes_.push_back(r.down.bytes);
  dn_hdr_.push_back(r.down.bytes_with_hdr);
  dn_retx_.push_back(r.down.retransmits);
  dn_ooo_.push_back(r.down.out_of_order);
  rtt_samples_.push_back(r.rtt.samples);
  rtt_min_.push_back(r.rtt.min_us);
  rtt_max_.push_back(r.rtt.max_us);
  rtt_avg_.push_back(r.rtt.avg_us);
  http_status_.push_back(r.http_status);
  name_idx_.push_back(intern(r.server_name, name_entries_, name_codes_, name_views_));
  ct_idx_.push_back(intern(r.content_type, ct_entries_, ct_codes_, ct_views_));
}

RecordBatch BatchStaging::finish(std::uint32_t fields) {
  RecordBatch b;
  b.fields = fields;
  b.rows = ts_.size();
  b.ts = ts_;
  b.dur = dur_;
  b.proto = proto_;
  b.access = access_;
  b.flags = flags_;
  b.l7 = l7_;
  b.web = web_;
  b.name_source = name_source_;
  b.cport = cport_;
  b.sport = sport_;
  b.cip = cip_;
  b.sip = sip_;
  b.up_pkts = up_pkts_;
  b.up_bytes = up_bytes_;
  b.up_hdr = up_hdr_;
  b.up_retx = up_retx_;
  b.up_ooo = up_ooo_;
  b.dn_pkts = dn_pkts_;
  b.dn_bytes = dn_bytes_;
  b.dn_hdr = dn_hdr_;
  b.dn_retx = dn_retx_;
  b.dn_ooo = dn_ooo_;
  b.rtt_samples = rtt_samples_;
  b.rtt_min_us = rtt_min_;
  b.rtt_max_us = rtt_max_;
  b.rtt_avg_us = rtt_avg_;
  b.http_status = http_status_;
  b.name_idx = name_idx_;
  b.ct_idx = ct_idx_;
  b.name_dict = name_views_;
  b.ct_dict = ct_views_;
  return b;
}

namespace {

/// The emit tail shared by every projection instantiation. `wantp` is a
/// projection test the preset dispatch below folds to compile-time
/// constants, leaving the per-row loop with no projection branches at all.
template <typename WantP>
void materialize_impl(const RecordBatch& b, flow::FlowRecord& rec,
                      core::FunctionRef<void(const flow::FlowRecord&)> fn,
                      std::uint64_t& records_delivered, WantP wantp) {
  const bool wrtt = wantp(scan_fields::kRttMin | scan_fields::kRttSpread);
  // Unprojected fields are value-initialized once per batch: the record
  // object carries state between rows and batches, so stale values must be
  // cleared, but clearing per row would charge every scan for fields nobody
  // asked for.
  if (!wantp(scan_fields::kLastPacket)) rec.last_packet = core::Timestamp{};
  if (!wantp(scan_fields::kClientIp)) rec.client_ip = core::IPv4Address{};
  if (!wantp(scan_fields::kClientPort)) rec.client_port = 0;
  if (!wantp(scan_fields::kServerPort)) rec.server_port = 0;
  if (!wantp(scan_fields::kAccess)) rec.access = flow::AccessTech{};
  if (!wantp(scan_fields::kCloseState)) {
    rec.handshake_completed = false;
    rec.close_reason = flow::FlowCloseReason{};
  }
  if (!wantp(scan_fields::kUpPackets)) rec.up.packets = 0;
  if (!wantp(scan_fields::kUpBytes)) rec.up.bytes = 0;
  if (!wantp(scan_fields::kUpWireBytes)) rec.up.bytes_with_hdr = 0;
  if (!wantp(scan_fields::kUpQuality)) rec.up.retransmits = rec.up.out_of_order = 0;
  if (!wantp(scan_fields::kDownPackets)) rec.down.packets = 0;
  if (!wantp(scan_fields::kDownBytes)) rec.down.bytes = 0;
  if (!wantp(scan_fields::kDownWireBytes)) rec.down.bytes_with_hdr = 0;
  if (!wantp(scan_fields::kDownQuality)) rec.down.retransmits = rec.down.out_of_order = 0;
  if (!wrtt) rec.rtt = flow::RttStats{};
  if (!wantp(scan_fields::kRttSpread)) {
    rec.rtt.max_us = 0;
    rec.rtt.avg_us = 0;
  }
  if (!wantp(scan_fields::kL7)) rec.l7 = dpi::L7Protocol{};
  if (!wantp(scan_fields::kWeb)) rec.web = dpi::WebProtocol{};
  if (!wantp(scan_fields::kNameSource)) rec.name_source = flow::NameSource{};
  if (!wantp(scan_fields::kServerName)) rec.server_name.clear();
  if (!wantp(scan_fields::kHttpStatus)) rec.http_status = 0;
  if (!wantp(scan_fields::kContentType)) rec.content_type.clear();
  rec.ingest_seq = 0;  // not stored in the lake; always zero on the scan path

  // The dictionary columns repeat heavily (one hostname serves many flows),
  // so a string is only re-assigned when the row's dict index differs from
  // the previously emitted row's. Sentinels reset per batch: a new batch
  // means a new dictionary, so index equality across batches proves nothing.
  std::uint32_t last_name_idx = 0xffffffffu;
  std::uint32_t last_ct_idx = 0xffffffffu;
  b.for_each_row([&](std::size_t i) {
    if (wantp(scan_fields::kClientIp)) rec.client_ip = core::IPv4Address{b.cip[i]};
    rec.server_ip = core::IPv4Address{b.sip[i]};
    if (wantp(scan_fields::kClientPort)) rec.client_port = b.cport[i];
    if (wantp(scan_fields::kServerPort)) rec.server_port = b.sport[i];
    rec.proto = static_cast<core::TransportProto>(b.proto[i]);
    if (wantp(scan_fields::kAccess)) rec.access = static_cast<flow::AccessTech>(b.access[i]);
    rec.first_packet = core::Timestamp{b.ts[i]};
    if (wantp(scan_fields::kLastPacket)) rec.last_packet = rec.first_packet + b.dur[i];
    if (wantp(scan_fields::kUpPackets)) rec.up.packets = b.up_pkts[i];
    if (wantp(scan_fields::kUpBytes)) rec.up.bytes = b.up_bytes[i];
    if (wantp(scan_fields::kUpWireBytes)) rec.up.bytes_with_hdr = b.up_hdr[i];
    if (wantp(scan_fields::kUpQuality)) {
      rec.up.retransmits = static_cast<std::uint32_t>(b.up_retx[i]);
      rec.up.out_of_order = static_cast<std::uint32_t>(b.up_ooo[i]);
    }
    if (wantp(scan_fields::kDownPackets)) rec.down.packets = b.dn_pkts[i];
    if (wantp(scan_fields::kDownBytes)) rec.down.bytes = b.dn_bytes[i];
    if (wantp(scan_fields::kDownWireBytes)) rec.down.bytes_with_hdr = b.dn_hdr[i];
    if (wantp(scan_fields::kDownQuality)) {
      rec.down.retransmits = static_cast<std::uint32_t>(b.dn_retx[i]);
      rec.down.out_of_order = static_cast<std::uint32_t>(b.dn_ooo[i]);
    }
    if (wantp(scan_fields::kCloseState)) {
      rec.handshake_completed = (b.flags[i] & 1) != 0;
      rec.close_reason = static_cast<flow::FlowCloseReason>(b.flags[i] >> 1);
    }
    if (wrtt) {
      rec.rtt.samples = static_cast<std::uint32_t>(b.rtt_samples[i]);
      rec.rtt.min_us = b.rtt_min_us[i];
      if (wantp(scan_fields::kRttSpread)) {
        rec.rtt.max_us = b.rtt_max_us[i];
        rec.rtt.avg_us = b.rtt_avg_us[i];
      }
    }
    if (wantp(scan_fields::kL7)) rec.l7 = static_cast<dpi::L7Protocol>(b.l7[i]);
    if (wantp(scan_fields::kWeb)) rec.web = static_cast<dpi::WebProtocol>(b.web[i]);
    if (wantp(scan_fields::kNameSource)) {
      rec.name_source = static_cast<flow::NameSource>(b.name_source[i]);
    }
    if (wantp(scan_fields::kServerName) && b.name_idx[i] != last_name_idx) {
      last_name_idx = b.name_idx[i];
      rec.server_name.assign(b.name_dict[last_name_idx]);
    }
    if (wantp(scan_fields::kHttpStatus)) {
      rec.http_status = static_cast<std::uint16_t>(b.http_status[i]);
    }
    if (wantp(scan_fields::kContentType) && b.ct_idx[i] != last_ct_idx) {
      last_ct_idx = b.ct_idx[i];
      rec.content_type.assign(b.ct_dict[last_ct_idx]);
    }
    fn(rec);
    ++records_delivered;
  });
}

}  // namespace

void materialize_rows(const RecordBatch& batch, flow::FlowRecord& rec,
                      core::FunctionRef<void(const flow::FlowRecord&)> fn,
                      std::uint64_t& records_delivered) {
  if (batch.empty()) return;
  if constexpr (obs::kEnabled) {
    exec_obs().rows_materialized->add(static_cast<std::uint64_t>(batch.delivered_rows()));
  }
  if (batch.fields == scan_fields::kAll) {
    materialize_impl(batch, rec, fn, records_delivered, [](std::uint32_t) { return true; });
  } else if (batch.fields == scan_fields::kDayAggregate) {
    materialize_impl(batch, rec, fn, records_delivered,
                     [](std::uint32_t bit) { return (scan_fields::kDayAggregate & bit) != 0; });
  } else {
    const std::uint32_t fields = batch.fields;
    materialize_impl(batch, rec, fn, records_delivered,
                     [fields](std::uint32_t bit) { return (fields & bit) != 0; });
  }
}

}  // namespace edgewatch::exec
