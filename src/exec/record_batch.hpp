// The batch execution core: one SoA currency type between the lake's scan
// path and every analytics consumer (paper §2.2 — the two-stage methodology
// re-scans years of day logs, so the hot loop must move *batches*, not one
// FlowRecord at a time).
//
// A RecordBatch is a non-owning column view over one decoded lake block:
// parallel arrays for timestamps, byte/packet counters, RTT, service/proto
// codes, server IP/port — plus the dictionary-coded name/content-type
// columns, which pass the v3 dict codes through as (index, dictionary-view)
// pairs so a consumer that tallies per hostname touches each distinct
// string once per block instead of once per row. Columnar (v3) blocks fill
// a batch straight from the decode scratch with zero string materialization;
// row-format (v1/v2) blocks stage their decoded records into a BatchStaging
// so every consumer sees one shape regardless of the on-disk format.
//
// Lifetime: a batch views the scratch (or staging) that produced it. It is
// valid until the next decode/stage call on that scratch — consume it inside
// the sink callback, copy out what must survive.
//
// Projection: `fields` (scan_fields bits) says which spans are populated.
// The filter/zone columns — ts, service, proto, sip — are always present
// for v3 batches; unprojected spans are empty, never stale. Row-format
// staging always populates everything (projection is a v3 fast path).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/flat_hash_map.hpp"
#include "core/function_ref.hpp"
#include "core/hash.hpp"
#include "flow/record.hpp"

namespace edgewatch::exec {

/// Field-projection bits shared by the scan predicate and the batch
/// contract: which FlowRecord fields (equivalently, which RecordBatch
/// spans) a scan must materialize. Every bit maps to the column segment(s)
/// backing that field; segments backing no requested field are never
/// decompressed or decoded. The filter/zone columns — first_packet, proto,
/// server_ip plus the materialized service codes — are always decoded: they
/// drive row selection and the zone-map cross-check. All other unprojected
/// fields of emitted records are value-initialized (zero / empty), never
/// stale.
///
/// Projection is a v3 fast path, not a semantic filter: row-format (v1/v2)
/// blocks materialize every field regardless, and a consumer must not rely
/// on unprojected fields being zeroed when it may read v2 days.
/// (Lived in storage::scan_fields before the batch refactor; storage
/// aliases this namespace so predicate call sites read unchanged.)
namespace scan_fields {
inline constexpr std::uint32_t kLastPacket = 1u << 0;     ///< duration column
inline constexpr std::uint32_t kClientIp = 1u << 1;
inline constexpr std::uint32_t kClientPort = 1u << 2;
inline constexpr std::uint32_t kServerPort = 1u << 3;
inline constexpr std::uint32_t kAccess = 1u << 4;
inline constexpr std::uint32_t kCloseState = 1u << 5;     ///< handshake + close_reason
inline constexpr std::uint32_t kUpPackets = 1u << 6;
inline constexpr std::uint32_t kUpBytes = 1u << 7;
inline constexpr std::uint32_t kUpWireBytes = 1u << 8;    ///< bytes_with_hdr
inline constexpr std::uint32_t kUpQuality = 1u << 9;      ///< retransmits + out_of_order
inline constexpr std::uint32_t kDownPackets = 1u << 10;
inline constexpr std::uint32_t kDownBytes = 1u << 11;
inline constexpr std::uint32_t kDownWireBytes = 1u << 12;
inline constexpr std::uint32_t kDownQuality = 1u << 13;
inline constexpr std::uint32_t kRttMin = 1u << 14;        ///< rtt.samples + rtt.min_us
inline constexpr std::uint32_t kRttSpread = 1u << 15;     ///< + rtt.max_us / rtt.avg_us
inline constexpr std::uint32_t kL7 = 1u << 16;
inline constexpr std::uint32_t kWeb = 1u << 17;
inline constexpr std::uint32_t kNameSource = 1u << 18;
inline constexpr std::uint32_t kServerName = 1u << 19;    ///< name dictionary + indexes
inline constexpr std::uint32_t kHttpStatus = 1u << 20;
inline constexpr std::uint32_t kContentType = 1u << 21;   ///< content-type dict + indexes
inline constexpr std::uint32_t kAll = 0xffffffffu;
/// Canonical projection presets. The batch→row shim keeps a branch-free
/// emit loop pre-instantiated for each preset (plus kAll), so scans that
/// use one exactly pay no per-row projection tests. kDayAggregate is the
/// stage-one day-rollup working set — the hottest scan in the pipeline
/// (analytics::kDayAggregateScanFields aliases it).
inline constexpr std::uint32_t kDayAggregate = kClientIp | kAccess | kUpBytes | kDownBytes |
                                               kDownPackets | kDownQuality | kRttMin | kL7 |
                                               kWeb | kServerName;
}  // namespace scan_fields

/// One decoded lake block as columns. All row spans are index-aligned:
/// row i of the block is element i of every populated span. `sel` carries
/// the surviving row indexes of a filtered scan (empty = every row
/// survived); consumers must iterate sel when present — unselected rows
/// hold decoded but *filtered-out* data.
struct RecordBatch {
  std::uint32_t fields = scan_fields::kAll;  ///< which spans are populated
  std::size_t rows = 0;                      ///< span length (block row count)
  std::span<const std::uint32_t> sel;        ///< filtered selection; empty = all

  std::span<const std::int64_t> ts;          ///< first_packet, µs (always present)
  std::span<const std::int64_t> dur;         ///< last_packet − first_packet
  /// Global ServiceId per row, resolved against the catalog the block was
  /// *written* with. Present for v3 batches (it is a filter column), empty
  /// for row-format staging. Advisory: a consumer whose catalog may differ
  /// from the writer's must classify from l7 + the name dictionary instead.
  std::span<const std::uint8_t> service;
  std::span<const std::uint8_t> proto;       ///< TransportProto (always present)
  std::span<const std::uint8_t> access, l7, web, name_source;
  std::span<const std::uint8_t> flags;       ///< bit0 handshake, rest close_reason
  std::span<const std::uint16_t> cport, sport;
  std::span<const std::uint32_t> cip;
  std::span<const std::uint32_t> sip;        ///< always present (zone column)
  std::span<const std::uint64_t> up_pkts, up_bytes, up_hdr, up_retx, up_ooo;
  std::span<const std::uint64_t> dn_pkts, dn_bytes, dn_hdr, dn_retx, dn_ooo;
  std::span<const std::uint64_t> rtt_samples, http_status;
  /// Resolved RTT values (the on-disk delta/dense coding is a storage
  /// detail the batch contract hides). min/max are exact; avg is the exact
  /// double for row-format sources and the v3 writer's integer-quantized
  /// value for columnar ones — same as the row-callback path delivers.
  std::span<const std::int64_t> rtt_min_us, rtt_max_us;
  std::span<const double> rtt_avg_us;
  /// Dictionary-coded string columns: per-row dict indexes plus the block's
  /// dictionary as views. The views alias the producing scratch's blob /
  /// chain-cache buffers — same lifetime as the batch itself.
  std::span<const std::uint32_t> name_idx, ct_idx;
  std::span<const std::string_view> name_dict, ct_dict;

  [[nodiscard]] std::size_t delivered_rows() const noexcept {
    return sel.empty() ? rows : sel.size();
  }
  [[nodiscard]] bool empty() const noexcept { return delivered_rows() == 0; }

  /// Visit every delivered row index, in row (stream) order — the order the
  /// row-callback path emits, which aggregate identity depends on.
  template <typename Fn>
  void for_each_row(Fn&& fn) const {
    if (sel.empty()) {
      for (std::size_t i = 0; i < rows; ++i) fn(i);
    } else {
      for (const std::uint32_t i : sel) fn(static_cast<std::size_t>(i));
    }
  }
};

/// Transposes already-materialized FlowRecords (the v1/v2 row-format decode,
/// or any in-memory record stream) into a RecordBatch, interning server
/// names and content types into a dictionary so the batch contract is
/// identical to the columnar path's. Owns its columns; a finished batch
/// views them and stays valid until the next clear()/add().
///
/// The dictionary persists across clear() — hostnames repeat heavily from
/// block to block, so steady-state interning is one hash probe per row with
/// no string copy (entries live in deques: growth never moves them, which
/// is what keeps both the map's string_view keys and every previously
/// finished batch's dictionary views stable).
class BatchStaging {
 public:
  /// Forget the staged rows, keep the dictionaries and capacity.
  void clear();
  void add(const flow::FlowRecord& record);
  /// View the staged rows as a batch. `fields` is recorded as the batch's
  /// projection mask; staging always populates every span regardless.
  [[nodiscard]] RecordBatch finish(std::uint32_t fields = scan_fields::kAll);
  [[nodiscard]] std::size_t size() const noexcept { return ts_.size(); }

 private:
  [[nodiscard]] std::uint32_t intern(std::string_view s, std::deque<std::string>& entries,
                                     core::FlatHashMap<std::string_view, std::uint32_t,
                                                       core::StringHash>& codes,
                                     std::vector<std::string_view>& views);

  std::vector<std::int64_t> ts_, dur_, rtt_min_, rtt_max_;
  std::vector<double> rtt_avg_;
  std::vector<std::uint8_t> proto_, access_, flags_, l7_, web_, name_source_;
  std::vector<std::uint16_t> cport_, sport_;
  std::vector<std::uint32_t> cip_, sip_, name_idx_, ct_idx_;
  std::vector<std::uint64_t> up_pkts_, up_bytes_, up_hdr_, up_retx_, up_ooo_;
  std::vector<std::uint64_t> dn_pkts_, dn_bytes_, dn_hdr_, dn_retx_, dn_ooo_;
  std::vector<std::uint64_t> rtt_samples_, http_status_;
  std::deque<std::string> name_entries_, ct_entries_;
  core::FlatHashMap<std::string_view, std::uint32_t, core::StringHash> name_codes_, ct_codes_;
  std::vector<std::string_view> name_views_, ct_views_;
};

/// The batch→row compatibility shim: emit every delivered row of `batch`
/// through the one reused `rec`, exactly as the pre-batch columnar decoder
/// did — per-block value-initialization of unprojected fields, dict-index
/// change detection so a string is only re-assigned when the row's code
/// differs from the previous row's, rows in stream order, ingest_seq
/// always 0 (not stored in the lake). Counts what `fn` saw into
/// `records_delivered`.
void materialize_rows(const RecordBatch& batch, flow::FlowRecord& rec,
                      core::FunctionRef<void(const flow::FlowRecord&)> fn,
                      std::uint64_t& records_delivered);

/// Observability hook for the native batch delivery path: batches emitted,
/// rows-per-batch shape, and dict-code pass-through row count (rows whose
/// strings were never materialized). materialize_rows counts its own rows;
/// the pass-through/materialized pair is what `--stats` shows as the scan
/// shape.
void note_batch_delivered(const RecordBatch& batch);

}  // namespace edgewatch::exec
