// DN-Hunter (Bermudez et al., IMC'12; paper §2.1): associate flows with the
// hostname the client resolved via DNS right before opening them.
//
// For every DNS response observed, we record (client, server-address) →
// queried-name. When a later flow from that client to that server address
// carries no hostname of its own (no HTTP Host:, no TLS SNI), the probe
// labels it with the cached name. Entries expire with a configurable TTL
// and the per-client table is bounded with LRU eviction, as a probe serving
// tens of thousands of subscribers cannot keep unbounded state.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string_view>

#include "core/flat_hash_map.hpp"
#include "core/string_pool.hpp"
#include "core/time.hpp"
#include "core/types.hpp"
#include "dns/message.hpp"

namespace edgewatch::dns {

struct DnHunterConfig {
  std::size_t max_entries_per_client = 4096;
  std::int64_t entry_ttl_micros = 3'600 * core::Timestamp::kMicrosPerSecond;
};

class DnHunter {
 public:
  explicit DnHunter(DnHunterConfig config = {}) : config_(config) {}

  /// Ingest a parsed DNS response observed for `client`. CNAME chains are
  /// resolved: every A record in the answer maps back to the original
  /// question name (users asked for "netflix.com", not the CDN alias).
  void observe_response(core::IPv4Address client, const Message& msg, core::Timestamp now);

  /// Name the client resolved for `server`, if fresh. Refreshes LRU order.
  /// The view points into the hunter's interning pool and stays valid until
  /// clear() — no string is materialized on the per-flow hot path.
  [[nodiscard]] std::optional<std::string_view> lookup(core::IPv4Address client,
                                                       core::IPv4Address server,
                                                       core::Timestamp now);

  /// Total cached entries across clients (observability/testing).
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::size_t clients() const noexcept { return tables_.size(); }

  /// Drop every entry (e.g. on probe restart). Invalidates every view the
  /// hunter ever handed out — callers must flush dependent state first.
  void clear();

  /// Copy an external string into the hunter's interning pool and return
  /// the pooled view (used when restoring checkpointed flow hints whose
  /// backing pool did not survive the crash).
  [[nodiscard]] std::string_view intern_name(std::string_view name) { return pool_.intern(name); }

  struct Counters {
    std::uint64_t responses_ingested = 0;
    std::uint64_t entries_inserted = 0;
    std::uint64_t lru_evictions = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t expired = 0;
  };
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

  // Checkpoint/restore support. Entries are visited least-recently-used
  // first within each client, so replaying them through restore_entry (a
  // fresh insert at the LRU front) reproduces the eviction order exactly.
  void for_each_entry(
      const std::function<void(core::IPv4Address client, core::IPv4Address server,
                               std::string_view name, core::Timestamp inserted)>& fn) const;
  /// Reinsert a saved entry. Touches no counters; restore them separately.
  void restore_entry(core::IPv4Address client, core::IPv4Address server, std::string_view name,
                     core::Timestamp inserted);
  void restore_counters(const Counters& counters) noexcept { counters_ = counters; }

 private:
  struct Entry {
    std::string_view name;  ///< Interned in pool_; 16 bytes instead of a heap string.
    core::Timestamp inserted;
    std::list<core::IPv4Address>::iterator lru_pos;
  };
  struct ClientTable {
    core::FlatHashMap<core::IPv4Address, Entry, core::IPv4AddressHash> map;
    std::list<core::IPv4Address> lru;  ///< Front = most recent.
  };

  void insert(ClientTable& table, core::IPv4Address server, std::string_view name,
              core::Timestamp now);

  DnHunterConfig config_;
  core::FlatHashMap<core::IPv4Address, ClientTable, core::IPv4AddressHash> tables_;
  /// Owns every hostname the hunter has seen. DNS churn re-resolves the
  /// same names constantly, so deduplicated interning keeps this small even
  /// over long captures; it is released wholesale by clear().
  core::StringPool pool_;
  Counters counters_;
};

}  // namespace edgewatch::dns
