#include "dns/message.hpp"

#include <cctype>

namespace edgewatch::dns {

namespace {

constexpr std::size_t kMaxNameLength = 255;
constexpr int kMaxPointerHops = 16;  // loop protection

/// Decode a (possibly compressed) name starting at the reader's cursor.
/// Consumes exactly the in-place bytes of the name (pointers are followed
/// without moving the primary cursor past them).
std::optional<std::string> read_name(core::ByteReader& r) {
  std::string name;
  int hops = 0;
  // After the first pointer, continue on a secondary cursor.
  core::ByteReader follow = r;
  core::ByteReader* cur = &r;
  while (true) {
    const std::uint8_t len = cur->u8();
    if (!cur->ok()) return std::nullopt;
    if (len == 0) break;
    if ((len & 0xc0) == 0xc0) {
      const std::uint8_t lo = cur->u8();
      if (!cur->ok()) return std::nullopt;
      if (++hops > kMaxPointerHops) return std::nullopt;
      const std::size_t target = (static_cast<std::size_t>(len & 0x3f) << 8) | lo;
      if (cur == &r) {
        follow = r;  // capture the buffer; position set below
        cur = &follow;
      }
      // Pointers must go strictly backwards in well-formed messages; we only
      // require them to stay in-bounds and bound the hop count.
      cur->seek(target);
      continue;
    }
    if ((len & 0xc0) != 0) return std::nullopt;  // reserved label types
    const auto label = cur->string(len);
    if (!cur->ok()) return std::nullopt;
    if (!name.empty()) name.push_back('.');
    name.append(label);
    if (name.size() > kMaxNameLength) return std::nullopt;
  }
  return normalize_name(name);
}

void write_name(core::ByteWriter& w, std::string_view name) {
  std::size_t start = 0;
  while (start < name.size()) {
    auto dot = name.find('.', start);
    if (dot == std::string_view::npos) dot = name.size();
    const auto label = name.substr(start, dot - start);
    w.u8(static_cast<std::uint8_t>(label.size() < 64 ? label.size() : 63));
    w.string(label.substr(0, 63));
    start = dot + 1;
  }
  w.u8(0);
}

}  // namespace

std::string normalize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (!out.empty() && out.back() == '.') out.pop_back();
  return out;
}

std::optional<Message> parse(std::span<const std::byte> payload) {
  core::ByteReader r{payload};
  Message msg;
  msg.id = r.u16();
  const std::uint16_t flags = r.u16();
  msg.is_response = (flags & 0x8000) != 0;
  msg.rcode = static_cast<std::uint8_t>(flags & 0x000f);
  const std::uint16_t qdcount = r.u16();
  const std::uint16_t ancount = r.u16();
  r.skip(4);  // NSCOUNT + ARCOUNT (authority/additional sections ignored)
  if (!r.ok()) return std::nullopt;

  for (std::uint16_t i = 0; i < qdcount; ++i) {
    auto name = read_name(r);
    if (!name) return std::nullopt;
    Question q;
    q.name = std::move(*name);
    q.qtype = r.u16();
    q.qclass = r.u16();
    if (!r.ok()) return std::nullopt;
    msg.questions.push_back(std::move(q));
  }

  for (std::uint16_t i = 0; i < ancount; ++i) {
    auto name = read_name(r);
    if (!name) return std::nullopt;
    Answer a;
    a.name = std::move(*name);
    const std::uint16_t rtype = r.u16();
    r.skip(2);  // class
    a.ttl = r.u32();
    const std::uint16_t rdlength = r.u16();
    if (!r.ok()) return std::nullopt;
    switch (rtype) {
      case 1:
        if (rdlength != 4) return std::nullopt;
        a.type = RecordType::kA;
        a.address = core::IPv4Address{r.u32()};
        break;
      case 5: {
        a.type = RecordType::kCname;
        // RDATA is a (possibly compressed) name; bound the sub-read.
        const std::size_t end = r.position() + rdlength;
        auto cname = read_name(r);
        if (!cname) return std::nullopt;
        a.cname = std::move(*cname);
        if (r.position() > end) return std::nullopt;
        r.seek(end);
        break;
      }
      case 28:
        a.type = RecordType::kAaaa;
        r.skip(rdlength);
        break;
      default:
        a.type = RecordType::kOther;
        r.skip(rdlength);
        break;
    }
    if (!r.ok()) return std::nullopt;
    msg.answers.push_back(std::move(a));
  }
  return msg;
}

std::vector<std::byte> serialize(const Message& msg) {
  core::ByteWriter w{64};
  w.u16(msg.id);
  std::uint16_t flags = 0;
  if (msg.is_response) flags |= 0x8000;
  flags |= msg.rcode & 0x000f;
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(msg.questions.size()));
  w.u16(static_cast<std::uint16_t>(msg.answers.size()));
  w.u16(0);
  w.u16(0);
  for (const auto& q : msg.questions) {
    write_name(w, q.name);
    w.u16(q.qtype);
    w.u16(q.qclass);
  }
  for (const auto& a : msg.answers) {
    write_name(w, a.name);
    switch (a.type) {
      case RecordType::kA:
        w.u16(1);
        w.u16(1);
        w.u32(a.ttl);
        w.u16(4);
        w.u32(a.address.value());
        break;
      case RecordType::kCname: {
        w.u16(5);
        w.u16(1);
        w.u32(a.ttl);
        core::ByteWriter name;
        write_name(name, a.cname);
        w.u16(static_cast<std::uint16_t>(name.size()));
        w.bytes(name.view());
        break;
      }
      default:
        w.u16(0);
        w.u16(1);
        w.u32(a.ttl);
        w.u16(0);
        break;
    }
  }
  return std::move(w).take();
}

Message make_a_response(std::uint16_t id, std::string_view name,
                        std::span<const core::IPv4Address> addrs, std::uint32_t ttl) {
  Message msg;
  msg.id = id;
  msg.is_response = true;
  msg.questions.push_back({normalize_name(name), 1, 1});
  for (auto addr : addrs) {
    Answer a;
    a.name = normalize_name(name);
    a.type = RecordType::kA;
    a.ttl = ttl;
    a.address = addr;
    msg.answers.push_back(std::move(a));
  }
  return msg;
}

}  // namespace edgewatch::dns
