// DNS wire-format message parsing and serialization (RFC 1035 subset).
//
// The probe needs just enough DNS to run DN-Hunter (paper §2.1, ref [4]):
// observe responses on port 53, extract (queried name, answered A records,
// client address) triples, and remember them so later flows towards those
// addresses can be labeled with the name the client resolved. We parse the
// header, question section and answer section with full name-compression
// support (with loop protection), and serialize responses for the synthetic
// generator.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/bytes.hpp"
#include "core/types.hpp"

namespace edgewatch::dns {

enum class RecordType : std::uint16_t {
  kA = 1,
  kCname = 5,
  kAaaa = 28,
  kOther = 0,
};

struct Question {
  std::string name;  ///< Lower-cased, no trailing dot.
  std::uint16_t qtype = 1;
  std::uint16_t qclass = 1;
};

struct Answer {
  std::string name;
  RecordType type = RecordType::kOther;
  std::uint32_t ttl = 0;
  core::IPv4Address address;  ///< Valid iff type == kA.
  std::string cname;          ///< Valid iff type == kCname.
};

struct Message {
  std::uint16_t id = 0;
  bool is_response = false;
  std::uint8_t rcode = 0;
  std::vector<Question> questions;
  std::vector<Answer> answers;

  [[nodiscard]] bool ok_response() const noexcept { return is_response && rcode == 0; }
};

/// Parse a DNS message from a UDP payload. Returns nullopt on malformed
/// input (including compression-pointer loops). Unknown record types are
/// retained with type kOther and their RDATA skipped.
[[nodiscard]] std::optional<Message> parse(std::span<const std::byte> payload);

/// Serialize a response message. Names are emitted uncompressed; the parser
/// accepts both forms. Only A/CNAME answers are serializable (all the
/// synthetic generator needs).
[[nodiscard]] std::vector<std::byte> serialize(const Message& msg);

/// Build a minimal A-record response: `name` resolving to `addrs`.
[[nodiscard]] Message make_a_response(std::uint16_t id, std::string_view name,
                                      std::span<const core::IPv4Address> addrs,
                                      std::uint32_t ttl = 300);

/// Case-normalize a DNS name: lower-case, strip one trailing dot.
[[nodiscard]] std::string normalize_name(std::string_view name);

}  // namespace edgewatch::dns
