#include "dns/dnhunter.hpp"

namespace edgewatch::dns {

void DnHunter::observe_response(core::IPv4Address client, const Message& msg,
                                core::Timestamp now) {
  if (!msg.ok_response() || msg.questions.empty()) return;
  ++counters_.responses_ingested;
  const std::string& question = msg.questions.front().name;

  // Names reachable from the question through CNAME aliases.
  auto is_alias_of_question = [&](const std::string& name) {
    if (name == question) return true;
    // Walk the CNAME chain (answers are few; quadratic walk is fine).
    std::string current = question;
    for (std::size_t hop = 0; hop < msg.answers.size(); ++hop) {
      bool advanced = false;
      for (const auto& a : msg.answers) {
        if (a.type == RecordType::kCname && a.name == current) {
          current = a.cname;
          advanced = true;
          break;
        }
      }
      if (!advanced) break;
      if (current == name) return true;
    }
    return false;
  };

  auto& table = tables_[client];
  for (const auto& a : msg.answers) {
    if (a.type != RecordType::kA) continue;
    // Label with the *question* name when the record answers it (directly
    // or through CNAMEs); otherwise fall back to the record owner name.
    insert(table, a.address, is_alias_of_question(a.name) ? question : a.name, now);
  }
}

void DnHunter::insert(ClientTable& table, core::IPv4Address server, std::string_view name,
                      core::Timestamp now) {
  auto it = table.map.find(server);
  if (it != table.map.end()) {
    it->second.name = pool_.intern(name);
    it->second.inserted = now;
    table.lru.splice(table.lru.begin(), table.lru, it->second.lru_pos);
    return;
  }
  if (table.map.size() >= config_.max_entries_per_client) {
    const core::IPv4Address victim = table.lru.back();
    table.lru.pop_back();
    table.map.erase(victim);
    ++counters_.lru_evictions;
  }
  table.lru.push_front(server);
  table.map.emplace(server, Entry{pool_.intern(name), now, table.lru.begin()});
  ++counters_.entries_inserted;
}

std::optional<std::string_view> DnHunter::lookup(core::IPv4Address client,
                                                 core::IPv4Address server, core::Timestamp now) {
  auto table_it = tables_.find(client);
  if (table_it == tables_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  auto& table = table_it->second;
  auto it = table.map.find(server);
  if (it == table.map.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  if (now - it->second.inserted > config_.entry_ttl_micros) {
    table.lru.erase(it->second.lru_pos);
    table.map.erase(it);
    ++counters_.expired;
    ++counters_.misses;
    return std::nullopt;
  }
  table.lru.splice(table.lru.begin(), table.lru, it->second.lru_pos);
  ++counters_.hits;
  return it->second.name;
}

std::size_t DnHunter::size() const noexcept {
  std::size_t total = 0;
  for (const auto& [_, table] : tables_) total += table.map.size();
  return total;
}

void DnHunter::clear() {
  tables_.clear();
  pool_.clear();
}

void DnHunter::for_each_entry(
    const std::function<void(core::IPv4Address, core::IPv4Address, std::string_view,
                             core::Timestamp)>& fn) const {
  for (const auto& [client, table] : tables_) {
    // Back of the LRU list = least recent: replaying in this order through
    // restore_entry (front insertion) rebuilds the identical list.
    for (auto it = table.lru.rbegin(); it != table.lru.rend(); ++it) {
      const auto& entry = table.map.at(*it);
      fn(client, *it, entry.name, entry.inserted);
    }
  }
}

void DnHunter::restore_entry(core::IPv4Address client, core::IPv4Address server,
                             std::string_view name, core::Timestamp inserted) {
  auto& table = tables_[client];
  auto it = table.map.find(server);
  if (it != table.map.end()) {
    it->second.name = pool_.intern(name);
    it->second.inserted = inserted;
    table.lru.splice(table.lru.begin(), table.lru, it->second.lru_pos);
    return;
  }
  if (table.map.size() >= config_.max_entries_per_client) {
    const core::IPv4Address victim = table.lru.back();
    table.lru.pop_back();
    table.map.erase(victim);
  }
  table.lru.push_front(server);
  table.map.emplace(server, Entry{pool_.intern(name), inserted, table.lru.begin()});
}

}  // namespace edgewatch::dns
