#include "anon/anonymizer.hpp"

namespace edgewatch::anon {

std::uint32_t PrefixPreservingAnonymizer::pad_bits(std::uint32_t value) const noexcept {
  // For each prefix length i in [0, 32), derive one PRF bit from the i-bit
  // prefix of `value`. Bit i of the result flips bit i (MSB-first) of the
  // address. The PRF input encodes both the prefix bits and the length so
  // that e.g. prefix "0" and prefix "00" hash differently.
  std::uint32_t flips = 0;
  for (std::uint32_t i = 0; i < 32; ++i) {
    const std::uint32_t prefix = i == 0 ? 0 : (value >> (32 - i)) << (32 - i);
    const std::uint64_t input = (std::uint64_t{prefix} << 8) | i;
    const std::uint64_t prf = core::siphash24_value(key_, input);
    flips |= static_cast<std::uint32_t>(prf & 1) << (31 - i);
  }
  return flips;
}

core::IPv4Address PrefixPreservingAnonymizer::anonymize(core::IPv4Address a) const noexcept {
  return core::IPv4Address{a.value() ^ pad_bits(a.value())};
}

core::IPv4Address PrefixPreservingAnonymizer::deanonymize(core::IPv4Address a) const noexcept {
  // Invert bit by bit: once the first i original bits are known, the flip
  // bit for position i is computable, revealing original bit i.
  std::uint32_t original = 0;
  for (std::uint32_t i = 0; i < 32; ++i) {
    const std::uint32_t prefix = i == 0 ? 0 : (original >> (32 - i)) << (32 - i);
    const std::uint64_t input = (std::uint64_t{prefix} << 8) | i;
    const std::uint64_t prf = core::siphash24_value(key_, input);
    const std::uint32_t flip = static_cast<std::uint32_t>(prf & 1) << (31 - i);
    const std::uint32_t anon_bit = a.value() & (1u << (31 - i));
    original |= anon_bit ^ flip;
  }
  return core::IPv4Address{original};
}

}  // namespace edgewatch::anon
