// Consistent, prefix-preserving IP anonymization (paper §2.1: "Customers
// are assigned fixed IP addresses, that the probes immediately anonymize in
// a consistent way").
//
// We implement the CryptoPAn construction (Xu et al., 2002): bit i of the
// anonymized address is the original bit XORed with one pseudo-random bit
// derived from the i-bit prefix of the original address. This yields the
// unique prefix-preserving anonymization induced by the PRF: two addresses
// sharing a k-bit prefix map to addresses sharing exactly a k-bit prefix,
// so subnet-level analytics remain meaningful after anonymization. The PRF
// is the project SipHash-2-4 keyed with a 128-bit probe secret rather than
// the original's AES — equivalent for this (non-cryptographically-audited)
// purpose and dependency-free.
#pragma once

#include <cstdint>

#include "core/flat_hash_map.hpp"
#include "core/hash.hpp"
#include "core/types.hpp"

namespace edgewatch::anon {

class PrefixPreservingAnonymizer {
 public:
  explicit PrefixPreservingAnonymizer(core::SipKey key) noexcept : key_(key) {}

  /// Anonymize one address. Deterministic for a fixed key.
  [[nodiscard]] core::IPv4Address anonymize(core::IPv4Address a) const noexcept;

  /// Invert the anonymization (requires the key; used by tests and by the
  /// ISP's lawful re-identification path the paper alludes to).
  [[nodiscard]] core::IPv4Address deanonymize(core::IPv4Address a) const noexcept;

 private:
  [[nodiscard]] std::uint32_t pad_bits(std::uint32_t value) const noexcept;
  core::SipKey key_;
};

/// Policy wrapper used by the probe: anonymize only the customer side of a
/// flow (server addresses must stay real for CDN/ASN analytics, §6).
class CustomerAnonymizer {
 public:
  CustomerAnonymizer(core::SipKey key, core::IPv4Prefix customer_net) noexcept
      : impl_(key), customer_net_(customer_net) {}

  [[nodiscard]] bool is_customer(core::IPv4Address a) const noexcept {
    return customer_net_.contains(a);
  }

  /// Returns the anonymized address for customers, the input otherwise.
  /// The CryptoPAn walk costs 32 PRF calls and the same subscriber address
  /// recurs on every flow it opens, so the (key-determined, pure) mapping
  /// is memoized — caching cannot change any output.
  [[nodiscard]] core::IPv4Address apply(core::IPv4Address a) const {
    if (!is_customer(a)) return a;
    auto it = cache_.find(a);
    if (it != cache_.end()) return it->second;
    if (cache_.size() >= kCacheCap) cache_.clear();  // bound memory, keep correctness
    const core::IPv4Address mapped = impl_.anonymize(a);
    cache_.emplace(a, mapped);
    return mapped;
  }

  [[nodiscard]] const PrefixPreservingAnonymizer& impl() const noexcept { return impl_; }

 private:
  /// More distinct customer addresses than any real probe serves; if ever
  /// exceeded the memo is dropped and rebuilt, never grown unboundedly.
  static constexpr std::size_t kCacheCap = std::size_t{1} << 20;

  PrefixPreservingAnonymizer impl_;
  core::IPv4Prefix customer_net_;
  mutable core::FlatHashMap<core::IPv4Address, core::IPv4Address, core::IPv4AddressHash> cache_;
};

}  // namespace edgewatch::anon
