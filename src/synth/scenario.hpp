// A Scenario bundles everything the generator needs: the population, the
// per-service models, the probe-software timeline, the hour-of-day
// profiles, and the (synthetic) routing table. build_paper_scenario()
// constructs the scenario that encodes the paper's five years; tests and
// benches may build smaller custom scenarios.
#pragma once

#include <memory>
#include <vector>

#include "asn/lpm.hpp"
#include "synth/population.hpp"
#include "synth/service_model.hpp"

namespace edgewatch::synth {

struct Scenario {
  PopulationConfig population;
  std::vector<ServiceModel> services;  ///< Includes the "Other" catch-all.

  /// Hour-of-day start-time weights (24 entries each) for the beginning
  /// and the end of the study; interpolated in between. The 2017 profile
  /// has a fatter night (automatic updates, IoT) — the Fig. 4 effect.
  std::array<double, 24> hour_profile_2014{};
  std::array<double, 24> hour_profile_2017{};

  /// Probe upgrade dates (paper events C and F).
  core::CivilDate spdy_reported_from{2015, 6, 15};
  core::CivilDate fbzero_deployed{2016, 11, 10};

  /// Synthetic RIB covering every pool prefix (plus transit filler).
  std::shared_ptr<asn::Rib> rib;

  /// Probability that a present-but-inactive line still emits background
  /// chatter (gateway beacons, port scans answered...).
  double background_chance = 0.9;

  [[nodiscard]] const ServiceModel* find(services::ServiceId id) const noexcept {
    for (const auto& s : services) {
      if (s.id == id) return &s;
    }
    return nullptr;
  }
};

/// The scenario reproducing the paper (see DESIGN.md for the per-figure
/// parameter provenance). `scale` multiplies population and infrastructure
/// sizes (1.0 = the default laptop scale of ~900 lines, not the real ISP).
[[nodiscard]] Scenario build_paper_scenario(std::uint64_t seed = 1, double scale = 1.0);

}  // namespace edgewatch::synth
