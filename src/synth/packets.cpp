#include "synth/packets.hpp"

#include <algorithm>

#include "dns/message.hpp"
#include "dpi/parsers.hpp"

namespace edgewatch::synth {

namespace {

constexpr std::size_t kMss = 1400;

std::vector<std::byte> first_flight(const ConversationSpec& spec) {
  if (spec.p2p) {
    std::vector<std::byte> hash(20, std::byte{0x42});
    return dpi::build_bittorrent_handshake(hash);
  }
  switch (spec.web) {
    case dpi::WebProtocol::kHttp:
      return dpi::build_http_request(spec.server_name);
    case dpi::WebProtocol::kQuic:
      return dpi::build_quic_client_packet(0xA0B0C0D0E0F01122ull);
    case dpi::WebProtocol::kFbZero:
      return dpi::build_fbzero_hello(spec.server_name);
    case dpi::WebProtocol::kSpdy: {
      const std::string alpn[] = {spec.alpn.empty() ? std::string{"spdy/3.1"} : spec.alpn};
      return dpi::build_client_hello(spec.server_name, alpn);
    }
    case dpi::WebProtocol::kHttp2: {
      const std::string alpn[] = {spec.alpn.empty() ? std::string{"h2"} : spec.alpn};
      return dpi::build_client_hello(spec.server_name, alpn);
    }
    default: {
      if (spec.alpn.empty()) return dpi::build_client_hello(spec.server_name, {});
      const std::string alpn[] = {spec.alpn};
      return dpi::build_client_hello(spec.server_name, alpn);
    }
  }
}

}  // namespace

std::vector<net::Frame> render_conversation(const ConversationSpec& spec) {
  std::vector<net::Frame> frames;
  const std::size_t response =
      std::min(spec.response_bytes, ConversationSpec::kMaxRenderedBytes);
  auto payload = first_flight(spec);

  if (spec.web == dpi::WebProtocol::kQuic) {
    // UDP: client hello packet, then server data chunks.
    frames.push_back(net::PacketBuilder{}
                         .ts(spec.start)
                         .ip(spec.client, spec.server)
                         .udp(spec.client_port, spec.server_port)
                         .payload(std::move(payload))
                         .build());
    core::Timestamp t = spec.start + spec.rtt_us;
    for (std::size_t sent = 0; sent < response; sent += kMss) {
      const std::size_t n = std::min(kMss, response - sent);
      frames.push_back(net::PacketBuilder{}
                           .ts(t)
                           .ip(spec.server, spec.client)
                           .udp(spec.server_port, spec.client_port)
                           .payload(std::vector<std::byte>(n, std::byte{0x6b}))
                           .build());
      t = t + 500;
    }
    return frames;
  }

  // TCP path.
  std::uint32_t cseq = 1000;
  std::uint32_t sseq = 77000;
  auto client_pkt = [&](core::Timestamp at, std::uint8_t flags,
                        std::vector<std::byte> data = {}) {
    frames.push_back(net::PacketBuilder{}
                         .ts(at)
                         .ip(spec.client, spec.server)
                         .tcp(spec.client_port, spec.server_port, cseq, sseq, flags)
                         .payload(std::move(data))
                         .build());
  };
  auto server_pkt_acking = [&](core::Timestamp at, std::uint8_t flags, std::uint32_t ack,
                               std::size_t bytes = 0) {
    frames.push_back(net::PacketBuilder{}
                         .ts(at)
                         .ip(spec.server, spec.client)
                         .tcp(spec.server_port, spec.client_port, sseq, ack, flags)
                         .payload(std::vector<std::byte>(bytes, std::byte{0x6b}))
                         .build());
  };
  auto server_pkt = [&](core::Timestamp at, std::uint8_t flags, std::size_t bytes = 0) {
    server_pkt_acking(at, flags, cseq, bytes);
  };
  using net::TcpFlags;

  client_pkt(spec.start, TcpFlags::kSyn);
  cseq += 1;
  server_pkt(spec.start + spec.rtt_us, TcpFlags::kSyn | TcpFlags::kAck);
  sseq += 1;
  client_pkt(spec.start + spec.rtt_us + 200, TcpFlags::kAck);

  const auto req_len = static_cast<std::uint32_t>(payload.size());
  client_pkt(spec.start + spec.rtt_us + 400, TcpFlags::kAck | TcpFlags::kPsh,
             std::move(payload));
  cseq += req_len;
  // ACK of the request arrives one RTT after it was sent (RTT sample).
  server_pkt_acking(spec.start + 2 * spec.rtt_us + 400, TcpFlags::kAck, cseq);
  core::Timestamp last_client_event = spec.start + 2 * spec.rtt_us + 400;
  if (spec.request_extra_bytes > 0) {
    // Each extra upload segment is acknowledged one RTT after it leaves —
    // exactly what a live server does, and what keeps the probe's RTT
    // samples honest.
    const auto extra = std::min(spec.request_extra_bytes,
                                ConversationSpec::kMaxRenderedBytes);
    for (std::size_t sent = 0; sent < extra; sent += kMss) {
      const std::size_t n = std::min(kMss, extra - sent);
      const core::Timestamp sent_at =
          spec.start + spec.rtt_us + 600 + static_cast<std::int64_t>(sent / kMss) * 300;
      client_pkt(sent_at, TcpFlags::kAck, std::vector<std::byte>(n, std::byte{0x55}));
      cseq += static_cast<std::uint32_t>(n);
      server_pkt_acking(sent_at + spec.rtt_us, TcpFlags::kAck, cseq);
      if (sent_at + spec.rtt_us > last_client_event) {
        last_client_event = sent_at + spec.rtt_us;
      }
    }
  }

  core::Timestamp t = last_client_event;
  if (!spec.server_alpn.empty() && !spec.p2p) {
    // The negotiation response: a ServerHello selecting one ALPN value.
    auto hello = dpi::build_server_hello(spec.server_alpn);
    const auto n = static_cast<std::uint32_t>(hello.size());
    t = t + 300;
    frames.push_back(net::PacketBuilder{}
                         .ts(t)
                         .ip(spec.server, spec.client)
                         .tcp(spec.server_port, spec.client_port, sseq, cseq, TcpFlags::kAck)
                         .payload(std::move(hello))
                         .build());
    sseq += n;
  }
  for (std::size_t sent = 0; sent < response; sent += kMss) {
    const std::size_t n = std::min(kMss, response - sent);
    t = t + 400;
    server_pkt(t, TcpFlags::kAck | (sent + n >= response ? TcpFlags::kPsh : 0), n);
    sseq += static_cast<std::uint32_t>(n);
  }
  t = t + 300;
  client_pkt(t, TcpFlags::kAck);

  if (spec.teardown) {
    client_pkt(t + 500, TcpFlags::kFin | TcpFlags::kAck);
    cseq += 1;
    server_pkt(t + 500 + spec.rtt_us, TcpFlags::kFin | TcpFlags::kAck);
    sseq += 1;
    client_pkt(t + 700 + spec.rtt_us, TcpFlags::kAck);
  }
  // Upload segments and their ACKs were emitted pairwise; restore global
  // capture order.
  std::stable_sort(frames.begin(), frames.end(),
                   [](const net::Frame& a, const net::Frame& b) {
                     return a.timestamp < b.timestamp;
                   });
  return frames;
}

net::Frame render_dns_response(core::IPv4Address client, core::IPv4Address resolver,
                               std::string_view name,
                               std::span<const core::IPv4Address> addrs, core::Timestamp at,
                               std::uint16_t client_port) {
  const auto msg = dns::make_a_response(0x2b2b, name, addrs);
  return net::PacketBuilder{}
      .ts(at)
      .ip(resolver, client)
      .udp(53, client_port)
      .payload(dns::serialize(msg))
      .build();
}

}  // namespace edgewatch::synth
