// Piecewise-linear time curves: the language the scenario uses to encode
// the paper's trends ("ADSL download grows 300→700 MB between 2013 and
// 2017", "QUIC share drops to zero in December 2015 and comes back a month
// later"). Points are (civil date, value); evaluation clamps outside the
// covered range. Sudden events are encoded by placing two points one day
// apart.
#pragma once

#include <initializer_list>
#include <vector>

#include "core/time.hpp"

namespace edgewatch::synth {

class Curve {
 public:
  struct Point {
    core::CivilDate date;
    double value = 0;
  };

  Curve() = default;
  /// Constant curve.
  explicit Curve(double constant)
      : points_{{core::CivilDate{1970, 1, 1}, constant}} {}
  Curve(std::initializer_list<Point> points) : points_(points) { normalize(); }

  /// Build from runtime data (e.g. auto-calibrated remainder curves).
  [[nodiscard]] static Curve from_points(std::vector<Point> points) {
    Curve c;
    c.points_ = std::move(points);
    c.normalize();
    return c;
  }

  [[nodiscard]] double at(core::CivilDate date) const noexcept {
    return at_day(core::days_from_civil(date));
  }
  [[nodiscard]] double at_day(std::int64_t day) const noexcept;

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

 private:
  void normalize();
  std::vector<Point> points_;  // sorted by date
};

}  // namespace edgewatch::synth
