// The subscriber population of the two monitored PoPs (paper §2.1:
// >10000 ADSL and 5000 FTTH lines; steady ADSL churn and FTTH growth over
// the 5 years). Scaled down by default so laptop runs finish in seconds —
// the analytics normalize per active subscriber, so scale cancels out.
//
// Every subscriber attribute is derived deterministically from (seed,
// line index) so population generation is order-independent and two runs
// of the same scenario agree bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/time.hpp"
#include "core/types.hpp"
#include "flow/record.hpp"

namespace edgewatch::synth {

struct PopulationConfig {
  std::size_t adsl_lines = 600;
  std::size_t ftth_lines = 300;
  std::uint64_t seed = 1;
  core::CivilDate start{2013, 3, 1};
  core::CivilDate end{2017, 10, 1};
  /// Fraction of ADSL lines that churn away across the whole window.
  double adsl_churn = 0.25;
  /// Fraction of FTTH lines not yet installed at the window start (they
  /// join progressively — technology upgrades).
  double ftth_rampup = 0.45;
};

struct Subscriber {
  std::uint32_t line = 0;
  core::IPv4Address ip;  ///< Real (pre-anonymization) address of the line.
  flow::AccessTech access = flow::AccessTech::kAdsl;
  std::int64_t join_day = 0;   ///< First day the line exists.
  std::int64_t leave_day = 0;  ///< First day it no longer does.
  /// Multiplicative traffic appetite (lognormal, median 1): who the heavy
  /// users are.
  double appetite = 1.0;
  /// Uniform [0,1) adopter rank: low = early adopter of new services.
  double adopter_rank = 0.5;
  /// Propensity to be active on any given day (paper: ~80% on average).
  double activity = 0.8;

  [[nodiscard]] bool present_on(std::int64_t day) const noexcept {
    return day >= join_day && day < leave_day;
  }
};

class SubscriberPopulation {
 public:
  explicit SubscriberPopulation(PopulationConfig config);

  [[nodiscard]] const std::vector<Subscriber>& lines() const noexcept { return lines_; }
  [[nodiscard]] const PopulationConfig& config() const noexcept { return config_; }

  /// Lines present on a day (both techs).
  [[nodiscard]] std::size_t present_on(std::int64_t day) const noexcept;
  [[nodiscard]] std::size_t present_on(std::int64_t day, flow::AccessTech tech) const noexcept;

  /// ADSL lines live in 10.0.0.0/9, FTTH in 10.128.0.0/9 (matches the
  /// probe's default ProbeConfig prefixes).
  [[nodiscard]] static core::IPv4Address line_address(flow::AccessTech tech,
                                                      std::uint32_t line) noexcept {
    const std::uint32_t base =
        tech == flow::AccessTech::kFtth ? 0x0A800000u : 0x0A000000u;  // 10.128/9 : 10.0/9
    return core::IPv4Address{base + 0x100u + line};
  }

 private:
  PopulationConfig config_;
  std::vector<Subscriber> lines_;
};

}  // namespace edgewatch::synth
