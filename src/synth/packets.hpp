// Packet-level rendering of synthetic conversations: turns flow intents
// into valid frame sequences (handshake, DPI-visible first flight, data,
// teardown) so the probe can be exercised end-to-end exactly as it would
// be on a live tap. Used by the quickstart example, the probe throughput
// bench and the integration tests.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"
#include "dpi/classifier.hpp"
#include "net/packet.hpp"

namespace edgewatch::synth {

struct ConversationSpec {
  core::IPv4Address client;
  core::IPv4Address server;
  std::uint16_t client_port = 40000;
  std::uint16_t server_port = 443;
  dpi::WebProtocol web = dpi::WebProtocol::kTls;  ///< Chooses the first flight.
  /// kNotWeb + p2p=true renders a BitTorrent handshake instead.
  bool p2p = false;
  std::string server_name;           ///< SNI / Host / FB-Zero name.
  std::string alpn;                  ///< e.g. "h2", "spdy/3.1" (TLS flavours).
  /// Negotiated ALPN: when set (TLS-family flows), the server's first
  /// payload is a ServerHello selecting it.
  std::string server_alpn;
  std::size_t response_bytes = 4000; ///< Server payload to stream back.
  std::size_t request_extra_bytes = 0;
  core::Timestamp start;
  std::int64_t rtt_us = 20'000;      ///< Probe→server round trip.
  bool teardown = true;              ///< FIN exchange at the end.

  /// Cap on rendered server payload (frames get chunked by MSS; huge flows
  /// would dominate memory without adding probe-path coverage).
  static constexpr std::size_t kMaxRenderedBytes = 256 * 1024;
};

/// Render the conversation as time-ordered frames.
[[nodiscard]] std::vector<net::Frame> render_conversation(const ConversationSpec& spec);

/// One DNS response frame (resolver → client) announcing `name -> addrs`.
[[nodiscard]] net::Frame render_dns_response(core::IPv4Address client,
                                             core::IPv4Address resolver, std::string_view name,
                                             std::span<const core::IPv4Address> addrs,
                                             core::Timestamp at, std::uint16_t client_port = 40053);

}  // namespace edgewatch::synth
