#include "synth/generator.hpp"

#include <algorithm>
#include <cmath>

#include "core/hash.hpp"

namespace edgewatch::synth {

namespace {

constexpr double kMB = 1e6;

/// Mean-preserving lognormal factor: E[factor] == 1 for any sigma.
double lognormal_factor(core::Xoshiro256& rng, double sigma) {
  return std::exp(core::normal(rng) * sigma - sigma * sigma / 2.0);
}

/// Deterministic pool slot address: slot s of pool `key` is always the
/// same address, so day-over-day stability and cross-service sharing both
/// hold (see ServerPool::key).
core::IPv4Address pool_address(const ServerPool& pool, std::uint64_t slot) {
  const std::uint64_t h = core::mix64(core::fnv1a64(pool.key), slot);
  const std::uint64_t span = pool.prefix.size();
  return core::IPv4Address{pool.prefix.base().value() +
                           static_cast<std::uint32_t>(h % (span ? span : 1))};
}

bool is_holiday_peak(core::CivilDate d) {
  return (d.month == 12 && (d.day == 24 || d.day == 25 || d.day == 31)) ||
         (d.month == 1 && d.day == 1);
}

struct ProtocolChoice {
  dpi::WebProtocol web = dpi::WebProtocol::kNotWeb;
  dpi::L7Protocol l7 = dpi::L7Protocol::kUnknown;
  core::TransportProto transport = core::TransportProto::kTcp;
  std::uint16_t port = 443;
  flow::NameSource name_source = flow::NameSource::kNone;
};

ProtocolChoice web_choice(dpi::WebProtocol web) {
  ProtocolChoice c;
  c.web = web;
  switch (web) {
    case dpi::WebProtocol::kHttp:
      c.l7 = dpi::L7Protocol::kHttp;
      c.port = 80;
      c.name_source = flow::NameSource::kHttpHost;
      break;
    case dpi::WebProtocol::kQuic:
      c.l7 = dpi::L7Protocol::kQuic;
      c.transport = core::TransportProto::kUdp;
      c.name_source = flow::NameSource::kDnsHunter;
      break;
    case dpi::WebProtocol::kFbZero:
      c.l7 = dpi::L7Protocol::kFbZero;
      c.name_source = flow::NameSource::kFbZero;
      break;
    default:  // TLS, SPDY, HTTP/2 all ride the TLS record layer
      c.l7 = dpi::L7Protocol::kTls;
      c.name_source = flow::NameSource::kTlsSni;
      break;
  }
  return c;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(Scenario scenario)
    : scenario_(std::move(scenario)), population_(scenario_.population) {}

std::vector<flow::FlowRecord> WorkloadGenerator::day_records(core::CivilDate date) const {
  std::vector<flow::FlowRecord> out;
  generate_day(date, [&out](flow::FlowRecord&& r) { out.push_back(std::move(r)); });
  return out;
}

analytics::DayAggregate WorkloadGenerator::day_aggregate(core::CivilDate date) const {
  analytics::DayAggregator agg{date};
  generate_day(date, [&agg](flow::FlowRecord&& r) { agg.add(r); });
  return std::move(agg).take();
}

void WorkloadGenerator::generate_day(core::CivilDate date, const Sink& sink) const {
  const std::int64_t day = core::days_from_civil(date);

  // ---- per-day contexts -------------------------------------------------
  std::vector<ServiceCtx> contexts;
  contexts.reserve(scenario_.services.size());
  for (const auto& model : scenario_.services) {
    ServiceCtx ctx;
    ctx.model = &model;
    for (int t = 0; t < 2; ++t) {
      ctx.popularity[static_cast<std::size_t>(t)] =
          model.popularity[static_cast<std::size_t>(t)].at(date);
      ctx.mean_down_mb[static_cast<std::size_t>(t)] =
          model.mb_down[static_cast<std::size_t>(t)].at(date);
      ctx.mean_up_mb[static_cast<std::size_t>(t)] =
          model.mb_up[static_cast<std::size_t>(t)].at(date);
    }
    for (const auto& pool : model.pools) {
      PoolCtx pc;
      pc.pool = &pool;
      pc.weight = std::max(0.0, pool.share.at(date));
      pc.ip_count = static_cast<std::uint64_t>(std::max(1.0, pool.daily_ips.at(date)));
      if (pc.weight > 0 && pool.daily_ips.at(date) >= 0.5) ctx.pools.push_back(pc);
    }
    for (std::size_t p = 0; p < ctx.protocol_weights.size(); ++p) {
      ctx.protocol_weights[p] = std::max(0.0, model.protocol[p].at(date));
    }
    // Event C: before the probe upgrade SPDY is folded into generic TLS.
    if (date < scenario_.spdy_reported_from) {
      ctx.protocol_weights[static_cast<std::size_t>(dpi::WebProtocol::kTls)] +=
          ctx.protocol_weights[static_cast<std::size_t>(dpi::WebProtocol::kSpdy)];
      ctx.protocol_weights[static_cast<std::size_t>(dpi::WebProtocol::kSpdy)] = 0;
    }
    const double w = model.appetite_weight;
    ctx.appetite_norm = std::exp(w * w * 0.9 * 0.9 / 2.0);  // sigma of appetites
    contexts.push_back(std::move(ctx));
  }

  // ---- hour-of-day profile ----------------------------------------------
  const double t2014 = static_cast<double>(core::days_from_civil({2014, 1, 1}));
  const double t2017 = static_cast<double>(core::days_from_civil({2017, 1, 1}));
  const double frac =
      std::clamp((static_cast<double>(day) - t2014) / (t2017 - t2014), 0.0, 1.0);
  std::array<double, 24> hour_weights{};
  for (std::size_t h = 0; h < 24; ++h) {
    hour_weights[h] = scenario_.hour_profile_2014[h] +
                      frac * (scenario_.hour_profile_2017[h] - scenario_.hour_profile_2014[h]);
  }

  // ---- per-line generation ----------------------------------------------
  for (const auto& line : population_.lines()) {
    if (!line.present_on(day)) continue;
    core::Xoshiro256 rng{core::mix64(scenario_.population.seed ^ 0x5eedc0deull,
                                     static_cast<std::uint64_t>(day),
                                     (static_cast<std::uint64_t>(line.access) << 32) |
                                         line.line)};
    if (!core::chance(rng, line.activity)) {
      if (core::chance(rng, scenario_.background_chance)) {
        emit_background(rng, line, date, hour_weights, sink);
      }
      continue;
    }

    // Bimodal day type (Fig. 2): ~12% of subscriber-days are bulk days.
    const bool heavy_day = core::chance(rng, 0.12);
    const double day_factor = heavy_day ? 4.2 : (1.0 - 0.12 * 4.2) / (1.0 - 0.12);

    for (const auto& ctx : contexts) {
      emit_service_day(rng, line, ctx, date, day, day_factor, hour_weights, sink);
    }
  }
}

void WorkloadGenerator::emit_service_day(core::Xoshiro256& rng, const Subscriber& line,
                                         const ServiceCtx& ctx, core::CivilDate date,
                                         std::int64_t day, double day_factor,
                                         std::span<const double> hour_weights,
                                         const Sink& sink) const {
  const auto tech = static_cast<std::size_t>(line.access);
  const double pop = ctx.popularity[tech];
  if (pop <= 0) return;

  // Persistent adopters: popularity changes move the adoption frontier,
  // so the *same* subscribers keep using a service day over day.
  const double adoption = std::min(1.0, pop * ctx.model->adoption_spread);
  if (line.adopter_rank >= adoption) return;
  if (!core::chance(rng, pop / adoption)) return;

  const ServiceModel& model = *ctx.model;
  double mean_down = ctx.mean_down_mb[tech];
  double mean_up = ctx.mean_up_mb[tech];
  if (mean_down <= 0 && mean_up <= 0) return;

  if (model.holiday_peaks && is_holiday_peak(date)) {
    mean_down *= 4.0;
    mean_up *= 4.0;
  }
  if (model.summer_dip && (date.month == 7 || date.month == 8) &&
      line.access == flow::AccessTech::kFtth) {
    mean_down *= 0.72;
    mean_up *= 0.72;
  }

  const double appetite_term =
      std::pow(line.appetite, model.appetite_weight) / ctx.appetite_norm;
  double factor = lognormal_factor(rng, model.volume_sigma) * appetite_term;
  if (model.bimodal_days) factor *= day_factor;

  const double down_mb = mean_down * factor;
  const double up_mb = mean_up * factor * (0.8 + 0.4 * core::uniform01(rng));

  const double expected_flows = model.base_flows + model.flows_per_mb * down_mb;
  const std::uint32_t n_flows =
      std::clamp<std::uint32_t>(1 + core::poisson(rng, expected_flows), 1, 400);

  // Split the volume over flows with exponential weights.
  double weight_sum = 0;
  std::array<double, 400> weights;
  for (std::uint32_t i = 0; i < n_flows; ++i) {
    weights[i] = core::exponential(rng, 1.0);
    weight_sum += weights[i];
  }

  for (std::uint32_t i = 0; i < n_flows; ++i) {
    const double share = weights[i] / weight_sum;
    flow::FlowRecord r;
    r.client_ip = line.ip;
    r.access = line.access;
    r.client_port = static_cast<std::uint16_t>(32768 + core::uniform_below(rng, 28000));

    // Volumes.
    const auto down_bytes = static_cast<std::uint64_t>(down_mb * share * kMB);
    const auto up_bytes = static_cast<std::uint64_t>(up_mb * share * kMB);
    r.down.bytes = down_bytes;
    r.down.packets = down_bytes / 1400 + 1;
    r.down.bytes_with_hdr = down_bytes + 40 * r.down.packets;
    r.up.bytes = up_bytes;
    r.up.packets = up_bytes / 700 + 2;
    r.up.bytes_with_hdr = up_bytes + 40 * r.up.packets;

    // Protocol.
    ProtocolChoice choice;
    if (model.is_p2p) {
      const double u = core::uniform01(rng);
      choice.l7 = u < 0.75 ? dpi::L7Protocol::kBittorrent
                 : u < 0.92 ? dpi::L7Protocol::kEdonkey
                            : dpi::L7Protocol::kDht;
      choice.transport = choice.l7 == dpi::L7Protocol::kDht ? core::TransportProto::kUdp
                                                            : core::TransportProto::kTcp;
      choice.port = choice.l7 == dpi::L7Protocol::kEdonkey ? 4662 : 6881;
      choice.web = dpi::WebProtocol::kNotWeb;
    } else {
      const auto pick = core::weighted_pick(rng, ctx.protocol_weights);
      choice = web_choice(static_cast<dpi::WebProtocol>(pick));
      if (choice.web == dpi::WebProtocol::kNotWeb) {
        // Degenerate weights (all zero): treat as plain TLS.
        choice = web_choice(dpi::WebProtocol::kTls);
      }
    }
    r.proto = choice.transport;
    r.server_port = choice.port;
    r.l7 = choice.l7;
    r.web = choice.web;
    r.name_source = choice.name_source;
    if (choice.l7 == dpi::L7Protocol::kHttp) {
      const double u = core::uniform01(rng);
      r.http_status = u < 0.90 ? 200 : u < 0.96 ? 206 : u < 0.99 ? 304 : 404;
      switch (services::ServiceCatalog::standard().info(model.id).category) {
        case services::ServiceCategory::kVideo:
          r.content_type = "video/mp4";
          break;
        case services::ServiceCategory::kSocial:
          r.content_type = "image/jpeg";
          break;
        default:
          r.content_type = "text/html";
          break;
      }
    }

    // Server selection.
    double path_rtt_ms = 30.0;
    if (model.is_p2p) {
      // Random remote peers spread across the Internet.
      r.server_ip = core::IPv4Address{static_cast<std::uint32_t>(
          0x20000000u + core::uniform_below(rng, 0xB0000000u))};
      r.server_port = static_cast<std::uint16_t>(1024 + core::uniform_below(rng, 60000));
      path_rtt_ms = 20.0 + 180.0 * core::uniform01(rng);
      r.rtt.add(static_cast<std::int64_t>(path_rtt_ms * 1000.0));
    } else if (!ctx.pools.empty()) {
      std::array<double, 16> pool_weights{};
      const std::size_t n_pools = std::min<std::size_t>(ctx.pools.size(), 16);
      for (std::size_t p = 0; p < n_pools; ++p) pool_weights[p] = ctx.pools[p].weight;
      const auto pick =
          core::weighted_pick(rng, std::span{pool_weights}.first(n_pools));
      const PoolCtx& pc = ctx.pools[pick];
      const std::uint64_t slot = core::uniform_below(rng, pc.ip_count);
      r.server_ip = pool_address(*pc.pool, slot);
      // Hostname label: a single letter, like the real fbstatic-a ..
      // fbstatic-z Akamai names (Table 1's regex expects exactly that).
      r.server_name = pc.pool->host_prefix + static_cast<char>('a' + slot % 26) + "." +
                      pc.pool->domain;
      const double rtt_ms =
          pc.pool->rtt_ms * (0.92 + 0.18 * core::uniform01(rng)) +
          core::exponential(rng, 0.15);
      path_rtt_ms = rtt_ms;
      const auto n_samples = std::clamp<std::uint32_t>(
          static_cast<std::uint32_t>(r.up.packets / 3), 1, 12);
      for (std::uint32_t s = 0; s < n_samples; ++s) {
        r.rtt.add(static_cast<std::int64_t>(
            rtt_ms * 1000.0 * (1.0 + 0.4 * core::uniform01(rng) * (s > 0))));
      }
    }

    // Timing.
    const auto hour = static_cast<int>(core::weighted_pick(rng, hour_weights));
    const auto minute = static_cast<int>(core::uniform_below(rng, 60));
    const auto second = static_cast<int>(core::uniform_below(rng, 60));
    r.first_packet = core::Timestamp::from_date_time(date, hour, minute, second,
                                                     static_cast<int>(core::uniform_below(rng, 1'000'000)));
    const double rate_mbps = line.access == flow::AccessTech::kFtth ? 12.0 : 2.5;
    const double secs = std::clamp(
        (down_mb * share) * 8.0 / rate_mbps + core::exponential(rng, 2.0), 0.05, 4.0 * 3600);
    r.last_packet = r.first_packet + static_cast<std::int64_t>(secs * 1e6);

    // TCP lifecycle.
    if (r.proto == core::TransportProto::kTcp) {
      r.handshake_completed = true;
      const double u = core::uniform01(rng);
      r.close_reason = u < 0.85 ? flow::FlowCloseReason::kTcpTeardown
                      : u < 0.95 ? flow::FlowCloseReason::kIdleTimeout
                                 : flow::FlowCloseReason::kTcpReset;
      // Loss grows with path length: in-PoP caches barely retransmit,
      // intercontinental paths do (feeds the TCP-health analytics).
      const double loss = 0.0006 * (1.0 + path_rtt_ms / 30.0);
      r.down.retransmits = core::poisson(rng, static_cast<double>(r.down.packets) * loss);
      r.up.retransmits =
          core::poisson(rng, static_cast<double>(r.up.packets) * loss * 0.5);
      r.down.out_of_order =
          core::poisson(rng, static_cast<double>(r.down.packets) * loss * 0.3);
    } else {
      r.close_reason = flow::FlowCloseReason::kIdleTimeout;
    }

    (void)day;
    sink(std::move(r));
  }
}

void WorkloadGenerator::emit_background(core::Xoshiro256& rng, const Subscriber& line,
                                        core::CivilDate date,
                                        std::span<const double> hour_weights,
                                        const Sink& sink) const {
  // Idle-home chatter: a handful of tiny flows that must NOT pass the §3
  // activity criterion (fewer than 10 flows, under 15 kB down / 5 kB up).
  const auto n = static_cast<std::uint32_t>(2 + core::uniform_below(rng, 4));
  for (std::uint32_t i = 0; i < n; ++i) {
    flow::FlowRecord r;
    r.client_ip = line.ip;
    r.access = line.access;
    r.client_port = static_cast<std::uint16_t>(32768 + core::uniform_below(rng, 28000));
    r.server_ip = core::IPv4Address{static_cast<std::uint32_t>(
        0x08080000u + core::uniform_below(rng, 65536))};
    r.server_port = core::chance(rng, 0.5) ? 443 : 123;
    r.proto = core::chance(rng, 0.6) ? core::TransportProto::kUdp
                                     : core::TransportProto::kTcp;
    r.down.bytes = 200 + core::uniform_below(rng, 2500);
    r.down.packets = 2;
    r.down.bytes_with_hdr = r.down.bytes + 80;
    r.up.bytes = 100 + core::uniform_below(rng, 600);
    r.up.packets = 2;
    r.up.bytes_with_hdr = r.up.bytes + 80;
    const auto hour = static_cast<int>(core::weighted_pick(rng, hour_weights));
    r.first_packet = core::Timestamp::from_date_time(
        date, hour, static_cast<int>(core::uniform_below(rng, 60)));
    r.last_packet = r.first_packet + 5'000'000;
    r.close_reason = flow::FlowCloseReason::kIdleTimeout;
    sink(std::move(r));
  }
}

}  // namespace edgewatch::synth
