#include "synth/curve.hpp"

#include <algorithm>

namespace edgewatch::synth {

void Curve::normalize() {
  std::stable_sort(points_.begin(), points_.end(),
                   [](const Point& a, const Point& b) { return a.date < b.date; });
}

double Curve::at_day(std::int64_t day) const noexcept {
  if (points_.empty()) return 0.0;
  const std::int64_t first = core::days_from_civil(points_.front().date);
  if (day <= first) return points_.front().value;
  const std::int64_t last = core::days_from_civil(points_.back().date);
  if (day >= last) return points_.back().value;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const std::int64_t hi = core::days_from_civil(points_[i].date);
    if (day > hi) continue;
    const std::int64_t lo = core::days_from_civil(points_[i - 1].date);
    if (hi == lo) return points_[i].value;
    const double t = static_cast<double>(day - lo) / static_cast<double>(hi - lo);
    return points_[i - 1].value + t * (points_[i].value - points_[i - 1].value);
  }
  return points_.back().value;
}

}  // namespace edgewatch::synth
