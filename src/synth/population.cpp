#include "synth/population.hpp"

#include <cmath>

namespace edgewatch::synth {

SubscriberPopulation::SubscriberPopulation(PopulationConfig config) : config_(config) {
  const std::int64_t start = core::days_from_civil(config_.start);
  const std::int64_t end = core::days_from_civil(config_.end);
  const std::int64_t span = end - start;
  lines_.reserve(config_.adsl_lines + config_.ftth_lines);

  auto make_line = [&](flow::AccessTech tech, std::uint32_t index) {
    core::Xoshiro256 rng{core::mix64(config_.seed, static_cast<std::uint64_t>(tech) + 100,
                                     index)};
    Subscriber sub;
    sub.line = index;
    sub.access = tech;
    sub.ip = line_address(tech, index);
    // Heavy-tail appetites: a minority of lines moves tens of GB per day
    // (the Fig. 2 heavy-usage tail).
    sub.appetite = core::lognormal(rng, 0.0, 0.9);
    sub.adopter_rank = core::uniform01(rng);
    sub.activity = 0.70 + 0.28 * core::uniform01(rng);

    if (tech == flow::AccessTech::kAdsl) {
      sub.join_day = start;
      // A `adsl_churn` fraction leaves at a uniform time in the window.
      sub.leave_day = core::chance(rng, config_.adsl_churn)
                          ? start + 1 +
                                static_cast<std::int64_t>(core::uniform01(rng) *
                                                          static_cast<double>(span - 1))
                          : end;
    } else {
      // A `ftth_rampup` fraction joins at a uniform time (fiber rollouts).
      sub.join_day = core::chance(rng, config_.ftth_rampup)
                         ? start + 1 +
                               static_cast<std::int64_t>(core::uniform01(rng) *
                                                         static_cast<double>(span - 1))
                         : start;
      sub.leave_day = end;
    }
    return sub;
  };

  for (std::uint32_t i = 0; i < config_.adsl_lines; ++i) {
    lines_.push_back(make_line(flow::AccessTech::kAdsl, i));
  }
  for (std::uint32_t i = 0; i < config_.ftth_lines; ++i) {
    lines_.push_back(make_line(flow::AccessTech::kFtth, i));
  }
}

std::size_t SubscriberPopulation::present_on(std::int64_t day) const noexcept {
  std::size_t n = 0;
  for (const auto& line : lines_) n += line.present_on(day);
  return n;
}

std::size_t SubscriberPopulation::present_on(std::int64_t day,
                                             flow::AccessTech tech) const noexcept {
  std::size_t n = 0;
  for (const auto& line : lines_) n += line.present_on(day) && line.access == tech;
  return n;
}

}  // namespace edgewatch::synth
