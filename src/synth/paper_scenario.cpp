// build_paper_scenario(): the quantitative story of the paper, expressed as
// generative parameters. Every curve below is traceable to a statement in
// the paper; DESIGN.md's experiment index maps figures to the parameters
// that drive them.
//
// Calibration notes:
//  - Populations and infrastructure sizes are ~1/15 of the real ISP's
//    (10000 ADSL + 5000 FTTH lines; 3800→1000 Facebook IPs; 40000 YouTube
//    IPs). Analytics normalize per subscriber, so scale cancels.
//  - "Other" (the long tail of the web) is auto-calibrated at build time:
//    its per-user volume is the gap between the Fig. 3 per-subscriber
//    targets and the sum of the named services' expected contributions.
#include "synth/scenario.hpp"

#include <cmath>

namespace edgewatch::synth {

namespace {

using services::ServiceId;
using WP = dpi::WebProtocol;

Curve::Point pt(int y, unsigned m, unsigned d, double v) {
  return {core::CivilDate{y, static_cast<std::uint8_t>(m), static_cast<std::uint8_t>(d)}, v};
}

std::size_t wp(WP p) { return static_cast<std::size_t>(p); }

core::IPv4Prefix pfx(const char* s) { return *core::IPv4Prefix::parse(s); }

/// Both techs share one curve.
std::array<Curve, 2> both(Curve c) { return {c, c}; }

ServerPool pool(std::string key, std::string domain, std::string host, std::uint32_t asn,
                const char* prefix, Curve ips, Curve share, double rtt_ms) {
  ServerPool p;
  p.key = std::move(key);
  p.domain = std::move(domain);
  p.host_prefix = std::move(host);
  p.asn = asn;
  p.prefix = pfx(prefix);
  p.daily_ips = std::move(ips);
  p.share = std::move(share);
  p.rtt_ms = rtt_ms;
  return p;
}

constexpr auto kAkamai = asn::AsnDirectory::kAkamai;
constexpr auto kFb = asn::AsnDirectory::kFacebook;
constexpr auto kGoog = asn::AsnDirectory::kGoogle;
constexpr auto kYt = asn::AsnDirectory::kYouTubeLegacy;
constexpr auto kNflx = asn::AsnDirectory::kNetflix;
constexpr auto kIspAs = asn::AsnDirectory::kIsp;
constexpr auto kTelia = asn::AsnDirectory::kTelia;
constexpr auto kGtt = asn::AsnDirectory::kGtt;

}  // namespace

Scenario build_paper_scenario(std::uint64_t seed, double scale) {
  Scenario sc;
  sc.population.seed = seed;
  sc.population.adsl_lines = static_cast<std::size_t>(600 * scale);
  sc.population.ftth_lines = static_cast<std::size_t>(300 * scale);

  auto ips = [scale](Curve c) {  // infrastructure sizes follow the scale too
    (void)scale;
    return c;  // curves below are already expressed at default scale
  };

  // Diurnal profiles: 2017 gains night-time weight (automatic updates, IoT
  // — Fig. 4's late-night ratio peak) and a stronger prime time.
  sc.hour_profile_2014 = {1.2, 0.7, 0.5, 0.4, 0.4, 0.5, 0.9, 1.6, 2.4, 3.0, 3.2, 3.4,
                          3.6, 3.4, 3.3, 3.5, 3.8, 4.2, 4.8, 5.4, 6.0, 6.2, 5.2, 2.8};
  sc.hour_profile_2017 = {2.2, 1.6, 1.3, 1.2, 1.2, 1.3, 1.6, 2.2, 2.9, 3.4, 3.6, 3.8,
                          4.0, 3.8, 3.7, 3.9, 4.3, 4.8, 5.6, 6.6, 7.6, 7.9, 6.4, 3.6};

  // ------------------------------------------------------------------ RIB
  auto rib = std::make_shared<asn::Rib>();
  rib->add_route(pfx("2.16.0.0/13"), kAkamai);
  rib->add_route(pfx("157.240.0.0/16"), kFb);
  rib->add_route(pfx("31.13.64.0/18"), kFb);
  rib->add_route(pfx("173.194.0.0/16"), kYt);     // classic YouTube space
  rib->add_route(pfx("208.117.224.0/19"), kYt);
  rib->add_route(pfx("216.58.192.0/19"), kGoog);
  rib->add_route(pfx("35.190.0.0/17"), kGoog);
  rib->add_route(pfx("185.45.12.0/22"), kIspAs);  // in-PoP cache space
  rib->add_route(pfx("45.57.0.0/17"), kNflx);
  rib->add_route(pfx("62.115.0.0/16"), kTelia);
  rib->add_route(pfx("89.149.128.0/17"), kGtt);
  rib->add_route(pfx("104.16.0.0/13"), 13335);    // big generic CDN
  rib->add_route(pfx("93.184.0.0/16"), 15133);
  rib->add_route(pfx("158.85.0.0/16"), 36351);    // WhatsApp's hoster
  rib->add_route(pfx("149.154.160.0/20"), 62041);
  rib->add_route(pfx("194.132.196.0/22"), 8403);
  rib->add_route(pfx("40.112.0.0/13"), 8075);
  rib->add_route(pfx("204.79.196.0/23"), 8075);
  rib->add_route(pfx("104.244.40.0/21"), 13414);
  rib->add_route(pfx("108.174.0.0/20"), 14413);
  rib->add_route(pfx("52.84.0.0/15"), 16509);
  rib->add_route(pfx("66.135.192.0/19"), 62955);
  rib->add_route(pfx("31.192.112.0/20"), 61049);
  rib->add_route(pfx("50.16.0.0/16"), 14618);
  sc.rib = rib;

  std::vector<ServiceModel>& services = sc.services;

  // ----------------------------------------------------------- Facebook
  {
    ServiceModel m;
    m.id = ServiceId::kFacebook;
    m.popularity = both(Curve{{pt(2013, 3, 1, 0.40), pt(2015, 1, 1, 0.44), pt(2017, 9, 30, 0.46)}});
    // Fig. 9: ~35 MB/day/user until Mar 2014; autoplay doubles it by April,
    // pauses in May, reaches ~90 MB in July (2.5x); slow growth after.
    const Curve fb_vol{{pt(2013, 3, 1, 26), pt(2014, 1, 1, 31), pt(2014, 3, 20, 33),
                        pt(2014, 4, 15, 64), pt(2014, 4, 30, 67), pt(2014, 5, 25, 56),
                        pt(2014, 6, 10, 70), pt(2014, 7, 10, 87), pt(2014, 12, 31, 90),
                        pt(2016, 1, 1, 102), pt(2017, 9, 30, 120)}};
    m.mb_down = both(fb_vol);
    m.mb_up = both(Curve{{pt(2013, 3, 1, 3), pt(2017, 9, 30, 9)}});
    m.base_flows = 6;
    m.flows_per_mb = 0.25;
    m.protocol[wp(WP::kHttp)] = Curve{{pt(2013, 3, 1, 0.50), pt(2015, 1, 1, 0.10), pt(2017, 9, 30, 0.03)}};
    m.protocol[wp(WP::kTls)] = Curve{{pt(2013, 3, 1, 0.50), pt(2015, 1, 1, 0.85),
                                      pt(2016, 11, 9, 0.88), pt(2016, 11, 12, 0.33),
                                      pt(2017, 9, 30, 0.32)}};
    m.protocol[wp(WP::kHttp2)] = Curve{{pt(2016, 6, 1, 0.0), pt(2017, 9, 30, 0.07)}};
    // Event F: Zero appears suddenly in November 2016, instantly carrying
    // more than half of Facebook's traffic.
    m.protocol[wp(WP::kFbZero)] = Curve{{pt(2016, 11, 9, 0.0), pt(2016, 11, 12, 0.55),
                                         pt(2017, 9, 30, 0.58)}};
    // Fig. 10a/11a/11d/11g: Akamai (shared, 11/27 ms) fades as the private
    // CDN (3 ms, AS32934) ramps through 2015; a distant DC keeps a ~100 ms
    // tail. Fig. 11a: ~380 IPs/day in 2013 → ~100 dedicated from 2016 (at
    // 1/10 of the paper's absolute counts).
    m.pools.push_back(pool("akamai-eu", "akamaihd.net", "fbstatic-", kAkamai, "2.16.0.0/13",
                           ips(Curve{{pt(2013, 3, 1, 260), pt(2015, 6, 1, 200),
                                      pt(2015, 12, 31, 40), pt(2016, 7, 1, 4),
                                      pt(2017, 9, 30, 2)}}),
                           Curve{{pt(2013, 3, 1, 0.38), pt(2014, 4, 1, 0.36),
                                  pt(2015, 12, 31, 0.16), pt(2016, 7, 1, 0.05),
                                  pt(2017, 9, 30, 0.04)}},
                           11.0));
    m.pools.push_back(pool("akamai-eu", "fbcdn.net", "scontent-far-", kAkamai, "2.16.0.0/13",
                           ips(Curve{{pt(2013, 3, 1, 90), pt(2015, 12, 31, 20),
                                      pt(2016, 7, 1, 2)}}),
                           Curve{{pt(2013, 3, 1, 0.44), pt(2014, 4, 1, 0.44),
                                  pt(2015, 12, 31, 0.18), pt(2016, 7, 1, 0.06),
                                  pt(2017, 9, 30, 0.05)}},
                           27.0));
    m.pools.push_back(pool("fbcdn", "facebook.com", "edge-star-", kFb, "157.240.0.0/16",
                           ips(Curve{{pt(2013, 3, 1, 25), pt(2015, 1, 1, 55),
                                      pt(2016, 1, 1, 85), pt(2017, 9, 30, 85)}}),
                           Curve{{pt(2013, 3, 1, 0.08), pt(2014, 4, 1, 0.10),
                                  pt(2015, 12, 31, 0.58), pt(2016, 7, 1, 0.82),
                                  pt(2017, 9, 30, 0.84)}},
                           3.0));
    m.pools.push_back(pool("fb-dc", "facebook.com", "dc-", kFb, "31.13.64.0/18",
                           ips(Curve{{pt(2013, 3, 1, 25), pt(2017, 9, 30, 12)}}),
                           Curve{{pt(2013, 3, 1, 0.10), pt(2014, 4, 1, 0.10),
                                  pt(2016, 7, 1, 0.07), pt(2017, 9, 30, 0.07)}},
                           98.0));
    services.push_back(std::move(m));
  }

  // ---------------------------------------------------------- Instagram
  {
    ServiceModel m;
    m.id = ServiceId::kInstagram;
    m.popularity[0] = Curve{{pt(2013, 3, 1, 0.04), pt(2015, 1, 1, 0.12), pt(2016, 1, 1, 0.20),
                             pt(2017, 9, 30, 0.30)}};
    m.popularity[1] = m.popularity[0];
    // Fig. 7c: massive volume growth to 200 (FTTH) / 120 (ADSL) MB/day.
    m.mb_down[0] = Curve{{pt(2013, 3, 1, 8), pt(2015, 1, 1, 30), pt(2016, 6, 1, 70),
                          pt(2017, 9, 30, 120)}};
    m.mb_down[1] = Curve{{pt(2013, 3, 1, 10), pt(2015, 1, 1, 45), pt(2016, 6, 1, 110),
                          pt(2017, 9, 30, 200)}};
    m.mb_up = both(Curve{{pt(2013, 3, 1, 2), pt(2017, 9, 30, 18)}});
    m.base_flows = 5;
    m.flows_per_mb = 0.2;
    m.protocol[wp(WP::kHttp)] = Curve{{pt(2013, 3, 1, 0.35), pt(2015, 1, 1, 0.05), pt(2017, 9, 30, 0.02)}};
    m.protocol[wp(WP::kTls)] = Curve{{pt(2013, 3, 1, 0.65), pt(2015, 1, 1, 0.95),
                                      pt(2016, 11, 9, 0.95), pt(2016, 11, 12, 0.48),
                                      pt(2017, 9, 30, 0.46)}};
    m.protocol[wp(WP::kFbZero)] = Curve{{pt(2016, 11, 9, 0.0), pt(2016, 11, 12, 0.50),
                                         pt(2017, 9, 30, 0.52)}};
    // Fig. 11b/e/h: third-party CDN until the 2014-2015 integration into
    // Facebook's infrastructure (dedicated IPs, ~30/day scaled, 3 ms).
    // Fig. 10a (2014): ~10% of Instagram flows already hit a 3 ms node,
    // most ride 11-27 ms CDN caches, ~7% cross the Atlantic.
    m.pools.push_back(pool("akamai-eu", "akamaihd.net", "instagram-p13-", kAkamai,
                           "2.16.0.0/13",
                           ips(Curve{{pt(2013, 3, 1, 150), pt(2014, 6, 1, 120),
                                      pt(2015, 12, 31, 10), pt(2016, 7, 1, 2)}}),
                           Curve{{pt(2013, 3, 1, 0.50), pt(2014, 6, 1, 0.47),
                                  pt(2015, 12, 31, 0.10), pt(2016, 7, 1, 0.03)}},
                           12.0));
    m.pools.push_back(pool("akamai-eu", "akamaihd.net", "igcdn-photos-", kAkamai,
                           "2.16.0.0/13",
                           ips(Curve{{pt(2013, 3, 1, 60), pt(2015, 12, 31, 8),
                                      pt(2016, 7, 1, 2)}}),
                           Curve{{pt(2013, 3, 1, 0.34), pt(2014, 6, 1, 0.33),
                                  pt(2015, 12, 31, 0.05), pt(2016, 7, 1, 0.02)}},
                           26.0));
    m.pools.push_back(pool("ig-cdn", "cdninstagram.com", "scontent-", kFb, "157.240.0.0/16",
                           ips(Curve{{pt(2014, 1, 1, 4), pt(2015, 6, 1, 18),
                                      pt(2016, 1, 1, 30), pt(2017, 9, 30, 30)}}),
                           Curve{{pt(2013, 3, 1, 0.08), pt(2014, 6, 1, 0.12),
                                  pt(2015, 12, 31, 0.78), pt(2016, 7, 1, 0.88),
                                  pt(2017, 9, 30, 0.89)}},
                           3.0));
    m.pools.push_back(pool("ig-legacy", "instagram.com", "ig-dc-", kFb, "31.13.64.0/18",
                           ips(Curve{{pt(2013, 3, 1, 20), pt(2016, 1, 1, 8),
                                      pt(2017, 9, 30, 6)}}),
                           Curve{{pt(2013, 3, 1, 0.08), pt(2014, 6, 1, 0.08),
                                  pt(2015, 12, 31, 0.07), pt(2017, 9, 30, 0.06)}},
                           102.0));
    services.push_back(std::move(m));
  }

  // ------------------------------------------------------------ YouTube
  {
    ServiceModel m;
    m.id = ServiceId::kYouTube;
    m.popularity = both(Curve{{pt(2013, 3, 1, 0.34), pt(2015, 1, 1, 0.38), pt(2017, 9, 30, 0.43)}});
    // Fig. 6c: >400 MB/day/user by 2017, identical across technologies.
    m.mb_down = both(Curve{{pt(2013, 3, 1, 150), pt(2015, 1, 1, 260), pt(2017, 9, 30, 420)}});
    m.mb_up = both(Curve{{pt(2013, 3, 1, 4), pt(2017, 9, 30, 8)}});
    m.volume_sigma = 1.0;
    m.base_flows = 4;
    m.flows_per_mb = 0.03;
    // Events A/B/D/E: HTTPS migration through 2014, QUIC from Oct 2014,
    // the December-2015 QUIC blackout, SPDY→HTTP/2 in Feb 2016.
    m.protocol[wp(WP::kHttp)] = Curve{{pt(2013, 3, 1, 1.0), pt(2014, 1, 15, 0.97),
                                       pt(2014, 10, 1, 0.18), pt(2017, 9, 30, 0.04)}};
    m.protocol[wp(WP::kTls)] = Curve{{pt(2013, 3, 1, 0.0), pt(2014, 1, 15, 0.03),
                                      pt(2014, 10, 1, 0.40), pt(2015, 11, 1, 0.30),
                                      pt(2015, 12, 6, 0.30), pt(2015, 12, 8, 0.52),
                                      pt(2016, 1, 10, 0.52), pt(2016, 1, 12, 0.30),
                                      pt(2016, 3, 15, 0.22), pt(2017, 9, 30, 0.14)}};
    m.protocol[wp(WP::kSpdy)] = Curve{{pt(2014, 1, 15, 0.0), pt(2014, 10, 1, 0.22),
                                       pt(2015, 11, 1, 0.22), pt(2015, 12, 6, 0.22),
                                       pt(2015, 12, 8, 0.35), pt(2016, 1, 10, 0.35),
                                       pt(2016, 1, 12, 0.22), pt(2016, 2, 14, 0.20),
                                       pt(2016, 3, 15, 0.0)}};
    m.protocol[wp(WP::kHttp2)] = Curve{{pt(2016, 2, 14, 0.0), pt(2016, 3, 15, 0.30),
                                        pt(2017, 9, 30, 0.34)}};
    m.protocol[wp(WP::kQuic)] = Curve{{pt(2014, 10, 14, 0.0), pt(2015, 3, 1, 0.22),
                                       pt(2015, 12, 6, 0.35), pt(2015, 12, 8, 0.0),
                                       pt(2016, 1, 10, 0.0), pt(2016, 1, 12, 0.35),
                                       pt(2017, 9, 30, 0.48)}};
    // Fig. 10b/11c/f/i: dedicated fleet growing 1500→3800 (scaled), domain
    // generations youtube.com → googlevideo.com (2014) → +gvt1.com (2015),
    // and in-PoP ISP caches (sub-millisecond!) taking over from end-2015.
    m.pools.push_back(pool("yt-global", "youtube.com", "r1---", kYt, "173.194.0.0/16",
                           ips(Curve{{pt(2013, 3, 1, 1500), pt(2017, 9, 30, 3600)}}),
                           Curve{{pt(2013, 3, 1, 0.78), pt(2014, 1, 10, 0.75),
                                  pt(2014, 3, 1, 0.10), pt(2015, 6, 1, 0.05),
                                  pt(2017, 9, 30, 0.03)}},
                           3.1));
    m.pools.push_back(pool("yt-global", "googlevideo.com", "r3---sn-", kYt, "173.194.0.0/16",
                           ips(Curve{{pt(2013, 3, 1, 1500), pt(2017, 9, 30, 3600)}}),
                           Curve{{pt(2014, 1, 10, 0.0), pt(2014, 3, 1, 0.70),
                                  pt(2015, 9, 1, 0.62), pt(2016, 3, 1, 0.22),
                                  pt(2017, 9, 30, 0.18)}},
                           3.1));
    m.pools.push_back(pool("yt-global", "gvt1.com", "redirector-", kYt, "173.194.0.0/16",
                           ips(Curve{{pt(2013, 3, 1, 1500), pt(2017, 9, 30, 3600)}}),
                           Curve{{pt(2015, 1, 1, 0.0), pt(2015, 9, 1, 0.10),
                                  pt(2017, 9, 30, 0.08)}},
                           3.1));
    m.pools.push_back(pool("yt-far", "googlevideo.com", "r9---sn-", kYt, "208.117.224.0/19",
                           ips(Curve{{pt(2013, 3, 1, 300), pt(2017, 9, 30, 120)}}),
                           Curve{{pt(2013, 3, 1, 0.22), pt(2014, 3, 1, 0.20),
                                  pt(2016, 3, 1, 0.08), pt(2017, 9, 30, 0.06)}},
                           16.0));
    m.pools.push_back(pool("yt-isp-cache", "googlevideo.com", "cache-mxp-", kIspAs,
                           "185.45.12.0/22",
                           ips(Curve{{pt(2015, 9, 1, 4), pt(2016, 3, 1, 30),
                                      pt(2017, 9, 30, 42)}}),
                           Curve{{pt(2015, 9, 1, 0.0), pt(2016, 3, 1, 0.48),
                                  pt(2017, 9, 30, 0.65)}},
                           0.45));
    services.push_back(std::move(m));
  }

  // ------------------------------------------------------------- Google
  {
    ServiceModel m;
    m.id = ServiceId::kGoogle;
    m.popularity = both(Curve{{pt(2013, 3, 1, 0.60), pt(2017, 9, 30, 0.61)}});
    m.mb_down = both(Curve{{pt(2013, 3, 1, 10), pt(2017, 9, 30, 18)}});
    m.mb_up = both(Curve{{pt(2013, 3, 1, 1.5), pt(2017, 9, 30, 3)}});
    m.base_flows = 12;
    m.flows_per_mb = 0.8;
    m.protocol[wp(WP::kHttp)] = Curve{{pt(2013, 3, 1, 0.25), pt(2015, 1, 1, 0.10), pt(2017, 9, 30, 0.04)}};
    m.protocol[wp(WP::kTls)] = Curve{{pt(2013, 3, 1, 0.45), pt(2015, 12, 6, 0.40),
                                      pt(2015, 12, 8, 0.55), pt(2016, 1, 12, 0.40),
                                      pt(2016, 3, 15, 0.35), pt(2017, 9, 30, 0.30)}};
    m.protocol[wp(WP::kSpdy)] = Curve{{pt(2013, 3, 1, 0.30), pt(2016, 2, 14, 0.30),
                                       pt(2016, 3, 15, 0.0)}};
    m.protocol[wp(WP::kHttp2)] = Curve{{pt(2016, 2, 14, 0.0), pt(2016, 3, 15, 0.32),
                                        pt(2017, 9, 30, 0.36)}};
    m.protocol[wp(WP::kQuic)] = Curve{{pt(2014, 10, 14, 0.0), pt(2015, 6, 1, 0.15),
                                       pt(2015, 12, 6, 0.20), pt(2015, 12, 8, 0.0),
                                       pt(2016, 1, 10, 0.0), pt(2016, 1, 12, 0.20),
                                       pt(2017, 9, 30, 0.30)}};
    // Fig. 10b: search front-ends stay at a few ms — no in-PoP deployment.
    m.pools.push_back(pool("goog-fe", "google.com", "fra-", kGoog, "216.58.192.0/19",
                           ips(Curve{{pt(2013, 3, 1, 120), pt(2017, 9, 30, 160)}}),
                           Curve{{pt(2013, 3, 1, 0.72), pt(2017, 9, 30, 0.82)}}, 4.2));
    m.pools.push_back(pool("goog-far", "google.com", "far-", kGoog, "216.58.192.0/19",
                           ips(Curve{{pt(2013, 3, 1, 60), pt(2017, 9, 30, 40)}}),
                           Curve{{pt(2013, 3, 1, 0.28), pt(2017, 9, 30, 0.18)}}, 22.0));
    services.push_back(std::move(m));
  }

  // ------------------------------------------------------------ Netflix
  {
    ServiceModel m;
    m.id = ServiceId::kNetflix;
    // Italian launch October 2015; FTTH subscribers adopt faster (Fig. 6b).
    m.popularity[0] = Curve{{pt(2015, 10, 21, 0.0), pt(2015, 10, 23, 0.01),
                             pt(2016, 6, 1, 0.03), pt(2017, 9, 30, 0.06)}};
    m.popularity[1] = Curve{{pt(2015, 10, 21, 0.0), pt(2015, 10, 23, 0.02),
                             pt(2016, 6, 1, 0.06), pt(2017, 9, 30, 0.10)}};
    // Similar volumes on both techs until Ultra HD (Oct 2016) pulls FTTH
    // towards ~1 GB/day.
    m.mb_down[0] = Curve{{pt(2015, 10, 23, 420), pt(2016, 10, 1, 500), pt(2017, 9, 30, 520)}};
    m.mb_down[1] = Curve{{pt(2015, 10, 23, 430), pt(2016, 10, 1, 520), pt(2016, 12, 1, 820),
                          pt(2017, 9, 30, 950)}};
    m.mb_up = both(Curve{{pt(2015, 10, 23, 5), pt(2017, 9, 30, 8)}});
    // §4.3: weekly reach (18%/12% FTTH/ADSL) far exceeds daily popularity —
    // many subscribers watch a few evenings a week, not every day.
    m.adoption_spread = 2.6;
    m.volume_sigma = 0.7;
    m.base_flows = 4;
    m.flows_per_mb = 0.02;
    m.protocol[wp(WP::kHttp)] = Curve{{pt(2015, 10, 23, 0.70), pt(2016, 12, 1, 0.25),
                                       pt(2017, 9, 30, 0.12)}};
    m.protocol[wp(WP::kTls)] = Curve{{pt(2015, 10, 23, 0.30), pt(2016, 12, 1, 0.70),
                                      pt(2017, 9, 30, 0.83)}};
    m.protocol[wp(WP::kHttp2)] = Curve{{pt(2016, 12, 1, 0.0), pt(2017, 9, 30, 0.05)}};
    m.pools.push_back(pool("nflx-oca", "nflxvideo.net", "ipv4-c001-mxp001-", kNflx,
                           "45.57.0.0/17",
                           ips(Curve{{pt(2015, 10, 23, 15), pt(2017, 9, 30, 45)}}),
                           Curve(0.9), 5.5));
    m.pools.push_back(pool("nflx-api", "netflix.com", "api-", kNflx, "45.57.0.0/17",
                           ips(Curve{{pt(2015, 10, 23, 6), pt(2017, 9, 30, 10)}}),
                           Curve(0.1), 95.0));
    services.push_back(std::move(m));
  }

  // --------------------------------------------------------------- P2P
  {
    ServiceModel m;
    m.id = ServiceId::kPeerToPeer;
    m.is_p2p = true;
    m.bimodal_days = true;
    m.appetite_weight = 1.0;
    // Fig. 6a: popularity decays all along; FTTH users abandon volume
    // earlier; the hardcore keeps ~400 MB/day until a late-2016 decline.
    m.popularity[0] = Curve{{pt(2013, 3, 1, 0.105), pt(2015, 1, 1, 0.065),
                             pt(2016, 10, 1, 0.045), pt(2017, 9, 30, 0.028)}};
    m.popularity[1] = Curve{{pt(2013, 3, 1, 0.115), pt(2015, 1, 1, 0.060),
                             pt(2016, 10, 1, 0.040), pt(2017, 9, 30, 0.025)}};
    m.mb_down[0] = Curve{{pt(2013, 3, 1, 400), pt(2016, 10, 1, 390), pt(2017, 9, 30, 260)}};
    m.mb_down[1] = Curve{{pt(2013, 3, 1, 430), pt(2015, 6, 1, 380), pt(2016, 6, 1, 300),
                          pt(2017, 9, 30, 220)}};
    // ADSL uplink is capped at 1 Mb/s (~10 GB/day theoretical, real shares
    // far less); FTTH seeds harder — the Fig. 2b upload tail bump.
    m.mb_up[0] = Curve{{pt(2013, 3, 1, 350), pt(2016, 10, 1, 330), pt(2017, 9, 30, 200)}};
    m.mb_up[1] = Curve{{pt(2013, 3, 1, 700), pt(2015, 6, 1, 520), pt(2017, 9, 30, 260)}};
    m.volume_sigma = 1.1;
    m.base_flows = 30;
    m.flows_per_mb = 0.1;
    services.push_back(std::move(m));
  }

  // ----------------------------------------------------------- SnapChat
  {
    ServiceModel m;
    m.id = ServiceId::kSnapChat;
    // Fig. 7a: fame from 2015, ~10% in 2016, volume crash during 2017
    // while popularity barely moves (app kept, hardly used).
    m.popularity = both(Curve{{pt(2014, 6, 1, 0.0), pt(2015, 1, 1, 0.02), pt(2015, 9, 1, 0.06),
                               pt(2016, 4, 1, 0.10), pt(2016, 12, 1, 0.095),
                               pt(2017, 9, 30, 0.085)}});
    m.mb_down = both(Curve{{pt(2014, 6, 1, 10), pt(2015, 9, 1, 55), pt(2016, 4, 1, 95),
                            pt(2016, 10, 1, 80), pt(2017, 3, 1, 35), pt(2017, 9, 30, 16)}});
    m.mb_up = both(Curve{{pt(2014, 6, 1, 3), pt(2016, 4, 1, 25), pt(2017, 9, 30, 4)}});
    m.base_flows = 6;
    m.flows_per_mb = 0.3;
    m.protocol[wp(WP::kTls)] = Curve(1.0);
    m.pools.push_back(pool("sc-gcloud", "sc-cdn.net", "gcs-sc-", kGoog, "35.190.0.0/17",
                           ips(Curve{{pt(2014, 6, 1, 10), pt(2016, 4, 1, 40),
                                      pt(2017, 9, 30, 25)}}),
                           Curve(1.0), 19.0));
    services.push_back(std::move(m));
  }

  // ----------------------------------------------------------- WhatsApp
  {
    ServiceModel m;
    m.id = ServiceId::kWhatsApp;
    m.holiday_peaks = true;  // Christmas / New Year's Eve wish storms
    m.popularity = both(Curve{{pt(2013, 3, 1, 0.18), pt(2014, 6, 1, 0.32), pt(2015, 6, 1, 0.45),
                               pt(2016, 6, 1, 0.53), pt(2017, 9, 30, 0.56)}});
    m.mb_down = both(Curve{{pt(2013, 3, 1, 1.5), pt(2015, 1, 1, 4), pt(2016, 6, 1, 7),
                            pt(2017, 9, 30, 10)}});
    m.mb_up = both(Curve{{pt(2013, 3, 1, 1.2), pt(2015, 1, 1, 3), pt(2017, 9, 30, 8)}});
    m.volume_sigma = 1.0;
    m.base_flows = 8;
    m.flows_per_mb = 0.8;
    m.protocol[wp(WP::kTls)] = Curve(1.0);  // proprietary chat rides TLS-ish
    // §6.1: WhatsApp is the notable exception — still centralized, ~100 ms.
    m.pools.push_back(pool("wa-dc", "whatsapp.net", "mmx-ds-", 36351, "158.85.0.0/16",
                           ips(Curve{{pt(2013, 3, 1, 30), pt(2017, 9, 30, 60)}}),
                           Curve(1.0), 103.0));
    services.push_back(std::move(m));
  }

  // ----------------------------------------------------------- Telegram
  {
    ServiceModel m;
    m.id = ServiceId::kTelegram;
    m.popularity = both(Curve{{pt(2013, 9, 1, 0.0), pt(2015, 1, 1, 0.015), pt(2016, 6, 1, 0.04),
                               pt(2017, 9, 30, 0.06)}});
    m.mb_down = both(Curve{{pt(2013, 9, 1, 0.8), pt(2017, 9, 30, 4)}});
    m.mb_up = both(Curve{{pt(2013, 9, 1, 0.5), pt(2017, 9, 30, 2.5)}});
    m.base_flows = 5;
    m.flows_per_mb = 1.0;
    m.protocol[wp(WP::kTls)] = Curve(1.0);
    m.pools.push_back(pool("tg-dc", "telegram.org", "dc4-", 62041, "149.154.160.0/20",
                           ips(Curve{{pt(2013, 9, 1, 8), pt(2017, 9, 30, 20)}}), Curve(1.0),
                           41.0));
    services.push_back(std::move(m));
  }

  // -------------------------------------------------------------- Skype
  {
    ServiceModel m;
    m.id = ServiceId::kSkype;
    m.popularity = both(Curve{{pt(2013, 3, 1, 0.11), pt(2015, 6, 1, 0.09), pt(2017, 9, 30, 0.055)}});
    m.mb_down = both(Curve{{pt(2013, 3, 1, 6), pt(2017, 9, 30, 5)}});
    m.mb_up = both(Curve{{pt(2013, 3, 1, 5), pt(2017, 9, 30, 4)}});
    m.base_flows = 6;
    m.flows_per_mb = 0.8;
    m.protocol[wp(WP::kTls)] = Curve(0.7);
    m.protocol[wp(WP::kHttp)] = Curve{{pt(2013, 3, 1, 0.3), pt(2017, 9, 30, 0.1)}};
    m.pools.push_back(pool("skype-az", "skype.com", "relay-", 8075, "40.112.0.0/13",
                           ips(Curve{{pt(2013, 3, 1, 40), pt(2017, 9, 30, 30)}}), Curve(1.0),
                           29.0));
    services.push_back(std::move(m));
  }

  // ------------------------------------------------------------ Spotify
  {
    ServiceModel m;
    m.id = ServiceId::kSpotify;
    m.popularity = both(Curve{{pt(2013, 3, 1, 0.02), pt(2015, 6, 1, 0.045), pt(2017, 9, 30, 0.07)}});
    m.mb_down = both(Curve{{pt(2013, 3, 1, 30), pt(2017, 9, 30, 60)}});
    m.mb_up = both(Curve{{pt(2013, 3, 1, 2), pt(2017, 9, 30, 3)}});
    m.base_flows = 5;
    m.flows_per_mb = 0.15;
    m.protocol[wp(WP::kTls)] = Curve(0.8);
    m.protocol[wp(WP::kHttp)] = Curve{{pt(2013, 3, 1, 0.2), pt(2017, 9, 30, 0.05)}};
    m.pools.push_back(pool("spotify-eu", "scdn.co", "audio-ak-", 8403, "194.132.196.0/22",
                           ips(Curve{{pt(2013, 3, 1, 12), pt(2017, 9, 30, 25)}}), Curve(1.0),
                           23.0));
    services.push_back(std::move(m));
  }

  // ------------------------------------------------------- Search rest
  {
    ServiceModel m;
    m.id = ServiceId::kBing;
    // Windows telemetry makes "Bing users" grow 15% → 45% (§4.1).
    m.popularity = both(Curve{{pt(2013, 3, 1, 0.14), pt(2015, 6, 1, 0.28), pt(2017, 9, 30, 0.45)}});
    m.mb_down = both(Curve{{pt(2013, 3, 1, 0.8), pt(2017, 9, 30, 1.6)}});
    m.mb_up = both(Curve{{pt(2013, 3, 1, 0.3), pt(2017, 9, 30, 0.6)}});
    m.base_flows = 6;
    m.flows_per_mb = 2.0;
    m.protocol[wp(WP::kHttp)] = Curve{{pt(2013, 3, 1, 0.6), pt(2017, 9, 30, 0.1)}};
    m.protocol[wp(WP::kTls)] = Curve{{pt(2013, 3, 1, 0.4), pt(2017, 9, 30, 0.8)}};
    m.protocol[wp(WP::kHttp2)] = Curve{{pt(2016, 6, 1, 0.0), pt(2017, 9, 30, 0.1)}};
    m.pools.push_back(pool("bing-fe", "bing.com", "a-", 8075, "204.79.196.0/23",
                           ips(Curve{{pt(2013, 3, 1, 6), pt(2017, 9, 30, 10)}}), Curve(1.0),
                           18.0));
    services.push_back(std::move(m));
  }
  {
    ServiceModel m;
    m.id = ServiceId::kDuckDuckGo;
    m.popularity = both(Curve{{pt(2013, 3, 1, 0.001), pt(2017, 9, 30, 0.003)}});
    m.mb_down = both(Curve(0.5));
    m.mb_up = both(Curve(0.15));
    m.base_flows = 4;
    m.flows_per_mb = 2.0;
    m.protocol[wp(WP::kTls)] = Curve(1.0);
    m.pools.push_back(pool("ddg", "duckduckgo.com", "ddg-", 14618, "50.16.0.0/16",
                           ips(Curve(4)), Curve(1.0), 96.0));
    services.push_back(std::move(m));
  }

  // -------------------------------------------------------- Social rest
  {
    ServiceModel m;
    m.id = ServiceId::kTwitter;
    m.popularity = both(Curve{{pt(2013, 3, 1, 0.08), pt(2017, 9, 30, 0.12)}});
    m.mb_down = both(Curve{{pt(2013, 3, 1, 5), pt(2017, 9, 30, 16)}});
    m.mb_up = both(Curve{{pt(2013, 3, 1, 0.8), pt(2017, 9, 30, 2.5)}});
    m.base_flows = 6;
    m.flows_per_mb = 0.6;
    m.protocol[wp(WP::kHttp)] = Curve{{pt(2013, 3, 1, 0.3), pt(2017, 9, 30, 0.02)}};
    m.protocol[wp(WP::kTls)] = Curve{{pt(2013, 3, 1, 0.7), pt(2016, 6, 1, 0.9), pt(2017, 9, 30, 0.85)}};
    m.protocol[wp(WP::kHttp2)] = Curve{{pt(2016, 6, 1, 0.0), pt(2017, 9, 30, 0.13)}};
    m.pools.push_back(pool("twtr", "twimg.com", "cdn-", 13414, "104.244.40.0/21",
                           ips(Curve{{pt(2013, 3, 1, 12), pt(2017, 9, 30, 18)}}), Curve(1.0),
                           26.0));
    services.push_back(std::move(m));
  }
  {
    ServiceModel m;
    m.id = ServiceId::kLinkedIn;
    m.popularity = both(Curve{{pt(2013, 3, 1, 0.03), pt(2017, 9, 30, 0.06)}});
    m.mb_down = both(Curve{{pt(2013, 3, 1, 2), pt(2017, 9, 30, 4.5)}});
    m.mb_up = both(Curve(0.5));
    m.base_flows = 5;
    m.flows_per_mb = 1.0;
    m.protocol[wp(WP::kHttp)] = Curve{{pt(2013, 3, 1, 0.5), pt(2017, 9, 30, 0.05)}};
    m.protocol[wp(WP::kTls)] = Curve{{pt(2013, 3, 1, 0.5), pt(2017, 9, 30, 0.95)}};
    m.pools.push_back(pool("lnkd", "licdn.com", "media-", 14413, "108.174.0.0/20",
                           ips(Curve(8)), Curve(1.0), 31.0));
    services.push_back(std::move(m));
  }

  // ------------------------------------------------------------- Adult
  {
    ServiceModel m;
    m.id = ServiceId::kAdult;
    m.popularity = both(Curve{{pt(2013, 3, 1, 0.075), pt(2017, 9, 30, 0.085)}});
    m.mb_down = both(Curve{{pt(2013, 3, 1, 60), pt(2017, 9, 30, 130)}});
    m.mb_up = both(Curve(2.0));
    m.volume_sigma = 1.0;
    m.base_flows = 6;
    m.flows_per_mb = 0.1;
    m.protocol[wp(WP::kHttp)] = Curve{{pt(2013, 3, 1, 0.9), pt(2016, 1, 1, 0.5), pt(2017, 9, 30, 0.25)}};
    m.protocol[wp(WP::kTls)] = Curve{{pt(2013, 3, 1, 0.1), pt(2016, 1, 1, 0.5), pt(2017, 9, 30, 0.75)}};
    m.pools.push_back(pool("adult-cdn", "phncdn.com", "cv-", 61049, "31.192.112.0/20",
                           ips(Curve{{pt(2013, 3, 1, 25), pt(2017, 9, 30, 40)}}), Curve(1.0),
                           21.0));
    services.push_back(std::move(m));
  }

  // ----------------------------------------------------------- Shopping
  {
    ServiceModel m;
    m.id = ServiceId::kAmazon;
    m.popularity = both(Curve{{pt(2013, 3, 1, 0.05), pt(2015, 6, 1, 0.09), pt(2017, 9, 30, 0.16)}});
    m.mb_down = both(Curve{{pt(2013, 3, 1, 4), pt(2017, 9, 30, 18)}});
    m.mb_up = both(Curve(1.0));
    m.base_flows = 8;
    m.flows_per_mb = 0.8;
    m.protocol[wp(WP::kHttp)] = Curve{{pt(2013, 3, 1, 0.5), pt(2017, 9, 30, 0.08)}};
    m.protocol[wp(WP::kTls)] = Curve{{pt(2013, 3, 1, 0.5), pt(2017, 9, 30, 0.8)}};
    m.protocol[wp(WP::kHttp2)] = Curve{{pt(2016, 6, 1, 0.0), pt(2017, 9, 30, 0.12)}};
    m.pools.push_back(pool("amzn-cf", "media-amazon.com", "dtb-", 16509, "52.84.0.0/15",
                           ips(Curve{{pt(2013, 3, 1, 30), pt(2017, 9, 30, 80)}}), Curve(0.7),
                           13.0));
    m.pools.push_back(pool("amzn-fe", "amazon.it", "www-", 16509, "52.84.0.0/15",
                           ips(Curve(10)), Curve(0.3), 34.0));
    services.push_back(std::move(m));
  }
  {
    ServiceModel m;
    m.id = ServiceId::kEbay;
    m.popularity = both(Curve{{pt(2013, 3, 1, 0.08), pt(2015, 6, 1, 0.07), pt(2017, 9, 30, 0.055)}});
    m.mb_down = both(Curve{{pt(2013, 3, 1, 3), pt(2017, 9, 30, 5)}});
    m.mb_up = both(Curve(0.8));
    m.base_flows = 7;
    m.flows_per_mb = 1.0;
    m.protocol[wp(WP::kHttp)] = Curve{{pt(2013, 3, 1, 0.7), pt(2017, 9, 30, 0.15)}};
    m.protocol[wp(WP::kTls)] = Curve{{pt(2013, 3, 1, 0.3), pt(2017, 9, 30, 0.85)}};
    m.pools.push_back(pool("ebay", "ebaystatic.com", "p-", 62955, "66.135.192.0/19",
                           ips(Curve(12)), Curve(1.0), 27.0));
    services.push_back(std::move(m));
  }

  // ------------------------------------------------- Other (long tail)
  {
    ServiceModel m;
    m.id = ServiceId::kOther;
    m.popularity = both(Curve(1.0));  // every active subscriber browses
    m.bimodal_days = true;
    m.appetite_weight = 1.0;
    m.volume_sigma = 1.0;
    m.base_flows = 28;
    m.flows_per_mb = 0.06;
    m.summer_dip = true;  // the FTTH business-profile holiday dips (Fig. 3)
    // Overall HTTPS creep: ~13% TLS in 2013 → HTTP down to ~25% of web
    // traffic at the end of 2017 (Fig. 8).
    m.protocol[wp(WP::kHttp)] = Curve{{pt(2013, 3, 1, 0.885), pt(2014, 6, 1, 0.78),
                                       pt(2015, 6, 1, 0.60), pt(2016, 6, 1, 0.49),
                                       pt(2017, 9, 30, 0.40)}};
    m.protocol[wp(WP::kTls)] = Curve{{pt(2013, 3, 1, 0.115), pt(2014, 6, 1, 0.20),
                                      pt(2015, 6, 1, 0.36), pt(2016, 6, 1, 0.43),
                                      pt(2017, 9, 30, 0.46)}};
    m.protocol[wp(WP::kSpdy)] = Curve{{pt(2014, 1, 1, 0.0), pt(2015, 1, 1, 0.04),
                                       pt(2016, 2, 14, 0.04), pt(2016, 9, 1, 0.0)}};
    m.protocol[wp(WP::kHttp2)] = Curve{{pt(2016, 2, 14, 0.0), pt(2016, 9, 1, 0.06),
                                        pt(2017, 9, 30, 0.14)}};
    // mb_down/mb_up are auto-calibrated below.
    m.pools.push_back(pool("akamai-eu", "akamaihd.net", "e-", kAkamai, "2.16.0.0/13",
                           ips(Curve{{pt(2013, 3, 1, 700), pt(2017, 9, 30, 900)}}),
                           Curve(0.28), 12.0));
    m.pools.push_back(pool("cdn77", "cdn-generic.net", "cf-", 13335, "104.16.0.0/13",
                           ips(Curve{{pt(2013, 3, 1, 300), pt(2017, 9, 30, 900)}}),
                           Curve{{pt(2013, 3, 1, 0.18), pt(2017, 9, 30, 0.30)}}, 8.5));
    m.pools.push_back(pool("misc-web", "varied-web.org", "w-", 15133, "93.184.0.0/16",
                           ips(Curve(1200)), Curve(0.3), 36.0));
    m.pools.push_back(pool("transit-telia", "far-sites.com", "t-", kTelia, "62.115.0.0/16",
                           ips(Curve(300)), Curve(0.09), 58.0));
    m.pools.push_back(pool("transit-gtt", "overseas.net", "g-", kGtt, "89.149.128.0/17",
                           ips(Curve(300)), Curve(0.08), 118.0));
    services.push_back(std::move(m));
  }

  // ---- auto-calibrate "Other" so totals match the Fig. 3 targets --------
  // Targets: ADSL 300→700 MB/day down (FTTH +25%, topping 1 GB);
  // ADSL upload flat ~45 MB (bottlenecked), FTTH 65→100 MB.
  const Curve target_down[2] = {
      Curve{{pt(2013, 3, 1, 300), pt(2017, 9, 30, 700)}},
      Curve{{pt(2013, 3, 1, 375), pt(2017, 9, 30, 1000)}},
  };
  const Curve target_up[2] = {
      Curve{{pt(2013, 3, 1, 46), pt(2017, 9, 30, 48)}},
      Curve{{pt(2013, 3, 1, 65), pt(2017, 9, 30, 100)}},
  };
  ServiceModel& other = services.back();
  for (int t = 0; t < 2; ++t) {
    std::vector<Curve::Point> down_points, up_points;
    for (core::MonthIndex m{2013, 3}; m <= core::MonthIndex{2017, 10}; m = m + 1) {
      const core::CivilDate date = m.first_day();
      double named_down = 0, named_up = 0;
      for (const auto& svc : services) {
        if (svc.id == ServiceId::kOther) continue;
        const double pop = svc.popularity[static_cast<std::size_t>(t)].at(date);
        named_down += pop * svc.mb_down[static_cast<std::size_t>(t)].at(date);
        named_up += pop * svc.mb_up[static_cast<std::size_t>(t)].at(date);
      }
      down_points.push_back(
          {date, std::max(40.0, target_down[t].at(date) - named_down)});
      up_points.push_back({date, std::max(8.0, target_up[t].at(date) - named_up)});
    }
    other.mb_down[static_cast<std::size_t>(t)] = Curve{};
    other.mb_up[static_cast<std::size_t>(t)] = Curve{};
    // Curve has no point-append API by design; rebuild via initializer is
    // impossible for runtime data, so expose the vector constructor path:
    other.mb_down[static_cast<std::size_t>(t)] = Curve::from_points(down_points);
    other.mb_up[static_cast<std::size_t>(t)] = Curve::from_points(up_points);
  }

  return sc;
}

}  // namespace edgewatch::synth
