// Per-service behavioural models: the knobs that encode the paper's
// findings as generative parameters. Each service has time-varying
// popularity and per-user volume (per access technology), a web-protocol
// mix (Fig. 8 events), and a set of server pools describing its
// infrastructure evolution (Figs. 10/11).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "analytics/day_aggregate.hpp"
#include "core/types.hpp"
#include "services/catalog.hpp"
#include "synth/curve.hpp"

namespace edgewatch::synth {

/// A pool of surrogate servers: one (infrastructure, placement, domain)
/// combination. Pools with the same `key` and prefix expose the same IPs —
/// that is how shared CDN infrastructure (e.g. Akamai serving Facebook,
/// Instagram and plenty of Other) is modelled.
struct ServerPool {
  std::string key;          ///< IP-derivation identity.
  std::string domain;       ///< Second-level domain served from this pool.
  std::string host_prefix;  ///< Hostname label prefix, e.g. "edge".
  std::uint32_t asn = 0;
  core::IPv4Prefix prefix;
  Curve daily_ips;   ///< Active addresses per day (0 = pool dormant).
  Curve share;       ///< Relative weight among the service's pools.
  double rtt_ms = 20.0;  ///< Probe→server base RTT.
};

struct ServiceModel {
  services::ServiceId id = services::ServiceId::kOther;

  /// Popularity: fraction of *active* subscribers using the service per
  /// day; indexed by AccessTech.
  std::array<Curve, 2> popularity;
  /// Mean MB/day down/up per using subscriber; indexed by AccessTech.
  std::array<Curve, 2> mb_down;
  std::array<Curve, 2> mb_up;

  /// Adopter pool relative to daily popularity: adoption(t) =
  /// min(1, popularity(t) * adoption_spread). 1.3 ≈ near-daily habit
  /// (social apps); ~2 ≈ a wider pool of occasional users (VoD: §4.3's
  /// weekly Netflix reach is well above its daily popularity).
  double adoption_spread = 1.3;

  /// Lognormal dispersion of per-user-day volume around the mean.
  double volume_sigma = 0.8;
  /// How strongly the subscriber's global appetite shapes this service
  /// (1 = fully, 0 = not at all).
  double appetite_weight = 0.3;
  /// Expected flows: base + per-MB component.
  double base_flows = 4.0;
  double flows_per_mb = 0.15;

  /// Weight curves per WebProtocol index (kNotWeb entry unused).
  std::array<Curve, analytics::kWebProtocolCount> protocol;

  std::vector<ServerPool> pools;

  bool is_p2p = false;          ///< BitTorrent/eDonkey semantics.
  bool holiday_peaks = false;   ///< WhatsApp-style Christmas/NYE spikes.
  bool summer_dip = false;      ///< Business-profile slowdown in Jul/Aug.
  /// Bimodal day types (light vs bulk days, Fig. 2); applied to browsing
  /// and P2P rather than to on-demand video.
  bool bimodal_days = false;
};

}  // namespace edgewatch::synth
