// The workload generator: turns a Scenario into per-day streams of
// FlowRecords (the fast path feeding analytics and benches) — and, via
// synth/packets.hpp, into raw frames for end-to-end probe runs.
//
// Determinism: every (day, line) pair seeds its own RNG via mix64, so any
// subset of days can be generated in any order with identical results.
#pragma once

#include <functional>
#include <vector>

#include "analytics/day_aggregate.hpp"
#include "flow/record.hpp"
#include "synth/scenario.hpp"

namespace edgewatch::synth {

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(Scenario scenario);

  using Sink = std::function<void(flow::FlowRecord&&)>;

  /// Generate every flow record of one civil day.
  void generate_day(core::CivilDate date, const Sink& sink) const;

  /// Convenience: materialize a day.
  [[nodiscard]] std::vector<flow::FlowRecord> day_records(core::CivilDate date) const;

  /// Generate + aggregate in one pass (what the longitudinal benches use).
  [[nodiscard]] analytics::DayAggregate day_aggregate(core::CivilDate date) const;

  [[nodiscard]] const SubscriberPopulation& population() const noexcept { return population_; }
  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }
  [[nodiscard]] const asn::Rib& rib(core::MonthIndex /*month*/) const noexcept {
    return *scenario_.rib;  // prefix ownership is static; pools migrate instead
  }

 private:
  struct PoolCtx {
    const ServerPool* pool = nullptr;
    double weight = 0;
    std::uint64_t ip_count = 1;
  };
  struct ServiceCtx {
    const ServiceModel* model = nullptr;
    std::array<double, 2> popularity{};
    std::array<double, 2> mean_down_mb{};
    std::array<double, 2> mean_up_mb{};
    std::vector<PoolCtx> pools;
    std::array<double, analytics::kWebProtocolCount> protocol_weights{};
    double appetite_norm = 1.0;  ///< E[appetite^w] normalizer.
  };

  void emit_service_day(core::Xoshiro256& rng, const Subscriber& line,
                        const ServiceCtx& ctx, core::CivilDate date, std::int64_t day,
                        double day_factor, std::span<const double> hour_weights,
                        const Sink& sink) const;
  void emit_background(core::Xoshiro256& rng, const Subscriber& line, core::CivilDate date,
                       std::span<const double> hour_weights, const Sink& sink) const;

  Scenario scenario_;
  SubscriberPopulation population_;
};

}  // namespace edgewatch::synth
