// Live metrics registry: lock-free sharded counters/histograms, RAII span
// timers, and a scrape path that merges per-shard state into a consistent
// point-in-time snapshot (snapshot.hpp).
//
// Design rules, in priority order:
//   1. The record path (Counter::add, Histogram::record) must be safe to
//      call from any thread with no locks and no allocation: each writer
//      lands on a cache-line-padded shard chosen once per thread, and all
//      stores are relaxed atomics. Shard merging happens only on scrape,
//      with the same sum-merge discipline as core/sketch: commutative,
//      associative, order-independent.
//   2. Registration (Registry::counter/gauge/histogram/span_site) takes a
//      mutex and may allocate. Call it once at component construction and
//      keep the returned pointer/reference; never register per event.
//   3. Everything here lives in `inline namespace live` so an EW_OBS=OFF
//      build (which compiles null.hpp instead) shares no mangled names
//      with this implementation — scripts/tier1.sh greps the archives for
//      `obs::live` symbols to prove the null build compiled out.
//
// Determinism: scrape output is sorted by (name, labels), all sums are
// integers, and the clock is pluggable (set_clock), so a fixed workload
// produces a byte-identical JSON snapshot regardless of thread count or
// merge order. tests/test_obs.cpp holds the golden test.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/snapshot.hpp"

namespace edgewatch::obs {
inline namespace live {

/// Compile-time flag for call sites: `if constexpr (obs::kEnabled)` guards
/// non-trivial instrumentation (clock reads, delta flushes) so the OFF
/// build provably contains none of it.
inline constexpr bool kEnabled = true;

/// Fixed shard pool. Threads are assigned round-robin at first use; two
/// threads may share a shard under contention, which only costs a cache
/// bounce, never correctness (all cells are atomics).
inline constexpr std::size_t kShards = 16;

[[nodiscard]] inline std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

/// Monotonic counter. One padded atomic cell per shard; value() sums them.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    cells_[this_thread_shard()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) total += cell.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Cell, kShards> cells_{};
};

/// Last-writer-wins signed gauge (overload state, health tallies, ...).
class Gauge {
 public:
  void set(std::int64_t value) noexcept { value_.store(value, std::memory_order_relaxed); }
  void add(std::int64_t delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-boundary histogram with per-shard bucket arrays. Bucket i counts
/// values <= bounds[i] (Prometheus `le` semantics); one extra bucket holds
/// the overflow. Shards merge by element-wise sum — the oracle test checks
/// associativity and commutativity against a single-shard reference.
class Histogram {
 public:
  explicit Histogram(std::span<const std::int64_t> bounds);

  void record(std::int64_t value) noexcept { record_in_shard(this_thread_shard(), value); }
  void record_in_shard(std::size_t shard, std::int64_t value) noexcept;

  /// Merged view of one or more shards; the unit for merge-order tests.
  struct Merged {
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 buckets
    std::uint64_t count = 0;
    std::int64_t sum = 0;
    void merge(const Merged& other);
    bool operator==(const Merged&) const = default;
  };
  [[nodiscard]] Merged shard_snapshot(std::size_t shard) const;
  [[nodiscard]] Merged merged() const;
  [[nodiscard]] const std::vector<std::int64_t>& bounds() const noexcept { return bounds_; }

 private:
  std::vector<std::int64_t> bounds_;
  struct Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    std::atomic<std::int64_t> sum{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Default exponential latency boundaries in nanoseconds: 64ns · 4^k,
/// k = 0..15 (64ns .. ~69s). Wide enough for sub-µs probe stages and
/// multi-second lake rebuilds alike at 16 buckets per shard.
[[nodiscard]] std::span<const std::int64_t> default_latency_bounds_ns() noexcept;

class Registry;

/// Pre-resolved span target: histogram plus ring-trace flag. Resolve once
/// via Registry::span_site, then constructing a Span is two clock reads.
struct SpanSite {
  Registry* registry = nullptr;
  Histogram* hist = nullptr;
  std::string name;
  bool traced = true;  ///< false: histogram only, no ring entry (hot sites)
};

/// RAII timer over a SpanSite. Duration lands in the site histogram; if
/// the site is traced, a SpanEvent is pushed to the registry ring.
class Span {
 public:
  explicit Span(SpanSite& site) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }
  void finish() noexcept;

 private:
  SpanSite* site_;
  std::uint64_t start_ns_;
};

/// Unregisters a scrape callback when destroyed.
class CallbackHandle {
 public:
  CallbackHandle() = default;
  CallbackHandle(Registry* registry, std::uint64_t id) : registry_(registry), id_(id) {}
  CallbackHandle(CallbackHandle&& other) noexcept { *this = std::move(other); }
  CallbackHandle& operator=(CallbackHandle&& other) noexcept;
  CallbackHandle(const CallbackHandle&) = delete;
  CallbackHandle& operator=(const CallbackHandle&) = delete;
  ~CallbackHandle() { reset(); }
  void reset() noexcept;

 private:
  Registry* registry_ = nullptr;
  std::uint64_t id_ = 0;
};

class Registry {
 public:
  Registry();

  /// Process-wide instance. Deliberately leaked so components that outlive
  /// main() can still flush counters during shutdown.
  static Registry& global();

  // Registration: idempotent per (name, labels) key; returned references
  // stay valid for the registry's lifetime.
  Counter& counter(std::string_view name, std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view labels = {});
  Histogram& histogram(std::string_view name, std::span<const std::int64_t> bounds = {},
                       std::string_view labels = {});
  SpanSite& span_site(std::string_view name, bool traced = true);

  /// Pull-style gauge evaluated at scrape time. Only use over state that
  /// is itself safe to read concurrently (atomics); prefer push gauges.
  [[nodiscard]] CallbackHandle on_scrape(std::string_view name, std::string_view labels,
                                         std::function<std::int64_t()> fn);

  using ClockFn = std::uint64_t (*)();
  void set_clock(ClockFn clock) noexcept { clock_.store(clock, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return clock_.load(std::memory_order_relaxed)();
  }

  /// Merge all shards and callbacks into one snapshot, sorted by
  /// (name, labels). Safe to call while writers are recording.
  [[nodiscard]] Snapshot scrape() const;

  /// Bounded trace ring; oldest entries are overwritten. Sized for coarse
  /// pipeline events (batches, flushes, checkpoints), not per-packet work.
  static constexpr std::size_t kSpanRingCapacity = 4096;
  void record_span(const SpanSite& site, std::uint64_t start_ns, std::uint64_t dur_ns);

 private:
  friend class CallbackHandle;
  void drop_callback(std::uint64_t id) noexcept;

  struct ScrapeCallback {
    std::string name;
    std::string labels;
    std::function<std::int64_t()> fn;
  };

  mutable std::mutex mutex_;  // registration + callback table + scrape
  // Keyed by name + '\x1f' + labels: map order == (name, labels) order.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<SpanSite>> span_sites_;
  std::map<std::uint64_t, ScrapeCallback> callbacks_;
  std::uint64_t next_callback_id_ = 1;

  struct RingEvent {
    const SpanSite* site;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
    std::uint32_t shard;
  };
  mutable std::mutex ring_mutex_;
  std::vector<RingEvent> ring_;
  std::size_t ring_next_ = 0;

  std::atomic<ClockFn> clock_;
};

}  // namespace live
}  // namespace edgewatch::obs
