// Point-in-time snapshot of an obs::Registry plus the two exposition
// formats: a JSON document (machine-readable, byte-deterministic for a
// fixed workload and clock) and Prometheus-style text (scrapeable by the
// standard toolchain when redirected to a file — no network dependency).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace edgewatch::obs {
inline namespace live {

struct Snapshot {
  std::uint64_t scraped_at_ns = 0;

  struct CounterValue {
    std::string name;
    std::string labels;  ///< Prometheus label body, e.g. `stage="decode"`; may be empty
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::string labels;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::string labels;
    std::vector<std::int64_t> bounds;   ///< upper bucket bounds (`le`), ns
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    std::int64_t sum = 0;
  };
  struct SpanEvent {
    std::string name;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t shard = 0;
  };

  // Each list sorted by (name, labels); spans by (start_ns, name).
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  std::vector<SpanEvent> spans;
};

enum class ExportFormat : std::uint8_t { kJson, kPrometheus };

/// JSON exposition. Integer-only values and sorted metric order make the
/// output byte-identical for identical recorded data; spans are excluded
/// by default because ring order is timing-dependent.
[[nodiscard]] std::string to_json(const Snapshot& snapshot, bool include_spans = false);

/// Prometheus text exposition (`# TYPE` headers, `_bucket{le=...}`,
/// `_sum`, `_count`). Spans appear only through their histograms.
[[nodiscard]] std::string to_prometheus(const Snapshot& snapshot);

/// Serialize and write atomically-ish (truncate + write + flush).
bool write_snapshot(const Snapshot& snapshot, const std::filesystem::path& path,
                    ExportFormat format, bool include_spans = false);

}  // namespace live
}  // namespace edgewatch::obs
