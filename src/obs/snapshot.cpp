#include "obs/snapshot.hpp"

#include <cstdio>
#include <fstream>
#include <string_view>

namespace edgewatch::obs {
inline namespace live {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string to_json(const Snapshot& snapshot, bool include_spans) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"scraped_at_ns\": " + std::to_string(snapshot.scraped_at_ns) + ",\n";

  out += "  \"counters\": [";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_json_string(out, c.name);
    out += ", \"labels\": ";
    append_json_string(out, c.labels);
    out += ", \"value\": " + std::to_string(c.value) + "}";
  }
  out += snapshot.counters.empty() ? "],\n" : "\n  ],\n";

  out += "  \"gauges\": [";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_json_string(out, g.name);
    out += ", \"labels\": ";
    append_json_string(out, g.labels);
    out += ", \"value\": " + std::to_string(g.value) + "}";
  }
  out += snapshot.gauges.empty() ? "],\n" : "\n  ],\n";

  out += "  \"histograms\": [";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_json_string(out, h.name);
    out += ", \"labels\": ";
    append_json_string(out, h.labels);
    out += ", \"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + std::to_string(h.sum);
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b != 0) out += ", ";
      out += "{\"le\": ";
      out += b < h.bounds.size() ? std::to_string(h.bounds[b]) : std::string("\"inf\"");
      out += ", \"n\": " + std::to_string(h.counts[b]) + "}";
    }
    out += "]}";
  }
  out += snapshot.histograms.empty() ? "]" : "\n  ]";

  if (include_spans) {
    out += ",\n  \"spans\": [";
    for (std::size_t i = 0; i < snapshot.spans.size(); ++i) {
      const auto& sp = snapshot.spans[i];
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"name\": ";
      append_json_string(out, sp.name);
      out += ", \"start_ns\": " + std::to_string(sp.start_ns);
      out += ", \"dur_ns\": " + std::to_string(sp.dur_ns);
      out += ", \"shard\": " + std::to_string(sp.shard) + "}";
    }
    out += snapshot.spans.empty() ? "]" : "\n  ]";
  }
  out += "\n}\n";
  return out;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  const auto metric_line = [&out](const std::string& name, const std::string& labels,
                                  const std::string& value) {
    out += name;
    if (!labels.empty()) out += "{" + labels + "}";
    out += " " + value + "\n";
  };
  std::string last_typed;
  const auto type_header = [&](const std::string& name, const char* type) {
    if (name == last_typed) return;  // one header per metric family
    out += "# TYPE " + name + " " + type + "\n";
    last_typed = name;
  };
  for (const auto& c : snapshot.counters) {
    type_header(c.name, "counter");
    metric_line(c.name, c.labels, std::to_string(c.value));
  }
  for (const auto& g : snapshot.gauges) {
    type_header(g.name, "gauge");
    metric_line(g.name, g.labels, std::to_string(g.value));
  }
  for (const auto& h : snapshot.histograms) {
    type_header(h.name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      std::string labels = h.labels;
      if (!labels.empty()) labels += ",";
      labels += "le=\"";
      labels += b < h.bounds.size() ? std::to_string(h.bounds[b]) : std::string("+Inf");
      labels += "\"";
      metric_line(h.name + "_bucket", labels, std::to_string(cumulative));
    }
    metric_line(h.name + "_sum", h.labels, std::to_string(h.sum));
    metric_line(h.name + "_count", h.labels, std::to_string(h.count));
  }
  return out;
}

bool write_snapshot(const Snapshot& snapshot, const std::filesystem::path& path,
                    ExportFormat format, bool include_spans) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << (format == ExportFormat::kJson ? to_json(snapshot, include_spans)
                                        : to_prometheus(snapshot));
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace live
}  // namespace edgewatch::obs
