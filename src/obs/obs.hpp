// Umbrella header for the observability subsystem. Include this, never
// registry.hpp/null.hpp directly: it selects the live implementation when
// the build defines EW_OBS_ENABLED (CMake option EW_OBS, default ON) and
// the zero-cost null mirror otherwise. Call sites stay identical in both
// modes; guard anything beyond a plain counter/record call with
// `if constexpr (obs::kEnabled)` so the OFF build compiles it out.
#pragma once

#if defined(EW_OBS_ENABLED) && EW_OBS_ENABLED
#include "obs/registry.hpp"   // IWYU pragma: export
#include "obs/snapshot.hpp"   // IWYU pragma: export
#else
#include "obs/null.hpp"       // IWYU pragma: export
#endif
