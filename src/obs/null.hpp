// Null observability backend, selected by obs.hpp when EW_OBS=OFF.
//
// Mirrors the live API (registry.hpp + snapshot.hpp) with empty inline
// bodies so every instrumentation site compiles unchanged and then folds
// to nothing: `kEnabled` is false, so `if constexpr (obs::kEnabled)`
// blocks are discarded, and the remaining registration calls return
// references to shared do-nothing singletons. Lives in
// `inline namespace nullobs` so no mangled name collides with the live
// implementation — tier1.sh proves an OFF build by grepping archives for
// the absence of `obs::live` symbols.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace edgewatch::obs {
inline namespace nullobs {

inline constexpr bool kEnabled = false;
inline constexpr std::size_t kShards = 1;

[[nodiscard]] inline std::size_t this_thread_shard() noexcept { return 0; }

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  [[nodiscard]] std::int64_t value() const noexcept { return 0; }
};

class Histogram {
 public:
  void record(std::int64_t) noexcept {}
  void record_in_shard(std::size_t, std::int64_t) noexcept {}
  struct Merged {
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    std::int64_t sum = 0;
    void merge(const Merged&) {}
    bool operator==(const Merged&) const = default;
  };
  [[nodiscard]] Merged shard_snapshot(std::size_t) const { return {}; }
  [[nodiscard]] Merged merged() const { return {}; }
  [[nodiscard]] const std::vector<std::int64_t>& bounds() const noexcept { return empty_; }

 private:
  inline static const std::vector<std::int64_t> empty_{};
};

[[nodiscard]] inline std::span<const std::int64_t> default_latency_bounds_ns() noexcept {
  return {};
}

struct SpanSite {};

class Span {
 public:
  explicit Span(SpanSite&) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void finish() noexcept {}
};

class CallbackHandle {
 public:
  void reset() noexcept {}
};

struct Snapshot {
  std::uint64_t scraped_at_ns = 0;
  struct CounterValue {
    std::string name, labels;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name, labels;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name, labels;
    std::vector<std::int64_t> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    std::int64_t sum = 0;
  };
  struct SpanEvent {
    std::string name;
    std::uint64_t start_ns = 0, dur_ns = 0;
    std::uint32_t shard = 0;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  std::vector<SpanEvent> spans;
};

enum class ExportFormat : std::uint8_t { kJson, kPrometheus };

class Registry {
 public:
  static Registry& global() noexcept { return instance_; }
  Counter& counter(std::string_view, std::string_view = {}) noexcept { return counter_; }
  Gauge& gauge(std::string_view, std::string_view = {}) noexcept { return gauge_; }
  Histogram& histogram(std::string_view, std::span<const std::int64_t> = {},
                       std::string_view = {}) noexcept {
    return histogram_;
  }
  SpanSite& span_site(std::string_view, bool = true) noexcept { return span_site_; }
  [[nodiscard]] CallbackHandle on_scrape(std::string_view, std::string_view,
                                         std::function<std::int64_t()>) noexcept {
    return {};
  }
  using ClockFn = std::uint64_t (*)();
  void set_clock(ClockFn) noexcept {}
  [[nodiscard]] std::uint64_t now_ns() const noexcept { return 0; }
  [[nodiscard]] Snapshot scrape() const { return {}; }
  static constexpr std::size_t kSpanRingCapacity = 0;
  void record_span(const SpanSite&, std::uint64_t, std::uint64_t) noexcept {}

 private:
  // Defined out-of-class: an inline static member of the class's own type
  // is ill-formed while Registry is still incomplete.
  static Registry instance_;
  inline static Counter counter_{};
  inline static Gauge gauge_{};
  inline static Histogram histogram_{};
  inline static SpanSite span_site_{};
};

inline Registry Registry::instance_{};

inline std::string to_json(const Snapshot&, bool = false) { return "{}\n"; }
inline std::string to_prometheus(const Snapshot&) { return {}; }

inline bool write_snapshot(const Snapshot&, const std::filesystem::path& path, ExportFormat,
                           bool = false) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{}\n";
  return static_cast<bool>(out);
}

}  // namespace nullobs
}  // namespace edgewatch::obs
