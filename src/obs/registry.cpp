#include "obs/registry.hpp"

#include <algorithm>
#include <chrono>
#include <tuple>

namespace edgewatch::obs {
inline namespace live {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

std::string make_key(std::string_view name, std::string_view labels) {
  std::string key;
  key.reserve(name.size() + 1 + labels.size());
  key.append(name);
  key.push_back('\x1f');
  key.append(labels);
  return key;
}

}  // namespace

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::span<const std::int64_t> bounds)
    : bounds_(bounds.begin(), bounds.end()) {
  for (auto& shard : shards_) {
    shard.counts = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) shard.counts[i].store(0);
  }
}

void Histogram::record_in_shard(std::size_t shard_index, std::int64_t value) noexcept {
  // First bucket whose bound admits the value (le semantics); the slot past
  // the last bound is the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  auto& shard = shards_[shard_index % kShards];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::Merged::merge(const Merged& other) {
  if (counts.empty()) counts.assign(other.counts.size(), 0);
  for (std::size_t i = 0; i < counts.size() && i < other.counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum += other.sum;
}

Histogram::Merged Histogram::shard_snapshot(std::size_t shard_index) const {
  const auto& shard = shards_[shard_index % kShards];
  Merged out;
  out.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out.counts[i] = shard.counts[i].load(std::memory_order_relaxed);
    out.count += out.counts[i];
  }
  out.sum = shard.sum.load(std::memory_order_relaxed);
  return out;
}

Histogram::Merged Histogram::merged() const {
  Merged out;
  for (std::size_t s = 0; s < kShards; ++s) out.merge(shard_snapshot(s));
  return out;
}

std::span<const std::int64_t> default_latency_bounds_ns() noexcept {
  // 64ns · 4^k, k = 0..15: covers a cached flow-table hit through a
  // multi-second day rebuild in 16 buckets.
  static const std::int64_t kBounds[] = {
      64,         256,         1024,        4096,          16384,         65536,
      262144,     1048576,     4194304,     16777216,      67108864,      268435456,
      1073741824, 4294967296,  17179869184, 68719476736,
  };
  return kBounds;
}

// --------------------------------------------------------------------- Span

Span::Span(SpanSite& site) noexcept : site_(&site), start_ns_(site.registry->now_ns()) {}

void Span::finish() noexcept {
  if (site_ == nullptr) return;
  const std::uint64_t end_ns = site_->registry->now_ns();
  const std::uint64_t dur = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  site_->hist->record(static_cast<std::int64_t>(dur));
  if (site_->traced) site_->registry->record_span(*site_, start_ns_, dur);
  site_ = nullptr;
}

// ----------------------------------------------------------- CallbackHandle

CallbackHandle& CallbackHandle::operator=(CallbackHandle&& other) noexcept {
  if (this != &other) {
    reset();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void CallbackHandle::reset() noexcept {
  if (registry_ != nullptr) registry_->drop_callback(id_);
  registry_ = nullptr;
  id_ = 0;
}

// ----------------------------------------------------------------- Registry

Registry::Registry() : clock_(&steady_now_ns) { ring_.reserve(kSpanRingCapacity); }

Registry& Registry::global() {
  // Leaked on purpose: see declaration.
  static Registry* const instance = new Registry();
  return *instance;
}

Counter& Registry::counter(std::string_view name, std::string_view labels) {
  const std::lock_guard lock(mutex_);
  auto& slot = counters_[make_key(name, labels)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view name, std::string_view labels) {
  const std::lock_guard lock(mutex_);
  auto& slot = gauges_[make_key(name, labels)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(std::string_view name, std::span<const std::int64_t> bounds,
                               std::string_view labels) {
  const std::lock_guard lock(mutex_);
  auto& slot = histograms_[make_key(name, labels)];
  if (!slot) {
    slot = std::make_unique<Histogram>(bounds.empty() ? default_latency_bounds_ns() : bounds);
  }
  return *slot;
}

SpanSite& Registry::span_site(std::string_view name, bool traced) {
  Histogram& hist = histogram(std::string(name) + "_ns");
  const std::lock_guard lock(mutex_);
  auto& slot = span_sites_[make_key(name, {})];
  if (!slot) {
    slot = std::make_unique<SpanSite>();
    slot->registry = this;
    slot->hist = &hist;
    slot->name = std::string(name);
    slot->traced = traced;
  }
  return *slot;
}

CallbackHandle Registry::on_scrape(std::string_view name, std::string_view labels,
                                   std::function<std::int64_t()> fn) {
  const std::lock_guard lock(mutex_);
  const std::uint64_t id = next_callback_id_++;
  callbacks_.emplace(id, ScrapeCallback{std::string(name), std::string(labels), std::move(fn)});
  return CallbackHandle{this, id};
}

void Registry::drop_callback(std::uint64_t id) noexcept {
  const std::lock_guard lock(mutex_);
  callbacks_.erase(id);
}

void Registry::record_span(const SpanSite& site, std::uint64_t start_ns, std::uint64_t dur_ns) {
  const auto shard = static_cast<std::uint32_t>(this_thread_shard());
  const std::lock_guard lock(ring_mutex_);
  if (ring_.size() < kSpanRingCapacity) {
    ring_.push_back({&site, start_ns, dur_ns, shard});
  } else {
    ring_[ring_next_] = {&site, start_ns, dur_ns, shard};
  }
  ring_next_ = (ring_next_ + 1) % kSpanRingCapacity;
}

Snapshot Registry::scrape() const {
  Snapshot snap;
  snap.scraped_at_ns = now_ns();
  {
    const std::lock_guard lock(mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto& [key, counter] : counters_) {
      const auto split = key.find('\x1f');
      snap.counters.push_back({key.substr(0, split), key.substr(split + 1), counter->value()});
    }
    snap.gauges.reserve(gauges_.size() + callbacks_.size());
    for (const auto& [key, gauge] : gauges_) {
      const auto split = key.find('\x1f');
      snap.gauges.push_back({key.substr(0, split), key.substr(split + 1), gauge->value()});
    }
    for (const auto& [id, cb] : callbacks_) {
      snap.gauges.push_back({cb.name, cb.labels, cb.fn()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [key, hist] : histograms_) {
      const auto split = key.find('\x1f');
      auto merged = hist->merged();
      snap.histograms.push_back({key.substr(0, split), key.substr(split + 1), hist->bounds(),
                                 std::move(merged.counts), merged.count, merged.sum});
    }
  }
  {
    const std::lock_guard lock(ring_mutex_);
    snap.spans.reserve(ring_.size());
    // Oldest-first: the slot at ring_next_ is the next to be overwritten.
    const std::size_t n = ring_.size();
    const std::size_t first = n < kSpanRingCapacity ? 0 : ring_next_;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& ev = ring_[(first + i) % n];
      snap.spans.push_back({ev.site->name, ev.start_ns, ev.dur_ns, ev.shard});
    }
  }
  // Map iteration already yields (name, labels) order for the metric lists;
  // callback gauges were appended, so re-sort that one list.
  std::sort(snap.gauges.begin(), snap.gauges.end(), [](const auto& a, const auto& b) {
    return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
  });
  std::stable_sort(snap.spans.begin(), snap.spans.end(), [](const auto& a, const auto& b) {
    return std::tie(a.start_ns, a.name) < std::tie(b.start_ns, b.name);
  });
  return snap;
}

}  // namespace live
}  // namespace edgewatch::obs
