// Classic libpcap capture-file support (the 24-byte global header format,
// magic 0xa1b2c3d4 / 0xd4c3b2a1). Lets the probe consume real captures and
// lets the synthetic generators emit traces any standard tool can open —
// the interop boundary between this reproduction and the outside world.
//
// Scope: linktype EN10MB (Ethernet), microsecond timestamps, both
// endiannesses on read, native little-endian on write. The nanosecond
// variants (0xa1b23c4d / 0x4d3cb2a1) are read with timestamps truncated to
// microseconds; PcapStats reports that the file carried nanosecond stamps.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>

#include "core/result.hpp"
#include "net/packet.hpp"

namespace edgewatch::net {

struct PcapStats {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;         ///< Captured bytes (sum of incl_len).
  std::uint64_t truncated = 0;     ///< Frames with incl_len < orig_len.
  std::uint64_t oversnap = 0;      ///< Frames whose incl_len exceeds snaplen
                                   ///< (malformed, but still delivered).
  bool nanosecond_timestamps = false;  ///< File used a nanosecond magic.
};

/// Write a trace as a pcap file. Returns bytes written, 0 on I/O error.
std::uint64_t write_pcap(const std::filesystem::path& path, const Trace& trace,
                         std::uint32_t snaplen = 65535);

/// Stream frames from a pcap file. Errors: kIoError (unopenable),
/// kTruncated (global header cut short), kBadMagic, kUnsupported (non-
/// Ethernet linktype), kCorrupt (snaplen == 0 — no capture tool writes
/// that, so the header bytes cannot be trusted). A frame cut short
/// mid-file ends the stream gracefully (counted frames are still
/// reported). (Result's optional-like surface keeps `if (stats) ...
/// stats->frames` call sites working.)
core::Result<PcapStats> read_pcap(const std::filesystem::path& path,
                                  const std::function<void(Frame&&)>& fn);

/// Convenience: whole file into a Trace. Same errors as read_pcap.
core::Result<Trace> load_pcap(const std::filesystem::path& path);

}  // namespace edgewatch::net
