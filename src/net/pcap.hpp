// Classic libpcap capture-file support (the 24-byte global header format,
// magic 0xa1b2c3d4 / 0xd4c3b2a1). Lets the probe consume real captures and
// lets the synthetic generators emit traces any standard tool can open —
// the interop boundary between this reproduction and the outside world.
//
// Scope: linktype EN10MB (Ethernet), microsecond timestamps, both
// endiannesses on read, native little-endian on write. The nanosecond
// variant (0xa1b23c4d) is read with timestamps truncated to microseconds.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>

#include "net/packet.hpp"

namespace edgewatch::net {

struct PcapStats {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;         ///< Captured bytes (sum of incl_len).
  std::uint64_t truncated = 0;     ///< Frames with incl_len < orig_len.
};

/// Write a trace as a pcap file. Returns bytes written, 0 on I/O error.
std::uint64_t write_pcap(const std::filesystem::path& path, const Trace& trace,
                         std::uint32_t snaplen = 65535);

/// Stream frames from a pcap file. Returns stats on success; nullopt on a
/// bad magic/linktype or truncated header. A frame cut short mid-file ends
/// the stream gracefully (counted frames are still reported).
std::optional<PcapStats> read_pcap(const std::filesystem::path& path,
                                   const std::function<void(Frame&&)>& fn);

/// Convenience: whole file into a Trace.
std::optional<Trace> load_pcap(const std::filesystem::path& path);

}  // namespace edgewatch::net
