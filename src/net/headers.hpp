// L2-L4 wire formats: Ethernet II, IPv4, TCP (with options), UDP.
//
// Every header type offers `parse(ByteReader&)` returning std::optional and
// `serialize(ByteWriter&)`; round-tripping is covered by tests. Parsing is
// strict about structure (lengths, version fields) but deliberately tolerant
// about semantics (e.g. it does not reject odd port numbers) — a passive
// probe must survive whatever appears on the wire.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/bytes.hpp"
#include "core/types.hpp"

namespace edgewatch::net {

/// EtherType values the probe cares about.
enum class EtherType : std::uint16_t {
  kIPv4 = 0x0800,
  kIPv6 = 0x86dd,
  kArp = 0x0806,
  kVlan = 0x8100,
};

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  core::MacAddress dst;
  core::MacAddress src;
  std::uint16_t ether_type = 0;

  static std::optional<EthernetHeader> parse(core::ByteReader& r) noexcept;
  /// Parse directly into `out` (no temporary + move on the per-frame path).
  /// Same accept/reject semantics as parse(); `out` is garbage on failure.
  static bool parse_into(core::ByteReader& r, EthernetHeader& out) noexcept;
  void serialize(core::ByteWriter& w) const;
};

/// IPv4 header. Options are preserved as raw bytes (the probe never needs
/// to interpret them but must skip them correctly to find L4).
struct IPv4Header {
  static constexpr std::size_t kMinSize = 20;

  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint8_t flags = 0;           ///< 3-bit flags field (bit 1 = DF, bit 0 = MF).
  std::uint16_t fragment_offset = 0;///< In 8-byte units.
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;       ///< As seen on the wire (recomputed on serialize).
  core::IPv4Address src;
  core::IPv4Address dst;
  std::vector<std::byte> options;   ///< Raw, length 0..40, multiple of 4.

  [[nodiscard]] std::size_t header_length() const noexcept { return kMinSize + options.size(); }
  [[nodiscard]] std::size_t payload_length() const noexcept {
    return total_length >= header_length() ? total_length - header_length() : 0;
  }
  [[nodiscard]] bool is_fragment() const noexcept {
    return fragment_offset != 0 || (flags & 0x1) != 0;
  }
  [[nodiscard]] core::TransportProto transport() const noexcept {
    switch (protocol) {
      case 6: return core::TransportProto::kTcp;
      case 17: return core::TransportProto::kUdp;
      default: return core::TransportProto::kOther;
    }
  }

  static std::optional<IPv4Header> parse(core::ByteReader& r) noexcept;
  static bool parse_into(core::ByteReader& r, IPv4Header& out) noexcept;
  /// Serializes with a freshly computed checksum; `total_length` must
  /// already include the payload.
  void serialize(core::ByteWriter& w) const;

  /// RFC 1071 checksum over a header span with its checksum field zeroed.
  static std::uint16_t compute_checksum(std::span<const std::byte> header) noexcept;
};

/// TCP flag bits.
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
  static constexpr std::uint8_t kUrg = 0x20;
};

/// A parsed TCP option (kind + raw payload).
struct TcpOption {
  std::uint8_t kind = 0;
  std::vector<std::byte> data;

  static constexpr std::uint8_t kEnd = 0;
  static constexpr std::uint8_t kNop = 1;
  static constexpr std::uint8_t kMss = 2;
  static constexpr std::uint8_t kWindowScale = 3;
  static constexpr std::uint8_t kSackPermitted = 4;
  static constexpr std::uint8_t kSack = 5;
  static constexpr std::uint8_t kTimestamps = 8;
};

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;
  std::vector<TcpOption> options;

  [[nodiscard]] bool has(std::uint8_t flag) const noexcept { return (flags & flag) != 0; }
  [[nodiscard]] std::size_t header_length() const noexcept;
  /// MSS option value if present.
  [[nodiscard]] std::optional<std::uint16_t> mss() const noexcept;

  static std::optional<TcpHeader> parse(core::ByteReader& r) noexcept;
  static bool parse_into(core::ByteReader& r, TcpHeader& out) noexcept;
  void serialize(core::ByteWriter& w) const;
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  ///< Header + payload.
  std::uint16_t checksum = 0;

  static std::optional<UdpHeader> parse(core::ByteReader& r) noexcept;
  static bool parse_into(core::ByteReader& r, UdpHeader& out) noexcept;
  void serialize(core::ByteWriter& w) const;
};

}  // namespace edgewatch::net
