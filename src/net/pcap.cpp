#include "net/pcap.hpp"

#include <fstream>

namespace edgewatch::net {

namespace {

constexpr std::uint32_t kMagicUsecLE = 0xa1b2c3d4;
constexpr std::uint32_t kMagicUsecBE = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNsecLE = 0xa1b23c4d;
constexpr std::uint32_t kMagicNsecBE = 0x4d3cb2a1;
constexpr std::uint32_t kLinktypeEthernet = 1;

void put32(std::ofstream& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 4);
}

void put16(std::ofstream& out, std::uint16_t v) {
  char b[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  out.write(b, 2);
}

class HeaderReader {
 public:
  explicit HeaderReader(std::ifstream& in) : in_(in) {}

  bool read32(std::uint32_t& out) {
    unsigned char b[4];
    if (!in_.read(reinterpret_cast<char*>(b), 4)) return false;
    out = swapped_ ? (std::uint32_t{b[0]} << 24) | (std::uint32_t{b[1]} << 16) |
                         (std::uint32_t{b[2]} << 8) | b[3]
                   : (std::uint32_t{b[3]} << 24) | (std::uint32_t{b[2]} << 16) |
                         (std::uint32_t{b[1]} << 8) | b[0];
    return true;
  }
  bool read16(std::uint16_t& out) {
    unsigned char b[2];
    if (!in_.read(reinterpret_cast<char*>(b), 2)) return false;
    out = swapped_ ? static_cast<std::uint16_t>((b[0] << 8) | b[1])
                   : static_cast<std::uint16_t>((b[1] << 8) | b[0]);
    return true;
  }
  void set_swapped(bool swapped) { swapped_ = swapped; }

 private:
  std::ifstream& in_;
  bool swapped_ = false;
};

}  // namespace

std::uint64_t write_pcap(const std::filesystem::path& path, const Trace& trace,
                         std::uint32_t snaplen) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return 0;
  put32(out, kMagicUsecLE);
  put16(out, 2);  // version major
  put16(out, 4);  // version minor
  put32(out, 0);  // thiszone
  put32(out, 0);  // sigfigs
  put32(out, snaplen);
  put32(out, kLinktypeEthernet);
  std::uint64_t written = 24;
  for (const auto& frame : trace) {
    const auto micros = frame.timestamp.micros();
    const auto secs = micros >= 0 ? micros / 1'000'000 : 0;
    const auto usecs = micros >= 0 ? micros % 1'000'000 : 0;
    const auto incl = static_cast<std::uint32_t>(
        std::min<std::size_t>(frame.data.size(), snaplen));
    put32(out, static_cast<std::uint32_t>(secs));
    put32(out, static_cast<std::uint32_t>(usecs));
    put32(out, incl);
    put32(out, static_cast<std::uint32_t>(frame.data.size()));
    out.write(reinterpret_cast<const char*>(frame.data.data()), incl);
    written += 16 + incl;
  }
  return out ? written : 0;
}

core::Result<PcapStats> read_pcap(const std::filesystem::path& path,
                                  const std::function<void(Frame&&)>& fn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return core::Errc::kIoError;
  HeaderReader h(in);
  std::uint32_t magic = 0;
  if (!h.read32(magic)) return core::Errc::kTruncated;
  bool nanoseconds = false;
  if (magic == kMagicUsecBE) {
    h.set_swapped(true);
  } else if (magic == kMagicNsecLE) {
    nanoseconds = true;
  } else if (magic == kMagicNsecBE) {
    nanoseconds = true;
    h.set_swapped(true);
  } else if (magic != kMagicUsecLE) {
    return core::Errc::kBadMagic;
  }
  std::uint16_t version_major = 0, version_minor = 0;
  std::uint32_t zone = 0, sigfigs = 0, snaplen = 0, linktype = 0;
  if (!h.read16(version_major) || !h.read16(version_minor) || !h.read32(zone) ||
      !h.read32(sigfigs) || !h.read32(snaplen) || !h.read32(linktype)) {
    return core::Errc::kTruncated;
  }
  if (linktype != kLinktypeEthernet) return core::Errc::kUnsupported;
  // No capture tool writes snaplen 0: the header bytes cannot be trusted.
  if (snaplen == 0) return core::Errc::kCorrupt;

  PcapStats stats;
  stats.nanosecond_timestamps = nanoseconds;
  while (true) {
    std::uint32_t sec = 0, frac = 0, incl = 0, orig = 0;
    if (!h.read32(sec)) break;  // clean EOF
    if (!h.read32(frac) || !h.read32(incl) || !h.read32(orig)) break;
    if (incl > 256 * 1024 * 1024) break;  // absurd length: corrupt file
    Frame frame;
    frame.data.resize(incl);
    if (!in.read(reinterpret_cast<char*>(frame.data.data()),
                 static_cast<std::streamsize>(incl))) {
      break;  // truncated final record
    }
    const std::int64_t micros =
        static_cast<std::int64_t>(sec) * 1'000'000 +
        (nanoseconds ? frac / 1000 : frac);
    frame.timestamp = core::Timestamp{micros};
    ++stats.frames;
    stats.bytes += incl;
    stats.truncated += incl < orig;
    // A capture can never hold more than snaplen bytes of a frame; count
    // the violation (the bytes are there, so still deliver them) instead
    // of silently treating the file as well-formed.
    stats.oversnap += incl > snaplen;
    fn(std::move(frame));
  }
  return stats;
}

core::Result<Trace> load_pcap(const std::filesystem::path& path) {
  Trace trace;
  const auto stats = read_pcap(path, [&trace](Frame&& f) { trace.add(std::move(f)); });
  if (!stats) return stats.error();
  return trace;
}

}  // namespace edgewatch::net
