#include "net/packet.hpp"

#include <algorithm>

namespace edgewatch::net {

std::size_t DecodedPacket::transport_payload_declared() const noexcept {
  const std::size_t ip_payload = ip.payload_length();
  std::size_t l4_header = 0;
  if (tcp) {
    l4_header = tcp->header_length();
  } else if (udp) {
    l4_header = UdpHeader::kSize;
  }
  return ip_payload >= l4_header ? ip_payload - l4_header : 0;
}

std::optional<DecodedPacket> decode_frame(const Frame& frame) noexcept {
  std::optional<DecodedPacket> out(std::in_place);
  if (!decode_frame_into(frame, *out)) return std::nullopt;
  return out;
}

bool decode_frame_into(const Frame& frame, DecodedPacket& pkt) noexcept {
  // Headers are parsed straight into the packet's fields: on the per-frame
  // hot path the temporary-header-then-move dance costs more than the
  // parsing itself. Clear what parse_into may leave stale on reuse.
  pkt.tcp.reset();
  pkt.udp.reset();
  pkt.ip.options.clear();
  core::ByteReader r{frame.data};
  if (!EthernetHeader::parse_into(r, pkt.eth)) return false;
  // Skip a single 802.1Q tag if present.
  if (pkt.eth.ether_type == static_cast<std::uint16_t>(EtherType::kVlan)) {
    r.skip(2);  // PCP/DEI/VID
    pkt.eth.ether_type = r.u16();
  }
  if (pkt.eth.ether_type != static_cast<std::uint16_t>(EtherType::kIPv4)) return false;

  if (!IPv4Header::parse_into(r, pkt.ip)) return false;
  pkt.timestamp = frame.timestamp;

  // Non-first fragments carry no L4 header we could parse.
  if (pkt.ip.fragment_offset != 0) {
    pkt.payload = {};
    return true;
  }

  switch (pkt.ip.transport()) {
    case core::TransportProto::kTcp:
      if (!TcpHeader::parse_into(r, pkt.tcp.emplace())) return false;
      break;
    case core::TransportProto::kUdp:
      if (!UdpHeader::parse_into(r, pkt.udp.emplace())) return false;
      break;
    default:
      break;
  }
  pkt.payload = frame.data.size() > r.position()
                    ? std::span<const std::byte>{frame.data}.subspan(r.position())
                    : std::span<const std::byte>{};
  return true;
}

Frame PacketBuilder::build() const {
  core::ByteWriter l4;
  std::uint8_t protocol = 0;
  if (tcp_) {
    protocol = 6;
    tcp_->serialize(l4);
  } else if (udp_) {
    protocol = 17;
    UdpHeader h = *udp_;
    h.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload_.size());
    h.serialize(l4);
  }
  l4.bytes(payload_);

  IPv4Header ip;
  ip.src = ip_src_;
  ip.dst = ip_dst_;
  ip.ttl = ttl_;
  ip.protocol = protocol;
  ip.total_length = static_cast<std::uint16_t>(IPv4Header::kMinSize + l4.size());

  core::ByteWriter w{EthernetHeader::kSize + ip.total_length};
  EthernetHeader eth;
  eth.src = eth_src_;
  eth.dst = eth_dst_;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::kIPv4);
  eth.serialize(w);
  ip.serialize(w);
  w.bytes(l4.view());

  return Frame{timestamp_, std::move(w).take()};
}

void Trace::sort_by_time() {
  std::stable_sort(frames_.begin(), frames_.end(),
                   [](const Frame& a, const Frame& b) { return a.timestamp < b.timestamp; });
}

}  // namespace edgewatch::net
