#include "net/packet.hpp"

#include <algorithm>

namespace edgewatch::net {

std::size_t DecodedPacket::transport_payload_declared() const noexcept {
  const std::size_t ip_payload = ip.payload_length();
  std::size_t l4_header = 0;
  if (tcp) {
    l4_header = tcp->header_length();
  } else if (udp) {
    l4_header = UdpHeader::kSize;
  }
  return ip_payload >= l4_header ? ip_payload - l4_header : 0;
}

std::optional<DecodedPacket> decode_frame(const Frame& frame) noexcept {
  core::ByteReader r{frame.data};
  auto eth = EthernetHeader::parse(r);
  if (!eth) return std::nullopt;
  // Skip a single 802.1Q tag if present.
  if (eth->ether_type == static_cast<std::uint16_t>(EtherType::kVlan)) {
    r.skip(2);  // PCP/DEI/VID
    eth->ether_type = r.u16();
  }
  if (eth->ether_type != static_cast<std::uint16_t>(EtherType::kIPv4)) return std::nullopt;

  auto ip = IPv4Header::parse(r);
  if (!ip) return std::nullopt;

  DecodedPacket pkt;
  pkt.timestamp = frame.timestamp;
  pkt.eth = *eth;
  pkt.ip = std::move(*ip);

  // Non-first fragments carry no L4 header we could parse.
  if (pkt.ip.fragment_offset != 0) return pkt;

  switch (pkt.ip.transport()) {
    case core::TransportProto::kTcp:
      pkt.tcp = TcpHeader::parse(r);
      if (!pkt.tcp) return std::nullopt;
      break;
    case core::TransportProto::kUdp:
      pkt.udp = UdpHeader::parse(r);
      if (!pkt.udp) return std::nullopt;
      break;
    default:
      break;
  }
  pkt.payload = frame.data.size() > r.position()
                    ? std::span<const std::byte>{frame.data}.subspan(r.position())
                    : std::span<const std::byte>{};
  return pkt;
}

Frame PacketBuilder::build() const {
  core::ByteWriter l4;
  std::uint8_t protocol = 0;
  if (tcp_) {
    protocol = 6;
    tcp_->serialize(l4);
  } else if (udp_) {
    protocol = 17;
    UdpHeader h = *udp_;
    h.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload_.size());
    h.serialize(l4);
  }
  l4.bytes(payload_);

  IPv4Header ip;
  ip.src = ip_src_;
  ip.dst = ip_dst_;
  ip.ttl = ttl_;
  ip.protocol = protocol;
  ip.total_length = static_cast<std::uint16_t>(IPv4Header::kMinSize + l4.size());

  core::ByteWriter w{EthernetHeader::kSize + ip.total_length};
  EthernetHeader eth;
  eth.src = eth_src_;
  eth.dst = eth_dst_;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::kIPv4);
  eth.serialize(w);
  ip.serialize(w);
  w.bytes(l4.view());

  return Frame{timestamp_, std::move(w).take()};
}

void Trace::sort_by_time() {
  std::stable_sort(frames_.begin(), frames_.end(),
                   [](const Frame& a, const Frame& b) { return a.timestamp < b.timestamp; });
}

}  // namespace edgewatch::net
