// Whole-frame decoding and construction.
//
// DecodedPacket is the probe's view of one captured frame: L2-L4 headers
// plus a span over the transport payload. PacketBuilder is the inverse,
// used by tests and the synthetic packet generator to fabricate valid
// frames. Trace is a timestamped in-memory capture buffer standing in for
// the DPDK ring of the paper's probes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/time.hpp"
#include "core/types.hpp"
#include "net/headers.hpp"

namespace edgewatch::net {

/// One frame as delivered by the capture layer.
struct Frame {
  core::Timestamp timestamp;
  std::vector<std::byte> data;
};

/// A decoded frame. Payload spans reference the original frame buffer,
/// which must outlive the DecodedPacket.
struct DecodedPacket {
  core::Timestamp timestamp;
  EthernetHeader eth;
  IPv4Header ip;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::span<const std::byte> payload;  ///< L4 payload (possibly truncated by capture).

  [[nodiscard]] core::FiveTuple five_tuple() const noexcept {
    core::FiveTuple t;
    t.src_ip = ip.src;
    t.dst_ip = ip.dst;
    t.proto = ip.transport();
    if (tcp) {
      t.src_port = tcp->src_port;
      t.dst_port = tcp->dst_port;
    } else if (udp) {
      t.src_port = udp->src_port;
      t.dst_port = udp->dst_port;
    }
    return t;
  }

  /// IP-level payload bytes as declared by the IP header (robust to capture
  /// snapping): what byte counters should use.
  [[nodiscard]] std::size_t transport_payload_declared() const noexcept;
};

/// Decode an Ethernet/IPv4/{TCP,UDP} frame. Returns nullopt for non-IPv4,
/// fragments with nonzero offset are decoded but carry no L4 header.
[[nodiscard]] std::optional<DecodedPacket> decode_frame(const Frame& frame) noexcept;

/// Same decode into a caller-owned packet, for loops that reuse one buffer
/// instead of materializing (and moving) a fresh DecodedPacket per frame.
/// `out` is fully overwritten on success and unspecified on failure.
[[nodiscard]] bool decode_frame_into(const Frame& frame, DecodedPacket& out) noexcept;

/// Fluent builder producing valid frames.
class PacketBuilder {
 public:
  PacketBuilder& ts(core::Timestamp t) {
    timestamp_ = t;
    return *this;
  }
  PacketBuilder& ether(core::MacAddress src, core::MacAddress dst) {
    eth_src_ = src;
    eth_dst_ = dst;
    return *this;
  }
  PacketBuilder& ip(core::IPv4Address src, core::IPv4Address dst, std::uint8_t ttl = 64) {
    ip_src_ = src;
    ip_dst_ = dst;
    ttl_ = ttl;
    return *this;
  }
  PacketBuilder& tcp(std::uint16_t sport, std::uint16_t dport, std::uint32_t seq,
                     std::uint32_t ack, std::uint8_t flags, std::uint16_t window = 65535) {
    tcp_ = TcpHeader{};
    tcp_->src_port = sport;
    tcp_->dst_port = dport;
    tcp_->seq = seq;
    tcp_->ack = ack;
    tcp_->flags = flags;
    tcp_->window = window;
    udp_.reset();
    return *this;
  }
  PacketBuilder& tcp_option(TcpOption opt) {
    if (tcp_) tcp_->options.push_back(std::move(opt));
    return *this;
  }
  PacketBuilder& udp(std::uint16_t sport, std::uint16_t dport) {
    udp_ = UdpHeader{};
    udp_->src_port = sport;
    udp_->dst_port = dport;
    tcp_.reset();
    return *this;
  }
  PacketBuilder& payload(std::vector<std::byte> p) {
    payload_ = std::move(p);
    return *this;
  }
  PacketBuilder& payload(std::string_view s) {
    payload_ = core::to_bytes(s);
    return *this;
  }

  [[nodiscard]] Frame build() const;

 private:
  core::Timestamp timestamp_{};
  core::MacAddress eth_src_{{0x02, 0, 0, 0, 0, 1}};
  core::MacAddress eth_dst_{{0x02, 0, 0, 0, 0, 2}};
  core::IPv4Address ip_src_{};
  core::IPv4Address ip_dst_{};
  std::uint8_t ttl_ = 64;
  std::optional<TcpHeader> tcp_;
  std::optional<UdpHeader> udp_;
  std::vector<std::byte> payload_;
};

/// In-memory capture buffer; frames are kept in arrival order.
class Trace {
 public:
  void add(Frame frame) { frames_.push_back(std::move(frame)); }
  [[nodiscard]] std::size_t size() const noexcept { return frames_.size(); }
  [[nodiscard]] bool empty() const noexcept { return frames_.empty(); }
  [[nodiscard]] const Frame& operator[](std::size_t i) const noexcept { return frames_[i]; }
  [[nodiscard]] auto begin() const noexcept { return frames_.begin(); }
  [[nodiscard]] auto end() const noexcept { return frames_.end(); }

  /// Stable-sort frames by timestamp (generators may emit out of order).
  void sort_by_time();

 private:
  std::vector<Frame> frames_;
};

}  // namespace edgewatch::net
