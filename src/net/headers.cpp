#include "net/headers.hpp"

#include <cstring>

namespace edgewatch::net {

// Parsing is the probe's single hottest loop, so each header does one
// bounds check (ByteReader::bytes) and then loads fields straight from the
// span. GCC folds the shift-or byte loads below into single bswap/movbe
// loads; the semantics (which inputs parse, which fail) are identical to
// the field-by-field cursor reads they replaced.
namespace {

inline std::uint16_t be16(const std::byte* p) noexcept {
  return static_cast<std::uint16_t>((std::to_integer<std::uint16_t>(p[0]) << 8) |
                                    std::to_integer<std::uint16_t>(p[1]));
}

inline std::uint32_t be32(const std::byte* p) noexcept {
  return (std::to_integer<std::uint32_t>(p[0]) << 24) |
         (std::to_integer<std::uint32_t>(p[1]) << 16) |
         (std::to_integer<std::uint32_t>(p[2]) << 8) | std::to_integer<std::uint32_t>(p[3]);
}

}  // namespace

bool EthernetHeader::parse_into(core::ByteReader& r, EthernetHeader& out) noexcept {
  const auto b = r.bytes(kSize);
  if (b.size() != kSize) return false;
  std::memcpy(out.dst.octets.data(), b.data(), 6);
  std::memcpy(out.src.octets.data(), b.data() + 6, 6);
  out.ether_type = be16(b.data() + 12);
  return true;
}

std::optional<EthernetHeader> EthernetHeader::parse(core::ByteReader& r) noexcept {
  EthernetHeader h;
  if (!parse_into(r, h)) return std::nullopt;
  return h;
}

void EthernetHeader::serialize(core::ByteWriter& w) const {
  for (auto o : dst.octets) w.u8(o);
  for (auto o : src.octets) w.u8(o);
  w.u16(ether_type);
}

bool IPv4Header::parse_into(core::ByteReader& r, IPv4Header& out) noexcept {
  const auto b = r.bytes(kMinSize);
  if (b.size() != kMinSize) return false;
  const auto ver_ihl = std::to_integer<std::uint8_t>(b[0]);
  if ((ver_ihl >> 4) != 4) return false;
  const std::size_t ihl = (ver_ihl & 0x0f) * 4u;
  if (ihl < kMinSize) return false;

  out.dscp_ecn = std::to_integer<std::uint8_t>(b[1]);
  out.total_length = be16(b.data() + 2);
  out.identification = be16(b.data() + 4);
  const std::uint16_t flags_frag = be16(b.data() + 6);
  out.flags = static_cast<std::uint8_t>(flags_frag >> 13);
  out.fragment_offset = flags_frag & 0x1fff;
  out.ttl = std::to_integer<std::uint8_t>(b[8]);
  out.protocol = std::to_integer<std::uint8_t>(b[9]);
  out.checksum = be16(b.data() + 10);
  out.src = core::IPv4Address{be32(b.data() + 12)};
  out.dst = core::IPv4Address{be32(b.data() + 16)};
  if (ihl > kMinSize) {
    const auto opt = r.bytes(ihl - kMinSize);
    if (opt.size() != ihl - kMinSize) return false;
    out.options.assign(opt.begin(), opt.end());
  }
  return out.total_length >= ihl;
}

std::optional<IPv4Header> IPv4Header::parse(core::ByteReader& r) noexcept {
  IPv4Header h;
  if (!parse_into(r, h)) return std::nullopt;
  return h;
}

void IPv4Header::serialize(core::ByteWriter& w) const {
  const std::size_t start = w.size();
  const auto ihl = static_cast<std::uint8_t>(header_length() / 4);
  w.u8(static_cast<std::uint8_t>(0x40 | ihl));
  w.u8(dscp_ecn);
  w.u16(total_length);
  w.u16(identification);
  w.u16(static_cast<std::uint16_t>((std::uint16_t{flags} << 13) | (fragment_offset & 0x1fff)));
  w.u8(ttl);
  w.u8(protocol);
  const std::size_t checksum_at = w.size();
  w.u16(0);
  w.u32(src.value());
  w.u32(dst.value());
  w.bytes(options);
  const auto header = w.view().subspan(start, header_length());
  w.patch_u16(checksum_at, compute_checksum(header));
}

std::uint16_t IPv4Header::compute_checksum(std::span<const std::byte> header) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < header.size(); i += 2) {
    sum += (std::to_integer<std::uint32_t>(header[i]) << 8) |
           std::to_integer<std::uint32_t>(header[i + 1]);
  }
  if (i < header.size()) sum += std::to_integer<std::uint32_t>(header[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::size_t TcpHeader::header_length() const noexcept {
  std::size_t opt = 0;
  for (const auto& o : options) {
    opt += (o.kind == TcpOption::kEnd || o.kind == TcpOption::kNop) ? 1 : 2 + o.data.size();
  }
  return kMinSize + ((opt + 3) & ~std::size_t{3});  // padded to 32-bit words
}

std::optional<std::uint16_t> TcpHeader::mss() const noexcept {
  for (const auto& o : options) {
    if (o.kind == TcpOption::kMss && o.data.size() == 2) {
      return static_cast<std::uint16_t>((std::to_integer<std::uint16_t>(o.data[0]) << 8) |
                                        std::to_integer<std::uint16_t>(o.data[1]));
    }
  }
  return std::nullopt;
}

bool TcpHeader::parse_into(core::ByteReader& r, TcpHeader& out) noexcept {
  const auto b = r.bytes(kMinSize);
  if (b.size() != kMinSize) return false;
  out.src_port = be16(b.data());
  out.dst_port = be16(b.data() + 2);
  out.seq = be32(b.data() + 4);
  out.ack = be32(b.data() + 8);
  const auto offset_byte = std::to_integer<std::uint8_t>(b[12]);
  const std::size_t data_offset = (offset_byte >> 4) * 4u;
  out.flags = std::to_integer<std::uint8_t>(b[13]);
  out.window = be16(b.data() + 14);
  out.checksum = be16(b.data() + 16);
  out.urgent = be16(b.data() + 18);
  if (data_offset < kMinSize) return false;

  if (data_offset > kMinSize) {
    const auto opt = r.bytes(data_offset - kMinSize);
    if (opt.size() != data_offset - kMinSize) return false;
    std::size_t i = 0;
    const std::size_t n = opt.size();
    while (i < n) {
      const auto kind = std::to_integer<std::uint8_t>(opt[i++]);
      if (kind == TcpOption::kEnd) {
        out.options.push_back({kind, {}});
        break;  // remaining bytes are padding
      }
      if (kind == TcpOption::kNop) {
        out.options.push_back({kind, {}});
        continue;
      }
      if (i == n) return false;
      const auto len = std::to_integer<std::uint8_t>(opt[i++]);
      if (len < 2 || static_cast<std::size_t>(len) - 2 > n - i) return false;
      out.options.push_back({kind, {opt.begin() + i, opt.begin() + i + (len - 2)}});
      i += static_cast<std::size_t>(len) - 2;
    }
  }
  return true;
}

std::optional<TcpHeader> TcpHeader::parse(core::ByteReader& r) noexcept {
  TcpHeader h;
  if (!parse_into(r, h)) return std::nullopt;
  return h;
}

void TcpHeader::serialize(core::ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  const std::size_t hl = header_length();
  w.u8(static_cast<std::uint8_t>((hl / 4) << 4));
  w.u8(flags);
  w.u16(window);
  w.u16(checksum);
  w.u16(urgent);
  std::size_t written = 0;
  for (const auto& o : options) {
    if (o.kind == TcpOption::kEnd || o.kind == TcpOption::kNop) {
      w.u8(o.kind);
      written += 1;
    } else {
      w.u8(o.kind);
      w.u8(static_cast<std::uint8_t>(2 + o.data.size()));
      w.bytes(o.data);
      written += 2 + o.data.size();
    }
  }
  const std::size_t pad = hl - kMinSize - written;
  w.fill(pad, 0);
}

bool UdpHeader::parse_into(core::ByteReader& r, UdpHeader& out) noexcept {
  const auto b = r.bytes(kSize);
  if (b.size() != kSize) return false;
  out.src_port = be16(b.data());
  out.dst_port = be16(b.data() + 2);
  out.length = be16(b.data() + 4);
  out.checksum = be16(b.data() + 6);
  return out.length >= kSize;
}

std::optional<UdpHeader> UdpHeader::parse(core::ByteReader& r) noexcept {
  UdpHeader h;
  if (!parse_into(r, h)) return std::nullopt;
  return h;
}

void UdpHeader::serialize(core::ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length);
  w.u16(checksum);
}

}  // namespace edgewatch::net
