#include "net/headers.hpp"

namespace edgewatch::net {

std::optional<EthernetHeader> EthernetHeader::parse(core::ByteReader& r) noexcept {
  EthernetHeader h;
  for (auto& o : h.dst.octets) o = r.u8();
  for (auto& o : h.src.octets) o = r.u8();
  h.ether_type = r.u16();
  if (!r.ok()) return std::nullopt;
  return h;
}

void EthernetHeader::serialize(core::ByteWriter& w) const {
  for (auto o : dst.octets) w.u8(o);
  for (auto o : src.octets) w.u8(o);
  w.u16(ether_type);
}

std::optional<IPv4Header> IPv4Header::parse(core::ByteReader& r) noexcept {
  const std::uint8_t ver_ihl = r.u8();
  if (!r.ok() || (ver_ihl >> 4) != 4) return std::nullopt;
  const std::size_t ihl = (ver_ihl & 0x0f) * 4u;
  if (ihl < kMinSize) return std::nullopt;

  IPv4Header h;
  h.dscp_ecn = r.u8();
  h.total_length = r.u16();
  h.identification = r.u16();
  const std::uint16_t flags_frag = r.u16();
  h.flags = static_cast<std::uint8_t>(flags_frag >> 13);
  h.fragment_offset = flags_frag & 0x1fff;
  h.ttl = r.u8();
  h.protocol = r.u8();
  h.checksum = r.u16();
  h.src = core::IPv4Address{r.u32()};
  h.dst = core::IPv4Address{r.u32()};
  if (ihl > kMinSize) {
    auto opt = r.bytes(ihl - kMinSize);
    h.options.assign(opt.begin(), opt.end());
  }
  if (!r.ok() || h.total_length < ihl) return std::nullopt;
  return h;
}

void IPv4Header::serialize(core::ByteWriter& w) const {
  const std::size_t start = w.size();
  const auto ihl = static_cast<std::uint8_t>(header_length() / 4);
  w.u8(static_cast<std::uint8_t>(0x40 | ihl));
  w.u8(dscp_ecn);
  w.u16(total_length);
  w.u16(identification);
  w.u16(static_cast<std::uint16_t>((std::uint16_t{flags} << 13) | (fragment_offset & 0x1fff)));
  w.u8(ttl);
  w.u8(protocol);
  const std::size_t checksum_at = w.size();
  w.u16(0);
  w.u32(src.value());
  w.u32(dst.value());
  w.bytes(options);
  const auto header = w.view().subspan(start, header_length());
  w.patch_u16(checksum_at, compute_checksum(header));
}

std::uint16_t IPv4Header::compute_checksum(std::span<const std::byte> header) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < header.size(); i += 2) {
    sum += (std::to_integer<std::uint32_t>(header[i]) << 8) |
           std::to_integer<std::uint32_t>(header[i + 1]);
  }
  if (i < header.size()) sum += std::to_integer<std::uint32_t>(header[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::size_t TcpHeader::header_length() const noexcept {
  std::size_t opt = 0;
  for (const auto& o : options) {
    opt += (o.kind == TcpOption::kEnd || o.kind == TcpOption::kNop) ? 1 : 2 + o.data.size();
  }
  return kMinSize + ((opt + 3) & ~std::size_t{3});  // padded to 32-bit words
}

std::optional<std::uint16_t> TcpHeader::mss() const noexcept {
  for (const auto& o : options) {
    if (o.kind == TcpOption::kMss && o.data.size() == 2) {
      return static_cast<std::uint16_t>((std::to_integer<std::uint16_t>(o.data[0]) << 8) |
                                        std::to_integer<std::uint16_t>(o.data[1]));
    }
  }
  return std::nullopt;
}

std::optional<TcpHeader> TcpHeader::parse(core::ByteReader& r) noexcept {
  TcpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  const std::uint8_t offset_byte = r.u8();
  const std::size_t data_offset = (offset_byte >> 4) * 4u;
  h.flags = r.u8();
  h.window = r.u16();
  h.checksum = r.u16();
  h.urgent = r.u16();
  if (!r.ok() || data_offset < kMinSize) return std::nullopt;

  std::size_t opt_remaining = data_offset - kMinSize;
  while (opt_remaining > 0 && r.ok()) {
    const std::uint8_t kind = r.u8();
    --opt_remaining;
    if (kind == TcpOption::kEnd) {
      r.skip(opt_remaining);  // padding
      opt_remaining = 0;
      h.options.push_back({kind, {}});
      break;
    }
    if (kind == TcpOption::kNop) {
      h.options.push_back({kind, {}});
      continue;
    }
    if (opt_remaining == 0) return std::nullopt;
    const std::uint8_t len = r.u8();
    --opt_remaining;
    if (len < 2 || static_cast<std::size_t>(len - 2) > opt_remaining) return std::nullopt;
    auto data = r.bytes(len - 2u);
    opt_remaining -= len - 2u;
    h.options.push_back({kind, {data.begin(), data.end()}});
  }
  if (!r.ok()) return std::nullopt;
  return h;
}

void TcpHeader::serialize(core::ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  const std::size_t hl = header_length();
  w.u8(static_cast<std::uint8_t>((hl / 4) << 4));
  w.u8(flags);
  w.u16(window);
  w.u16(checksum);
  w.u16(urgent);
  std::size_t written = 0;
  for (const auto& o : options) {
    if (o.kind == TcpOption::kEnd || o.kind == TcpOption::kNop) {
      w.u8(o.kind);
      written += 1;
    } else {
      w.u8(o.kind);
      w.u8(static_cast<std::uint8_t>(2 + o.data.size()));
      w.bytes(o.data);
      written += 2 + o.data.size();
    }
  }
  const std::size_t pad = hl - kMinSize - written;
  w.fill(pad, 0);
}

std::optional<UdpHeader> UdpHeader::parse(core::ByteReader& r) noexcept {
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.length = r.u16();
  h.checksum = r.u16();
  if (!r.ok() || h.length < kSize) return std::nullopt;
  return h;
}

void UdpHeader::serialize(core::ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length);
  w.u16(checksum);
}

}  // namespace edgewatch::net
