// Persistent rollup store: one compact columnar `.ewr` file per day per
// dimension under a rollup directory, built incrementally from the data
// lake. build() is idempotent and cheap to re-run: a day/dimension is
// rebuilt only when the lake day file's FileIdentity (size + mtime +
// trailing-seal sequence — the same identity fsck reports) differs from the
// identity recorded inside the existing rollup header, so a nightly build
// touches exactly the days that changed.
//
// Durability reuses the lake's idioms: rollups are written to a temp file,
// fsynced, then renamed into place, and every section carries a CRC — a
// torn or damaged rollup is detected at load and simply counts as stale.
#pragma once

#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "analytics/day_aggregate.hpp"
#include "asn/lpm.hpp"
#include "core/result.hpp"
#include "core/thread_pool.hpp"
#include "core/time.hpp"
#include "query/rollup.hpp"
#include "services/catalog.hpp"
#include "storage/datalake.hpp"

namespace edgewatch::query {

struct BuildOptions {
  SketchParams sketch;
  analytics::ActivityCriteria criteria;
  bool force = false;  ///< Rebuild even when the rollup looks fresh.
};

/// What one build() pass did. `built`/`reused`/`failed` count
/// day-by-dimension rollup files.
struct BuildReport {
  std::size_t built = 0;
  std::size_t reused = 0;
  std::size_t failed = 0;
  std::vector<std::pair<core::CivilDate, core::Errc>> errors;

  [[nodiscard]] bool ok() const noexcept { return failed == 0; }

  void merge(const BuildReport& other) {
    built += other.built;
    reused += other.reused;
    failed += other.failed;
    errors.insert(errors.end(), other.errors.begin(), other.errors.end());
  }
};

class RollupStore {
 public:
  /// `dir` is created on demand. `rib` feeds the server-ASN dimension
  /// (optional: without it every server groups under ASN 0). The store
  /// keeps references — lake, catalog and rib must outlive it.
  RollupStore(std::filesystem::path dir, const storage::DataLake& lake,
              const services::ServiceCatalog& catalog = services::ServiceCatalog::standard(),
              const asn::Rib* rib = nullptr);

  /// `rollup_YYYY-MM-DD.<dimension>.ewr`
  [[nodiscard]] static std::string rollup_filename(core::CivilDate day, Dimension dim);
  [[nodiscard]] std::filesystem::path rollup_path(core::CivilDate day, Dimension dim) const;

  /// True when an intact rollup exists whose recorded source identity still
  /// matches the lake day file. Missing, torn or corrupt rollups are stale.
  [[nodiscard]] bool fresh(core::CivilDate day, Dimension dim) const;

  /// Bring every lake day's rollups (all dimensions) up to date, one pool
  /// task per day: each stale day is aggregated once and all its stale
  /// dimensions are encoded from that single aggregate. Must not be called
  /// from inside a pool task.
  BuildReport build(core::ThreadPool& pool, const BuildOptions& options = {});
  /// As above for an explicit day list.
  BuildReport build(std::span<const core::CivilDate> days, core::ThreadPool& pool,
                    const BuildOptions& options = {});

  /// Load one rollup, materializing only the requested columns (the file is
  /// memory-mapped; unrequested sketch sections are never touched).
  /// kNotFound when absent, kTruncated/kCorrupt per decode_rollup.
  [[nodiscard]] core::Result<DayRollup> load(core::CivilDate day, Dimension dim,
                                             std::uint32_t columns = kAllColumns) const;

  /// Days with a rollup present for `dim`, sorted.
  [[nodiscard]] std::vector<core::CivilDate> days(Dimension dim) const;

  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }
  [[nodiscard]] const storage::DataLake& lake() const noexcept { return lake_; }
  [[nodiscard]] const services::ServiceCatalog& catalog() const noexcept { return catalog_; }

 private:
  struct DayOutcome {
    std::size_t built = 0;
    std::size_t reused = 0;
    std::size_t failed = 0;
    core::Errc errc = core::Errc::kOk;
  };
  [[nodiscard]] DayOutcome build_day(core::CivilDate day, const BuildOptions& options) const;

  std::filesystem::path dir_;
  const storage::DataLake& lake_;
  const services::ServiceCatalog& catalog_;
  const asn::Rib* rib_;
};

}  // namespace edgewatch::query
