// Day rollups: the sketch-based summaries the query engine answers from
// instead of re-scanning raw flow logs (Flowyager-style hierarchical
// summaries, Saidi et al. 2020). One rollup file summarizes one civil day
// along one dimension; sketches merge losslessly across days, so any time
// range collapses to a handful of section reads plus sketch merges.
//
// On-disk format `.ewr` v1 ("EWRU") reuses the lake's v2 durability idioms:
//
//   file    := magic "EWRU" | u8 version | section*
//   section := u8 id | u32le body_len | u32le crc32c(id | body_len | body)
//              | body
//
// Sections (kHeader first, kTrailer last):
//   header      day, dimension, source-lake FileIdentity (staleness check),
//               group count, sketch parameters
//   keys        u32le group keys, ascending (columnar: one array)
//   counters    u64le flows[] | bytes_up[] | bytes_down[]  (three arrays)
//   clients     per group: varint length | HyperLogLog       (distinct subscribers)
//   servers     per group: varint length | HyperLogLog       (distinct server IPs)
//   rtt         per group: varint length | QuantileSketch    (per-flow min RTT, ms)
//   subscribers per access tech: active count, byte sums, volume sketches
//               (service dimension only — the Fig. 2/3 substrate)
//   trailer     section count; written last, so a torn write is detected
//               even before any section CRC is checked
//
// The layout is columnar at section granularity: a query that needs only
// counters never reads (or faults in, via mmap) the sketch sections.
// decode_rollup() checks the CRC of every section it materializes; sections
// outside the projection are skipped untouched.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string_view>
#include <vector>

#include "analytics/day_aggregate.hpp"
#include "analytics/figures.hpp"
#include "asn/lpm.hpp"
#include "core/result.hpp"
#include "core/sketch.hpp"
#include "core/time.hpp"
#include "services/catalog.hpp"
#include "storage/datalake.hpp"

namespace edgewatch::query {

/// The pre-aggregation axis of one rollup file.
enum class Dimension : std::uint8_t {
  kService = 0,   ///< group key = services::ServiceId
  kProtocol = 1,  ///< group key = dpi::WebProtocol (bytes only)
  kServerAsn = 2, ///< group key = origin ASN (0 = unrouted)
};

inline constexpr std::size_t kDimensionCount = 3;

[[nodiscard]] std::string_view to_string(Dimension d) noexcept;

/// Column/section selector bits (also the section ids on disk).
enum Column : std::uint32_t {
  kColCounters = 1u << 0,
  kColClients = 1u << 1,
  kColServers = 1u << 2,
  kColRtt = 1u << 3,
  kColSubscribers = 1u << 4,
};
inline constexpr std::uint32_t kAllColumns =
    kColCounters | kColClients | kColServers | kColRtt | kColSubscribers;

/// Summary of one group (one service / web protocol / server ASN) for one
/// day. Which members are meaningful depends on the dimension; empty
/// sketches cost a few bytes on disk.
struct GroupRollup {
  std::uint64_t flows = 0;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
  core::HyperLogLog clients;    ///< distinct subscribers that used the group (§4.1)
  core::HyperLogLog servers;    ///< distinct server IPs observed
  core::QuantileSketch rtt_ms;  ///< per-flow minimum RTT samples

  [[nodiscard]] std::uint64_t bytes_total() const noexcept { return bytes_up + bytes_down; }

  void merge(const GroupRollup& other) noexcept {
    flows += other.flows;
    bytes_up += other.bytes_up;
    bytes_down += other.bytes_down;
    clients.merge(other.clients);
    servers.merge(other.servers);
    rtt_ms.merge(other.rtt_ms);
  }
};

/// Per-access-tech subscriber statistics for one day: the exact counters
/// behind Fig. 3's averages and the volume sketches behind Fig. 2's CCDF
/// quantiles. One sample per *active* subscriber-day (§3 criteria).
struct TechRollup {
  std::uint64_t active = 0;    ///< active subscribers this day
  std::uint64_t sum_down = 0;  ///< bytes over active subscribers (exact)
  std::uint64_t sum_up = 0;
  core::QuantileSketch down_bytes;  ///< per-active-subscriber daily bytes
  core::QuantileSketch up_bytes;

  void merge(const TechRollup& other) noexcept {
    active += other.active;
    sum_down += other.sum_down;
    sum_up += other.sum_up;
    down_bytes.merge(other.down_bytes);
    up_bytes.merge(other.up_bytes);
  }
};

/// One day along one dimension — the unit the store persists and the
/// engine merges. merge() folds another day (or another PoP's same day)
/// in; sketch merges are exact, so rollup(range) == rollup of the
/// concatenated days.
struct DayRollup {
  core::CivilDate day{};
  Dimension dimension = Dimension::kService;
  storage::FileIdentity source;   ///< lake day file at build time
  std::uint32_t columns = kAllColumns;  ///< which sections are populated
  std::map<std::uint32_t, GroupRollup> groups;
  std::array<TechRollup, analytics::kAccessTechCount> subscribers;

  void merge(const DayRollup& other);
};

/// Sketch parameters of a build: fixed per store so day sketches merge.
struct SketchParams {
  std::uint8_t hll_precision = core::HyperLogLog::kDefaultPrecision;
  double quantile_accuracy = core::QuantileSketch::kDefaultAccuracy;
};

/// Build one day's rollup along `dim` from its stage-one aggregate (the
/// same DayAggregate the figure analytics consume — including one merged
/// from parallel partials). `rib` maps server IPs to origin ASNs for the
/// kServerAsn dimension (unrouted IPs group under ASN 0); unused otherwise.
[[nodiscard]] DayRollup build_day_rollup(
    const analytics::DayAggregate& aggregate, Dimension dim,
    const services::ServiceCatalog& catalog = services::ServiceCatalog::standard(),
    const asn::Rib* rib = nullptr, const SketchParams& params = {},
    const analytics::ActivityCriteria& criteria = {});

/// Serialize a rollup to the .ewr wire format.
[[nodiscard]] std::vector<std::byte> encode_rollup(const DayRollup& rollup);

/// Parse a .ewr file, materializing only the sections selected by
/// `columns` (the keys, header and trailer are always read). Errors:
/// kBadMagic/kBadVersion for foreign files, kTruncated for a missing
/// trailer (torn write), kCorrupt for any CRC or structural failure.
[[nodiscard]] core::Result<DayRollup> decode_rollup(std::span<const std::byte> data,
                                                    std::uint32_t columns = kAllColumns);

}  // namespace edgewatch::query
