// The interactive query engine: answers the paper's figure-style questions
// ("weekly median RTT to Facebook", "top-10 services by distinct
// subscribers per month", "monthly bytes per web protocol") from the
// rollup store alone — no raw flow record is ever decoded at query time.
//
// A query is a typed description (QuerySpec); the planner
//   1. derives the column mask the metric needs (an RTT quantile touches
//      only the rtt section of each day file; byte totals touch only the
//      counters section — the mmap'ed sketch sections are never faulted in),
//   2. enumerates the rollup days inside [from, to] and groups them into
//      time buckets (day / ISO week / month / whole range),
//   3. merges each bucket's day rollups — in parallel across buckets when a
//      ThreadPool is supplied; sketch merges are exact, so bucket order
//      never changes an answer,
//   4. extracts rows and applies top-k.
//
// Every approximate row carries its error bound (HLL: 3 standard errors,
// relative; quantiles: the sketch's relative value accuracy); exact metrics
// report a bound of 0. Golden tests in tests/test_query.cpp hold these
// bounds against exact full-scan recomputation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/result.hpp"
#include "core/thread_pool.hpp"
#include "core/time.hpp"
#include "query/store.hpp"

namespace edgewatch::query {

enum class Metric : std::uint8_t {
  kBytes,             ///< total bytes per group (exact)
  kFlows,             ///< flow count per group (exact)
  kDistinctClients,   ///< distinct subscribers per group (HLL, §4.1 threshold)
  kDistinctServers,   ///< distinct server IPs per group (HLL)
  kRttQuantile,       ///< per-flow min-RTT quantile per group (sketch)
  kVolumeQuantile,    ///< per-active-subscriber daily-volume quantile, per tech
  kActiveSubscribers, ///< active subscriber-days per tech (exact)
};

/// Time bucketing of the result rows.
enum class TimeBucket : std::uint8_t {
  kTotal,  ///< one row set for the whole range
  kDay,
  kWeek,   ///< ISO weeks; bucket date = the Monday
  kMonth,  ///< bucket date = the first of the month
};

struct QuerySpec {
  Metric metric = Metric::kBytes;
  Dimension dimension = Dimension::kService;  ///< ignored for per-tech metrics
  core::CivilDate from;
  core::CivilDate to;  ///< inclusive
  TimeBucket bucket = TimeBucket::kTotal;
  /// Restrict to one group key (e.g. one ServiceId for an RTT query).
  std::optional<std::uint32_t> group;
  /// For kRttQuantile / kVolumeQuantile: which quantile, in [0, 1].
  double quantile = 0.5;
  /// For kVolumeQuantile: download (true) or upload direction.
  bool download = true;
  /// Keep only the k largest rows per bucket (0 = all), ordered by value.
  std::size_t top_k = 0;
  /// Answer rollup-less days of the range by scanning the raw lake with a
  /// pushed-down ScanPredicate instead of reporting them missing. Exact
  /// metrics only (kBytes/kFlows, service or protocol dimension): a
  /// service-restricted query prunes whole v3 blocks via zone maps, so the
  /// fallback touches a fraction of the day file. Days that stay
  /// unanswerable (no lake file either, or an approximate metric) are
  /// still reported missing.
  bool raw_fallback = false;
};

struct QueryRow {
  core::CivilDate bucket;   ///< bucket start date
  std::uint32_t key = 0;    ///< group key (ServiceId / protocol / ASN / tech)
  double value = 0;
  /// Relative error bound on `value` (0 for exact metrics): the true value
  /// lies within value * (1 ± bound), per the sketches' documented contracts.
  double error_bound = 0;
};

struct QueryResult {
  std::vector<QueryRow> rows;  ///< bucket-major, value-descending inside a bucket
  std::vector<core::CivilDate> missing_days;  ///< range days with no rollup
  std::size_t days_merged = 0;
  /// Of days_merged, how many were answered by a raw-lake fallback scan
  /// (QuerySpec::raw_fallback) instead of a rollup file.
  std::size_t days_scanned_raw = 0;
  std::uint32_t columns_loaded = 0;  ///< the projection mask the planner used
  core::Errc errc = core::Errc::kOk;  ///< first corrupt/torn rollup, if any

  [[nodiscard]] bool ok() const noexcept { return errc == core::Errc::kOk; }
};

/// Column mask a metric needs — the planner's projection (exposed for
/// tests and the latency bench).
[[nodiscard]] std::uint32_t columns_for(Metric metric) noexcept;

/// Execute `spec` against the store. With a pool, buckets merge in
/// parallel (must not be called from inside a pool task); without one the
/// merge is serial. Days whose rollup is missing are reported, not errors;
/// a corrupt rollup sets errc and is skipped.
[[nodiscard]] QueryResult run_query(const RollupStore& store, const QuerySpec& spec,
                                    core::ThreadPool* pool = nullptr);

}  // namespace edgewatch::query
