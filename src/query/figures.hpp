// Rollup-backed figure queries: the paper questions the issue names,
// answered from `.ewr` files alone. Two kinds:
//
//  - exact reproductions that return the *same row types* as the full-scan
//    analytics (protocol_shares, volume_trend) — golden tests assert
//    equality with analytics::protocol_shares / analytics::volume_trend,
//    because every input to those formulas is carried exactly in the
//    rollups (byte counters, active counts, byte sums);
//
//  - sketch-backed answers (weekly RTT quantiles, top-k services by
//    distinct subscribers) whose rows carry the documented error bound the
//    golden tests hold against exact full-scan recomputation.
#pragma once

#include <vector>

#include "analytics/figures.hpp"
#include "core/thread_pool.hpp"
#include "core/time.hpp"
#include "query/engine.hpp"
#include "query/store.hpp"
#include "services/catalog.hpp"

namespace edgewatch::query {

/// "Weekly median (or any quantile) RTT per service" — one row per ISO
/// week in [from, to], value in milliseconds, error_bound = the sketch's
/// relative value accuracy.
[[nodiscard]] std::vector<QueryRow> weekly_rtt_quantile(const RollupStore& store,
                                                        services::ServiceId service,
                                                        core::CivilDate from, core::CivilDate to,
                                                        double q = 0.5,
                                                        core::ThreadPool* pool = nullptr);

/// "Top-k services by distinct subscribers per month" (§4.1 activity
/// thresholds applied, exactly as the full-scan popularity figures do).
/// Rows are value-descending; key = ServiceId; error_bound = the HLL
/// contract bound.
[[nodiscard]] std::vector<QueryRow> top_services_by_subscribers(const RollupStore& store,
                                                                core::MonthIndex month,
                                                                std::size_t k,
                                                                core::ThreadPool* pool = nullptr);

/// Fig. 8 from rollups: monthly web-protocol byte shares. Bit-identical to
/// analytics::protocol_shares over the same days (the counters are exact).
[[nodiscard]] std::vector<analytics::ProtocolShareRow> protocol_shares(
    const RollupStore& store, core::CivilDate from, core::CivilDate to,
    core::ThreadPool* pool = nullptr);

/// Fig. 3 from rollups: monthly per-subscription volume averages. Matches
/// analytics::volume_trend over the same days to floating-point summation
/// order (TechRollup carries the byte sums as exact integers; the full
/// scan accumulates doubles subscriber by subscriber).
[[nodiscard]] std::vector<analytics::VolumeTrendRow> volume_trend(
    const RollupStore& store, core::CivilDate from, core::CivilDate to,
    core::ThreadPool* pool = nullptr);

}  // namespace edgewatch::query
