#include "query/rollup.hpp"

#include <algorithm>

#include "analytics/figures.hpp"
#include "core/bytes.hpp"
#include "core/hash.hpp"
#include "storage/codec.hpp"

namespace edgewatch::query {

namespace {

constexpr char kMagic[4] = {'E', 'W', 'R', 'U'};
constexpr std::uint8_t kVersion1 = 1;
constexpr std::size_t kFileHeaderSize = 5;
constexpr std::size_t kSectionHeaderSize = 9;  // u8 id | u32le len | u32le crc

// Section ids. kSecHeader opens the file, kSecTrailer closes it; the five
// data sections map 1:1 onto the Column bits.
constexpr std::uint8_t kSecHeader = 1;
constexpr std::uint8_t kSecKeys = 2;
constexpr std::uint8_t kSecCounters = 3;
constexpr std::uint8_t kSecClients = 4;
constexpr std::uint8_t kSecServers = 5;
constexpr std::uint8_t kSecRtt = 6;
constexpr std::uint8_t kSecSubscribers = 7;
constexpr std::uint8_t kSecTrailer = 8;

constexpr std::uint32_t kMaxSectionBody = 1u << 28;  // 256 MiB sanity bound
constexpr std::uint32_t kMaxGroups = 1u << 22;       // ~4M ASNs is the ceiling

std::uint32_t column_for_section(std::uint8_t id) noexcept {
  switch (id) {
    case kSecCounters: return kColCounters;
    case kSecClients: return kColClients;
    case kSecServers: return kColServers;
    case kSecRtt: return kColRtt;
    case kSecSubscribers: return kColSubscribers;
    default: return 0;
  }
}

void put_section(core::ByteWriter& out, std::uint8_t id, std::span<const std::byte> body) {
  core::ByteWriter head;
  head.u8(id);
  head.u32le(static_cast<std::uint32_t>(body.size()));
  std::uint32_t crc = core::crc32c(head.view());
  crc = core::crc32c(body, crc);
  out.bytes(head.view());
  out.u32le(crc);
  out.bytes(body);
}

template <typename Sketch>
void put_sketch(core::ByteWriter& out, const Sketch& sketch) {
  core::ByteWriter body;
  sketch.serialize(body);
  storage::put_varint(out, body.size());
  out.bytes(body.view());
}

template <typename Sketch>
core::Result<Sketch> get_sketch(core::ByteReader& r) {
  const std::uint64_t len = storage::get_varint(r);
  const auto bytes = r.bytes(static_cast<std::size_t>(len));
  if (!r.ok()) return core::Errc::kTruncated;
  core::ByteReader inner{bytes};
  auto sketch = Sketch::deserialize(inner);
  if (!sketch) return sketch.error();
  if (inner.remaining() != 0) return core::Errc::kCorrupt;
  return sketch;
}

GroupRollup make_group(const SketchParams& params) {
  GroupRollup g;
  g.clients = core::HyperLogLog{params.hll_precision};
  g.servers = core::HyperLogLog{params.hll_precision};
  g.rtt_ms = core::QuantileSketch{params.quantile_accuracy};
  return g;
}

}  // namespace

std::string_view to_string(Dimension d) noexcept {
  switch (d) {
    case Dimension::kService: return "service";
    case Dimension::kProtocol: return "protocol";
    case Dimension::kServerAsn: return "server-asn";
  }
  return "unknown";
}

void DayRollup::merge(const DayRollup& other) {
  day = std::min(day, other.day);
  columns &= other.columns;
  for (const auto& [key, group] : other.groups) {
    const auto it = groups.find(key);
    if (it == groups.end()) {
      groups.emplace(key, group);
    } else {
      it->second.merge(group);
    }
  }
  for (std::size_t t = 0; t < subscribers.size(); ++t) {
    subscribers[t].merge(other.subscribers[t]);
  }
}

DayRollup build_day_rollup(const analytics::DayAggregate& aggregate, Dimension dim,
                           const services::ServiceCatalog& catalog, const asn::Rib* rib,
                           const SketchParams& params,
                           const analytics::ActivityCriteria& criteria) {
  DayRollup rollup;
  rollup.day = aggregate.date;
  rollup.dimension = dim;
  for (auto& tech : rollup.subscribers) {
    tech.down_bytes = core::QuantileSketch{params.quantile_accuracy};
    tech.up_bytes = core::QuantileSketch{params.quantile_accuracy};
  }
  const auto group = [&](std::uint32_t key) -> GroupRollup& {
    const auto it = rollup.groups.find(key);
    if (it != rollup.groups.end()) return it->second;
    return rollup.groups.emplace(key, make_group(params)).first->second;
  };

  switch (dim) {
    case Dimension::kService: {
      for (const auto& [ip, sub] : aggregate.subscribers) {
        for (std::size_t s = 0; s < services::kServiceCount; ++s) {
          const auto& traffic = sub.per_service[s];
          if (traffic.flows == 0 && traffic.total() == 0) continue;
          auto& g = group(static_cast<std::uint32_t>(s));
          g.flows += traffic.flows;
          g.bytes_up += traffic.bytes_up;
          g.bytes_down += traffic.bytes_down;
          if (analytics::uses_service(sub, catalog, static_cast<services::ServiceId>(s))) {
            g.clients.add(ip);
          }
        }
        if (sub.active(criteria)) {
          auto& tech = rollup.subscribers[static_cast<std::size_t>(sub.access)];
          ++tech.active;
          tech.sum_down += sub.bytes_down;
          tech.sum_up += sub.bytes_up;
          tech.down_bytes.add(static_cast<double>(sub.bytes_down));
          tech.up_bytes.add(static_cast<double>(sub.bytes_up));
        }
      }
      for (const auto& [ip, stats] : aggregate.server_ips) {
        for (std::size_t s = 0; s < services::kServiceCount; ++s) {
          if (stats.serves(static_cast<services::ServiceId>(s))) {
            group(static_cast<std::uint32_t>(s)).servers.add(ip);
          }
        }
      }
      for (std::size_t s = 0; s < services::kServiceCount; ++s) {
        if (aggregate.rtt_min_ms[s].empty()) continue;
        auto& g = group(static_cast<std::uint32_t>(s));
        for (const double ms : aggregate.rtt_min_ms[s]) g.rtt_ms.add(ms);
      }
      break;
    }
    case Dimension::kProtocol: {
      // web_bytes is up+down combined (§5.1); the sum lands in bytes_down
      // so bytes_total() reports it and bytes_up stays 0.
      for (std::size_t p = 1; p < analytics::kWebProtocolCount; ++p) {
        if (aggregate.web_bytes[p] == 0) continue;
        group(static_cast<std::uint32_t>(p)).bytes_down = aggregate.web_bytes[p];
      }
      break;
    }
    case Dimension::kServerAsn: {
      for (const auto& [ip, stats] : aggregate.server_ips) {
        const std::uint32_t asn = rib ? rib->origin_asn(ip).value_or(0) : 0;
        auto& g = group(asn);
        g.bytes_down += stats.bytes;
        g.servers.add(ip);
      }
      break;
    }
  }
  return rollup;
}

std::vector<std::byte> encode_rollup(const DayRollup& rollup) {
  core::ByteWriter out;
  for (const char c : kMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u8(kVersion1);

  // Sketch parameters, recovered from the first non-default-constructed
  // sketch so decode can rebuild empty groups consistently.
  SketchParams params;
  if (!rollup.groups.empty()) {
    const auto& g = rollup.groups.begin()->second;
    params.hll_precision = g.clients.precision();
    params.quantile_accuracy = g.rtt_ms.relative_accuracy();
  }

  std::uint32_t sections = 0;
  const bool service_dim = rollup.dimension == Dimension::kService;
  {
    core::ByteWriter body;
    body.u8(static_cast<std::uint8_t>(rollup.dimension));
    body.u32le(static_cast<std::uint32_t>(rollup.day.year));
    body.u8(rollup.day.month);
    body.u8(rollup.day.day);
    body.u64le(rollup.source.size);
    body.u64le(static_cast<std::uint64_t>(rollup.source.mtime_ns));
    body.u32le(rollup.source.seal_seq);
    body.u32le(static_cast<std::uint32_t>(rollup.groups.size()));
    body.u8(params.hll_precision);
    body.u64le(std::bit_cast<std::uint64_t>(params.quantile_accuracy));
    body.u32le(service_dim ? kAllColumns
                           : (kAllColumns & ~static_cast<std::uint32_t>(kColSubscribers)));
    put_section(out, kSecHeader, body.view());
    ++sections;
  }
  {
    core::ByteWriter body;
    for (const auto& [key, _] : rollup.groups) body.u32le(key);
    put_section(out, kSecKeys, body.view());
    ++sections;
  }
  {
    core::ByteWriter body;
    for (const auto& [_, g] : rollup.groups) body.u64le(g.flows);
    for (const auto& [_, g] : rollup.groups) body.u64le(g.bytes_up);
    for (const auto& [_, g] : rollup.groups) body.u64le(g.bytes_down);
    put_section(out, kSecCounters, body.view());
    ++sections;
  }
  const auto sketch_section = [&](std::uint8_t id, auto member) {
    core::ByteWriter body;
    for (const auto& [_, g] : rollup.groups) put_sketch(body, g.*member);
    put_section(out, id, body.view());
    ++sections;
  };
  sketch_section(kSecClients, &GroupRollup::clients);
  sketch_section(kSecServers, &GroupRollup::servers);
  sketch_section(kSecRtt, &GroupRollup::rtt_ms);
  if (service_dim) {
    core::ByteWriter body;
    for (const auto& tech : rollup.subscribers) {
      body.u64le(tech.active);
      body.u64le(tech.sum_down);
      body.u64le(tech.sum_up);
      put_sketch(body, tech.down_bytes);
      put_sketch(body, tech.up_bytes);
    }
    put_section(out, kSecSubscribers, body.view());
    ++sections;
  }
  {
    core::ByteWriter body;
    body.u32le(sections);
    put_section(out, kSecTrailer, body.view());
  }
  return std::move(out).take();
}

core::Result<DayRollup> decode_rollup(std::span<const std::byte> data, std::uint32_t columns) {
  if (data.size() < kFileHeaderSize) return core::Errc::kTruncated;
  for (std::size_t i = 0; i < 4; ++i) {
    if (std::to_integer<char>(data[i]) != kMagic[i]) return core::Errc::kBadMagic;
  }
  if (std::to_integer<std::uint8_t>(data[4]) != kVersion1) return core::Errc::kBadVersion;

  DayRollup rollup;
  SketchParams params;
  std::vector<std::uint32_t> keys;
  std::vector<GroupRollup*> slots;  // groups in key order, for columnar fill
  std::uint32_t group_count = 0;
  std::uint32_t present_columns = 0;
  std::uint32_t sections_seen = 0;
  bool have_header = false;
  bool have_trailer = false;
  std::size_t pos = kFileHeaderSize;

  while (pos < data.size()) {
    if (have_trailer) return core::Errc::kCorrupt;  // bytes after the trailer
    if (pos + kSectionHeaderSize > data.size()) return core::Errc::kTruncated;
    core::ByteReader head{data.subspan(pos, kSectionHeaderSize)};
    const std::uint8_t id = head.u8();
    const std::uint32_t body_len = head.u32le();
    const std::uint32_t stored_crc = head.u32le();
    if (body_len > kMaxSectionBody || pos + kSectionHeaderSize + body_len > data.size()) {
      return core::Errc::kTruncated;
    }
    const auto body = data.subspan(pos + kSectionHeaderSize, body_len);
    pos += kSectionHeaderSize + body_len;

    const bool structural = id == kSecHeader || id == kSecKeys || id == kSecTrailer;
    const std::uint32_t column = column_for_section(id);
    const bool wanted = structural || (column & columns) != 0;
    if (id != kSecTrailer) ++sections_seen;
    if (!have_header && id != kSecHeader) return core::Errc::kCorrupt;
    if (!wanted) continue;  // projection: skip untouched (possibly unmapped) bytes

    // CRC covers id | body_len | body, exactly as written.
    core::ByteWriter h;
    h.u8(id);
    h.u32le(body_len);
    std::uint32_t crc = core::crc32c(h.view());
    crc = core::crc32c(body, crc);
    if (crc != stored_crc) return core::Errc::kCorrupt;

    core::ByteReader r{body};
    switch (id) {
      case kSecHeader: {
        if (have_header) return core::Errc::kCorrupt;
        const std::uint8_t dim = r.u8();
        if (dim >= kDimensionCount) return core::Errc::kCorrupt;
        rollup.dimension = static_cast<Dimension>(dim);
        rollup.day.year = static_cast<std::int32_t>(r.u32le());
        rollup.day.month = r.u8();
        rollup.day.day = r.u8();
        rollup.source.size = r.u64le();
        rollup.source.mtime_ns = static_cast<std::int64_t>(r.u64le());
        rollup.source.seal_seq = r.u32le();
        group_count = r.u32le();
        params.hll_precision = r.u8();
        params.quantile_accuracy = std::bit_cast<double>(r.u64le());
        present_columns = r.u32le();
        if (!r.ok() || group_count > kMaxGroups) return core::Errc::kCorrupt;
        have_header = true;
        break;
      }
      case kSecKeys: {
        keys.resize(group_count);
        slots.resize(group_count);
        for (auto& key : keys) key = r.u32le();
        if (!r.ok() || r.remaining() != 0) return core::Errc::kCorrupt;
        if (!std::is_sorted(keys.begin(), keys.end())) return core::Errc::kCorrupt;
        for (std::size_t i = 0; i < keys.size(); ++i) {
          slots[i] = &rollup.groups.emplace(keys[i], make_group(params)).first->second;
        }
        break;
      }
      case kSecCounters: {
        if (slots.size() != group_count) return core::Errc::kCorrupt;
        for (auto* g : slots) g->flows = r.u64le();
        for (auto* g : slots) g->bytes_up = r.u64le();
        for (auto* g : slots) g->bytes_down = r.u64le();
        if (!r.ok() || r.remaining() != 0) return core::Errc::kCorrupt;
        break;
      }
      case kSecClients:
      case kSecServers: {
        if (slots.size() != group_count) return core::Errc::kCorrupt;
        for (auto* g : slots) {
          auto sketch = get_sketch<core::HyperLogLog>(r);
          if (!sketch) return sketch.error();
          (id == kSecClients ? g->clients : g->servers) = std::move(*sketch);
        }
        if (r.remaining() != 0) return core::Errc::kCorrupt;
        break;
      }
      case kSecRtt: {
        if (slots.size() != group_count) return core::Errc::kCorrupt;
        for (auto* g : slots) {
          auto sketch = get_sketch<core::QuantileSketch>(r);
          if (!sketch) return sketch.error();
          g->rtt_ms = std::move(*sketch);
        }
        if (r.remaining() != 0) return core::Errc::kCorrupt;
        break;
      }
      case kSecSubscribers: {
        for (auto& tech : rollup.subscribers) {
          tech.active = r.u64le();
          tech.sum_down = r.u64le();
          tech.sum_up = r.u64le();
          auto down = get_sketch<core::QuantileSketch>(r);
          if (!down) return down.error();
          tech.down_bytes = std::move(*down);
          auto up = get_sketch<core::QuantileSketch>(r);
          if (!up) return up.error();
          tech.up_bytes = std::move(*up);
        }
        if (!r.ok() || r.remaining() != 0) return core::Errc::kCorrupt;
        break;
      }
      case kSecTrailer: {
        if (r.u32le() != sections_seen || !r.ok()) return core::Errc::kCorrupt;
        have_trailer = true;
        break;
      }
      default:
        return core::Errc::kCorrupt;  // unknown wanted section is unreachable
    }
  }
  if (!have_header) return core::Errc::kTruncated;
  if (!have_trailer) return core::Errc::kTruncated;  // torn write: no receipt
  rollup.columns = columns & present_columns;
  return rollup;
}

}  // namespace edgewatch::query
