#include "query/store.hpp"

#include <algorithm>
#include <cstdio>
#include <future>
#include <system_error>
#include <utility>

#include "analytics/parallel.hpp"
#include "obs/obs.hpp"
#include "storage/io.hpp"

namespace edgewatch::query {

namespace {

// Build-progress instrumentation: counters advance per completed day (not
// once at the end), so a scrape mid-build shows how far a long rebuild got.
struct StoreObs {
  obs::Counter* built;
  obs::Counter* reused;
  obs::Counter* failed;
  obs::SpanSite* build_span;
};

StoreObs& store_obs() {
  static StoreObs m = [] {
    auto& reg = obs::Registry::global();
    return StoreObs{&reg.counter("rollup_days_built_total"),
                    &reg.counter("rollup_days_reused_total"),
                    &reg.counter("rollup_days_failed_total"),
                    &reg.span_site("rollup_build")};
  }();
  return m;
}

core::Result<void> write_atomically(const std::filesystem::path& path,
                                    std::span<const std::byte> data) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  auto file = storage::make_posix_file();
  if (auto r = file->open_at(tmp, 0); !r) return r;
  if (auto r = file->write(data); !r) {
    (void)file->close();
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return r;
  }
  if (auto r = file->sync(); !r) return r;
  if (auto r = file->close(); !r) return r;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return core::Errc::kIoError;
  }
  return {};
}

}  // namespace

RollupStore::RollupStore(std::filesystem::path dir, const storage::DataLake& lake,
                         const services::ServiceCatalog& catalog, const asn::Rib* rib)
    : dir_(std::move(dir)), lake_(lake), catalog_(catalog), rib_(rib) {}

std::string RollupStore::rollup_filename(core::CivilDate day, Dimension dim) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "rollup_%04d-%02u-%02u.%s.ewr", day.year,
                static_cast<unsigned>(day.month), static_cast<unsigned>(day.day),
                std::string(to_string(dim)).c_str());
  return buf;
}

std::filesystem::path RollupStore::rollup_path(core::CivilDate day, Dimension dim) const {
  return dir_ / rollup_filename(day, dim);
}

bool RollupStore::fresh(core::CivilDate day, Dimension dim) const {
  const storage::FileIdentity source = lake_.day_identity(day);
  if (!source.exists()) return false;  // no lake day: nothing to be fresh against
  auto mapped = storage::MappedFile::open(rollup_path(day, dim));
  if (!mapped) return false;
  // Full-mask decode so every section CRC is verified: "fresh" promises the
  // file is both current (identity matches the lake day) and intact, so a
  // torn, foreign, or bit-flipped rollup reads as stale and build() heals
  // it. Queries still load with a narrow mask; only freshness pays for the
  // full check.
  auto rollup = decode_rollup(mapped->bytes(), kAllColumns);
  return rollup && rollup->source == source;
}

RollupStore::DayOutcome RollupStore::build_day(core::CivilDate day,
                                               const BuildOptions& options) const {
  DayOutcome out;
  std::vector<Dimension> stale;
  for (std::size_t d = 0; d < kDimensionCount; ++d) {
    const auto dim = static_cast<Dimension>(d);
    if (!options.force && fresh(day, dim)) {
      ++out.reused;
    } else {
      stale.push_back(dim);
    }
  }
  if (stale.empty()) return out;

  // Capture the identity *before* scanning: if the lake file is appended to
  // mid-build, the rollup records the pre-append identity and the next
  // build() pass sees it as stale again — never the other way around.
  const storage::FileIdentity source = lake_.day_identity(day);
  // One ScanScratch per worker thread, reused across every day this worker
  // builds: block decompression and the v3 column buffers warm up once per
  // build() instead of reallocating per day (and, before the scratch-passing
  // aggregate_day existed, per block).
  thread_local storage::ScanScratch scratch;
  const auto scan = analytics::aggregate_day(lake_, day, scratch, nullptr, catalog_);
  if (scan.scan.errc != core::Errc::kOk && scan.scan.records_delivered == 0) {
    out.failed += stale.size();
    out.errc = scan.scan.errc;
    return out;
  }
  for (const Dimension dim : stale) {
    DayRollup rollup =
        build_day_rollup(scan.aggregate, dim, catalog_, rib_, options.sketch, options.criteria);
    rollup.source = source;
    const auto bytes = encode_rollup(rollup);
    if (auto written = write_atomically(rollup_path(day, dim), bytes)) {
      ++out.built;
    } else {
      ++out.failed;
      out.errc = written.error();
    }
  }
  return out;
}

BuildReport RollupStore::build(core::ThreadPool& pool, const BuildOptions& options) {
  const auto all = lake_.days();
  return build(all, pool, options);
}

BuildReport RollupStore::build(std::span<const core::CivilDate> days, core::ThreadPool& pool,
                               const BuildOptions& options) {
  obs::Span build_span(*store_obs().build_span);
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);

  // One pool task per day (per-day work is serial — day fan-out already
  // saturates the pool, and nesting parallel_for would deadlock).
  std::vector<std::future<DayOutcome>> futures;
  futures.reserve(days.size());
  for (const core::CivilDate day : days) {
    futures.push_back(pool.submit([this, day, &options] { return build_day(day, options); }));
  }
  BuildReport report;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const DayOutcome out = futures[i].get();
    report.built += out.built;
    report.reused += out.reused;
    report.failed += out.failed;
    if (out.errc != core::Errc::kOk) report.errors.emplace_back(days[i], out.errc);
    if constexpr (obs::kEnabled) {
      auto& m = store_obs();
      if (out.built != 0) m.built->add(static_cast<std::uint64_t>(out.built));
      if (out.reused != 0) m.reused->add(static_cast<std::uint64_t>(out.reused));
      if (out.failed != 0) m.failed->add(static_cast<std::uint64_t>(out.failed));
    }
  }
  return report;
}

core::Result<DayRollup> RollupStore::load(core::CivilDate day, Dimension dim,
                                          std::uint32_t columns) const {
  auto mapped = storage::MappedFile::open(rollup_path(day, dim));
  if (!mapped) return mapped.error();
  return decode_rollup(mapped->bytes(), columns);
}

std::vector<core::CivilDate> RollupStore::days(Dimension dim) const {
  std::vector<core::CivilDate> out;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir_, ec)) return out;
  const std::string suffix = "." + std::string(to_string(dim)) + ".ewr";
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    // rollup_YYYY-MM-DD.<dimension>.ewr
    if (name.size() != 17 + suffix.size() || name.rfind("rollup_", 0) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) continue;
    int year = 0;
    unsigned month = 0, dday = 0;
    if (std::sscanf(name.c_str() + 7, "%4d-%2u-%2u", &year, &month, &dday) != 3) continue;
    out.push_back(core::CivilDate{year, static_cast<std::uint8_t>(month),
                                  static_cast<std::uint8_t>(dday)});
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace edgewatch::query
