#include "query/figures.hpp"

#include <array>
#include <cstdint>
#include <map>

namespace edgewatch::query {

namespace {

constexpr double kMB = 1e6;

/// Months in [from, to] that the store has rollup days for, with the days.
std::map<core::MonthIndex, std::vector<core::CivilDate>> months_present(
    const RollupStore& store, Dimension dim, core::CivilDate from, core::CivilDate to) {
  std::map<core::MonthIndex, std::vector<core::CivilDate>> months;
  for (const core::CivilDate day : store.days(dim)) {
    if (day < from || to < day) continue;
    months[core::MonthIndex{day}].push_back(day);
  }
  return months;
}

template <typename Row, typename Fn>
std::vector<Row> per_month(const RollupStore& store, Dimension dim, core::CivilDate from,
                           core::CivilDate to, core::ThreadPool* pool, Fn&& fill) {
  const auto months = months_present(store, dim, from, to);
  std::vector<const std::vector<core::CivilDate>*> day_lists;
  std::vector<Row> rows(months.size());
  std::size_t i = 0;
  for (const auto& [month, days] : months) {
    rows[i].month = month;
    day_lists.push_back(&days);
    ++i;
  }
  const auto run_one = [&](std::size_t m) { fill(rows[m], *day_lists[m]); };
  if (pool != nullptr && rows.size() > 1) {
    pool->parallel_for(0, rows.size(), run_one);
  } else {
    for (std::size_t m = 0; m < rows.size(); ++m) run_one(m);
  }
  return rows;
}

}  // namespace

std::vector<QueryRow> weekly_rtt_quantile(const RollupStore& store, services::ServiceId service,
                                          core::CivilDate from, core::CivilDate to, double q,
                                          core::ThreadPool* pool) {
  QuerySpec spec;
  spec.metric = Metric::kRttQuantile;
  spec.dimension = Dimension::kService;
  spec.from = from;
  spec.to = to;
  spec.bucket = TimeBucket::kWeek;
  spec.group = static_cast<std::uint32_t>(service);
  spec.quantile = q;
  return run_query(store, spec, pool).rows;
}

std::vector<QueryRow> top_services_by_subscribers(const RollupStore& store,
                                                  core::MonthIndex month, std::size_t k,
                                                  core::ThreadPool* pool) {
  QuerySpec spec;
  spec.metric = Metric::kDistinctClients;
  spec.dimension = Dimension::kService;
  spec.from = month.first_day();
  spec.to = core::CivilDate{
      month.year(), static_cast<std::uint8_t>(month.month()),
      static_cast<std::uint8_t>(core::days_in_month(month.year(), month.month()))};
  spec.bucket = TimeBucket::kTotal;
  spec.top_k = k;
  return run_query(store, spec, pool).rows;
}

std::vector<analytics::ProtocolShareRow> protocol_shares(const RollupStore& store,
                                                         core::CivilDate from, core::CivilDate to,
                                                         core::ThreadPool* pool) {
  return per_month<analytics::ProtocolShareRow>(
      store, Dimension::kProtocol, from, to, pool,
      [&](analytics::ProtocolShareRow& row, const std::vector<core::CivilDate>& days) {
        std::array<std::uint64_t, analytics::kWebProtocolCount> bytes{};
        std::uint64_t total = 0;
        for (const core::CivilDate day : days) {
          const auto rollup = store.load(day, Dimension::kProtocol, kColCounters);
          if (!rollup) continue;
          for (const auto& [p, group] : rollup->groups) {
            if (p >= analytics::kWebProtocolCount) continue;
            bytes[p] += group.bytes_total();
            total += group.bytes_total();
          }
        }
        if (total > 0) {
          for (std::size_t p = 0; p < analytics::kWebProtocolCount; ++p) {
            row.share_pct[p] = 100.0 * static_cast<double>(bytes[p]) / static_cast<double>(total);
          }
        }
      });
}

std::vector<analytics::VolumeTrendRow> volume_trend(const RollupStore& store,
                                                    core::CivilDate from, core::CivilDate to,
                                                    core::ThreadPool* pool) {
  return per_month<analytics::VolumeTrendRow>(
      store, Dimension::kService, from, to, pool,
      [&](analytics::VolumeTrendRow& row, const std::vector<core::CivilDate>& days) {
        std::array<TechRollup, analytics::kAccessTechCount> techs;
        std::size_t day_count = 0;
        for (const core::CivilDate day : days) {
          const auto rollup = store.load(day, Dimension::kService, kColSubscribers);
          if (!rollup) continue;
          ++day_count;
          for (std::size_t t = 0; t < techs.size(); ++t) {
            techs[t].active += rollup->subscribers[t].active;
            techs[t].sum_down += rollup->subscribers[t].sum_down;
            techs[t].sum_up += rollup->subscribers[t].sum_up;
          }
        }
        for (std::size_t t = 0; t < techs.size(); ++t) {
          if (techs[t].active == 0 || day_count == 0) continue;
          const auto active = static_cast<double>(techs[t].active);
          row.down_mb[t] = static_cast<double>(techs[t].sum_down) / active / kMB;
          row.up_mb[t] = static_cast<double>(techs[t].sum_up) / active / kMB;
          row.subscribers[t] = techs[t].active / day_count;
        }
      });
}

}  // namespace edgewatch::query
