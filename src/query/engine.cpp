#include "query/engine.hpp"

#include <algorithm>
#include <future>
#include <map>
#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace edgewatch::query {

namespace {

constexpr const char* metric_name(Metric m) noexcept {
  switch (m) {
    case Metric::kBytes:
      return "bytes";
    case Metric::kFlows:
      return "flows";
    case Metric::kDistinctClients:
      return "distinct_clients";
    case Metric::kDistinctServers:
      return "distinct_servers";
    case Metric::kRttQuantile:
      return "rtt_quantile";
    case Metric::kVolumeQuantile:
      return "volume_quantile";
    case Metric::kActiveSubscribers:
      return "active_subscribers";
  }
  return "unknown";
}

// RAII latency timer for run_query: one histogram series per metric kind,
// so sketch-backed quantile queries don't hide behind cheap counter ones.
// Covers every return path, including the empty-range early-out.
class QueryTimer {
 public:
  explicit QueryTimer(Metric m) {
    if constexpr (obs::kEnabled) {
      registry_ = &obs::Registry::global();
      registry_->counter("query_total").add(1);
      hist_ = &registry_->histogram("query_latency_ns", {},
                                    std::string("metric=\"") + metric_name(m) + "\"");
      start_ = registry_->now_ns();
    }
  }
  QueryTimer(const QueryTimer&) = delete;
  QueryTimer& operator=(const QueryTimer&) = delete;
  ~QueryTimer() {
    if constexpr (obs::kEnabled) {
      hist_->record(registry_->now_ns() - start_);
    }
  }

 private:
  [[maybe_unused]] obs::Registry* registry_ = nullptr;
  [[maybe_unused]] obs::Histogram* hist_ = nullptr;
  [[maybe_unused]] std::uint64_t start_ = 0;
};

bool per_tech(Metric m) noexcept {
  return m == Metric::kVolumeQuantile || m == Metric::kActiveSubscribers;
}

core::CivilDate bucket_start(core::CivilDate day, TimeBucket bucket,
                             core::CivilDate range_from) noexcept {
  switch (bucket) {
    case TimeBucket::kTotal:
      return range_from;
    case TimeBucket::kDay:
      return day;
    case TimeBucket::kWeek: {
      const std::int64_t z = core::days_from_civil(day);
      return core::civil_from_days(z - (core::weekday_from_days(z) - 1));
    }
    case TimeBucket::kMonth:
      return core::MonthIndex{day}.first_day();
  }
  return day;
}

/// One bucket's merge + row extraction (the per-task body).
struct BucketOutcome {
  std::vector<QueryRow> rows;
  std::size_t days_merged = 0;
  std::size_t days_raw = 0;
  std::vector<core::CivilDate> missing;
  core::Errc errc = core::Errc::kOk;
};

/// The raw fallback only serves exact group counters: approximate metrics
/// would need the sketches a rollup holds, and the ASN dimension needs the
/// RIB snapshot the store used at build time.
bool raw_fallback_applies(const QuerySpec& spec, Dimension dim) noexcept {
  if (!spec.raw_fallback) return false;
  if (spec.metric != Metric::kBytes && spec.metric != Metric::kFlows) return false;
  return dim == Dimension::kService || dim == Dimension::kProtocol;
}

BucketOutcome merge_bucket(const RollupStore& store, const QuerySpec& spec, Dimension dim,
                           std::uint32_t columns, core::CivilDate start,
                           const std::vector<core::CivilDate>& days) {
  BucketOutcome out;
  DayRollup merged;
  bool any = false;
  for (const core::CivilDate day : days) {
    auto rollup = store.load(day, dim, columns);
    if (!rollup) {
      if (rollup.error() == core::Errc::kNotFound) {
        out.missing.push_back(day);
      } else if (out.errc == core::Errc::kOk) {
        out.errc = rollup.error();
      }
      continue;
    }
    ++out.days_merged;
    if (!any) {
      merged = std::move(*rollup);
      any = true;
    } else {
      merged.merge(*rollup);
    }
  }
  // Rollup-less days: with raw_fallback, answer them straight from the
  // lake. Accumulation mirrors build_day_rollup's counters exactly —
  // service groups count (flows, bytes_up, bytes_down) per classified
  // record; protocol groups sum web bytes into bytes_down — so a fallback
  // day is indistinguishable from a rollup-answered one. The day file is
  // the time partition (no time filter pushed), but a group-restricted
  // service query pushes its service mask below the block decoder: v3
  // blocks whose zone map lacks the service are pruned undecompressed.
  //
  // Consumption is batch-at-a-time (scan_day_batches): the projection is
  // narrowed to the columns each dimension actually reads, service
  // classification runs once per dictionary entry instead of once per row,
  // and v3 days never materialize a FlowRecord.
  if (raw_fallback_applies(spec, dim) && !out.missing.empty()) {
    std::vector<core::CivilDate> still_missing;
    std::vector<services::ServiceId> dict_service;  // per-batch dict classification cache
    for (const core::CivilDate day : out.missing) {
      storage::ScanPredicate pred;
      pred.catalog = &store.catalog();
      namespace sf = storage::scan_fields;
      pred.fields = dim == Dimension::kService
                        ? (sf::kUpBytes | sf::kDownBytes | sf::kL7 | sf::kServerName)
                        : (sf::kWeb | sf::kUpBytes | sf::kDownBytes);
      if (dim == Dimension::kService && spec.group && *spec.group < services::kServiceCount) {
        pred.service_mask = 1u << *spec.group;
      }
      const auto deliver = [&](const exec::RecordBatch& b) {
        if (dim == Dimension::kService) {
          dict_service.clear();
          dict_service.reserve(b.name_dict.size());
          for (const auto name : b.name_dict) {
            dict_service.push_back(name.empty() ? services::ServiceId::kOther
                                                : store.catalog().classify_domain(name));
          }
          b.for_each_row([&](std::size_t i) {
            const auto l7 = b.l7.empty() ? dpi::L7Protocol{}
                                         : static_cast<dpi::L7Protocol>(b.l7[i]);
            const services::ServiceId svc =
                dpi::is_p2p(l7)        ? services::ServiceId::kPeerToPeer
                : b.name_idx.empty()   ? services::ServiceId::kOther
                                       : dict_service[b.name_idx[i]];
            GroupRollup& g = merged.groups[static_cast<std::uint32_t>(svc)];
            ++g.flows;
            g.bytes_up += b.up_bytes.empty() ? 0 : b.up_bytes[i];
            g.bytes_down += b.dn_bytes.empty() ? 0 : b.dn_bytes[i];
          });
        } else {
          b.for_each_row([&](std::size_t i) {
            const auto web = static_cast<std::uint32_t>(b.web[i]);
            if (web != static_cast<std::uint32_t>(dpi::WebProtocol::kNotWeb)) {
              merged.groups[web].bytes_down +=
                  (b.up_bytes.empty() ? 0 : b.up_bytes[i]) +
                  (b.dn_bytes.empty() ? 0 : b.dn_bytes[i]);
            }
          });
        }
      };
      const storage::ScanResult scan = store.lake().scan_day_batches(day, pred, deliver);
      if (scan.errc == core::Errc::kNotFound) {
        still_missing.push_back(day);
        continue;
      }
      if (scan.errc != core::Errc::kOk && out.errc == core::Errc::kOk) out.errc = scan.errc;
      ++out.days_merged;
      ++out.days_raw;
      any = true;
    }
    out.missing = std::move(still_missing);
  }
  if (!any) return out;

  const auto emit = [&](std::uint32_t key, double value, double bound) {
    out.rows.push_back(QueryRow{start, key, value, bound});
  };
  if (per_tech(spec.metric)) {
    for (std::uint32_t t = 0; t < merged.subscribers.size(); ++t) {
      if (spec.group && *spec.group != t) continue;
      const TechRollup& tech = merged.subscribers[t];
      if (spec.metric == Metric::kActiveSubscribers) {
        emit(t, static_cast<double>(tech.active), 0);
      } else {
        const core::QuantileSketch& sketch = spec.download ? tech.down_bytes : tech.up_bytes;
        if (!sketch.empty()) emit(t, sketch.quantile(spec.quantile), sketch.relative_accuracy());
      }
    }
  } else {
    for (const auto& [key, group] : merged.groups) {
      if (spec.group && *spec.group != key) continue;
      switch (spec.metric) {
        case Metric::kBytes:
          emit(key, static_cast<double>(group.bytes_total()), 0);
          break;
        case Metric::kFlows:
          emit(key, static_cast<double>(group.flows), 0);
          break;
        case Metric::kDistinctClients:
          if (!group.clients.empty()) {
            emit(key, group.clients.estimate(), group.clients.error_bound());
          }
          break;
        case Metric::kDistinctServers:
          if (!group.servers.empty()) {
            emit(key, group.servers.estimate(), group.servers.error_bound());
          }
          break;
        case Metric::kRttQuantile:
          if (!group.rtt_ms.empty()) {
            emit(key, group.rtt_ms.quantile(spec.quantile), group.rtt_ms.relative_accuracy());
          }
          break;
        default:
          break;
      }
    }
  }
  std::stable_sort(out.rows.begin(), out.rows.end(),
                   [](const QueryRow& a, const QueryRow& b) { return a.value > b.value; });
  if (spec.top_k != 0 && out.rows.size() > spec.top_k) out.rows.resize(spec.top_k);
  return out;
}

}  // namespace

std::uint32_t columns_for(Metric metric) noexcept {
  switch (metric) {
    case Metric::kBytes:
    case Metric::kFlows:
      return kColCounters;
    case Metric::kDistinctClients:
      return kColClients;
    case Metric::kDistinctServers:
      return kColServers;
    case Metric::kRttQuantile:
      return kColRtt;
    case Metric::kVolumeQuantile:
    case Metric::kActiveSubscribers:
      return kColSubscribers;
  }
  return kAllColumns;
}

QueryResult run_query(const RollupStore& store, const QuerySpec& spec, core::ThreadPool* pool) {
  const QueryTimer timer(spec.metric);
  QueryResult result;
  result.columns_loaded = columns_for(spec.metric);
  // The subscriber section only exists in service-dimension rollups.
  const Dimension dim = per_tech(spec.metric) ? Dimension::kService : spec.dimension;
  if (spec.to < spec.from) return result;

  // Bucket the calendar range. Days the store has no rollup for surface in
  // missing_days — the engine never silently narrows a question's range.
  std::map<core::CivilDate, std::vector<core::CivilDate>> buckets;
  for (std::int64_t z = core::days_from_civil(spec.from); z <= core::days_from_civil(spec.to);
       ++z) {
    const core::CivilDate day = core::civil_from_days(z);
    buckets[bucket_start(day, spec.bucket, spec.from)].push_back(day);
  }

  std::vector<BucketOutcome> outcomes(buckets.size());
  std::vector<std::pair<core::CivilDate, const std::vector<core::CivilDate>*>> order;
  order.reserve(buckets.size());
  for (const auto& [start, days] : buckets) order.emplace_back(start, &days);

  const auto run_one = [&](std::size_t i) {
    outcomes[i] =
        merge_bucket(store, spec, dim, result.columns_loaded, order[i].first, *order[i].second);
  };
  if (pool != nullptr && order.size() > 1) {
    pool->parallel_for(0, order.size(), run_one);
  } else {
    for (std::size_t i = 0; i < order.size(); ++i) run_one(i);
  }

  for (auto& out : outcomes) {
    result.rows.insert(result.rows.end(), out.rows.begin(), out.rows.end());
    result.missing_days.insert(result.missing_days.end(), out.missing.begin(),
                               out.missing.end());
    result.days_merged += out.days_merged;
    result.days_scanned_raw += out.days_raw;
    if (result.errc == core::Errc::kOk && out.errc != core::Errc::kOk) result.errc = out.errc;
  }
  return result;
}

}  // namespace edgewatch::query
