#include "storage/codec.hpp"

namespace edgewatch::storage {

void put_varint(core::ByteWriter& w, std::uint64_t value) {
  while (value >= 0x80) {
    w.u8(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  w.u8(static_cast<std::uint8_t>(value));
}

std::uint64_t get_varint(core::ByteReader& r) noexcept {
  // A uint64 needs at most 10 LEB128 bytes, and the 10th may carry only
  // bit 63. Anything longer, or a 10th byte with more payload or a
  // continuation bit, would shift data past the end of the type: reject by
  // poisoning the reader instead of silently wrapping (malformed blocks
  // must decode to *errors*, not to plausible garbage records).
  std::uint64_t value = 0;
  for (int i = 0; i < 10; ++i) {
    const std::uint8_t byte = r.u8();
    if (!r.ok()) return 0;
    if (i == 9) {
      if (byte > 1) {  // overflow or an 11th byte requested
        r.fail();
        return 0;
      }
      return value | (static_cast<std::uint64_t>(byte) << 63);
    }
    value |= static_cast<std::uint64_t>(byte & 0x7f) << (7 * i);
    if ((byte & 0x80) == 0) return value;
  }
  r.fail();
  return 0;
}

void put_varint_signed(core::ByteWriter& w, std::int64_t value) {
  const auto zigzag =
      (static_cast<std::uint64_t>(value) << 1) ^ static_cast<std::uint64_t>(value >> 63);
  put_varint(w, zigzag);
}

std::int64_t get_varint_signed(core::ByteReader& r) noexcept {
  const std::uint64_t zigzag = get_varint(r);
  return static_cast<std::int64_t>((zigzag >> 1) ^ (~(zigzag & 1) + 1));
}

namespace {
constexpr std::uint8_t kRecordVersion = 3;
}

void encode_record(const flow::FlowRecord& record, core::ByteWriter& w) {
  w.u8(kRecordVersion);
  w.u32(record.client_ip.value());
  w.u32(record.server_ip.value());
  put_varint(w, record.client_port);
  put_varint(w, record.server_port);
  w.u8(static_cast<std::uint8_t>(record.proto));
  w.u8(static_cast<std::uint8_t>(record.access));
  put_varint_signed(w, record.first_packet.micros());
  put_varint_signed(w, record.last_packet - record.first_packet);  // duration delta
  for (const auto* dir : {&record.up, &record.down}) {
    put_varint(w, dir->packets);
    put_varint(w, dir->bytes);
    put_varint(w, dir->bytes_with_hdr);
    put_varint(w, dir->retransmits);
    put_varint(w, dir->out_of_order);
  }
  w.u8(static_cast<std::uint8_t>((record.handshake_completed ? 1 : 0) |
                                 (static_cast<std::uint8_t>(record.close_reason) << 1)));
  put_varint(w, record.rtt.samples);
  if (record.rtt.samples > 0) {
    put_varint_signed(w, record.rtt.min_us);
    put_varint_signed(w, record.rtt.max_us - record.rtt.min_us);
    put_varint_signed(w, static_cast<std::int64_t>(record.rtt.avg_us) - record.rtt.min_us);
  }
  w.u8(static_cast<std::uint8_t>(record.l7));
  w.u8(static_cast<std::uint8_t>(record.web));
  w.u8(static_cast<std::uint8_t>(record.name_source));
  put_varint(w, record.server_name.size());
  w.string(record.server_name);
  put_varint(w, record.http_status);
  put_varint(w, record.content_type.size());
  w.string(record.content_type);
}

core::Result<flow::FlowRecord> decode_record(core::ByteReader& r) {
  if (!r.ok() || r.remaining() == 0) return core::Errc::kEndOfStream;
  if (r.u8() != kRecordVersion) return core::Errc::kCorrupt;
  flow::FlowRecord record;
  record.client_ip = core::IPv4Address{r.u32()};
  record.server_ip = core::IPv4Address{r.u32()};
  record.client_port = static_cast<std::uint16_t>(get_varint(r));
  record.server_port = static_cast<std::uint16_t>(get_varint(r));
  record.proto = static_cast<core::TransportProto>(r.u8());
  record.access = static_cast<flow::AccessTech>(r.u8());
  record.first_packet = core::Timestamp{get_varint_signed(r)};
  record.last_packet = record.first_packet + get_varint_signed(r);
  for (auto* dir : {&record.up, &record.down}) {
    dir->packets = get_varint(r);
    dir->bytes = get_varint(r);
    dir->bytes_with_hdr = get_varint(r);
    dir->retransmits = static_cast<std::uint32_t>(get_varint(r));
    dir->out_of_order = static_cast<std::uint32_t>(get_varint(r));
  }
  const std::uint8_t flags = r.u8();
  record.handshake_completed = (flags & 1) != 0;
  record.close_reason = static_cast<flow::FlowCloseReason>(flags >> 1);
  record.rtt.samples = static_cast<std::uint32_t>(get_varint(r));
  if (record.rtt.samples > 0) {
    record.rtt.min_us = get_varint_signed(r);
    record.rtt.max_us = record.rtt.min_us + get_varint_signed(r);
    record.rtt.avg_us = static_cast<double>(record.rtt.min_us + get_varint_signed(r));
  }
  record.l7 = static_cast<dpi::L7Protocol>(r.u8());
  record.web = static_cast<dpi::WebProtocol>(r.u8());
  record.name_source = static_cast<flow::NameSource>(r.u8());
  const auto name_len = get_varint(r);
  if (name_len > 4096) return core::Errc::kCorrupt;  // sanity bound
  record.server_name = std::string(r.string(static_cast<std::size_t>(name_len)));
  record.http_status = static_cast<std::uint16_t>(get_varint(r));
  const auto ct_len = get_varint(r);
  if (ct_len > 256) return core::Errc::kCorrupt;  // sanity bound
  record.content_type = std::string(r.string(static_cast<std::size_t>(ct_len)));
  if (!r.ok()) return core::Errc::kCorrupt;
  return record;
}

std::string_view csv_header() noexcept {
  return "client_ip,server_ip,client_port,server_port,proto,access,first_us,last_us,"
         "up_pkts,up_bytes,up_retx,up_ooo,down_pkts,down_bytes,down_retx,down_ooo,"
         "handshake,close,rtt_samples,rtt_min_us,"
         "rtt_avg_us,rtt_max_us,l7,web,server_name,name_source,http_status,content_type";
}

}  // namespace edgewatch::storage
