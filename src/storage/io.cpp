#include "storage/io.hpp"

#include <cerrno>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

namespace edgewatch::storage {

namespace {

core::Errc errc_from_errno(int err) noexcept {
  return err == ENOSPC ? core::Errc::kNoSpace : core::Errc::kIoError;
}

class PosixFile final : public WritableFile {
 public:
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  core::Result<void> open_at(const std::filesystem::path& path,
                             std::uint64_t offset) override {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) return errc_from_errno(errno);
    if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(offset), SEEK_SET) < 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      return errc_from_errno(err);
    }
    return {};
  }

  core::Result<void> write(std::span<const std::byte> data) override {
    if (fd_ < 0) return core::Errc::kIoError;
    std::size_t done = 0;
    while (done < data.size()) {
      const ::ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return errc_from_errno(errno);
      }
      done += static_cast<std::size_t>(n);
      written_ += static_cast<std::uint64_t>(n);
    }
    return {};
  }

  core::Result<void> sync() override {
    if (fd_ < 0) return core::Errc::kIoError;
    if (::fsync(fd_) != 0) return errc_from_errno(errno);
    return {};
  }

  core::Result<void> truncate(std::uint64_t size) override {
    if (fd_ < 0) return core::Errc::kIoError;
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) return errc_from_errno(errno);
    return {};
  }

  core::Result<void> close() override {
    if (fd_ < 0) return core::Errc::kIoError;
    const int rc = ::close(fd_);
    fd_ = -1;
    return rc == 0 ? core::Result<void>{} : core::Result<void>{core::Errc::kIoError};
  }

  [[nodiscard]] std::uint64_t bytes_written() const noexcept override { return written_; }

 private:
  int fd_ = -1;
  std::uint64_t written_ = 0;
};

}  // namespace

std::unique_ptr<WritableFile> make_posix_file() { return std::make_unique<PosixFile>(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

MappedFile::~MappedFile() { reset(); }

void MappedFile::reset() noexcept {
  if (data_ != nullptr) {
    if (mapped_) {
      ::munmap(data_, size_);
    } else {
      delete[] static_cast<std::byte*>(data_);
    }
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

core::Result<MappedFile> MappedFile::open(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return errno == ENOENT ? core::Errc::kNotFound : core::Errc::kIoError;
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return core::Errc::kIoError;
  }
  MappedFile file;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ == 0) {
    ::close(fd);
    return file;  // empty file: empty view, nothing to map
  }
  void* map = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map != MAP_FAILED) {
    file.data_ = map;
    file.mapped_ = true;
    ::close(fd);
    return file;
  }
  // Fallback: plain read into a heap buffer.
  auto* buffer = new (std::nothrow) std::byte[file.size_];
  if (buffer == nullptr) {
    ::close(fd);
    return core::Errc::kIoError;
  }
  std::size_t done = 0;
  while (done < file.size_) {
    const ::ssize_t n = ::read(fd, buffer + done, file.size_ - done);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      delete[] buffer;
      ::close(fd);
      return core::Errc::kIoError;
    }
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);
  file.data_ = buffer;
  file.mapped_ = false;
  return file;
}

}  // namespace edgewatch::storage
