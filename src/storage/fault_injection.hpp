// Deterministic fault injection for the lake's write path.
//
// The paper's pipeline ran for five years across probe crashes, disk
// faults and upgrades (§2.3); FaultyFile makes those events reproducible
// on demand. It wraps a real WritableFile and injects exactly one fault at
// a chosen byte offset of the outgoing stream:
//
//   kShortWrite     the write syscall persists only a prefix and fails;
//                   the caller is alive and may roll back (truncate works).
//   kNoSpace        as kShortWrite but the volume is full (ENOSPC) — the
//                   rollback truncate still succeeds (frees no new space).
//   kBitFlip        one bit of one byte is flipped in flight; every write
//                   "succeeds" — silent media corruption, detectable only
//                   by checksums on read.
//   kCrashAtOffset  bytes before the offset reach the file, then the
//                   process "dies": every later operation — including the
//                   rollback truncate and sync — fails with kCrashed,
//                   leaving a torn tail exactly as a power cut would.
//
// Plans are derived deterministically from a core::rng seed so a failing
// corruption-matrix cell replays byte-for-byte.
#pragma once

#include <cstdint>
#include <memory>

#include "storage/io.hpp"

namespace edgewatch::storage {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kShortWrite,
  kNoSpace,
  kBitFlip,
  kCrashAtOffset,
};

[[nodiscard]] std::string_view to_string(FaultKind k) noexcept;

struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  /// Offset in the stream of bytes written through the handle (not a file
  /// offset: open_at's base is excluded) at which the fault strikes.
  std::uint64_t at_byte = 0;
  /// For kBitFlip: which bit of the byte at `at_byte` to flip.
  std::uint32_t bit = 0;

  /// Derive a plan whose offset/bit are drawn uniformly over
  /// [lo, hi) x [0, 8) from `seed` (SplitMix64 — reproducible forever).
  [[nodiscard]] static FaultPlan seeded(FaultKind kind, std::uint64_t seed,
                                        std::uint64_t lo, std::uint64_t hi) noexcept;
};

/// WritableFile decorator implementing the plan above. `inner` is usually
/// make_posix_file(). After a terminal fault fired, `fired()` is true and
/// the error every subsequent call returns tells the caller which world it
/// is in (kCrashed vs kNoSpace vs kIoError).
class FaultyFile final : public WritableFile {
 public:
  FaultyFile(std::unique_ptr<WritableFile> inner, FaultPlan plan)
      : inner_(std::move(inner)), plan_(plan) {}

  core::Result<void> open_at(const std::filesystem::path& path,
                             std::uint64_t offset) override;
  core::Result<void> write(std::span<const std::byte> data) override;
  core::Result<void> sync() override;
  core::Result<void> truncate(std::uint64_t size) override;
  core::Result<void> close() override;
  [[nodiscard]] std::uint64_t bytes_written() const noexcept override;

  [[nodiscard]] bool fired() const noexcept { return fired_; }

  /// A FileFactory producing one FaultyFile for the next handle and plain
  /// POSIX files afterwards (fault the append under test, not the setup).
  [[nodiscard]] static FileFactory factory_once(FaultPlan plan);

 private:
  std::unique_ptr<WritableFile> inner_;
  FaultPlan plan_;
  std::uint64_t stream_pos_ = 0;  ///< Bytes offered to write() so far.
  bool fired_ = false;
  bool dead_ = false;  ///< Crash fired: everything fails from now on.
};

}  // namespace edgewatch::storage
