// Durable write-path abstraction for the data lake.
//
// The lake's appends go through a WritableFile so that (a) the real
// implementation can fsync — the paper's pipeline survived five years of
// probe crashes only because data reaching "the disk" actually reached the
// disk — and (b) tests can substitute storage::FaultyFile and inject the
// short writes, ENOSPC, bit flips and mid-write crashes that a long-running
// deployment eventually sees (fault_injection.hpp).
//
// Contract: open_at() truncates the file to `offset` and positions the
// cursor there (offset 0 == create/replace). write() either persists the
// whole span or returns an error; after an error the file's tail past the
// last successful byte is undefined ("torn"). truncate() supports rollback:
// an append that fails mid-way restores the pre-append length, making the
// append atomic whenever the process survives the failure.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <span>

#include "core/result.hpp"

namespace edgewatch::storage {

class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Truncate `path` to `offset` bytes (creating it if needed) and position
  /// the write cursor at `offset`.
  virtual core::Result<void> open_at(const std::filesystem::path& path,
                                     std::uint64_t offset) = 0;
  virtual core::Result<void> write(std::span<const std::byte> data) = 0;
  /// Flush to stable storage (fsync).
  virtual core::Result<void> sync() = 0;
  /// Cut the file back to `size` bytes (rollback of a failed append).
  virtual core::Result<void> truncate(std::uint64_t size) = 0;
  virtual core::Result<void> close() = 0;

  /// Bytes successfully written through this handle since open_at().
  [[nodiscard]] virtual std::uint64_t bytes_written() const noexcept = 0;
};

/// The real thing: POSIX fd with write-retry on EINTR/short writes and
/// fsync-backed sync(). ENOSPC maps to Errc::kNoSpace.
[[nodiscard]] std::unique_ptr<WritableFile> make_posix_file();

/// How DataLake obtains its write handles; tests swap in fault injectors.
using FileFactory = std::function<std::unique_ptr<WritableFile>()>;

}  // namespace edgewatch::storage
