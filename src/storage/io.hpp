// Durable write-path abstraction for the data lake.
//
// The lake's appends go through a WritableFile so that (a) the real
// implementation can fsync — the paper's pipeline survived five years of
// probe crashes only because data reaching "the disk" actually reached the
// disk — and (b) tests can substitute storage::FaultyFile and inject the
// short writes, ENOSPC, bit flips and mid-write crashes that a long-running
// deployment eventually sees (fault_injection.hpp).
//
// Contract: open_at() truncates the file to `offset` and positions the
// cursor there (offset 0 == create/replace). write() either persists the
// whole span or returns an error; after an error the file's tail past the
// last successful byte is undefined ("torn"). truncate() supports rollback:
// an append that fails mid-way restores the pre-append length, making the
// append atomic whenever the process survives the failure.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <span>

#include "core/result.hpp"

namespace edgewatch::storage {

class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Truncate `path` to `offset` bytes (creating it if needed) and position
  /// the write cursor at `offset`.
  virtual core::Result<void> open_at(const std::filesystem::path& path,
                                     std::uint64_t offset) = 0;
  virtual core::Result<void> write(std::span<const std::byte> data) = 0;
  /// Flush to stable storage (fsync).
  virtual core::Result<void> sync() = 0;
  /// Cut the file back to `size` bytes (rollback of a failed append).
  virtual core::Result<void> truncate(std::uint64_t size) = 0;
  virtual core::Result<void> close() = 0;

  /// Bytes successfully written through this handle since open_at().
  [[nodiscard]] virtual std::uint64_t bytes_written() const noexcept = 0;
};

/// The real thing: POSIX fd with write-retry on EINTR/short writes and
/// fsync-backed sync(). ENOSPC maps to Errc::kNoSpace.
[[nodiscard]] std::unique_ptr<WritableFile> make_posix_file();

/// How DataLake obtains its write handles; tests swap in fault injectors.
using FileFactory = std::function<std::unique_ptr<WritableFile>()>;

/// Read-only memory map of a whole file. The read path of the rollup store
/// (query::) maps each .ewr file and touches only the sections a query
/// projects, so an untouched column never costs a page-in. Move-only; the
/// mapping is released on destruction. Falls back to a heap read when mmap
/// is unavailable for the file (e.g. some pseudo-filesystems).
class MappedFile {
 public:
  MappedFile() noexcept = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// Map `path` read-only. kNotFound when absent, kIoError otherwise.
  [[nodiscard]] static core::Result<MappedFile> open(const std::filesystem::path& path);

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {static_cast<const std::byte*>(data_), size_};
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  void reset() noexcept;

  void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;  ///< true: munmap on destroy; false: delete[] fallback.
};

}  // namespace edgewatch::storage
