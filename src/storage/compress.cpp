#include "storage/compress.hpp"

#include <algorithm>
#include <cstring>

namespace edgewatch::storage {

namespace {

constexpr std::uint8_t kSchemeStored = 0;
constexpr std::uint8_t kSchemeLz = 1;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kHashBits = 14;
constexpr std::size_t kMaxOffset = 65535;

std::uint32_t read32(const std::byte* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::size_t hash4(std::uint32_t v) noexcept {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_le32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_le32(std::span<const std::byte> in) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::to_integer<std::uint32_t>(in[i]) << (8 * i);
  return v;
}

/// Append a length with LZ4-style extension bytes: `base` is the 4-bit
/// value already stored in the token; remainder continues in 255-steps.
void put_extended_length(std::vector<std::byte>& out, std::size_t value) {
  while (value >= 255) {
    out.push_back(static_cast<std::byte>(255));
    value -= 255;
  }
  out.push_back(static_cast<std::byte>(value));
}

}  // namespace

std::vector<std::byte> compress_block(std::span<const std::byte> input) {
  std::vector<std::byte> out;
  out.reserve(input.size() / 2 + 16);
  out.push_back(static_cast<std::byte>(kSchemeLz));
  put_le32(out, static_cast<std::uint32_t>(input.size()));

  std::vector<std::uint32_t> table(std::size_t{1} << kHashBits, 0xffffffffu);
  std::size_t pos = 0;
  std::size_t literal_start = 0;

  auto emit_sequence = [&](std::size_t literals_end, std::size_t match_len,
                           std::size_t match_offset) {
    const std::size_t lit_len = literals_end - literal_start;
    const std::uint8_t lit_nibble = lit_len >= 15 ? 15 : static_cast<std::uint8_t>(lit_len);
    // match_len == 0 encodes the final literal-only sequence.
    const std::size_t ml_excess = match_len >= kMinMatch ? match_len - kMinMatch : 0;
    const std::uint8_t ml_nibble =
        match_len == 0 ? 0 : (ml_excess >= 15 ? 15 : static_cast<std::uint8_t>(ml_excess));
    out.push_back(static_cast<std::byte>((lit_nibble << 4) | ml_nibble));
    if (lit_nibble == 15) put_extended_length(out, lit_len - 15);
    out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(literal_start),
               input.begin() + static_cast<std::ptrdiff_t>(literals_end));
    if (match_len > 0) {
      out.push_back(static_cast<std::byte>(match_offset & 0xff));
      out.push_back(static_cast<std::byte>(match_offset >> 8));
      if (ml_nibble == 15) put_extended_length(out, ml_excess - 15);
    }
  };

  if (input.size() >= kMinMatch + 1) {
    const std::size_t limit = input.size() - kMinMatch;
    while (pos < limit) {
      const std::uint32_t value = read32(input.data() + pos);
      const std::size_t slot = hash4(value);
      const std::uint32_t candidate = table[slot];
      table[slot] = static_cast<std::uint32_t>(pos);
      if (candidate != 0xffffffffu && pos - candidate <= kMaxOffset &&
          read32(input.data() + candidate) == value) {
        // Extend the match.
        std::size_t len = kMinMatch;
        while (pos + len < input.size() && input[candidate + len] == input[pos + len]) ++len;
        emit_sequence(pos, len, pos - candidate);
        pos += len;
        literal_start = pos;
        continue;
      }
      ++pos;
    }
  }
  emit_sequence(input.size(), 0, 0);

  if (out.size() >= input.size() + 5) {
    // Incompressible: store raw.
    out.clear();
    out.push_back(static_cast<std::byte>(kSchemeStored));
    put_le32(out, static_cast<std::uint32_t>(input.size()));
    out.insert(out.end(), input.begin(), input.end());
  }
  return out;
}

std::vector<std::byte> compress_block_lazy(std::span<const std::byte> input) {
  auto out = compress_block(input);
  if (std::to_integer<std::uint8_t>(out[0]) == kSchemeLz &&
      out.size() > 5 + input.size() - input.size() / 8) {
    out.resize(5);
    out[0] = static_cast<std::byte>(kSchemeStored);
    out.insert(out.end(), input.begin(), input.end());
  }
  return out;
}

std::optional<std::vector<std::byte>> decompress_block(std::span<const std::byte> input) {
  std::vector<std::byte> out;
  if (!decompress_block_into(input, out)) return std::nullopt;
  return out;
}

std::optional<std::span<const std::byte>> decompress_block_view(std::span<const std::byte> input,
                                                                std::vector<std::byte>& scratch) {
  if (input.size() >= 5 && std::to_integer<std::uint8_t>(input[0]) == kSchemeStored) {
    const std::size_t expected = get_le32(input.subspan(1, 4));
    if (expected > kMaxDecompressedSize || input.size() - 5 != expected) return std::nullopt;
    return input.subspan(5);
  }
  if (!decompress_block_into(input, scratch)) return std::nullopt;
  return std::span<const std::byte>{scratch};
}

bool decompress_block_into(std::span<const std::byte> input, std::vector<std::byte>& out) {
  out.clear();
  if (input.size() < 5) return false;
  const auto scheme = std::to_integer<std::uint8_t>(input[0]);
  const std::size_t expected = get_le32(input.subspan(1, 4));
  // The declared size is untrusted: cap it before it drives any
  // allocation, or a 5-byte header could demand 4 GB up front.
  if (expected > kMaxDecompressedSize) return false;
  input = input.subspan(5);

  if (scheme == kSchemeStored) {
    if (input.size() != expected) return false;
    out.assign(input.begin(), input.end());
    return true;
  }
  if (scheme != kSchemeLz) return false;

  out.reserve(std::min(expected, std::size_t{64} * 1024));
  std::size_t pos = 0;
  auto read_extended = [&](std::size_t base) -> std::optional<std::size_t> {
    std::size_t len = base;
    if (base == 15) {
      while (true) {
        if (pos >= input.size()) return std::nullopt;
        const auto b = std::to_integer<std::uint8_t>(input[pos++]);
        len += b;
        if (b != 255) break;
      }
    }
    return len;
  };

  while (pos < input.size()) {
    const auto token = std::to_integer<std::uint8_t>(input[pos++]);
    const auto lit_len = read_extended(token >> 4);
    if (!lit_len) return false;
    if (pos + *lit_len > input.size()) return false;
    if (out.size() + *lit_len > expected) return false;
    out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(pos),
               input.begin() + static_cast<std::ptrdiff_t>(pos + *lit_len));
    pos += *lit_len;
    if (pos >= input.size()) break;  // final literal-only sequence

    if (pos + 2 > input.size()) return false;
    const std::size_t offset = std::to_integer<std::size_t>(input[pos]) |
                               (std::to_integer<std::size_t>(input[pos + 1]) << 8);
    pos += 2;
    const auto ml_excess = read_extended(token & 0x0f);
    if (!ml_excess) return false;
    const std::size_t match_len = *ml_excess + kMinMatch;
    if (offset == 0 || offset > out.size()) return false;
    if (out.size() + match_len > expected) return false;
    // Byte-by-byte copy: overlapping matches (offset < len) are legal and
    // replicate the run, exactly as in LZ4.
    std::size_t from = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) out.push_back(out[from + i]);
  }
  if (out.size() != expected) return false;
  return true;
}

}  // namespace edgewatch::storage
