#include "storage/compress.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#include "storage/codec.hpp"

namespace edgewatch::storage {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kHashBits = 14;
constexpr std::size_t kMaxOffset = 65535;

std::uint32_t read32(const std::byte* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::size_t hash4(std::uint32_t v) noexcept {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_le32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_le32(std::span<const std::byte> in) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::to_integer<std::uint32_t>(in[i]) << (8 * i);
  return v;
}

/// Append a length with LZ4-style extension bytes: `base` is the 4-bit
/// value already stored in the token; remainder continues in 255-steps.
void put_extended_length(std::vector<std::byte>& out, std::size_t value) {
  while (value >= 255) {
    out.push_back(static_cast<std::byte>(255));
    value -= 255;
  }
  out.push_back(static_cast<std::byte>(value));
}

/// LEB128 append onto a raw byte vector — bit-identical to codec.hpp's
/// put_varint(ByteWriter&), re-stated here because the segment encoders
/// build envelopes in place inside an existing payload buffer.
void put_varint_raw(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

constexpr unsigned varint_len(std::uint64_t v) noexcept {
  return (static_cast<unsigned>(std::bit_width(v | 1)) + 6) / 7;
}

constexpr std::int64_t unzigzag(std::uint64_t z) noexcept {
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

/// Greedy LZ core shared by every compress_block* entry point: appends a
/// complete envelope (scheme byte + u32le size + payload) to `out`. The
/// stored fallback thresholds reproduce the historical compress_block /
/// compress_block_lazy byte-for-byte: non-lazy stores when LZ failed to
/// beat raw + header, lazy stores unless LZ saves ≥ 1/8 of the input.
void lz_append(std::span<const std::byte> input, std::vector<std::byte>& out,
               std::vector<std::uint32_t>& table, bool lazy) {
  const std::size_t start = out.size();
  out.reserve(start + input.size() / 2 + 16);
  out.push_back(static_cast<std::byte>(kSchemeLz));
  put_le32(out, static_cast<std::uint32_t>(input.size()));

  std::size_t pos = 0;
  std::size_t literal_start = 0;

  auto emit_sequence = [&](std::size_t literals_end, std::size_t match_len,
                           std::size_t match_offset) {
    const std::size_t lit_len = literals_end - literal_start;
    const std::uint8_t lit_nibble = lit_len >= 15 ? 15 : static_cast<std::uint8_t>(lit_len);
    // match_len == 0 encodes the final literal-only sequence.
    const std::size_t ml_excess = match_len >= kMinMatch ? match_len - kMinMatch : 0;
    const std::uint8_t ml_nibble =
        match_len == 0 ? 0 : (ml_excess >= 15 ? 15 : static_cast<std::uint8_t>(ml_excess));
    out.push_back(static_cast<std::byte>((lit_nibble << 4) | ml_nibble));
    if (lit_nibble == 15) put_extended_length(out, lit_len - 15);
    out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(literal_start),
               input.begin() + static_cast<std::ptrdiff_t>(literals_end));
    if (match_len > 0) {
      out.push_back(static_cast<std::byte>(match_offset & 0xff));
      out.push_back(static_cast<std::byte>(match_offset >> 8));
      if (ml_nibble == 15) put_extended_length(out, ml_excess - 15);
    }
  };

  if (input.size() >= kMinMatch + 1) {
    // The match table is only touched when the input is long enough to
    // match against; tiny segments (u8 constant columns are 2 bytes) skip
    // the 64 KB reset entirely.
    table.assign(std::size_t{1} << kHashBits, 0xffffffffu);
    const std::size_t limit = input.size() - kMinMatch;
    while (pos < limit) {
      const std::uint32_t value = read32(input.data() + pos);
      const std::size_t slot = hash4(value);
      const std::uint32_t candidate = table[slot];
      table[slot] = static_cast<std::uint32_t>(pos);
      if (candidate != 0xffffffffu && pos - candidate <= kMaxOffset &&
          read32(input.data() + candidate) == value) {
        // Extend the match.
        std::size_t len = kMinMatch;
        while (pos + len < input.size() && input[candidate + len] == input[pos + len]) ++len;
        emit_sequence(pos, len, pos - candidate);
        pos += len;
        literal_start = pos;
        continue;
      }
      ++pos;
    }
  }
  emit_sequence(input.size(), 0, 0);

  // Stored fallback. Non-lazy: envelope must stay below input + 5-byte
  // header (historically `out.size() >= input.size() + 5` → stored). Lazy:
  // additionally demand a 1/8 saving; for inputs under 8 bytes that term
  // vanishes and the non-lazy bound still applies.
  const std::size_t cap = lazy ? std::min(input.size() + 4, input.size() + 5 - input.size() / 8)
                               : input.size() + 4;
  if (out.size() - start > cap) {
    out.resize(start);
    out.push_back(static_cast<std::byte>(kSchemeStored));
    put_le32(out, static_cast<std::uint32_t>(input.size()));
    out.insert(out.end(), input.begin(), input.end());
  }
}

// ---- FOR bitpack kernels -------------------------------------------------

/// SWAR bit packer: values (already reduced by `base`, each < 2^width) are
/// laid down little-endian — value i occupies bits [i·width, (i+1)·width)
/// of the payload. A 64-bit accumulator flushes 8 bytes at a time with the
/// straddling value's high bits carried into the next accumulator.
void pack_for_bits(std::span<const std::uint64_t> values, std::uint64_t base, unsigned width,
                   std::vector<std::byte>& out) {
  std::uint64_t acc = 0;
  unsigned filled = 0;
  const auto flush = [&out](std::uint64_t a, unsigned nbytes) {
    std::array<std::byte, 8> tmp;
    for (unsigned k = 0; k < nbytes; ++k) {
      tmp[k] = static_cast<std::byte>(a & 0xff);
      a >>= 8;
    }
    out.insert(out.end(), tmp.begin(), tmp.begin() + nbytes);
  };
  for (const std::uint64_t v : values) {
    const std::uint64_t d = v - base;
    acc |= d << filled;  // filled < 64; bits shifted out are re-derived below
    filled += width;
    if (filled >= 64) {
      flush(acc, 8);
      filled -= 64;
      // `width - filled` is evaluated only when the value straddled the
      // boundary (filled > 0), so the shift stays in [1, 63].
      acc = filled != 0 ? d >> (width - filled) : 0;
    }
  }
  if (filled != 0) flush(acc, (filled + 7) / 8);
}

/// Portable bit reader for one packed value; shared by the generic unpack
/// path (wide widths, big-endian hosts) and the sub-group tails below.
[[nodiscard]] std::uint64_t read_packed_value(const std::uint8_t* bytes, std::size_t bit,
                                              unsigned width) noexcept {
  std::uint64_t v = 0;
  unsigned got = 0;
  while (got < width) {
    const unsigned off = static_cast<unsigned>(bit & 7);
    const unsigned take = std::min(8u - off, width - got);
    const auto byte = static_cast<std::uint64_t>(bytes[bit >> 3]);
    v |= ((byte >> off) & ((std::uint64_t{1} << take) - 1)) << got;
    got += take;
    bit += take;
  }
  return v;
}

/// SWAR unpack: one unaligned 8-byte load per value covers shift + width
/// for any width ≤ 57 (bit offset within the load is at most 7); the last
/// few values near the buffer end take a partial load so the read never
/// leaves the payload.
void unpack_for_bits(const std::uint8_t* bytes, std::size_t packed, std::size_t n, unsigned width,
                     std::uint64_t base, std::uint64_t* out) {
  if constexpr (std::endian::native == std::endian::little) {
    if (width <= 57) {
      const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
      std::size_t i = 0;
      for (; i < n; ++i) {
        const std::size_t bit = i * width;
        const std::size_t off = bit >> 3;
        if (off + 8 > packed) break;
        std::uint64_t w;
        std::memcpy(&w, bytes + off, 8);
        out[i] = base + ((w >> (bit & 7)) & mask);
      }
      for (; i < n; ++i) {
        const std::size_t bit = i * width;
        const std::size_t off = bit >> 3;
        std::uint64_t w = 0;
        std::memcpy(&w, bytes + off, packed - off);
        out[i] = base + ((w >> (bit & 7)) & mask);
      }
      return;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = base + read_packed_value(bytes, i * width, width);
  }
}

#ifdef EW_VARINT_BMI2
/// BMI2 unpack for width ≤ 8: a group of 8 values occupies exactly `width`
/// bytes, so every group is byte-aligned — one PDEP spreads the whole group
/// into one output byte per value, replacing eight load/shift/mask chains.
/// Same dispatch discipline as the varint BMI2 kernels: the target
/// attribute keeps the binary runnable on pre-Haswell CPUs, callers gate on
/// varint_batch_bmi2_available().
__attribute__((target("bmi2"))) void unpack_for_bmi2(const std::uint8_t* bytes, std::size_t n,
                                                     unsigned width, std::uint64_t base,
                                                     std::uint64_t* out) {
  const std::uint64_t mask = 0x0101010101010101ULL * ((std::uint64_t{1} << width) - 1);
  const std::size_t groups = n / 8;
  for (std::size_t g = 0; g < groups; ++g) {
    std::uint64_t w = 0;
    std::memcpy(&w, bytes + g * width, width);
    const std::uint64_t spread = __builtin_ia32_pdep_di(w, mask);
    for (unsigned k = 0; k < 8; ++k) {
      out[g * 8 + k] = base + ((spread >> (8 * k)) & 0xff);
    }
  }
  for (std::size_t i = groups * 8; i < n; ++i) {
    out[i] = base + read_packed_value(bytes, i * width, width);
  }
}
#endif

// ---- value-segment decoders ----------------------------------------------

[[nodiscard]] bool decode_for_segment(std::span<const std::byte> in, std::size_t n,
                                      std::uint64_t* out) {
  // After the scheme byte: u32le count | u8 width | varint base | packed.
  if (in.size() < 5) return false;
  if (get_le32(in) != n) return false;
  const unsigned width = std::to_integer<std::uint8_t>(in[4]);
  if (width > 64) return false;
  VarintCursor c(in.subspan(5));
  const std::uint64_t base = get_varint(c);
  if (!c.ok()) return false;
  // The payload length is fully determined by (n, width): anything else —
  // truncation or trailing garbage — is corruption.
  const std::size_t packed = (n * width + 7) / 8;
  if (static_cast<std::size_t>(c.end - c.p) != packed) return false;
  if (width == 0) {
    std::fill(out, out + n, base);
    return true;
  }
#ifdef EW_VARINT_BMI2
  if (width <= 8 && varint_batch_bmi2_available()) {
    unpack_for_bmi2(c.p, n, width, base, out);
    return true;
  }
#endif
  unpack_for_bits(c.p, packed, n, width, base, out);
  return true;
}

[[nodiscard]] bool decode_rle_segment(std::span<const std::byte> in, std::size_t n,
                                      std::uint64_t* out) {
  // After the scheme byte: u32le count | (varint run_len | varint value)*.
  if (in.size() < 4) return false;
  if (get_le32(in) != n) return false;
  VarintCursor c(in.subspan(4));
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t run = get_varint(c);
    const std::uint64_t value = get_varint(c);
    if (!c.ok() || run == 0 || run > n - i) return false;
    std::fill(out + i, out + i + static_cast<std::size_t>(run), value);
    i += static_cast<std::size_t>(run);
  }
  // Runs must tile [0, n) exactly and consume every payload byte.
  return c.ok() && c.exhausted();
}

}  // namespace

std::vector<std::byte> compress_block(std::span<const std::byte> input) {
  std::vector<std::byte> out;
  std::vector<std::uint32_t> table;
  lz_append(input, out, table, /*lazy=*/false);
  return out;
}

std::vector<std::byte> compress_block_lazy(std::span<const std::byte> input) {
  std::vector<std::byte> out;
  std::vector<std::uint32_t> table;
  lz_append(input, out, table, /*lazy=*/true);
  return out;
}

void compress_block_append(std::span<const std::byte> input, std::vector<std::byte>& out,
                           CompressScratch& scratch) {
  lz_append(input, out, scratch.lz_table, /*lazy=*/false);
}

void compress_block_lazy_append(std::span<const std::byte> input, std::vector<std::byte>& out,
                                CompressScratch& scratch) {
  lz_append(input, out, scratch.lz_table, /*lazy=*/true);
}

SegmentEncodeResult compress_u64_segment(std::span<const std::uint64_t> values,
                                         std::vector<std::byte>& out, CompressScratch& scratch) {
  const std::size_t n = values.size();
  const std::size_t start = out.size();

  // One sizing pass: the varint candidate is the sum of encoded lengths,
  // FOR follows from the min/max spread, RLE from the run structure. Only
  // the winner is materialized (FOR/RLE need a second pass over `values`,
  // never a staging buffer).
  std::size_t varint_bytes = 0;
  std::uint64_t mn = 0;
  std::uint64_t mx = 0;
  std::uint64_t run_value = 0;
  std::size_t run_len = 0;
  std::size_t rle_payload = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = values[i];
    varint_bytes += varint_len(v);
    if (i == 0) {
      mn = mx = run_value = v;
      run_len = 1;
      continue;
    }
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    if (v == run_value) {
      ++run_len;
    } else {
      rle_payload += varint_len(run_len) + varint_len(run_value);
      run_value = v;
      run_len = 1;
    }
  }
  if (run_len != 0) rle_payload += varint_len(run_len) + varint_len(run_value);

  const unsigned width = n == 0 ? 0 : static_cast<unsigned>(std::bit_width(mx - mn));
  const std::size_t stored_size = 5 + varint_bytes;
  const std::size_t for_size = 6 + varint_len(mn) + (n * width + 7) / 8;
  const std::size_t rle_size = 5 + rle_payload;

  const auto fin = [&](std::uint8_t scheme) {
    return SegmentEncodeResult{scheme, static_cast<std::uint32_t>(varint_bytes),
                               static_cast<std::uint32_t>(out.size() - start)};
  };

  // Ties prefer the cheaper decoder: RLE (memset runs) over FOR (bit math)
  // over varint. Selection depends only on `values`, so serial and parallel
  // encoders of the same block agree byte-for-byte.
  if (rle_size <= for_size && rle_size <= stored_size) {
    out.push_back(static_cast<std::byte>(kSchemeRle));
    put_le32(out, static_cast<std::uint32_t>(n));
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i + 1;
      while (j < n && values[j] == values[i]) ++j;
      put_varint_raw(out, j - i);
      put_varint_raw(out, values[i]);
      i = j;
    }
    return fin(kSchemeRle);
  }
  if (for_size < stored_size) {
    out.push_back(static_cast<std::byte>(kSchemeForBitpack));
    put_le32(out, static_cast<std::uint32_t>(n));
    out.push_back(static_cast<std::byte>(width));
    put_varint_raw(out, mn);
    pack_for_bits(values, mn, width, out);
    return fin(kSchemeForBitpack);
  }
  // Varint wins the analytic comparison; the LZ attempt (with the lazy 1/8
  // rule) can still shrink it further.
  scratch.stream.clear();
  scratch.stream.reserve(varint_bytes);
  for (const std::uint64_t v : values) put_varint_raw(scratch.stream, v);
  lz_append(scratch.stream, out, scratch.lz_table, /*lazy=*/true);
  return fin(std::to_integer<std::uint8_t>(out[start]));
}

bool decompress_u64_segment(std::span<const std::byte> input, std::size_t n, std::uint64_t* out,
                            std::vector<std::byte>& scratch) {
  if (input.empty()) return false;
  const auto scheme = std::to_integer<std::uint8_t>(input[0]);
  if (scheme == kSchemeStored || scheme == kSchemeLz) {
    const auto stream = decompress_block_view(input, scratch);
    if (!stream) return false;
    VarintCursor c(*stream);
#ifdef EW_VARINT_BMI2
    if (varint_batch_bmi2_available()) {
      return get_varint_batch_bmi2(c, n, [out](std::size_t i, std::uint64_t v) { out[i] = v; }) &&
             c.exhausted();
    }
#endif
    return get_varint_batch(c, out, n) && c.exhausted();
  }
  if (scheme == kSchemeForBitpack) return decode_for_segment(input.subspan(1), n, out);
  if (scheme == kSchemeRle) return decode_rle_segment(input.subspan(1), n, out);
  return false;
}

bool decompress_zigzag_segment(std::span<const std::byte> input, std::size_t n, std::int64_t* out,
                               std::vector<std::byte>& scratch) {
  if (input.empty()) return false;
  const auto scheme = std::to_integer<std::uint8_t>(input[0]);
  if (scheme == kSchemeStored || scheme == kSchemeLz) {
    const auto stream = decompress_block_view(input, scratch);
    if (!stream) return false;
    VarintCursor c(*stream);
#ifdef EW_VARINT_BMI2
    if (varint_batch_bmi2_available()) {
      // Fuse the unmap into the decode's value sink instead of
      // re-traversing the output.
      return get_varint_batch_bmi2(c, n,
                                   [out](std::size_t i, std::uint64_t z) {
                                     out[i] = unzigzag(z);
                                   }) &&
             c.exhausted();
    }
#endif
    // Decode into the same storage reinterpreted as unsigned (well-defined
    // aliasing), then unmap in place.
    auto* u = reinterpret_cast<std::uint64_t*>(out);
    if (!get_varint_batch(c, u, n) || !c.exhausted()) return false;
    for (std::size_t i = 0; i < n; ++i) out[i] = unzigzag(u[i]);
    return true;
  }
  auto* u = reinterpret_cast<std::uint64_t*>(out);
  if (!decompress_u64_segment(input, n, u, scratch)) return false;
  for (std::size_t i = 0; i < n; ++i) out[i] = unzigzag(u[i]);
  return true;
}

std::optional<std::vector<std::byte>> decompress_block(std::span<const std::byte> input) {
  std::vector<std::byte> out;
  if (!decompress_block_into(input, out)) return std::nullopt;
  return out;
}

std::optional<std::span<const std::byte>> decompress_block_view(std::span<const std::byte> input,
                                                                std::vector<std::byte>& scratch) {
  if (input.size() >= 5 && std::to_integer<std::uint8_t>(input[0]) == kSchemeStored) {
    const std::size_t expected = get_le32(input.subspan(1, 4));
    if (expected > kMaxDecompressedSize || input.size() - 5 != expected) return std::nullopt;
    return input.subspan(5);
  }
  if (!decompress_block_into(input, scratch)) return std::nullopt;
  return std::span<const std::byte>{scratch};
}

bool decompress_block_into(std::span<const std::byte> input, std::vector<std::byte>& out) {
  out.clear();
  if (input.size() < 5) return false;
  const auto scheme = std::to_integer<std::uint8_t>(input[0]);
  const std::size_t expected = get_le32(input.subspan(1, 4));
  // The declared size is untrusted: cap it before it drives any
  // allocation, or a 5-byte header could demand 4 GB up front.
  if (expected > kMaxDecompressedSize) return false;
  input = input.subspan(5);

  if (scheme == kSchemeStored) {
    if (input.size() != expected) return false;
    out.assign(input.begin(), input.end());
    return true;
  }
  if (scheme != kSchemeLz) return false;

  out.reserve(std::min(expected, std::size_t{64} * 1024));
  std::size_t pos = 0;
  auto read_extended = [&](std::size_t base) -> std::optional<std::size_t> {
    std::size_t len = base;
    if (base == 15) {
      while (true) {
        if (pos >= input.size()) return std::nullopt;
        const auto b = std::to_integer<std::uint8_t>(input[pos++]);
        len += b;
        if (b != 255) break;
      }
    }
    return len;
  };

  while (pos < input.size()) {
    const auto token = std::to_integer<std::uint8_t>(input[pos++]);
    const auto lit_len = read_extended(token >> 4);
    if (!lit_len) return false;
    if (pos + *lit_len > input.size()) return false;
    if (out.size() + *lit_len > expected) return false;
    out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(pos),
               input.begin() + static_cast<std::ptrdiff_t>(pos + *lit_len));
    pos += *lit_len;
    if (pos >= input.size()) break;  // final literal-only sequence

    if (pos + 2 > input.size()) return false;
    const std::size_t offset = std::to_integer<std::size_t>(input[pos]) |
                               (std::to_integer<std::size_t>(input[pos + 1]) << 8);
    pos += 2;
    const auto ml_excess = read_extended(token & 0x0f);
    if (!ml_excess) return false;
    const std::size_t match_len = *ml_excess + kMinMatch;
    if (offset == 0 || offset > out.size()) return false;
    if (out.size() + match_len > expected) return false;
    // Byte-by-byte copy: overlapping matches (offset < len) are legal and
    // replicate the run, exactly as in LZ4.
    std::size_t from = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) out.push_back(out[from + i]);
  }
  if (out.size() != expected) return false;
  return true;
}

}  // namespace edgewatch::storage
