// Block compressor for flow logs (paper §2.2 stores years of compressed
// logs). LZ-style greedy byte compressor in the LZ4 spirit: a hash table
// finds previous 4-byte matches within the block; output is a stream of
// (literal-run, match) tokens. Self-contained — no external libraries —
// and fast enough to keep up with record serialization. The incompressible
// path falls back to a stored block so compress() never expands by more
// than the 5-byte header.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace edgewatch::storage {

/// Largest uncompressed block the decompressor will produce. The declared
/// size in a block header is untrusted input; anything above this is
/// rejected before it can drive an allocation. Matches the data lake's
/// block-size ceiling.
inline constexpr std::size_t kMaxDecompressedSize = std::size_t{1} << 26;

/// Compress a block. Output begins with a 1-byte scheme tag and a 4-byte
/// little-endian uncompressed size.
[[nodiscard]] std::vector<std::byte> compress_block(std::span<const std::byte> input);

/// Decompress; nullopt on malformed input (never reads out of bounds, never
/// allocates more than kMaxDecompressedSize).
[[nodiscard]] std::optional<std::vector<std::byte>> decompress_block(
    std::span<const std::byte> input);

/// Decompress into a caller-owned buffer, reusing its capacity. `out` is
/// cleared and filled; on failure it is left cleared and false returned.
/// This is the scan hot path: one scratch buffer per scan (or per parallel
/// worker) instead of one allocation per block.
[[nodiscard]] bool decompress_block_into(std::span<const std::byte> input,
                                         std::vector<std::byte>& out);

}  // namespace edgewatch::storage
