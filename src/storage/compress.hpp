// Block compressor for flow logs (paper §2.2 stores years of compressed
// logs). LZ-style greedy byte compressor in the LZ4 spirit: a hash table
// finds previous 4-byte matches within the block; output is a stream of
// (literal-run, match) tokens. Self-contained — no external libraries —
// and fast enough to keep up with record serialization. The incompressible
// path falls back to a stored block so compress() never expands by more
// than the 5-byte header.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace edgewatch::storage {

/// Largest uncompressed block the decompressor will produce. The declared
/// size in a block header is untrusted input; anything above this is
/// rejected before it can drive an allocation. Matches the data lake's
/// block-size ceiling.
inline constexpr std::size_t kMaxDecompressedSize = std::size_t{1} << 26;

/// Compress a block. Output begins with a 1-byte scheme tag and a 4-byte
/// little-endian uncompressed size.
[[nodiscard]] std::vector<std::byte> compress_block(std::span<const std::byte> input);

/// As compress_block, but emits the stored envelope unless LZ saves at
/// least 1/8 of the input. Column segments are already varint/delta/dict
/// packed, so LZ rarely buys much on them — and a stored segment is
/// decoded zero-copy straight from the file bytes (decompress_block_view
/// returns a subspan), which is what makes the columnar scan path fast.
/// Row-format block bodies keep plain compress_block: they compress well
/// and are decoded once per block, not once per column.
[[nodiscard]] std::vector<std::byte> compress_block_lazy(std::span<const std::byte> input);

/// Decompress; nullopt on malformed input (never reads out of bounds, never
/// allocates more than kMaxDecompressedSize).
[[nodiscard]] std::optional<std::vector<std::byte>> decompress_block(
    std::span<const std::byte> input);

/// Decompress into a caller-owned buffer, reusing its capacity. `out` is
/// cleared and filled; on failure it is left cleared and false returned.
/// This is the scan hot path: one scratch buffer per scan (or per parallel
/// worker) instead of one allocation per block.
[[nodiscard]] bool decompress_block_into(std::span<const std::byte> input,
                                         std::vector<std::byte>& out);

/// View the uncompressed bytes of a block: a stored block is returned as a
/// subspan of `input` itself (zero copy — the columnar scan path decodes
/// incompressible column segments straight from the mapped file bytes);
/// an LZ block is inflated into `scratch` and a span over it returned.
/// nullopt on malformed input.
[[nodiscard]] std::optional<std::span<const std::byte>> decompress_block_view(
    std::span<const std::byte> input, std::vector<std::byte>& scratch);

}  // namespace edgewatch::storage
