// Block and segment compressors for flow logs (paper §2.2 stores years of
// compressed logs).
//
// Two layers share one envelope byte-space:
//
//  * Byte-stream compression (schemes 0/1): LZ-style greedy byte compressor
//    in the LZ4 spirit — a hash table finds previous 4-byte matches within
//    the block; output is a stream of (literal-run, match) tokens. The
//    incompressible path falls back to a stored block so compress() never
//    expands by more than the 5-byte header.
//
//  * Value-segment codecs (schemes 2/3, columnar layout v2): integer
//    columns skip byte-stream compression entirely and are packed by shape
//    instead — frame-of-reference bitpacking for clustered values
//    (timestamps, counters) and run-length encoding for constant/sorted
//    runs. compress_u64_segment picks whichever of {stored varint, LZ
//    varint, FOR, RLE} is smallest for each segment.
//
// Self-contained — no external libraries — and fast enough to keep up with
// record serialization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace edgewatch::storage {

/// Largest uncompressed block the decompressor will produce. The declared
/// size in a block header is untrusted input; anything above this is
/// rejected before it can drive an allocation. Matches the data lake's
/// block-size ceiling.
inline constexpr std::size_t kMaxDecompressedSize = std::size_t{1} << 26;

/// Envelope scheme tags: the first byte of every compressed payload (row
/// block bodies and columnar segment envelopes alike).
///
///   stored : u8 0 | u32le byte_count  | raw bytes
///   lz     : u8 1 | u32le byte_count  | (literal-run, match) token stream
///   for    : u8 2 | u32le value_count | u8 bit_width | varint base | packed
///   rle    : u8 3 | u32le value_count | (varint run_len | varint value)*
///
/// Schemes 0/1 describe bytes and are produced/consumed by the
/// compress_block family; schemes 2/3 describe u64 value sequences and only
/// appear inside compress_u64_segment envelopes (columnar layout v2). A
/// scheme-2/3 payload handed to decompress_block* is rejected as malformed,
/// and vice versa the segment decoder accepts all four (a varint stream in
/// a scheme-0/1 envelope is exactly the legacy layout-v1 numeric segment,
/// so one decoder serves both columnar layouts).
inline constexpr std::uint8_t kSchemeStored = 0;
inline constexpr std::uint8_t kSchemeLz = 1;
inline constexpr std::uint8_t kSchemeForBitpack = 2;
inline constexpr std::uint8_t kSchemeRle = 3;

/// Reusable encode-side scratch: the LZ match table (64 KB) and the varint
/// staging buffer used when the varint candidate wins segment selection.
/// One instance per encode context, reused across every segment of every
/// block, keeps the steady-state write path allocation-free — the encode
/// mirror of the read side's ScanScratch.
struct CompressScratch {
  std::vector<std::uint32_t> lz_table;
  std::vector<std::byte> stream;
};

/// What compress_u64_segment appended: the winning scheme, the size the
/// values would have occupied as a plain varint stream (the layout-v1
/// baseline — what the per-codec obs counters report as bytes-in), and the
/// envelope bytes actually written.
struct SegmentEncodeResult {
  std::uint8_t scheme = kSchemeStored;
  std::uint32_t bytes_in = 0;
  std::uint32_t bytes_out = 0;
};

/// Compress a block. Output begins with a 1-byte scheme tag and a 4-byte
/// little-endian uncompressed size.
[[nodiscard]] std::vector<std::byte> compress_block(std::span<const std::byte> input);

/// As compress_block, but emits the stored envelope unless LZ saves at
/// least 1/8 of the input. Column segments are already varint/delta/dict
/// packed, so LZ rarely buys much on them — and a stored segment is
/// decoded zero-copy straight from the file bytes (decompress_block_view
/// returns a subspan), which is what makes the columnar scan path fast.
/// Row-format block bodies keep plain compress_block: they compress well
/// and are decoded once per block, not once per column.
[[nodiscard]] std::vector<std::byte> compress_block_lazy(std::span<const std::byte> input);

/// Append-in-place variants producing byte-identical envelopes while
/// reusing the caller's match-table scratch: the pipelined encode path
/// compresses thousands of segments per day file and must not pay a 64 KB
/// allocation for each.
void compress_block_append(std::span<const std::byte> input, std::vector<std::byte>& out,
                           CompressScratch& scratch);
void compress_block_lazy_append(std::span<const std::byte> input, std::vector<std::byte>& out,
                                CompressScratch& scratch);

/// Append `values` to `out` as a value-segment envelope, keeping whichever
/// candidate is smallest. Candidate sizes are computed analytically in one
/// pass (varint length sum; FOR size from the min/max bit width; RLE size
/// from the run structure) so only the winner is materialized; the LZ
/// attempt is made only when the varint stream wins, matching the legacy
/// lazy rule (LZ must save ≥ 1/8 over stored). Selection is a pure function
/// of `values`, which is what makes parallel and serial encoders
/// byte-identical by construction.
[[nodiscard]] SegmentEncodeResult compress_u64_segment(std::span<const std::uint64_t> values,
                                                       std::vector<std::byte>& out,
                                                       CompressScratch& scratch);

/// Decode a value-segment envelope into out[0..n). Handles all four
/// schemes: 0/1 inflate (scratch backs the LZ case; stored decodes
/// zero-copy from `input`) and batch-decode exactly `n` varints; 2/3
/// validate their embedded value count against `n` and their payload
/// length/run structure exactly. False on any malformed input — truncated,
/// overlong, wrong count, trailing bytes — with out[] contents unspecified.
[[nodiscard]] bool decompress_u64_segment(std::span<const std::byte> input, std::size_t n,
                                          std::uint64_t* out, std::vector<std::byte>& scratch);

/// As decompress_u64_segment, but zigzag-unmaps every value (the signed
/// column convention). The unmap is fused into the scheme-0/1 decode sink
/// where BMI2 is available instead of re-traversing the output.
[[nodiscard]] bool decompress_zigzag_segment(std::span<const std::byte> input, std::size_t n,
                                             std::int64_t* out, std::vector<std::byte>& scratch);

/// Decompress; nullopt on malformed input (never reads out of bounds, never
/// allocates more than kMaxDecompressedSize).
[[nodiscard]] std::optional<std::vector<std::byte>> decompress_block(
    std::span<const std::byte> input);

/// Decompress into a caller-owned buffer, reusing its capacity. `out` is
/// cleared and filled; on failure it is left cleared and false returned.
/// This is the scan hot path: one scratch buffer per scan (or per parallel
/// worker) instead of one allocation per block.
[[nodiscard]] bool decompress_block_into(std::span<const std::byte> input,
                                         std::vector<std::byte>& out);

/// View the uncompressed bytes of a block: a stored block is returned as a
/// subspan of `input` itself (zero copy — the columnar scan path decodes
/// incompressible column segments straight from the mapped file bytes);
/// an LZ block is inflated into `scratch` and a span over it returned.
/// nullopt on malformed input.
[[nodiscard]] std::optional<std::span<const std::byte>> decompress_block_view(
    std::span<const std::byte> input, std::vector<std::byte>& scratch);

}  // namespace edgewatch::storage
