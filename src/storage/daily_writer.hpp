// DailyLakeWriter: the glue between a live probe and the data lake. The
// paper's probes buffer flow logs locally and ship them to long-term
// storage daily (§2.2); this writer buffers finished FlowRecords, assigns
// each to the civil day its flow *started*, and appends day batches to the
// lake whenever a buffer fills or the day rolls over.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "storage/datalake.hpp"

namespace edgewatch::storage {

class DailyLakeWriter {
 public:
  explicit DailyLakeWriter(DataLake& lake, std::size_t buffer_records = 16'384)
      : lake_(lake), buffer_records_(buffer_records) {}

  ~DailyLakeWriter() { finish(); }

  DailyLakeWriter(const DailyLakeWriter&) = delete;
  DailyLakeWriter& operator=(const DailyLakeWriter&) = delete;

  /// Buffer one record; flushes its day's buffer when full.
  void add(flow::FlowRecord&& record) {
    const core::CivilDate day = record.first_packet.date();
    auto& bucket = buffers_[day];
    bucket.push_back(std::move(record));
    ++buffered_;
    if (bucket.size() >= buffer_records_) flush_day(day);
  }

  /// Flush every buffered day (call at shutdown; the destructor does too).
  void finish() {
    // Copy keys first: flush_day mutates the map.
    std::vector<core::CivilDate> days;
    days.reserve(buffers_.size());
    for (const auto& [day, _] : buffers_) days.push_back(day);
    for (const auto day : days) flush_day(day);
  }

  [[nodiscard]] std::size_t buffered() const noexcept { return buffered_; }
  [[nodiscard]] std::uint64_t records_written() const noexcept { return written_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_; }

 private:
  void flush_day(core::CivilDate day) {
    auto it = buffers_.find(day);
    if (it == buffers_.end() || it->second.empty()) return;
    bytes_ += lake_.append(day, it->second);
    written_ += it->second.size();
    buffered_ -= it->second.size();
    buffers_.erase(it);
  }

  DataLake& lake_;
  std::size_t buffer_records_;
  std::map<core::CivilDate, std::vector<flow::FlowRecord>> buffers_;
  std::size_t buffered_ = 0;
  std::uint64_t written_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace edgewatch::storage
