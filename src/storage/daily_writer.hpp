// DailyLakeWriter: the glue between a live probe and the data lake. The
// paper's probes buffer flow logs locally and ship them to long-term
// storage daily (§2.2); this writer buffers finished FlowRecords, assigns
// each to the civil day its flow *started*, and appends day batches to the
// lake whenever a buffer fills or the day rolls over. The on-disk block
// format is the lake's choice (DataLake::set_write_format — columnar v3 by
// default, row v2 for compatibility); the writer itself is format-blind
// and preserves arrival order, never sorting a batch.
//
// Throughput: a flush hands the whole batch to DataLake::append, which —
// when the lake was given an encode pool (DataLake::set_encode_pool) —
// pipelines the per-block serialize/transpose/compress work across the
// pool and commits frames in order, producing a byte-identical file to the
// serial writer. The writer needs no changes to benefit; keep its buffer a
// multiple of DataLake::kBlockRecords so flushes cut full blocks.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "obs/obs.hpp"
#include "storage/datalake.hpp"

namespace edgewatch::storage {

class DailyLakeWriter {
 public:
  explicit DailyLakeWriter(DataLake& lake, std::size_t buffer_records = 16'384)
      : lake_(lake), buffer_records_(buffer_records) {}

  ~DailyLakeWriter() { finish(); }

  DailyLakeWriter(const DailyLakeWriter&) = delete;
  DailyLakeWriter& operator=(const DailyLakeWriter&) = delete;

  /// Buffer one record; flushes its day's buffer when full. Probe exports
  /// arrive in long same-day streaks, so a one-entry MRU cache of the day's
  /// bucket skips the std::map tree walk on all but the first record of a
  /// streak (map nodes are pointer-stable, so the cached bucket survives
  /// other days being inserted; it is invalidated whenever flush_day erases
  /// an entry).
  void add(flow::FlowRecord&& record) {
    const core::CivilDate day = record.first_packet.date();
    if (mru_bucket_ == nullptr || day != mru_day_) {
      mru_bucket_ = &buffers_[day];
      mru_day_ = day;
    }
    auto& bucket = *mru_bucket_;
    bucket.push_back(std::move(record));
    ++buffered_;
    if (bucket.size() >= buffer_records_) (void)flush_day(day);
  }

  /// Flush every buffered day, reporting the first failure as a typed
  /// error (kNoSpace for a full volume, kIoError for a sick disk …). On
  /// failure the lake is still consistent — a failed append rolled its file
  /// back, so no partial block is ever visible — and the unflushed records
  /// stay buffered for a later retry.
  [[nodiscard]] core::Result<void> flush_all() {
    // Copy keys first: flush_day mutates the map.
    std::vector<core::CivilDate> days;
    days.reserve(buffers_.size());
    for (const auto& [day, _] : buffers_) days.push_back(day);
    core::Errc first = core::Errc::kOk;
    for (const auto day : days) {
      if (auto r = flush_day(day); !r && first == core::Errc::kOk) first = r.error();
    }
    if (first != core::Errc::kOk) return first;
    return {};
  }

  /// Flush every buffered day (call at shutdown; the destructor does too).
  /// Untyped convenience over flush_all(); failures remain visible through
  /// append_failures()/last_error().
  void finish() { (void)flush_all(); }

  [[nodiscard]] std::size_t buffered() const noexcept { return buffered_; }
  [[nodiscard]] std::uint64_t records_written() const noexcept { return written_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_; }
  /// Appends that failed (the lake rolled back; records stayed buffered).
  [[nodiscard]] std::uint64_t append_failures() const noexcept { return append_failures_; }
  /// Records dropped because a failing day's buffer hit its retry cap.
  [[nodiscard]] std::uint64_t records_dropped() const noexcept { return dropped_; }
  [[nodiscard]] core::Errc last_error() const noexcept { return last_error_; }

 private:
  // Lazily-registered obs handles shared by every writer instance: the
  // writer is header-only, so registration lives behind a function-local
  // static instead of a constructor.
  struct WriterObs {
    obs::SpanSite* flush;
    obs::Counter* failures;
    obs::Counter* dropped;
  };
  static WriterObs& writer_obs() {
    static WriterObs m = [] {
      auto& reg = obs::Registry::global();
      return WriterObs{&reg.span_site("lake_writer_flush"),
                       &reg.counter("lake_writer_flush_failures_total"),
                       &reg.counter("lake_writer_records_dropped_total")};
    }();
    return m;
  }

  core::Result<void> flush_day(core::CivilDate day) {
    auto it = buffers_.find(day);
    if (it == buffers_.end() || it->second.empty()) return {};
    // The span covers append + rollback handling: its histogram
    // (lake_writer_flush_ns) is the paper's "daily shipping" latency.
    obs::Span flush_span(*writer_obs().flush);
    const auto result = lake_.append(day, it->second);
    if (!result) {
      // The lake rolled the file back, so the batch is still ours. Keep it
      // for the next flush — but bounded, so a dead disk cannot grow the
      // buffer without limit.
      ++append_failures_;
      last_error_ = result.error();
      if constexpr (obs::kEnabled) writer_obs().failures->add(1);
      if (it->second.size() >= buffer_records_ * 4) {
        dropped_ += it->second.size();
        buffered_ -= it->second.size();
        if constexpr (obs::kEnabled) {
          writer_obs().dropped->add(static_cast<std::uint64_t>(it->second.size()));
        }
        buffers_.erase(it);
        mru_bucket_ = nullptr;  // the MRU entry may be the one just erased
      }
      return result.error();
    }
    bytes_ += *result;
    written_ += it->second.size();
    buffered_ -= it->second.size();
    buffers_.erase(it);
    mru_bucket_ = nullptr;
    return {};
  }

  DataLake& lake_;
  std::size_t buffer_records_;
  std::map<core::CivilDate, std::vector<flow::FlowRecord>> buffers_;
  core::CivilDate mru_day_{};
  std::vector<flow::FlowRecord>* mru_bucket_ = nullptr;
  std::size_t buffered_ = 0;
  std::uint64_t written_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t append_failures_ = 0;
  std::uint64_t dropped_ = 0;
  core::Errc last_error_ = core::Errc::kOk;
};

}  // namespace edgewatch::storage
