#include "storage/datalake.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <fstream>

#include "core/hash.hpp"
#include "core/thread_pool.hpp"
#include "obs/obs.hpp"
#include "storage/codec.hpp"
#include "storage/compress.hpp"

namespace edgewatch::storage {

namespace {

/// Lake-wide obs wiring, resolved lazily (DataLake has several short-lived
/// instances in tests; the metrics are process-global like the registry).
struct LakeObs {
  obs::Counter* appends;
  obs::Counter* append_failures;
  obs::Counter* append_bytes;
  obs::Counter* append_records;
  obs::SpanSite* append_span;
  obs::Counter* scan_records;
  obs::Counter* blocks_pruned;
  obs::Counter* blocks_skipped;
  obs::Counter* zone_map_lies;
  obs::Counter* segments_skipped;
  obs::Gauge* health_days;
  obs::Gauge* health_unhealthy_days;
  obs::Gauge* health_blocks_quarantined;
  obs::Gauge* health_records_lost;
  // Write-path pipeline instrumentation: blocks handed to the encode pool
  // but not yet committed, per-stage latency, and per-codec envelope bytes
  // (bytes_in is the pre-envelope stream, bytes_out what hit the file —
  // their ratio is the live compression ratio per scheme).
  obs::Gauge* encode_inflight;
  obs::SpanSite* encode_block_span;
  obs::SpanSite* block_compress_span;
  obs::SpanSite* fsync_span;
  std::array<obs::Counter*, 4> codec_in;
  std::array<obs::Counter*, 4> codec_out;
};

LakeObs& lake_obs() {
  static LakeObs m = [] {
    auto& reg = obs::Registry::global();
    return LakeObs{
        &reg.counter("lake_appends_total"),
        &reg.counter("lake_append_failures_total"),
        &reg.counter("lake_append_bytes_total"),
        &reg.counter("lake_append_records_total"),
        &reg.span_site("lake_append"),
        &reg.counter("lake_scan_records_total"),
        &reg.counter("lake_scan_blocks_pruned_total"),
        &reg.counter("lake_scan_blocks_skipped_total"),
        &reg.counter("lake_zone_map_lies_total"),
        &reg.counter("lake_scan_segments_skipped_total"),
        &reg.gauge("lake_health_days"),
        &reg.gauge("lake_health_unhealthy_days"),
        &reg.gauge("lake_health_blocks_quarantined"),
        &reg.gauge("lake_health_records_lost"),
        &reg.gauge("lake_encode_inflight_blocks"),
        &reg.span_site("lake_encode_block"),
        &reg.span_site("lake_block_compress"),
        &reg.span_site("lake_append_fsync"),
        {&reg.counter("lake_codec_stored_bytes_in_total"),
         &reg.counter("lake_codec_lz_bytes_in_total"),
         &reg.counter("lake_codec_for_bytes_in_total"),
         &reg.counter("lake_codec_rle_bytes_in_total")},
        {&reg.counter("lake_codec_stored_bytes_out_total"),
         &reg.counter("lake_codec_lz_bytes_out_total"),
         &reg.counter("lake_codec_for_bytes_out_total"),
         &reg.counter("lake_codec_rle_bytes_out_total")},
    };
  }();
  return m;
}

constexpr char kMagic[4] = {'E', 'W', 'L', 'K'};
constexpr std::uint8_t kVersion1 = 1;
constexpr std::uint8_t kVersion2 = 2;
constexpr std::uint8_t kVersion3 = 3;  // v2 framing, columnar block bodies
constexpr std::size_t kHeaderSize = 5;

// v2 block frame: body_len | seq | record_count | crc32c | body. The CRC
// covers the three header fields and the body, so a flipped bit anywhere —
// including in the length that frames the stream — fails validation.
constexpr std::size_t kBlockHeaderSize = 16;
// v2 seal: sentinel | magic | cumulative_records | cumulative_blocks | crc.
constexpr std::uint32_t kSealSentinel = 0xffffffffu;
constexpr std::uint32_t kSealMagic = 0x324c5745u;  // "EWL2"
constexpr std::size_t kSealSize = 24;

constexpr std::uint32_t kMaxBlockBody = 1u << 26;      // 64 MiB sanity bound
constexpr std::uint32_t kMaxSeqJump = 1u << 20;        // resync plausibility

std::uint32_t rd32(std::span<const std::byte> d, std::size_t pos) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::to_integer<std::uint32_t>(d[pos + static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

std::uint64_t rd64(std::span<const std::byte> d, std::size_t pos) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::to_integer<std::uint64_t>(d[pos + static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

/// One validated element of a day file, by reference into the raw bytes.
struct BlockRef {
  std::size_t offset = 0;       ///< Frame start.
  std::size_t header_size = 0;  ///< 16 (v2) or 8 (v1).
  std::uint32_t body_len = 0;
  std::uint32_t seq = 0;
  std::uint32_t record_count = 0;
};

struct SealRef {
  std::size_t offset = 0;
  std::uint64_t cum_records = 0;
  std::uint32_t cum_blocks = 0;
};

struct BadRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Structural parse of a whole day file: every CRC-valid element, every
/// byte range that is not one, and where the valid stream ends.
struct FileModel {
  std::uint8_t version = 0;
  core::Errc errc = core::Errc::kOk;  ///< Header-level failure, if any.
  std::vector<BlockRef> blocks;       ///< Valid blocks, stream order.
  std::optional<SealRef> last_seal;
  std::vector<BadRange> bad;
  /// Dictionary-salvage candidates carved out of `bad`: frames whose header
  /// fields still frame a body inside the damaged range even though the CRC
  /// failed. Never delivered — only offered to dictionary chain walks, which
  /// verify every candidate against the link's dictionary CRC. This keeps a
  /// body bit-flip's blast radius at one block: delta-coded successors
  /// recover the damaged predecessor's (intact) dictionary bytes instead of
  /// cascading into quarantine with it.
  std::vector<BlockRef> salvage;
  /// Filled by deep_verify_columnar: indices into the (post-verify) blocks
  /// vector whose dictionary chain leaned on an element that will not
  /// survive repair. Repair must transcode these into chain heads — a
  /// verbatim copy would orphan their delta links.
  std::vector<std::size_t> transcode;
  std::size_t valid_end = 0;   ///< Offset past the last valid element.
  bool ends_sealed = false;    ///< Last element is a seal at exactly EOF.
  std::size_t file_size = 0;
};

void parse_v2(std::span<const std::byte> data, FileModel& m) {
  const std::size_t size = data.size();
  std::size_t pos = kHeaderSize;
  std::uint32_t expected_seq = 0;
  bool last_was_seal = false;

  const auto try_block = [&](std::size_t p, bool resync) -> std::optional<BlockRef> {
    if (p + kBlockHeaderSize > size) return std::nullopt;
    const std::uint32_t body_len = rd32(data, p);
    if (body_len == kSealSentinel || body_len > kMaxBlockBody) return std::nullopt;
    if (p + kBlockHeaderSize + body_len > size) return std::nullopt;
    const std::uint32_t seq = rd32(data, p + 4);
    const std::uint32_t nrec = rd32(data, p + 8);
    if (resync) {
      // Cheap plausibility before paying for a CRC at every resync offset:
      // a real continuation block carries the next (or a later) sequence
      // number; stale or random bytes almost never do.
      if (seq < expected_seq || seq > expected_seq + kMaxSeqJump) return std::nullopt;
    }
    std::uint32_t crc = core::crc32c(data.subspan(p, 12));
    crc = core::crc32c(data.subspan(p + kBlockHeaderSize, body_len), crc);
    if (crc != rd32(data, p + 12)) return std::nullopt;
    return BlockRef{p, kBlockHeaderSize, body_len, seq, nrec};
  };
  const auto try_seal = [&](std::size_t p) -> std::optional<SealRef> {
    if (p + kSealSize > size) return std::nullopt;
    if (rd32(data, p) != kSealSentinel || rd32(data, p + 4) != kSealMagic) {
      return std::nullopt;
    }
    if (core::crc32c(data.subspan(p, 20)) != rd32(data, p + 20)) return std::nullopt;
    return SealRef{p, rd64(data, p + 8), rd32(data, p + 16)};
  };

  while (pos < size) {
    if (const auto b = try_block(pos, false)) {
      m.blocks.push_back(*b);
      expected_seq = b->seq + 1;
      pos += kBlockHeaderSize + b->body_len;
      m.valid_end = pos;
      last_was_seal = false;
      continue;
    }
    if (const auto s = try_seal(pos)) {
      m.last_seal = *s;
      pos += kSealSize;
      m.valid_end = pos;
      last_was_seal = true;
      continue;
    }
    // Damaged bytes: resynchronize on the next element that proves itself
    // with a CRC (and, for blocks, a plausible sequence number).
    const std::size_t bad_begin = pos;
    ++pos;
    while (pos < size && !try_block(pos, true) && !try_seal(pos)) ++pos;
    m.bad.push_back({bad_begin, pos});
    // Carve dictionary-salvage candidates from the damaged range: a body
    // bit-flip leaves the frame header intact, so its length fields still
    // delimit the (mostly intact) body. Walk the claimed frame sizes as far
    // as they stay inside the range; a damaged header stops the carving —
    // candidates are best-effort and individually CRC-verified at use.
    std::size_t c = bad_begin;
    while (c + kBlockHeaderSize <= pos) {
      const std::uint32_t body_len = rd32(data, c);
      if (body_len == kSealSentinel || body_len > kMaxBlockBody) break;
      if (c + kBlockHeaderSize + body_len > pos) break;
      m.salvage.push_back(
          {c, kBlockHeaderSize, body_len, rd32(data, c + 4), rd32(data, c + 8)});
      c += kBlockHeaderSize + body_len;
    }
  }
  m.ends_sealed = last_was_seal && m.valid_end == size;
}

void parse_v1(std::span<const std::byte> data, FileModel& m) {
  const std::size_t size = data.size();
  std::size_t pos = kHeaderSize;
  std::uint32_t index = 0;
  while (pos < size) {
    if (pos + 8 > size) break;  // torn length/checksum pair
    const std::uint32_t len = rd32(data, pos);
    const std::uint32_t checksum = rd32(data, pos + 4);
    if (len > kMaxBlockBody || pos + 8 + len > size) break;
    const auto body = data.subspan(pos + 8, len);
    const auto block = decompress_block(body);
    if (!block || static_cast<std::uint32_t>(core::fnv1a64(*block)) != checksum) break;
    // v1 frames carry no record count; derive it (and catch codec-level
    // damage the weak 32-bit checksum missed) by decoding.
    core::ByteReader r{*block};
    std::uint32_t nrec = 0;
    bool clean = true;
    while (true) {
      const auto rec = decode_record(r);
      if (!rec) {
        clean = rec.error() == core::Errc::kEndOfStream;
        break;
      }
      ++nrec;
    }
    if (!clean) break;
    m.blocks.push_back({pos, 8, len, index++, nrec});
    pos += 8 + len;
    m.valid_end = pos;
  }
  // v1 has no sequence numbers to resync on: everything past the first
  // damaged byte is unreachable.
  if (m.valid_end < size) m.bad.push_back({m.valid_end, size});
}

FileModel parse_file(std::span<const std::byte> data) {
  FileModel m;
  m.file_size = data.size();
  m.valid_end = std::min(data.size(), kHeaderSize);
  if (data.size() < kHeaderSize) {
    m.errc = core::Errc::kTruncated;
    return m;
  }
  if (std::memcmp(data.data(), kMagic, 4) != 0) {
    m.errc = core::Errc::kBadMagic;
    return m;
  }
  m.version = std::to_integer<std::uint8_t>(data[4]);
  switch (m.version) {
    case kVersion1: parse_v1(data, m); break;
    // v3 shares v2's element framing (frames, seals, resync); only the
    // block bodies differ and those are opaque at this level.
    case kVersion2:
    case kVersion3: parse_v2(data, m); break;
    default: m.errc = core::Errc::kBadVersion; break;
  }
  return m;
}

/// fsck/repair pre-scan for v3 files: CRC-valid frames can still hold
/// structurally damaged columnar bodies (a bit-flip that was re-CRC'd, a
/// writer bug, a deliberately patched zone map). Decode every block fully
/// — including the zone-map truthfulness cross-check — and demote failures
/// to damaged ranges so repair quarantines them.
/// File-order merge of CRC-valid blocks and salvage candidates — the
/// resolution adjacency a dictionary chain walk must see (`back` in a delta
/// link counts *original stream* positions; both inputs are offset-sorted).
std::vector<BlockRef> chain_order(const std::vector<BlockRef>& valid,
                                  const std::vector<BlockRef>& salvage) {
  std::vector<BlockRef> out;
  out.reserve(valid.size() + salvage.size());
  std::size_t vi = 0, si = 0;
  while (vi < valid.size() || si < salvage.size()) {
    const bool take_valid =
        si >= salvage.size() || (vi < valid.size() && valid[vi].offset < salvage[si].offset);
    out.push_back(take_valid ? valid[vi++] : salvage[si++]);
  }
  return out;
}

void deep_verify_columnar(std::span<const std::byte> data, FileModel& m) {
  if (m.version != kVersion3) return;
  // Resolution adjacency: every framed element in original stream order —
  // CRC-valid blocks plus salvage candidates carved from damaged ranges.
  // `survives` tracks which elements repair will copy verbatim; candidates
  // never survive, valid blocks are demoted as they fail below. Elements
  // are verified in stream order, so by the time a block resolves its chain
  // every predecessor's fate is already final.
  struct Element {
    BlockRef b;
    bool survives;
  };
  std::vector<Element> els;
  els.reserve(m.blocks.size() + m.salvage.size());
  {
    std::size_t vi = 0, si = 0;
    while (vi < m.blocks.size() || si < m.salvage.size()) {
      const bool take_valid = si >= m.salvage.size() ||
                              (vi < m.blocks.size() &&
                               m.blocks[vi].offset < m.salvage[si].offset);
      els.push_back(take_valid ? Element{m.blocks[vi++], true}
                               : Element{m.salvage[si++], false});
    }
  }
  ColumnScratch scratch;
  std::vector<BlockRef> good;
  good.reserve(m.blocks.size());
  std::vector<std::size_t> transcode;
  exec::RecordBatch probe;
  for (std::size_t e = 0; e < els.size(); ++e) {
    if (!els[e].survives) continue;  // salvage candidate: resolver fodder only
    const BlockRef& b = els[e].b;
    const auto body = data.subspan(b.offset + b.header_size, b.body_len);
    // Resolve dictionary delta chains over the original adjacency,
    // including elements that will not survive repair: the walk CRC-gates
    // every candidate, so a damaged predecessor with intact dictionary
    // bytes still resolves (single-block blast radius) while real
    // dictionary damage fails the hash and quarantines the dependents. A
    // block whose chain leaned on a non-survivor decodes today but would be
    // orphaned by repair's compaction — record it for transcoding.
    bool leaned_on_casualty = false;
    const auto resolve = [&](std::size_t back) -> std::span<const std::byte> {
      if (back == 0 || back > e) return {};
      const Element& p = els[e - back];
      if (!p.survives) leaned_on_casualty = true;
      return data.subspan(p.b.offset + p.b.header_size, p.b.body_len);
    };
    const PrevBlockResolver resolver{resolve};
    // Full-projection *batch* decode: deep verification needs every column
    // structurally checked, but no FlowRecord ever read — the batch path
    // proves integrity without materializing a single row.
    const auto status =
        decode_columnar_batch(body, scratch, nullptr, probe, b.record_count, &resolver);
    if (status == BlockDecodeStatus::kOk) {
      if (leaned_on_casualty) transcode.push_back(good.size());
      good.push_back(b);
    } else {
      els[e].survives = false;
      m.bad.push_back({b.offset, b.offset + b.header_size + b.body_len});
      // The chain cache now describes a quarantined predecessor: drop it so
      // the next delta block proves its chain through the resolver (and the
      // CRC gate) instead of silently chaining across the quarantine.
      scratch.chain_name_valid = false;
      scratch.chain_ct_valid = false;
    }
  }
  m.blocks = std::move(good);
  m.transcode = std::move(transcode);
}

std::optional<std::vector<std::byte>> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const auto size = static_cast<std::size_t>(in.tellg());
  std::vector<std::byte> data(size);
  in.seekg(0);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(size))) {
    return std::nullopt;
  }
  return data;
}

void put_block_frame(core::ByteWriter& out, std::uint32_t seq, std::uint32_t record_count,
                     std::span<const std::byte> compressed) {
  core::ByteWriter header;
  header.u32le(static_cast<std::uint32_t>(compressed.size()));
  header.u32le(seq);
  header.u32le(record_count);
  std::uint32_t crc = core::crc32c(header.view());
  crc = core::crc32c(compressed, crc);
  out.bytes(header.view());
  out.u32le(crc);
  out.bytes(compressed);
}

void put_seal(core::ByteWriter& out, std::uint64_t cum_records, std::uint32_t cum_blocks) {
  core::ByteWriter seal;
  seal.u32le(kSealSentinel);
  seal.u32le(kSealMagic);
  seal.u64le(cum_records);
  seal.u32le(cum_blocks);
  out.bytes(seal.view());
  out.u32le(core::crc32c(seal.view()));
}

void put_v1_frame(core::ByteWriter& out, std::span<const std::byte> uncompressed,
                  std::span<const std::byte> compressed) {
  out.u32le(static_cast<std::uint32_t>(compressed.size()));
  out.u32le(static_cast<std::uint32_t>(core::fnv1a64(uncompressed)));
  out.bytes(compressed);
}

/// DayHealth as found on disk (shared by fsck and the repair pre-scan).
DayHealth assess(const FileModel& m, core::CivilDate day) {
  DayHealth h;
  h.day = day;
  h.version = m.version;
  if (m.errc != core::Errc::kOk) {
    h.errc = m.errc;
    h.torn_tail = m.errc == core::Errc::kTruncated;
    return h;
  }
  h.blocks_ok = m.blocks.size();
  for (const auto& b : m.blocks) h.records_ok += b.record_count;
  h.blocks_quarantined = static_cast<std::uint32_t>(m.bad.size());
  for (const auto& r : m.bad) h.bytes_quarantined += r.end - r.begin;
  h.sealed = m.ends_sealed;
  h.torn_tail = m.version >= kVersion2 ? !m.ends_sealed : !m.bad.empty();
  if (m.last_seal) {
    // The seal is a durability receipt: cum_records were acknowledged as
    // stored. Valid blocks before the seal account for part of them; the
    // difference is the exact number of sealed records now unreadable.
    std::uint64_t recovered_sealed = 0;
    for (const auto& b : m.blocks) {
      if (b.seq < m.last_seal->cum_blocks) recovered_sealed += b.record_count;
    }
    h.records_lost = m.last_seal->cum_records > recovered_sealed
                         ? m.last_seal->cum_records - recovered_sealed
                         : 0;
  }
  if (!m.bad.empty()) {
    h.errc = core::Errc::kCorrupt;
  } else if (m.version >= kVersion2 && !m.ends_sealed) {
    h.errc = core::Errc::kTruncated;
  }
  return h;
}

}  // namespace

FileIdentity file_identity(const std::filesystem::path& path) {
  FileIdentity id;
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return id;
  id.size = size;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (!ec) {
    id.mtime_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      mtime.time_since_epoch())
                      .count();
  }
  // A clean v2 file ends in a seal; its cumulative block count is the
  // logical "version" of the day's contents (appends bump it, byte-level
  // damage invalidates its CRC). Read just the trailing kSealSize bytes.
  if (size >= kHeaderSize + kSealSize) {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::array<std::byte, kSealSize> tail{};
      in.seekg(static_cast<std::streamoff>(size - kSealSize));
      if (in.read(reinterpret_cast<char*>(tail.data()), kSealSize)) {
        const std::span<const std::byte> t{tail};
        if (rd32(t, 0) == kSealSentinel && rd32(t, 4) == kSealMagic &&
            core::crc32c(t.subspan(0, 20)) == rd32(t, 20)) {
          id.seal_seq = rd32(t, 16);
        }
      }
    }
  }
  return id;
}

DataLake::DataLake(std::filesystem::path root)
    : root_(std::move(root)), file_factory_(make_posix_file) {
  std::filesystem::create_directories(root_);
}

std::string DataLake::day_filename(core::CivilDate day) {
  return "flows_" + day.to_string() + ".ewl";
}

std::filesystem::path DataLake::day_path(core::CivilDate day) const {
  return root_ / day_filename(day);
}

std::filesystem::path DataLake::quarantine_dir() const { return root_ / "quarantine"; }

void DataLake::encode_day_elements(core::ByteWriter& out,
                                   std::span<const flow::FlowRecord> records,
                                   std::uint8_t version, std::uint32_t next_seq,
                                   std::uint64_t cum_records) {
  auto& m = lake_obs();
  const auto& catalog = effective_catalog();
  const std::size_t nblocks = (records.size() + kBlockRecords - 1) / kBlockRecords;
  const auto chunk_of = [&](std::size_t i) {
    const std::size_t first = i * kBlockRecords;
    return records.subspan(first, std::min(kBlockRecords, records.size() - first));
  };

  if (version == kVersion3) {
    // Columnar bodies carry per-segment compression envelopes already; the
    // frame wraps them uncompressed so zone maps stay peekable.
    //
    // With an encode pool, blocks are encoded out-of-line in a bounded ring
    // and their frames committed strictly in order. Byte identity with the
    // serial writer holds by construction: each block's encode is a pure
    // function of its records and its predecessor's records (the dictionary
    // chain state is *recomputed* per block, never threaded through the
    // pipeline), and both the frame stream and the sequence numbers are
    // produced by this thread in chunk order.
    const bool pooled = encode_pool_ != nullptr && nblocks > 1;
    std::size_t window = 1;
    if (pooled) {
      window = encode_max_inflight_ != 0 ? encode_max_inflight_ : 2 * encode_pool_->size();
      window = std::clamp<std::size_t>(window, 1, nblocks);
    }
    if (encode_slots_.size() < window) encode_slots_.resize(window);

    const auto encode_into = [&](EncodeSlot& slot, std::size_t i) {
      obs::Span span(*m.encode_block_span);
      slot.body.clear();
      const DictChainState* prev = nullptr;
      if (i % kDictChainInterval != 0) {
        build_dict_chain_state(chunk_of(i - 1), slot.chain);
        prev = &slot.chain;
      }
      encode_columnar_block(chunk_of(i), catalog, slot.body, slot.scratch, prev);
    };
    std::size_t committed = 0;
    const auto commit_through = [&](std::size_t upto) {
      for (; committed < upto; ++committed) {
        EncodeSlot& slot = encode_slots_[committed % window];
        if (slot.done.valid()) {
          slot.done.get();
          if constexpr (obs::kEnabled) m.encode_inflight->add(-1);
        }
        const auto n = static_cast<std::uint32_t>(chunk_of(committed).size());
        put_block_frame(out, next_seq++, n, slot.body.view());
        cum_records += n;
        if constexpr (obs::kEnabled) {
          for (std::size_t k = 0; k < 4; ++k) {
            if (slot.scratch.codec_bytes_in[k] != 0) m.codec_in[k]->add(slot.scratch.codec_bytes_in[k]);
            if (slot.scratch.codec_bytes_out[k] != 0) m.codec_out[k]->add(slot.scratch.codec_bytes_out[k]);
          }
        }
        slot.scratch.codec_bytes_in.fill(0);
        slot.scratch.codec_bytes_out.fill(0);
      }
    };
    try {
      for (std::size_t i = 0; i < nblocks; ++i) {
        if (i >= window) commit_through(i - window + 1);
        EncodeSlot& slot = encode_slots_[i % window];
        if (pooled) {
          if constexpr (obs::kEnabled) m.encode_inflight->add(1);
          slot.done = encode_pool_->submit([&encode_into, &slot, i] { encode_into(slot, i); });
        } else {
          encode_into(slot, i);
        }
      }
      commit_through(nblocks);
    } catch (...) {
      // A failed submit (pool shutdown) or a throwing encode (bad_alloc)
      // must not unwind past tasks still referencing this frame's locals.
      for (auto& slot : encode_slots_) {
        if (!slot.done.valid()) continue;
        try {
          slot.done.get();
        } catch (...) {  // NOLINT(bugprone-empty-catch): first error wins
        }
        if constexpr (obs::kEnabled) m.encode_inflight->add(-1);
      }
      throw;
    }
    put_seal(out, cum_records, next_seq);
    return;
  }

  for (std::size_t i = 0; i < nblocks; ++i) {
    const auto chunk = chunk_of(i);
    core::ByteWriter block;
    for (const auto& record : chunk) encode_record(record, block);
    std::vector<std::byte> compressed;
    {
      obs::Span span(*m.block_compress_span);
      compressed = compress_block(block.view());
    }
    if constexpr (obs::kEnabled) {
      // Row blocks use the byte-stream schemes (0/1); fold them into the
      // same per-codec tallies the columnar segments feed.
      const auto scheme = std::to_integer<std::uint8_t>(compressed.front()) & 3u;
      m.codec_in[scheme]->add(block.size());
      m.codec_out[scheme]->add(compressed.size());
    }
    if (version == kVersion2) {
      put_block_frame(out, next_seq++, static_cast<std::uint32_t>(chunk.size()), compressed);
      cum_records += chunk.size();
    } else {
      put_v1_frame(out, block.view(), compressed);
    }
  }
  if (version >= kVersion2) put_seal(out, cum_records, next_seq);
}

const services::ServiceCatalog& DataLake::effective_catalog() const noexcept {
  return write_catalog_ != nullptr ? *write_catalog_ : services::ServiceCatalog::standard();
}

core::Result<std::uint64_t> DataLake::append(core::CivilDate day,
                                             std::span<const flow::FlowRecord> records) {
  if (records.empty()) return std::uint64_t{0};
  auto& m = lake_obs();
  obs::Span span(*m.append_span);  // whole read-modify-write-fsync cycle
  auto result = append_impl(day, records);
  m.appends->add(1);
  if (result) {
    m.append_bytes->add(*result);
    m.append_records->add(records.size());
  } else {
    m.append_failures->add(1);
  }
  return result;
}

namespace {

/// size + mtime of a path, or nullopt when unreadable. The light stat the
/// append cursor cache validates against (file_identity() additionally
/// reads the trailing seal, which would defeat the point here).
std::optional<std::pair<std::uint64_t, std::int64_t>> stat_size_mtime(
    const std::filesystem::path& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return std::nullopt;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return std::nullopt;
  return std::make_pair(
      size,
      std::chrono::duration_cast<std::chrono::nanoseconds>(mtime.time_since_epoch()).count());
}

}  // namespace

core::Result<std::uint64_t> DataLake::append_impl(core::CivilDate day,
                                                  std::span<const flow::FlowRecord> records) {
  const auto path = day_path(day);

  // Find the resume point: end of the last valid element, dropping any
  // torn tail a previous crash left behind. The cursor cache short-cuts
  // the common case — appending batch after batch to a day this process
  // sealed itself — from a whole-file reparse to one stat.
  std::uint64_t start = 0;
  std::uint32_t next_seq = 0;
  std::uint64_t cum_records = 0;
  std::uint8_t version = static_cast<std::uint8_t>(write_format_);
  bool fresh = true;
  bool from_cache = false;
  if (append_cursor_cache_) {
    if (const auto it = append_cursors_.find(day); it != append_cursors_.end()) {
      const auto st = stat_size_mtime(path);
      if (st && st->first == it->second.file_size && st->second == it->second.mtime_ns) {
        fresh = false;
        from_cache = true;
        version = it->second.version;
        start = it->second.file_size;  // a cached day ends sealed at EOF
        next_seq = it->second.next_seq;
        cum_records = it->second.cum_records;
      } else {
        append_cursors_.erase(it);  // rewritten behind our back: reparse
      }
    }
  }
  if (!from_cache && std::filesystem::exists(path)) {
    const auto existing = read_file(path);
    if (!existing) return core::Errc::kIoError;
    if (!existing->empty()) {
      const FileModel m = parse_file(*existing);
      if (m.errc == core::Errc::kBadMagic || m.errc == core::Errc::kBadVersion) {
        return m.errc;  // not ours to overwrite
      }
      if (m.errc == core::Errc::kOk) {
        fresh = false;
        version = m.version;  // appends continue the file's format
        start = m.valid_end;
        if (!m.blocks.empty()) next_seq = m.blocks.back().seq + 1;
        for (const auto& b : m.blocks) cum_records += b.record_count;
      }
      // A header-less stub (kTruncated) cannot hold records: rewrite it.
    }
  }

  core::ByteWriter out;
  if (fresh) {
    for (char c : kMagic) out.u8(static_cast<std::uint8_t>(c));
    out.u8(version);
  }
  const std::size_t nblocks = (records.size() + kBlockRecords - 1) / kBlockRecords;
  encode_day_elements(out, records, version, next_seq, cum_records);

  auto file = file_factory_();
  if (auto r = file->open_at(path, start); !r) return r.error();
  const auto rollback = [&](core::Errc err) -> core::Result<std::uint64_t> {
    // Survivable failure: make the append atomic by restoring the old
    // length. After a (simulated) crash the truncate fails too and the
    // torn tail stays for fsck/repair to find.
    append_cursors_.erase(day);
    (void)file->truncate(start);
    (void)file->sync();
    (void)file->close();
    if (start == 0 && err != core::Errc::kCrashed) {
      // This append created the file; atomic means the day stays absent.
      std::error_code ec;
      std::filesystem::remove(path, ec);
    }
    return err;
  };
  if (auto r = file->write(out.view()); !r) return rollback(r.error());
  {
    obs::Span span(*lake_obs().fsync_span);
    if (auto r = file->sync(); !r) return rollback(r.error());
  }
  if (auto r = file->close(); !r) {
    append_cursors_.erase(day);
    return r.error();
  }
  if (append_cursor_cache_ && version >= kVersion2) {
    // The file now provably ends in a seal at exactly start + out.size();
    // remember the cursor the next append would otherwise re-derive from a
    // full parse. Keyed to the post-append stat so any out-of-band change
    // invalidates it.
    if (const auto st = stat_size_mtime(path);
        st && st->first == start + out.size()) {
      append_cursors_[day] = AppendCursor{start + out.size(), st->second,
                                          next_seq + static_cast<std::uint32_t>(nblocks),
                                          cum_records + records.size(), version};
    } else {
      append_cursors_.erase(day);
    }
  }
  return static_cast<std::uint64_t>(out.size());
}

DayBlockIndex DataLake::load_day_blocks(core::CivilDate day) const {
  DayBlockIndex idx;
  const auto path = day_path(day);
  if (!std::filesystem::exists(path)) {
    idx.fatal_ = core::Errc::kNotFound;
    return idx;
  }
  auto data = read_file(path);
  if (!data) {
    idx.fatal_ = core::Errc::kIoError;
    return idx;
  }
  const FileModel m = parse_file(*data);
  if (m.errc != core::Errc::kOk) {
    idx.fatal_ = m.errc;
    return idx;
  }
  idx.blocks_.reserve(m.blocks.size());
  for (const auto& b : m.blocks) {
    idx.blocks_.push_back({b.offset, b.header_size, b.body_len, b.record_count});
  }
  // Stream-order resolution adjacency: valid blocks interleaved with
  // dictionary-salvage candidates (see DayBlockIndex::chain()).
  idx.chain_.reserve(m.blocks.size() + m.salvage.size());
  idx.chain_pos_.reserve(m.blocks.size());
  {
    std::size_t vi = 0, si = 0;
    while (vi < m.blocks.size() || si < m.salvage.size()) {
      const bool take_valid = si >= m.salvage.size() ||
                              (vi < m.blocks.size() &&
                               m.blocks[vi].offset < m.salvage[si].offset);
      const BlockRef& b = take_valid ? m.blocks[vi] : m.salvage[si];
      if (take_valid) {
        idx.chain_pos_.push_back(static_cast<std::uint32_t>(idx.chain_.size()));
        ++vi;
      } else {
        ++si;
      }
      idx.chain_.push_back({b.offset, b.header_size, b.body_len, b.record_count});
    }
  }
  idx.damaged_ranges_ = static_cast<std::uint32_t>(m.bad.size());
  idx.baseline_ = !m.bad.empty() ? core::Errc::kCorrupt
                  : (m.version == kVersion2 && !m.ends_sealed) ? core::Errc::kTruncated
                                                               : core::Errc::kOk;
  idx.data_ = std::make_shared<const std::vector<std::byte>>(std::move(*data));
  return idx;
}

void DataLake::scan_block(std::span<const std::byte> body, std::uint32_t record_count,
                          const ScanPredicate* predicate, ScanScratch& scratch, ScanResult& res,
                          core::FunctionRef<void(const flow::FlowRecord&)> fn,
                          const PrevBlockResolver* prev_blocks) {
  auto& m = lake_obs();
  // Every exit path folds this block's deliveries into the global scan
  // counter (one add per block, never per record).
  struct DeliveredGuard {
    LakeObs& m;
    const ScanResult& res;
    std::uint64_t before;
    ~DeliveredGuard() {
      if (res.records_delivered > before) m.scan_records->add(res.records_delivered - before);
    }
  } delivered_guard{m, res, res.records_delivered};

  if (is_columnar_block(body)) {
    if (predicate != nullptr && !predicate->unrestricted()) {
      const auto zone = peek_zone_map(body);
      if (!zone ||
          (record_count != kAnyRecordCount && zone->record_count != record_count)) {
        ++res.blocks_skipped;
        m.blocks_skipped->add(1);
        res.errc = core::Errc::kCorrupt;
        return;
      }
      if (!predicate->admits(*zone)) {
        // Zone-map proof of absence: skip the block without touching a
        // single column segment. This is the selective-scan fast path.
        ++res.blocks_pruned;
        m.blocks_pruned->add(1);
        return;
      }
    }
    const auto status = decode_columnar_block(body, scratch.columns, predicate,
                                              res.records_delivered, fn, record_count,
                                              prev_blocks);
    if (status == BlockDecodeStatus::kCorrupt) {
      ++res.blocks_skipped;
      m.blocks_skipped->add(1);
      res.errc = core::Errc::kCorrupt;
      return;
    }
    const std::uint32_t fields = predicate != nullptr ? predicate->fields : scan_fields::kAll;
    if (fields != scan_fields::kAll) {
      m.segments_skipped->add(kColumnSegmentCount - segments_for_fields(fields));
    }
    if (status == BlockDecodeStatus::kZoneMapLied) {
      // Records were delivered in full, but the block's skip index is
      // untrustworthy: surface corruption so fsck/repair quarantines it.
      m.zone_map_lies->add(1);
      res.errc = core::Errc::kCorrupt;
    }
    return;
  }

  // Row-oriented (v1/v2) body: decompress, then decode-and-filter.
  if (!decompress_block_into(body, scratch.decompressed)) {
    ++res.blocks_skipped;  // CRC-valid yet undecompressable: writer-level damage
    m.blocks_skipped->add(1);
    res.errc = core::Errc::kCorrupt;
    return;
  }
  const bool filtered = predicate != nullptr && !predicate->unrestricted();
  core::ByteReader r{scratch.decompressed};
  while (true) {
    const auto record = decode_record(r);
    if (!record) {
      if (record.error() != core::Errc::kEndOfStream) {
        ++res.blocks_skipped;
        m.blocks_skipped->add(1);
        res.errc = core::Errc::kCorrupt;
      }
      return;
    }
    if (filtered && !predicate->matches(*record)) continue;
    fn(*record);
    ++res.records_delivered;
  }
}

void DataLake::scan_block_batches(std::span<const std::byte> body, std::uint32_t record_count,
                                  const ScanPredicate* predicate, ScanScratch& scratch,
                                  ScanResult& res, BatchSink fn,
                                  const PrevBlockResolver* prev_blocks) {
  auto& m = lake_obs();
  if (is_columnar_block(body)) {
    if (predicate != nullptr && !predicate->unrestricted()) {
      const auto zone = peek_zone_map(body);
      if (!zone ||
          (record_count != kAnyRecordCount && zone->record_count != record_count)) {
        ++res.blocks_skipped;
        m.blocks_skipped->add(1);
        res.errc = core::Errc::kCorrupt;
        return;
      }
      if (!predicate->admits(*zone)) {
        ++res.blocks_pruned;
        m.blocks_pruned->add(1);
        return;
      }
    }
    exec::RecordBatch batch;
    const auto status = decode_columnar_batch(body, scratch.columns, predicate, batch,
                                              record_count, prev_blocks);
    if (status == BlockDecodeStatus::kCorrupt) {
      ++res.blocks_skipped;
      m.blocks_skipped->add(1);
      res.errc = core::Errc::kCorrupt;
      return;
    }
    const std::uint32_t fields = predicate != nullptr ? predicate->fields : scan_fields::kAll;
    if (fields != scan_fields::kAll) {
      m.segments_skipped->add(kColumnSegmentCount - segments_for_fields(fields));
    }
    if (status == BlockDecodeStatus::kZoneMapLied) {
      m.zone_map_lies->add(1);
      res.errc = core::Errc::kCorrupt;
    }
    if (!batch.empty()) {
      const auto delivered = static_cast<std::uint64_t>(batch.delivered_rows());
      res.records_delivered += delivered;
      m.scan_records->add(delivered);
      exec::note_batch_delivered(batch);
      fn(batch);
    }
    return;
  }

  // Row-oriented (v1/v2) body: decompress, decode-and-filter into the
  // staging transposer, deliver the block's post-filter rows as one batch.
  // A torn row stream still delivers its valid prefix — the staged rows
  // precede the damage marker, matching scan_block's semantics.
  if (!decompress_block_into(body, scratch.decompressed)) {
    ++res.blocks_skipped;  // CRC-valid yet undecompressable: writer-level damage
    m.blocks_skipped->add(1);
    res.errc = core::Errc::kCorrupt;
    return;
  }
  const bool filtered = predicate != nullptr && !predicate->unrestricted();
  auto& staging = scratch.staging;
  staging.clear();
  bool torn = false;
  {
    core::ByteReader r{scratch.decompressed};
    while (true) {
      const auto record = decode_record(r);
      if (!record) {
        torn = record.error() != core::Errc::kEndOfStream;
        break;
      }
      if (filtered && !predicate->matches(*record)) continue;
      staging.add(*record);
    }
  }
  if (staging.size() > 0) {
    const exec::RecordBatch batch = staging.finish(scan_fields::kAll);
    res.records_delivered += batch.rows;
    m.scan_records->add(batch.rows);
    exec::note_batch_delivered(batch);
    fn(batch);
  }
  if (torn) {
    ++res.blocks_skipped;
    m.blocks_skipped->add(1);
    res.errc = core::Errc::kCorrupt;
  }
}

bool DataLake::decode_block(std::span<const std::byte> body, ScanScratch& scratch,
                            std::uint64_t& records_delivered,
                            core::FunctionRef<void(const flow::FlowRecord&)> fn,
                            const PrevBlockResolver* prev_blocks) {
  ScanResult res;
  scan_block(body, kAnyRecordCount, nullptr, scratch, res, fn, prev_blocks);
  records_delivered += res.records_delivered;
  return res.errc == core::Errc::kOk;
}

namespace {

/// The shared day-walk skeleton of the row and batch scans: index the day,
/// visit every CRC-valid block with a stream-order chain resolver, fold the
/// damaged-range and baseline status. `visit(block, resolver)` does the
/// per-block work.
template <typename Visit>
ScanResult scan_day_walk(const DataLake& lake, core::CivilDate day, Visit&& visit) {
  ScanResult res;
  const DayBlockIndex idx = lake.load_day_blocks(day);
  if (idx.fatal() != core::Errc::kOk) {
    res.errc = idx.fatal();
    return res;
  }
  const auto& blocks = idx.blocks();
  const auto& chain = idx.chain();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    // Chain resolver over the file's stream-order adjacency — including
    // dictionary-salvage candidates, so a damaged predecessor with intact
    // dictionary bytes costs only its own records. A sequential scan rarely
    // uses it (the scratch's chain cache tracks the predecessor); it
    // matters when a pruned or damaged block breaks the sequence.
    const std::size_t ci = idx.chain_pos(i);
    const auto resolve = [&, ci](std::size_t back) -> std::span<const std::byte> {
      if (back == 0 || back > ci) return {};
      return idx.body(chain[ci - back]);
    };
    const PrevBlockResolver resolver{resolve};
    visit(blocks[i], idx.body(blocks[i]), res, &resolver);
  }
  res.blocks_skipped += idx.damaged_ranges();
  if (res.errc == core::Errc::kOk || idx.baseline() == core::Errc::kCorrupt) {
    res.errc = idx.baseline();
  }
  return res;
}

}  // namespace

ScanResult DataLake::scan_day_impl(core::CivilDate day, const ScanPredicate* predicate,
                                   RowSink fn) const {
  ScanScratch scratch;
  const auto visit = [&](const DayBlockIndex::Block& b, std::span<const std::byte> body,
                         ScanResult& res, const PrevBlockResolver* resolver) {
    scan_block(body, b.record_count, predicate, scratch, res, fn, resolver);
  };
  return scan_day_walk(*this, day, visit);
}

ScanResult DataLake::scan_day_batches_impl(core::CivilDate day, const ScanPredicate* predicate,
                                           BatchSink fn) const {
  ScanScratch scratch;
  const auto visit = [&](const DayBlockIndex::Block& b, std::span<const std::byte> body,
                         ScanResult& res, const PrevBlockResolver* resolver) {
    scan_block_batches(body, b.record_count, predicate, scratch, res, fn, resolver);
  };
  return scan_day_walk(*this, day, visit);
}

std::vector<flow::FlowRecord> DataLake::read_day(core::CivilDate day) const {
  ScanResult ignored;
  return read_day(day, ignored);
}

std::vector<flow::FlowRecord> DataLake::read_day(core::CivilDate day,
                                                 ScanResult& status) const {
  std::vector<flow::FlowRecord> out;
  status = scan_day(day, [&out](const flow::FlowRecord& r) { out.push_back(r); });
  return out;
}

DayHealth DataLake::fsck_day(core::CivilDate day) const {
  const auto path = day_path(day);
  if (!std::filesystem::exists(path)) {
    DayHealth h;
    h.day = day;
    h.errc = core::Errc::kNotFound;
    return h;
  }
  const auto data = read_file(path);
  if (!data) {
    DayHealth h;
    h.day = day;
    h.errc = core::Errc::kIoError;
    return h;
  }
  FileModel m = parse_file(*data);
  deep_verify_columnar(*data, m);
  DayHealth h = assess(m, day);
  h.identity = file_identity(path);
  return h;
}

LakeHealthReport DataLake::fsck() const {
  LakeHealthReport report;
  for (const auto day : days()) report.days.push_back(fsck_day(day));
  // Surface the health tallies as gauges: one scrape shows lake integrity
  // next to capture quality without re-running fsck.
  auto& m = lake_obs();
  std::int64_t unhealthy = 0;
  for (const auto& d : report.days) unhealthy += d.healthy() ? 0 : 1;
  m.health_days->set(static_cast<std::int64_t>(report.days.size()));
  m.health_unhealthy_days->set(unhealthy);
  m.health_blocks_quarantined->set(report.total_blocks_quarantined());
  m.health_records_lost->set(static_cast<std::int64_t>(report.total_records_lost()));
  return report;
}

DayHealth DataLake::repair_day(core::CivilDate day) { return repair_day_impl(day, false); }

LakeHealthReport DataLake::repair() {
  LakeHealthReport report;
  for (const auto day : days()) report.days.push_back(repair_day_impl(day, false));
  return report;
}

core::Result<void> DataLake::migrate_to_v2(core::CivilDate day) {
  const auto before = fsck_day(day);
  if (before.errc == core::Errc::kNotFound) return core::Errc::kNotFound;
  if (before.version == kVersion2 && before.healthy()) return {};
  if (before.version == kVersion3) {
    // A v3 body is columnar; repair's verbatim body copy would mislabel it
    // inside a v2 file. Transcode record-by-record instead.
    return rewrite_day(day, LakeFormat::kV2);
  }
  const auto after = repair_day_impl(day, true);
  if (!after.repaired) return after.errc == core::Errc::kOk ? core::Errc::kIoError : after.errc;
  return {};
}

core::Result<void> DataLake::rewrite_day(core::CivilDate day, LakeFormat format) {
  const auto path = day_path(day);
  if (!std::filesystem::exists(path)) return core::Errc::kNotFound;
  // Quarantine damage before transcoding so corrupt bytes are preserved
  // for forensics and never silently dropped by the rewrite.
  if (const auto before = fsck_day(day); !before.healthy()) {
    const auto repaired = repair_day_impl(day, false);
    if (repaired.errc != core::Errc::kOk) return repaired.errc;
  }
  ScanResult status;
  const auto records = read_day(day, status);
  if (status.errc != core::Errc::kOk) return status.errc;

  core::ByteWriter out;
  for (char c : kMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u8(static_cast<std::uint8_t>(format));
  encode_day_elements(out, records, static_cast<std::uint8_t>(format), 0, 0);

  append_cursors_.erase(day);
  const auto temp = path.string() + ".rewrite.tmp";
  auto file = file_factory_();
  const auto fail = [&](core::Errc err) -> core::Result<void> {
    std::error_code rm_ec;
    std::filesystem::remove(temp, rm_ec);
    return err;
  };
  if (auto r = file->open_at(temp, 0); !r) return fail(r.error());
  if (auto r = file->write(out.view()); !r) {
    (void)file->close();
    return fail(r.error());
  }
  if (auto r = file->sync(); !r) {
    (void)file->close();
    return fail(r.error());
  }
  if (auto r = file->close(); !r) return fail(r.error());
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) return fail(core::Errc::kIoError);
  return {};
}

core::Result<void> DataLake::truncate_day(core::CivilDate day, std::uint64_t size) {
  const auto path = day_path(day);
  append_cursors_.erase(day);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return core::Errc::kNotFound;
  std::filesystem::resize_file(path, size, ec);
  if (ec) return core::Errc::kIoError;
  return {};
}

core::Result<void> DataLake::remove_day(core::CivilDate day) {
  append_cursors_.erase(day);
  std::error_code ec;
  std::filesystem::remove(day_path(day), ec);
  if (ec) return core::Errc::kIoError;
  return {};
}

DayHealth DataLake::repair_day_impl(core::CivilDate day, bool force_rewrite) {
  const auto path = day_path(day);
  append_cursors_.erase(day);
  if (!std::filesystem::exists(path)) {
    DayHealth h;
    h.day = day;
    h.errc = core::Errc::kNotFound;
    return h;
  }
  const auto data = read_file(path);
  if (!data) {
    DayHealth h;
    h.day = day;
    h.errc = core::Errc::kIoError;
    return h;
  }
  FileModel m = parse_file(*data);
  // The original stream adjacency (pre-verify blocks + salvage candidates)
  // is what delta links were encoded against; transcoding below re-decodes
  // through it.
  const std::vector<BlockRef> parsed_blocks = m.blocks;
  deep_verify_columnar(*data, m);
  DayHealth h = assess(m, day);

  std::error_code ec;
  if (m.errc == core::Errc::kBadMagic || m.errc == core::Errc::kBadVersion ||
      m.errc == core::Errc::kTruncated) {
    // Not a parseable lake file at all: quarantine it wholesale so the
    // day reads as absent rather than corrupt.
    std::filesystem::create_directories(quarantine_dir(), ec);
    std::filesystem::rename(path, quarantine_dir() / (day_filename(day) + ".file.bad"), ec);
    if (ec) {
      h.errc = core::Errc::kIoError;
      return h;
    }
    h.repaired = true;
    h.blocks_quarantined = 1;
    h.bytes_quarantined = data->size();
    return h;
  }
  if (h.healthy() && m.version >= kVersion2 && !force_rewrite) return h;  // nothing to do

  // Rebuild: surviving blocks (bodies copied verbatim), renumbered and
  // resealed. v2/v3 files keep their format — the body layout must match
  // the header version; v1 is upgraded to v2. The new file is written
  // next to the old one and swapped in by rename, so a failure at any
  // point leaves the original untouched.
  const std::uint8_t out_version = m.version == kVersion3 ? kVersion3 : kVersion2;
  core::ByteWriter out;
  for (char c : kMagic) out.u8(static_cast<std::uint8_t>(c));
  out.u8(out_version);
  std::uint32_t new_seq = 0;
  std::uint64_t cum_records = 0;
  // Blocks whose dictionary chain leaned on a quarantined or salvaged
  // predecessor survive the rebuild only as chain heads: decode them
  // through the original adjacency and re-encode with full dictionaries.
  // The block's own dictionary (entries, first-appearance order) is
  // identical either way, so later blocks that delta-link to IT keep
  // resolving — their link CRC hashes the resolved entries, not the wire
  // encoding.
  const std::vector<BlockRef> chain = chain_order(parsed_blocks, m.salvage);
  std::size_t next_transcode = 0;
  for (std::size_t i = 0; i < m.blocks.size(); ++i) {
    const BlockRef& b = m.blocks[i];
    const auto body = std::span<const std::byte>{*data}.subspan(b.offset + b.header_size,
                                                                b.body_len);
    const bool transcode =
        next_transcode < m.transcode.size() && m.transcode[next_transcode] == i;
    if (!transcode) {
      put_block_frame(out, new_seq++, b.record_count, body);
      cum_records += b.record_count;
      continue;
    }
    ++next_transcode;
    std::size_t ci = 0;
    while (ci < chain.size() && chain[ci].offset != b.offset) ++ci;
    const auto resolve = [&, ci](std::size_t back) -> std::span<const std::byte> {
      if (back == 0 || back > ci) return {};
      const BlockRef& p = chain[ci - back];
      return std::span<const std::byte>{*data}.subspan(p.offset + p.header_size, p.body_len);
    };
    const PrevBlockResolver resolver{resolve};
    std::vector<flow::FlowRecord> recs;
    recs.reserve(b.record_count);
    ColumnScratch cs;
    std::uint64_t n = 0;
    const auto collect = [&recs](const flow::FlowRecord& r) { recs.push_back(r); };
    const auto status =
        decode_columnar_block(body, cs, nullptr, n, collect, b.record_count, &resolver);
    if (status != BlockDecodeStatus::kOk) {
      // deep_verify proved this decode moments ago; treat a failure here as
      // fresh damage and quarantine the block rather than abort the repair.
      m.bad.push_back({b.offset, b.offset + b.header_size + b.body_len});
      h.blocks_ok -= 1;
      h.records_ok -= b.record_count;
      h.blocks_quarantined += 1;
      h.bytes_quarantined += b.header_size + b.body_len;
      h.records_lost += b.record_count;
      continue;
    }
    core::ByteWriter head;
    encode_columnar_block(recs, effective_catalog(), head);
    put_block_frame(out, new_seq++, b.record_count, head.view());
    cum_records += b.record_count;
  }
  put_seal(out, cum_records, new_seq);

  const auto temp = path.string() + ".repair.tmp";
  auto file = file_factory_();
  const auto fail = [&](core::Errc err) {
    std::error_code rm_ec;
    std::filesystem::remove(temp, rm_ec);
    h.errc = err;
    return h;
  };
  if (auto r = file->open_at(temp, 0); !r) return fail(r.error());
  if (auto r = file->write(out.view()); !r) {
    (void)file->close();
    return fail(r.error());
  }
  if (auto r = file->sync(); !r) {
    (void)file->close();
    return fail(r.error());
  }
  if (auto r = file->close(); !r) return fail(r.error());

  // Preserve the damaged bytes for offline forensics before the rename
  // makes them unreachable.
  if (!m.bad.empty()) {
    std::filesystem::create_directories(quarantine_dir(), ec);
    std::size_t index = 0;
    for (const auto& range : m.bad) {
      const auto qpath =
          quarantine_dir() / (day_filename(day) + "." + std::to_string(index++) + ".bad");
      std::ofstream q(qpath, std::ios::binary | std::ios::trunc);
      q.write(reinterpret_cast<const char*>(data->data() + range.begin),
              static_cast<std::streamsize>(range.end - range.begin));
    }
  }

  std::filesystem::rename(temp, path, ec);
  if (ec) return fail(core::Errc::kIoError);
  h.repaired = true;
  h.sealed = true;
  h.torn_tail = false;
  h.errc = core::Errc::kOk;
  return h;
}

std::vector<core::CivilDate> DataLake::days() const {
  std::vector<core::CivilDate> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    const auto name = entry.path().filename().string();
    // flows_YYYY-MM-DD.ewl
    if (name.size() == 6 + 10 + 4 && name.starts_with("flows_") && name.ends_with(".ewl")) {
      if (auto date = core::CivilDate::parse(name.substr(6, 10))) out.push_back(*date);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool DataLake::has_day(core::CivilDate day) const {
  return std::filesystem::exists(day_path(day));
}

std::uint64_t DataLake::file_bytes(core::CivilDate day) const {
  std::error_code ec;
  const auto size = std::filesystem::file_size(day_path(day), ec);
  return ec ? 0 : size;
}

FileIdentity DataLake::day_identity(core::CivilDate day) const {
  return file_identity(day_path(day));
}

ScanResult DataLake::export_csv(core::CivilDate day, const std::filesystem::path& out) const {
  std::ofstream csv(out);
  if (!csv) {
    ScanResult res;
    res.errc = core::Errc::kIoError;
    return res;
  }
  csv << csv_header() << '\n';
  return scan_day(day, [&](const flow::FlowRecord& r) { csv << r.to_csv_row() << '\n'; });
}

}  // namespace edgewatch::storage
