#include "storage/datalake.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "core/hash.hpp"
#include "storage/codec.hpp"
#include "storage/compress.hpp"

namespace edgewatch::storage {

namespace {

constexpr char kMagic[4] = {'E', 'W', 'L', 'K'};
constexpr std::uint8_t kFileVersion = 1;

void write_le32(std::ofstream& out, std::uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(bytes, 4);
}

std::optional<std::uint32_t> read_le32(std::ifstream& in) {
  char bytes[4];
  if (!in.read(bytes, 4)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i])) << (8 * i);
  }
  return v;
}

}  // namespace

DataLake::DataLake(std::filesystem::path root) : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
}

std::string DataLake::day_filename(core::CivilDate day) {
  return "flows_" + day.to_string() + ".ewl";
}

std::filesystem::path DataLake::day_path(core::CivilDate day) const {
  return root_ / day_filename(day);
}

std::uint64_t DataLake::append(core::CivilDate day,
                               std::span<const flow::FlowRecord> records) {
  const auto path = day_path(day);
  const bool fresh = !std::filesystem::exists(path);
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return 0;
  std::uint64_t written = 0;
  if (fresh) {
    out.write(kMagic, 4);
    out.put(static_cast<char>(kFileVersion));
    written += 5;
  }
  for (std::size_t start = 0; start < records.size(); start += kBlockRecords) {
    const std::size_t n = std::min(kBlockRecords, records.size() - start);
    core::ByteWriter block;
    for (std::size_t i = 0; i < n; ++i) encode_record(records[start + i], block);
    const auto compressed = compress_block(block.view());
    write_le32(out, static_cast<std::uint32_t>(compressed.size()));
    // Checksum of the *uncompressed* block: catches corruption that the
    // LZ framing alone would decode into garbage records.
    write_le32(out, static_cast<std::uint32_t>(core::fnv1a64(block.view())));
    out.write(reinterpret_cast<const char*>(compressed.data()),
              static_cast<std::streamsize>(compressed.size()));
    written += 8 + compressed.size();
  }
  return written;
}

bool DataLake::scan_day(core::CivilDate day,
                        const std::function<void(const flow::FlowRecord&)>& fn) const {
  std::ifstream in(day_path(day), std::ios::binary);
  if (!in) return false;
  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) return false;
  char version = 0;
  if (!in.get(version) || version != kFileVersion) return false;

  while (true) {
    const auto block_len = read_le32(in);
    if (!block_len) return in.eof();
    const auto checksum = read_le32(in);
    if (!checksum) return false;
    std::vector<std::byte> compressed(*block_len);
    if (!in.read(reinterpret_cast<char*>(compressed.data()),
                 static_cast<std::streamsize>(compressed.size()))) {
      return false;  // truncated block
    }
    const auto block = decompress_block(compressed);
    if (!block) return false;
    if (static_cast<std::uint32_t>(core::fnv1a64(*block)) != *checksum) return false;
    core::ByteReader r{*block};
    while (r.remaining() > 0) {
      auto record = decode_record(r);
      if (!record) return false;
      fn(*record);
    }
  }
}

std::vector<flow::FlowRecord> DataLake::read_day(core::CivilDate day) const {
  std::vector<flow::FlowRecord> out;
  scan_day(day, [&out](const flow::FlowRecord& r) { out.push_back(r); });
  return out;
}

std::vector<core::CivilDate> DataLake::days() const {
  std::vector<core::CivilDate> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    const auto name = entry.path().filename().string();
    // flows_YYYY-MM-DD.ewl
    if (name.size() == 6 + 10 + 4 && name.starts_with("flows_") && name.ends_with(".ewl")) {
      if (auto date = core::CivilDate::parse(name.substr(6, 10))) out.push_back(*date);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool DataLake::has_day(core::CivilDate day) const {
  return std::filesystem::exists(day_path(day));
}

std::uint64_t DataLake::file_bytes(core::CivilDate day) const {
  std::error_code ec;
  const auto size = std::filesystem::file_size(day_path(day), ec);
  return ec ? 0 : size;
}

std::uint64_t DataLake::export_csv(core::CivilDate day, const std::filesystem::path& out) const {
  std::ofstream csv(out);
  if (!csv) return 0;
  csv << csv_header() << '\n';
  std::uint64_t rows = 0;
  scan_day(day, [&](const flow::FlowRecord& r) {
    csv << r.to_csv_row() << '\n';
    ++rows;
  });
  return rows;
}

}  // namespace edgewatch::storage
