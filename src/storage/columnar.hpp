// Columnar `.ewl` v3 block bodies: the read-optimized counterpart of the
// row-oriented v2 stream (paper §2.2 — the analytics side re-scans years of
// day logs, so the scan path must be able to *skip* and to decode in batch).
//
// Within one CRC-framed lake block, records are transposed into per-field
// column segments, each with its own varint/fixed-width stream and its own
// compression envelope (similar bytes sit together, so the LZ pass bites
// harder and a stored fallback costs nothing). The body is prefixed by a
// fixed-width **zone map** — per-block min/max timestamp, service-id bitmap,
// transport-protocol bitmap, server-IP range, record count — that a
// selective scan reads without decompressing anything, skipping whole
// blocks whose zone provably cannot match the predicate.
//
// Zone maps are *advisory for skipping, authoritative never*: every decoded
// record is checked back against the zone that announced it, and a lying
// zone map (one that excludes records actually present) turns the block
// status to kZoneMapLied so fsck/repair can quarantine it — records are
// still delivered, never silently dropped (tests/test_storage.cpp holds
// this; DESIGN.md §12 states the contract).
//
// Body layout (all integers little-endian; the body sits verbatim inside a
// v2-style CRC frame, so every byte below is checksummed):
//
//   u8  tag = 0xC3            distinguishes columnar bodies from the v1/v2
//                             compression envelope (scheme bytes 0x00/0x01)
//   u8  layout = 1 | 2
//   zone map (36 bytes):      i64 ts_min_us | i64 ts_max_us
//                             | u32 service_bitmap | u32 proto_bitmap
//                             | u32 server_ip_min | u32 server_ip_max
//                             | u32 record_count
//   u8  dict_size, then dict_size × u8 global ServiceId  (service dictionary)
//   [layout 2 only] u8 dict_link — bit0: name dict delta-coded against the
//                             previous block, bit1: content-type dict ditto,
//                             higher bits must be zero
//   u8  segment_count, then per segment: u8 column_id | varint payload_len
//   segment payloads, each a compress.hpp envelope of the column stream
//
// Layout 2 (codec v2, the write default) differs from layout 1 only in how
// segment payloads are packed, never in which columns exist:
//
//  * Numeric columns use the adaptive value-segment codec
//    (compress_u64_segment): per segment the smallest of {stored varint,
//    LZ varint, frame-of-reference bitpack, run-length} wins. A layout-1
//    numeric segment is exactly the "stored/LZ varint" arm, so one decoder
//    serves both layouts.
//  * u8 columns add a run-length stream variant next to constant/plain.
//  * The server-name and content-type dictionaries may be delta-coded
//    against the previous block of the same day file (dict_link bits):
//    repeated entries cost one varint back-reference instead of the string
//    bytes. Delta chains restart at least every kDictChainInterval blocks
//    and never cross an append boundary; each link carries the CRC of the
//    predecessor's canonical full dictionary, so resolving against the
//    wrong block fails loudly instead of mis-resolving.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/bytes.hpp"
#include "core/flat_hash_map.hpp"
#include "core/function_ref.hpp"
#include "core/hash.hpp"
#include "core/types.hpp"
#include "exec/record_batch.hpp"
#include "flow/record.hpp"
#include "services/catalog.hpp"
#include "storage/compress.hpp"

namespace edgewatch::storage {

inline constexpr std::uint8_t kColumnarTag = 0xC3;
inline constexpr std::uint8_t kColumnarLayoutV1 = 1;
inline constexpr std::uint8_t kColumnarLayoutV2 = 2;
/// Sanity ceiling on the per-block record count a zone map may declare.
inline constexpr std::uint32_t kMaxColumnarRecords = 1u << 20;
/// A layout-2 dictionary delta chain restarts (full dictionaries are
/// re-emitted) at least every this many blocks within one append, and
/// always at the first block of an append. Bounds how far a random-access
/// decode may have to walk back to resolve a chain.
inline constexpr std::size_t kDictChainInterval = 8;

/// Compact bit index for the transport-protocol bitmaps: TransportProto
/// values are IANA numbers (6/17/255), too sparse for a direct bitmap.
[[nodiscard]] constexpr unsigned proto_bit(core::TransportProto p) noexcept {
  return p == core::TransportProto::kTcp ? 0u : p == core::TransportProto::kUdp ? 1u : 2u;
}

/// The per-block skip index. min/max are inclusive; the service bitmap has
/// bit i set when some record classifies as ServiceId i (kServiceCount ≤ 32
/// by construction), the proto bitmap uses proto_bit().
struct ZoneMap {
  std::int64_t ts_min_us = 0;   ///< min first_packet across the block
  std::int64_t ts_max_us = 0;   ///< max first_packet across the block
  std::uint32_t service_bitmap = 0;
  std::uint32_t proto_bitmap = 0;
  std::uint32_t server_ip_min = 0;
  std::uint32_t server_ip_max = 0;
  std::uint32_t record_count = 0;
};

/// Field-projection bits for ScanPredicate::fields. The constants moved to
/// exec/record_batch.hpp with the batch refactor (the projection contract
/// belongs to the execution currency, not to one storage format); this
/// alias keeps every storage-side spelling — scan_fields::kDayAggregate
/// etc. — valid unchanged.
namespace scan_fields = ::edgewatch::exec::scan_fields;

/// The predicate a selective scan pushes below the decoder. Default state
/// matches everything (a full scan). Time bounds are inclusive and apply to
/// first_packet, mirroring how the day files are partitioned.
struct ScanPredicate {
  std::int64_t time_min_us = std::numeric_limits<std::int64_t>::min();
  std::int64_t time_max_us = std::numeric_limits<std::int64_t>::max();
  /// Bit per services::ServiceId; 0 = any service.
  std::uint32_t service_mask = 0;
  /// Bit per proto_bit(TransportProto); 0 = any transport.
  std::uint32_t proto_mask = 0;
  /// Classifier for row-format (v1/v2) record filtering when service_mask
  /// is set; nullptr = services::ServiceCatalog::standard(). v3 blocks
  /// filter on their materialized service column instead (written with the
  /// lake's write catalog — the same standard catalog by default).
  const services::ServiceCatalog* catalog = nullptr;
  /// Projection (scan_fields bits): which record fields the consumer will
  /// read. kAll decodes everything; a narrower mask lets v3 blocks skip the
  /// unreferenced column segments entirely. Orthogonal to the row filters
  /// above — a fields-only predicate is still an unrestricted (full) scan.
  std::uint32_t fields = scan_fields::kAll;

  [[nodiscard]] bool unrestricted() const noexcept {
    return time_min_us == std::numeric_limits<std::int64_t>::min() &&
           time_max_us == std::numeric_limits<std::int64_t>::max() && service_mask == 0 &&
           proto_mask == 0;
  }

  /// Could any record admitted by this predicate live in `zone`? False is a
  /// proof of absence *if the zone map is truthful* — which is exactly why
  /// zone maps are advisory-only and cross-checked at decode.
  [[nodiscard]] bool admits(const ZoneMap& zone) const noexcept {
    if (zone.ts_max_us < time_min_us || zone.ts_min_us > time_max_us) return false;
    if (service_mask != 0 && (service_mask & zone.service_bitmap) == 0) return false;
    if (proto_mask != 0 && (proto_mask & zone.proto_bitmap) == 0) return false;
    return true;
  }

  /// Row-level match for already-materialized records (the v1/v2 path and
  /// the post-decode oracle the golden tests compare against).
  [[nodiscard]] bool matches(const flow::FlowRecord& record) const;

  /// Convenience: restrict to one service.
  static ScanPredicate for_service(services::ServiceId id) noexcept {
    ScanPredicate p;
    p.service_mask = 1u << static_cast<unsigned>(id);
    return p;
  }

  /// Convenience: restrict to one transport protocol.
  static ScanPredicate for_proto(core::TransportProto proto) noexcept {
    ScanPredicate p;
    p.proto_mask = 1u << proto_bit(proto);
    return p;
  }

  /// Convenience: an unrestricted scan that materializes only `field_mask`.
  static ScanPredicate project(std::uint32_t field_mask) noexcept {
    ScanPredicate p;
    p.fields = field_mask;
    return p;
  }
};

/// Reusable decode buffers for the columnar path: one per scanning thread,
/// filled block after block with zero steady-state allocation. Owned by
/// storage::ScanScratch (datalake.hpp).
struct ColumnScratch {
  // Column arrays, row-aligned (record i of the block is index i).
  std::vector<std::int64_t> ts;        ///< first_packet, µs
  std::vector<std::int64_t> dur;       ///< last_packet − first_packet
  std::vector<std::uint8_t> service;   ///< global ServiceId, dict-resolved
  std::vector<std::uint8_t> proto, access, flags, l7, web, name_source;
  std::vector<std::uint16_t> cport, sport;
  std::vector<std::uint32_t> cip, sip;
  std::vector<std::uint64_t> up_pkts, up_bytes, up_hdr, up_retx, up_ooo;
  std::vector<std::uint64_t> dn_pkts, dn_bytes, dn_hdr, dn_retx, dn_ooo;
  std::vector<std::uint64_t> rtt_samples, http_status;
  std::vector<std::int64_t> rtt_min, rtt_max_delta, rtt_avg_delta;
  /// Resolved RTT spread (min + delta, row-aligned, zero where samples ==
  /// 0): what the RecordBatch contract exposes instead of the on-disk
  /// delta coding. Filled only under scan_fields::kRttSpread.
  std::vector<std::int64_t> rtt_max;
  std::vector<double> rtt_avg;
  std::vector<std::uint32_t> name_idx, ct_idx;
  // String dictionaries: views into the two persistent blob buffers below.
  std::vector<std::string_view> name_dict, ct_dict;
  std::vector<std::byte> name_blob, ct_blob;
  /// Per-segment decompression scratch (reused; stored segments decode
  /// zero-copy straight from the file bytes).
  std::vector<std::byte> seg;
  /// Wide staging for varint columns that narrow on emit (server_port).
  std::vector<std::uint64_t> u64_tmp;
  /// Selected row indexes of a filtered decode.
  std::vector<std::uint32_t> sel;
  /// The one FlowRecord object rows are emitted through: string capacity is
  /// reused across rows and blocks, so a full-day scan performs no
  /// per-record allocation once the dictionaries warmed the buffers.
  flow::FlowRecord rec;
  // Layout-2 dictionary chain cache: the owned, fully-resolved name and
  // content-type dictionaries of the block this scratch decoded last, keyed
  // by the CRC of their canonical full serialization. A sequential scan
  // resolves each delta link against this cache (one CRC compare); on a
  // miss — random-access entry mid-chain, or a damaged predecessor — the
  // decoder walks back through the caller's PrevBlockResolver instead.
  // Double-buffered: block b+1's dictionary is built into the idle buffer
  // while back-referencing block b's, then the buffers flip; string capacity
  // is reused across blocks (resize + assign), so the steady-state scan of a
  // delta chain allocates nothing. name_dict/ct_dict above view into the
  // active buffer for layout-2 blocks.
  std::array<std::vector<std::string>, 2> chain_name_bufs, chain_ct_bufs;
  unsigned chain_name_cur = 0, chain_ct_cur = 0;
  std::uint32_t chain_name_crc = 0, chain_ct_crc = 0;
  bool chain_name_valid = false, chain_ct_valid = false;
  /// Decompression scratch for predecessor bodies during a chain walk
  /// (s.seg holds the current block's segment at that point).
  std::vector<std::byte> chain_seg;
};

/// Encode-side scratch mirroring ScanScratch: column staging arrays, the
/// compressor scratch, and the payload/directory accumulators, all reused
/// across blocks and flushes so the steady-state write path allocates
/// nothing. One per encode context (the lake keeps a ring of them for the
/// pipelined writer — each in-flight block encodes into its own slot).
struct EncodeScratch {
  CompressScratch compress;
  std::vector<std::uint64_t> u64;          ///< numeric column / dict-index staging
  std::vector<std::uint8_t> u8;            ///< u8 column staging
  std::vector<std::uint8_t> service_code;  ///< pass-1 per-row dict codes
  core::ByteWriter stream;                 ///< byte-stream staging (fixed cols, dicts)
  /// String-dictionary staging: first-appearance entries (views into the
  /// records being encoded) and the interning / predecessor-lookup maps.
  std::vector<std::string_view> dict_entries;
  core::FlatHashMap<std::string_view, std::uint32_t, core::StringHash> dict_codes;
  core::FlatHashMap<std::string_view, std::uint32_t, core::StringHash> prev_codes;
  std::vector<std::byte> payloads;
  std::vector<std::pair<std::uint8_t, std::uint32_t>> directory;  // id → len
  /// Per-codec envelope byte tallies for this scratch, indexed by
  /// compress.hpp scheme tag. The lake folds them into the obs counters at
  /// commit (per-task tallies keep the parallel encode contention-free).
  std::array<std::uint64_t, 4> codec_bytes_in{};
  std::array<std::uint64_t, 4> codec_bytes_out{};
};

/// Encoder-side dictionary chain state: the name/content-type dictionaries
/// a block's predecessor would decode to, plus the CRCs of their canonical
/// full serializations. Derived deterministically from the predecessor's
/// records via build_dict_chain_state — both the serial and the parallel
/// writer recompute it the same way, which is what keeps their outputs
/// byte-identical without threading state through the pipeline.
struct DictChainState {
  std::vector<std::string> name_dict, ct_dict;
  std::uint32_t name_crc = 0, ct_crc = 0;
};

/// Compute the chain state a block whose predecessor holds `prev_records`
/// encodes against (first-appearance dictionary order, same as the block
/// encoder itself). `out` is cleared and refilled, reusing capacity.
void build_dict_chain_state(std::span<const flow::FlowRecord> prev_records, DictChainState& out);

/// Outcome of decoding one columnar body.
enum class BlockDecodeStatus : std::uint8_t {
  kOk = 0,
  /// Structural damage (bad tag/dictionary/segment, torn column, count
  /// mismatch). No record of the block is delivered — columnar blocks
  /// decode atomically, unlike the v2 row stream's valid-prefix delivery.
  kCorrupt,
  /// Every record decoded and was delivered, but at least one contradicts
  /// the zone map (a record outside the claimed time/service/proto/IP
  /// zone). The block must be quarantined: a selective scan trusting this
  /// zone map could have skipped records a truthful map would have kept.
  kZoneMapLied,
};

/// Number of column segments a full decode under this projection mask must
/// touch (out of the fixed per-block segment count — the always-decoded
/// filter/zone columns included). Mirrors decode_columnar_block's gates;
/// observability uses it to count segments *skipped* by a projection.
[[nodiscard]] unsigned segments_for_fields(std::uint32_t fields) noexcept;
/// Segments per columnar block (layout v1); segments_for_fields(kAll).
inline constexpr unsigned kColumnSegmentCount = 32;

/// True when `body` carries the columnar tag (v3); false for the v1/v2
/// compression envelope.
[[nodiscard]] bool is_columnar_block(std::span<const std::byte> body) noexcept;

/// Read just the fixed-width zone map — no decompression, no column decode.
/// nullopt on a malformed prefix.
[[nodiscard]] std::optional<ZoneMap> peek_zone_map(std::span<const std::byte> body) noexcept;

/// Transpose `records` into a columnar body appended to `out`. `catalog`
/// materializes the per-record service ids (dictionary-coded) and the zone
/// map's service bitmap. This convenience overload emits a layout-2 chain
/// head (fresh dictionaries) with its own scratch.
void encode_columnar_block(std::span<const flow::FlowRecord> records,
                           const services::ServiceCatalog& catalog, core::ByteWriter& out);

/// Full layout-2 encoder. `prev` is the dictionary chain state of the
/// block's predecessor within the same append, or nullptr for a chain head
/// (first block of an append, and every kDictChainInterval-th after it).
/// Even with `prev` set, a dictionary is only delta-coded when the delta is
/// actually smaller — the dict_link bits record the per-block choice.
void encode_columnar_block(std::span<const flow::FlowRecord> records,
                           const services::ServiceCatalog& catalog, core::ByteWriter& out,
                           EncodeScratch& scratch, const DictChainState* prev);

/// Layout-1 encoder, byte-identical to the pre-codec-v2 writer. Kept so
/// read-compat tests can fabricate historical blocks; production writes go
/// through the layout-2 overloads above.
void encode_columnar_block_layout1(std::span<const flow::FlowRecord> records,
                                   const services::ServiceCatalog& catalog,
                                   core::ByteWriter& out);

/// Resolves the body of the block `back` positions (1 = immediate
/// predecessor) before the one being decoded, in the parse order of the
/// same day file. Returns an empty span when unavailable. Only consulted to
/// resolve layout-2 dictionary delta chains on random access — sequential
/// scans hit the ColumnScratch chain cache instead.
using PrevBlockResolver = core::FunctionRef<std::span<const std::byte>(std::size_t back)>;

/// Decode a columnar body (either layout), delivering records (in row
/// order) to `fn`. With a predicate, only matching records are delivered —
/// the filter columns (timestamp, service, proto) decode first and, when
/// nothing matches, the remaining segments are never touched.
/// `expected_records` cross-checks the frame header's count (pass
/// kAnyRecordCount to skip). records_delivered counts what `fn` saw.
/// `prev_blocks`, when non-null, resolves dictionary delta chains that the
/// scratch's cache cannot; a delta block that resolves through neither is
/// kCorrupt — never silently mis-resolved.
inline constexpr std::uint32_t kAnyRecordCount = 0xffffffffu;
[[nodiscard]] BlockDecodeStatus decode_columnar_block(
    std::span<const std::byte> body, ColumnScratch& scratch, const ScanPredicate* predicate,
    std::uint64_t& records_delivered, core::FunctionRef<void(const flow::FlowRecord&)> fn,
    std::uint32_t expected_records = kAnyRecordCount,
    const PrevBlockResolver* prev_blocks = nullptr);

/// Native batch decode — the primary columnar read path since the batch
/// refactor (decode_columnar_block is this plus the exec::materialize_rows
/// row shim). Decodes the body into `scratch` and points `batch` at the
/// resulting columns: same filter-first segment gating, predicate pushdown,
/// projection skipping and zone cross-checks as the row path, but the
/// dictionary-coded name/content-type columns pass through as dict codes —
/// no per-row string traffic. On kCorrupt the batch is left empty; on
/// kZoneMapLied the rows are still delivered (advisory-never-authoritative).
/// The batch views `scratch` and stays valid until its next decode.
[[nodiscard]] BlockDecodeStatus decode_columnar_batch(
    std::span<const std::byte> body, ColumnScratch& scratch, const ScanPredicate* predicate,
    exec::RecordBatch& batch, std::uint32_t expected_records = kAnyRecordCount,
    const PrevBlockResolver* prev_blocks = nullptr);

}  // namespace edgewatch::storage
