// Binary flow-record codec (paper §2.2: 247 billion records / 31.9 TB
// compressed — the format must be compact and streamable).
//
// Layout per record: varint-packed fields, with timestamps delta-encoded
// (absolute first_packet, then duration) and the hostname length-prefixed.
// A file/block of records is independently decodable: decode distinguishes
// a clean end of input (Errc::kEndOfStream) from malformed bytes
// (Errc::kCorrupt), so readers can tell "done" from "damaged".
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

#include "core/bytes.hpp"
#include "core/result.hpp"
#include "flow/record.hpp"

namespace edgewatch::storage {

/// LEB128 unsigned varint.
void put_varint(core::ByteWriter& w, std::uint64_t value);
[[nodiscard]] std::uint64_t get_varint(core::ByteReader& r) noexcept;

/// Raw-pointer varint cursor for the columnar batch decode loops. Same
/// monadic failure contract as ByteReader (one ok() check per column) but
/// without its per-byte ensure() cost, and with a SWAR fast path: one
/// unaligned 8-byte load finds the varint terminator for all 1..8-byte
/// values via the inverted continuation-bit mask, in the spirit of the
/// flat-hash-map group probes (DESIGN.md §10). Falls back to the checked
/// byte loop near the buffer end and for 9/10-byte varints, preserving
/// get_varint's overlong-encoding rejection exactly.
struct VarintCursor {
  const std::uint8_t* p = nullptr;
  const std::uint8_t* end = nullptr;
  bool failed = false;

  constexpr VarintCursor() noexcept = default;
  explicit VarintCursor(std::span<const std::byte> data) noexcept
      : p(reinterpret_cast<const std::uint8_t*>(data.data())), end(p + data.size()) {}

  [[nodiscard]] bool ok() const noexcept { return !failed; }
  /// True when every input byte was consumed — column decodes require
  /// exact consumption, so trailing garbage is detected as corruption.
  [[nodiscard]] bool exhausted() const noexcept { return p == end; }
  void fail() noexcept { failed = true; }
};

[[nodiscard]] inline std::uint64_t get_varint(VarintCursor& c) noexcept {
  if (c.failed) return 0;
  if constexpr (std::endian::native == std::endian::little) {
    if (c.end - c.p >= 8) {
      std::uint64_t w;
      std::memcpy(&w, c.p, 8);
      const std::uint64_t stop = ~w & 0x8080808080808080ULL;  // terminator bytes
      if (stop != 0) {
        const unsigned n = static_cast<unsigned>(std::countr_zero(stop) >> 3) + 1;
        c.p += n;
        if (n < 8) w &= (std::uint64_t{1} << (8 * n)) - 1;
        std::uint64_t value = w & 0x7f;
        for (unsigned i = 1; i < n; ++i) value |= ((w >> (8 * i)) & 0x7f) << (7 * i);
        return value;
      }
      // 9- or 10-byte varint: rare, take the checked path below.
    }
  }
  // Near-end / big-varint tail: byte-checked loop with the exact overlong
  // rejection semantics of get_varint(ByteReader&).
  std::uint64_t value = 0;
  for (int i = 0; i < 10; ++i) {
    if (c.p == c.end) {
      c.fail();
      return 0;
    }
    const std::uint8_t byte = *c.p++;
    if (i == 9) {
      if (byte > 1) {
        c.fail();
        return 0;
      }
      return value | (static_cast<std::uint64_t>(byte) << 63);
    }
    value |= static_cast<std::uint64_t>(byte & 0x7f) << (7 * i);
    if ((byte & 0x80) == 0) return value;
  }
  c.fail();
  return 0;
}

[[nodiscard]] inline std::int64_t get_varint_signed(VarintCursor& c) noexcept {
  const std::uint64_t zigzag = get_varint(c);
  return static_cast<std::int64_t>((zigzag >> 1) ^ (~(zigzag & 1) + 1));
}

/// Batch-decode `n` varints from `c` into `out`. Equivalent to n get_varint
/// calls, but the column hot loop: one 8-byte SWAR window is loaded per
/// iteration and every varint that terminates inside it is peeled off with
/// register shifts, so consecutive small values share a single load instead
/// of each paying the load→length→advance dependency chain. False on
/// malformed/truncated input (c.failed is set; out contents unspecified).
[[nodiscard]] inline bool get_varint_batch(VarintCursor& c, std::uint64_t* out,
                                           std::size_t n) noexcept {
  if (c.failed) return false;
  std::size_t i = 0;
  if constexpr (std::endian::native == std::endian::little) {
    while (i < n && c.end - c.p >= 8) {
      std::uint64_t w;
      std::memcpy(&w, c.p, 8);
      std::uint64_t stops = ~w & 0x8080808080808080ULL;
      if (stops == 0) {
        // A varint of 8+ bytes fills the window: take the checked path.
        out[i++] = get_varint(c);
        if (c.failed) return false;
        continue;
      }
      do {
        const unsigned nb = static_cast<unsigned>(std::countr_zero(stops) >> 3) + 1;
        std::uint64_t value = w & 0x7f;
        for (unsigned k = 1; k < nb; ++k) value |= ((w >> (8 * k)) & 0x7f) << (7 * k);
        out[i++] = value;
        c.p += nb;
        if (nb == 8) break;
        w >>= 8 * nb;
        stops >>= 8 * nb;
      } while (stops != 0 && i < n);
    }
  }
  for (; i < n; ++i) {
    out[i] = get_varint(c);
    if (c.failed) return false;
  }
  return true;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define EW_VARINT_BMI2 1
/// BMI2 batch decode: same contract as get_varint_batch, but each varint's
/// payload bits are gathered with one PEXT instead of the per-byte
/// shift/or chain — the extraction cost stops depending on the varint's
/// length, which is what the multi-byte delta and byte-counter columns pay
/// for most. Values are handed to `sink(index, value)` so column decoders
/// can fuse their per-value transform (zigzag, bound-check, narrowing)
/// into the decode pass instead of re-traversing the output. Dispatch at
/// the column level via varint_batch_bmi2_available(); the target attribute
/// keeps the containing binary runnable on pre-Haswell CPUs.
template <class Sink>
__attribute__((target("bmi2"))) [[nodiscard]] inline bool get_varint_batch_bmi2(
    VarintCursor& c, std::size_t n, Sink&& sink) noexcept {
  if (c.failed) return false;
  std::size_t i = 0;
  if constexpr (std::endian::native == std::endian::little) {
    while (i < n && c.end - c.p >= 8) {
      std::uint64_t w;
      std::memcpy(&w, c.p, 8);
      std::uint64_t stops = ~w & 0x8080808080808080ULL;
      if (stops == 0) {
        // A varint of 8+ bytes fills the window: take the checked path.
        const std::uint64_t value = get_varint(c);
        if (c.failed) return false;
        sink(i++, value);
        continue;
      }
      do {
        const unsigned nb = static_cast<unsigned>(std::countr_zero(stops) >> 3) + 1;
        // BZHI keeps the low 8·nb bits (passing 64 keeps all), PEXT packs
        // the seven payload bits of every byte in one step.
        sink(i++, __builtin_ia32_pext_di(__builtin_ia32_bzhi_di(w, 8 * nb),
                                         0x7f7f7f7f7f7f7f7fULL));
        c.p += nb;
        if (nb == 8) break;
        w >>= 8 * nb;
        stops >>= 8 * nb;
      } while (stops != 0 && i < n);
    }
  }
  for (; i < n; ++i) {
    const std::uint64_t value = get_varint(c);
    if (c.failed) return false;
    sink(i, value);
  }
  return true;
}

[[nodiscard]] inline bool varint_batch_bmi2_available() noexcept {
  static const bool available = __builtin_cpu_supports("bmi2");
  return available;
}
#endif

/// ZigZag-mapped signed varint (for RTT minima that can round to 0 and
/// for any field that may regress).
void put_varint_signed(core::ByteWriter& w, std::int64_t value);
[[nodiscard]] std::int64_t get_varint_signed(core::ByteReader& r) noexcept;

/// Serialize one record.
void encode_record(const flow::FlowRecord& record, core::ByteWriter& w);

/// Decode one record. Errors: kEndOfStream when the reader was already
/// exhausted, kCorrupt on malformed bytes. (Result's optional-like surface
/// keeps `if (auto rec = decode_record(r))` call sites working.)
[[nodiscard]] core::Result<flow::FlowRecord> decode_record(core::ByteReader& r);

/// CSV header matching FlowRecord::to_csv_row().
[[nodiscard]] std::string_view csv_header() noexcept;

}  // namespace edgewatch::storage
