// Binary flow-record codec (paper §2.2: 247 billion records / 31.9 TB
// compressed — the format must be compact and streamable).
//
// Layout per record: varint-packed fields, with timestamps delta-encoded
// (absolute first_packet, then duration) and the hostname length-prefixed.
// A file/block of records is independently decodable: decode distinguishes
// a clean end of input (Errc::kEndOfStream) from malformed bytes
// (Errc::kCorrupt), so readers can tell "done" from "damaged".
#pragma once

#include <cstdint>

#include "core/bytes.hpp"
#include "core/result.hpp"
#include "flow/record.hpp"

namespace edgewatch::storage {

/// LEB128 unsigned varint.
void put_varint(core::ByteWriter& w, std::uint64_t value);
[[nodiscard]] std::uint64_t get_varint(core::ByteReader& r) noexcept;

/// ZigZag-mapped signed varint (for RTT minima that can round to 0 and
/// for any field that may regress).
void put_varint_signed(core::ByteWriter& w, std::int64_t value);
[[nodiscard]] std::int64_t get_varint_signed(core::ByteReader& r) noexcept;

/// Serialize one record.
void encode_record(const flow::FlowRecord& record, core::ByteWriter& w);

/// Decode one record. Errors: kEndOfStream when the reader was already
/// exhausted, kCorrupt on malformed bytes. (Result's optional-like surface
/// keeps `if (auto rec = decode_record(r))` call sites working.)
[[nodiscard]] core::Result<flow::FlowRecord> decode_record(core::ByteReader& r);

/// CSV header matching FlowRecord::to_csv_row().
[[nodiscard]] std::string_view csv_header() noexcept;

}  // namespace edgewatch::storage
