#include "storage/fault_injection.hpp"

#include <vector>

#include "core/rng.hpp"

namespace edgewatch::storage {

std::string_view to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kShortWrite: return "short-write";
    case FaultKind::kNoSpace: return "no-space";
    case FaultKind::kBitFlip: return "bit-flip";
    case FaultKind::kCrashAtOffset: return "crash-at-offset";
  }
  return "unknown";
}

FaultPlan FaultPlan::seeded(FaultKind kind, std::uint64_t seed, std::uint64_t lo,
                            std::uint64_t hi) noexcept {
  core::SplitMix64 sm(seed);
  FaultPlan plan;
  plan.kind = kind;
  const std::uint64_t span = hi > lo ? hi - lo : 1;
  plan.at_byte = lo + sm.next() % span;
  plan.bit = static_cast<std::uint32_t>(sm.next() % 8);
  return plan;
}

core::Result<void> FaultyFile::open_at(const std::filesystem::path& path,
                                       std::uint64_t offset) {
  if (dead_) return core::Errc::kCrashed;
  return inner_->open_at(path, offset);
}

core::Result<void> FaultyFile::write(std::span<const std::byte> data) {
  if (dead_) return core::Errc::kCrashed;
  const std::uint64_t begin = stream_pos_;
  const std::uint64_t end = begin + data.size();
  stream_pos_ = end;

  if (fired_ || plan_.kind == FaultKind::kNone || plan_.at_byte >= end ||
      plan_.at_byte < begin) {
    return inner_->write(data);
  }

  const std::size_t hit = static_cast<std::size_t>(plan_.at_byte - begin);
  fired_ = true;
  switch (plan_.kind) {
    case FaultKind::kBitFlip: {
      std::vector<std::byte> mutated(data.begin(), data.end());
      mutated[hit] ^= static_cast<std::byte>(1u << plan_.bit);
      return inner_->write(mutated);
    }
    case FaultKind::kShortWrite:
    case FaultKind::kNoSpace: {
      // The prefix reaches the disk; the syscall then fails.
      if (auto r = inner_->write(data.first(hit)); !r) return r;
      return plan_.kind == FaultKind::kNoSpace ? core::Errc::kNoSpace
                                               : core::Errc::kIoError;
    }
    case FaultKind::kCrashAtOffset: {
      (void)inner_->write(data.first(hit));
      (void)inner_->sync();  // what made it to the fd is on disk
      dead_ = true;
      return core::Errc::kCrashed;
    }
    case FaultKind::kNone: break;
  }
  return inner_->write(data);
}

core::Result<void> FaultyFile::sync() {
  if (dead_) return core::Errc::kCrashed;
  if (fired_ && plan_.kind == FaultKind::kNoSpace) return core::Errc::kNoSpace;
  return inner_->sync();
}

core::Result<void> FaultyFile::truncate(std::uint64_t size) {
  if (dead_) return core::Errc::kCrashed;  // nobody left to roll back
  return inner_->truncate(size);
}

core::Result<void> FaultyFile::close() {
  if (dead_) return core::Errc::kCrashed;
  return inner_->close();
}

std::uint64_t FaultyFile::bytes_written() const noexcept { return inner_->bytes_written(); }

FileFactory FaultyFile::factory_once(FaultPlan plan) {
  auto used = std::make_shared<bool>(false);
  return [plan, used]() -> std::unique_ptr<WritableFile> {
    if (*used) return make_posix_file();
    *used = true;
    return std::make_unique<FaultyFile>(make_posix_file(), plan);
  };
}

}  // namespace edgewatch::storage
