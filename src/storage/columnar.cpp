#include "storage/columnar.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "core/flat_hash_map.hpp"
#include "core/hash.hpp"
#include "storage/codec.hpp"
#include "storage/compress.hpp"

namespace edgewatch::storage {

namespace {

// Fixed column schema of layout v1. Every column id below must appear
// exactly once in a block's segment directory; unknown ids are corruption.
enum Column : std::uint8_t {
  kColTs = 0,          // zigzag delta chain of first_packet µs
  kColDur = 1,         // zigzag last−first (mirrors the v2 field exactly)
  kColService = 2,     // u8 dict codes into the service dictionary
  kColProto = 3,       // u8 raw TransportProto values
  kColAccess = 4,      // u8
  kColFlags = 5,       // u8 handshake | close_reason<<1 (v2 flag byte)
  kColL7 = 6,          // u8
  kColWeb = 7,         // u8
  kColNameSource = 8,  // u8
  kColClientPort = 9,  // u16le fixed
  kColServerPort = 10, // varint
  kColClientIp = 11,   // u32le fixed
  kColServerIp = 12,   // u32le fixed
  kColUpPkts = 13,     // varint … through kColDnOoo
  kColUpBytes = 14,
  kColUpHdr = 15,
  kColUpRetx = 16,
  kColUpOoo = 17,
  kColDnPkts = 18,
  kColDnBytes = 19,
  kColDnHdr = 20,
  kColDnRetx = 21,
  kColDnOoo = 22,
  kColRttSamples = 23,   // varint
  kColRttMin = 24,       // zigzag, dense over rows with samples > 0
  kColRttMaxDelta = 25,  // zigzag, dense
  kColRttAvgDelta = 26,  // zigzag, dense
  kColHttpStatus = 27,   // varint
  kColNameDict = 28,     // varint count | count × (varint len, bytes)
  kColNameIdx = 29,      // varint dict index per row
  kColCtDict = 30,
  kColCtIdx = 31,
};
constexpr std::size_t kColumnCount = 32;
static_assert(kColumnCount == kColumnSegmentCount,
              "kColumnSegmentCount (columnar.hpp) must track the column enum");

/// Mirror of decode_columnar_block's projection gates, kept adjacent to the
/// column enum so a new column fails the static_assert below instead of
/// silently skewing the skipped-segments metric.
constexpr unsigned segments_for_fields_impl(std::uint32_t fields) noexcept {
  const auto want = [fields](std::uint32_t bit) { return (fields & bit) != 0 ? 1u : 0u; };
  unsigned n = 4;  // always: ts, service, proto, server_ip (filter/zone columns)
  n += want(scan_fields::kLastPacket);
  n += want(scan_fields::kAccess) + want(scan_fields::kCloseState) + want(scan_fields::kL7) +
       want(scan_fields::kWeb) + want(scan_fields::kNameSource);
  n += want(scan_fields::kClientPort) + want(scan_fields::kClientIp) +
       want(scan_fields::kServerPort);
  n += want(scan_fields::kUpPackets) + want(scan_fields::kUpBytes) +
       want(scan_fields::kUpWireBytes) + 2 * want(scan_fields::kUpQuality);
  n += want(scan_fields::kDownPackets) + want(scan_fields::kDownBytes) +
       want(scan_fields::kDownWireBytes) + 2 * want(scan_fields::kDownQuality);
  n += want(scan_fields::kHttpStatus);
  n += 2 * want(scan_fields::kRttMin | scan_fields::kRttSpread);  // samples + min
  n += 2 * want(scan_fields::kRttSpread);                         // max/avg deltas
  n += 2 * want(scan_fields::kServerName);                        // dict + indexes
  n += 2 * want(scan_fields::kContentType);                       // dict + indexes
  return n;
}
static_assert(segments_for_fields_impl(scan_fields::kAll) == kColumnCount,
              "full projection must account for every column segment");
static_assert(segments_for_fields_impl(0) == 4, "filter columns always decode");

// u8 column payloads carry a 1-byte encoding tag: most enum columns are
// single-valued across a whole block (one access tech per vantage, one
// protocol per service's blocks once data clusters), so a constant column
// costs 2 bytes instead of 4096.
constexpr std::uint8_t kU8Constant = 0;
constexpr std::uint8_t kU8Plain = 1;

constexpr std::size_t kZoneMapSize = 36;
constexpr std::size_t kMaxNameLen = 4096;  // decode_record's sanity bounds
constexpr std::size_t kMaxCtLen = 256;

void put_zone_map(core::ByteWriter& w, const ZoneMap& z) {
  w.u64le(static_cast<std::uint64_t>(z.ts_min_us));
  w.u64le(static_cast<std::uint64_t>(z.ts_max_us));
  w.u32le(z.service_bitmap);
  w.u32le(z.proto_bitmap);
  w.u32le(z.server_ip_min);
  w.u32le(z.server_ip_max);
  w.u32le(z.record_count);
}

[[nodiscard]] ZoneMap get_zone_map(core::ByteReader& r) noexcept {
  ZoneMap z;
  z.ts_min_us = static_cast<std::int64_t>(r.u64le());
  z.ts_max_us = static_cast<std::int64_t>(r.u64le());
  z.service_bitmap = r.u32le();
  z.proto_bitmap = r.u32le();
  z.server_ip_min = r.u32le();
  z.server_ip_max = r.u32le();
  z.record_count = r.u32le();
  return z;
}

// ---- encode helpers ------------------------------------------------------

struct SegmentSink {
  std::vector<std::byte> payloads;
  std::vector<std::pair<std::uint8_t, std::uint32_t>> directory;  // id → len

  void add(std::uint8_t id, std::span<const std::byte> stream) {
    auto compressed = compress_block_lazy(stream);
    directory.emplace_back(id, static_cast<std::uint32_t>(compressed.size()));
    payloads.insert(payloads.end(), compressed.begin(), compressed.end());
  }
};

void encode_u8_column(SegmentSink& sink, std::uint8_t id, std::span<const std::uint8_t> values) {
  core::ByteWriter w(values.size() + 1);
  const bool constant =
      !values.empty() &&
      std::all_of(values.begin(), values.end(), [&](std::uint8_t v) { return v == values[0]; });
  if (constant) {
    w.u8(kU8Constant);
    w.u8(values[0]);
  } else {
    w.u8(kU8Plain);
    for (const auto v : values) w.u8(v);
  }
  sink.add(id, w.view());
}

template <typename Get>
void encode_varint_column(SegmentSink& sink, std::uint8_t id, std::size_t n, Get&& get) {
  core::ByteWriter w(n * 2);
  for (std::size_t i = 0; i < n; ++i) put_varint(w, get(i));
  sink.add(id, w.view());
}

// ---- decode helpers ------------------------------------------------------

struct SegmentTable {
  std::array<std::span<const std::byte>, kColumnCount> seg{};
  std::array<bool, kColumnCount> present{};

  [[nodiscard]] bool complete() const noexcept {
    return std::all_of(present.begin(), present.end(), [](bool b) { return b; });
  }
};

[[nodiscard]] bool decode_u8_column(std::span<const std::byte> payload,
                                    std::vector<std::byte>& scratch, std::size_t n,
                                    std::vector<std::uint8_t>& out) {
  const auto stream = decompress_block_view(payload, scratch);
  if (!stream) return false;
  if (stream->empty()) return false;
  const auto enc = std::to_integer<std::uint8_t>((*stream)[0]);
  if (enc == kU8Constant) {
    if (stream->size() != 2) return false;
    out.assign(n, std::to_integer<std::uint8_t>((*stream)[1]));
    return true;
  }
  if (enc != kU8Plain || stream->size() != 1 + n) return false;
  out.resize(n);
  std::memcpy(out.data(), stream->data() + 1, n);
  return true;
}

template <typename T, typename Out>
[[nodiscard]] bool decode_fixed_column(std::span<const std::byte> payload,
                                       std::vector<std::byte>& scratch, std::size_t n,
                                       std::vector<Out>& out) {
  static_assert(sizeof(T) == sizeof(Out));
  const auto stream = decompress_block_view(payload, scratch);
  if (!stream || stream->size() != n * sizeof(T)) return false;
  out.resize(n);
  if (n != 0) std::memcpy(out.data(), stream->data(), n * sizeof(T));
  return true;
}

[[nodiscard]] bool decode_varint_column(std::span<const std::byte> payload,
                                        std::vector<std::byte>& scratch, std::size_t n,
                                        std::vector<std::uint64_t>& out) {
  const auto stream = decompress_block_view(payload, scratch);
  if (!stream) return false;
  out.resize(n);
  VarintCursor c(*stream);
#ifdef EW_VARINT_BMI2
  if (varint_batch_bmi2_available()) {
    auto* d = out.data();
    return get_varint_batch_bmi2(c, n, [d](std::size_t i, std::uint64_t v) { d[i] = v; }) &&
           c.exhausted();
  }
#endif
  return get_varint_batch(c, out.data(), n) && c.exhausted();
}

/// Zigzag batch: decode n varints into `out` (reinterpreted as unsigned —
/// signed/unsigned aliasing is well-defined), then unmap in place. The BMI2
/// path fuses the unmap into the decode's value sink instead of
/// re-traversing the output.
[[nodiscard]] bool decode_zigzag_column_into(std::span<const std::byte> stream, std::size_t n,
                                             std::int64_t* out) {
  VarintCursor c(stream);
#ifdef EW_VARINT_BMI2
  if (varint_batch_bmi2_available()) {
    return get_varint_batch_bmi2(c, n,
                                 [out](std::size_t i, std::uint64_t z) {
                                   out[i] = static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
                                 }) &&
           c.exhausted();
  }
#endif
  auto* u = reinterpret_cast<std::uint64_t*>(out);
  if (!get_varint_batch(c, u, n) || !c.exhausted()) return false;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t z = u[i];
    out[i] = static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }
  return true;
}

/// Parse a string dictionary blob into views over `blob` (which receives
/// the decompressed bytes and must outlive the views).
[[nodiscard]] bool decode_string_dict(std::span<const std::byte> payload,
                                      std::vector<std::byte>& blob, std::size_t max_entries,
                                      std::size_t max_len, std::vector<std::string_view>& dict) {
  dict.clear();
  // The blob buffer doubles as the decompression target; a stored payload
  // is copied so views never dangle into per-block scratch.
  const auto view = decompress_block_view(payload, blob);
  if (!view) return false;
  if (view->data() != blob.data()) blob.assign(view->begin(), view->end());
  core::ByteReader r(std::span<const std::byte>{blob});
  const std::uint64_t count = get_varint(r);
  if (!r.ok() || count > max_entries) return false;
  dict.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t len = get_varint(r);
    if (!r.ok() || len > max_len) return false;
    const auto s = r.string(static_cast<std::size_t>(len));
    if (!r.ok()) return false;
    dict.push_back(s);
  }
  return r.remaining() == 0;
}

[[nodiscard]] bool decode_index_column(std::span<const std::byte> payload,
                                       std::vector<std::byte>& scratch,
                                       std::vector<std::uint64_t>& staging, std::size_t n,
                                       std::size_t dict_size, std::vector<std::uint32_t>& out) {
  const auto stream = decompress_block_view(payload, scratch);
  if (!stream) return false;
  VarintCursor c(*stream);
  out.resize(n);
#ifdef EW_VARINT_BMI2
  if (varint_batch_bmi2_available()) {
    // The bound check accumulates instead of early-returning so the sink
    // stays branch-free; one out-of-range index still fails the column.
    std::uint64_t bad = 0;
    auto* d = out.data();
    const auto ok = get_varint_batch_bmi2(c, n, [d, dict_size, &bad](std::size_t i,
                                                                     std::uint64_t v) {
      bad |= static_cast<std::uint64_t>(v >= dict_size);
      d[i] = static_cast<std::uint32_t>(v);
    });
    return ok && c.exhausted() && bad == 0;
  }
#endif
  staging.resize(n);
  if (!get_varint_batch(c, staging.data(), n) || !c.exhausted()) return false;
  for (std::size_t i = 0; i < n; ++i) {
    if (staging[i] >= dict_size) return false;
    out[i] = static_cast<std::uint32_t>(staging[i]);
  }
  return true;
}

}  // namespace

bool ScanPredicate::matches(const flow::FlowRecord& record) const {
  const std::int64_t ts = record.first_packet.micros();
  if (ts < time_min_us || ts > time_max_us) return false;
  if (proto_mask != 0 && (proto_mask & (1u << proto_bit(record.proto))) == 0) return false;
  if (service_mask != 0) {
    const auto& cat = catalog != nullptr ? *catalog : services::ServiceCatalog::standard();
    const auto id = cat.classify_flow(record.l7, record.server_name);
    if ((service_mask & (1u << static_cast<unsigned>(id))) == 0) return false;
  }
  return true;
}

unsigned segments_for_fields(std::uint32_t fields) noexcept {
  return segments_for_fields_impl(fields);
}

bool is_columnar_block(std::span<const std::byte> body) noexcept {
  return !body.empty() && std::to_integer<std::uint8_t>(body[0]) == kColumnarTag;
}

std::optional<ZoneMap> peek_zone_map(std::span<const std::byte> body) noexcept {
  core::ByteReader r(body);
  if (r.u8() != kColumnarTag) return std::nullopt;
  if (r.u8() != kColumnarLayout) return std::nullopt;
  const ZoneMap z = get_zone_map(r);
  if (!r.ok() || z.record_count > kMaxColumnarRecords) return std::nullopt;
  return z;
}

void encode_columnar_block(std::span<const flow::FlowRecord> records,
                           const services::ServiceCatalog& catalog, core::ByteWriter& out) {
  const std::size_t n = records.size();

  // Pass 1: service ids, the service dictionary (first-appearance order)
  // and the zone map.
  ZoneMap zone;
  zone.record_count = static_cast<std::uint32_t>(n);
  std::vector<std::uint8_t> service_code(n);
  std::vector<std::uint8_t> dict;  // dict code → global ServiceId
  std::array<std::uint8_t, services::kServiceCount> code_of{};
  code_of.fill(0xff);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& r = records[i];
    const auto sid =
        static_cast<std::uint8_t>(catalog.classify_flow(r.l7, r.server_name));
    if (code_of[sid] == 0xff) {
      code_of[sid] = static_cast<std::uint8_t>(dict.size());
      dict.push_back(sid);
    }
    service_code[i] = code_of[sid];
    zone.service_bitmap |= 1u << sid;
    zone.proto_bitmap |= 1u << proto_bit(r.proto);
    const std::int64_t ts = r.first_packet.micros();
    const std::uint32_t sip = r.server_ip.value();
    if (i == 0) {
      zone.ts_min_us = zone.ts_max_us = ts;
      zone.server_ip_min = zone.server_ip_max = sip;
    } else {
      zone.ts_min_us = std::min(zone.ts_min_us, ts);
      zone.ts_max_us = std::max(zone.ts_max_us, ts);
      zone.server_ip_min = std::min(zone.server_ip_min, sip);
      zone.server_ip_max = std::max(zone.server_ip_max, sip);
    }
  }

  // Pass 2: transpose into column streams, each with its own compression
  // envelope so similar bytes sit together.
  SegmentSink sink;
  {
    core::ByteWriter w(n * 3);
    std::int64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t ts = records[i].first_packet.micros();
      put_varint_signed(w, ts - prev);
      prev = ts;
    }
    sink.add(kColTs, w.view());
  }
  {
    core::ByteWriter w(n * 2);
    for (const auto& r : records) put_varint_signed(w, r.last_packet - r.first_packet);
    sink.add(kColDur, w.view());
  }
  encode_u8_column(sink, kColService, service_code);
  {
    std::vector<std::uint8_t> tmp(n);
    const auto u8col = [&](std::uint8_t id, auto&& get) {
      for (std::size_t i = 0; i < n; ++i) tmp[i] = get(records[i]);
      encode_u8_column(sink, id, tmp);
    };
    u8col(kColProto, [](const auto& r) { return static_cast<std::uint8_t>(r.proto); });
    u8col(kColAccess, [](const auto& r) { return static_cast<std::uint8_t>(r.access); });
    u8col(kColFlags, [](const auto& r) {
      return static_cast<std::uint8_t>((r.handshake_completed ? 1 : 0) |
                                       (static_cast<std::uint8_t>(r.close_reason) << 1));
    });
    u8col(kColL7, [](const auto& r) { return static_cast<std::uint8_t>(r.l7); });
    u8col(kColWeb, [](const auto& r) { return static_cast<std::uint8_t>(r.web); });
    u8col(kColNameSource, [](const auto& r) { return static_cast<std::uint8_t>(r.name_source); });
  }
  {
    core::ByteWriter w(n * 2);
    for (const auto& r : records) {
      w.u8(static_cast<std::uint8_t>(r.client_port & 0xff));
      w.u8(static_cast<std::uint8_t>(r.client_port >> 8));
    }
    sink.add(kColClientPort, w.view());
  }
  encode_varint_column(sink, kColServerPort, n, [&](std::size_t i) { return records[i].server_port; });
  {
    core::ByteWriter w(n * 4);
    for (const auto& r : records) w.u32le(r.client_ip.value());
    sink.add(kColClientIp, w.view());
  }
  {
    core::ByteWriter w(n * 4);
    for (const auto& r : records) w.u32le(r.server_ip.value());
    sink.add(kColServerIp, w.view());
  }
  const auto dir_col = [&](std::uint8_t id, auto&& get) {
    encode_varint_column(sink, id, n, [&](std::size_t i) { return get(records[i]); });
  };
  dir_col(kColUpPkts, [](const auto& r) { return r.up.packets; });
  dir_col(kColUpBytes, [](const auto& r) { return r.up.bytes; });
  dir_col(kColUpHdr, [](const auto& r) { return r.up.bytes_with_hdr; });
  dir_col(kColUpRetx, [](const auto& r) { return std::uint64_t{r.up.retransmits}; });
  dir_col(kColUpOoo, [](const auto& r) { return std::uint64_t{r.up.out_of_order}; });
  dir_col(kColDnPkts, [](const auto& r) { return r.down.packets; });
  dir_col(kColDnBytes, [](const auto& r) { return r.down.bytes; });
  dir_col(kColDnHdr, [](const auto& r) { return r.down.bytes_with_hdr; });
  dir_col(kColDnRetx, [](const auto& r) { return std::uint64_t{r.down.retransmits}; });
  dir_col(kColDnOoo, [](const auto& r) { return std::uint64_t{r.down.out_of_order}; });
  dir_col(kColRttSamples, [](const auto& r) { return std::uint64_t{r.rtt.samples}; });
  {
    // RTT stats exist only when samples > 0: dense sub-columns over those
    // rows, in row order (the row-aligned expansion at decode replays the
    // same order).
    core::ByteWriter wmin, wmax, wavg;
    for (const auto& r : records) {
      if (r.rtt.samples == 0) continue;
      put_varint_signed(wmin, r.rtt.min_us);
      put_varint_signed(wmax, r.rtt.max_us - r.rtt.min_us);
      put_varint_signed(wavg, static_cast<std::int64_t>(r.rtt.avg_us) - r.rtt.min_us);
    }
    sink.add(kColRttMin, wmin.view());
    sink.add(kColRttMaxDelta, wmax.view());
    sink.add(kColRttAvgDelta, wavg.view());
  }
  dir_col(kColHttpStatus, [](const auto& r) { return std::uint64_t{r.http_status}; });

  // String dictionaries (server_name, content_type), first-appearance order.
  const auto string_dict = [&](std::uint8_t dict_id, std::uint8_t idx_id, auto&& get) {
    core::FlatHashMap<std::string_view, std::uint32_t, core::StringHash> codes;
    core::ByteWriter entries;
    std::uint32_t count = 0;
    core::ByteWriter idx(n);
    for (const auto& r : records) {
      const std::string_view s = get(r);
      auto [it, inserted] = codes.try_emplace(s, count);
      if (inserted) {
        put_varint(entries, s.size());
        entries.string(s);
        ++count;
      }
      put_varint(idx, it->second);
    }
    core::ByteWriter blob(entries.size() + 4);
    put_varint(blob, count);
    blob.bytes(entries.view());
    sink.add(dict_id, blob.view());
    sink.add(idx_id, idx.view());
  };
  string_dict(kColNameDict, kColNameIdx,
              [](const auto& r) { return std::string_view{r.server_name}; });
  string_dict(kColCtDict, kColCtIdx,
              [](const auto& r) { return std::string_view{r.content_type}; });

  // Assemble: prefix | zone map | service dict | directory | payloads.
  out.u8(kColumnarTag);
  out.u8(kColumnarLayout);
  put_zone_map(out, zone);
  out.u8(static_cast<std::uint8_t>(dict.size()));
  for (const auto sid : dict) out.u8(sid);
  out.u8(static_cast<std::uint8_t>(sink.directory.size()));
  for (const auto& [id, len] : sink.directory) {
    out.u8(id);
    put_varint(out, len);
  }
  out.bytes(sink.payloads);
}

BlockDecodeStatus decode_columnar_block(std::span<const std::byte> body, ColumnScratch& s,
                                        const ScanPredicate* predicate,
                                        std::uint64_t& records_delivered,
                                        core::FunctionRef<void(const flow::FlowRecord&)> fn,
                                        std::uint32_t expected_records) {
  core::ByteReader r(body);
  if (r.u8() != kColumnarTag || r.u8() != kColumnarLayout) return BlockDecodeStatus::kCorrupt;
  const ZoneMap zone = get_zone_map(r);
  if (!r.ok() || zone.record_count > kMaxColumnarRecords) return BlockDecodeStatus::kCorrupt;
  if (expected_records != kAnyRecordCount && zone.record_count != expected_records) {
    return BlockDecodeStatus::kCorrupt;
  }
  const std::size_t n = zone.record_count;

  // Service dictionary: every entry must be a valid global ServiceId — a
  // "bad dictionary" is structural corruption, not a mapping to garbage.
  const std::uint8_t dict_size = r.u8();
  std::array<std::uint8_t, services::kServiceCount> dict{};
  if (dict_size > services::kServiceCount) return BlockDecodeStatus::kCorrupt;
  for (std::size_t i = 0; i < dict_size; ++i) {
    const std::uint8_t sid = r.u8();
    if (sid >= services::kServiceCount) return BlockDecodeStatus::kCorrupt;
    dict[i] = sid;
  }

  // Segment directory: layout v1 requires each column exactly once.
  SegmentTable segs;
  const std::uint8_t seg_count = r.u8();
  if (!r.ok() || seg_count != kColumnCount) return BlockDecodeStatus::kCorrupt;
  struct DirEntry {
    std::uint8_t id;
    std::uint32_t len;
  };
  std::array<DirEntry, kColumnCount> entries{};
  for (auto& e : entries) {
    e.id = r.u8();
    const std::uint64_t len = get_varint(r);
    if (!r.ok() || e.id >= kColumnCount || len > body.size()) return BlockDecodeStatus::kCorrupt;
    e.len = static_cast<std::uint32_t>(len);
  }
  for (const auto& e : entries) {
    if (segs.present[e.id]) return BlockDecodeStatus::kCorrupt;
    segs.seg[e.id] = r.bytes(e.len);
    segs.present[e.id] = true;
  }
  if (!r.ok() || r.remaining() != 0 || !segs.complete()) return BlockDecodeStatus::kCorrupt;

  bool zone_lied = false;

  // Filter columns first: timestamps, service, proto. When a predicate
  // selects nothing, the remaining 29 segments are never decompressed.
  {
    const auto stream = decompress_block_view(segs.seg[kColTs], s.seg);
    if (!stream) return BlockDecodeStatus::kCorrupt;
    s.ts.resize(n);
    if (!decode_zigzag_column_into(*stream, n, s.ts.data())) return BlockDecodeStatus::kCorrupt;
  }
  if (!decode_u8_column(segs.seg[kColService], s.seg, n, s.service) ||
      !decode_u8_column(segs.seg[kColProto], s.seg, n, s.proto)) {
    return BlockDecodeStatus::kCorrupt;
  }

  // One fused pass: undo the timestamp delta chain, resolve service dict
  // codes, and run the zone cross-check (advisory-never-authoritative —
  // every record must lie inside the zone that advertised the block). The
  // serial prefix-sum chain overlaps with the independent checks instead of
  // costing three separate traversals of the arrays.
  {
    std::int64_t prev = 0;
    std::uint32_t outside = 0;
    for (std::size_t i = 0; i < n; ++i) {
      prev += s.ts[i];
      s.ts[i] = prev;
      const std::uint8_t code = s.service[i];
      if (code >= dict_size) return BlockDecodeStatus::kCorrupt;
      const std::uint8_t sid = dict[code];  // dict code → global ServiceId
      s.service[i] = sid;
      outside |= static_cast<std::uint32_t>(prev < zone.ts_min_us) |
                 static_cast<std::uint32_t>(prev > zone.ts_max_us) |
                 (~zone.service_bitmap >> sid & 1u) |
                 (~zone.proto_bitmap >>
                      proto_bit(static_cast<core::TransportProto>(s.proto[i])) &
                  1u);
    }
    zone_lied = outside != 0;
  }

  // Row selection.
  const bool filtered = predicate != nullptr && !predicate->unrestricted();
  s.sel.clear();
  if (filtered) {
    for (std::size_t i = 0; i < n; ++i) {
      if (s.ts[i] < predicate->time_min_us || s.ts[i] > predicate->time_max_us) continue;
      if (predicate->service_mask != 0 &&
          (predicate->service_mask & (1u << s.service[i])) == 0) {
        continue;
      }
      if (predicate->proto_mask != 0 &&
          (predicate->proto_mask &
           (1u << proto_bit(static_cast<core::TransportProto>(s.proto[i])))) == 0) {
        continue;
      }
      s.sel.push_back(static_cast<std::uint32_t>(i));
    }
    if (s.sel.empty()) {
      return zone_lied ? BlockDecodeStatus::kZoneMapLied : BlockDecodeStatus::kOk;
    }
  }

  // Remaining columns, gated on the projection: a segment backing no
  // requested field is never decompressed or decoded (its bytes were still
  // CRC-verified with the rest of the frame).
  const std::uint32_t fields = predicate != nullptr ? predicate->fields : scan_fields::kAll;
  const auto want = [fields](std::uint32_t bit) noexcept { return (fields & bit) != 0; };
  const bool want_rtt = want(scan_fields::kRttMin | scan_fields::kRttSpread);
  const auto vcol = [&](Column id, std::vector<std::uint64_t>& out) {
    return decode_varint_column(segs.seg[id], s.seg, n, out);
  };
  if (want(scan_fields::kLastPacket)) {
    const auto stream = decompress_block_view(segs.seg[kColDur], s.seg);
    if (!stream) return BlockDecodeStatus::kCorrupt;
    s.dur.resize(n);
    if (!decode_zigzag_column_into(*stream, n, s.dur.data())) return BlockDecodeStatus::kCorrupt;
  }
  if ((want(scan_fields::kAccess) && !decode_u8_column(segs.seg[kColAccess], s.seg, n, s.access)) ||
      (want(scan_fields::kCloseState) &&
       !decode_u8_column(segs.seg[kColFlags], s.seg, n, s.flags)) ||
      (want(scan_fields::kL7) && !decode_u8_column(segs.seg[kColL7], s.seg, n, s.l7)) ||
      (want(scan_fields::kWeb) && !decode_u8_column(segs.seg[kColWeb], s.seg, n, s.web)) ||
      (want(scan_fields::kNameSource) &&
       !decode_u8_column(segs.seg[kColNameSource], s.seg, n, s.name_source))) {
    return BlockDecodeStatus::kCorrupt;
  }
  if ((want(scan_fields::kClientPort) &&
       !decode_fixed_column<std::uint16_t>(segs.seg[kColClientPort], s.seg, n, s.cport)) ||
      (want(scan_fields::kClientIp) &&
       !decode_fixed_column<std::uint32_t>(segs.seg[kColClientIp], s.seg, n, s.cip)) ||
      !decode_fixed_column<std::uint32_t>(segs.seg[kColServerIp], s.seg, n, s.sip)) {
    return BlockDecodeStatus::kCorrupt;
  }
  // Fixed-width columns are little-endian on the wire and memcpy'd in;
  // normalize on big-endian hosts.
  if constexpr (std::endian::native == std::endian::big) {
    for (auto& v : s.cport) v = static_cast<std::uint16_t>((v >> 8) | (v << 8));
    for (auto* col : {&s.cip, &s.sip}) {
      for (auto& v : *col) v = __builtin_bswap32(v);
    }
  }
  if (want(scan_fields::kServerPort)) {
    if (!vcol(kColServerPort, s.u64_tmp)) return BlockDecodeStatus::kCorrupt;
    s.sport.resize(n);
    for (std::size_t i = 0; i < n; ++i) s.sport[i] = static_cast<std::uint16_t>(s.u64_tmp[i]);
  }
  if ((want(scan_fields::kUpPackets) && !vcol(kColUpPkts, s.up_pkts)) ||
      (want(scan_fields::kUpBytes) && !vcol(kColUpBytes, s.up_bytes)) ||
      (want(scan_fields::kUpWireBytes) && !vcol(kColUpHdr, s.up_hdr)) ||
      (want(scan_fields::kUpQuality) &&
       (!vcol(kColUpRetx, s.up_retx) || !vcol(kColUpOoo, s.up_ooo))) ||
      (want(scan_fields::kDownPackets) && !vcol(kColDnPkts, s.dn_pkts)) ||
      (want(scan_fields::kDownBytes) && !vcol(kColDnBytes, s.dn_bytes)) ||
      (want(scan_fields::kDownWireBytes) && !vcol(kColDnHdr, s.dn_hdr)) ||
      (want(scan_fields::kDownQuality) &&
       (!vcol(kColDnRetx, s.dn_retx) || !vcol(kColDnOoo, s.dn_ooo))) ||
      (want(scan_fields::kHttpStatus) && !vcol(kColHttpStatus, s.http_status))) {
    return BlockDecodeStatus::kCorrupt;
  }
  if (want_rtt) {
    if (!vcol(kColRttSamples, s.rtt_samples)) return BlockDecodeStatus::kCorrupt;
    // Row-aligned expansion of the dense RTT sub-columns: batch-decode the
    // dense stream (one value per row with samples > 0), then scatter.
    std::size_t rtt_rows = 0;
    for (std::size_t i = 0; i < n; ++i) rtt_rows += s.rtt_samples[i] > 0 ? 1 : 0;
    const auto dense_zigzag = [&](Column id, std::vector<std::int64_t>& col) {
      const auto stream = decompress_block_view(segs.seg[id], s.seg);
      if (!stream) return false;
      s.u64_tmp.resize(rtt_rows);
      auto* dense = reinterpret_cast<std::int64_t*>(s.u64_tmp.data());
      if (!decode_zigzag_column_into(*stream, rtt_rows, dense)) return false;
      col.resize(n);
      std::size_t k = 0;
      for (std::size_t i = 0; i < n; ++i) col[i] = s.rtt_samples[i] > 0 ? dense[k++] : 0;
      return true;
    };
    if (!dense_zigzag(kColRttMin, s.rtt_min)) return BlockDecodeStatus::kCorrupt;
    if (want(scan_fields::kRttSpread) &&
        (!dense_zigzag(kColRttMaxDelta, s.rtt_max_delta) ||
         !dense_zigzag(kColRttAvgDelta, s.rtt_avg_delta))) {
      return BlockDecodeStatus::kCorrupt;
    }
  }
  if (want(scan_fields::kServerName) &&
      (!decode_string_dict(segs.seg[kColNameDict], s.name_blob, n, kMaxNameLen, s.name_dict) ||
       !decode_index_column(segs.seg[kColNameIdx], s.seg, s.u64_tmp, n, s.name_dict.size(),
                            s.name_idx))) {
    return BlockDecodeStatus::kCorrupt;
  }
  if (want(scan_fields::kContentType) &&
      (!decode_string_dict(segs.seg[kColCtDict], s.ct_blob, n, kMaxCtLen, s.ct_dict) ||
       !decode_index_column(segs.seg[kColCtIdx], s.seg, s.u64_tmp, n, s.ct_dict.size(),
                            s.ct_idx))) {
    return BlockDecodeStatus::kCorrupt;
  }

  // Server-IP zone check needs the decoded column; done here so a filtered
  // scan that selected nothing never pays for it (fsck's full decode does).
  if (!zone_lied) {
    for (std::size_t i = 0; i < n; ++i) {
      if (s.sip[i] < zone.server_ip_min || s.sip[i] > zone.server_ip_max) {
        zone_lied = true;
        break;
      }
    }
  }

  // Emit rows through the one reused record. Projected fields are assigned
  // per row; under a narrowed projection, the unprojected ones are
  // value-initialized once per block first — the record object carries state
  // between rows and blocks, so stale values must be cleared, but clearing
  // per row would charge every scan for fields nobody asked for.
  //
  // The whole tail is generic over the projection test so the dispatch below
  // can instantiate it with a compile-time mask for the hot presets: every
  // `wantp()` folds to a constant, leaving the per-row loop with no
  // projection branches at all. ~20 tests per row are individually cheap but
  // this loop runs once per record of every scan.
  const auto emit_rows = [&](auto wantp) {
    const bool wrtt = wantp(scan_fields::kRttMin | scan_fields::kRttSpread);
    {
      flow::FlowRecord& rec = s.rec;
      if (!wantp(scan_fields::kLastPacket)) rec.last_packet = core::Timestamp{};
      if (!wantp(scan_fields::kClientIp)) rec.client_ip = core::IPv4Address{};
      if (!wantp(scan_fields::kClientPort)) rec.client_port = 0;
      if (!wantp(scan_fields::kServerPort)) rec.server_port = 0;
      if (!wantp(scan_fields::kAccess)) rec.access = flow::AccessTech{};
      if (!wantp(scan_fields::kCloseState)) {
        rec.handshake_completed = false;
        rec.close_reason = flow::FlowCloseReason{};
      }
      if (!wantp(scan_fields::kUpPackets)) rec.up.packets = 0;
      if (!wantp(scan_fields::kUpBytes)) rec.up.bytes = 0;
      if (!wantp(scan_fields::kUpWireBytes)) rec.up.bytes_with_hdr = 0;
      if (!wantp(scan_fields::kUpQuality)) rec.up.retransmits = rec.up.out_of_order = 0;
      if (!wantp(scan_fields::kDownPackets)) rec.down.packets = 0;
      if (!wantp(scan_fields::kDownBytes)) rec.down.bytes = 0;
      if (!wantp(scan_fields::kDownWireBytes)) rec.down.bytes_with_hdr = 0;
      if (!wantp(scan_fields::kDownQuality)) rec.down.retransmits = rec.down.out_of_order = 0;
      if (!wrtt) rec.rtt = flow::RttStats{};
      if (!wantp(scan_fields::kRttSpread)) {
        rec.rtt.max_us = 0;
        rec.rtt.avg_us = 0;
      }
      if (!wantp(scan_fields::kL7)) rec.l7 = dpi::L7Protocol{};
      if (!wantp(scan_fields::kWeb)) rec.web = dpi::WebProtocol{};
      if (!wantp(scan_fields::kNameSource)) rec.name_source = flow::NameSource{};
      if (!wantp(scan_fields::kServerName)) rec.server_name.clear();
      if (!wantp(scan_fields::kHttpStatus)) rec.http_status = 0;
      if (!wantp(scan_fields::kContentType)) rec.content_type.clear();
      rec.ingest_seq = 0;  // not stored in v3; always zero on the scan path
    }
    // The dictionary columns repeat heavily (one hostname serves many
    // flows), so the emit loop only re-assigns a string when the row's dict
    // index differs from the previously emitted row's. Sentinel resets per
    // block: a new block means a new dictionary, so index equality across
    // blocks proves nothing.
    std::uint32_t last_name_idx = 0xffffffffu;
    std::uint32_t last_ct_idx = 0xffffffffu;
    const auto emit = [&](std::size_t i) {
      flow::FlowRecord& rec = s.rec;
      if (wantp(scan_fields::kClientIp)) rec.client_ip = core::IPv4Address{s.cip[i]};
      rec.server_ip = core::IPv4Address{s.sip[i]};
      if (wantp(scan_fields::kClientPort)) rec.client_port = s.cport[i];
      if (wantp(scan_fields::kServerPort)) rec.server_port = s.sport[i];
      rec.proto = static_cast<core::TransportProto>(s.proto[i]);
      if (wantp(scan_fields::kAccess)) rec.access = static_cast<flow::AccessTech>(s.access[i]);
      rec.first_packet = core::Timestamp{s.ts[i]};
      if (wantp(scan_fields::kLastPacket)) rec.last_packet = rec.first_packet + s.dur[i];
      if (wantp(scan_fields::kUpPackets)) rec.up.packets = s.up_pkts[i];
      if (wantp(scan_fields::kUpBytes)) rec.up.bytes = s.up_bytes[i];
      if (wantp(scan_fields::kUpWireBytes)) rec.up.bytes_with_hdr = s.up_hdr[i];
      if (wantp(scan_fields::kUpQuality)) {
        rec.up.retransmits = static_cast<std::uint32_t>(s.up_retx[i]);
        rec.up.out_of_order = static_cast<std::uint32_t>(s.up_ooo[i]);
      }
      if (wantp(scan_fields::kDownPackets)) rec.down.packets = s.dn_pkts[i];
      if (wantp(scan_fields::kDownBytes)) rec.down.bytes = s.dn_bytes[i];
      if (wantp(scan_fields::kDownWireBytes)) rec.down.bytes_with_hdr = s.dn_hdr[i];
      if (wantp(scan_fields::kDownQuality)) {
        rec.down.retransmits = static_cast<std::uint32_t>(s.dn_retx[i]);
        rec.down.out_of_order = static_cast<std::uint32_t>(s.dn_ooo[i]);
      }
      if (wantp(scan_fields::kCloseState)) {
        rec.handshake_completed = (s.flags[i] & 1) != 0;
        rec.close_reason = static_cast<flow::FlowCloseReason>(s.flags[i] >> 1);
      }
      if (wrtt) {
        rec.rtt.samples = static_cast<std::uint32_t>(s.rtt_samples[i]);
        rec.rtt.min_us = rec.rtt.samples > 0 ? s.rtt_min[i] : 0;
        if (wantp(scan_fields::kRttSpread)) {
          if (rec.rtt.samples > 0) {
            rec.rtt.max_us = s.rtt_min[i] + s.rtt_max_delta[i];
            rec.rtt.avg_us = static_cast<double>(s.rtt_min[i] + s.rtt_avg_delta[i]);
          } else {
            rec.rtt.max_us = 0;
            rec.rtt.avg_us = 0;
          }
        }
      }
      if (wantp(scan_fields::kL7)) rec.l7 = static_cast<dpi::L7Protocol>(s.l7[i]);
      if (wantp(scan_fields::kWeb)) rec.web = static_cast<dpi::WebProtocol>(s.web[i]);
      if (wantp(scan_fields::kNameSource)) {
        rec.name_source = static_cast<flow::NameSource>(s.name_source[i]);
      }
      if (wantp(scan_fields::kServerName) && s.name_idx[i] != last_name_idx) {
        last_name_idx = s.name_idx[i];
        rec.server_name.assign(s.name_dict[last_name_idx]);
      }
      if (wantp(scan_fields::kHttpStatus)) {
        rec.http_status = static_cast<std::uint16_t>(s.http_status[i]);
      }
      if (wantp(scan_fields::kContentType) && s.ct_idx[i] != last_ct_idx) {
        last_ct_idx = s.ct_idx[i];
        rec.content_type.assign(s.ct_dict[last_ct_idx]);
      }
      fn(rec);
      ++records_delivered;
    };
    if (filtered) {
      for (const auto i : s.sel) emit(i);
    } else {
      for (std::size_t i = 0; i < n; ++i) emit(i);
    }
  };
  if (fields == scan_fields::kAll) {
    emit_rows([](std::uint32_t) { return true; });
  } else if (fields == scan_fields::kDayAggregate) {
    emit_rows([](std::uint32_t bit) { return (scan_fields::kDayAggregate & bit) != 0; });
  } else {
    emit_rows([fields](std::uint32_t bit) { return (fields & bit) != 0; });
  }
  return zone_lied ? BlockDecodeStatus::kZoneMapLied : BlockDecodeStatus::kOk;
}

}  // namespace edgewatch::storage
