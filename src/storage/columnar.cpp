#include "storage/columnar.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <bit>
#include <limits>

#include "core/flat_hash_map.hpp"
#include "core/hash.hpp"
#include "storage/codec.hpp"
#include "storage/compress.hpp"

namespace edgewatch::storage {

namespace {

// Fixed column schema (layouts 1 and 2 share it). Every column id below must
// appear exactly once in a block's segment directory; unknown ids are
// corruption.
enum Column : std::uint8_t {
  kColTs = 0,          // zigzag delta chain of first_packet µs
  kColDur = 1,         // zigzag last−first (mirrors the v2 field exactly)
  kColService = 2,     // u8 dict codes into the service dictionary
  kColProto = 3,       // u8 raw TransportProto values
  kColAccess = 4,      // u8
  kColFlags = 5,       // u8 handshake | close_reason<<1 (v2 flag byte)
  kColL7 = 6,          // u8
  kColWeb = 7,         // u8
  kColNameSource = 8,  // u8
  kColClientPort = 9,  // layout 1: u16le fixed; layout 2: value segment
  kColServerPort = 10, // value segment
  kColClientIp = 11,   // layout 1: u32le fixed; layout 2: value segment
  kColServerIp = 12,   // layout 1: u32le fixed; layout 2: value segment
  kColUpPkts = 13,     // value segment … through kColDnOoo
  kColUpBytes = 14,
  kColUpHdr = 15,
  kColUpRetx = 16,
  kColUpOoo = 17,
  kColDnPkts = 18,
  kColDnBytes = 19,
  kColDnHdr = 20,
  kColDnRetx = 21,
  kColDnOoo = 22,
  kColRttSamples = 23,   // value segment
  kColRttMin = 24,       // zigzag, dense over rows with samples > 0
  kColRttMaxDelta = 25,  // zigzag, dense
  kColRttAvgDelta = 26,  // zigzag, dense
  kColHttpStatus = 27,   // value segment
  kColNameDict = 28,     // full: varint count | count × (varint len, bytes)
  kColNameIdx = 29,      // value segment: dict index per row
  kColCtDict = 30,
  kColCtIdx = 31,
};
constexpr std::size_t kColumnCount = 32;
static_assert(kColumnCount == kColumnSegmentCount,
              "kColumnSegmentCount (columnar.hpp) must track the column enum");

/// Mirror of decode_columnar_block's projection gates, kept adjacent to the
/// column enum so a new column fails the static_assert below instead of
/// silently skewing the skipped-segments metric.
constexpr unsigned segments_for_fields_impl(std::uint32_t fields) noexcept {
  const auto want = [fields](std::uint32_t bit) { return (fields & bit) != 0 ? 1u : 0u; };
  unsigned n = 4;  // always: ts, service, proto, server_ip (filter/zone columns)
  n += want(scan_fields::kLastPacket);
  n += want(scan_fields::kAccess) + want(scan_fields::kCloseState) + want(scan_fields::kL7) +
       want(scan_fields::kWeb) + want(scan_fields::kNameSource);
  n += want(scan_fields::kClientPort) + want(scan_fields::kClientIp) +
       want(scan_fields::kServerPort);
  n += want(scan_fields::kUpPackets) + want(scan_fields::kUpBytes) +
       want(scan_fields::kUpWireBytes) + 2 * want(scan_fields::kUpQuality);
  n += want(scan_fields::kDownPackets) + want(scan_fields::kDownBytes) +
       want(scan_fields::kDownWireBytes) + 2 * want(scan_fields::kDownQuality);
  n += want(scan_fields::kHttpStatus);
  n += 2 * want(scan_fields::kRttMin | scan_fields::kRttSpread);  // samples + min
  n += 2 * want(scan_fields::kRttSpread);                         // max/avg deltas
  n += 2 * want(scan_fields::kServerName);                        // dict + indexes
  n += 2 * want(scan_fields::kContentType);                       // dict + indexes
  return n;
}
static_assert(segments_for_fields_impl(scan_fields::kAll) == kColumnCount,
              "full projection must account for every column segment");
static_assert(segments_for_fields_impl(0) == 4, "filter columns always decode");

// u8 column payloads carry a 1-byte encoding tag: most enum columns are
// single-valued across a whole block (one access tech per vantage, one
// protocol per service's blocks once data clusters), so a constant column
// costs 2 bytes instead of 4096. Layout 2 adds a run-length variant for
// columns that cluster without being constant.
constexpr std::uint8_t kU8Constant = 0;
constexpr std::uint8_t kU8Plain = 1;
constexpr std::uint8_t kU8Rle = 2;  // (varint run_len | u8 value)*, layout 2 only

constexpr std::size_t kZoneMapSize = 36;
constexpr std::size_t kMaxNameLen = 4096;  // decode_record's sanity bounds
constexpr std::size_t kMaxCtLen = 256;

/// Hard cap on how many predecessor blocks a dictionary chain walk visits.
/// The encoder restarts chains every kDictChainInterval blocks, so a
/// truthful file never needs more than kDictChainInterval − 1 steps; the cap
/// only bounds adversarial link graphs.
constexpr std::size_t kMaxDictChainWalk = 64;

void put_zone_map(core::ByteWriter& w, const ZoneMap& z) {
  w.u64le(static_cast<std::uint64_t>(z.ts_min_us));
  w.u64le(static_cast<std::uint64_t>(z.ts_max_us));
  w.u32le(z.service_bitmap);
  w.u32le(z.proto_bitmap);
  w.u32le(z.server_ip_min);
  w.u32le(z.server_ip_max);
  w.u32le(z.record_count);
}

[[nodiscard]] ZoneMap get_zone_map(core::ByteReader& r) noexcept {
  ZoneMap z;
  z.ts_min_us = static_cast<std::int64_t>(r.u64le());
  z.ts_max_us = static_cast<std::int64_t>(r.u64le());
  z.service_bitmap = r.u32le();
  z.proto_bitmap = r.u32le();
  z.server_ip_min = r.u32le();
  z.server_ip_max = r.u32le();
  z.record_count = r.u32le();
  return z;
}

[[nodiscard]] constexpr unsigned varint_len(std::uint64_t v) noexcept {
  return (static_cast<unsigned>(std::bit_width(v | 1)) + 6) / 7;
}

[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

// ---- dictionary chain helpers --------------------------------------------
//
// A layout-2 delta link names its predecessor by the CRC-32C of that
// dictionary's *canonical full serialization* (varint count | per entry
// varint len | bytes) — computed over the resolved entries, never over the
// wire bytes, so a delta-coded and a full-coded predecessor key identically.

[[nodiscard]] std::uint32_t crc_varint(std::uint32_t crc, std::uint64_t v) noexcept {
  std::array<std::byte, 10> tmp;
  std::size_t k = 0;
  while (v >= 0x80) {
    tmp[k++] = static_cast<std::byte>((v & 0x7f) | 0x80);
    v >>= 7;
  }
  tmp[k++] = static_cast<std::byte>(v);
  return core::crc32c(std::span<const std::byte>{tmp.data(), k}, crc);
}

[[nodiscard]] std::uint32_t canonical_dict_crc(std::span<const std::string> dict) noexcept {
  std::uint32_t crc = crc_varint(0, dict.size());
  for (const auto& s : dict) {
    crc = crc_varint(crc, s.size());
    crc = core::crc32c({reinterpret_cast<const std::byte*>(s.data()), s.size()}, crc);
  }
  return crc;
}

/// Parse a full dictionary stream (varint count | entries) into owned
/// strings, reusing `out`'s string capacity (resize + assign).
[[nodiscard]] bool parse_full_dict(std::span<const std::byte> stream, std::size_t max_entries,
                                   std::size_t max_len, std::vector<std::string>& out) {
  core::ByteReader r(stream);
  const std::uint64_t count = get_varint(r);
  if (!r.ok() || count > max_entries) return false;
  out.resize(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t len = get_varint(r);
    if (!r.ok() || len > max_len) return false;
    const auto s = r.string(static_cast<std::size_t>(len));
    if (!r.ok()) return false;
    out[static_cast<std::size_t>(i)].assign(s);
  }
  return r.remaining() == 0;
}

/// Resolve a delta dictionary stream (u32le prev_crc | varint count |
/// entries; entry = varint 0 | varint len | bytes for a literal, varint k
/// for prev[k−1]) against `prev`, whose canonical CRC the caller asserts is
/// `prev_crc`. `out` must not alias `prev`.
[[nodiscard]] bool apply_dict_delta(std::span<const std::byte> stream,
                                    std::span<const std::string> prev, std::uint32_t prev_crc,
                                    std::size_t max_entries, std::size_t max_len,
                                    std::vector<std::string>& out) {
  core::ByteReader r(stream);
  const std::uint32_t embedded = r.u32le();
  if (!r.ok() || embedded != prev_crc) return false;
  const std::uint64_t count = get_varint(r);
  if (!r.ok() || count > max_entries) return false;
  out.resize(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t code = get_varint(r);
    if (!r.ok()) return false;
    if (code == 0) {
      const std::uint64_t len = get_varint(r);
      if (!r.ok() || len > max_len) return false;
      const auto s = r.string(static_cast<std::size_t>(len));
      if (!r.ok()) return false;
      out[static_cast<std::size_t>(i)].assign(s);
    } else {
      if (code - 1 >= prev.size()) return false;
      out[static_cast<std::size_t>(i)].assign(prev[static_cast<std::size_t>(code - 1)]);
    }
  }
  return r.remaining() == 0;
}

/// Minimal layout-2 header parse of a predecessor body: the payload and
/// delta bit of its `dict_col` segment. A predecessor that is not a valid
/// layout-2 block fails the walk — chains never legally cross into layout 1
/// or another append.
[[nodiscard]] bool locate_v2_dict_segment(std::span<const std::byte> body, std::uint8_t dict_col,
                                          std::span<const std::byte>& payload, bool& delta) {
  core::ByteReader r(body);
  if (r.u8() != kColumnarTag || r.u8() != kColumnarLayoutV2) return false;
  r.skip(kZoneMapSize);
  const std::uint8_t svc = r.u8();
  if (!r.ok() || svc > services::kServiceCount) return false;
  r.skip(svc);
  const std::uint8_t link = r.u8();
  if ((link & 0xfc) != 0) return false;
  const std::uint8_t seg_count = r.u8();
  if (!r.ok() || seg_count != kColumnCount) return false;
  std::array<std::uint32_t, kColumnCount> id_len{};
  std::array<std::uint8_t, kColumnCount> id_of{};
  for (std::size_t i = 0; i < kColumnCount; ++i) {
    id_of[i] = r.u8();
    const std::uint64_t len = get_varint(r);
    if (!r.ok() || id_of[i] >= kColumnCount || len > body.size()) return false;
    id_len[i] = static_cast<std::uint32_t>(len);
  }
  for (std::size_t i = 0; i < kColumnCount; ++i) {
    const auto seg = r.bytes(id_len[i]);
    if (!r.ok()) return false;
    if (id_of[i] == dict_col) {
      payload = seg;
      delta = dict_col == kColNameDict ? (link & 1) != 0 : (link & 2) != 0;
      return true;
    }
  }
  return false;
}

/// Random-access chain resolution: walk predecessors through the caller's
/// resolver until a full dictionary, then re-apply the deltas forward. The
/// result must hash to `want_crc` — a quarantined/reordered predecessor
/// produces a CRC mismatch and a clean failure, never a mis-resolved
/// dictionary. Cold path (sequential scans hit the ColumnScratch cache), so
/// local allocation is fine.
[[nodiscard]] bool resolve_prev_dict_via_walk(std::uint8_t dict_col, std::uint32_t want_crc,
                                              std::size_t max_len,
                                              const PrevBlockResolver& resolve,
                                              std::vector<std::string>& out) {
  struct Link {
    std::span<const std::byte> payload;
    bool delta;
  };
  std::vector<Link> links;
  for (std::size_t back = 1;; ++back) {
    if (back > kMaxDictChainWalk) return false;
    const auto body = resolve(back);
    if (body.empty()) return false;
    Link link;
    if (!locate_v2_dict_segment(body, dict_col, link.payload, link.delta)) return false;
    links.push_back(link);
    if (!link.delta) break;
  }
  std::vector<std::byte> seg_scratch;
  std::vector<std::string> prev, tmp;
  {
    const auto stream = decompress_block_view(links.back().payload, seg_scratch);
    if (!stream || !parse_full_dict(*stream, kMaxColumnarRecords, max_len, prev)) return false;
  }
  for (std::size_t i = links.size() - 1; i-- > 0;) {
    const auto stream = decompress_block_view(links[i].payload, seg_scratch);
    if (!stream) return false;
    const std::uint32_t prev_crc = canonical_dict_crc(prev);
    if (!apply_dict_delta(*stream, prev, prev_crc, kMaxColumnarRecords, max_len, tmp)) {
      return false;
    }
    prev.swap(tmp);
  }
  if (canonical_dict_crc(prev) != want_crc) return false;
  out.swap(prev);
  return true;
}

// ---- encode helpers ------------------------------------------------------

/// Appends segment envelopes to the scratch's payload accumulator, records
/// the directory, and tallies per-codec bytes for the obs counters.
struct SegmentSink {
  EncodeScratch& s;

  explicit SegmentSink(EncodeScratch& scratch) : s(scratch) {
    s.payloads.clear();
    s.directory.clear();
  }

  void add(std::uint8_t id, std::span<const std::byte> stream) {
    const std::size_t start = s.payloads.size();
    compress_block_lazy_append(stream, s.payloads, s.compress);
    const auto len = static_cast<std::uint32_t>(s.payloads.size() - start);
    s.directory.emplace_back(id, len);
    const auto scheme = std::to_integer<std::uint8_t>(s.payloads[start]);
    s.codec_bytes_in[scheme] += stream.size();
    s.codec_bytes_out[scheme] += len;
  }

  void add_values(std::uint8_t id, std::span<const std::uint64_t> values) {
    const auto r = compress_u64_segment(values, s.payloads, s.compress);
    s.directory.emplace_back(id, r.bytes_out);
    s.codec_bytes_in[r.scheme] += r.bytes_in;
    s.codec_bytes_out[r.scheme] += r.bytes_out;
  }
};

void encode_columnar_block_impl(std::span<const flow::FlowRecord> records,
                                const services::ServiceCatalog& catalog, core::ByteWriter& out,
                                EncodeScratch& es, const DictChainState* prev, const bool v2) {
  const std::size_t n = records.size();

  // Pass 1: service ids, the service dictionary (first-appearance order)
  // and the zone map. The service dictionary stays inline and full in both
  // layouts — at most kServiceCount+1 bytes, below the break-even of any
  // delta scheme.
  ZoneMap zone;
  zone.record_count = static_cast<std::uint32_t>(n);
  es.service_code.resize(n);
  std::array<std::uint8_t, services::kServiceCount> svc_dict{};
  std::uint8_t svc_count = 0;
  std::array<std::uint8_t, services::kServiceCount> code_of{};
  code_of.fill(0xff);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& r = records[i];
    const auto sid = static_cast<std::uint8_t>(catalog.classify_flow(r.l7, r.server_name));
    if (code_of[sid] == 0xff) {
      code_of[sid] = svc_count;
      svc_dict[svc_count++] = sid;
    }
    es.service_code[i] = code_of[sid];
    zone.service_bitmap |= 1u << sid;
    zone.proto_bitmap |= 1u << proto_bit(r.proto);
    const std::int64_t ts = r.first_packet.micros();
    const std::uint32_t sip = r.server_ip.value();
    if (i == 0) {
      zone.ts_min_us = zone.ts_max_us = ts;
      zone.server_ip_min = zone.server_ip_max = sip;
    } else {
      zone.ts_min_us = std::min(zone.ts_min_us, ts);
      zone.ts_max_us = std::max(zone.ts_max_us, ts);
      zone.server_ip_min = std::min(zone.server_ip_min, sip);
      zone.server_ip_max = std::max(zone.server_ip_max, sip);
    }
  }

  // Pass 2: transpose into column streams, each with its own compression
  // envelope so similar bytes sit together. Layout 2 stages numeric columns
  // as u64 values and lets compress_u64_segment pick the codec; layout 1
  // reproduces the legacy varint streams byte for byte.
  SegmentSink sink(es);
  const auto numeric = [&](std::uint8_t id, auto&& get) {
    if (v2) {
      es.u64.resize(n);
      for (std::size_t i = 0; i < n; ++i) es.u64[i] = get(i);
      sink.add_values(id, es.u64);
    } else {
      es.stream.clear();
      for (std::size_t i = 0; i < n; ++i) put_varint(es.stream, get(i));
      sink.add(id, es.stream.view());
    }
  };
  const auto numeric_signed = [&](std::uint8_t id, auto&& get) {
    if (v2) {
      es.u64.resize(n);
      for (std::size_t i = 0; i < n; ++i) es.u64[i] = zigzag(get(i));
      sink.add_values(id, es.u64);
    } else {
      es.stream.clear();
      for (std::size_t i = 0; i < n; ++i) put_varint_signed(es.stream, get(i));
      sink.add(id, es.stream.view());
    }
  };

  numeric_signed(kColTs, [&records, prev_ts = std::int64_t{0}](std::size_t i) mutable {
    const std::int64_t ts = records[i].first_packet.micros();
    const std::int64_t delta = ts - prev_ts;
    prev_ts = ts;
    return delta;
  });
  numeric_signed(kColDur, [&records](std::size_t i) {
    return records[i].last_packet - records[i].first_packet;
  });

  const auto u8seg = [&](std::uint8_t id, std::span<const std::uint8_t> values) {
    es.stream.clear();
    const bool constant =
        !values.empty() &&
        std::all_of(values.begin(), values.end(), [&](std::uint8_t v) { return v == values[0]; });
    if (constant) {
      es.stream.u8(kU8Constant);
      es.stream.u8(values[0]);
    } else {
      bool rle = false;
      if (v2) {
        std::size_t rle_size = 1;
        for (std::size_t i = 0; i < values.size();) {
          std::size_t j = i + 1;
          while (j < values.size() && values[j] == values[i]) ++j;
          rle_size += varint_len(j - i) + 1;
          i = j;
        }
        rle = rle_size < 1 + values.size();
        if (rle) {
          es.stream.u8(kU8Rle);
          for (std::size_t i = 0; i < values.size();) {
            std::size_t j = i + 1;
            while (j < values.size() && values[j] == values[i]) ++j;
            put_varint(es.stream, j - i);
            es.stream.u8(values[i]);
            i = j;
          }
        }
      }
      if (!rle) {
        es.stream.u8(kU8Plain);
        for (const auto v : values) es.stream.u8(v);
      }
    }
    sink.add(id, es.stream.view());
  };
  u8seg(kColService, es.service_code);
  {
    es.u8.resize(n);
    const auto u8col = [&](std::uint8_t id, auto&& get) {
      for (std::size_t i = 0; i < n; ++i) es.u8[i] = get(records[i]);
      u8seg(id, es.u8);
    };
    u8col(kColProto, [](const auto& r) { return static_cast<std::uint8_t>(r.proto); });
    u8col(kColAccess, [](const auto& r) { return static_cast<std::uint8_t>(r.access); });
    u8col(kColFlags, [](const auto& r) {
      return static_cast<std::uint8_t>((r.handshake_completed ? 1 : 0) |
                                       (static_cast<std::uint8_t>(r.close_reason) << 1));
    });
    u8col(kColL7, [](const auto& r) { return static_cast<std::uint8_t>(r.l7); });
    u8col(kColWeb, [](const auto& r) { return static_cast<std::uint8_t>(r.web); });
    u8col(kColNameSource, [](const auto& r) { return static_cast<std::uint8_t>(r.name_source); });
  }

  // Fixed-width columns: layout 1 keeps the little-endian raw streams;
  // layout 2 routes them through the value codec (server IPs cluster, so
  // frame-of-reference packs them well below 4 bytes each).
  if (v2) {
    numeric(kColClientPort, [&](std::size_t i) { return std::uint64_t{records[i].client_port}; });
  } else {
    es.stream.clear();
    for (const auto& r : records) {
      es.stream.u8(static_cast<std::uint8_t>(r.client_port & 0xff));
      es.stream.u8(static_cast<std::uint8_t>(r.client_port >> 8));
    }
    sink.add(kColClientPort, es.stream.view());
  }
  numeric(kColServerPort, [&](std::size_t i) { return std::uint64_t{records[i].server_port}; });
  const auto fixed_u32 = [&](std::uint8_t id, auto&& get) {
    if (v2) {
      numeric(id, [&](std::size_t i) { return std::uint64_t{get(records[i])}; });
    } else {
      es.stream.clear();
      for (const auto& r : records) es.stream.u32le(get(r));
      sink.add(id, es.stream.view());
    }
  };
  fixed_u32(kColClientIp, [](const auto& r) { return r.client_ip.value(); });
  fixed_u32(kColServerIp, [](const auto& r) { return r.server_ip.value(); });

  const auto dir_col = [&](std::uint8_t id, auto&& get) {
    numeric(id, [&](std::size_t i) { return get(records[i]); });
  };
  dir_col(kColUpPkts, [](const auto& r) { return r.up.packets; });
  dir_col(kColUpBytes, [](const auto& r) { return r.up.bytes; });
  dir_col(kColUpHdr, [](const auto& r) { return r.up.bytes_with_hdr; });
  dir_col(kColUpRetx, [](const auto& r) { return std::uint64_t{r.up.retransmits}; });
  dir_col(kColUpOoo, [](const auto& r) { return std::uint64_t{r.up.out_of_order}; });
  dir_col(kColDnPkts, [](const auto& r) { return r.down.packets; });
  dir_col(kColDnBytes, [](const auto& r) { return r.down.bytes; });
  dir_col(kColDnHdr, [](const auto& r) { return r.down.bytes_with_hdr; });
  dir_col(kColDnRetx, [](const auto& r) { return std::uint64_t{r.down.retransmits}; });
  dir_col(kColDnOoo, [](const auto& r) { return std::uint64_t{r.down.out_of_order}; });
  dir_col(kColRttSamples, [](const auto& r) { return std::uint64_t{r.rtt.samples}; });
  {
    // RTT stats exist only when samples > 0: dense sub-columns over those
    // rows, in row order (the row-aligned expansion at decode replays the
    // same order).
    const auto rtt_dense = [&](std::uint8_t id, auto&& get) {
      if (v2) {
        es.u64.clear();
        for (const auto& r : records) {
          if (r.rtt.samples > 0) es.u64.push_back(zigzag(get(r)));
        }
        sink.add_values(id, es.u64);
      } else {
        es.stream.clear();
        for (const auto& r : records) {
          if (r.rtt.samples > 0) put_varint_signed(es.stream, get(r));
        }
        sink.add(id, es.stream.view());
      }
    };
    rtt_dense(kColRttMin, [](const auto& r) { return r.rtt.min_us; });
    rtt_dense(kColRttMaxDelta, [](const auto& r) { return r.rtt.max_us - r.rtt.min_us; });
    rtt_dense(kColRttAvgDelta, [](const auto& r) {
      return static_cast<std::int64_t>(r.rtt.avg_us) - r.rtt.min_us;
    });
  }
  dir_col(kColHttpStatus, [](const auto& r) { return std::uint64_t{r.http_status}; });

  // String dictionaries (server_name, content_type), first-appearance
  // order. Layout 2 may delta-code the dictionary against the predecessor
  // block's (the dict_link bits record the per-column choice); indexes go
  // through the value codec. The delta is only taken when it is actually
  // smaller than re-emitting the full dictionary.
  std::uint8_t dict_link = 0;
  const auto string_dict = [&](std::uint8_t dict_id, std::uint8_t idx_id,
                               const std::vector<std::string>* prev_dict, std::uint32_t prev_crc,
                               std::uint8_t delta_bit, auto&& get) {
    auto& codes = es.dict_codes;
    codes.clear();
    es.dict_entries.clear();
    es.u64.resize(n);
    std::uint32_t count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::string_view sv = get(records[i]);
      auto [it, inserted] = codes.try_emplace(sv, count);
      if (inserted) {
        es.dict_entries.push_back(sv);
        ++count;
      }
      es.u64[i] = it->second;
    }
    bool use_delta = false;
    if (v2 && prev_dict != nullptr) {
      auto& pc = es.prev_codes;
      pc.clear();
      for (std::size_t k = 0; k < prev_dict->size(); ++k) {
        pc.try_emplace(std::string_view{(*prev_dict)[k]}, static_cast<std::uint32_t>(k + 1));
      }
      std::size_t full_size = varint_len(count);
      std::size_t delta_size = 4 + varint_len(count);
      for (const auto sv : es.dict_entries) {
        const std::size_t literal = varint_len(sv.size()) + sv.size();
        full_size += literal;
        const auto it = pc.find(sv);
        delta_size += it != pc.end() ? varint_len(it->second) : 1 + literal;
      }
      use_delta = delta_size < full_size;
      if (use_delta) {
        es.stream.clear();
        es.stream.u32le(prev_crc);
        put_varint(es.stream, count);
        for (const auto sv : es.dict_entries) {
          const auto it = pc.find(sv);
          if (it != pc.end()) {
            put_varint(es.stream, it->second);
          } else {
            put_varint(es.stream, 0);
            put_varint(es.stream, sv.size());
            es.stream.string(sv);
          }
        }
        sink.add(dict_id, es.stream.view());
        dict_link |= delta_bit;
      }
    }
    if (!use_delta) {
      es.stream.clear();
      put_varint(es.stream, count);
      for (const auto sv : es.dict_entries) {
        put_varint(es.stream, sv.size());
        es.stream.string(sv);
      }
      sink.add(dict_id, es.stream.view());
    }
    if (v2) {
      sink.add_values(idx_id, es.u64);
    } else {
      es.stream.clear();
      for (std::size_t i = 0; i < n; ++i) put_varint(es.stream, es.u64[i]);
      sink.add(idx_id, es.stream.view());
    }
  };
  string_dict(kColNameDict, kColNameIdx, prev != nullptr ? &prev->name_dict : nullptr,
              prev != nullptr ? prev->name_crc : 0, 1,
              [](const auto& r) { return std::string_view{r.server_name}; });
  string_dict(kColCtDict, kColCtIdx, prev != nullptr ? &prev->ct_dict : nullptr,
              prev != nullptr ? prev->ct_crc : 0, 2,
              [](const auto& r) { return std::string_view{r.content_type}; });

  // Assemble: prefix | zone map | service dict | [dict_link] | directory |
  // payloads.
  out.u8(kColumnarTag);
  out.u8(v2 ? kColumnarLayoutV2 : kColumnarLayoutV1);
  put_zone_map(out, zone);
  out.u8(svc_count);
  for (std::size_t i = 0; i < svc_count; ++i) out.u8(svc_dict[i]);
  if (v2) out.u8(dict_link);
  out.u8(static_cast<std::uint8_t>(es.directory.size()));
  for (const auto& [id, len] : es.directory) {
    out.u8(id);
    put_varint(out, len);
  }
  out.bytes(es.payloads);
}

// ---- decode helpers ------------------------------------------------------

struct SegmentTable {
  std::array<std::span<const std::byte>, kColumnCount> seg{};
  std::array<bool, kColumnCount> present{};

  [[nodiscard]] bool complete() const noexcept {
    return std::all_of(present.begin(), present.end(), [](bool b) { return b; });
  }
};

/// Scheme gate: layout 1 predates the value codecs, so a FOR/RLE envelope in
/// a layout-1 block is corruption, not data.
[[nodiscard]] bool scheme_allowed(std::span<const std::byte> payload, bool v2) noexcept {
  return !payload.empty() &&
         (v2 || std::to_integer<std::uint8_t>(payload[0]) < kSchemeForBitpack);
}

[[nodiscard]] bool decode_u8_column(std::span<const std::byte> payload, bool v2,
                                    std::vector<std::byte>& scratch, std::size_t n,
                                    std::vector<std::uint8_t>& out) {
  const auto stream = decompress_block_view(payload, scratch);
  if (!stream) return false;
  if (stream->empty()) return false;
  const auto enc = std::to_integer<std::uint8_t>((*stream)[0]);
  if (enc == kU8Constant) {
    if (stream->size() != 2) return false;
    out.assign(n, std::to_integer<std::uint8_t>((*stream)[1]));
    return true;
  }
  if (v2 && enc == kU8Rle) {
    out.resize(n);
    VarintCursor c(stream->subspan(1));
    std::size_t i = 0;
    while (i < n) {
      const std::uint64_t run = get_varint(c);
      if (!c.ok() || run == 0 || run > n - i) return false;
      if (c.p == c.end) return false;
      const std::uint8_t v = *c.p++;
      std::fill(out.begin() + static_cast<std::ptrdiff_t>(i),
                out.begin() + static_cast<std::ptrdiff_t>(i + run), v);
      i += static_cast<std::size_t>(run);
    }
    return c.ok() && c.exhausted();
  }
  if (enc != kU8Plain || stream->size() != 1 + n) return false;
  out.resize(n);
  std::memcpy(out.data(), stream->data() + 1, n);
  return true;
}

template <typename T, typename Out>
[[nodiscard]] bool decode_fixed_column(std::span<const std::byte> payload,
                                       std::vector<std::byte>& scratch, std::size_t n,
                                       std::vector<Out>& out) {
  static_assert(sizeof(T) == sizeof(Out));
  const auto stream = decompress_block_view(payload, scratch);
  if (!stream || stream->size() != n * sizeof(T)) return false;
  out.resize(n);
  if (n != 0) std::memcpy(out.data(), stream->data(), n * sizeof(T));
  return true;
}

/// Value segments (both layouts — a layout-1 varint stream is exactly the
/// scheme-0/1 arm of the segment codec).
[[nodiscard]] bool decode_value_column(std::span<const std::byte> payload, bool v2,
                                       std::vector<std::byte>& scratch, std::size_t n,
                                       std::vector<std::uint64_t>& out) {
  if (!scheme_allowed(payload, v2)) return false;
  out.resize(n);
  return decompress_u64_segment(payload, n, out.data(), scratch);
}

[[nodiscard]] bool decode_signed_column(std::span<const std::byte> payload, bool v2,
                                        std::vector<std::byte>& scratch, std::size_t n,
                                        std::int64_t* out) {
  if (!scheme_allowed(payload, v2)) return false;
  return decompress_zigzag_segment(payload, n, out, scratch);
}

/// Narrowing value column (layout 2's client_port/client_ip/server_ip): any
/// value above the column's natural width is corruption.
template <typename Out>
[[nodiscard]] bool decode_value_narrow(std::span<const std::byte> payload,
                                       std::vector<std::byte>& scratch,
                                       std::vector<std::uint64_t>& staging, std::size_t n,
                                       std::vector<Out>& out) {
  staging.resize(n);
  if (!decompress_u64_segment(payload, n, staging.data(), scratch)) return false;
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (staging[i] > std::numeric_limits<Out>::max()) return false;
    out[i] = static_cast<Out>(staging[i]);
  }
  return true;
}

/// Parse a string dictionary blob into views over `blob` (which receives
/// the decompressed bytes and must outlive the views). Layout-1 path.
[[nodiscard]] bool decode_string_dict(std::span<const std::byte> payload,
                                      std::vector<std::byte>& blob, std::size_t max_entries,
                                      std::size_t max_len, std::vector<std::string_view>& dict) {
  dict.clear();
  // The blob buffer doubles as the decompression target; a stored payload
  // is copied so views never dangle into per-block scratch.
  const auto view = decompress_block_view(payload, blob);
  if (!view) return false;
  if (view->data() != blob.data()) blob.assign(view->begin(), view->end());
  core::ByteReader r(std::span<const std::byte>{blob});
  const std::uint64_t count = get_varint(r);
  if (!r.ok() || count > max_entries) return false;
  dict.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t len = get_varint(r);
    if (!r.ok() || len > max_len) return false;
    const auto s = r.string(static_cast<std::size_t>(len));
    if (!r.ok()) return false;
    dict.push_back(s);
  }
  return r.remaining() == 0;
}

/// Layout-2 dictionary decode: resolve the (possibly delta-coded) dictionary
/// into the scratch's double-buffered chain cache and point `views` at it.
/// Delta links resolve against the cache when its CRC matches, else through
/// the caller's resolver; neither path available → corrupt.
[[nodiscard]] bool decode_dict_v2(std::span<const std::byte> payload, bool delta,
                                  std::size_t max_entries, std::size_t max_len,
                                  std::uint8_t dict_col, ColumnScratch& s,
                                  std::array<std::vector<std::string>, 2>& bufs, unsigned& cur,
                                  std::uint32_t& crc, bool& valid,
                                  const PrevBlockResolver* resolver,
                                  std::vector<std::string_view>& views) {
  auto& next = bufs[1 - cur];
  const auto stream = decompress_block_view(payload, s.chain_seg);
  if (!stream) return false;
  if (!delta) {
    if (!parse_full_dict(*stream, max_entries, max_len, next)) return false;
  } else {
    core::ByteReader hdr(*stream);
    const std::uint32_t prev_crc = hdr.u32le();
    if (!hdr.ok()) return false;
    if (valid && crc == prev_crc) {
      if (!apply_dict_delta(*stream, bufs[cur], prev_crc, max_entries, max_len, next)) {
        return false;
      }
    } else {
      if (resolver == nullptr) return false;
      // The walk reuses no scratch that `stream` may alias: it decompresses
      // into its own local buffers.
      std::vector<std::string> prev_dict;
      if (!resolve_prev_dict_via_walk(dict_col, prev_crc, max_len, *resolver, prev_dict)) {
        return false;
      }
      if (!apply_dict_delta(*stream, prev_dict, prev_crc, max_entries, max_len, next)) {
        return false;
      }
    }
  }
  crc = canonical_dict_crc(next);
  valid = true;
  cur = 1 - cur;
  views.clear();
  views.reserve(next.size());
  for (const auto& e : next) views.emplace_back(e);
  return true;
}

[[nodiscard]] bool decode_index_column(std::span<const std::byte> payload, bool v2,
                                       std::vector<std::byte>& scratch,
                                       std::vector<std::uint64_t>& staging, std::size_t n,
                                       std::size_t dict_size, std::vector<std::uint32_t>& out) {
  if (!scheme_allowed(payload, v2)) return false;
  staging.resize(n);
  if (!decompress_u64_segment(payload, n, staging.data(), scratch)) return false;
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (staging[i] >= dict_size) return false;
    out[i] = static_cast<std::uint32_t>(staging[i]);
  }
  return true;
}

}  // namespace

bool ScanPredicate::matches(const flow::FlowRecord& record) const {
  const std::int64_t ts = record.first_packet.micros();
  if (ts < time_min_us || ts > time_max_us) return false;
  if (proto_mask != 0 && (proto_mask & (1u << proto_bit(record.proto))) == 0) return false;
  if (service_mask != 0) {
    const auto& cat = catalog != nullptr ? *catalog : services::ServiceCatalog::standard();
    const auto id = cat.classify_flow(record.l7, record.server_name);
    if ((service_mask & (1u << static_cast<unsigned>(id))) == 0) return false;
  }
  return true;
}

unsigned segments_for_fields(std::uint32_t fields) noexcept {
  return segments_for_fields_impl(fields);
}

bool is_columnar_block(std::span<const std::byte> body) noexcept {
  return !body.empty() && std::to_integer<std::uint8_t>(body[0]) == kColumnarTag;
}

std::optional<ZoneMap> peek_zone_map(std::span<const std::byte> body) noexcept {
  core::ByteReader r(body);
  if (r.u8() != kColumnarTag) return std::nullopt;
  const std::uint8_t layout = r.u8();
  if (layout != kColumnarLayoutV1 && layout != kColumnarLayoutV2) return std::nullopt;
  const ZoneMap z = get_zone_map(r);
  if (!r.ok() || z.record_count > kMaxColumnarRecords) return std::nullopt;
  return z;
}

void build_dict_chain_state(std::span<const flow::FlowRecord> prev_records, DictChainState& out) {
  const auto build = [&](std::vector<std::string>& dict, std::uint32_t& crc, auto&& get) {
    core::FlatHashMap<std::string_view, std::uint32_t, core::StringHash> codes;
    std::size_t count = 0;
    for (const auto& r : prev_records) {
      const std::string_view sv = get(r);
      const auto [it, inserted] = codes.try_emplace(sv, static_cast<std::uint32_t>(count));
      if (!inserted) continue;
      if (count < dict.size()) {
        dict[count].assign(sv);
      } else {
        dict.emplace_back(sv);
      }
      ++count;
    }
    dict.resize(count);
    crc = canonical_dict_crc(dict);
  };
  build(out.name_dict, out.name_crc,
        [](const auto& r) { return std::string_view{r.server_name}; });
  build(out.ct_dict, out.ct_crc, [](const auto& r) { return std::string_view{r.content_type}; });
}

void encode_columnar_block(std::span<const flow::FlowRecord> records,
                           const services::ServiceCatalog& catalog, core::ByteWriter& out) {
  EncodeScratch scratch;
  encode_columnar_block_impl(records, catalog, out, scratch, nullptr, /*v2=*/true);
}

void encode_columnar_block(std::span<const flow::FlowRecord> records,
                           const services::ServiceCatalog& catalog, core::ByteWriter& out,
                           EncodeScratch& scratch, const DictChainState* prev) {
  encode_columnar_block_impl(records, catalog, out, scratch, prev, /*v2=*/true);
}

void encode_columnar_block_layout1(std::span<const flow::FlowRecord> records,
                                   const services::ServiceCatalog& catalog,
                                   core::ByteWriter& out) {
  EncodeScratch scratch;
  encode_columnar_block_impl(records, catalog, out, scratch, nullptr, /*v2=*/false);
}

BlockDecodeStatus decode_columnar_batch(std::span<const std::byte> body, ColumnScratch& s,
                                        const ScanPredicate* predicate,
                                        exec::RecordBatch& batch,
                                        std::uint32_t expected_records,
                                        const PrevBlockResolver* prev_blocks) {
  batch = exec::RecordBatch{};  // empty until the decode proves the block
  core::ByteReader r(body);
  if (r.u8() != kColumnarTag) return BlockDecodeStatus::kCorrupt;
  const std::uint8_t layout = r.u8();
  if (layout != kColumnarLayoutV1 && layout != kColumnarLayoutV2) {
    return BlockDecodeStatus::kCorrupt;
  }
  const bool v2 = layout == kColumnarLayoutV2;
  const ZoneMap zone = get_zone_map(r);
  if (!r.ok() || zone.record_count > kMaxColumnarRecords) return BlockDecodeStatus::kCorrupt;
  if (expected_records != kAnyRecordCount && zone.record_count != expected_records) {
    return BlockDecodeStatus::kCorrupt;
  }
  const std::size_t n = zone.record_count;

  // Service dictionary: every entry must be a valid global ServiceId — a
  // "bad dictionary" is structural corruption, not a mapping to garbage.
  const std::uint8_t dict_size = r.u8();
  std::array<std::uint8_t, services::kServiceCount> dict{};
  if (dict_size > services::kServiceCount) return BlockDecodeStatus::kCorrupt;
  for (std::size_t i = 0; i < dict_size; ++i) {
    const std::uint8_t sid = r.u8();
    if (sid >= services::kServiceCount) return BlockDecodeStatus::kCorrupt;
    dict[i] = sid;
  }

  // Layout 2: the dictionary-chain link byte. Undefined bits must be zero so
  // they stay available to future layouts.
  std::uint8_t dict_link = 0;
  if (v2) {
    dict_link = r.u8();
    if (!r.ok() || (dict_link & 0xfc) != 0) return BlockDecodeStatus::kCorrupt;
  }

  // Segment directory: each column exactly once, both layouts.
  SegmentTable segs;
  const std::uint8_t seg_count = r.u8();
  if (!r.ok() || seg_count != kColumnCount) return BlockDecodeStatus::kCorrupt;
  struct DirEntry {
    std::uint8_t id;
    std::uint32_t len;
  };
  std::array<DirEntry, kColumnCount> entries{};
  for (auto& e : entries) {
    e.id = r.u8();
    const std::uint64_t len = get_varint(r);
    if (!r.ok() || e.id >= kColumnCount || len > body.size()) return BlockDecodeStatus::kCorrupt;
    e.len = static_cast<std::uint32_t>(len);
  }
  for (const auto& e : entries) {
    if (segs.present[e.id]) return BlockDecodeStatus::kCorrupt;
    segs.seg[e.id] = r.bytes(e.len);
    segs.present[e.id] = true;
  }
  if (!r.ok() || r.remaining() != 0 || !segs.complete()) return BlockDecodeStatus::kCorrupt;

  bool zone_lied = false;

  // Filter columns first: timestamps, service, proto. When a predicate
  // selects nothing, the remaining 29 segments are never decompressed.
  s.ts.resize(n);
  if (!decode_signed_column(segs.seg[kColTs], v2, s.seg, n, s.ts.data())) {
    return BlockDecodeStatus::kCorrupt;
  }
  if (!decode_u8_column(segs.seg[kColService], v2, s.seg, n, s.service) ||
      !decode_u8_column(segs.seg[kColProto], v2, s.seg, n, s.proto)) {
    return BlockDecodeStatus::kCorrupt;
  }

  // One fused pass: undo the timestamp delta chain, resolve service dict
  // codes, and run the zone cross-check (advisory-never-authoritative —
  // every record must lie inside the zone that advertised the block). The
  // serial prefix-sum chain overlaps with the independent checks instead of
  // costing three separate traversals of the arrays.
  {
    std::int64_t prev = 0;
    std::uint32_t outside = 0;
    for (std::size_t i = 0; i < n; ++i) {
      prev += s.ts[i];
      s.ts[i] = prev;
      const std::uint8_t code = s.service[i];
      if (code >= dict_size) return BlockDecodeStatus::kCorrupt;
      const std::uint8_t sid = dict[code];  // dict code → global ServiceId
      s.service[i] = sid;
      outside |= static_cast<std::uint32_t>(prev < zone.ts_min_us) |
                 static_cast<std::uint32_t>(prev > zone.ts_max_us) |
                 (~zone.service_bitmap >> sid & 1u) |
                 (~zone.proto_bitmap >>
                      proto_bit(static_cast<core::TransportProto>(s.proto[i])) &
                  1u);
    }
    zone_lied = outside != 0;
  }

  // Row selection.
  const std::uint32_t fields = predicate != nullptr ? predicate->fields : scan_fields::kAll;
  batch.fields = fields;
  const bool filtered = predicate != nullptr && !predicate->unrestricted();
  s.sel.clear();
  if (filtered) {
    for (std::size_t i = 0; i < n; ++i) {
      if (s.ts[i] < predicate->time_min_us || s.ts[i] > predicate->time_max_us) continue;
      if (predicate->service_mask != 0 &&
          (predicate->service_mask & (1u << s.service[i])) == 0) {
        continue;
      }
      if (predicate->proto_mask != 0 &&
          (predicate->proto_mask &
           (1u << proto_bit(static_cast<core::TransportProto>(s.proto[i])))) == 0) {
        continue;
      }
      s.sel.push_back(static_cast<std::uint32_t>(i));
    }
    if (s.sel.empty()) {
      return zone_lied ? BlockDecodeStatus::kZoneMapLied : BlockDecodeStatus::kOk;
    }
  }

  // Remaining columns, gated on the projection: a segment backing no
  // requested field is never decompressed or decoded (its bytes were still
  // CRC-verified with the rest of the frame).
  const auto want = [fields](std::uint32_t bit) noexcept { return (fields & bit) != 0; };
  const bool want_rtt = want(scan_fields::kRttMin | scan_fields::kRttSpread);
  const auto vcol = [&](Column id, std::vector<std::uint64_t>& out) {
    return decode_value_column(segs.seg[id], v2, s.seg, n, out);
  };
  if (want(scan_fields::kLastPacket)) {
    s.dur.resize(n);
    if (!decode_signed_column(segs.seg[kColDur], v2, s.seg, n, s.dur.data())) {
      return BlockDecodeStatus::kCorrupt;
    }
  }
  if ((want(scan_fields::kAccess) &&
       !decode_u8_column(segs.seg[kColAccess], v2, s.seg, n, s.access)) ||
      (want(scan_fields::kCloseState) &&
       !decode_u8_column(segs.seg[kColFlags], v2, s.seg, n, s.flags)) ||
      (want(scan_fields::kL7) && !decode_u8_column(segs.seg[kColL7], v2, s.seg, n, s.l7)) ||
      (want(scan_fields::kWeb) && !decode_u8_column(segs.seg[kColWeb], v2, s.seg, n, s.web)) ||
      (want(scan_fields::kNameSource) &&
       !decode_u8_column(segs.seg[kColNameSource], v2, s.seg, n, s.name_source))) {
    return BlockDecodeStatus::kCorrupt;
  }
  if (v2) {
    if ((want(scan_fields::kClientPort) &&
         !decode_value_narrow(segs.seg[kColClientPort], s.seg, s.u64_tmp, n, s.cport)) ||
        (want(scan_fields::kClientIp) &&
         !decode_value_narrow(segs.seg[kColClientIp], s.seg, s.u64_tmp, n, s.cip)) ||
        !decode_value_narrow(segs.seg[kColServerIp], s.seg, s.u64_tmp, n, s.sip)) {
      return BlockDecodeStatus::kCorrupt;
    }
  } else {
    if ((want(scan_fields::kClientPort) &&
         !decode_fixed_column<std::uint16_t>(segs.seg[kColClientPort], s.seg, n, s.cport)) ||
        (want(scan_fields::kClientIp) &&
         !decode_fixed_column<std::uint32_t>(segs.seg[kColClientIp], s.seg, n, s.cip)) ||
        !decode_fixed_column<std::uint32_t>(segs.seg[kColServerIp], s.seg, n, s.sip)) {
      return BlockDecodeStatus::kCorrupt;
    }
    // Layout-1 fixed-width columns are little-endian on the wire and
    // memcpy'd in; normalize on big-endian hosts. (Layout 2 decodes them as
    // value segments, which are endian-neutral.)
    if constexpr (std::endian::native == std::endian::big) {
      for (auto& v : s.cport) v = static_cast<std::uint16_t>((v >> 8) | (v << 8));
      for (auto* col : {&s.cip, &s.sip}) {
        for (auto& v : *col) v = __builtin_bswap32(v);
      }
    }
  }
  if (want(scan_fields::kServerPort)) {
    if (!vcol(kColServerPort, s.u64_tmp)) return BlockDecodeStatus::kCorrupt;
    s.sport.resize(n);
    for (std::size_t i = 0; i < n; ++i) s.sport[i] = static_cast<std::uint16_t>(s.u64_tmp[i]);
  }
  if ((want(scan_fields::kUpPackets) && !vcol(kColUpPkts, s.up_pkts)) ||
      (want(scan_fields::kUpBytes) && !vcol(kColUpBytes, s.up_bytes)) ||
      (want(scan_fields::kUpWireBytes) && !vcol(kColUpHdr, s.up_hdr)) ||
      (want(scan_fields::kUpQuality) &&
       (!vcol(kColUpRetx, s.up_retx) || !vcol(kColUpOoo, s.up_ooo))) ||
      (want(scan_fields::kDownPackets) && !vcol(kColDnPkts, s.dn_pkts)) ||
      (want(scan_fields::kDownBytes) && !vcol(kColDnBytes, s.dn_bytes)) ||
      (want(scan_fields::kDownWireBytes) && !vcol(kColDnHdr, s.dn_hdr)) ||
      (want(scan_fields::kDownQuality) &&
       (!vcol(kColDnRetx, s.dn_retx) || !vcol(kColDnOoo, s.dn_ooo))) ||
      (want(scan_fields::kHttpStatus) && !vcol(kColHttpStatus, s.http_status))) {
    return BlockDecodeStatus::kCorrupt;
  }
  if (want_rtt) {
    if (!vcol(kColRttSamples, s.rtt_samples)) return BlockDecodeStatus::kCorrupt;
    // Row-aligned expansion of the dense RTT sub-columns: batch-decode the
    // dense stream (one value per row with samples > 0), then scatter.
    std::size_t rtt_rows = 0;
    for (std::size_t i = 0; i < n; ++i) rtt_rows += s.rtt_samples[i] > 0 ? 1 : 0;
    const auto dense_zigzag = [&](Column id, std::vector<std::int64_t>& col) {
      s.u64_tmp.resize(rtt_rows);
      auto* dense = reinterpret_cast<std::int64_t*>(s.u64_tmp.data());
      if (!decode_signed_column(segs.seg[id], v2, s.seg, rtt_rows, dense)) return false;
      col.resize(n);
      std::size_t k = 0;
      for (std::size_t i = 0; i < n; ++i) col[i] = s.rtt_samples[i] > 0 ? dense[k++] : 0;
      return true;
    };
    if (!dense_zigzag(kColRttMin, s.rtt_min)) return BlockDecodeStatus::kCorrupt;
    if (want(scan_fields::kRttSpread)) {
      if (!dense_zigzag(kColRttMaxDelta, s.rtt_max_delta) ||
          !dense_zigzag(kColRttAvgDelta, s.rtt_avg_delta)) {
        return BlockDecodeStatus::kCorrupt;
      }
      // Resolve the deltas here so the batch contract exposes values, not
      // the storage coding. avg stays the writer's integer quantization —
      // exactly what the row path has always delivered for v3 days.
      s.rtt_max.resize(n);
      s.rtt_avg.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (s.rtt_samples[i] > 0) {
          s.rtt_max[i] = s.rtt_min[i] + s.rtt_max_delta[i];
          s.rtt_avg[i] = static_cast<double>(s.rtt_min[i] + s.rtt_avg_delta[i]);
        } else {
          s.rtt_max[i] = 0;
          s.rtt_avg[i] = 0;
        }
      }
    }
  }
  if (want(scan_fields::kServerName)) {
    const bool dict_ok =
        v2 ? decode_dict_v2(segs.seg[kColNameDict], (dict_link & 1) != 0, n, kMaxNameLen,
                            kColNameDict, s, s.chain_name_bufs, s.chain_name_cur,
                            s.chain_name_crc, s.chain_name_valid, prev_blocks, s.name_dict)
           : decode_string_dict(segs.seg[kColNameDict], s.name_blob, n, kMaxNameLen, s.name_dict);
    if (!dict_ok || !decode_index_column(segs.seg[kColNameIdx], v2, s.seg, s.u64_tmp, n,
                                         s.name_dict.size(), s.name_idx)) {
      return BlockDecodeStatus::kCorrupt;
    }
  }
  if (want(scan_fields::kContentType)) {
    const bool dict_ok =
        v2 ? decode_dict_v2(segs.seg[kColCtDict], (dict_link & 2) != 0, n, kMaxCtLen, kColCtDict,
                            s, s.chain_ct_bufs, s.chain_ct_cur, s.chain_ct_crc, s.chain_ct_valid,
                            prev_blocks, s.ct_dict)
           : decode_string_dict(segs.seg[kColCtDict], s.ct_blob, n, kMaxCtLen, s.ct_dict);
    if (!dict_ok || !decode_index_column(segs.seg[kColCtIdx], v2, s.seg, s.u64_tmp, n,
                                         s.ct_dict.size(), s.ct_idx)) {
      return BlockDecodeStatus::kCorrupt;
    }
  }

  // Server-IP zone check needs the decoded column; done here so a filtered
  // scan that selected nothing never pays for it (fsck's full decode does).
  if (!zone_lied) {
    for (std::size_t i = 0; i < n; ++i) {
      if (s.sip[i] < zone.server_ip_min || s.sip[i] > zone.server_ip_max) {
        zone_lied = true;
        break;
      }
    }
  }

  // Point the batch at the decoded columns. Spans are set exactly for the
  // columns the gates above filled — an unprojected span stays empty, never
  // stale. From here on the block's rows move as one SoA unit; the old
  // per-row FlowRecord emission lives on only as the exec::materialize_rows
  // shim behind decode_columnar_block.
  batch.rows = n;
  if (filtered) batch.sel = s.sel;
  batch.ts = s.ts;
  batch.service = s.service;
  batch.proto = s.proto;
  batch.sip = s.sip;
  if (want(scan_fields::kLastPacket)) batch.dur = s.dur;
  if (want(scan_fields::kAccess)) batch.access = s.access;
  if (want(scan_fields::kCloseState)) batch.flags = s.flags;
  if (want(scan_fields::kL7)) batch.l7 = s.l7;
  if (want(scan_fields::kWeb)) batch.web = s.web;
  if (want(scan_fields::kNameSource)) batch.name_source = s.name_source;
  if (want(scan_fields::kClientPort)) batch.cport = s.cport;
  if (want(scan_fields::kServerPort)) batch.sport = s.sport;
  if (want(scan_fields::kClientIp)) batch.cip = s.cip;
  if (want(scan_fields::kUpPackets)) batch.up_pkts = s.up_pkts;
  if (want(scan_fields::kUpBytes)) batch.up_bytes = s.up_bytes;
  if (want(scan_fields::kUpWireBytes)) batch.up_hdr = s.up_hdr;
  if (want(scan_fields::kUpQuality)) {
    batch.up_retx = s.up_retx;
    batch.up_ooo = s.up_ooo;
  }
  if (want(scan_fields::kDownPackets)) batch.dn_pkts = s.dn_pkts;
  if (want(scan_fields::kDownBytes)) batch.dn_bytes = s.dn_bytes;
  if (want(scan_fields::kDownWireBytes)) batch.dn_hdr = s.dn_hdr;
  if (want(scan_fields::kDownQuality)) {
    batch.dn_retx = s.dn_retx;
    batch.dn_ooo = s.dn_ooo;
  }
  if (want_rtt) {
    batch.rtt_samples = s.rtt_samples;
    batch.rtt_min_us = s.rtt_min;
    if (want(scan_fields::kRttSpread)) {
      batch.rtt_max_us = s.rtt_max;
      batch.rtt_avg_us = s.rtt_avg;
    }
  }
  if (want(scan_fields::kHttpStatus)) batch.http_status = s.http_status;
  if (want(scan_fields::kServerName)) {
    batch.name_idx = s.name_idx;
    batch.name_dict = s.name_dict;
  }
  if (want(scan_fields::kContentType)) {
    batch.ct_idx = s.ct_idx;
    batch.ct_dict = s.ct_dict;
  }
  return zone_lied ? BlockDecodeStatus::kZoneMapLied : BlockDecodeStatus::kOk;
}

BlockDecodeStatus decode_columnar_block(std::span<const std::byte> body, ColumnScratch& s,
                                        const ScanPredicate* predicate,
                                        std::uint64_t& records_delivered,
                                        core::FunctionRef<void(const flow::FlowRecord&)> fn,
                                        std::uint32_t expected_records,
                                        const PrevBlockResolver* prev_blocks) {
  exec::RecordBatch batch;
  const auto status =
      decode_columnar_batch(body, s, predicate, batch, expected_records, prev_blocks);
  if (status == BlockDecodeStatus::kCorrupt) return status;
  exec::materialize_rows(batch, s.rec, fn, records_delivered);
  return status;
}

}  // namespace edgewatch::storage
