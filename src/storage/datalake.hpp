// Day-partitioned flow-log store (paper §2.2: "Daily, logs are copied into
// a long-term storage in a centralized data center", then a two-stage
// analytics methodology aggregates per day).
//
// Layout: one file per civil day under the lake root,
//   flows_YYYY-MM-DD.ewl = magic | version | { u32le block_len, block }*
// where each block is a compress_block() of concatenated encoded records.
// Appending to an existing day adds blocks; scans stream records without
// materializing the whole day.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/time.hpp"
#include "flow/record.hpp"

namespace edgewatch::storage {

class DataLake {
 public:
  explicit DataLake(std::filesystem::path root);

  /// Append records to a day's log (creates the file if needed). Records
  /// are blocked and compressed; returns bytes written to disk.
  std::uint64_t append(core::CivilDate day, std::span<const flow::FlowRecord> records);

  /// Stream every record of a day. Returns false if the day is absent or
  /// the file is corrupt (a partial prefix may have been delivered).
  bool scan_day(core::CivilDate day,
                const std::function<void(const flow::FlowRecord&)>& fn) const;

  /// Convenience: materialize a day.
  [[nodiscard]] std::vector<flow::FlowRecord> read_day(core::CivilDate day) const;

  /// All days present, sorted.
  [[nodiscard]] std::vector<core::CivilDate> days() const;

  [[nodiscard]] bool has_day(core::CivilDate day) const;
  [[nodiscard]] std::uint64_t file_bytes(core::CivilDate day) const;
  [[nodiscard]] const std::filesystem::path& root() const noexcept { return root_; }

  /// Export one day as CSV (interop path); returns rows written.
  std::uint64_t export_csv(core::CivilDate day, const std::filesystem::path& out) const;

  [[nodiscard]] static std::string day_filename(core::CivilDate day);

  /// Records per compressed block.
  static constexpr std::size_t kBlockRecords = 4096;

 private:
  [[nodiscard]] std::filesystem::path day_path(core::CivilDate day) const;

  std::filesystem::path root_;
};

}  // namespace edgewatch::storage
