// Day-partitioned flow-log store (paper §2.2: "Daily, logs are copied into
// a long-term storage in a centralized data center", then a two-stage
// analytics methodology aggregates per day).
//
// Layout: one file per civil day under the lake root,
//   flows_YYYY-MM-DD.ewl = magic "EWLK" | version | element*
//
// Format v2 (written by this code) is a stream of self-checking elements:
//
//   block:  u32le body_len | u32le seq | u32le record_count | u32le crc32c
//           | body                      (crc covers header fields + body)
//   seal:   u32le 0xffffffff | u32le seal_magic | u64le cumulative_records
//           | u32le cumulative_blocks | u32le crc32c
//
// Every append writes its blocks followed by a seal, fsyncs, and — if any
// write fails while the process survives — rolls the file back to its
// pre-append length, making appends atomic. A crash mid-append leaves a
// torn tail after the last seal; scan/fsck detect it via CRCs and block
// sequence numbers, and repair() truncates/quarantines so that no
// corrupted byte is ever delivered as a record. Format v1 files
// (u32le len | u32le fnv checksum | body, no seals) remain fully readable
// and can be upgraded in place with migrate_to_v2().
//
// Format v3 (the default write format) keeps the v2 file framing —
// identical block frames, seals, crash semantics — but each block body is
// columnar (storage/columnar.hpp): per-field column segments behind a
// zone map, enabling predicate-pushdown scans that skip whole blocks and
// unreferenced columns. v1/v2/v3 files coexist in one lake; every reader
// dispatches per block on the self-describing body.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "core/function_ref.hpp"
#include "core/result.hpp"
#include "core/time.hpp"
#include "flow/record.hpp"
#include "storage/columnar.hpp"
#include "storage/io.hpp"

namespace edgewatch::core {
class ThreadPool;
}  // namespace edgewatch::core

namespace edgewatch::storage {

/// On-disk format a lake writes. Reads auto-detect per file; appends to an
/// existing day continue that file's format regardless of this setting.
enum class LakeFormat : std::uint8_t {
  kV2 = 2,  ///< row-oriented varint stream per block
  kV3 = 3,  ///< columnar segments + zone map per block (storage/columnar.hpp)
};

/// Outcome of a day scan. Partial delivery is explicit: records_delivered
/// counts what the callback saw, blocks_skipped counts damaged regions
/// that were detected and stepped over, blocks_pruned counts healthy blocks
/// a predicate skipped wholesale via their zone maps, errc says why the day
/// is not pristine (kOk for a clean sealed file).
struct ScanResult {
  std::uint64_t records_delivered = 0;
  std::uint32_t blocks_skipped = 0;
  std::uint32_t blocks_pruned = 0;
  core::Errc errc = core::Errc::kOk;

  [[nodiscard]] bool ok() const noexcept { return errc == core::Errc::kOk; }
  [[nodiscard]] explicit operator bool() const noexcept { return ok(); }

  /// Fold a partial result (one worker's share of a day's blocks) into
  /// this one. Corruption dominates; otherwise the first non-kOk status
  /// sticks — merge partials in block order for a deterministic outcome.
  void merge(const ScanResult& other) noexcept {
    records_delivered += other.records_delivered;
    blocks_skipped += other.blocks_skipped;
    blocks_pruned += other.blocks_pruned;
    if (errc == core::Errc::kOk || other.errc == core::Errc::kCorrupt) errc = other.errc;
  }
};

/// Scratch buffers reused across block decodes. One per scanning thread:
/// the decompressor and the columnar decoder fill the same allocations
/// block after block instead of paying fresh allocations each time.
struct ScanScratch {
  std::vector<std::byte> decompressed;  ///< row-format (v1/v2) block bodies
  ColumnScratch columns;                ///< columnar (v3) block bodies
  /// Row→batch transposition for v1/v2 bodies on the batch scan path, so
  /// every consumer sees one SoA shape regardless of the on-disk format.
  exec::BatchStaging staging;
};

/// Random-access view of one day file for parallel scanning: the raw file
/// bytes (shared, immutable) plus the location of every CRC-valid block.
/// Each block is independently decodable, so workers can fan out over the
/// block list — share the index, give each worker its own ScanScratch.
class DayBlockIndex {
 public:
  struct Block {
    std::size_t offset = 0;       ///< Frame start within the file.
    std::size_t header_size = 0;  ///< 16 (v2) or 8 (v1).
    std::uint32_t body_len = 0;
    std::uint32_t record_count = 0;
  };

  /// Header-level failure (absent file, I/O error, bad magic/version,
  /// header-less stub). When set, no blocks are available.
  [[nodiscard]] core::Errc fatal() const noexcept { return fatal_; }
  /// Day status before any block is decoded: kOk for a clean sealed file,
  /// kCorrupt when damaged ranges were skipped during indexing,
  /// kTruncated for an unsealed v2 tail.
  [[nodiscard]] core::Errc baseline() const noexcept { return baseline_; }
  [[nodiscard]] const std::vector<Block>& blocks() const noexcept { return blocks_; }
  /// Every framed element of the file in stream order: the CRC-valid blocks
  /// of blocks() interleaved with dictionary-salvage candidates carved from
  /// damaged ranges (frames whose header still parses but whose CRC failed).
  /// Dictionary chain resolvers must walk THIS order — `back` steps in a
  /// delta link count original stream positions, so skipping a damaged
  /// predecessor would mis-align every link behind it. Serving unverified
  /// candidate bodies is safe: the chain walk re-derives the predecessor
  /// dictionary and accepts it only when it hashes to the link's recorded
  /// CRC, so a corrupt candidate fails cleanly instead of mis-resolving.
  [[nodiscard]] const std::vector<Block>& chain() const noexcept { return chain_; }
  /// Position of blocks()[i] within chain().
  [[nodiscard]] std::size_t chain_pos(std::size_t i) const noexcept { return chain_pos_[i]; }
  /// Damaged byte ranges stepped over while indexing (counts toward
  /// ScanResult::blocks_skipped, exactly as in the serial scan).
  [[nodiscard]] std::uint32_t damaged_ranges() const noexcept { return damaged_ranges_; }
  /// The compressed body of an indexed block.
  [[nodiscard]] std::span<const std::byte> body(const Block& b) const noexcept {
    return std::span<const std::byte>{*data_}.subspan(b.offset + b.header_size, b.body_len);
  }

 private:
  friend class DataLake;
  std::shared_ptr<const std::vector<std::byte>> data_;
  std::vector<Block> blocks_;
  std::vector<Block> chain_;
  std::vector<std::uint32_t> chain_pos_;
  std::uint32_t damaged_ranges_ = 0;
  core::Errc fatal_ = core::Errc::kOk;
  core::Errc baseline_ = core::Errc::kOk;
};

/// Cheap identity of one on-disk day file: stat facts plus the cumulative
/// block count of the trailing seal (v2's durability receipt). Two reads of
/// the same path compare equal iff the file was not rewritten in between —
/// the staleness test shared by fsck reporting and the rollup store
/// (query::RollupStore rebuilds a day's rollups only when the lake file's
/// identity changed since the rollup was built).
struct FileIdentity {
  std::uint64_t size = 0;
  std::int64_t mtime_ns = 0;    ///< last_write_time, ns since filesystem epoch.
  std::uint32_t seal_seq = 0;   ///< cumulative_blocks of a trailing v2 seal; 0 otherwise.

  [[nodiscard]] bool exists() const noexcept { return size != 0 || mtime_ns != 0; }
  bool operator==(const FileIdentity&) const noexcept = default;
};

/// The one place that stats a lake-format file for identity purposes
/// (size + mtime + trailing-seal sequence). Missing/unreadable files yield
/// a default identity (exists() == false).
[[nodiscard]] FileIdentity file_identity(const std::filesystem::path& path);

/// Health of one day file, as found by fsck() or left behind by repair().
struct DayHealth {
  core::CivilDate day{};
  FileIdentity identity{};  ///< As stat'ed by the same helper the rollup store uses.
  std::uint8_t version = 0;
  bool sealed = false;       ///< v2: last valid element is a seal.
  bool torn_tail = false;    ///< Unparseable bytes at (or to) the end.
  bool repaired = false;     ///< repair() rewrote the file.
  std::uint64_t blocks_ok = 0;
  std::uint64_t records_ok = 0;           ///< Records in CRC-valid blocks.
  std::uint32_t blocks_quarantined = 0;   ///< Damaged regions found/moved.
  std::uint64_t bytes_quarantined = 0;
  /// Exact count of records that were sealed (durably acknowledged) but
  /// now lie in damaged blocks. Unsealed torn-tail loss is additionally
  /// bounded by the batch size of the append that reported failure.
  std::uint64_t records_lost = 0;
  core::Errc errc = core::Errc::kOk;

  [[nodiscard]] bool healthy() const noexcept {
    return errc == core::Errc::kOk && !torn_tail && blocks_quarantined == 0;
  }
};

struct LakeHealthReport {
  std::vector<DayHealth> days;

  [[nodiscard]] bool clean() const noexcept {
    for (const auto& d : days) {
      if (!d.healthy()) return false;
    }
    return true;
  }
  [[nodiscard]] std::uint64_t total_records_lost() const noexcept {
    std::uint64_t n = 0;
    for (const auto& d : days) n += d.records_lost;
    return n;
  }
  [[nodiscard]] std::uint32_t total_blocks_quarantined() const noexcept {
    std::uint32_t n = 0;
    for (const auto& d : days) n += d.blocks_quarantined;
    return n;
  }
};

class DataLake {
 public:
  explicit DataLake(std::filesystem::path root);

  /// Append records to a day's log (creates the file if needed). Records
  /// are blocked, compressed, CRC-framed and sealed; the write is fsynced.
  /// Returns bytes written, or the error that prevented durability — in
  /// which case the file was rolled back to its previous length whenever
  /// the failure was survivable (everything except a crash).
  core::Result<std::uint64_t> append(core::CivilDate day,
                                     std::span<const flow::FlowRecord> records);

  /// Per-record and per-batch scan sinks. Both are non-owning
  /// core::FunctionRef views: one calling convention for every scan entry
  /// point, no per-scan std::function allocation. A batch sink must consume
  /// (or copy from) the RecordBatch inside the call — it views the scan's
  /// scratch and is overwritten by the next block.
  using RowSink = core::FunctionRef<void(const flow::FlowRecord&)>;
  using BatchSink = core::FunctionRef<void(const exec::RecordBatch&)>;

  /// Stream every recoverable record of a day. Damaged v2/v3 blocks are
  /// skipped (the reader resynchronizes on block sequence numbers) and
  /// reported; a corrupt v1 file delivers its valid prefix. No record from
  /// a block that failed its checksum is ever delivered.
  ///
  /// Templated only to bind the callable to a RowSink through a named
  /// lvalue (FunctionRef rejects temporaries by design); dispatch is
  /// non-virtual, the body is the out-of-line scan_day_impl. This is the
  /// compatibility shim over the batch path: v3 blocks decode as batches
  /// and replay through exec::materialize_rows.
  template <typename Fn,
            typename = std::enable_if_t<std::is_invocable_v<Fn&, const flow::FlowRecord&>>>
  ScanResult scan_day(core::CivilDate day, Fn&& fn) const {
    RowSink sink{fn};
    return scan_day_impl(day, nullptr, sink);
  }

  /// Selective scan with predicate pushdown: v3 blocks whose zone map
  /// cannot match are skipped without decompressing anything (counted in
  /// ScanResult::blocks_pruned), surviving v3 blocks decode only the
  /// column segments the filter and the callback need, and v1/v2 blocks
  /// fall back to decode-then-filter — the delivered record set is
  /// identical across formats.
  template <typename Fn,
            typename = std::enable_if_t<std::is_invocable_v<Fn&, const flow::FlowRecord&>>>
  ScanResult scan_day(core::CivilDate day, const ScanPredicate& predicate, Fn&& fn) const {
    RowSink sink{fn};
    return scan_day_impl(day, &predicate, sink);
  }

  /// Native batch delivery — the primary scan path: one RecordBatch per
  /// surviving block, filled straight from the decode scratch. Columnar
  /// blocks pass dictionary codes through without materializing a single
  /// string; v1/v2 blocks are staged row→batch so consumers see one shape.
  /// Same pruning/skip accounting and damage semantics as the row scan; a
  /// filtered batch carries its selection vector instead of re-copying the
  /// surviving rows.
  template <typename Fn,
            typename = std::enable_if_t<std::is_invocable_v<Fn&, const exec::RecordBatch&>>>
  ScanResult scan_day_batches(core::CivilDate day, Fn&& fn) const {
    BatchSink sink{fn};
    return scan_day_batches_impl(day, nullptr, sink);
  }

  template <typename Fn,
            typename = std::enable_if_t<std::is_invocable_v<Fn&, const exec::RecordBatch&>>>
  ScanResult scan_day_batches(core::CivilDate day, const ScanPredicate& predicate,
                              Fn&& fn) const {
    BatchSink sink{fn};
    return scan_day_batches_impl(day, &predicate, sink);
  }

  /// Load the raw bytes and validated block index of one day for
  /// random-access (parallel) decoding. scan_day is this plus a serial
  /// walk over the blocks.
  [[nodiscard]] DayBlockIndex load_day_blocks(core::CivilDate day) const;

  /// Decode every record of one indexed block body into `fn`, reusing
  /// `scratch` instead of allocating per block. Returns false on
  /// codec-level damage — records decoded before the damaged byte are
  /// still delivered for row-format bodies (columnar bodies decode
  /// atomically), matching scan_day's skip semantics.
  static bool decode_block(std::span<const std::byte> body, ScanScratch& scratch,
                           std::uint64_t& records_delivered,
                           core::FunctionRef<void(const flow::FlowRecord&)> fn,
                           const PrevBlockResolver* prev_blocks = nullptr);

  /// Scan one indexed block body with optional predicate pushdown,
  /// folding delivery/skip/prune accounting into `res`. The workhorse
  /// behind scan_day and the parallel day aggregators: format dispatch is
  /// per block (the body self-describes as columnar or row-stream), so one
  /// scan loop serves v1/v2/v3 files alike. `record_count` is the frame
  /// header's count (cross-checked against a v3 zone map; pass
  /// kAnyRecordCount when unknown). `prev_blocks`, when given, resolves
  /// layout-2 dictionary delta chains on random access (pass a resolver
  /// over the day's block adjacency — see PrevBlockResolver); without it a
  /// delta block only decodes when the scratch's chain cache holds its
  /// predecessor, i.e. when blocks are scanned in file order.
  static void scan_block(std::span<const std::byte> body, std::uint32_t record_count,
                         const ScanPredicate* predicate, ScanScratch& scratch, ScanResult& res,
                         core::FunctionRef<void(const flow::FlowRecord&)> fn,
                         const PrevBlockResolver* prev_blocks = nullptr);

  /// Batch counterpart of scan_block: the block's surviving rows are
  /// delivered as one RecordBatch (columnar bodies view the decode scratch
  /// directly; row bodies stage through scratch.staging). Accounting is
  /// identical to scan_block — prune/skip/zone-lie handling, delivered-row
  /// counts, valid-prefix delivery for damaged row-format bodies. An empty
  /// post-filter block invokes no sink call.
  static void scan_block_batches(std::span<const std::byte> body, std::uint32_t record_count,
                                 const ScanPredicate* predicate, ScanScratch& scratch,
                                 ScanResult& res, BatchSink fn,
                                 const PrevBlockResolver* prev_blocks = nullptr);

  /// Convenience: materialize a day (recoverable records only).
  [[nodiscard]] std::vector<flow::FlowRecord> read_day(core::CivilDate day) const;
  /// As above, but also report how the scan went.
  [[nodiscard]] std::vector<flow::FlowRecord> read_day(core::CivilDate day,
                                                       ScanResult& status) const;

  /// Integrity-check one day / every day without modifying anything.
  [[nodiscard]] DayHealth fsck_day(core::CivilDate day) const;
  [[nodiscard]] LakeHealthReport fsck() const;

  /// Repair one day / every day: quarantine damaged regions into
  /// `quarantine/` under the lake root, drop torn tails, renumber and
  /// reseal the surviving blocks, atomically replacing the file via
  /// write-temp + fsync + rename. A v2/v3 file keeps its format; a v1 file
  /// is upgraded to v2. For v3 files the pre-scan deep-verifies every
  /// block (column structure, dictionaries, zone-map truthfulness), so a
  /// lying zone map or torn column segment is quarantined even though its
  /// CRC frame is intact.
  DayHealth repair_day(core::CivilDate day);
  LakeHealthReport repair();

  /// Rewrite a v1/v3 day file as v2 (no-op on a file already at v2).
  /// v3 input is transcoded record-by-record via rewrite_day.
  core::Result<void> migrate_to_v2(core::CivilDate day);

  /// Transcode one day to the target format: decode every recoverable
  /// record, re-encode at `format`, swap in atomically (temp + fsync +
  /// rename). Unhealthy days are repaired (damage quarantined) first so
  /// the rewrite never launders corrupt bytes into a clean-looking file.
  core::Result<void> rewrite_day(core::CivilDate day, LakeFormat format);

  /// Cut a day file back to exactly `size` bytes. Crash-recovery resume
  /// (runtime::Supervisor): the pipeline checkpoint records each day's
  /// durable length; truncating back to it erases any torn tail a
  /// half-finished post-checkpoint append left behind, because appends are
  /// strictly at the end of the file. kNotFound when the day is absent.
  core::Result<void> truncate_day(core::CivilDate day, std::uint64_t size);

  /// Delete a day file entirely (resume: the day did not exist at the
  /// checkpoint). Succeeds when already absent.
  core::Result<void> remove_day(core::CivilDate day);

  /// All days present, sorted.
  [[nodiscard]] std::vector<core::CivilDate> days() const;

  [[nodiscard]] bool has_day(core::CivilDate day) const;
  [[nodiscard]] std::uint64_t file_bytes(core::CivilDate day) const;
  /// Identity of the day's file (see file_identity); default when absent.
  [[nodiscard]] FileIdentity day_identity(core::CivilDate day) const;
  [[nodiscard]] const std::filesystem::path& root() const noexcept { return root_; }

  /// Export one day as CSV (interop path). records_delivered == rows.
  ScanResult export_csv(core::CivilDate day, const std::filesystem::path& out) const;

  [[nodiscard]] static std::string day_filename(core::CivilDate day);

  /// Where repair() moves damaged bytes; inspect after a non-clean fsck.
  [[nodiscard]] std::filesystem::path quarantine_dir() const;

  /// Swap the write-path file implementation (fault-injection tests).
  /// An empty factory resets to plain POSIX files.
  void set_file_factory(FileFactory factory) {
    file_factory_ = factory ? std::move(factory) : FileFactory{make_posix_file};
  }

  /// Format for freshly created day files (appends to an existing day
  /// always continue its on-disk format). Defaults to kV3.
  void set_write_format(LakeFormat format) noexcept { write_format_ = format; }
  [[nodiscard]] LakeFormat write_format() const noexcept { return write_format_; }

  /// Catalog the v3 writer uses to materialize per-record service ids
  /// (zone maps + service column). nullptr = ServiceCatalog::standard().
  void set_write_catalog(const services::ServiceCatalog* catalog) noexcept {
    write_catalog_ = catalog;
  }

  /// Pipeline the v3 encode over `pool`: an append hands each full block
  /// (serialize → columnar transpose → per-segment compress) to the pool
  /// and commits the frames in order, so the sealed file is byte-identical
  /// to the serial writer's — only the ingest thread's wall time changes.
  /// `max_inflight` bounds the encoded-but-uncommitted blocks (0 = twice
  /// the pool size); each in-flight block owns one EncodeScratch slot, so
  /// the bound is also the steady-state memory ceiling. nullptr restores
  /// the serial encoder. The pool must outlive the lake (or a trailing
  /// set_encode_pool(nullptr)); appends themselves stay single-caller —
  /// the pipeline parallelizes one append internally, it does not make
  /// append() reentrant.
  void set_encode_pool(core::ThreadPool* pool, std::size_t max_inflight = 0) noexcept {
    encode_pool_ = pool;
    encode_max_inflight_ = max_inflight;
  }

  /// Cache each day's append cursor (resume offset, next sequence number,
  /// cumulative record count) keyed by the file's stat identity, replacing
  /// the whole-file read-and-reparse that otherwise precedes every append
  /// — O(appends · file size) for a day written in many batches. The cache
  /// is validated against size+mtime before use and dropped on any failed
  /// or out-of-band mutation (truncate, remove, repair, rewrite), so an
  /// externally modified file simply falls back to the full parse. On by
  /// default; disable to force the seed behaviour.
  void set_append_cursor_cache(bool enabled) {
    append_cursor_cache_ = enabled;
    if (!enabled) append_cursors_.clear();
  }

  /// Records per compressed block.
  static constexpr std::size_t kBlockRecords = 4096;

 private:
  /// One slot of the pipelined-encode ring: the reusable per-task scratch
  /// (satellite of the write-path overhaul — scratch survives across
  /// flushes, so the steady state allocates nothing), the recomputed
  /// dictionary chain state of the block's predecessor, the encoded body,
  /// and the in-flight handle.
  struct EncodeSlot {
    EncodeScratch scratch;
    DictChainState chain;
    core::ByteWriter body;
    std::future<void> done;
  };

  /// Cached resume point of one day file; valid only while the file still
  /// stats to exactly {file_size, mtime_ns}.
  struct AppendCursor {
    std::uint64_t file_size = 0;
    std::int64_t mtime_ns = 0;
    std::uint32_t next_seq = 0;
    std::uint64_t cum_records = 0;
    std::uint8_t version = 0;
  };

  [[nodiscard]] std::filesystem::path day_path(core::CivilDate day) const;
  /// append() minus the observability envelope (span + outcome counters).
  core::Result<std::uint64_t> append_impl(core::CivilDate day,
                                          std::span<const flow::FlowRecord> records);
  DayHealth repair_day_impl(core::CivilDate day, bool force_rewrite);
  ScanResult scan_day_impl(core::CivilDate day, const ScanPredicate* predicate,
                           RowSink fn) const;
  ScanResult scan_day_batches_impl(core::CivilDate day, const ScanPredicate* predicate,
                                   BatchSink fn) const;
  [[nodiscard]] const services::ServiceCatalog& effective_catalog() const noexcept;
  /// Chunk `records` into block frames of the requested on-disk version
  /// (plus, for v2/v3, a trailing seal), appending to `out`. Shared by
  /// append() and rewrite_day(); v3 blocks go through the encode pipeline
  /// when one is configured.
  void encode_day_elements(core::ByteWriter& out, std::span<const flow::FlowRecord> records,
                           std::uint8_t version, std::uint32_t next_seq,
                           std::uint64_t cum_records);

  std::filesystem::path root_;
  FileFactory file_factory_;
  LakeFormat write_format_ = LakeFormat::kV3;
  const services::ServiceCatalog* write_catalog_ = nullptr;
  core::ThreadPool* encode_pool_ = nullptr;
  std::size_t encode_max_inflight_ = 0;
  std::vector<EncodeSlot> encode_slots_;
  bool append_cursor_cache_ = true;
  std::map<core::CivilDate, AppendCursor> append_cursors_;
};

}  // namespace edgewatch::storage
