// Longest-prefix-match over a BGP-style RIB (paper §6.2, footnote 11:
// "we use the Routing Information Base for each month ... to map IP
// addresses to ASNs").
//
// The trie is a classic uncompressed binary trie with nodes pooled in a
// vector (index links, no pointer chasing allocations). A /24-dense RIB of
// ~1M routes fits comfortably; lookups walk at most 32 nodes. Correctness
// is property-tested against a brute-force scan in tests/test_asn.cpp and
// the trie-vs-scan tradeoff is measured in bench_ablation_lpm.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace edgewatch::asn {

class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }

  /// Insert or overwrite the value for a prefix.
  void insert(core::IPv4Prefix prefix, std::uint32_t value);

  /// Longest-prefix match; nullopt when no covering prefix exists.
  [[nodiscard]] std::optional<std::uint32_t> lookup(core::IPv4Address addr) const noexcept;

  [[nodiscard]] std::size_t prefix_count() const noexcept { return prefixes_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    std::uint32_t child[2] = {0, 0};  // 0 = absent (node 0 is the root)
    std::int64_t value = -1;          // -1 = no route terminates here
  };
  std::vector<Node> nodes_;
  std::size_t prefixes_ = 0;
};

/// One RIB snapshot: prefix → origin ASN, plus a linear copy for the
/// brute-force ablation baseline.
class Rib {
 public:
  void add_route(core::IPv4Prefix prefix, std::uint32_t asn);

  [[nodiscard]] std::optional<std::uint32_t> origin_asn(core::IPv4Address addr) const noexcept {
    return trie_.lookup(addr);
  }

  /// Linear-scan LPM over the stored routes: the ablation baseline.
  [[nodiscard]] std::optional<std::uint32_t> origin_asn_linear(
      core::IPv4Address addr) const noexcept;

  [[nodiscard]] std::size_t route_count() const noexcept { return routes_.size(); }
  [[nodiscard]] const std::vector<std::pair<core::IPv4Prefix, std::uint32_t>>& routes()
      const noexcept {
    return routes_;
  }

 private:
  PrefixTrie trie_;
  std::vector<std::pair<core::IPv4Prefix, std::uint32_t>> routes_;
};

/// Names for the autonomous systems appearing in Fig. 11's breakdowns.
class AsnDirectory {
 public:
  /// Directory preloaded with the ASNs the paper charts.
  static const AsnDirectory& standard();

  void set(std::uint32_t asn, std::string_view name);
  [[nodiscard]] std::string_view name(std::uint32_t asn) const noexcept;

  // Well-known numbers used across synth and bench code.
  static constexpr std::uint32_t kFacebook = 32934;
  static constexpr std::uint32_t kGoogle = 15169;
  static constexpr std::uint32_t kYouTubeLegacy = 43515;
  static constexpr std::uint32_t kAkamai = 20940;
  static constexpr std::uint32_t kTelia = 1299;
  static constexpr std::uint32_t kGtt = 3257;
  static constexpr std::uint32_t kNetflix = 2906;
  static constexpr std::uint32_t kIsp = 64496;  // our (anonymous) ISP
  static constexpr std::uint32_t kOther = 0;

 private:
  std::unordered_map<std::uint32_t, std::string> names_;
};

}  // namespace edgewatch::asn
