#include "asn/lpm.hpp"

namespace edgewatch::asn {

void PrefixTrie::insert(core::IPv4Prefix prefix, std::uint32_t value) {
  std::uint32_t node = 0;
  const std::uint32_t bits = prefix.base().value();
  for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
    const std::uint32_t bit = (bits >> (31 - depth)) & 1;
    std::uint32_t next = nodes_[node].child[bit];
    if (next == 0) {
      next = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back(Node{});
      nodes_[node].child[bit] = next;
    }
    node = next;
  }
  if (nodes_[node].value < 0) ++prefixes_;
  nodes_[node].value = value;
}

std::optional<std::uint32_t> PrefixTrie::lookup(core::IPv4Address addr) const noexcept {
  std::int64_t best = nodes_[0].value;
  std::uint32_t node = 0;
  const std::uint32_t bits = addr.value();
  for (std::uint8_t depth = 0; depth < 32; ++depth) {
    const std::uint32_t bit = (bits >> (31 - depth)) & 1;
    const std::uint32_t next = nodes_[node].child[bit];
    if (next == 0) break;
    node = next;
    if (nodes_[node].value >= 0) best = nodes_[node].value;
  }
  if (best < 0) return std::nullopt;
  return static_cast<std::uint32_t>(best);
}

void Rib::add_route(core::IPv4Prefix prefix, std::uint32_t asn) {
  trie_.insert(prefix, asn);
  routes_.emplace_back(prefix, asn);
}

std::optional<std::uint32_t> Rib::origin_asn_linear(core::IPv4Address addr) const noexcept {
  int best_len = -1;
  std::uint32_t best_asn = 0;
  for (const auto& [prefix, asn] : routes_) {
    // >= so a later duplicate announcement wins, matching trie overwrite
    // semantics.
    if (prefix.contains(addr) && static_cast<int>(prefix.length()) >= best_len) {
      best_len = prefix.length();
      best_asn = asn;
    }
  }
  if (best_len < 0) return std::nullopt;
  return best_asn;
}

const AsnDirectory& AsnDirectory::standard() {
  static const AsnDirectory dir = [] {
    AsnDirectory d;
    d.set(kFacebook, "FACEBOOK");
    d.set(kGoogle, "GOOGLE");
    d.set(kYouTubeLegacy, "YOUTUBE");
    d.set(kAkamai, "AKAMAI");
    d.set(kTelia, "TELIANET");
    d.set(kGtt, "GTT");
    d.set(kNetflix, "NETFLIX");
    d.set(kIsp, "ISP");
    return d;
  }();
  return dir;
}

void AsnDirectory::set(std::uint32_t asn, std::string_view name) {
  names_[asn] = std::string(name);
}

std::string_view AsnDirectory::name(std::uint32_t asn) const noexcept {
  const auto it = names_.find(asn);
  return it == names_.end() ? std::string_view{"OTHER"} : std::string_view{it->second};
}

}  // namespace edgewatch::asn
