#include "core/hash.hpp"

#include <cstring>
#include <utility>

namespace edgewatch::core {

std::uint64_t fnv1a64(std::span<const std::byte> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : data) {
    h ^= std::to_integer<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define EW_CRC32C_HW 1

/// CRC is linear over GF(2): CRC(A || B) = shift(CRC(A), len(B)) ^ CRC0(B),
/// where shift multiplies the CRC polynomial by x^(8·len(B)) mod P. That
/// lets three crc32 instruction streams run over adjacent lanes in parallel
/// (the instruction has 3-cycle latency but 1-cycle throughput — a single
/// dependent chain wastes two thirds of the unit) and be recombined
/// afterwards. The shift operator for a fixed lane length is precomputed
/// once as four 256-entry tables via log2(len) GF(2) matrix squarings.
struct CrcShiftOperator {
  std::uint32_t t[4][256];

  explicit CrcShiftOperator(std::size_t len_bytes) noexcept {
    // mat[i] = operator applied to the unit vector with bit i set; start
    // with "append one zero bit" for the reflected Castagnoli polynomial.
    std::uint32_t mat[32], tmp[32];
    mat[0] = 0x82f63b78u;
    for (int i = 1; i < 32; ++i) mat[i] = 1u << (i - 1);
    const auto times = [](const std::uint32_t m[32], std::uint32_t v) noexcept {
      std::uint32_t r = 0;
      for (int i = 0; v != 0; ++i, v >>= 1) {
        if (v & 1) r ^= m[i];
      }
      return r;
    };
    // Square up to "append 8·len_bytes zero bits".
    std::uint64_t bits = static_cast<std::uint64_t>(len_bytes) * 8;
    std::uint32_t* cur = mat;
    std::uint32_t* nxt = tmp;
    bool applied = false;
    std::uint32_t acc[32];
    while (bits != 0) {
      if (bits & 1) {
        for (int i = 0; i < 32; ++i) acc[i] = applied ? times(cur, acc[i]) : cur[i];
        applied = true;
      }
      for (int i = 0; i < 32; ++i) nxt[i] = times(cur, cur[i]);
      std::swap(cur, nxt);
      bits >>= 1;
    }
    for (int j = 0; j < 4; ++j) {
      for (std::uint32_t b = 0; b < 256; ++b) t[j][b] = times(acc, b << (8 * j));
    }
  }

  [[nodiscard]] std::uint32_t apply(std::uint32_t crc) const noexcept {
    return t[0][crc & 0xff] ^ t[1][(crc >> 8) & 0xff] ^ t[2][(crc >> 16) & 0xff] ^
           t[3][crc >> 24];
  }
};

/// SSE4.2 hardware CRC-32C: the crc32 instruction implements exactly the
/// Castagnoli polynomial this codebase uses on disk, so the result is
/// bit-identical to the table path. Three interleaved 8-byte streams keep
/// the crc unit saturated and turn the per-scan integrity pass from the
/// dominant lake-read cost into noise (~0.9 GB/s sliced tables → >10 GB/s).
/// Compiled with a target attribute and dispatched at runtime, so the
/// binary still runs on pre-Nehalem CPUs via the table fallback.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(std::span<const std::byte> data,
                                                          std::uint32_t crc) noexcept {
  constexpr std::size_t kLane = 4096;
  static const CrcShiftOperator shift_one{kLane};
  static const CrcShiftOperator shift_two{2 * kLane};
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t len = data.size();
  while (len >= 3 * kLane) {
    std::uint64_t c0 = crc;
    std::uint64_t c1 = 0;
    std::uint64_t c2 = 0;
    for (std::size_t i = 0; i < kLane; i += 8) {
      std::uint64_t v0, v1, v2;
      std::memcpy(&v0, p + i, 8);
      std::memcpy(&v1, p + kLane + i, 8);
      std::memcpy(&v2, p + 2 * kLane + i, 8);
      c0 = __builtin_ia32_crc32di(c0, v0);
      c1 = __builtin_ia32_crc32di(c1, v1);
      c2 = __builtin_ia32_crc32di(c2, v2);
    }
    crc = shift_two.apply(static_cast<std::uint32_t>(c0)) ^
          shift_one.apply(static_cast<std::uint32_t>(c1)) ^ static_cast<std::uint32_t>(c2);
    p += 3 * kLane;
    len -= 3 * kLane;
  }
  std::uint64_t c = crc;
  while (len >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    c = __builtin_ia32_crc32di(c, v);
    p += 8;
    len -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  if (len >= 4) {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    c32 = __builtin_ia32_crc32si(c32, v);
    p += 4;
    len -= 4;
  }
  while (len-- > 0) c32 = __builtin_ia32_crc32qi(c32, *p++);
  return c32;
}

bool crc32c_hw_available() noexcept {
  static const bool available = __builtin_cpu_supports("sse4.2");
  return available;
}
#endif

/// Slicing-by-four CRC-32C tables, generated at static-init time from the
/// reflected polynomial. Table 0 alone defines the CRC; tables 1-3 let the
/// hot loop consume four bytes per iteration.
struct Crc32cTables {
  std::uint32_t t[4][256];

  Crc32cTables() noexcept {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Crc32cTables& crc_tables() noexcept {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed) noexcept {
#ifdef EW_CRC32C_HW
  if (crc32c_hw_available()) return ~crc32c_hw(data, ~seed);
#endif
  const auto& t = crc_tables().t;
  std::uint32_t crc = ~seed;
  std::size_t i = 0;
  for (; i + 4 <= data.size(); i += 4) {
    crc ^= std::to_integer<std::uint32_t>(data[i]) |
           (std::to_integer<std::uint32_t>(data[i + 1]) << 8) |
           (std::to_integer<std::uint32_t>(data[i + 2]) << 16) |
           (std::to_integer<std::uint32_t>(data[i + 3]) << 24);
    crc = t[3][crc & 0xff] ^ t[2][(crc >> 8) & 0xff] ^ t[1][(crc >> 16) & 0xff] ^
          t[0][crc >> 24];
  }
  for (; i < data.size(); ++i) {
    crc = t[0][(crc ^ std::to_integer<std::uint32_t>(data[i])) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int b) noexcept {
  return (x << b) | (x >> (64 - b));
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  constexpr void round() noexcept {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }
};

constexpr std::uint64_t load64le(std::span<const std::byte> b) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= std::to_integer<std::uint64_t>(b[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::uint64_t siphash24(SipKey key, std::span<const std::byte> data) noexcept {
  SipState s{
      key.k0 ^ 0x736f6d6570736575ull,
      key.k1 ^ 0x646f72616e646f6dull,
      key.k0 ^ 0x6c7967656e657261ull,
      key.k1 ^ 0x7465646279746573ull,
  };

  const std::size_t full = data.size() & ~std::size_t{7};
  for (std::size_t i = 0; i < full; i += 8) {
    const std::uint64_t m = load64le(data.subspan(i, 8));
    s.v3 ^= m;
    s.round();
    s.round();
    s.v0 ^= m;
  }

  std::uint64_t last = std::uint64_t{data.size() & 0xff} << 56;
  for (std::size_t i = full; i < data.size(); ++i) {
    last |= std::to_integer<std::uint64_t>(data[i]) << (8 * (i - full));
  }
  s.v3 ^= last;
  s.round();
  s.round();
  s.v0 ^= last;

  s.v2 ^= 0xff;
  s.round();
  s.round();
  s.round();
  s.round();
  return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

std::uint64_t siphash24(SipKey key, std::string_view data) noexcept {
  return siphash24(key, std::span{reinterpret_cast<const std::byte*>(data.data()), data.size()});
}

}  // namespace edgewatch::core
