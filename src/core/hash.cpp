#include "core/hash.hpp"

namespace edgewatch::core {

std::uint64_t fnv1a64(std::span<const std::byte> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : data) {
    h ^= std::to_integer<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

/// Slicing-by-four CRC-32C tables, generated at static-init time from the
/// reflected polynomial. Table 0 alone defines the CRC; tables 1-3 let the
/// hot loop consume four bytes per iteration.
struct Crc32cTables {
  std::uint32_t t[4][256];

  Crc32cTables() noexcept {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Crc32cTables& crc_tables() noexcept {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed) noexcept {
  const auto& t = crc_tables().t;
  std::uint32_t crc = ~seed;
  std::size_t i = 0;
  for (; i + 4 <= data.size(); i += 4) {
    crc ^= std::to_integer<std::uint32_t>(data[i]) |
           (std::to_integer<std::uint32_t>(data[i + 1]) << 8) |
           (std::to_integer<std::uint32_t>(data[i + 2]) << 16) |
           (std::to_integer<std::uint32_t>(data[i + 3]) << 24);
    crc = t[3][crc & 0xff] ^ t[2][(crc >> 8) & 0xff] ^ t[1][(crc >> 16) & 0xff] ^
          t[0][crc >> 24];
  }
  for (; i < data.size(); ++i) {
    crc = t[0][(crc ^ std::to_integer<std::uint32_t>(data[i])) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int b) noexcept {
  return (x << b) | (x >> (64 - b));
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  constexpr void round() noexcept {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }
};

constexpr std::uint64_t load64le(std::span<const std::byte> b) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= std::to_integer<std::uint64_t>(b[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::uint64_t siphash24(SipKey key, std::span<const std::byte> data) noexcept {
  SipState s{
      key.k0 ^ 0x736f6d6570736575ull,
      key.k1 ^ 0x646f72616e646f6dull,
      key.k0 ^ 0x6c7967656e657261ull,
      key.k1 ^ 0x7465646279746573ull,
  };

  const std::size_t full = data.size() & ~std::size_t{7};
  for (std::size_t i = 0; i < full; i += 8) {
    const std::uint64_t m = load64le(data.subspan(i, 8));
    s.v3 ^= m;
    s.round();
    s.round();
    s.v0 ^= m;
  }

  std::uint64_t last = std::uint64_t{data.size() & 0xff} << 56;
  for (std::size_t i = full; i < data.size(); ++i) {
    last |= std::to_integer<std::uint64_t>(data[i]) << (8 * (i - full));
  }
  s.v3 ^= last;
  s.round();
  s.round();
  s.v0 ^= last;

  s.v2 ^= 0xff;
  s.round();
  s.round();
  s.round();
  s.round();
  return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

std::uint64_t siphash24(SipKey key, std::string_view data) noexcept {
  return siphash24(key, std::span{reinterpret_cast<const std::byte*>(data.data()), data.size()});
}

}  // namespace edgewatch::core
