#include "core/sketch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/hash.hpp"

namespace edgewatch::core {

namespace {

// Local LEB128 helpers (core cannot depend on storage::codec).
void put_uvarint(ByteWriter& w, std::uint64_t v) {
  while (v >= 0x80) {
    w.u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  w.u8(static_cast<std::uint8_t>(v));
}

std::uint64_t get_uvarint(ByteReader& r) noexcept {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    const std::uint8_t b = r.u8();
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
  }
  r.fail();  // over-long encoding
  return 0;
}

void put_f64(ByteWriter& w, double v) { w.u64le(std::bit_cast<std::uint64_t>(v)); }
double get_f64(ByteReader& r) noexcept { return std::bit_cast<double>(r.u64le()); }

/// Bias-correction constant alpha_m of the HLL estimator.
double hll_alpha(std::size_t m) noexcept {
  switch (m) {
    case 16: return 0.673;
    case 32: return 0.697;
    case 64: return 0.709;
    default: return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

// ------------------------------------------------------------ HyperLogLog

HyperLogLog::HyperLogLog(std::uint8_t precision)
    : precision_(std::clamp(precision, kMinPrecision, kMaxPrecision)),
      registers_(std::size_t{1} << precision_, 0) {}

std::uint64_t HyperLogLog::hash_value(const void* data, std::size_t size) noexcept {
  // Fixed key: estimates must be identical across runs, machines and the
  // serialized rollup files that merge them.
  static constexpr SipKey kKey{0x6577686c6c303031ull, 0x736b657463686b65ull};
  return siphash24(kKey, std::span{static_cast<const std::byte*>(data), size});
}

void HyperLogLog::add_hash(std::uint64_t hash) noexcept {
  const auto index = static_cast<std::size_t>(hash >> (64 - precision_));
  const std::uint64_t rest = hash << precision_;
  const auto rank = static_cast<std::uint8_t>(
      rest == 0 ? 64 - precision_ + 1 : std::countl_zero(rest) + 1);
  registers_[index] = std::max(registers_[index], rank);
}

bool HyperLogLog::empty() const noexcept {
  return std::all_of(registers_.begin(), registers_.end(), [](std::uint8_t r) { return r == 0; });
}

double HyperLogLog::estimate() const noexcept {
  const auto m = static_cast<double>(registers_.size());
  double inverse_sum = 0;
  std::size_t zeros = 0;
  for (const auto r : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    zeros += r == 0;
  }
  const double raw = hll_alpha(registers_.size()) * m * m / inverse_sum;
  if (raw <= 2.5 * m && zeros > 0) {
    return m * std::log(m / static_cast<double>(zeros));  // linear counting
  }
  return raw;
}

bool HyperLogLog::merge(const HyperLogLog& other) noexcept {
  if (precision_ != other.precision_) return false;
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  return true;
}

double HyperLogLog::standard_error() const noexcept {
  return 1.04 / std::sqrt(static_cast<double>(registers_.size()));
}

void HyperLogLog::serialize(ByteWriter& out) const {
  out.u8(precision_);
  // Count the (zero_run, value) pairs: one per non-zero register.
  std::uint64_t pairs = 0;
  for (const auto r : registers_) pairs += r != 0;
  put_uvarint(out, pairs);
  std::uint64_t zero_run = 0;
  for (const auto r : registers_) {
    if (r == 0) {
      ++zero_run;
      continue;
    }
    put_uvarint(out, zero_run);
    out.u8(r);
    zero_run = 0;
  }
  // Trailing zeros are implicit.
}

Result<HyperLogLog> HyperLogLog::deserialize(ByteReader& in) {
  const std::uint8_t precision = in.u8();
  if (!in.ok() || precision < kMinPrecision || precision > kMaxPrecision) {
    return Errc::kCorrupt;
  }
  HyperLogLog hll{precision};
  const std::uint64_t pairs = get_uvarint(in);
  const std::size_t m = hll.registers_.size();
  if (pairs > m) return Errc::kCorrupt;
  const auto max_rank = static_cast<std::uint8_t>(64 - precision + 1);
  std::size_t pos = 0;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const std::uint64_t zero_run = get_uvarint(in);
    const std::uint8_t value = in.u8();
    if (!in.ok()) return Errc::kTruncated;
    pos += zero_run;
    if (pos >= m || value == 0 || value > max_rank) return Errc::kCorrupt;
    hll.registers_[pos++] = value;
  }
  return hll;
}

// --------------------------------------------------------- QuantileSketch

QuantileSketch::QuantileSketch(double relative_accuracy)
    : alpha_(std::clamp(relative_accuracy, 1e-4, 0.5)),
      gamma_((1.0 + alpha_) / (1.0 - alpha_)),
      log_gamma_(std::log(gamma_)) {}

std::int32_t QuantileSketch::bucket_index(double x) const noexcept {
  return static_cast<std::int32_t>(std::ceil(std::log(x) / log_gamma_));
}

double QuantileSketch::bucket_value(std::int32_t index) const noexcept {
  // Midpoint (in the relative sense) of (gamma^(i-1), gamma^i]: any true
  // value in the bucket is within alpha of this.
  return 2.0 * std::exp(static_cast<double>(index) * log_gamma_) / (gamma_ + 1.0);
}

void QuantileSketch::add(double x, std::uint64_t weight) noexcept {
  if (weight == 0) return;
  if (!(x > 0)) x = 0;  // clamp negatives and NaN to the zero bucket
  if (x < kMinTrackedValue) {
    zero_count_ += weight;
  } else {
    buckets_[bucket_index(x)] += weight;
  }
  count_ += weight;
  sum_ += x * static_cast<double>(weight);
  max_ = std::max(max_, x);
}

double QuantileSketch::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the k-th smallest value, k in [1, count].
  const auto k = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = zero_count_;
  if (k <= cumulative) return 0;
  for (const auto& [index, c] : buckets_) {
    cumulative += c;
    if (k <= cumulative) return bucket_value(index);
  }
  return buckets_.empty() ? 0 : bucket_value(buckets_.rbegin()->first);
}

double QuantileSketch::cdf(double x) const noexcept {
  if (count_ == 0) return 0;
  if (!(x >= kMinTrackedValue)) {
    return x >= 0 ? static_cast<double>(zero_count_) / static_cast<double>(count_) : 0.0;
  }
  const std::int32_t limit = bucket_index(x);
  std::uint64_t below = zero_count_;
  for (const auto& [index, c] : buckets_) {
    if (index > limit) break;
    below += c;
  }
  return static_cast<double>(below) / static_cast<double>(count_);
}

bool QuantileSketch::merge(const QuantileSketch& other) noexcept {
  if (alpha_ != other.alpha_) return false;
  zero_count_ += other.zero_count_;
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
  for (const auto& [index, c] : other.buckets_) buckets_[index] += c;
  return true;
}

void QuantileSketch::serialize(ByteWriter& out) const {
  put_f64(out, alpha_);
  put_uvarint(out, zero_count_);
  put_f64(out, sum_);
  put_f64(out, max_);
  put_uvarint(out, buckets_.size());
  std::int64_t previous = 0;
  for (const auto& [index, c] : buckets_) {
    const std::int64_t delta = index - previous;  // ascending map order: >= 0 after first
    const auto zigzag = static_cast<std::uint64_t>((delta << 1) ^ (delta >> 63));
    put_uvarint(out, zigzag);
    put_uvarint(out, c);
    previous = index;
  }
}

Result<QuantileSketch> QuantileSketch::deserialize(ByteReader& in) {
  const double alpha = get_f64(in);
  if (!in.ok() || !(alpha >= 1e-4) || !(alpha <= 0.5)) return Errc::kCorrupt;
  QuantileSketch sketch{alpha};
  sketch.zero_count_ = get_uvarint(in);
  sketch.sum_ = get_f64(in);
  sketch.max_ = get_f64(in);
  if (std::isnan(sketch.sum_) || std::isnan(sketch.max_)) return Errc::kCorrupt;
  const std::uint64_t n = get_uvarint(in);
  if (n > 2 * static_cast<std::uint64_t>(kMaxBucketMagnitude)) return Errc::kCorrupt;
  std::int64_t index = 0;
  std::uint64_t total = sketch.zero_count_;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t zigzag = get_uvarint(in);
    const auto delta =
        static_cast<std::int64_t>((zigzag >> 1) ^ (~(zigzag & 1) + 1));
    index += delta;
    const std::uint64_t c = get_uvarint(in);
    if (!in.ok()) return Errc::kTruncated;
    if (c == 0 || std::llabs(index) > kMaxBucketMagnitude) return Errc::kCorrupt;
    if (i > 0 && delta <= 0) return Errc::kCorrupt;  // must be strictly ascending
    sketch.buckets_[static_cast<std::int32_t>(index)] = c;
    total += c;
  }
  if (!in.ok()) return Errc::kTruncated;
  sketch.count_ = total;
  return sketch;
}

}  // namespace edgewatch::core
