// Time handling for a 5-year longitudinal dataset. Flow records are stamped
// with microseconds since the Unix epoch (UTC); analytics bucket them by
// civil day, month and hour. The civil-calendar conversions use the
// days-from-civil algorithms (public-domain, Howard Hinnant) so the library
// needs no locale or timezone machinery — the paper's probes log in a single
// timezone anyway.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace edgewatch::core {

/// A proleptic-Gregorian calendar date.
struct CivilDate {
  std::int32_t year = 1970;
  std::uint8_t month = 1;  ///< 1..12
  std::uint8_t day = 1;    ///< 1..31

  [[nodiscard]] std::string to_string() const;  ///< "YYYY-MM-DD"
  static std::optional<CivilDate> parse(std::string_view s) noexcept;

  constexpr auto operator<=>(const CivilDate&) const noexcept = default;
};

/// Days since 1970-01-01 for a civil date (negative before the epoch).
[[nodiscard]] constexpr std::int64_t days_from_civil(CivilDate d) noexcept {
  std::int64_t y = d.year;
  const unsigned m = d.month;
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<unsigned>(y - era * 400);                      // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d.day - 1;    // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;                 // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

/// Inverse of days_from_civil.
[[nodiscard]] constexpr CivilDate civil_from_days(std::int64_t z) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const auto doe = static_cast<unsigned>(z - era * 146097);                   // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);               // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                    // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                            // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                                 // [1, 12]
  return {static_cast<std::int32_t>(y + (m <= 2)), static_cast<std::uint8_t>(m),
          static_cast<std::uint8_t>(d)};
}

/// ISO weekday: 1 = Monday .. 7 = Sunday. 1970-01-01 was a Thursday.
[[nodiscard]] constexpr int weekday_from_days(std::int64_t z) noexcept {
  const std::int64_t wd = ((z + 3) % 7 + 7) % 7;  // 0 = Monday
  return static_cast<int>(wd) + 1;
}

/// Microseconds since the Unix epoch, UTC.
class Timestamp {
 public:
  static constexpr std::int64_t kMicrosPerSecond = 1'000'000;
  static constexpr std::int64_t kMicrosPerDay = 86'400 * kMicrosPerSecond;

  constexpr Timestamp() noexcept = default;
  explicit constexpr Timestamp(std::int64_t micros) noexcept : micros_(micros) {}

  [[nodiscard]] static constexpr Timestamp from_seconds(std::int64_t s) noexcept {
    return Timestamp{s * kMicrosPerSecond};
  }
  /// Midnight UTC of a civil date.
  [[nodiscard]] static constexpr Timestamp from_date(CivilDate d) noexcept {
    return Timestamp{days_from_civil(d) * kMicrosPerDay};
  }
  /// A moment within a civil day.
  [[nodiscard]] static constexpr Timestamp from_date_time(CivilDate d, int hour, int minute = 0,
                                                          int second = 0, int micro = 0) noexcept {
    return Timestamp{days_from_civil(d) * kMicrosPerDay +
                     ((hour * 60 + minute) * 60 + second) * kMicrosPerSecond + micro};
  }

  [[nodiscard]] constexpr std::int64_t micros() const noexcept { return micros_; }
  [[nodiscard]] constexpr double seconds() const noexcept {
    return static_cast<double>(micros_) / kMicrosPerSecond;
  }
  [[nodiscard]] constexpr std::int64_t day_index() const noexcept {
    // Floor division: correct also for pre-epoch times.
    return micros_ >= 0 ? micros_ / kMicrosPerDay : (micros_ - (kMicrosPerDay - 1)) / kMicrosPerDay;
  }
  [[nodiscard]] constexpr CivilDate date() const noexcept { return civil_from_days(day_index()); }
  /// Hour of day 0..23 (UTC).
  [[nodiscard]] constexpr int hour() const noexcept {
    const std::int64_t in_day = micros_ - day_index() * kMicrosPerDay;
    return static_cast<int>(in_day / (3'600 * kMicrosPerSecond));
  }
  /// Minute-of-day 0..1439, used by the 10-minute bins of Fig. 4.
  [[nodiscard]] constexpr int minute_of_day() const noexcept {
    const std::int64_t in_day = micros_ - day_index() * kMicrosPerDay;
    return static_cast<int>(in_day / (60 * kMicrosPerSecond));
  }

  [[nodiscard]] std::string to_string() const;  ///< "YYYY-MM-DD HH:MM:SS.ffffff"

  constexpr auto operator<=>(const Timestamp&) const noexcept = default;

  friend constexpr Timestamp operator+(Timestamp t, std::int64_t micros) noexcept {
    return Timestamp{t.micros_ + micros};
  }
  friend constexpr std::int64_t operator-(Timestamp a, Timestamp b) noexcept {
    return a.micros_ - b.micros_;
  }

 private:
  std::int64_t micros_ = 0;
};

/// Linear month index used for the 54-month x-axes of the paper's figures.
/// month_index({2013,3}) == 0 when anchored at the dataset start.
class MonthIndex {
 public:
  constexpr MonthIndex() noexcept = default;
  constexpr MonthIndex(std::int32_t year, unsigned month) noexcept
      : v_(year * 12 + static_cast<std::int32_t>(month) - 1) {}
  explicit constexpr MonthIndex(CivilDate d) noexcept : MonthIndex(d.year, d.month) {}

  [[nodiscard]] constexpr std::int32_t year() const noexcept {
    return v_ >= 0 ? v_ / 12 : (v_ - 11) / 12;
  }
  [[nodiscard]] constexpr unsigned month() const noexcept {
    return static_cast<unsigned>(v_ - year() * 12) + 1;
  }
  [[nodiscard]] constexpr std::int32_t raw() const noexcept { return v_; }
  [[nodiscard]] constexpr CivilDate first_day() const noexcept {
    return {year(), static_cast<std::uint8_t>(month()), 1};
  }
  [[nodiscard]] std::string to_string() const;  ///< "YYYY-MM"

  constexpr auto operator<=>(const MonthIndex&) const noexcept = default;
  friend constexpr MonthIndex operator+(MonthIndex m, std::int32_t n) noexcept {
    MonthIndex r;
    r.v_ = m.v_ + n;
    return r;
  }
  friend constexpr std::int32_t operator-(MonthIndex a, MonthIndex b) noexcept {
    return a.v_ - b.v_;
  }

 private:
  std::int32_t v_ = 0;
};

/// Number of days in a civil month (handles leap years).
[[nodiscard]] constexpr int days_in_month(std::int32_t year, unsigned month) noexcept {
  constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2) {
    const bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    return leap ? 29 : 28;
  }
  return kDays[month - 1];
}

}  // namespace edgewatch::core
