// Append-only string interning arena.
//
// intern() stores each distinct string once in chunked storage and returns
// a std::string_view that stays valid until clear() — unlike views into
// map-owned std::string values, which SSO moves invalidate on rehash. The
// probe uses one pool per DN-Hunter so DPI, DN-Hunter entries, and live
// flow hints all share a single copy of each hostname; the rule engine
// uses pools for service names and trie labels.
//
// Lifetime rule: clear() invalidates every view the pool ever returned.
// Owners must therefore only clear when nothing downstream holds a view
// (the probe clears the DN-Hunter pool exactly when the flow table is
// already empty: outage handling and checkpoint restore).
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "core/flat_hash_map.hpp"
#include "core/hash.hpp"

namespace edgewatch::core {

class StringPool {
 public:
  StringPool() = default;
  // Views point into the chunks; moving the pool keeps them valid, copying
  // could not, so copies are forbidden.
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;
  StringPool(StringPool&&) noexcept = default;
  StringPool& operator=(StringPool&&) noexcept = default;

  /// A stable view of `s`, storing it on first sight.
  [[nodiscard]] std::string_view intern(std::string_view s) {
    if (const auto it = index_.find(s); it != index_.end()) return it->first;
    const std::string_view stored = append(s);
    index_.emplace(stored, true);
    return stored;
  }

  /// Distinct strings interned.
  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  /// Bytes of string payload held (not counting index overhead).
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

  /// Drop everything. Invalidates all previously returned views.
  void clear() noexcept {
    index_.clear();
    chunks_.clear();
    chunk_used_ = 0;
    chunk_size_ = 0;
    bytes_ = 0;
  }

 private:
  static constexpr std::size_t kChunkSize = 64 * 1024;

  std::string_view append(std::string_view s) {
    if (chunks_.empty() || s.size() > chunk_size_ - chunk_used_) {
      const std::size_t want = s.size() > kChunkSize ? s.size() : kChunkSize;
      chunks_.push_back(std::make_unique<char[]>(want));
      chunk_size_ = want;
      chunk_used_ = 0;
    }
    char* dst = chunks_.back().get() + chunk_used_;
    if (!s.empty()) std::memcpy(dst, s.data(), s.size());
    chunk_used_ += s.size();
    bytes_ += s.size();
    return {dst, s.size()};
  }

  FlatHashMap<std::string_view, bool, StringHash> index_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t chunk_used_ = 0;
  std::size_t chunk_size_ = 0;  ///< Capacity of the current (last) chunk.
  std::size_t bytes_ = 0;
};

}  // namespace edgewatch::core
