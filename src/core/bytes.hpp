// Bounds-checked byte cursors used by every wire-format parser/serializer.
//
// Network protocols are big-endian; ByteReader/ByteWriter therefore expose
// u8/u16/u24/u32/u64 accessors in network byte order. All reads and writes
// are checked: running past the end marks the cursor as failed and makes
// every subsequent access return zero / be ignored, so parsers can decode a
// whole header and check `ok()` once at the end instead of testing every
// field (the "monadic cursor" idiom common in packet parsers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace edgewatch::core {

/// Read-only cursor over an immutable byte buffer.
class ByteReader {
 public:
  constexpr ByteReader() noexcept = default;
  explicit constexpr ByteReader(std::span<const std::byte> data) noexcept
      : data_(data) {}

  /// Bytes not yet consumed.
  [[nodiscard]] constexpr std::size_t remaining() const noexcept {
    return failed_ ? 0 : data_.size() - pos_;
  }
  /// Absolute read offset from the start of the buffer.
  [[nodiscard]] constexpr std::size_t position() const noexcept { return pos_; }
  /// True unless some access ran past the end of the buffer.
  [[nodiscard]] constexpr bool ok() const noexcept { return !failed_; }

  [[nodiscard]] std::uint8_t u8() noexcept {
    if (!ensure(1)) return 0;
    return std::to_integer<std::uint8_t>(data_[pos_++]);
  }
  [[nodiscard]] std::uint16_t u16() noexcept { return static_cast<std::uint16_t>(big(2)); }
  [[nodiscard]] std::uint32_t u24() noexcept { return static_cast<std::uint32_t>(big(3)); }
  [[nodiscard]] std::uint32_t u32() noexcept { return static_cast<std::uint32_t>(big(4)); }
  [[nodiscard]] std::uint64_t u64() noexcept { return big(8); }

  /// Little-endian variants (QUIC public headers use LE fields).
  [[nodiscard]] std::uint32_t u32le() noexcept { return static_cast<std::uint32_t>(little(4)); }
  [[nodiscard]] std::uint64_t u64le() noexcept { return little(8); }

  /// Consume `n` bytes and return them as a subspan (empty on failure).
  [[nodiscard]] std::span<const std::byte> bytes(std::size_t n) noexcept {
    if (!ensure(n)) return {};
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Consume `n` bytes and return them as a string view over the buffer.
  [[nodiscard]] std::string_view string(std::size_t n) noexcept {
    auto b = bytes(n);
    return {reinterpret_cast<const char*>(b.data()), b.size()};
  }

  /// Skip `n` bytes.
  void skip(std::size_t n) noexcept {
    if (ensure(n)) pos_ += n;
  }

  /// Mark the cursor as failed (malformed input detected by a caller, e.g.
  /// an over-long varint): every subsequent access behaves like a read past
  /// the end.
  void fail() noexcept { failed_ = true; }

  /// Peek one byte `ahead` positions from the cursor without consuming.
  [[nodiscard]] std::uint8_t peek_u8(std::size_t ahead = 0) const noexcept {
    if (failed_ || pos_ + ahead >= data_.size()) return 0;
    return std::to_integer<std::uint8_t>(data_[pos_ + ahead]);
  }

  /// Reposition to an absolute offset (used by DNS name decompression).
  void seek(std::size_t offset) noexcept {
    if (offset > data_.size()) {
      failed_ = true;
    } else {
      pos_ = offset;
    }
  }

  /// Whole underlying buffer (not affected by the cursor).
  [[nodiscard]] constexpr std::span<const std::byte> buffer() const noexcept { return data_; }

 private:
  [[nodiscard]] bool ensure(std::size_t n) noexcept {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }
  [[nodiscard]] std::uint64_t big(std::size_t n) noexcept {
    if (!ensure(n)) return 0;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v = (v << 8) | std::to_integer<std::uint64_t>(data_[pos_ + i]);
    }
    pos_ += n;
    return v;
  }
  [[nodiscard]] std::uint64_t little(std::size_t n) noexcept {
    if (!ensure(n)) return 0;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= std::to_integer<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += n;
    return v;
  }

  std::span<const std::byte> data_{};
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Growable big-endian byte sink.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { big(v, 2); }
  void u24(std::uint32_t v) { big(v, 3); }
  void u32(std::uint32_t v) { big(v, 4); }
  void u64(std::uint64_t v) { big(v, 8); }
  void u32le(std::uint32_t v) { little(v, 4); }
  void u64le(std::uint64_t v) { little(v, 8); }

  void bytes(std::span<const std::byte> b) { buf_.insert(buf_.end(), b.begin(), b.end()); }
  void string(std::string_view s) {
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }
  void fill(std::size_t n, std::uint8_t v = 0) {
    buf_.insert(buf_.end(), n, static_cast<std::byte>(v));
  }

  /// Overwrite a previously written big-endian u16 (e.g. a length field
  /// back-patched once the payload size is known).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    if (offset + 2 > buf_.size()) return;
    buf_[offset] = static_cast<std::byte>(v >> 8);
    buf_[offset + 1] = static_cast<std::byte>(v & 0xff);
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::span<const std::byte> view() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() && { return std::move(buf_); }

  /// Drop the contents but keep the capacity: the lake's encode scratch
  /// reuses one writer per column stream across blocks and flushes, so the
  /// steady state allocates nothing.
  void clear() noexcept { buf_.clear(); }
  void reserve(std::size_t n) { buf_.reserve(n); }

 private:
  void big(std::uint64_t v, std::size_t n) {
    for (std::size_t i = n; i-- > 0;) {
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  }
  void little(std::uint64_t v, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  }

  std::vector<std::byte> buf_;
};

/// View a trivially-copyable object as bytes (for hashing).
template <typename T>
std::span<const std::byte> as_bytes_of(const T& v) noexcept {
  return {reinterpret_cast<const std::byte*>(&v), sizeof(T)};
}

/// Convert a string to an owned byte vector (test helper).
inline std::vector<std::byte> to_bytes(std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

}  // namespace edgewatch::core
