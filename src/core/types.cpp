#include "core/types.hpp"

#include <charconv>
#include <cstdio>

#include "core/hash.hpp"

namespace edgewatch::core {

std::string IPv4Address::to_string() const {
  char buf[16];
  const int n = std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", octet(0), octet(1), octet(2), octet(3));
  return std::string(buf, static_cast<std::size_t>(n));
}

std::optional<IPv4Address> IPv4Address::parse(std::string_view s) noexcept {
  std::uint32_t value = 0;
  const char* p = s.data();
  const char* end = s.data() + s.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || octet > 255 || next == p || next - p > 3) return std::nullopt;
    value = (value << 8) | octet;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return IPv4Address{value};
}

std::string IPv4Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(len_);
}

std::optional<IPv4Prefix> IPv4Prefix::parse(std::string_view s) noexcept {
  const auto slash = s.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = IPv4Address::parse(s.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned len = 0;
  const char* p = s.data() + slash + 1;
  const char* end = s.data() + s.size();
  auto [next, ec] = std::from_chars(p, end, len);
  if (ec != std::errc{} || next != end || len > 32) return std::nullopt;
  // Reject prefixes with host bits set: they are almost always input bugs.
  const IPv4Prefix candidate{*addr, static_cast<std::uint8_t>(len)};
  if (candidate.base() != *addr) return std::nullopt;
  return candidate;
}

std::string MacAddress::to_string() const {
  char buf[18];
  const int n = std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets[0],
                              octets[1], octets[2], octets[3], octets[4], octets[5]);
  return std::string(buf, static_cast<std::size_t>(n));
}

std::string FiveTuple::to_string() const {
  std::string out{core::to_string(proto)};
  out += ' ';
  out += src_ip.to_string();
  out += ':';
  out += std::to_string(src_port);
  out += " -> ";
  out += dst_ip.to_string();
  out += ':';
  out += std::to_string(dst_port);
  return out;
}

std::size_t FiveTupleHash::operator()(const FiveTuple& t) const noexcept {
  // The whole key packs into two words: (src,dst) and (ports,proto). One
  // keyed 64x64->128 multiply with the halves folded together avalanches
  // every input bit into every output bit — the same construction wyhash
  // builds on — at a tenth of the SipHash-2-4 cost. The keys are arbitrary
  // odd constants; the SipHash key this replaced was equally hardcoded, so
  // no adversarial resistance is lost.
  const std::uint64_t a =
      (static_cast<std::uint64_t>(t.src_ip.value()) << 32) | t.dst_ip.value();
  const std::uint64_t b = (static_cast<std::uint64_t>(t.src_port) << 24) |
                          (static_cast<std::uint64_t>(t.dst_port) << 8) |
                          static_cast<std::uint64_t>(t.proto);
  // b < 2^48, so b ^ k1 keeps k1's high bits and is never zero.
  const std::uint64_t x = a ^ 0x2d358dccaa6c78a5ull;
  const std::uint64_t y = b ^ 0x8bb84b93962eacc9ull;
  __extension__ using uint128 = unsigned __int128;
  const auto m = static_cast<uint128>(x) * y;
  return static_cast<std::size_t>(static_cast<std::uint64_t>(m) ^
                                  static_cast<std::uint64_t>(m >> 64));
}

}  // namespace edgewatch::core
