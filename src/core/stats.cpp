#include "core/stats.hpp"

#include <cmath>

namespace edgewatch::core {

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  n_ += other.n_;
  min_ = other.min_ < min_ ? other.min_ : min_;
  max_ = other.max_ > max_ ? other.max_ : max_;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void EmpiricalDistribution::ensure_sorted() const {
  if (!sorted_) {
    auto& mut = const_cast<std::vector<double>&>(samples_);
    std::sort(mut.begin(), mut.end());
    sorted_ = true;
  }
}

double EmpiricalDistribution::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double EmpiricalDistribution::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (q <= 0) return samples_.front();
  if (q >= 1) return samples_.back();
  // Linear interpolation between closest ranks (type-7, the R default).
  const double h = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const double frac = h - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double EmpiricalDistribution::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

std::vector<double> EmpiricalDistribution::ccdf_at(std::span<const double> grid) const {
  std::vector<double> out;
  out.reserve(grid.size());
  for (double g : grid) out.push_back(ccdf(g));
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0.0) {}

void Histogram::add(double x, double weight) noexcept {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  if (idx < 0) idx = 0;
  if (idx >= static_cast<std::int64_t>(counts_.size())) {
    idx = static_cast<std::int64_t>(counts_.size()) - 1;
  }
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

std::vector<double> log_grid(double lo, double hi, std::size_t points) {
  std::vector<double> out;
  if (points == 0 || lo <= 0 || hi <= lo) return out;
  out.reserve(points);
  const double ratio = std::log(hi / lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    out.push_back(lo * std::exp(ratio * static_cast<double>(i)));
  }
  return out;
}

}  // namespace edgewatch::core
