// Bounded single-producer/single-consumer ring queue: the handoff between
// the ShardedProbe's feeder thread (one per probe) and each shard worker.
// The fast path is lock-free — head and tail are monotonically increasing
// counters with acquire/release pairing, so a push and its matching pop
// synchronize without a mutex. Blocking push gives natural backpressure:
// when a shard falls behind, the feeder stalls instead of growing an
// unbounded backlog (a probe must bound memory, paper §2.1).
//
// The slow (blocking) path parks on a condition variable after a bounded
// spin. Wakeup correctness is the Dekker pattern: the waiter stores its
// waiting flag and THEN re-checks the ring; the notifier updates the ring
// and THEN reads the flag — with seq_cst fences between, at least one side
// must observe the other. The notifier additionally acquires the mutex
// (empty critical section) before notifying, so the notification cannot
// slip between the waiter's re-check and its wait. The mutex and fences
// stay off the uncontended fast path except for one fence per operation.
//
// T must be default-constructible and movable. Exactly one producer thread
// may call push/try_push and exactly one consumer thread pop/try_pop;
// close() may be called from any thread (typically the producer).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace edgewatch::core {

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  /// Non-blocking push; false when the ring is full or closed.
  bool try_push(T&& value) {
    if (!push_raw(value)) return false;
    wake(consumer_waiting_, not_empty_);
    return true;
  }

  /// Blocking push (backpressure). Returns false only if the queue was
  /// closed before the value could be enqueued.
  bool push(T&& value) {
    for (int spin = 0; spin < kSpinLimit; ++spin) {
      if (try_push(std::move(value))) return true;
      if (closed()) return false;
    }
    {
      std::unique_lock lock(mutex_);
      producer_waiting_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      while (true) {
        if (push_raw(value)) break;
        if (closed()) {
          producer_waiting_.store(false, std::memory_order_relaxed);
          return false;
        }
        not_full_.wait(lock);
      }
      producer_waiting_.store(false, std::memory_order_relaxed);
    }
    // Wake AFTER releasing the mutex: wake() briefly re-acquires it.
    wake(consumer_waiting_, not_empty_);
    return true;
  }

  /// Non-blocking pop; nullopt when the ring is empty (closed or not).
  std::optional<T> try_pop() {
    auto value = pop_raw();
    if (value) wake(producer_waiting_, not_full_);
    return value;
  }

  /// Blocking pop. Returns nullopt only when the queue is closed AND fully
  /// drained — every pushed value is delivered before the nullopt.
  std::optional<T> pop() {
    for (int spin = 0; spin < kSpinLimit; ++spin) {
      if (auto v = try_pop()) return v;
      if (closed()) return try_pop();  // final drain race: re-check once
    }
    std::optional<T> value;
    {
      std::unique_lock lock(mutex_);
      consumer_waiting_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      while (true) {
        value = pop_raw();
        if (value) break;
        if (closed()) {
          value = pop_raw();  // final drain race: re-check once
          break;
        }
        not_empty_.wait(lock);
      }
      consumer_waiting_.store(false, std::memory_order_relaxed);
    }
    // Wake AFTER releasing the mutex: wake() briefly re-acquires it.
    if (value) wake(producer_waiting_, not_full_);
    return value;
  }

  /// No further pushes succeed; blocked producers and consumers wake up.
  /// The consumer still drains whatever was already enqueued.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_.store(true, std::memory_order_release);
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  static constexpr int kSpinLimit = 256;

  /// Ring-only push: no wakeup, safe to call with mutex_ held. On failure
  /// `value` is left untouched.
  bool push_raw(T& value) {
    if (closed()) return false;
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size()) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Ring-only pop: no wakeup, safe to call with mutex_ held.
  std::optional<T> pop_raw() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return std::nullopt;
    std::optional<T> value{std::move(slots_[head & mask_])};
    head_.store(head + 1, std::memory_order_release);
    return value;
  }

  /// Called WITHOUT mutex_ held (it re-acquires it to order the notify).
  void wake(std::atomic<bool>& waiting, std::condition_variable& cv) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiting.load(std::memory_order_relaxed)) {
      { std::lock_guard lock(mutex_); }  // order notify after the re-check
      cv.notify_one();
    }
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::atomic<bool> closed_{false};
  std::atomic<bool> producer_waiting_{false};
  std::atomic<bool> consumer_waiting_{false};
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
};

}  // namespace edgewatch::core
