// Fundamental network value types shared by every module: IPv4 addresses
// and prefixes, MAC addresses, transport protocols and the 5-tuple flow key.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace edgewatch::core {

/// An IPv4 address stored in host byte order so arithmetic and prefix
/// operations are natural; (de)serialization converts at the wire boundary.
class IPv4Address {
 public:
  constexpr IPv4Address() noexcept = default;
  explicit constexpr IPv4Address(std::uint32_t host_order) noexcept : v_(host_order) {}
  constexpr IPv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
      : v_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) | d) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return v_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(v_ >> (8 * (3 - i)));
  }

  /// Dotted-quad rendering, e.g. "130.192.181.193".
  [[nodiscard]] std::string to_string() const;

  /// Parse dotted-quad notation; returns nullopt on malformed input.
  static std::optional<IPv4Address> parse(std::string_view s) noexcept;

  constexpr auto operator<=>(const IPv4Address&) const noexcept = default;

 private:
  std::uint32_t v_ = 0;
};

/// A CIDR prefix, e.g. 157.240.0.0/16. Invariant: host bits are zero.
class IPv4Prefix {
 public:
  constexpr IPv4Prefix() noexcept = default;
  constexpr IPv4Prefix(IPv4Address base, std::uint8_t length) noexcept
      : base_(IPv4Address{length == 0 ? 0 : (base.value() & mask(length))}),
        len_(length <= 32 ? length : 32) {}

  [[nodiscard]] constexpr IPv4Address base() const noexcept { return base_; }
  [[nodiscard]] constexpr std::uint8_t length() const noexcept { return len_; }

  [[nodiscard]] constexpr bool contains(IPv4Address a) const noexcept {
    return len_ == 0 || ((a.value() & mask(len_)) == base_.value());
  }

  /// Number of addresses covered by this prefix.
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - len_);
  }

  [[nodiscard]] std::string to_string() const;
  static std::optional<IPv4Prefix> parse(std::string_view s) noexcept;

  constexpr auto operator<=>(const IPv4Prefix&) const noexcept = default;

 private:
  static constexpr std::uint32_t mask(std::uint8_t len) noexcept {
    return len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
  }
  IPv4Address base_{};
  std::uint8_t len_ = 0;
};

/// 48-bit Ethernet address.
struct MacAddress {
  std::array<std::uint8_t, 6> octets{};

  [[nodiscard]] std::string to_string() const;
  constexpr auto operator<=>(const MacAddress&) const noexcept = default;
};

/// Transport protocols the probe tracks (IANA protocol numbers).
enum class TransportProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
  kOther = 255,
};

[[nodiscard]] constexpr std::string_view to_string(TransportProto p) noexcept {
  switch (p) {
    case TransportProto::kTcp: return "TCP";
    case TransportProto::kUdp: return "UDP";
    default: return "OTHER";
  }
}

/// The classical flow key: protocol plus both endpoints. Directionality is
/// preserved (src = initiator once the flow table normalizes it).
struct FiveTuple {
  IPv4Address src_ip;
  IPv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  TransportProto proto = TransportProto::kOther;

  /// The same flow seen from the opposite direction.
  [[nodiscard]] constexpr FiveTuple reversed() const noexcept {
    return {dst_ip, src_ip, dst_port, src_port, proto};
  }

  [[nodiscard]] std::string to_string() const;
  constexpr auto operator<=>(const FiveTuple&) const noexcept = default;
};

/// Hash functor for FiveTuple usable with unordered containers. Defined in
/// types.cpp as a keyed 128-bit multiply-mix: strong enough that similar
/// addresses and sequential ports spread over the whole table, and cheap
/// enough to run two or three times per packet (the per-packet SipHash it
/// replaced was ~25% of the probe's flow-table budget).
struct FiveTupleHash {
  /// The result is fully mixed; FlatHashMap skips its own finalizer.
  using is_avalanching = void;
  [[nodiscard]] std::size_t operator()(const FiveTuple& t) const noexcept;
};

struct IPv4AddressHash {
  [[nodiscard]] std::size_t operator()(IPv4Address a) const noexcept {
    // Fibonacci scrambling is enough for one 32-bit word.
    return static_cast<std::size_t>(a.value() * 0x9E3779B97F4A7C15ull >> 16);
  }
};

}  // namespace edgewatch::core
