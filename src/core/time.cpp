#include "core/time.hpp"

#include <charconv>
#include <cstdio>

namespace edgewatch::core {

std::string CivilDate::to_string() const {
  char buf[16];
  const int n = std::snprintf(buf, sizeof buf, "%04d-%02u-%02u", year, month, day);
  return std::string(buf, static_cast<std::size_t>(n));
}

std::optional<CivilDate> CivilDate::parse(std::string_view s) noexcept {
  // Expect "YYYY-MM-DD".
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') return std::nullopt;
  int year = 0;
  unsigned month = 0;
  unsigned day = 0;
  auto parse_field = [](std::string_view f, auto& out) {
    auto [p, ec] = std::from_chars(f.data(), f.data() + f.size(), out);
    return ec == std::errc{} && p == f.data() + f.size();
  };
  if (!parse_field(s.substr(0, 4), year) || !parse_field(s.substr(5, 2), month) ||
      !parse_field(s.substr(8, 2), day)) {
    return std::nullopt;
  }
  if (month < 1 || month > 12 || day < 1 ||
      day > static_cast<unsigned>(days_in_month(year, month))) {
    return std::nullopt;
  }
  return CivilDate{year, static_cast<std::uint8_t>(month), static_cast<std::uint8_t>(day)};
}

std::string Timestamp::to_string() const {
  const CivilDate d = date();
  const std::int64_t in_day = micros_ - day_index() * kMicrosPerDay;
  const auto secs = in_day / kMicrosPerSecond;
  const auto frac = in_day % kMicrosPerSecond;
  char buf[40];
  const int n = std::snprintf(buf, sizeof buf, "%04d-%02u-%02u %02lld:%02lld:%02lld.%06lld", d.year,
                              d.month, d.day, static_cast<long long>(secs / 3600),
                              static_cast<long long>((secs / 60) % 60),
                              static_cast<long long>(secs % 60), static_cast<long long>(frac));
  return std::string(buf, static_cast<std::size_t>(n));
}

std::string MonthIndex::to_string() const {
  char buf[12];
  const int n = std::snprintf(buf, sizeof buf, "%04d-%02u", year(), month());
  return std::string(buf, static_cast<std::size_t>(n));
}

}  // namespace edgewatch::core
