// Error taxonomy for the storage and capture layers. A five-year pipeline
// (paper §2.3) must tell *why* an operation failed — a missing day, a torn
// tail after a probe crash, a checksum mismatch on ageing disks and a full
// filesystem each demand a different reaction — instead of collapsing all
// of them into `false`/`nullopt`.
//
// Result<T> carries either a value or an Errc. Its accessor surface is a
// superset of std::optional's (has_value / operator* / operator-> /
// value_or), so call sites written against the old optional-returning APIs
// keep compiling while new code can branch on error().
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>

namespace edgewatch::core {

enum class Errc : std::uint8_t {
  kOk = 0,
  kIoError,      ///< open/read/write/close failed at the OS level.
  kNoSpace,      ///< ENOSPC: the volume is full.
  kNotFound,     ///< File or day absent (distinct from unreadable).
  kBadMagic,     ///< Not one of our files at all.
  kBadVersion,   ///< Our container, but a version this reader cannot parse.
  kCorrupt,      ///< Structure or checksum mismatch: the bytes are damaged.
  kTruncated,    ///< Torn tail: the file ends mid-element (unclean append).
  kEndOfStream,  ///< Clean end of input — iteration, not failure.
  kOverflow,     ///< Malformed variable-length encoding exceeding the type.
  kUnsupported,  ///< Valid input requesting a capability we do not have.
  kCrashed,      ///< Fault injection: the simulated process died here.
};

[[nodiscard]] constexpr std::string_view to_string(Errc e) noexcept {
  switch (e) {
    case Errc::kOk: return "ok";
    case Errc::kIoError: return "io-error";
    case Errc::kNoSpace: return "no-space";
    case Errc::kNotFound: return "not-found";
    case Errc::kBadMagic: return "bad-magic";
    case Errc::kBadVersion: return "bad-version";
    case Errc::kCorrupt: return "corrupt";
    case Errc::kTruncated: return "truncated";
    case Errc::kEndOfStream: return "end-of-stream";
    case Errc::kOverflow: return "overflow";
    case Errc::kUnsupported: return "unsupported";
    case Errc::kCrashed: return "crashed";
  }
  return "unknown";
}

/// Value-or-error. Constructing from a T yields success; constructing from
/// an Errc yields failure (Errc::kOk is not a valid failure code).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Errc error) : error_(error) {}          // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const noexcept { return value_.has_value(); }
  [[nodiscard]] explicit operator bool() const noexcept { return has_value(); }
  [[nodiscard]] Errc error() const noexcept { return error_; }

  [[nodiscard]] T& operator*() noexcept { return *value_; }
  [[nodiscard]] const T& operator*() const noexcept { return *value_; }
  [[nodiscard]] T* operator->() noexcept { return &*value_; }
  [[nodiscard]] const T* operator->() const noexcept { return &*value_; }
  [[nodiscard]] T& value() { return value_.value(); }
  [[nodiscard]] const T& value() const { return value_.value(); }

  template <typename U>
  [[nodiscard]] T value_or(U&& fallback) const& {
    return value_ ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  std::optional<T> value_;
  Errc error_ = Errc::kOk;
};

/// Status-only specialization: success, or the Errc explaining why not.
template <>
class Result<void> {
 public:
  Result() noexcept = default;
  Result(Errc error) noexcept : error_(error) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const noexcept { return error_ == Errc::kOk; }
  [[nodiscard]] explicit operator bool() const noexcept { return has_value(); }
  [[nodiscard]] bool ok() const noexcept { return has_value(); }
  [[nodiscard]] Errc error() const noexcept { return error_; }

 private:
  Errc error_ = Errc::kOk;
};

}  // namespace edgewatch::core
