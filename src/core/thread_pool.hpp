// Shared worker pool for the stage-one analytics fan-out (days and
// blocks-within-day) and any other embarrassingly parallel batch work.
// Deliberately a simple mutex-guarded task queue, not a work-stealing
// scheduler: the pipeline's tasks are coarse (a compressed block, a day
// file), so queue contention is negligible next to task cost and the
// simple design is easy to prove correct under TSan.
//
// Error-awareness: submit() returns a std::future that carries the task's
// result or its exception; parallel_for() rethrows the first failure after
// every chunk finished, so a corrupt block cannot vanish silently inside a
// worker. An optional bound on queued tasks gives backpressure — submit()
// blocks while the backlog is at the limit.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace edgewatch::core {

class ThreadPool {
 public:
  /// `threads == 0` uses the hardware concurrency (at least 1).
  /// `max_pending == 0` means an unbounded task queue; otherwise submit()
  /// blocks while `max_pending` tasks are already queued (backpressure).
  explicit ThreadPool(std::size_t threads = 0, std::size_t max_pending = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Stop accepting tasks, finish everything queued, join the workers.
  /// Blocked submitters are woken and fail with std::runtime_error.
  /// Idempotent; also called by the destructor.
  void shutdown();

  /// Queue a task; the future carries its result or exception. Throws
  /// std::runtime_error if the pool is shut down (including while blocked
  /// on a full queue).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Run fn(i) for every i in [begin, end), chunked across the pool. The
  /// calling thread blocks until all chunks finished; the first exception
  /// thrown by any fn is rethrown here. The chunks capture `fn` by
  /// reference, so even when submit() itself fails mid-fan-out (a shutdown
  /// race) every chunk already queued is waited for before the error
  /// leaves this frame — no task ever outlives the callable it references.
  /// Must not be called from inside a pool task (the caller would wait on
  /// a queue it is supposed to drain).
  template <typename F>
  void parallel_for(std::size_t begin, std::size_t end, F&& fn) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    const std::size_t chunks = std::min(n, size() * 4);
    const std::size_t chunk = (n + chunks - 1) / chunks;
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    std::exception_ptr first_error;
    for (std::size_t lo = begin; lo < end; lo += chunk) {
      const std::size_t hi = std::min(lo + chunk, end);
      try {
        futures.push_back(submit([&fn, lo, hi] {
          for (std::size_t i = lo; i < hi; ++i) fn(i);
        }));
      } catch (...) {
        first_error = std::current_exception();
        break;
      }
    }
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  /// Tasks queued but not yet started (observability/tests).
  [[nodiscard]] std::size_t pending() const;

  /// Exceptions that escaped a task outside the packaged_task capture
  /// (raw enqueued work). Each would previously have terminated the whole
  /// process via a dying worker; now the worker survives and the event is
  /// counted.
  [[nodiscard]] std::uint64_t stray_exceptions() const noexcept {
    return stray_exceptions_.load(std::memory_order_relaxed);
  }

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable task_ready_;   ///< workers wait here
  std::condition_variable space_ready_;  ///< bounded submitters wait here
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t max_pending_ = 0;
  std::atomic<std::uint64_t> stray_exceptions_{0};
  bool stopping_ = false;
};

}  // namespace edgewatch::core
