// Keyed and unkeyed hashing used across the project:
//  - fnv1a64: fast unkeyed hash for table lookups on short strings.
//  - crc32c: the Castagnoli CRC (as in iSCSI/ext4/LevelDB), the on-disk
//    integrity check of the storage layer — strong burst-error detection
//    for the bit flips and torn writes a five-year lake accumulates.
//  - SipHash-2-4: a keyed PRF; the anonymizer (CryptoPAn construction)
//    uses it where cryptographic key-independence matters. Implemented
//    from the reference description (Aumasson & Bernstein, 2012). The flow
//    table hashed with it too until the hot-path overhaul; per-packet
//    hashing now uses a keyed multiply-mix (see FiveTupleHash) an order of
//    magnitude cheaper, trading PRF-grade flood resistance the hardcoded
//    key never provided anyway.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace edgewatch::core {

/// 64-bit FNV-1a over raw bytes.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::byte> data) noexcept;

/// Transparent string hasher for heterogeneous container lookup: hashes
/// std::string, std::string_view, and const char* identically, so a
/// string-keyed map can be probed with a string_view without materializing
/// a temporary std::string (the probe's classify path depends on this).
struct StringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return static_cast<std::size_t>(fnv1a64(s));
  }
};

/// CRC-32C (Castagnoli, reflected polynomial 0x82f63b78). `seed` chains
/// incremental computation: crc32c(b, crc32c(a)) == crc32c(a ++ b).
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> data,
                                   std::uint32_t seed = 0) noexcept;

/// 128-bit key for SipHash.
struct SipKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;
};

/// SipHash-2-4 keyed 64-bit PRF.
[[nodiscard]] std::uint64_t siphash24(SipKey key, std::span<const std::byte> data) noexcept;
[[nodiscard]] std::uint64_t siphash24(SipKey key, std::string_view data) noexcept;

/// Convenience: hash a trivially-copyable value.
template <typename T>
[[nodiscard]] std::uint64_t siphash24_value(SipKey key, const T& v) noexcept {
  return siphash24(key, std::span{reinterpret_cast<const std::byte*>(&v), sizeof(T)});
}

}  // namespace edgewatch::core
