// Mergeable sketch primitives for the rollup store (query::). Two sketches
// cover every approximate metric the paper's figures need:
//
//  - HyperLogLog: distinct counting (distinct subscribers per service,
//    distinct server IPs per ASN). Flajolet et al. 2007 with the standard
//    linear-counting small-range correction. With precision p the sketch
//    holds m = 2^p registers and the estimate's relative standard error is
//    1.04/sqrt(m); the *documented contract* (what golden tests assert) is
//    |est - true| <= 3 * 1.04/sqrt(m) * true  once true > m/4 — below that
//    the linear-counting regime is far more accurate in practice. Merging
//    is register-wise max: merge(a, b) sketches exactly the set union, so
//    day sketches roll up into week/month/range answers losslessly.
//
//  - QuantileSketch: a DDSketch-style log-bucketed quantile sketch
//    (Masson et al., VLDB 2019) for RTT, flow size and per-subscriber
//    volume distributions. Values collapse into geometric buckets
//    [gamma^(i-1), gamma^i) with gamma = (1+alpha)/(1-alpha); any returned
//    quantile v_est satisfies |v_est - v_true| <= alpha * v_true (relative
//    *value* error, which is what "median RTT within 1%" means). Merging
//    is bucket-wise addition and is exact: merge(a, b) equals the sketch of
//    the concatenated streams, bit for bit.
//
// Both sketches are deterministic (no RNG; HLL hashes through SipHash with
// a fixed key), serialize through ByteWriter/ByteReader, and reject
// incompatible merges (differing precision/accuracy) by returning false.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/bytes.hpp"
#include "core/result.hpp"

namespace edgewatch::core {

class HyperLogLog {
 public:
  static constexpr std::uint8_t kDefaultPrecision = 12;  // 4096 registers, 1.63% SE
  static constexpr std::uint8_t kMinPrecision = 4;
  static constexpr std::uint8_t kMaxPrecision = 16;

  explicit HyperLogLog(std::uint8_t precision = kDefaultPrecision);

  /// Insert a pre-hashed 64-bit value. The hash must be uniform; use add()
  /// unless you already pay for a strong hash elsewhere.
  void add_hash(std::uint64_t hash) noexcept;

  /// Insert a trivially-copyable value (hashed with SipHash under a fixed
  /// project-wide key, so estimates are stable across runs and machines).
  template <typename T>
  void add(const T& value) noexcept {
    add_hash(hash_value(&value, sizeof(T)));
  }

  /// Estimated number of distinct values added.
  [[nodiscard]] double estimate() const noexcept;

  /// Register-wise max: afterwards *this sketches the union of both input
  /// sets. Returns false (and leaves *this unchanged) on precision mismatch.
  bool merge(const HyperLogLog& other) noexcept;

  [[nodiscard]] std::uint8_t precision() const noexcept { return precision_; }
  [[nodiscard]] std::size_t register_count() const noexcept { return registers_.size(); }
  [[nodiscard]] bool empty() const noexcept;

  /// Relative standard error of estimate(): 1.04 / sqrt(2^precision).
  [[nodiscard]] double standard_error() const noexcept;
  /// The documented contract bound golden tests assert: 3 standard errors.
  [[nodiscard]] double error_bound() const noexcept { return 3.0 * standard_error(); }

  /// Wire format: u8 precision | registers, run-length encoded as
  /// (varint zero_run, u8 value) pairs — day sketches of quiet services are
  /// mostly zero, so RLE keeps the rollup files compact.
  void serialize(ByteWriter& out) const;
  [[nodiscard]] static Result<HyperLogLog> deserialize(ByteReader& in);

  bool operator==(const HyperLogLog& other) const noexcept = default;

 private:
  static std::uint64_t hash_value(const void* data, std::size_t size) noexcept;

  std::uint8_t precision_;
  std::vector<std::uint8_t> registers_;
};

class QuantileSketch {
 public:
  static constexpr double kDefaultAccuracy = 0.01;  ///< 1% relative value error.
  /// Values below this collapse into the zero bucket (exact count kept).
  static constexpr double kMinTrackedValue = 1e-9;
  /// Safety valve on malicious/corrupt input: bucket indices outside
  /// +/- kMaxBucketMagnitude are rejected at deserialization.
  static constexpr std::int32_t kMaxBucketMagnitude = 1 << 20;

  explicit QuantileSketch(double relative_accuracy = kDefaultAccuracy);

  /// Insert `weight` occurrences of the non-negative value x (negative x is
  /// clamped to the zero bucket — none of our metrics are signed).
  void add(double x, std::uint64_t weight = 1) noexcept;

  /// Inverse CDF; q in [0,1]. With n values added, returns a value within
  /// relative_accuracy() of the exact q-quantile (nearest-rank definition).
  /// 0 when the sketch is empty.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double median() const noexcept { return quantile(0.5); }

  /// Fraction of inserted values <= x (the CDF; 1 - cdf(x) is Fig. 2's
  /// CCDF). Exact up to bucket granularity.
  [[nodiscard]] double cdf(double x) const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Exact running sum — means from the sketch are exact, not approximate.
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Bucket-wise addition; exact (merged sketch == sketch of concatenated
  /// streams). Returns false on relative-accuracy mismatch.
  bool merge(const QuantileSketch& other) noexcept;

  [[nodiscard]] double relative_accuracy() const noexcept { return alpha_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }

  /// Wire format: f64 alpha | varint zero_count | f64 sum | f64 max |
  /// varint bucket_count | (zigzag index delta, varint count)*.
  void serialize(ByteWriter& out) const;
  [[nodiscard]] static Result<QuantileSketch> deserialize(ByteReader& in);

  bool operator==(const QuantileSketch& other) const noexcept = default;

 private:
  [[nodiscard]] std::int32_t bucket_index(double x) const noexcept;
  [[nodiscard]] double bucket_value(std::int32_t index) const noexcept;

  double alpha_;
  double gamma_;
  double log_gamma_;
  std::uint64_t zero_count_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double max_ = 0;
  std::map<std::int32_t, std::uint64_t> buckets_;
};

}  // namespace edgewatch::core
