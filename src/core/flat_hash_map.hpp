// Open-addressing hash map for the probe's per-packet hot path.
//
// SwissTable-style layout: one control byte per slot (empty 0x80, deleted
// 0xFE, or the low 7 bits of the hash for a full slot) probed eight at a
// time with SWAR word tricks, and a separate flat slot array holding the
// key/value pairs. Compared with std::unordered_map this removes the
// per-node allocation, keeps probe chains in one or two cache lines, and
// lets lookups reject 7/8 of non-matching slots without ever touching the
// slot array.
//
// Departures from the standard map, deliberate for this codebase:
//   - iterators and references are invalidated by any insert (rehash may
//     move slots); erase never moves other elements;
//   - iteration order is arbitrary and changes across rehashes — every
//     consumer in this project either sorts (flow export by ingest_seq) or
//     merges order-independently (day aggregates, rollups);
//   - find() is heterogeneous out of the box: any key type the hasher and
//     the equality functor accept works without building a temporary Key
//     (pass a transparent hasher such as core::StringHash).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace edgewatch::core {

template <typename Key, typename T, typename Hash = std::hash<Key>,
          typename Eq = std::equal_to<>>
class FlatHashMap {
 public:
  using key_type = Key;
  using mapped_type = T;
  using value_type = std::pair<const Key, T>;
  using size_type = std::size_t;

 private:
  static constexpr std::uint8_t kEmpty = 0x80;    // 1000'0000
  static constexpr std::uint8_t kDeleted = 0xfe;  // 1111'1110 (tombstone)
  static constexpr std::size_t kGroupWidth = 8;
  static constexpr std::uint64_t kLsbs = 0x0101010101010101ull;
  static constexpr std::uint64_t kMsbs = 0x8080808080808080ull;
  static constexpr std::size_t kNpos = ~std::size_t{0};

  static constexpr bool is_full(std::uint8_t ctrl) noexcept { return (ctrl & 0x80) == 0; }

  // Slots are constructed/destroyed through the mutable pair (so rehash can
  // move the key) but exposed to users as pair<const Key, T>. The two pair
  // types are layout-identical; this is the same aliasing scheme the
  // well-known open-addressing maps use.
  union Slot {
    Slot() noexcept {}
    ~Slot() {}
    std::pair<Key, T> mutable_kv;
    value_type kv;
  };

  static std::uint64_t load_group(const std::uint8_t* p) noexcept {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof v);
    if constexpr (std::endian::native == std::endian::big) {
      std::uint64_t r = 0;
      for (int i = 0; i < 8; ++i) r = (r << 8) | ((v >> (8 * i)) & 0xff);
      v = r;
    }
    return v;
  }

  // Byte lanes equal to h2. May report false positives when neighbouring
  // lanes interact through the subtraction borrow; callers always confirm
  // with a key comparison, and lanes with the high bit set (empty/deleted)
  // can never report, so the slot access is safe.
  static std::uint64_t match_h2(std::uint64_t group, std::uint8_t h2) noexcept {
    const std::uint64_t x = group ^ (kLsbs * h2);
    return (x - kLsbs) & ~x & kMsbs;
  }
  // Exact per-lane masks (no carries): empty has bit7=1,bit6=0; deleted has
  // bit7=1,bit0=0; full lanes have bit7=0.
  static std::uint64_t mask_empty(std::uint64_t group) noexcept {
    return group & ~(group << 6) & kMsbs;
  }
  static std::uint64_t mask_empty_or_deleted(std::uint64_t group) noexcept {
    return group & ~(group << 7) & kMsbs;
  }
  static std::size_t lowest_lane(std::uint64_t mask) noexcept {
    return static_cast<std::size_t>(std::countr_zero(mask)) >> 3;
  }

  template <bool Const>
  class Iter {
    using SlotPtr = std::conditional_t<Const, const Slot*, Slot*>;

   public:
    using value_type = FlatHashMap::value_type;
    using reference = std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    Iter() = default;
    // Conversion iterator -> const_iterator (a template so it can never be
    // mistaken for — and suppress — the implicit copy constructor).
    template <bool OtherConst>
      requires(Const && !OtherConst)
    Iter(const Iter<OtherConst>& other) noexcept
        : ctrl_(other.ctrl_), end_(other.end_), slot_(other.slot_) {}

    reference operator*() const noexcept { return slot_->kv; }
    pointer operator->() const noexcept { return &slot_->kv; }

    Iter& operator++() noexcept {
      ++ctrl_;
      ++slot_;
      skip_to_full();
      return *this;
    }
    Iter operator++(int) noexcept {
      Iter copy = *this;
      ++*this;
      return copy;
    }

    friend bool operator==(const Iter& a, const Iter& b) noexcept { return a.ctrl_ == b.ctrl_; }

   private:
    friend class FlatHashMap;
    friend class Iter<true>;
    Iter(const std::uint8_t* ctrl, const std::uint8_t* end, SlotPtr slot) noexcept
        : ctrl_(ctrl), end_(end), slot_(slot) {}
    void skip_to_full() noexcept {
      while (ctrl_ != end_ && !is_full(*ctrl_)) {
        ++ctrl_;
        ++slot_;
      }
    }

    const std::uint8_t* ctrl_ = nullptr;
    const std::uint8_t* end_ = nullptr;
    SlotPtr slot_ = nullptr;
  };

 public:
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatHashMap() = default;
  explicit FlatHashMap(size_type expected, Hash hash = Hash{}, Eq eq = Eq{})
      : hash_(std::move(hash)), eq_(std::move(eq)) {
    if (expected > 0) reserve(expected);
  }

  FlatHashMap(const FlatHashMap& other) : hash_(other.hash_), eq_(other.eq_) {
    reserve(other.size_);
    for (const auto& kv : other) emplace(kv.first, kv.second);
  }
  FlatHashMap(FlatHashMap&& other) noexcept
      : ctrl_(std::exchange(other.ctrl_, nullptr)),
        slots_(std::exchange(other.slots_, nullptr)),
        capacity_(std::exchange(other.capacity_, 0)),
        size_(std::exchange(other.size_, 0)),
        deleted_(std::exchange(other.deleted_, 0)),
        growth_left_(std::exchange(other.growth_left_, 0)),
        hash_(std::move(other.hash_)),
        eq_(std::move(other.eq_)) {}
  FlatHashMap& operator=(const FlatHashMap& other) {
    if (this == &other) return *this;
    FlatHashMap copy{other};
    swap(copy);
    return *this;
  }
  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    if (this == &other) return *this;
    destroy_all();
    deallocate();
    ctrl_ = std::exchange(other.ctrl_, nullptr);
    slots_ = std::exchange(other.slots_, nullptr);
    capacity_ = std::exchange(other.capacity_, 0);
    size_ = std::exchange(other.size_, 0);
    deleted_ = std::exchange(other.deleted_, 0);
    growth_left_ = std::exchange(other.growth_left_, 0);
    hash_ = std::move(other.hash_);
    eq_ = std::move(other.eq_);
    return *this;
  }
  ~FlatHashMap() {
    destroy_all();
    deallocate();
  }

  void swap(FlatHashMap& other) noexcept {
    std::swap(ctrl_, other.ctrl_);
    std::swap(slots_, other.slots_);
    std::swap(capacity_, other.capacity_);
    std::swap(size_, other.size_);
    std::swap(deleted_, other.deleted_);
    std::swap(growth_left_, other.growth_left_);
    std::swap(hash_, other.hash_);
    std::swap(eq_, other.eq_);
  }

  [[nodiscard]] size_type size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Slot count (power of two); 0 before the first insert.
  [[nodiscard]] size_type capacity() const noexcept { return capacity_; }
  /// Live load factor over the slot array.
  [[nodiscard]] double load_factor() const noexcept {
    return capacity_ ? static_cast<double>(size_) / static_cast<double>(capacity_) : 0.0;
  }

  iterator begin() noexcept {
    iterator it{ctrl_, ctrl_ + capacity_, slots_};
    it.skip_to_full();
    return it;
  }
  const_iterator begin() const noexcept {
    const_iterator it{ctrl_, ctrl_ + capacity_, slots_};
    it.skip_to_full();
    return it;
  }
  iterator end() noexcept { return {ctrl_ + capacity_, ctrl_ + capacity_, slots_ + capacity_}; }
  const_iterator end() const noexcept {
    return {ctrl_ + capacity_, ctrl_ + capacity_, slots_ + capacity_};
  }
  const_iterator cbegin() const noexcept { return begin(); }
  const_iterator cend() const noexcept { return end(); }

  template <typename K>
  [[nodiscard]] iterator find(const K& key) noexcept {
    const std::size_t idx = find_index(key, hash_of(key));
    return idx == kNpos ? end() : iterator_at(idx);
  }
  template <typename K>
  [[nodiscard]] const_iterator find(const K& key) const noexcept {
    const std::size_t idx = find_index(key, hash_of(key));
    return idx == kNpos ? end() : const_iterator_at(idx);
  }
  /// Prefetch the control group and primary slot `key` would probe. A pure
  /// performance hint with no observable effect — useful when the caller
  /// knows a lookup is imminent and has other work to overlap with the
  /// memory fetch (the probe's pipelined frame replay).
  template <typename K>
  void prefetch(const K& key) const noexcept {
    if (capacity_ == 0) return;
    const std::uint64_t h = hash_of(key);
    const std::size_t pos = (h >> 7) & (capacity_ - 1);
    __builtin_prefetch(ctrl_ + pos);
    __builtin_prefetch(slots_ + pos);
  }

  template <typename K>
  [[nodiscard]] bool contains(const K& key) const noexcept {
    return find_index(key, hash_of(key)) != kNpos;
  }
  template <typename K>
  [[nodiscard]] size_type count(const K& key) const noexcept {
    return contains(key) ? 1 : 0;
  }

  template <typename K>
  [[nodiscard]] T& at(const K& key) {
    const std::size_t idx = find_index(key, hash_of(key));
    if (idx == kNpos) throw std::out_of_range("FlatHashMap::at");
    return slots_[idx].kv.second;
  }
  template <typename K>
  [[nodiscard]] const T& at(const K& key) const {
    const std::size_t idx = find_index(key, hash_of(key));
    if (idx == kNpos) throw std::out_of_range("FlatHashMap::at");
    return slots_[idx].kv.second;
  }

  template <typename K, typename... Args>
  std::pair<iterator, bool> try_emplace(K&& key, Args&&... args) {
    const auto [idx, inserted] = find_or_prepare_insert(key);
    if (inserted) {
      new (&slots_[idx].mutable_kv) std::pair<Key, T>(
          std::piecewise_construct, std::forward_as_tuple(std::forward<K>(key)),
          std::forward_as_tuple(std::forward<Args>(args)...));
    }
    return {iterator_at(idx), inserted};
  }

  template <typename K, typename V>
  std::pair<iterator, bool> emplace(K&& key, V&& value) {
    const auto [idx, inserted] = find_or_prepare_insert(key);
    if (inserted) {
      new (&slots_[idx].mutable_kv) std::pair<Key, T>(
          std::piecewise_construct, std::forward_as_tuple(std::forward<K>(key)),
          std::forward_as_tuple(std::forward<V>(value)));
    }
    return {iterator_at(idx), inserted};
  }

  std::pair<iterator, bool> insert(const value_type& kv) { return emplace(kv.first, kv.second); }
  std::pair<iterator, bool> insert(std::pair<Key, T>&& kv) {
    return emplace(std::move(kv.first), std::move(kv.second));
  }
  template <typename K, typename V>
  std::pair<iterator, bool> insert_or_assign(K&& key, V&& value) {
    const auto [idx, inserted] = find_or_prepare_insert(key);
    if (inserted) {
      new (&slots_[idx].mutable_kv) std::pair<Key, T>(
          std::piecewise_construct, std::forward_as_tuple(std::forward<K>(key)),
          std::forward_as_tuple(std::forward<V>(value)));
    } else {
      slots_[idx].kv.second = std::forward<V>(value);
    }
    return {iterator_at(idx), inserted};
  }

  template <typename K>
  T& operator[](K&& key) {
    return try_emplace(std::forward<K>(key)).first->second;
  }

  iterator erase(const_iterator pos) noexcept {
    const std::size_t idx = static_cast<std::size_t>(pos.ctrl_ - ctrl_);
    erase_at(idx);
    iterator next = iterator_at(idx);
    next.skip_to_full();  // the erased slot is a tombstone now; move past it
    return next;
  }
  iterator erase(iterator pos) noexcept { return erase(const_iterator{pos}); }
  template <typename K>
  size_type erase(const K& key) noexcept {
    const std::size_t idx = find_index(key, hash_of(key));
    if (idx == kNpos) return 0;
    erase_at(idx);
    return 1;
  }

  void clear() noexcept {
    destroy_all();
    if (capacity_ != 0) {
      std::memset(ctrl_, kEmpty, capacity_ + kGroupWidth);
      growth_left_ = max_load(capacity_);
    }
    size_ = 0;
    deleted_ = 0;
  }

  /// Ensure `n` elements fit without further rehashing.
  void reserve(size_type n) {
    size_type cap = kGroupWidth * 2;
    while (max_load(cap) < n) cap <<= 1;
    if (cap > capacity_) resize(cap);
  }

  /// Order-independent equality (mirrors std::unordered_map::operator==).
  friend bool operator==(const FlatHashMap& a, const FlatHashMap& b) {
    if (a.size() != b.size()) return false;
    for (const auto& kv : a) {
      const auto it = b.find(kv.first);
      if (it == b.end() || !(it->second == kv.second)) return false;
    }
    return true;
  }

 private:
  static constexpr size_type max_load(size_type cap) noexcept { return cap - cap / 8; }

  template <typename K>
  std::uint64_t hash_of(const K& key) const noexcept {
    auto h = static_cast<std::uint64_t>(hash_(key));
    if constexpr (!requires { typename Hash::is_avalanching; }) {
      // The map splits the hash into a slot index (high bits) and a 7-bit
      // control tag (low bits), so every bit must be mixed; finalize with
      // the murmur3 avalanche unless the hasher vouches for itself.
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
      h *= 0xc4ceb9fe1a85ec53ull;
      h ^= h >> 33;
    }
    return h;
  }

  iterator iterator_at(std::size_t idx) noexcept {
    return {ctrl_ + idx, ctrl_ + capacity_, slots_ + idx};
  }
  const_iterator const_iterator_at(std::size_t idx) const noexcept {
    return {ctrl_ + idx, ctrl_ + capacity_, slots_ + idx};
  }

  template <typename K>
  std::size_t find_index(const K& key, std::uint64_t h) const noexcept {
    if (capacity_ == 0) return kNpos;
    const std::size_t mask = capacity_ - 1;
    const auto h2 = static_cast<std::uint8_t>(h & 0x7f);
    std::size_t pos = (h >> 7) & mask;
    std::size_t stride = 0;
    for (;;) {
      const std::uint64_t group = load_group(ctrl_ + pos);
      std::uint64_t m = match_h2(group, h2);
      while (m != 0) {
        const std::size_t idx = (pos + lowest_lane(m)) & mask;
        if (eq_(slots_[idx].kv.first, key)) return idx;
        m &= m - 1;
      }
      if (mask_empty(group) != 0) return kNpos;
      stride += kGroupWidth;  // triangular probing: visits every group
      pos = (pos + stride) & mask;
      if (stride > capacity_) return kNpos;  // paranoia; cannot trigger
    }
  }

  std::size_t find_first_non_full(std::uint64_t h) const noexcept {
    const std::size_t mask = capacity_ - 1;
    std::size_t pos = (h >> 7) & mask;
    std::size_t stride = 0;
    for (;;) {
      const std::uint64_t group = load_group(ctrl_ + pos);
      if (const std::uint64_t m = mask_empty_or_deleted(group)) {
        return (pos + lowest_lane(m)) & mask;
      }
      stride += kGroupWidth;
      pos = (pos + stride) & mask;
    }
  }

  template <typename K>
  std::pair<std::size_t, bool> find_or_prepare_insert(const K& key) {
    const std::uint64_t h = hash_of(key);
    if (capacity_ != 0) {
      const std::size_t idx = find_index(key, h);
      if (idx != kNpos) return {idx, false};
    }
    return {prepare_insert(h), true};
  }

  std::size_t prepare_insert(std::uint64_t h) {
    if (capacity_ == 0) resize(kGroupWidth * 2);
    std::size_t target = find_first_non_full(h);
    if (growth_left_ == 0 && ctrl_[target] != kDeleted) {
      // Table too loaded for a fresh slot: purge tombstones in place when
      // mostly dead weight, otherwise double.
      resize(size_ <= capacity_ / 2 ? capacity_ : capacity_ * 2);
      target = find_first_non_full(h);
    }
    ++size_;
    if (ctrl_[target] == kDeleted) {
      --deleted_;
    } else {
      --growth_left_;
    }
    set_ctrl(target, static_cast<std::uint8_t>(h & 0x7f));
    return target;
  }

  void erase_at(std::size_t idx) noexcept {
    slots_[idx].mutable_kv.~pair();
    set_ctrl(idx, kDeleted);
    --size_;
    ++deleted_;
  }

  void set_ctrl(std::size_t idx, std::uint8_t v) noexcept {
    ctrl_[idx] = v;
    // Mirror the first group after the array so group loads never wrap.
    if (idx < kGroupWidth) ctrl_[capacity_ + idx] = v;
  }

  void resize(size_type new_cap) {
    std::uint8_t* old_ctrl = ctrl_;
    Slot* old_slots = slots_;
    const size_type old_cap = capacity_;

    ctrl_ = new std::uint8_t[new_cap + kGroupWidth];
    std::memset(ctrl_, kEmpty, new_cap + kGroupWidth);
    slots_ = static_cast<Slot*>(::operator new(new_cap * sizeof(Slot),
                                               std::align_val_t{alignof(Slot)}));
    capacity_ = new_cap;
    deleted_ = 0;
    growth_left_ = max_load(new_cap) - size_;

    for (size_type i = 0; i < old_cap; ++i) {
      if (!is_full(old_ctrl[i])) continue;
      const std::uint64_t h = hash_of(old_slots[i].kv.first);
      const std::size_t idx = find_first_non_full(h);
      set_ctrl(idx, static_cast<std::uint8_t>(h & 0x7f));
      new (&slots_[idx].mutable_kv) std::pair<Key, T>(std::move(old_slots[i].mutable_kv));
      old_slots[i].mutable_kv.~pair();
    }
    delete[] old_ctrl;
    if (old_slots != nullptr) {
      ::operator delete(old_slots, old_cap * sizeof(Slot), std::align_val_t{alignof(Slot)});
    }
  }

  void destroy_all() noexcept {
    if constexpr (!std::is_trivially_destructible_v<std::pair<Key, T>>) {
      for (size_type i = 0; i < capacity_; ++i) {
        if (is_full(ctrl_[i])) slots_[i].mutable_kv.~pair();
      }
    }
  }

  void deallocate() noexcept {
    delete[] ctrl_;
    if (slots_ != nullptr) {
      ::operator delete(slots_, capacity_ * sizeof(Slot), std::align_val_t{alignof(Slot)});
    }
    ctrl_ = nullptr;
    slots_ = nullptr;
    capacity_ = 0;
  }

  std::uint8_t* ctrl_ = nullptr;
  Slot* slots_ = nullptr;
  size_type capacity_ = 0;      ///< Power of two (or 0 before first use).
  size_type size_ = 0;          ///< Live elements.
  size_type deleted_ = 0;       ///< Tombstones.
  size_type growth_left_ = 0;   ///< Empty slots we may still fill before rehash.
  [[no_unique_address]] Hash hash_{};
  [[no_unique_address]] Eq eq_{};
};

}  // namespace edgewatch::core
