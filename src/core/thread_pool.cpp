#include "core/thread_pool.hpp"

namespace edgewatch::core {

ThreadPool::ThreadPool(std::size_t threads, std::size_t max_pending)
    : max_pending_(max_pending) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      // Second caller (or destructor after explicit shutdown): workers are
      // already told to stop; fall through to join whatever is left.
    }
    stopping_ = true;
  }
  task_ready_.notify_all();
  space_ready_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    if (max_pending_ > 0) {
      space_ready_.wait(lock, [this] {
        return stopping_ || queue_.size() < max_pending_;
      });
    }
    if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    space_ready_.notify_one();
    // packaged_task routes a submit()ed task's exception into the matching
    // future; this guard is for anything that escapes that capture. A
    // worker must never die of a task's exception — that turns one bad
    // block into std::terminate for the whole process.
    try {
      task();
    } catch (...) {
      stray_exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace edgewatch::core
