// Small statistics toolkit used by the analytics stage: running moments,
// empirical distributions (CDF/CCDF), and quantiles. Distribution objects
// own their samples; figure-level analytics render them to tables.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace edgewatch::core {

/// Streaming mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = x < min_ ? x : min_;
    max_ = x > max_ ? x : max_;
  }

  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// An empirical distribution built from individual samples.
class EmpiricalDistribution {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void add_all(std::span<const double> xs) {
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    sorted_ = false;
  }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// P(X <= x). Empirical step function.
  [[nodiscard]] double cdf(double x) const;
  /// P(X > x) — the CCDF the paper plots in Fig. 2.
  [[nodiscard]] double ccdf(double x) const { return 1.0 - cdf(x); }
  /// Inverse CDF; q in [0,1]. quantile(0.5) is the median.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double mean() const;

  /// Evaluate the CCDF at each point of a grid (for plotting).
  [[nodiscard]] std::vector<double> ccdf_at(std::span<const double> grid) const;

  [[nodiscard]] std::span<const double> samples() const noexcept { return samples_; }

 private:
  void ensure_sorted() const;
  std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so totals are conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept {
    return lo_ + width_ * static_cast<double>(i);
  }
  [[nodiscard]] double count(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] double total() const noexcept { return total_; }

 private:
  double lo_;
  double width_;
  double total_ = 0;
  std::vector<double> counts_;
};

/// Log-spaced grid helper, e.g. grid for 1 kB .. 100 GB CCDF plots.
[[nodiscard]] std::vector<double> log_grid(double lo, double hi, std::size_t points);

}  // namespace edgewatch::core
