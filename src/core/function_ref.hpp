// A non-owning, trivially copyable callable reference (two words: context
// pointer + invoke thunk). The probe's export path fires once per flow
// record at line rate; routing it through std::function means a virtual
// call through type-erased owning storage that the optimizer cannot see
// through. FunctionRef keeps the type erasure but drops ownership, so the
// hot path pays exactly one indirect call and the referenced callable is
// eligible for inlining at its definition site.
//
// Lifetime contract: the referenced callable must outlive the FunctionRef.
// Construction from temporaries is rejected at compile time — bind a named
// object (the FlowTable/Probe pattern: a small member functor declared
// before the table that consumes it).
#pragma once

#include <type_traits>
#include <utility>

namespace edgewatch::core {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  constexpr FunctionRef() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_lvalue_reference_v<F&&> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : ctx_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* ctx, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(ctx))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(ctx_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const noexcept { return invoke_ != nullptr; }

 private:
  void* ctx_ = nullptr;
  R (*invoke_)(void*, Args...) = nullptr;
};

}  // namespace edgewatch::core
