// Deterministic pseudo-random generation for the synthetic workload engine.
//
// All synthesis must be reproducible: two runs of a scenario with the same
// seed must generate byte-identical flow logs. We therefore avoid
// std::mt19937 seeding subtleties and implement SplitMix64 (for seeding and
// cheap stateless hashes of coordinates) and xoshiro256** (the workhorse
// generator; Blackman & Vigna). Xoshiro satisfies UniformRandomBitGenerator
// so it can also drive <random> distributions where convenient, but the
// samplers below are preferred because libstdc++ distribution algorithms may
// change across versions while ours are frozen.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>

namespace edgewatch::core {

/// SplitMix64: passes BigCrush, perfect for deriving independent seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of up to three coordinates into one 64-bit value. Used to
/// derive per-(subscriber, day, service) seeds so workload generation is
/// order-independent: generating day N never perturbs day N+1.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b = 0,
                                            std::uint64_t c = 0) noexcept {
  SplitMix64 sm(a ^ 0x9e3779b97f4a7c15ull);
  std::uint64_t h = sm.next();
  h ^= b + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  SplitMix64 sm2(h);
  h = sm2.next();
  h ^= c + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  SplitMix64 sm3(h);
  return sm3.next();
}

/// xoshiro256** 1.0.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Uniform double in [0, 1) with 53 random bits.
template <typename Rng>
[[nodiscard]] double uniform01(Rng& rng) noexcept {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Uniform integer in [0, n) for n < 2^32 (all project uses). Lemire's
/// multiply-shift on the high 32 random bits; bias is < 2^-32.
template <typename Rng>
[[nodiscard]] std::uint64_t uniform_below(Rng& rng, std::uint64_t n) noexcept {
  if (n == 0) return 0;
  return (static_cast<std::uint64_t>(rng() >> 32) * n) >> 32;
}

/// Bernoulli draw.
template <typename Rng>
[[nodiscard]] bool chance(Rng& rng, double p) noexcept {
  return uniform01(rng) < p;
}

/// Standard normal via Box–Muller (frozen algorithm, reproducible).
template <typename Rng>
[[nodiscard]] double normal(Rng& rng) noexcept {
  double u1 = uniform01(rng);
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform01(rng);
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

/// Log-normal with given parameters of the underlying normal.
template <typename Rng>
[[nodiscard]] double lognormal(Rng& rng, double mu, double sigma) noexcept {
  return std::exp(mu + sigma * normal(rng));
}

/// Exponential with the given mean.
template <typename Rng>
[[nodiscard]] double exponential(Rng& rng, double mean) noexcept {
  double u = uniform01(rng);
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return -mean * std::log1p(-u);
}

/// Bounded Pareto on [lo, hi] with tail index alpha — heavy-tailed flow and
/// object sizes, the classic model for Internet traffic volumes.
template <typename Rng>
[[nodiscard]] double pareto_bounded(Rng& rng, double alpha, double lo, double hi) noexcept {
  const double u = uniform01(rng);
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

/// Poisson sample (Knuth for small means, normal approximation above 60).
template <typename Rng>
[[nodiscard]] std::uint32_t poisson(Rng& rng, double mean) noexcept {
  if (mean <= 0) return 0;
  if (mean > 60.0) {
    const double v = mean + std::sqrt(mean) * normal(rng);
    return v <= 0 ? 0u : static_cast<std::uint32_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double prod = uniform01(rng);
  std::uint32_t n = 0;
  while (prod > limit) {
    prod *= uniform01(rng);
    ++n;
  }
  return n;
}

/// Pick an index from a discrete weight vector; weights need not normalize.
template <typename Rng>
[[nodiscard]] std::size_t weighted_pick(Rng& rng, std::span<const double> weights) noexcept {
  double total = 0;
  for (double w : weights) total += w > 0 ? w : 0;
  if (total <= 0) return 0;
  double x = uniform01(rng) * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

}  // namespace edgewatch::core
