// Fig. 11 analytics: how a service's server fleet evolves — per-day IP
// counts split dedicated/shared, cumulative unique addresses (the y-axis of
// the paper's top plots is "IPs sorted by order of appearance"), per-ASN
// breakdowns against monthly RIB snapshots, and second-level-domain traffic
// shares.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "analytics/day_aggregate.hpp"
#include "asn/lpm.hpp"
#include "core/time.hpp"

namespace edgewatch::analytics {

struct IpLifecycleRow {
  core::CivilDate date;
  std::size_t dedicated = 0;  ///< IPs serving only this service that day
  std::size_t shared = 0;     ///< IPs also serving other named services
  std::size_t cumulative_unique = 0;  ///< distinct IPs seen so far
};

[[nodiscard]] std::vector<IpLifecycleRow> ip_lifecycle(std::span<const DayAggregate> days,
                                                       services::ServiceId service);

/// Provides the RIB in force for a given month (Route Views snapshot in the
/// paper; the synthetic scenario's RIB history here).
using RibProvider = std::function<const asn::Rib&(core::MonthIndex)>;

struct AsnBreakdownRow {
  core::MonthIndex month;
  /// asn -> average number of this service's daily IPs originated by it.
  std::map<std::uint32_t, double> ips_by_asn;
};

[[nodiscard]] std::vector<AsnBreakdownRow> asn_breakdown(std::span<const DayAggregate> days,
                                                         services::ServiceId service,
                                                         const RibProvider& rib_for);

struct DomainShareRow {
  core::MonthIndex month;
  /// second-level domain -> percent of the service's bytes.
  std::map<std::string, double> share_pct;
};

[[nodiscard]] std::vector<DomainShareRow> domain_shares(std::span<const DayAggregate> days,
                                                        services::ServiceId service);

}  // namespace edgewatch::analytics
