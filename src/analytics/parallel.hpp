// Parallel stage-one analytics (paper §2.2: per-day aggregation of the
// flow logs). Two axes of parallelism over a shared core::ThreadPool:
//
//   - across days: each day is one task (the natural partition — the lake
//     is day-partitioned and days are independent);
//   - within a day: the day file's CRC-framed blocks are independently
//     decodable, so contiguous block ranges fan out across workers, each
//     producing a partial DayAggregate that merge() folds back together
//     in block order.
//
// Determinism: partials are merged in block-range order, so the combined
// aggregate carries the same rtt_min_ms sample order as a serial scan and
// every counter is a sum of the same terms — figure outputs are
// bit-identical to the single-threaded pipeline.
#pragma once

#include <span>
#include <vector>

#include "analytics/day_aggregate.hpp"
#include "core/thread_pool.hpp"
#include "services/catalog.hpp"
#include "storage/datalake.hpp"

namespace edgewatch::analytics {

/// One day's stage-one output plus how the underlying scan went (damaged
/// blocks are skipped, never silently aggregated).
struct DayScanAggregate {
  DayAggregate aggregate;
  storage::ScanResult scan;
};

/// Serial baseline: scan one day and aggregate it on the calling thread.
/// Also the per-task body of aggregate_days_parallel.
[[nodiscard]] DayScanAggregate aggregate_day(
    const storage::DataLake& lake, core::CivilDate day,
    const services::ServiceCatalog& catalog = services::ServiceCatalog::standard());

/// Aggregate one day with its blocks fanned out over `pool`. Each worker
/// decodes a contiguous block range with its own ScanScratch (one
/// decompression buffer per worker, not per block) into a partial
/// DayAggregate; partials merge in block order. Must not be called from
/// inside a pool task — the fan-out waits on the same pool.
[[nodiscard]] DayScanAggregate aggregate_day_parallel(
    const storage::DataLake& lake, core::CivilDate day, core::ThreadPool& pool,
    const services::ServiceCatalog& catalog = services::ServiceCatalog::standard());

/// Aggregate many days, one pool task per day (aggregation inside each
/// task is serial — day-level fan-out already saturates the pool, and
/// nesting would deadlock). Results are in `days` order.
[[nodiscard]] std::vector<DayScanAggregate> aggregate_days_parallel(
    const storage::DataLake& lake, std::span<const core::CivilDate> days,
    core::ThreadPool& pool,
    const services::ServiceCatalog& catalog = services::ServiceCatalog::standard());

}  // namespace edgewatch::analytics
