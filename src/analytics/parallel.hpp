// Parallel stage-one analytics (paper §2.2: per-day aggregation of the
// flow logs). Two axes of parallelism over a shared core::ThreadPool:
//
//   - across days: each day is one task (the natural partition — the lake
//     is day-partitioned and days are independent);
//   - within a day: the day file's CRC-framed blocks are independently
//     decodable, so contiguous block ranges fan out across workers, each
//     producing a partial DayAggregate that merge() folds back together
//     in block order.
//
// Determinism: partials are merged in block-range order, so the combined
// aggregate carries the same rtt_min_ms sample order as a serial scan and
// every counter is a sum of the same terms — figure outputs are
// bit-identical to the single-threaded pipeline.
#pragma once

#include <span>
#include <vector>

#include "analytics/day_aggregate.hpp"
#include "core/thread_pool.hpp"
#include "services/catalog.hpp"
#include "storage/datalake.hpp"

namespace edgewatch::analytics {

/// One day's stage-one output plus how the underlying scan went (damaged
/// blocks are skipped, never silently aggregated).
struct DayScanAggregate {
  DayAggregate aggregate;
  storage::ScanResult scan;
};

/// Exactly the FlowRecord fields DayAggregator::add reads — the projection
/// the stage-one scan pushes down so v3 days skip the 14 column segments
/// (duration, ports, close flags, upstream packet/quality counters, wire
/// bytes, HTTP status, content-type, RTT spread, name source) the
/// aggregation never touches. first_packet, proto and server_ip are always
/// materialized by the decoder; tests/test_parallel.cpp holds the
/// projected and unprojected aggregates bit-identical, which is what keeps
/// this mask honest when add() grows a new field read.
inline constexpr std::uint32_t kDayAggregateScanFields = storage::scan_fields::kDayAggregate;
static_assert(kDayAggregateScanFields ==
                  (storage::scan_fields::kClientIp | storage::scan_fields::kAccess |
                   storage::scan_fields::kUpBytes | storage::scan_fields::kDownBytes |
                   storage::scan_fields::kDownPackets | storage::scan_fields::kDownQuality |
                   storage::scan_fields::kRttMin | storage::scan_fields::kL7 |
                   storage::scan_fields::kWeb | storage::scan_fields::kServerName),
              "storage's kDayAggregate preset must track DayAggregator::add's field reads");

/// Serial baseline: scan one day and aggregate it on the calling thread.
/// Also the per-task body of aggregate_days_parallel.
[[nodiscard]] DayScanAggregate aggregate_day(
    const storage::DataLake& lake, core::CivilDate day,
    const services::ServiceCatalog& catalog = services::ServiceCatalog::standard());

/// Scratch-reusing, optionally filtered variant: the caller owns the scan
/// buffers, so a loop over many days (the rollup store's incremental
/// build) decodes every block of every day into the same allocations. A
/// non-null predicate is pushed below the block decoder — v3 blocks are
/// pruned on zone maps (ScanResult::blocks_pruned) and only referenced
/// column segments decode.
[[nodiscard]] DayScanAggregate aggregate_day(
    const storage::DataLake& lake, core::CivilDate day, storage::ScanScratch& scratch,
    const storage::ScanPredicate* predicate = nullptr,
    const services::ServiceCatalog& catalog = services::ServiceCatalog::standard());

/// Aggregate one day with its blocks fanned out over `pool`. Each worker
/// decodes a contiguous block range with its own ScanScratch (one
/// decompression buffer per worker, not per block) into a partial
/// DayAggregate; partials merge in block order. Must not be called from
/// inside a pool task — the fan-out waits on the same pool.
[[nodiscard]] DayScanAggregate aggregate_day_parallel(
    const storage::DataLake& lake, core::CivilDate day, core::ThreadPool& pool,
    const services::ServiceCatalog& catalog = services::ServiceCatalog::standard());

/// Parallel + predicate pushdown: same fan-out, but every worker passes
/// the predicate to its block scans, so zone-map pruning and column
/// skipping happen inside each contiguous range. Merge order (and thus
/// the delivered record order) is unchanged.
[[nodiscard]] DayScanAggregate aggregate_day_parallel(
    const storage::DataLake& lake, core::CivilDate day, core::ThreadPool& pool,
    const storage::ScanPredicate& predicate,
    const services::ServiceCatalog& catalog = services::ServiceCatalog::standard());

/// Aggregate many days, one pool task per day (aggregation inside each
/// task is serial — day-level fan-out already saturates the pool, and
/// nesting would deadlock). Results are in `days` order.
[[nodiscard]] std::vector<DayScanAggregate> aggregate_days_parallel(
    const storage::DataLake& lake, std::span<const core::CivilDate> days,
    core::ThreadPool& pool,
    const services::ServiceCatalog& catalog = services::ServiceCatalog::standard());

}  // namespace edgewatch::analytics
