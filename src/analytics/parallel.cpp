#include "analytics/parallel.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "obs/obs.hpp"

namespace edgewatch::analytics {

namespace {

/// The stage-one default when the caller pushes no predicate of its own:
/// unrestricted rows, but only the columns DayAggregator::add reads.
const storage::ScanPredicate& day_aggregate_projection() {
  static const storage::ScanPredicate p =
      storage::ScanPredicate::project(kDayAggregateScanFields);
  return p;
}

// Per-day-aggregate instrumentation: one span + one counter bump per day,
// never per record (rollup builds fan days across pool workers; registry
// cells are atomics, the span ring is mutex-protected).
struct AggregateObs {
  obs::SpanSite* day_span;
  obs::Counter* records;
};

AggregateObs& aggregate_obs() {
  static AggregateObs m = [] {
    auto& reg = obs::Registry::global();
    return AggregateObs{&reg.span_site("analytics_day_aggregate"),
                        &reg.counter("analytics_records_aggregated_total")};
  }();
  return m;
}

}  // namespace

DayScanAggregate aggregate_day(const storage::DataLake& lake, core::CivilDate day,
                               const services::ServiceCatalog& catalog) {
  storage::ScanScratch scratch;
  return aggregate_day(lake, day, scratch, nullptr, catalog);
}

DayScanAggregate aggregate_day(const storage::DataLake& lake, core::CivilDate day,
                               storage::ScanScratch& scratch,
                               const storage::ScanPredicate* predicate,
                               const services::ServiceCatalog& catalog) {
  if (predicate == nullptr) predicate = &day_aggregate_projection();
  obs::Span day_span(*aggregate_obs().day_span);
  DayAggregator agg(day, catalog);
  DayScanAggregate out;
  out.aggregate.date = day;
  const storage::DayBlockIndex idx = lake.load_day_blocks(day);
  if (idx.fatal() != core::Errc::kOk) {
    out.scan.errc = idx.fatal();
    return out;
  }
  // Batch delivery: v3 blocks aggregate column-at-a-time with dict-code
  // pass-through (no per-row FlowRecord, no string materialization); v1/v2
  // blocks stage through the scratch transposer. Identical aggregates to
  // the old per-record callback — add_batch is golden-tested against add().
  auto deliver = [&agg](const exec::RecordBatch& b) { agg.add_batch(b); };
  const auto& blocks = idx.blocks();
  const auto& chain = idx.chain();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    // Dictionary-chain resolver over the day's stream-order adjacency
    // (layout-2 delta dictionaries), salvage candidates included; the
    // sequential chain cache handles the common case, this covers
    // resumption after a pruned or damaged block.
    const std::size_t ci = idx.chain_pos(i);
    const auto resolve = [&, ci](std::size_t back) -> std::span<const std::byte> {
      if (back == 0 || back > ci) return {};
      return idx.body(chain[ci - back]);
    };
    const storage::PrevBlockResolver resolver{resolve};
    storage::DataLake::scan_block_batches(idx.body(blocks[i]), blocks[i].record_count, predicate,
                                          scratch, out.scan, deliver, &resolver);
  }
  out.scan.blocks_skipped += idx.damaged_ranges();
  if (out.scan.errc == core::Errc::kOk || idx.baseline() == core::Errc::kCorrupt) {
    out.scan.errc = idx.baseline();
  }
  if constexpr (obs::kEnabled) aggregate_obs().records->add(out.scan.records_delivered);
  out.aggregate = std::move(agg).take();
  return out;
}

namespace {

DayScanAggregate aggregate_day_parallel_impl(const storage::DataLake& lake, core::CivilDate day,
                                             core::ThreadPool& pool,
                                             const storage::ScanPredicate* predicate,
                                             const services::ServiceCatalog& catalog) {
  if (predicate == nullptr) predicate = &day_aggregate_projection();
  DayScanAggregate out;
  out.aggregate.date = day;
  const storage::DayBlockIndex idx = lake.load_day_blocks(day);
  if (idx.fatal() != core::Errc::kOk) {
    out.scan.errc = idx.fatal();
    return out;
  }

  struct Partial {
    DayAggregate aggregate;
    storage::ScanResult scan;
  };
  const std::size_t n = idx.blocks().size();
  const std::size_t tasks = std::min(n, std::max<std::size_t>(1, pool.size()));
  std::vector<std::future<Partial>> futures;
  futures.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    // Balanced contiguous ranges: contiguity is what makes the in-order
    // merge reproduce the serial record stream.
    const std::size_t lo = n * t / tasks;
    const std::size_t hi = n * (t + 1) / tasks;
    futures.push_back(pool.submit([&idx, &catalog, predicate, day, lo, hi] {
      DayAggregator agg(day, catalog);
      Partial p;
      storage::ScanScratch scratch;
      auto deliver = [&agg](const exec::RecordBatch& b) { agg.add_batch(b); };
      for (std::size_t b = lo; b < hi; ++b) {
        const auto& block = idx.blocks()[b];
        // Resolve over the *global* stream-order adjacency (salvage
        // candidates included): a worker's first blocks may delta-chain
        // into the previous worker's range, and the shared index's bodies
        // are immutable, so cross-range resolution is safe.
        const std::size_t cb = idx.chain_pos(b);
        const auto resolve = [&, cb](std::size_t back) -> std::span<const std::byte> {
          if (back == 0 || back > cb) return {};
          return idx.body(idx.chain()[cb - back]);
        };
        const storage::PrevBlockResolver resolver{resolve};
        storage::DataLake::scan_block_batches(idx.body(block), block.record_count, predicate,
                                              scratch, p.scan, deliver, &resolver);
      }
      p.aggregate = std::move(agg).take();
      return p;
    }));
  }
  for (auto& f : futures) {
    Partial p = f.get();  // rethrows a worker's exception
    out.aggregate.merge(p.aggregate);
    out.scan.merge(p.scan);
  }
  out.scan.blocks_skipped += idx.damaged_ranges();
  if (out.scan.errc == core::Errc::kOk || idx.baseline() == core::Errc::kCorrupt) {
    out.scan.errc = idx.baseline();
  }
  return out;
}

}  // namespace

DayScanAggregate aggregate_day_parallel(const storage::DataLake& lake, core::CivilDate day,
                                        core::ThreadPool& pool,
                                        const services::ServiceCatalog& catalog) {
  return aggregate_day_parallel_impl(lake, day, pool, nullptr, catalog);
}

DayScanAggregate aggregate_day_parallel(const storage::DataLake& lake, core::CivilDate day,
                                        core::ThreadPool& pool,
                                        const storage::ScanPredicate& predicate,
                                        const services::ServiceCatalog& catalog) {
  return aggregate_day_parallel_impl(lake, day, pool, &predicate, catalog);
}

std::vector<DayScanAggregate> aggregate_days_parallel(const storage::DataLake& lake,
                                                      std::span<const core::CivilDate> days,
                                                      core::ThreadPool& pool,
                                                      const services::ServiceCatalog& catalog) {
  std::vector<std::future<DayScanAggregate>> futures;
  futures.reserve(days.size());
  for (const auto day : days) {
    futures.push_back(
        pool.submit([&lake, &catalog, day] { return aggregate_day(lake, day, catalog); }));
  }
  std::vector<DayScanAggregate> out;
  out.reserve(days.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

}  // namespace edgewatch::analytics
