// Stage two: figure-level analytics over per-day aggregates. Each function
// reproduces the computation behind one of the paper's figures; the bench
// harness renders the returned tables next to the paper's reported values.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "analytics/day_aggregate.hpp"
#include "core/stats.hpp"
#include "core/time.hpp"

namespace edgewatch::analytics {

inline constexpr std::size_t kAccessTechCount = 2;  // ADSL, FTTH

/// Does this subscriber-day count as "using" the service (the §4.1
/// per-service activity threshold)? Shared by every figure below and by the
/// query:: rollup builder, so rollup-backed popularity answers apply the
/// exact same definition as the full-scan path.
[[nodiscard]] bool uses_service(const SubscriberDay& sub,
                                const services::ServiceCatalog& catalog,
                                services::ServiceId id) noexcept;

/// Fig. 2 — CCDF of per-active-subscriber daily traffic, by access
/// technology and direction.
struct DailyVolumeDistributions {
  std::array<core::EmpiricalDistribution, kAccessTechCount> down;  ///< bytes/day
  std::array<core::EmpiricalDistribution, kAccessTechCount> up;
};
[[nodiscard]] DailyVolumeDistributions daily_volume_distributions(
    std::span<const DayAggregate> days, const ActivityCriteria& criteria = {});

/// Fig. 3 — average per-subscription daily volume per month.
struct VolumeTrendRow {
  core::MonthIndex month;
  std::array<double, kAccessTechCount> down_mb{};  ///< avg MB/day per active sub
  std::array<double, kAccessTechCount> up_mb{};
  std::array<std::size_t, kAccessTechCount> subscribers{};  ///< avg active/day
};
[[nodiscard]] std::vector<VolumeTrendRow> volume_trend(std::span<const DayAggregate> days,
                                                       const ActivityCriteria& criteria = {});

/// Fig. 4 — ratio of hour-of-day download volume between two day sets
/// (April 2017 / April 2014 in the paper), per access technology.
struct HourlyRatios {
  std::array<std::array<double, 24>, kAccessTechCount> ratio{};
};
[[nodiscard]] HourlyRatios hourly_ratio(std::span<const DayAggregate> later,
                                        std::span<const DayAggregate> earlier);

/// Fig. 5 — service popularity (% of active subscribers using the service
/// daily, §4.1 thresholds applied) and byte share (% of total traffic), per
/// month.
struct ServiceMatrix {
  std::vector<core::MonthIndex> months;
  /// cells[service][month index within `months`]
  struct Cell {
    double popularity_pct = 0;
    double byte_share_pct = 0;
  };
  std::array<std::vector<Cell>, services::kServiceCount> cells;
};
[[nodiscard]] ServiceMatrix service_matrix(
    std::span<const DayAggregate> days,
    std::optional<flow::AccessTech> tech_filter = std::nullopt,
    const ActivityCriteria& criteria = {});

/// Figs. 6/7 — one service's popularity and per-user volume over time,
/// split by access technology.
struct ServiceTrendRow {
  core::MonthIndex month;
  std::array<double, kAccessTechCount> popularity_pct{};
  std::array<double, kAccessTechCount> mb_per_user{};  ///< MB/day per service user
};
[[nodiscard]] std::vector<ServiceTrendRow> service_trend(std::span<const DayAggregate> days,
                                                         services::ServiceId service,
                                                         const ActivityCriteria& criteria = {});

/// Fig. 9 — daily per-user volume for one service (both techs merged, as
/// in the paper's Facebook plot).
struct DailyServiceVolumeRow {
  core::CivilDate date;
  double mb_per_user = 0;
  std::size_t users = 0;
};
[[nodiscard]] std::vector<DailyServiceVolumeRow> daily_service_volume(
    std::span<const DayAggregate> days, services::ServiceId service);

/// Fig. 8 — web-protocol byte shares per month (percent of web traffic).
struct ProtocolShareRow {
  core::MonthIndex month;
  std::array<double, kWebProtocolCount> share_pct{};  ///< index = WebProtocol
};
[[nodiscard]] std::vector<ProtocolShareRow> protocol_shares(std::span<const DayAggregate> days);

/// Fig. 10 — distribution of per-flow minimum RTT for one service.
[[nodiscard]] core::EmpiricalDistribution rtt_distribution(std::span<const DayAggregate> days,
                                                           services::ServiceId service);

/// §4.3's weekly statistic: the fraction of subscribers (per access tech)
/// that used the service on *at least one* of the given days, out of the
/// subscribers active on at least one day. Pass one week of aggregates for
/// "weekly reach", a month for "monthly reach".
struct ServiceReach {
  std::array<double, kAccessTechCount> pct{};
  std::array<std::size_t, kAccessTechCount> subscribers{};  ///< Denominators.
};
[[nodiscard]] ServiceReach service_reach(std::span<const DayAggregate> days,
                                         services::ServiceId service,
                                         const ActivityCriteria& criteria = {});

/// Byte share per service *category* (video, social, messaging, ...) —
/// the abstract-level claims ("bandwidth hungry video services drive this
/// change") in one table. Shares are percent of total classified+other
/// traffic over the window.
struct CategoryShareRow {
  services::ServiceCategory category;
  double byte_share_pct = 0;
};
[[nodiscard]] std::vector<CategoryShareRow> category_shares(
    std::span<const DayAggregate> days);

/// Downstream TCP health per service over a window (retransmission and
/// out-of-order rates, ref [29] heritage): near caches should be clean,
/// intercontinental paths lossier.
[[nodiscard]] std::array<ServiceDayHealth, services::kServiceCount> aggregate_health(
    std::span<const DayAggregate> days);

/// §2.3 rule curation: the heaviest second-level domains no rule matched —
/// exactly the worklist the paper's team reviewed to keep associations
/// current. Sorted by bytes, at most `limit` entries.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> top_unclassified_domains(
    std::span<const DayAggregate> days, std::size_t limit = 20);

}  // namespace edgewatch::analytics
