#include "analytics/day_aggregate.hpp"

namespace edgewatch::analytics {

std::size_t DayAggregate::active_subscribers(const ActivityCriteria& c) const {
  std::size_t n = 0;
  for (const auto& [_, sub] : subscribers) n += sub.active(c);
  return n;
}

std::uint64_t DayAggregate::total_web_bytes() const noexcept {
  std::uint64_t total = 0;
  // Index 0 is kNotWeb: excluded from the Fig. 8 denominator.
  for (std::size_t i = 1; i < web_bytes.size(); ++i) total += web_bytes[i];
  return total;
}

DayAggregator::DayAggregator(core::CivilDate date, const services::ServiceCatalog& catalog)
    : catalog_(catalog) {
  agg_.date = date;
}

void DayAggregator::add(const flow::FlowRecord& record) {
  const auto service = catalog_.classify_flow(record.l7, record.server_name);
  const auto service_idx = static_cast<std::size_t>(service);

  auto& sub = agg_.subscribers[record.client_ip];
  sub.access = record.access;
  ++sub.flows;
  sub.bytes_up += record.up.bytes;
  sub.bytes_down += record.down.bytes;
  auto& svc = sub.per_service[service_idx];
  ++svc.flows;
  svc.bytes_up += record.up.bytes;
  svc.bytes_down += record.down.bytes;

  if (record.web != dpi::WebProtocol::kNotWeb) {
    agg_.web_bytes[static_cast<std::size_t>(record.web)] += record.total_bytes();
  }

  // Attribute the whole download to the flow's start bin: at day scale the
  // distortion is negligible and it keeps stage one single-pass.
  const auto bin = static_cast<std::size_t>(record.first_packet.minute_of_day() / 10);
  if (bin < kTimeBinsPerDay) {
    agg_.downlink_bins[static_cast<std::size_t>(record.access)][bin] +=
        static_cast<double>(record.down.bytes);
  }

  if (record.rtt.samples > 0) {
    agg_.rtt_min_ms[service_idx].push_back(record.rtt.min_ms());
  }

  if (record.proto == core::TransportProto::kTcp) {
    auto& health = agg_.health[service_idx];
    health.packets += record.down.packets;
    health.retransmits += record.down.retransmits;
    health.out_of_order += record.down.out_of_order;
  }

  auto& ip_stats = agg_.server_ips[record.server_ip];
  ip_stats.service_mask |= 1u << static_cast<unsigned>(service);
  ip_stats.bytes += record.total_bytes();

  if (!record.server_name.empty()) {
    // Heterogeneous probes: the std::string key is only materialized the
    // first time a (service, domain) pair is seen, not on every flow.
    const std::string_view sld = second_level_domain(record.server_name);
    if (service != services::ServiceId::kOther) {
      auto it = agg_.domain_bytes.find(std::pair{service, sld});
      if (it == agg_.domain_bytes.end()) {
        it = agg_.domain_bytes.emplace(std::pair{service, std::string(sld)}, 0).first;
      }
      it->second += record.total_bytes();
    } else {
      auto it = agg_.unclassified_domain_bytes.find(sld);
      if (it == agg_.unclassified_domain_bytes.end()) {
        it = agg_.unclassified_domain_bytes.emplace(std::string(sld), 0).first;
      }
      it->second += record.total_bytes();
    }
  }
}

void DayAggregator::add_batch(const exec::RecordBatch& batch) {
  if (batch.empty()) return;

  // Classification is the hottest per-row cost of the row path, and one
  // dictionary entry serves many rows: resolve each entry's catalog verdict
  // and second-level domain once per batch, then every row is a vector
  // index. The batch's own `service` column is *not* used — it carries the
  // writer's catalog, ours may differ (classify_flow semantics, same as
  // add()).
  const bool have_names = !batch.name_idx.empty() && !batch.name_dict.empty();
  if (have_names) {
    dict_service_.clear();
    dict_sld_.clear();
    dict_service_.reserve(batch.name_dict.size());
    dict_sld_.reserve(batch.name_dict.size());
    for (const auto name : batch.name_dict) {
      dict_service_.push_back(name.empty() ? services::ServiceId::kOther
                                           : catalog_.classify_domain(name));
      dict_sld_.push_back(second_level_domain(name));
    }
  }
  const auto col_u64 = [](std::span<const std::uint64_t> col, std::size_t i) noexcept {
    return col.empty() ? std::uint64_t{0} : col[i];
  };

  // (service, domain) and subscriber/server lookups repeat in runs (rows
  // keep stream order, and one host produces bursts of flows), so each map
  // keeps a one-entry memo. Node/slot stability: std::map nodes never move;
  // the FlatHashMap memos are refreshed before reuse whenever the key
  // changes, and the only inserts into each map happen through its own
  // memo refresh — so a held pointer is never stale when it is read.
  core::IPv4Address memo_sub_ip{};
  SubscriberDay* memo_sub = nullptr;
  core::IPv4Address memo_srv_ip{};
  IpDayStats* memo_srv = nullptr;
  std::uint32_t memo_dom_idx = 0xffffffffu;
  services::ServiceId memo_dom_service{};
  std::uint64_t* memo_dom_bytes = nullptr;
  std::uint32_t memo_uncl_idx = 0xffffffffu;
  std::uint64_t* memo_uncl_bytes = nullptr;

  batch.for_each_row([&](std::size_t i) {
    const auto l7 = batch.l7.empty() ? dpi::L7Protocol{}
                                     : static_cast<dpi::L7Protocol>(batch.l7[i]);
    const std::uint32_t name_idx = have_names ? batch.name_idx[i] : 0;
    const services::ServiceId service =
        dpi::is_p2p(l7) ? services::ServiceId::kPeerToPeer
        : have_names    ? dict_service_[name_idx]
                        : services::ServiceId::kOther;
    const auto service_idx = static_cast<std::size_t>(service);
    const std::uint64_t up_bytes = col_u64(batch.up_bytes, i);
    const std::uint64_t down_bytes = col_u64(batch.dn_bytes, i);
    const std::uint64_t total_bytes = up_bytes + down_bytes;
    const auto access = batch.access.empty() ? flow::AccessTech{}
                                             : static_cast<flow::AccessTech>(batch.access[i]);

    const core::IPv4Address client_ip{batch.cip.empty() ? 0u : batch.cip[i]};
    if (memo_sub == nullptr || client_ip != memo_sub_ip) {
      memo_sub = &agg_.subscribers[client_ip];
      memo_sub_ip = client_ip;
    }
    SubscriberDay& sub = *memo_sub;
    sub.access = access;
    ++sub.flows;
    sub.bytes_up += up_bytes;
    sub.bytes_down += down_bytes;
    auto& svc = sub.per_service[service_idx];
    ++svc.flows;
    svc.bytes_up += up_bytes;
    svc.bytes_down += down_bytes;

    if (!batch.web.empty()) {
      const auto web = static_cast<std::size_t>(batch.web[i]);
      if (web != static_cast<std::size_t>(dpi::WebProtocol::kNotWeb)) {
        agg_.web_bytes[web] += total_bytes;
      }
    }

    const auto bin = static_cast<std::size_t>(core::Timestamp{batch.ts[i]}.minute_of_day() / 10);
    if (bin < kTimeBinsPerDay) {
      agg_.downlink_bins[static_cast<std::size_t>(access)][bin] +=
          static_cast<double>(down_bytes);
    }

    if (!batch.rtt_samples.empty() && batch.rtt_samples[i] > 0) {
      agg_.rtt_min_ms[service_idx].push_back(static_cast<double>(batch.rtt_min_us[i]) / 1000.0);
    }

    if (static_cast<core::TransportProto>(batch.proto[i]) == core::TransportProto::kTcp) {
      auto& health = agg_.health[service_idx];
      health.packets += col_u64(batch.dn_pkts, i);
      health.retransmits += col_u64(batch.dn_retx, i);
      health.out_of_order += col_u64(batch.dn_ooo, i);
    }

    const core::IPv4Address server_ip{batch.sip[i]};
    if (memo_srv == nullptr || server_ip != memo_srv_ip) {
      memo_srv = &agg_.server_ips[server_ip];
      memo_srv_ip = server_ip;
    }
    memo_srv->service_mask |= 1u << static_cast<unsigned>(service);
    memo_srv->bytes += total_bytes;

    if (have_names && !batch.name_dict[name_idx].empty()) {
      const std::string_view sld = dict_sld_[name_idx];
      if (service != services::ServiceId::kOther) {
        if (memo_dom_bytes == nullptr || name_idx != memo_dom_idx ||
            service != memo_dom_service) {
          auto it = agg_.domain_bytes.find(std::pair{service, sld});
          if (it == agg_.domain_bytes.end()) {
            it = agg_.domain_bytes.emplace(std::pair{service, std::string(sld)}, 0).first;
          }
          memo_dom_bytes = &it->second;
          memo_dom_idx = name_idx;
          memo_dom_service = service;
        }
        *memo_dom_bytes += total_bytes;
      } else {
        if (memo_uncl_bytes == nullptr || name_idx != memo_uncl_idx) {
          auto it = agg_.unclassified_domain_bytes.find(sld);
          if (it == agg_.unclassified_domain_bytes.end()) {
            it = agg_.unclassified_domain_bytes.emplace(std::string(sld), 0).first;
          }
          memo_uncl_bytes = &it->second;
          memo_uncl_idx = name_idx;
        }
        *memo_uncl_bytes += total_bytes;
      }
    }
  });
}

void DayAggregate::merge(const DayAggregate& other) {
  for (const auto& [ip, sub] : other.subscribers) subscribers[ip].merge(sub);
  for (std::size_t p = 0; p < web_bytes.size(); ++p) web_bytes[p] += other.web_bytes[p];
  for (std::size_t t = 0; t < downlink_bins.size(); ++t) {
    for (std::size_t b = 0; b < kTimeBinsPerDay; ++b) {
      downlink_bins[t][b] += other.downlink_bins[t][b];
    }
  }
  for (std::size_t s = 0; s < services::kServiceCount; ++s) {
    rtt_min_ms[s].insert(rtt_min_ms[s].end(), other.rtt_min_ms[s].begin(),
                         other.rtt_min_ms[s].end());
    health[s].merge(other.health[s]);
  }
  for (const auto& [ip, stats] : other.server_ips) server_ips[ip].merge(stats);
  for (const auto& [key, bytes] : other.domain_bytes) domain_bytes[key] += bytes;
  for (const auto& [domain, bytes] : other.unclassified_domain_bytes) {
    unclassified_domain_bytes[domain] += bytes;
  }
  capture.merge(other.capture);
}

DayAggregate DayAggregator::take() && { return std::move(agg_); }

std::string_view second_level_domain(std::string_view host) {
  // Find the last two labels; if the ending is a known multi-label suffix
  // owner (none needed beyond defaults here), this simple rule suffices for
  // the study's domain universe.
  if (host.empty()) return {};
  auto last = host.rfind('.');
  if (last == std::string_view::npos || last == 0) return host;
  auto prev = host.rfind('.', last - 1);
  if (prev == std::string_view::npos) return host;
  return host.substr(prev + 1);
}

}  // namespace edgewatch::analytics
