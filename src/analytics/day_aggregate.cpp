#include "analytics/day_aggregate.hpp"

namespace edgewatch::analytics {

std::size_t DayAggregate::active_subscribers(const ActivityCriteria& c) const {
  std::size_t n = 0;
  for (const auto& [_, sub] : subscribers) n += sub.active(c);
  return n;
}

std::uint64_t DayAggregate::total_web_bytes() const noexcept {
  std::uint64_t total = 0;
  // Index 0 is kNotWeb: excluded from the Fig. 8 denominator.
  for (std::size_t i = 1; i < web_bytes.size(); ++i) total += web_bytes[i];
  return total;
}

DayAggregator::DayAggregator(core::CivilDate date, const services::ServiceCatalog& catalog)
    : catalog_(catalog) {
  agg_.date = date;
}

void DayAggregator::add(const flow::FlowRecord& record) {
  const auto service = catalog_.classify_flow(record.l7, record.server_name);
  const auto service_idx = static_cast<std::size_t>(service);

  auto& sub = agg_.subscribers[record.client_ip];
  sub.access = record.access;
  ++sub.flows;
  sub.bytes_up += record.up.bytes;
  sub.bytes_down += record.down.bytes;
  auto& svc = sub.per_service[service_idx];
  ++svc.flows;
  svc.bytes_up += record.up.bytes;
  svc.bytes_down += record.down.bytes;

  if (record.web != dpi::WebProtocol::kNotWeb) {
    agg_.web_bytes[static_cast<std::size_t>(record.web)] += record.total_bytes();
  }

  // Attribute the whole download to the flow's start bin: at day scale the
  // distortion is negligible and it keeps stage one single-pass.
  const auto bin = static_cast<std::size_t>(record.first_packet.minute_of_day() / 10);
  if (bin < kTimeBinsPerDay) {
    agg_.downlink_bins[static_cast<std::size_t>(record.access)][bin] +=
        static_cast<double>(record.down.bytes);
  }

  if (record.rtt.samples > 0) {
    agg_.rtt_min_ms[service_idx].push_back(record.rtt.min_ms());
  }

  if (record.proto == core::TransportProto::kTcp) {
    auto& health = agg_.health[service_idx];
    health.packets += record.down.packets;
    health.retransmits += record.down.retransmits;
    health.out_of_order += record.down.out_of_order;
  }

  auto& ip_stats = agg_.server_ips[record.server_ip];
  ip_stats.service_mask |= 1u << static_cast<unsigned>(service);
  ip_stats.bytes += record.total_bytes();

  if (!record.server_name.empty()) {
    // Heterogeneous probes: the std::string key is only materialized the
    // first time a (service, domain) pair is seen, not on every flow.
    const std::string_view sld = second_level_domain(record.server_name);
    if (service != services::ServiceId::kOther) {
      auto it = agg_.domain_bytes.find(std::pair{service, sld});
      if (it == agg_.domain_bytes.end()) {
        it = agg_.domain_bytes.emplace(std::pair{service, std::string(sld)}, 0).first;
      }
      it->second += record.total_bytes();
    } else {
      auto it = agg_.unclassified_domain_bytes.find(sld);
      if (it == agg_.unclassified_domain_bytes.end()) {
        it = agg_.unclassified_domain_bytes.emplace(std::string(sld), 0).first;
      }
      it->second += record.total_bytes();
    }
  }
}

void DayAggregate::merge(const DayAggregate& other) {
  for (const auto& [ip, sub] : other.subscribers) subscribers[ip].merge(sub);
  for (std::size_t p = 0; p < web_bytes.size(); ++p) web_bytes[p] += other.web_bytes[p];
  for (std::size_t t = 0; t < downlink_bins.size(); ++t) {
    for (std::size_t b = 0; b < kTimeBinsPerDay; ++b) {
      downlink_bins[t][b] += other.downlink_bins[t][b];
    }
  }
  for (std::size_t s = 0; s < services::kServiceCount; ++s) {
    rtt_min_ms[s].insert(rtt_min_ms[s].end(), other.rtt_min_ms[s].begin(),
                         other.rtt_min_ms[s].end());
    health[s].merge(other.health[s]);
  }
  for (const auto& [ip, stats] : other.server_ips) server_ips[ip].merge(stats);
  for (const auto& [key, bytes] : other.domain_bytes) domain_bytes[key] += bytes;
  for (const auto& [domain, bytes] : other.unclassified_domain_bytes) {
    unclassified_domain_bytes[domain] += bytes;
  }
  capture.merge(other.capture);
}

DayAggregate DayAggregator::take() && { return std::move(agg_); }

std::string_view second_level_domain(std::string_view host) {
  // Find the last two labels; if the ending is a known multi-label suffix
  // owner (none needed beyond defaults here), this simple rule suffices for
  // the study's domain universe.
  if (host.empty()) return {};
  auto last = host.rfind('.');
  if (last == std::string_view::npos || last == 0) return host;
  auto prev = host.rfind('.', last - 1);
  if (prev == std::string_view::npos) return host;
  return host.substr(prev + 1);
}

}  // namespace edgewatch::analytics
