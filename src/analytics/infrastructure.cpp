#include "analytics/infrastructure.hpp"

#include <algorithm>
#include <unordered_set>

namespace edgewatch::analytics {

namespace {

struct HashIp {
  std::size_t operator()(core::IPv4Address a) const noexcept {
    return core::IPv4AddressHash{}(a);
  }
};

std::map<core::MonthIndex, std::vector<std::size_t>> group_by_month(
    std::span<const DayAggregate> days) {
  std::map<core::MonthIndex, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < days.size(); ++i) {
    groups[core::MonthIndex{days[i].date}].push_back(i);
  }
  return groups;
}

}  // namespace

std::vector<IpLifecycleRow> ip_lifecycle(std::span<const DayAggregate> days,
                                         services::ServiceId service) {
  // Chronological walk.
  std::vector<std::size_t> order(days.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return days[a].date < days[b].date; });

  std::unordered_set<core::IPv4Address, HashIp> seen;
  std::vector<IpLifecycleRow> rows;
  rows.reserve(days.size());
  for (const auto i : order) {
    IpLifecycleRow row;
    row.date = days[i].date;
    for (const auto& [ip, stats] : days[i].server_ips) {
      if (!stats.serves(service)) continue;
      seen.insert(ip);
      if (stats.shared()) {
        ++row.shared;
      } else {
        ++row.dedicated;
      }
    }
    row.cumulative_unique = seen.size();
    rows.push_back(row);
  }
  return rows;
}

std::vector<AsnBreakdownRow> asn_breakdown(std::span<const DayAggregate> days,
                                           services::ServiceId service,
                                           const RibProvider& rib_for) {
  std::vector<AsnBreakdownRow> rows;
  for (const auto& [month, indices] : group_by_month(days)) {
    AsnBreakdownRow row;
    row.month = month;
    const asn::Rib& rib = rib_for(month);
    std::map<std::uint32_t, std::uint64_t> totals;
    for (const auto i : indices) {
      for (const auto& [ip, stats] : days[i].server_ips) {
        if (!stats.serves(service)) continue;
        const auto origin = rib.origin_asn(ip);
        ++totals[origin.value_or(asn::AsnDirectory::kOther)];
      }
    }
    for (const auto& [asn_num, count] : totals) {
      row.ips_by_asn[asn_num] =
          static_cast<double>(count) / static_cast<double>(indices.size());
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<DomainShareRow> domain_shares(std::span<const DayAggregate> days,
                                          services::ServiceId service) {
  std::vector<DomainShareRow> rows;
  for (const auto& [month, indices] : group_by_month(days)) {
    DomainShareRow row;
    row.month = month;
    std::map<std::string, std::uint64_t> bytes;
    std::uint64_t total = 0;
    for (const auto i : indices) {
      for (const auto& [key, b] : days[i].domain_bytes) {
        if (key.first != service) continue;
        bytes[key.second] += b;
        total += b;
      }
    }
    if (total > 0) {
      for (const auto& [domain, b] : bytes) {
        row.share_pct[domain] = 100.0 * static_cast<double>(b) / static_cast<double>(total);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace edgewatch::analytics
