#include "analytics/figures.hpp"

#include <algorithm>
#include <map>

namespace edgewatch::analytics {

namespace {

constexpr double kMB = 1e6;

std::size_t tech_index(flow::AccessTech tech) noexcept {
  return static_cast<std::size_t>(tech);
}

/// Group day indices by month, preserving chronological order.
std::map<core::MonthIndex, std::vector<std::size_t>> by_month(
    std::span<const DayAggregate> days) {
  std::map<core::MonthIndex, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < days.size(); ++i) {
    groups[core::MonthIndex{days[i].date}].push_back(i);
  }
  return groups;
}

}  // namespace

bool uses_service(const SubscriberDay& sub, const services::ServiceCatalog& catalog,
                  services::ServiceId id) noexcept {
  const auto threshold = catalog.info(id).activity_threshold_bytes;
  return sub.service(id).total() >= std::max<std::uint64_t>(threshold, 1);
}

DailyVolumeDistributions daily_volume_distributions(std::span<const DayAggregate> days,
                                                    const ActivityCriteria& criteria) {
  DailyVolumeDistributions out;
  for (const auto& day : days) {
    for (const auto& [_, sub] : day.subscribers) {
      if (!sub.active(criteria)) continue;
      const auto t = tech_index(sub.access);
      out.down[t].add(static_cast<double>(sub.bytes_down));
      out.up[t].add(static_cast<double>(sub.bytes_up));
    }
  }
  return out;
}

std::vector<VolumeTrendRow> volume_trend(std::span<const DayAggregate> days,
                                         const ActivityCriteria& criteria) {
  std::vector<VolumeTrendRow> rows;
  for (const auto& [month, indices] : by_month(days)) {
    VolumeTrendRow row;
    row.month = month;
    std::array<double, kAccessTechCount> down_sum{}, up_sum{};
    std::array<std::uint64_t, kAccessTechCount> sub_days{};
    for (const auto i : indices) {
      for (const auto& [_, sub] : days[i].subscribers) {
        if (!sub.active(criteria)) continue;
        const auto t = tech_index(sub.access);
        down_sum[t] += static_cast<double>(sub.bytes_down);
        up_sum[t] += static_cast<double>(sub.bytes_up);
        ++sub_days[t];
      }
    }
    for (std::size_t t = 0; t < kAccessTechCount; ++t) {
      if (sub_days[t] == 0) continue;
      row.down_mb[t] = down_sum[t] / static_cast<double>(sub_days[t]) / kMB;
      row.up_mb[t] = up_sum[t] / static_cast<double>(sub_days[t]) / kMB;
      row.subscribers[t] = sub_days[t] / indices.size();
    }
    rows.push_back(row);
  }
  return rows;
}

HourlyRatios hourly_ratio(std::span<const DayAggregate> later,
                          std::span<const DayAggregate> earlier) {
  // Average each 10-min bin over the days of each period, collapse to
  // hours, then take the ratio (the paper smooths with a Bezier; we report
  // the raw hourly ratio).
  auto hourly_mean = [](std::span<const DayAggregate> days, std::size_t tech) {
    std::array<double, 24> hours{};
    if (days.empty()) return hours;
    for (const auto& day : days) {
      for (std::size_t bin = 0; bin < kTimeBinsPerDay; ++bin) {
        hours[bin / 6] += day.downlink_bins[tech][bin];
      }
    }
    for (auto& h : hours) h /= static_cast<double>(days.size());
    return hours;
  };
  HourlyRatios out;
  for (std::size_t t = 0; t < kAccessTechCount; ++t) {
    const auto late = hourly_mean(later, t);
    const auto early = hourly_mean(earlier, t);
    for (std::size_t h = 0; h < 24; ++h) {
      out.ratio[t][h] = early[h] > 0 ? late[h] / early[h] : 0.0;
    }
  }
  return out;
}

ServiceMatrix service_matrix(std::span<const DayAggregate> days,
                             std::optional<flow::AccessTech> tech_filter,
                             const ActivityCriteria& criteria) {
  const auto& catalog = services::ServiceCatalog::standard();
  ServiceMatrix out;
  for (const auto& [month, indices] : by_month(days)) {
    out.months.push_back(month);
    std::array<std::uint64_t, services::kServiceCount> users{};
    std::array<std::uint64_t, services::kServiceCount> bytes{};
    std::uint64_t active_days = 0;
    std::uint64_t total_bytes = 0;
    for (const auto i : indices) {
      for (const auto& [_, sub] : days[i].subscribers) {
        if (tech_filter && sub.access != *tech_filter) continue;
        if (!sub.active(criteria)) continue;
        ++active_days;
        total_bytes += sub.bytes_down + sub.bytes_up;
        for (std::size_t s = 0; s < services::kServiceCount; ++s) {
          const auto id = static_cast<services::ServiceId>(s);
          if (uses_service(sub, catalog, id)) ++users[s];
          bytes[s] += sub.per_service[s].total();
        }
      }
    }
    for (std::size_t s = 0; s < services::kServiceCount; ++s) {
      ServiceMatrix::Cell cell;
      if (active_days > 0) {
        cell.popularity_pct =
            100.0 * static_cast<double>(users[s]) / static_cast<double>(active_days);
      }
      if (total_bytes > 0) {
        cell.byte_share_pct =
            100.0 * static_cast<double>(bytes[s]) / static_cast<double>(total_bytes);
      }
      out.cells[s].push_back(cell);
    }
  }
  return out;
}

std::vector<ServiceTrendRow> service_trend(std::span<const DayAggregate> days,
                                           services::ServiceId service,
                                           const ActivityCriteria& criteria) {
  const auto& catalog = services::ServiceCatalog::standard();
  std::vector<ServiceTrendRow> rows;
  for (const auto& [month, indices] : by_month(days)) {
    ServiceTrendRow row;
    row.month = month;
    std::array<std::uint64_t, kAccessTechCount> active{}, service_users{};
    std::array<double, kAccessTechCount> service_bytes{};
    for (const auto i : indices) {
      for (const auto& [_, sub] : days[i].subscribers) {
        if (!sub.active(criteria)) continue;
        const auto t = tech_index(sub.access);
        ++active[t];
        if (uses_service(sub, catalog, service)) {
          ++service_users[t];
          service_bytes[t] += static_cast<double>(sub.service(service).total());
        }
      }
    }
    for (std::size_t t = 0; t < kAccessTechCount; ++t) {
      if (active[t] > 0) {
        row.popularity_pct[t] =
            100.0 * static_cast<double>(service_users[t]) / static_cast<double>(active[t]);
      }
      if (service_users[t] > 0) {
        row.mb_per_user[t] = service_bytes[t] / static_cast<double>(service_users[t]) / kMB;
      }
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<DailyServiceVolumeRow> daily_service_volume(std::span<const DayAggregate> days,
                                                        services::ServiceId service) {
  const auto& catalog = services::ServiceCatalog::standard();
  std::vector<DailyServiceVolumeRow> rows;
  rows.reserve(days.size());
  for (const auto& day : days) {
    DailyServiceVolumeRow row;
    row.date = day.date;
    double bytes = 0;
    for (const auto& [_, sub] : day.subscribers) {
      if (!sub.active({})) continue;
      if (!uses_service(sub, catalog, service)) continue;
      ++row.users;
      bytes += static_cast<double>(sub.service(service).total());
    }
    if (row.users > 0) row.mb_per_user = bytes / static_cast<double>(row.users) / kMB;
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.date < b.date; });
  return rows;
}

std::vector<ProtocolShareRow> protocol_shares(std::span<const DayAggregate> days) {
  std::vector<ProtocolShareRow> rows;
  for (const auto& [month, indices] : by_month(days)) {
    ProtocolShareRow row;
    row.month = month;
    std::array<std::uint64_t, kWebProtocolCount> bytes{};
    std::uint64_t total = 0;
    for (const auto i : indices) {
      for (std::size_t p = 1; p < kWebProtocolCount; ++p) {
        bytes[p] += days[i].web_bytes[p];
        total += days[i].web_bytes[p];
      }
    }
    if (total > 0) {
      for (std::size_t p = 0; p < kWebProtocolCount; ++p) {
        row.share_pct[p] = 100.0 * static_cast<double>(bytes[p]) / static_cast<double>(total);
      }
    }
    rows.push_back(row);
  }
  return rows;
}

core::EmpiricalDistribution rtt_distribution(std::span<const DayAggregate> days,
                                             services::ServiceId service) {
  core::EmpiricalDistribution out;
  const auto idx = static_cast<std::size_t>(service);
  for (const auto& day : days) {
    out.add_all(day.rtt_min_ms[idx]);
  }
  return out;
}

ServiceReach service_reach(std::span<const DayAggregate> days, services::ServiceId service,
                           const ActivityCriteria& criteria) {
  const auto& catalog = services::ServiceCatalog::standard();
  // Subscriber -> (tech, ever active, ever used service) over the window.
  struct Flags {
    flow::AccessTech tech = flow::AccessTech::kAdsl;
    bool active = false;
    bool used = false;
  };
  std::unordered_map<core::IPv4Address, Flags, core::IPv4AddressHash> subs;
  for (const auto& day : days) {
    for (const auto& [ip, sub] : day.subscribers) {
      auto& flags = subs[ip];
      flags.tech = sub.access;
      if (!sub.active(criteria)) continue;
      flags.active = true;
      flags.used |= uses_service(sub, catalog, service);
    }
  }
  ServiceReach out;
  std::array<std::size_t, kAccessTechCount> used{};
  for (const auto& [_, flags] : subs) {
    if (!flags.active) continue;
    const auto t = tech_index(flags.tech);
    ++out.subscribers[t];
    used[t] += flags.used;
  }
  for (std::size_t t = 0; t < kAccessTechCount; ++t) {
    if (out.subscribers[t] > 0) {
      out.pct[t] = 100.0 * static_cast<double>(used[t]) /
                   static_cast<double>(out.subscribers[t]);
    }
  }
  return out;
}

std::vector<CategoryShareRow> category_shares(std::span<const DayAggregate> days) {
  const auto& catalog = services::ServiceCatalog::standard();
  std::map<services::ServiceCategory, std::uint64_t> bytes;
  std::uint64_t total = 0;
  for (const auto& day : days) {
    for (const auto& [_, sub] : day.subscribers) {
      for (std::size_t s = 0; s < services::kServiceCount; ++s) {
        const auto volume = sub.per_service[s].total();
        bytes[catalog.info(static_cast<services::ServiceId>(s)).category] += volume;
        total += volume;
      }
    }
  }
  std::vector<CategoryShareRow> out;
  for (const auto& [category, b] : bytes) {
    CategoryShareRow row;
    row.category = category;
    if (total > 0) {
      row.byte_share_pct = 100.0 * static_cast<double>(b) / static_cast<double>(total);
    }
    out.push_back(row);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b2) { return a.byte_share_pct > b2.byte_share_pct; });
  return out;
}

std::array<ServiceDayHealth, services::kServiceCount> aggregate_health(
    std::span<const DayAggregate> days) {
  std::array<ServiceDayHealth, services::kServiceCount> out{};
  for (const auto& day : days) {
    for (std::size_t s = 0; s < services::kServiceCount; ++s) {
      out[s].packets += day.health[s].packets;
      out[s].retransmits += day.health[s].retransmits;
      out[s].out_of_order += day.health[s].out_of_order;
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> top_unclassified_domains(
    std::span<const DayAggregate> days, std::size_t limit) {
  std::map<std::string, std::uint64_t> totals;
  for (const auto& day : days) {
    for (const auto& [domain, bytes] : day.unclassified_domain_bytes) {
      totals[domain] += bytes;
    }
  }
  std::vector<std::pair<std::string, std::uint64_t>> out{totals.begin(), totals.end()};
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace edgewatch::analytics
